// ldmsd_controller: send configuration commands to a running ldmsd over its
// UNIX domain control socket.
//
//   ldmsd_controller -S /tmp/ldmsd.sock -c "interval name=meminfo interval=1000000"
//   echo "stop name=meminfo" | ldmsd_controller -S /tmp/ldmsd.sock
//
// When the daemon was started with a control key (`ldmsd -k keyfile`),
// mutating verbs must be signed: pass the same key file with -k and every
// command is sent with an `auth <key_id>:<mac>` prefix.
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "daemon/control.hpp"
#include "daemon/keys.hpp"

int main(int argc, char** argv) {
  using namespace ldmsxx;

  std::string socket_path;
  std::string command;
  std::string key_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-S" && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (arg == "-c" && i + 1 < argc) {
      command = argv[++i];
    } else if (arg == "-k" && i + 1 < argc) {
      key_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s -S socket [-k keyfile] [-c command]\n",
                   argv[0]);
      return 2;
    }
  }
  if (socket_path.empty()) {
    std::fprintf(stderr, "usage: %s -S socket [-k keyfile] [-c command]\n",
                 argv[0]);
    return 2;
  }

  std::unique_ptr<KeyManager> keys;
  if (!key_path.empty()) {
    if (Status st = KeyManager::LoadOrCreate(key_path, &keys); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }

  auto run = [&](const std::string& line) {
    std::string reply;
    Status st = ControlServer::SendCommand(socket_path, line, &reply,
                                           keys.get());
    if (!reply.empty()) std::printf("%s\n", reply.c_str());
    if (!st.ok() && reply.empty()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
    }
    return st.ok();
  };

  if (!command.empty()) return run(command) ? 0 : 1;

  // Interactive / piped mode: one command per stdin line.
  std::string line;
  bool all_ok = true;
  while (std::getline(std::cin, line)) {
    if (line.empty() || line[0] == '#') continue;
    all_ok = run(line) && all_ok;
  }
  return all_ok ? 0 : 1;
}
