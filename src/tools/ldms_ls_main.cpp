// ldms_ls: connect to a running ldmsd and list its metric sets, like the
// production tool of the same name.
//
//   ldms_ls -x sock:127.0.0.1:10001          # list set instance names
//   ldms_ls -x sock:127.0.0.1:10001 -l       # also dump current values
#include <cstdio>
#include <string>

#include "core/mem_manager.hpp"
#include "core/metric_set.hpp"
#include "transport/registry.hpp"

int main(int argc, char** argv) {
  using namespace ldmsxx;

  std::string transport_name = "sock";
  std::string address;
  bool long_listing = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-x" && i + 1 < argc) {
      const std::string endpoint = argv[++i];
      const auto colon = endpoint.find(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "bad -x endpoint: %s\n", endpoint.c_str());
        return 2;
      }
      transport_name = endpoint.substr(0, colon);
      address = endpoint.substr(colon + 1);
    } else if (arg == "-l") {
      long_listing = true;
    } else {
      std::fprintf(stderr, "usage: %s -x transport:addr [-l]\n", argv[0]);
      return 2;
    }
  }
  if (address.empty()) {
    std::fprintf(stderr, "usage: %s -x transport:addr [-l]\n", argv[0]);
    return 2;
  }

  auto transport = TransportRegistry::Default().Get(transport_name);
  if (transport == nullptr) {
    std::fprintf(stderr, "unknown transport: %s\n", transport_name.c_str());
    return 1;
  }
  std::unique_ptr<Endpoint> endpoint;
  if (Status st = transport->Connect(address, &endpoint); !st.ok()) {
    std::fprintf(stderr, "connect failed: %s\n", st.ToString().c_str());
    return 1;
  }

  std::vector<std::string> instances;
  if (Status st = endpoint->Dir(&instances); !st.ok()) {
    std::fprintf(stderr, "dir failed: %s\n", st.ToString().c_str());
    return 1;
  }

  MemManager mem(16 << 20);
  for (const auto& instance : instances) {
    std::printf("%s\n", instance.c_str());
    if (!long_listing) continue;
    std::vector<std::byte> metadata;
    if (Status st = endpoint->Lookup(instance, &metadata); !st.ok()) {
      std::fprintf(stderr, "  lookup failed: %s\n", st.ToString().c_str());
      continue;
    }
    Status st;
    auto mirror = MetricSet::CreateMirror(mem, metadata, &st);
    if (mirror == nullptr) {
      std::fprintf(stderr, "  bad metadata: %s\n", st.ToString().c_str());
      continue;
    }
    if (Status upd = endpoint->Update(instance, *mirror); !upd.ok()) {
      std::fprintf(stderr, "  update failed: %s\n", upd.ToString().c_str());
      continue;
    }
    const TimeNs ts = mirror->timestamp();
    std::printf("  schema=%s producer=%s component_id=%llu ts=%llu.%06llu "
                "consistent=%d\n",
                mirror->schema().name().c_str(),
                mirror->producer_name().c_str(),
                static_cast<unsigned long long>(mirror->component_id()),
                static_cast<unsigned long long>(ts / kNsPerSec),
                static_cast<unsigned long long>((ts % kNsPerSec) / kNsPerUs),
                mirror->consistent() ? 1 : 0);
    for (std::size_t m = 0; m < mirror->schema().metric_count(); ++m) {
      const MetricDef& def = mirror->schema().metric(m);
      std::printf("  %-4s %-40s %s\n", MetricTypeName(def.type),
                  def.name.c_str(), mirror->GetValue(m).ToString().c_str());
    }
  }
  return 0;
}
