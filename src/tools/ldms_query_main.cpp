// ldms_query: query a store_tsdb directory of sealed columnar segments —
// offline analysis against the same files a running daemon is writing (a
// reader only ever sees fully-sealed, CRC-verified segments, so pointing
// this at a live store directory is safe).
//
//   ldms_query -d /data/tsdb                       # list tables
//   ldms_query -d /data/tsdb -t meminfo            # dump all rows
//   ldms_query -d /data/tsdb -t meminfo -0 5000000 -1 9000000
//              -n 3,7 -m free,cached               # range x nodes x metrics
//   ldms_query -d /data/tsdb -t meminfo --rollup   # min/max/avg buckets
//   ldms_query ... --scan                          # force the full-scan path
//   ldms_query ... -v                              # index stats to stderr
//
// Against a running daemon, the same query goes through the control socket:
//   ldmsd_controller -S ctl.sock -c "query strgp=tsdb table=meminfo ..."
#include <cstdio>
#include <string>
#include <vector>

#include "store/tsdb/tsdb_store.hpp"
#include "util/strings.hpp"

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s -d <tsdb dir> [-t table] [-0 t0_us] [-1 t1_us]\n"
      "          [-n node,node,...] [-m metric,metric,...]\n"
      "          [--rollup] [-g rollup_sec] [--scan] [-v]\n"
      "  -g must match the granularity the store was written with\n"
      "     (strgp_add rollup_sec=); mismatched .rollup sidecars are\n"
      "     skipped as if corrupt. Default 60.\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ldmsxx;

  TsdbOptions opts;
  opts.root_path.clear();
  TsdbQuery query;
  bool rollup = false;
  bool full_scan = false;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-d" && i + 1 < argc) {
      opts.root_path = argv[++i];
    } else if (arg == "-t" && i + 1 < argc) {
      query.table = argv[++i];
    } else if (arg == "-0" && i + 1 < argc) {
      if (auto us = ParseU64(argv[++i])) query.t0 = *us * kNsPerUs;
      else return Usage(argv[0]);
    } else if (arg == "-1" && i + 1 < argc) {
      if (auto us = ParseU64(argv[++i])) query.t1 = *us * kNsPerUs;
      else return Usage(argv[0]);
    } else if (arg == "-n" && i + 1 < argc) {
      for (auto node : Split(argv[++i], ',')) {
        if (auto id = ParseU64(node)) query.nodes.push_back(*id);
        else return Usage(argv[0]);
      }
    } else if (arg == "-m" && i + 1 < argc) {
      for (auto metric : Split(argv[++i], ',')) {
        if (!metric.empty()) query.metrics.emplace_back(metric);
      }
    } else if (arg == "-g" && i + 1 < argc) {
      if (auto sec = ParseU64(argv[++i])) {
        opts.rollup_granularity = *sec * kNsPerSec;
      } else {
        return Usage(argv[0]);
      }
    } else if (arg == "--rollup") {
      rollup = true;
    } else if (arg == "--scan") {
      full_scan = true;
    } else if (arg == "-v") {
      verbose = true;
    } else {
      return Usage(argv[0]);
    }
  }
  if (opts.root_path.empty()) return Usage(argv[0]);

  TsdbStore store(opts);
  if (store.attach_rejects() > 0) {
    std::fprintf(stderr, "warning: %llu corrupt file(s) skipped\n",
                 static_cast<unsigned long long>(store.attach_rejects()));
  }

  if (query.table.empty()) {
    for (const auto& table : store.Tables()) {
      std::printf("%s\n", table.c_str());
    }
    return 0;
  }

  if (rollup) {
    std::vector<TsdbRollupRow> rows;
    if (Status st = store.QueryRollup(query, &rows); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("#bucket_us\tnode\tmetric\tmin\tmax\tavg\tcount\n");
    for (const auto& r : rows) {
      std::printf("%llu\t%llu\t%s\t%g\t%g\t%g\t%llu\n",
                  static_cast<unsigned long long>(r.bucket / kNsPerUs),
                  static_cast<unsigned long long>(r.node), r.metric.c_str(),
                  r.min, r.max, r.avg,
                  static_cast<unsigned long long>(r.count));
    }
    return 0;
  }

  TsdbQueryResult result;
  const Status st = full_scan ? store.QueryFullScan(query, &result)
                              : store.Query(query, &result);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("#ts_us\tnode");
  for (const auto& column : result.columns) std::printf("\t%s", column.c_str());
  std::printf("\n");
  for (const auto& row : result.rows) {
    std::printf("%llu\t%llu", static_cast<unsigned long long>(row.ts / kNsPerUs),
                static_cast<unsigned long long>(row.node));
    for (const double v : row.values) std::printf("\t%g", v);
    std::printf("\n");
  }
  if (verbose) {
    std::fprintf(stderr,
                 "segments: considered=%llu pruned=%llu read=%llu "
                 "bytes_read=%llu rows=%zu\n",
                 static_cast<unsigned long long>(result.segments_considered),
                 static_cast<unsigned long long>(result.segments_pruned),
                 static_cast<unsigned long long>(result.segments_read),
                 static_cast<unsigned long long>(result.bytes_read),
                 result.rows.size());
  }
  return 0;
}
