// ldms_query: query a store_tsdb directory of sealed columnar segments —
// offline analysis against the same files a running daemon is writing (a
// reader only ever sees fully-sealed, CRC-verified segments, so pointing
// this at a live store directory is safe).
//
//   ldms_query -d /data/tsdb                       # list tables
//   ldms_query -d /data/tsdb -t meminfo            # dump all rows
//   ldms_query -d /data/tsdb -t meminfo -0 5000000 -1 9000000
//              -n 3,7 -m free,cached               # range x nodes x metrics
//   ldms_query -d /data/tsdb -t meminfo --rollup   # min/max/avg buckets
//   ldms_query ... --scan                          # force the full-scan path
//   ldms_query ... -v                              # index stats to stderr
//
// Against a running daemon, the same query goes through the control socket:
//   ldmsd_controller -S ctl.sock -c "query strgp=tsdb table=meminfo ..."
#include <cstdio>
#include <string>
#include <vector>

#include "store/tsdb/tsdb_store.hpp"
#include "util/strings.hpp"

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s -d <tsdb dir> [-t table] [-0 t0_us] [-1 t1_us]\n"
      "          [-n node,node,...] [-m metric,metric,...]\n"
      "          [--rollup] [-g rollup_sec] [--scan] [--threads N]\n"
      "          [--format tsv|csv|json] [--stats] [-v]\n"
      "  -g must match the granularity the store was written with\n"
      "     (strgp_add rollup_sec=); mismatched .rollup sidecars are\n"
      "     skipped as if corrupt. Default 60.\n"
      "  --threads decodes sealed segments on N workers (0 = inline).\n"
      "  --stats prints pruning/compression counters after the rows\n"
      "     (stdout for json, stderr otherwise; -v implies it).\n",
      argv0);
  return 2;
}

/// Minimal JSON string escaping (column names are config-controlled, but a
/// quote or backslash must not produce invalid output).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;
    out.push_back(c);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ldmsxx;

  TsdbOptions opts;
  opts.root_path.clear();
  TsdbQuery query;
  bool rollup = false;
  bool full_scan = false;
  bool verbose = false;
  bool stats = false;
  std::string format = "tsv";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-d" && i + 1 < argc) {
      opts.root_path = argv[++i];
    } else if (arg == "-t" && i + 1 < argc) {
      query.table = argv[++i];
    } else if (arg == "-0" && i + 1 < argc) {
      if (auto us = ParseU64(argv[++i])) query.t0 = *us * kNsPerUs;
      else return Usage(argv[0]);
    } else if (arg == "-1" && i + 1 < argc) {
      if (auto us = ParseU64(argv[++i])) query.t1 = *us * kNsPerUs;
      else return Usage(argv[0]);
    } else if (arg == "-n" && i + 1 < argc) {
      for (auto node : Split(argv[++i], ',')) {
        if (auto id = ParseU64(node)) query.nodes.push_back(*id);
        else return Usage(argv[0]);
      }
    } else if (arg == "-m" && i + 1 < argc) {
      for (auto metric : Split(argv[++i], ',')) {
        if (!metric.empty()) query.metrics.emplace_back(metric);
      }
    } else if (arg == "-g" && i + 1 < argc) {
      if (auto sec = ParseU64(argv[++i])) {
        opts.rollup_granularity = *sec * kNsPerSec;
      } else {
        return Usage(argv[0]);
      }
    } else if (arg == "--rollup") {
      rollup = true;
    } else if (arg == "--scan") {
      full_scan = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      if (auto n = ParseU64(argv[++i])) opts.scan_threads = *n;
      else return Usage(argv[0]);
    } else if (arg == "--format" && i + 1 < argc) {
      format = argv[++i];
      if (format != "tsv" && format != "csv" && format != "json") {
        return Usage(argv[0]);
      }
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "-v") {
      verbose = true;
      stats = true;
    } else {
      return Usage(argv[0]);
    }
  }
  if (opts.root_path.empty()) return Usage(argv[0]);

  TsdbStore store(opts);
  if (store.attach_rejects() > 0) {
    std::fprintf(stderr, "warning: %llu corrupt file(s) skipped\n",
                 static_cast<unsigned long long>(store.attach_rejects()));
  }

  if (query.table.empty()) {
    for (const auto& table : store.Tables()) {
      std::printf("%s\n", table.c_str());
    }
    return 0;
  }

  if (rollup) {
    std::vector<TsdbRollupRow> rows;
    if (Status st = store.QueryRollup(query, &rows); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    if (format == "json") {
      std::printf("{\"buckets\":[");
      bool first = true;
      for (const auto& r : rows) {
        std::printf("%s{\"bucket_us\":%llu,\"node\":%llu,\"metric\":\"%s\","
                    "\"min\":%g,\"max\":%g,\"avg\":%g,\"count\":%llu}",
                    first ? "" : ",",
                    static_cast<unsigned long long>(r.bucket / kNsPerUs),
                    static_cast<unsigned long long>(r.node),
                    JsonEscape(r.metric).c_str(), r.min, r.max, r.avg,
                    static_cast<unsigned long long>(r.count));
        first = false;
      }
      std::printf("]}\n");
      return 0;
    }
    const char sep = format == "csv" ? ',' : '\t';
    std::printf(format == "csv" ? "bucket_us,node,metric,min,max,avg,count\n"
                                : "#bucket_us\tnode\tmetric\tmin\tmax\tavg"
                                  "\tcount\n");
    for (const auto& r : rows) {
      std::printf("%llu%c%llu%c%s%c%g%c%g%c%g%c%llu\n",
                  static_cast<unsigned long long>(r.bucket / kNsPerUs), sep,
                  static_cast<unsigned long long>(r.node), sep,
                  r.metric.c_str(), sep, r.min, sep, r.max, sep, r.avg, sep,
                  static_cast<unsigned long long>(r.count));
    }
    return 0;
  }

  TsdbQueryResult result;
  const Status st = full_scan ? store.QueryFullScan(query, &result)
                              : store.Query(query, &result);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  // Decoded-vs-read is the compression ratio the query actually enjoyed;
  // equal when every column it touched was stored raw.
  const double ratio =
      result.bytes_read > 0
          ? static_cast<double>(result.bytes_decoded) /
                static_cast<double>(result.bytes_read)
          : 1.0;
  if (format == "json") {
    std::printf("{\"columns\":[\"ts_us\",\"node\"");
    for (const auto& column : result.columns) {
      std::printf(",\"%s\"", JsonEscape(column).c_str());
    }
    std::printf("],\"rows\":[");
    bool first = true;
    for (const auto& row : result.rows) {
      std::printf("%s[%llu,%llu", first ? "" : ",",
                  static_cast<unsigned long long>(row.ts / kNsPerUs),
                  static_cast<unsigned long long>(row.node));
      for (const double v : row.values) std::printf(",%g", v);
      std::printf("]");
      first = false;
    }
    std::printf("]");
    if (stats) {
      std::printf(
          ",\"stats\":{\"segments_considered\":%llu,\"segments_pruned\":%llu,"
          "\"segments_read\":%llu,\"bytes_read\":%llu,\"bytes_decoded\":%llu,"
          "\"compression_ratio\":%.3f,\"rows\":%zu}",
          static_cast<unsigned long long>(result.segments_considered),
          static_cast<unsigned long long>(result.segments_pruned),
          static_cast<unsigned long long>(result.segments_read),
          static_cast<unsigned long long>(result.bytes_read),
          static_cast<unsigned long long>(result.bytes_decoded), ratio,
          result.rows.size());
    }
    std::printf("}\n");
  } else {
    const char sep = format == "csv" ? ',' : '\t';
    if (format == "csv") {
      std::printf("ts_us,node");
      for (const auto& column : result.columns) {
        std::printf(",%s", column.c_str());
      }
    } else {
      std::printf("#ts_us\tnode");
      for (const auto& column : result.columns) {
        std::printf("\t%s", column.c_str());
      }
    }
    std::printf("\n");
    for (const auto& row : result.rows) {
      std::printf("%llu%c%llu",
                  static_cast<unsigned long long>(row.ts / kNsPerUs), sep,
                  static_cast<unsigned long long>(row.node));
      for (const double v : row.values) std::printf("%c%g", sep, v);
      std::printf("\n");
    }
    if (stats) {
      std::fprintf(stderr,
                   "segments: considered=%llu pruned=%llu read=%llu "
                   "bytes_read=%llu bytes_decoded=%llu "
                   "compression_ratio=%.3f rows=%zu\n",
                   static_cast<unsigned long long>(result.segments_considered),
                   static_cast<unsigned long long>(result.segments_pruned),
                   static_cast<unsigned long long>(result.segments_read),
                   static_cast<unsigned long long>(result.bytes_read),
                   static_cast<unsigned long long>(result.bytes_decoded),
                   ratio, result.rows.size());
    }
  }
  (void)verbose;
  return 0;
}
