// ldmsd: the standalone daemon binary. Runs a sampler and/or aggregator
// configured by the ldmsd command language (see daemon/config.hpp), serving
// real TCP — a multi-process deployment looks exactly like the paper's
// Figure 3/4 topologies.
//
//   ldmsd -x sock:127.0.0.1:10001 -n nid0001 -c sampler.conf [-m bytes]
//         [-l logfile] [-v] [-F]
//
//   -x transport:address   listen endpoint (sock:host:port, local:name, ...)
//   -n name                daemon/producer name
//   -c file                configuration script (ldmsd command language)
//   -m bytes               metric-set memory pool size (default 1 MB)
//   -l file                log file (default stderr)
//   -S path                UNIX domain control socket (runtime reconfig via
//                          ldmsd_controller)
//   -r path                cluster registry file: producers/stores/tree are
//                          persisted crash-safely and restored at startup, so
//                          a restart resumes collection with no config script
//   -k path                control-socket key file (created 0600 if absent);
//                          mutating control verbs then require a MAC
//                          (ldmsd_controller -k) — see daemon/keys.hpp
//   -v                     verbose (info-level) logging
//   -F                     stay in the foreground for N seconds then exit
//                          (default: run until SIGINT/SIGTERM)
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <semaphore>
#include <sstream>

#include "daemon/config.hpp"
#include "daemon/control.hpp"
#include "daemon/keys.hpp"
#include "daemon/ldmsd.hpp"
#include "daemon/plugin_registry.hpp"
#include "sampler/samplers.hpp"
#include "util/strings.hpp"

namespace {

std::binary_semaphore g_shutdown(0);

void HandleSignal(int) { g_shutdown.release(); }

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [-x transport:addr] [-n name] [-c config] "
               "[-m bytes] [-l log] [-S ctl] [-r registry] [-k keyfile] "
               "[-v] [-F seconds]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ldmsxx;

  LdmsdOptions options;
  options.name = "ldmsd";
  options.set_memory = 1 << 20;
  std::string config_path;
  std::string control_socket;
  std::string key_path;
  int foreground_seconds = -1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "-x") {
      const std::string endpoint = next();
      const auto colon = endpoint.find(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "bad -x endpoint: %s\n", endpoint.c_str());
        return 2;
      }
      options.listen_transport = endpoint.substr(0, colon);
      options.listen_address = endpoint.substr(colon + 1);
    } else if (arg == "-n") {
      options.name = next();
    } else if (arg == "-c") {
      config_path = next();
    } else if (arg == "-m") {
      if (auto v = ParseU64(next())) options.set_memory = *v;
    } else if (arg == "-l") {
      options.log_path = next();
    } else if (arg == "-S") {
      control_socket = next();
    } else if (arg == "-r") {
      options.registry_path = next();
    } else if (arg == "-k") {
      key_path = next();
    } else if (arg == "-v") {
      options.log_level = LogLevel::kInfo;
    } else if (arg == "-F") {
      if (auto v = ParseU64(next())) {
        foreground_seconds = static_cast<int>(*v);
      }
    } else {
      Usage(argv[0]);
      return 2;
    }
  }

  RegisterBuiltinSamplers();  // real /proc sources
  RegisterBuiltinStores();

  Ldmsd daemon(options);
  if (!options.registry_path.empty()) {
    // Resume producers/stores/tree from the crash-safe registry before the
    // daemon starts collecting; a missing file is a clean first boot and a
    // corrupt one is quarantined (we keep going and rebuild from traffic).
    if (Status st = daemon.RestoreFromRegistry(&PluginRegistry::Instance());
        !st.ok()) {
      std::fprintf(stderr, "ldmsd: registry restore failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
  }
  if (Status st = daemon.Start(); !st.ok()) {
    std::fprintf(stderr, "ldmsd: start failed: %s\n", st.ToString().c_str());
    return 1;
  }
  if (!options.listen_transport.empty()) {
    std::printf("ldmsd %s listening on %s://%s\n", options.name.c_str(),
                options.listen_transport.c_str(),
                daemon.listen_address().c_str());
  }

  if (!config_path.empty()) {
    std::ifstream in(config_path);
    if (!in) {
      std::fprintf(stderr, "ldmsd: cannot open config %s\n",
                   config_path.c_str());
      return 1;
    }
    std::ostringstream script;
    script << in.rdbuf();
    ConfigProcessor processor(daemon);
    if (Status st = processor.ExecuteScript(script.str()); !st.ok()) {
      std::fprintf(stderr, "ldmsd: config error: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  std::unique_ptr<KeyManager> keys;
  if (!key_path.empty()) {
    if (Status st = KeyManager::LoadOrCreate(key_path, &keys); !st.ok()) {
      std::fprintf(stderr, "ldmsd: key file: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  std::unique_ptr<ControlServer> control;
  if (!control_socket.empty()) {
    control =
        std::make_unique<ControlServer>(daemon, control_socket, keys.get());
    if (Status st = control->Start(); !st.ok()) {
      std::fprintf(stderr, "ldmsd: control socket failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  if (foreground_seconds >= 0) {
    (void)g_shutdown.try_acquire_for(std::chrono::seconds(foreground_seconds));
  } else {
    g_shutdown.acquire();
  }
  daemon.Stop();
  return 0;
}
