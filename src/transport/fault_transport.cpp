#include "transport/fault_transport.hpp"

#include <chrono>
#include <thread>

namespace ldmsxx {
namespace {

/// Mutate @p bytes per the decision: truncate cuts to a strict prefix,
/// corrupt flips bits at positions derived from the mutation word. Both keep
/// the result deterministic for a given draw. Empty payloads are left alone
/// (there is nothing the wire could have mangled).
void MutatePayload(FaultKind kind, std::uint64_t mutation,
                   std::vector<std::byte>* bytes) {
  if (bytes->empty()) return;
  if (kind == FaultKind::kTruncate) {
    bytes->resize(mutation % bytes->size());
    return;
  }
  // Corrupt: flip one to four bytes spread by the mutation word.
  const std::size_t flips = 1 + mutation % 4;
  std::uint64_t pos = mutation;
  for (std::size_t i = 0; i < flips; ++i) {
    pos = pos * 6364136223846793005ull + 1442695040888963407ull;
    (*bytes)[pos % bytes->size()] ^= static_cast<std::byte>(0xff & (pos >> 32));
  }
}

class FaultEndpoint final : public Endpoint {
 public:
  FaultEndpoint(std::unique_ptr<Endpoint> inner,
                std::shared_ptr<FaultSchedule> schedule)
      : inner_(std::move(inner)), schedule_(std::move(schedule)) {}

  bool connected() const override {
    return !dead_.load(std::memory_order_acquire) && inner_->connected();
  }

  void Close() override {
    dead_.store(true, std::memory_order_release);
    inner_->Close();
  }

  Status Dir(std::vector<std::string>* instances) override {
    Status st = Intercept(FaultOp::kDir, nullptr, [&] {
      return inner_->Dir(instances);
    });
    if (!st.ok()) stats_.errors.fetch_add(1, std::memory_order_relaxed);
    return st;
  }

  Status Lookup(const std::string& instance,
                std::vector<std::byte>* metadata) override {
    Status st = Intercept(FaultOp::kLookup, metadata, [&] {
      return inner_->Lookup(instance, metadata);
    });
    stats_.lookups.fetch_add(1, std::memory_order_relaxed);
    if (!st.ok()) stats_.errors.fetch_add(1, std::memory_order_relaxed);
    return st;
  }

  Status UpdateRaw(const std::string& instance,
                   std::vector<std::byte>* data) override {
    Status st = Intercept(FaultOp::kUpdate, data, [&] {
      return inner_->UpdateRaw(instance, data);
    });
    stats_.updates.fetch_add(1, std::memory_order_relaxed);
    if (!st.ok()) stats_.errors.fetch_add(1, std::memory_order_relaxed);
    return st;
  }

  Status LookupEx(const std::string& instance, std::vector<std::byte>* metadata,
                  LookupExtra* extra) override {
    if (extra != nullptr) *extra = LookupExtra{};
    Status st = Intercept(FaultOp::kLookup, metadata, [&] {
      return inner_->LookupEx(instance, metadata, extra);
    });
    stats_.lookups.fetch_add(1, std::memory_order_relaxed);
    if (!st.ok()) stats_.errors.fetch_add(1, std::memory_order_relaxed);
    return st;
  }

  // Batched pull under fault injection. One Decision is drawn per entry — the
  // same number and order of kUpdate draws as the per-set protocol, so seeded
  // chaos runs stay aligned whether batching is on or off. Frame semantics
  // decide the blast radius: a drawn disconnect or stall kills/steals the
  // whole batch frame (every entry fails), while truncate/corrupt mangle only
  // that entry's chunk within an otherwise-delivered response.
  void UpdateBatch(const std::vector<BatchUpdateSpec>& specs,
                   std::vector<BatchUpdateResult>* results) override {
    const std::size_t n = specs.size();
    results->assign(n, BatchUpdateResult{});
    stats_.updates.fetch_add(n, std::memory_order_relaxed);
    if (n == 0) return;
    stats_.update_batches.fetch_add(1, std::memory_order_relaxed);
    if (dead_.load(std::memory_order_acquire)) {
      for (auto& r : *results) {
        r.status = {ErrorCode::kDisconnected,
                    "endpoint closed by injected fault"};
      }
      stats_.errors.fetch_add(n, std::memory_order_relaxed);
      return;
    }
    std::vector<FaultSchedule::Decision> draws(n);
    bool disconnect = false;
    bool stall = false;
    DurationNs max_delay = 0;
    for (std::size_t i = 0; i < n; ++i) {
      draws[i] = schedule_->Draw(FaultOp::kUpdate);
      if (draws[i].kind == FaultKind::kDisconnect) disconnect = true;
      if (draws[i].kind == FaultKind::kStall) stall = true;
      if (draws[i].kind == FaultKind::kDelay && draws[i].delay > max_delay) {
        max_delay = draws[i].delay;
      }
    }
    if (disconnect) {
      dead_.store(true, std::memory_order_release);
      inner_->Close();
      for (auto& r : *results) {
        r.status = {ErrorCode::kDisconnected, "injected mid-batch disconnect"};
      }
      stats_.errors.fetch_add(n, std::memory_order_relaxed);
      return;
    }
    if (stall) {
      stats_.timeouts.fetch_add(1, std::memory_order_relaxed);
      for (auto& r : *results) {
        r.status = {ErrorCode::kTimeout, "injected one-way stall"};
      }
      stats_.errors.fetch_add(n, std::memory_order_relaxed);
      return;
    }
    if (max_delay > 0) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(max_delay));
    }
    // The inner endpoint is the one that negotiates deltas; keep its knob in
    // lockstep with the decorator's so tests toggling the outer endpoint get
    // the path they asked for.
    inner_->set_delta_updates(delta_updates());
    inner_->UpdateBatch(specs, results);
    for (std::size_t i = 0; i < n; ++i) {
      BatchUpdateResult& r = (*results)[i];
      if (!r.status.ok()) {
        stats_.errors.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (r.delta) stats_.updates_delta.fetch_add(1, std::memory_order_relaxed);
      if (r.unchanged || r.data.empty()) continue;
      // Truncate/corrupt mangle whatever payload the entry carried — full
      // chunk or delta alike. A mangled delta fails ApplyDelta's structural
      // validation (or its MGN/DGN checks) on the client, never a
      // half-applied mirror.
      if (draws[i].kind == FaultKind::kTruncate ||
          draws[i].kind == FaultKind::kCorrupt) {
        MutatePayload(draws[i].kind, draws[i].mutation, &r.data);
      }
    }
  }

  Status Advertise(const AdvertiseMsg& msg) override {
    return Intercept(FaultOp::kAdvertise, nullptr, [&] {
      return inner_->Advertise(msg);
    });
  }

  // Fan-out query round-trip. The response decodes into a struct, not a
  // byte buffer, so truncate/corrupt are inapplicable (Draw degrades them
  // to no-fault); disconnect/stall/delay behave exactly as for updates.
  Status RemoteQuery(const QueryRequest& req, QueryResponse* resp) override {
    *resp = QueryResponse{};
    Status st = Intercept(FaultOp::kQuery, nullptr, [&] {
      return inner_->RemoteQuery(req, resp);
    });
    if (!st.ok()) stats_.errors.fetch_add(1, std::memory_order_relaxed);
    return st;
  }

  void CorkWrites() override { inner_->CorkWrites(); }
  void UncorkWrites() override { inner_->UncorkWrites(); }

 private:
  /// Common fault wrapper. @p payload is the response buffer truncation and
  /// corruption apply to (nullptr for payload-less ops). The faulted request
  /// still reaches the peer for kTruncate/kCorrupt (the frame went out; only
  /// the response was mangled), while kDisconnect and kStall fail before the
  /// inner call — the frame never completed.
  template <typename Fn>
  Status Intercept(FaultOp op, std::vector<std::byte>* payload, Fn&& fn) {
    if (dead_.load(std::memory_order_acquire)) {
      return {ErrorCode::kDisconnected, "endpoint closed by injected fault"};
    }
    const FaultSchedule::Decision d = schedule_->Draw(op);
    switch (d.kind) {
      case FaultKind::kDisconnect:
        dead_.store(true, std::memory_order_release);
        inner_->Close();
        return {ErrorCode::kDisconnected, "injected mid-frame disconnect"};
      case FaultKind::kStall:
        // One-way stall: the request was written but no response will ever
        // arrive; a real wire transport's deadline machinery converts that
        // into kTimeout, so the decorator reports the same completion.
        stats_.timeouts.fetch_add(1, std::memory_order_relaxed);
        return {ErrorCode::kTimeout, "injected one-way stall"};
      case FaultKind::kDelay:
        std::this_thread::sleep_for(std::chrono::nanoseconds(d.delay));
        break;
      default:
        break;
    }
    Status st = fn();
    if (st.ok() && payload != nullptr &&
        (d.kind == FaultKind::kTruncate || d.kind == FaultKind::kCorrupt)) {
      MutatePayload(d.kind, d.mutation, payload);
    }
    return st;
  }

  std::unique_ptr<Endpoint> inner_;
  std::shared_ptr<FaultSchedule> schedule_;
  std::atomic<bool> dead_{false};
};

}  // namespace

void FaultSchedule::InjectNext(FaultOp op, FaultKind kind, std::size_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < count; ++i) {
    queued_[static_cast<std::size_t>(op)].push_back(kind);
  }
}

bool FaultSchedule::Applicable(FaultOp op, FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return true;
    case FaultKind::kRefuseConnect:
      return op == FaultOp::kConnect;
    case FaultKind::kTruncate:
    case FaultKind::kCorrupt:
      return op == FaultOp::kLookup || op == FaultOp::kUpdate;
    case FaultKind::kDisconnect:
    case FaultKind::kDelay:
    case FaultKind::kStall:
      return op != FaultOp::kConnect;
  }
  return false;
}

FaultSchedule::Decision FaultSchedule::Draw(FaultOp op) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!armed_) return {};
  Decision d;
  auto& queue = queued_[static_cast<std::size_t>(op)];
  if (!queue.empty()) {
    d.kind = queue.front();
    queue.pop_front();
  } else {
    // Independent probability per kind, first hit wins; the rng is consumed
    // identically regardless of outcome so the stream stays aligned across
    // runs even when probabilities differ between scenario phases.
    const double u = rng_.NextDouble();
    double acc = 0.0;
    const std::pair<double, FaultKind> table[] = {
        {op == FaultOp::kConnect ? probs_.refuse_connect : 0.0,
         FaultKind::kRefuseConnect},
        {probs_.disconnect, FaultKind::kDisconnect},
        {probs_.stall, FaultKind::kStall},
        {probs_.truncate, FaultKind::kTruncate},
        {probs_.corrupt, FaultKind::kCorrupt},
        {probs_.delay, FaultKind::kDelay},
    };
    for (const auto& [p, kind] : table) {
      acc += p;
      if (u < acc) {
        d.kind = kind;
        break;
      }
    }
  }
  if (!Applicable(op, d.kind)) d.kind = FaultKind::kNone;
  switch (d.kind) {
    case FaultKind::kNone:
      return {};
    case FaultKind::kRefuseConnect:
      stats_.refused_connects.fetch_add(1, std::memory_order_relaxed);
      break;
    case FaultKind::kDisconnect:
      stats_.disconnects.fetch_add(1, std::memory_order_relaxed);
      break;
    case FaultKind::kDelay:
      d.delay = probs_.max_delay > 0 ? rng_.Next() % probs_.max_delay : 0;
      stats_.delays.fetch_add(1, std::memory_order_relaxed);
      break;
    case FaultKind::kTruncate:
      d.mutation = rng_.Next();
      stats_.truncations.fetch_add(1, std::memory_order_relaxed);
      break;
    case FaultKind::kCorrupt:
      d.mutation = rng_.Next();
      stats_.corruptions.fetch_add(1, std::memory_order_relaxed);
      break;
    case FaultKind::kStall:
      stats_.stalls.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  return d;
}

FaultInjectingTransport::FaultInjectingTransport(
    std::shared_ptr<Transport> inner, std::shared_ptr<FaultSchedule> schedule,
    std::string name)
    : inner_(std::move(inner)),
      schedule_(std::move(schedule)),
      name_(name.empty() ? "fault+" + inner_->name() : std::move(name)) {}

Status FaultInjectingTransport::Listen(const std::string& address,
                                       ServiceHandler* handler,
                                       std::unique_ptr<Listener>* listener) {
  return inner_->Listen(address, handler, listener);
}

Status FaultInjectingTransport::Connect(const std::string& address,
                                        std::unique_ptr<Endpoint>* endpoint) {
  const FaultSchedule::Decision d = schedule_->Draw(FaultOp::kConnect);
  if (d.kind == FaultKind::kRefuseConnect) {
    return {ErrorCode::kDisconnected, "injected connection refusal"};
  }
  std::unique_ptr<Endpoint> inner_ep;
  Status st = inner_->Connect(address, &inner_ep);
  if (!st.ok()) return st;
  *endpoint = std::make_unique<FaultEndpoint>(std::move(inner_ep), schedule_);
  return Status::Ok();
}

}  // namespace ldmsxx
