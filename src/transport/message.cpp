#include "transport/message.hpp"

#include <cstring>
#include <unordered_set>
#include <utility>

#include "core/metric_set.hpp"

namespace ldmsxx {

std::vector<std::byte> EncodeFrame(MsgType type, std::uint64_t request_id,
                                   std::span<const std::byte> payload) {
  ByteWriter w;
  w.U32(static_cast<std::uint32_t>(payload.size()));
  w.U8(static_cast<std::uint8_t>(type));
  w.U64(request_id);
  w.Raw(payload.data(), payload.size());
  return w.Take();
}

FrameHeader DecodeFrameHeader(std::span<const std::byte> bytes) {
  FrameHeader hdr;
  ByteReader r(bytes);
  hdr.payload_len = r.U32();
  hdr.type = static_cast<MsgType>(r.U8());
  hdr.request_id = r.U64();
  return hdr;
}

std::vector<std::byte> EncodeDirResponse(const DirResponse& msg) {
  ByteWriter w;
  w.U8(msg.code);
  w.U32(static_cast<std::uint32_t>(msg.instances.size()));
  for (const auto& name : msg.instances) w.Str(name);
  return w.Take();
}

bool DecodeDirResponse(std::span<const std::byte> payload, DirResponse* out) {
  ByteReader r(payload);
  out->code = r.U8();
  const std::uint32_t n = r.U32();
  // Each instance costs at least the 2-byte length prefix on the wire, so a
  // count exceeding the remaining bytes is malformed — reject before
  // allocating anything proportional to it.
  if (static_cast<std::size_t>(n) > r.remaining() / 2) return false;
  out->instances.clear();
  out->instances.reserve(n);
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    out->instances.push_back(r.Str());
  }
  return r.ok();
}

std::vector<std::byte> EncodeLookupRequest(const LookupRequest& msg) {
  ByteWriter w;
  w.Str(msg.instance);
  return w.Take();
}

bool DecodeLookupRequest(std::span<const std::byte> payload,
                         LookupRequest* out) {
  ByteReader r(payload);
  out->instance = r.Str();
  return r.ok();
}

std::vector<std::byte> EncodeLookupResponse(const LookupResponse& msg) {
  ByteWriter w;
  w.U8(msg.code);
  w.Bytes(msg.metadata);
  // Trailing extension: pre-batch decoders stop after the metadata bytes and
  // never look at these (ByteReader only faults on overrun).
  w.U8(msg.version);
  w.U32(msg.handle);
  return w.Take();
}

bool DecodeLookupResponse(std::span<const std::byte> payload,
                          LookupResponse* out) {
  ByteReader r(payload);
  out->code = r.U8();
  out->metadata = r.Bytes();
  if (r.ok() && r.remaining() >= 5) {
    out->version = r.U8();
    out->handle = r.U32();
  } else {
    out->version = 0;
    out->handle = kInvalidSetHandle;
  }
  return r.ok();
}

std::vector<std::byte> EncodeUpdateRequest(const UpdateRequest& msg) {
  ByteWriter w;
  w.Str(msg.instance);
  return w.Take();
}

bool DecodeUpdateRequest(std::span<const std::byte> payload,
                         UpdateRequest* out) {
  ByteReader r(payload);
  out->instance = r.Str();
  return r.ok();
}

std::vector<std::byte> EncodeUpdateResponse(const UpdateResponse& msg) {
  ByteWriter w;
  w.U8(msg.code);
  w.Bytes(msg.data);
  return w.Take();
}

bool DecodeUpdateResponse(std::span<const std::byte> payload,
                          UpdateResponse* out) {
  ByteReader r(payload);
  out->code = r.U8();
  out->data = r.Bytes();
  return r.ok();
}

std::vector<std::byte> EncodeAdvertise(const AdvertiseMsg& msg) {
  ByteWriter w;
  w.Str(msg.producer);
  w.Str(msg.dialback_address);
  w.Str(msg.transport);
  // Trailing extension (self-assembly announce); old decoders stop after the
  // three strings and ignore these bytes.
  w.U8(msg.announce ? 1 : 0);
  w.U64(msg.node_id);
  return w.Take();
}

bool DecodeAdvertise(std::span<const std::byte> payload, AdvertiseMsg* out) {
  ByteReader r(payload);
  out->producer = r.Str();
  out->dialback_address = r.Str();
  out->transport = r.Str();
  if (r.ok() && r.remaining() >= 9) {
    out->announce = r.U8() != 0;
    out->node_id = r.U64();
  } else {
    out->announce = false;
    out->node_id = 0;
  }
  return r.ok();
}

std::vector<std::byte> EncodeUpdateBatchRequest(const UpdateBatchRequest& msg) {
  ByteWriter w;
  w.U32(static_cast<std::uint32_t>(msg.entries.size()));
  for (const auto& e : msg.entries) {
    w.U32(e.handle);
    w.U64(e.last_dgn);
  }
  // Trailing client-revision byte; v1 decoders read their entries and never
  // look at it (ByteReader only faults on overrun).
  w.U8(msg.version);
  return w.Take();
}

bool DecodeUpdateBatchRequest(std::span<const std::byte> payload,
                              UpdateBatchRequest* out) {
  ByteReader r(payload);
  const std::uint32_t n = r.U32();
  // Each entry is exactly 12 bytes; a count that cannot fit in the remaining
  // payload is malformed — reject before allocating proportional to it.
  if (static_cast<std::size_t>(n) > r.remaining() / 12) return false;
  out->entries.clear();
  out->entries.reserve(n);
  std::unordered_set<std::uint32_t> seen;
  seen.reserve(n);
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    UpdateBatchRequest::Entry e;
    e.handle = r.U32();
    e.last_dgn = r.U64();
    // Response entries are keyed by handle, so duplicates would make the
    // reply ambiguous; treat them as malformed.
    if (!seen.insert(e.handle).second) return false;
    out->entries.push_back(e);
  }
  // Absent trailing byte = a v1 client that never learned to decode kDelta.
  out->version = r.ok() && r.remaining() >= 1 ? r.U8() : 1;
  return r.ok();
}

std::vector<std::byte> EncodeUpdateBatchResponse(
    const UpdateBatchResponse& msg) {
  ByteWriter w;
  w.U8(msg.code);
  w.U32(static_cast<std::uint32_t>(msg.entries.size()));
  for (const auto& e : msg.entries) {
    w.U32(e.handle);
    w.U8(static_cast<std::uint8_t>(e.kind));
    switch (e.kind) {
      case BatchEntryKind::kUnchanged:
        break;
      case BatchEntryKind::kData:
      case BatchEntryKind::kDelta:
        w.Bytes(e.data);
        break;
      case BatchEntryKind::kError:
        w.U8(e.code);
        break;
    }
  }
  return w.Take();
}

std::vector<std::byte> EncodeQueryRequest(const QueryRequest& msg) {
  ByteWriter w;
  w.Str(msg.strgp);
  w.Str(msg.table);
  w.U64(msg.t0);
  w.U64(msg.t1);
  w.U32(static_cast<std::uint32_t>(msg.nodes.size()));
  for (const std::uint64_t n : msg.nodes) w.U64(n);
  w.U32(static_cast<std::uint32_t>(msg.metrics.size()));
  for (const auto& m : msg.metrics) w.Str(m);
  w.U32(msg.limit);
  // Trailing version byte; v0 decoders stop at limit and ignore it.
  w.U8(msg.version);
  return w.Take();
}

bool DecodeQueryRequest(std::span<const std::byte> payload, QueryRequest* out) {
  ByteReader r(payload);
  out->strgp = r.Str();
  out->table = r.Str();
  out->t0 = r.U64();
  out->t1 = r.U64();
  const std::uint32_t nnodes = r.U32();
  if (static_cast<std::size_t>(nnodes) > r.remaining() / 8) return false;
  out->nodes.clear();
  out->nodes.reserve(nnodes);
  for (std::uint32_t i = 0; i < nnodes && r.ok(); ++i) {
    out->nodes.push_back(r.U64());
  }
  const std::uint32_t nmetrics = r.U32();
  // Each metric name costs at least its 2-byte length prefix.
  if (static_cast<std::size_t>(nmetrics) > r.remaining() / 2) return false;
  out->metrics.clear();
  out->metrics.reserve(nmetrics);
  for (std::uint32_t i = 0; i < nmetrics && r.ok(); ++i) {
    out->metrics.push_back(r.Str());
  }
  out->limit = r.U32();
  out->version = r.ok() && r.remaining() >= 1 ? r.U8() : 0;
  return r.ok();
}

std::vector<std::byte> EncodeQueryResponse(const QueryResponse& msg) {
  ByteWriter w;
  w.U8(msg.code);
  w.Str(msg.error);
  w.U16(static_cast<std::uint16_t>(msg.columns.size()));
  for (const auto& c : msg.columns) w.Str(c);
  w.U32(static_cast<std::uint32_t>(msg.rows.size()));
  for (const auto& row : msg.rows) {
    w.U64(row.ts);
    w.U64(row.node);
    for (const double v : row.values) w.D64(v);
  }
  w.U64(msg.total_rows);
  w.U8(msg.truncated);
  w.U64(msg.segments_considered);
  w.U64(msg.segments_pruned);
  w.U64(msg.segments_read);
  w.U64(msg.bytes_read);
  w.U64(msg.bytes_decoded);
  // Trailing version byte; v0 decoders stop at the counters and ignore it.
  w.U8(msg.version);
  return w.Take();
}

bool DecodeQueryResponse(std::span<const std::byte> payload,
                         QueryResponse* out) {
  ByteReader r(payload);
  out->code = r.U8();
  out->error = r.Str();
  const std::uint16_t ncols = r.U16();
  if (static_cast<std::size_t>(ncols) > r.remaining() / 2) return false;
  out->columns.clear();
  out->columns.reserve(ncols);
  for (std::uint16_t i = 0; i < ncols && r.ok(); ++i) {
    out->columns.push_back(r.Str());
  }
  const std::uint32_t nrows = r.U32();
  // Each row is exactly 16 + 8 * ncols bytes.
  const std::size_t row_bytes = 16 + 8 * static_cast<std::size_t>(ncols);
  if (static_cast<std::size_t>(nrows) > r.remaining() / row_bytes) return false;
  out->rows.clear();
  out->rows.reserve(nrows);
  for (std::uint32_t i = 0; i < nrows && r.ok(); ++i) {
    QueryResponse::Row row;
    row.ts = r.U64();
    row.node = r.U64();
    row.values.reserve(ncols);
    for (std::uint16_t c = 0; c < ncols; ++c) row.values.push_back(r.D64());
    out->rows.push_back(std::move(row));
  }
  out->total_rows = r.U64();
  out->truncated = r.U8();
  out->segments_considered = r.U64();
  out->segments_pruned = r.U64();
  out->segments_read = r.U64();
  out->bytes_read = r.U64();
  out->bytes_decoded = r.U64();
  out->version = r.ok() && r.remaining() >= 1 ? r.U8() : 0;
  return r.ok();
}

bool DecodeUpdateBatchResponse(std::span<const std::byte> payload,
                               UpdateBatchResponse* out) {
  ByteReader r(payload);
  out->code = r.U8();
  const std::uint32_t n = r.U32();
  // The smallest entry (kUnchanged) is 5 bytes on the wire.
  if (static_cast<std::size_t>(n) > r.remaining() / 5) return false;
  out->entries.clear();
  out->entries.reserve(n);
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    UpdateBatchResponse::Entry e;
    e.handle = r.U32();
    const std::uint8_t kind = r.U8();
    switch (kind) {
      case static_cast<std::uint8_t>(BatchEntryKind::kUnchanged):
        e.kind = BatchEntryKind::kUnchanged;
        break;
      case static_cast<std::uint8_t>(BatchEntryKind::kData):
        e.kind = BatchEntryKind::kData;
        e.data = r.Bytes();
        break;
      case static_cast<std::uint8_t>(BatchEntryKind::kDelta):
        e.kind = BatchEntryKind::kDelta;
        e.data = r.Bytes();
        // Reject structurally malformed deltas (truncated extent table,
        // overlapping/unsorted extents, value bytes not matching the table)
        // at the framing layer, before they reach any mirror.
        if (!r.ok() || !MetricSet::ValidateDeltaPayload(e.data)) return false;
        break;
      case static_cast<std::uint8_t>(BatchEntryKind::kError):
        e.kind = BatchEntryKind::kError;
        e.code = r.U8();
        break;
      default:
        return false;  // unknown entry kind
    }
    out->entries.push_back(std::move(e));
  }
  return r.ok();
}

}  // namespace ldmsxx
