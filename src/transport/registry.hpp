// Name -> transport plugin resolution, the moral equivalent of ldmsd's
// dynamic transport plugin loading ("the same transport plug-in is used to
// manage all connections to a ldmsd", §IV-B). A default registry with all
// four built-in transports is provided; tests can build private ones.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "transport/transport.hpp"

namespace ldmsxx {

class TransportRegistry {
 public:
  /// Register a transport under its name(); replaces any existing entry.
  void Add(std::shared_ptr<Transport> transport);

  /// Resolve by plugin name; nullptr when unknown.
  std::shared_ptr<Transport> Get(const std::string& name) const;

  /// Registry preloaded with local, sock, rdma, and ugni transports over the
  /// process-wide fabric, plus a disarmed "fault" decorator around local.
  static TransportRegistry& Default();

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<Transport>> transports_;
};

}  // namespace ldmsxx
