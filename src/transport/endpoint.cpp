// Endpoint base-class plumbing: the sync-over-async layering shared by all
// transports. Synchronous Update is UpdateRaw + ApplyData; the default
// async methods complete inline through the synchronous path (correct for
// the in-process transports); UpdateAll issues everything first and then
// harvests, which is what lets a pipelined transport overlap round trips.
#include "transport/transport.hpp"

#include <condition_variable>
#include <mutex>

namespace ldmsxx {

Status Endpoint::Update(const std::string& instance, MetricSet& mirror) {
  std::vector<std::byte> data;
  Status st = UpdateRaw(instance, &data);
  if (!st.ok()) return st;
  return mirror.ApplyData(data);
}

void Endpoint::LookupAsync(const std::string& instance, AsyncHandler handler) {
  std::vector<std::byte> metadata;
  Status st = Lookup(instance, &metadata);
  handler(std::move(st), std::move(metadata));
}

void Endpoint::UpdateAsync(const std::string& instance, AsyncHandler handler) {
  std::vector<std::byte> data;
  Status st = UpdateRaw(instance, &data);
  handler(std::move(st), std::move(data));
}

Status Endpoint::RemoteQuery(const QueryRequest& req, QueryResponse* resp) {
  (void)req;
  *resp = QueryResponse{};
  resp->code = static_cast<std::uint8_t>(ErrorCode::kUnsupported);
  resp->error = "transport does not carry query frames";
  return {ErrorCode::kUnsupported, "transport does not carry query frames"};
}

Status Endpoint::LookupEx(const std::string& instance,
                          std::vector<std::byte>* metadata,
                          LookupExtra* extra) {
  if (extra != nullptr) *extra = LookupExtra{};
  return Lookup(instance, metadata);
}

void Endpoint::UpdateBatch(const std::vector<BatchUpdateSpec>& specs,
                           std::vector<BatchUpdateResult>* results) {
  const std::size_t n = specs.size();
  results->assign(n, BatchUpdateResult{});
  if (n == 0) return;
  // Legacy fallback: per-set pipelined pulls. No DGN gating happens on the
  // wire, so `unchanged` stays false and the caller does its own gn check
  // on the returned chunk, exactly as before the batch protocol.
  struct Harvest {
    std::mutex mu;
    std::condition_variable cv;
    std::size_t remaining;
  } harvest{.remaining = n};
  CorkWrites();
  for (std::size_t i = 0; i < n; ++i) {
    UpdateAsync(specs[i].instance,
                [results, &harvest, i](Status st, std::vector<std::byte> data) {
                  std::lock_guard<std::mutex> lock(harvest.mu);
                  (*results)[i].status = std::move(st);
                  (*results)[i].data = std::move(data);
                  if (--harvest.remaining == 0) harvest.cv.notify_all();
                });
  }
  UncorkWrites();
  std::unique_lock<std::mutex> lock(harvest.mu);
  harvest.cv.wait(lock, [&harvest] { return harvest.remaining == 0; });
}

std::vector<Status> Endpoint::UpdateAll(
    const std::vector<std::string>& instances,
    const std::vector<MetricSet*>& mirrors) {
  const std::size_t n = instances.size();
  std::vector<Status> statuses(n);
  if (n == 0) return statuses;
  std::vector<BatchUpdateSpec> specs(n);
  for (std::size_t i = 0; i < n; ++i) {
    specs[i].instance = instances[i];
    MetricSet* mirror = i < mirrors.size() ? mirrors[i] : nullptr;
    if (mirror != nullptr) specs[i].last_dgn = mirror->data_gn();
  }
  std::vector<BatchUpdateResult> results;
  UpdateBatch(specs, &results);
  for (std::size_t i = 0; i < n; ++i) {
    Status st = std::move(results[i].status);
    MetricSet* mirror = i < mirrors.size() ? mirrors[i] : nullptr;
    if (st.ok() && !results[i].unchanged && mirror != nullptr) {
      st = results[i].delta ? mirror->ApplyDelta(results[i].data)
                            : mirror->ApplyData(results[i].data);
    }
    statuses[i] = std::move(st);
  }
  return statuses;
}

void ServeUpdateBatch(ServiceHandler& handler, const UpdateBatchRequest& req,
                      UpdateBatchResponse* resp, TransportStats* stats) {
  resp->code = 0;
  resp->entries.clear();
  resp->entries.reserve(req.entries.size());
  if (stats != nullptr) {
    stats->update_batches.fetch_add(1, std::memory_order_relaxed);
    stats->updates.fetch_add(req.entries.size(), std::memory_order_relaxed);
  }
  for (const auto& e : req.entries) {
    UpdateBatchResponse::Entry out;
    out.handle = e.handle;
    MetricSetPtr set = handler.HandleResolveHandle(e.handle);
    if (set == nullptr) {
      out.kind = BatchEntryKind::kError;
      out.code = static_cast<std::uint8_t>(ErrorCode::kNotFound);
      resp->entries.push_back(std::move(out));
      continue;
    }
    // DGN gate: only an exact match means "the chunk you already hold". A
    // producer restart can reset the DGN below last_dgn, and that chunk is
    // new data the aggregator must see.
    if (set->data_gn() == e.last_dgn && set->consistent()) {
      out.kind = BatchEntryKind::kUnchanged;
      if (stats != nullptr) {
        stats->updates_unchanged.fetch_add(1, std::memory_order_relaxed);
      }
      resp->entries.push_back(std::move(out));
      continue;
    }
    // Delta path: only for clients that declared they can decode it, and
    // only when the set advanced exactly one transaction past what the
    // client holds (no delta chains across gaps). Anything else — including
    // a torn delta snapshot — falls through to the full chunk.
    if (req.version >= kDeltaProtocolVersion) {
      ByteWriter dw(&out.data);
      if (set->SnapshotDelta(e.last_dgn, dw).ok()) {
        out.kind = BatchEntryKind::kDelta;
        if (stats != nullptr) {
          stats->updates_delta.fetch_add(1, std::memory_order_relaxed);
          stats->delta_bytes_saved.fetch_add(
              set->data_size() - out.data.size(), std::memory_order_relaxed);
        }
        resp->entries.push_back(std::move(out));
        continue;
      }
      out.data.clear();
    }
    out.data.resize(set->data_size());
    Status st = set->SnapshotData(out.data);
    if (!st.ok()) {
      out.kind = BatchEntryKind::kError;
      out.code = static_cast<std::uint8_t>(st.code());
      out.data.clear();
    } else {
      out.kind = BatchEntryKind::kData;
    }
    resp->entries.push_back(std::move(out));
  }
}

}  // namespace ldmsxx
