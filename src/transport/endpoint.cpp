// Endpoint base-class plumbing: the sync-over-async layering shared by all
// transports. Synchronous Update is UpdateRaw + ApplyData; the default
// async methods complete inline through the synchronous path (correct for
// the in-process transports); UpdateAll issues everything first and then
// harvests, which is what lets a pipelined transport overlap round trips.
#include "transport/transport.hpp"

#include <condition_variable>
#include <mutex>

namespace ldmsxx {

Status Endpoint::Update(const std::string& instance, MetricSet& mirror) {
  std::vector<std::byte> data;
  Status st = UpdateRaw(instance, &data);
  if (!st.ok()) return st;
  return mirror.ApplyData(data);
}

void Endpoint::LookupAsync(const std::string& instance, AsyncHandler handler) {
  std::vector<std::byte> metadata;
  Status st = Lookup(instance, &metadata);
  handler(std::move(st), std::move(metadata));
}

void Endpoint::UpdateAsync(const std::string& instance, AsyncHandler handler) {
  std::vector<std::byte> data;
  Status st = UpdateRaw(instance, &data);
  handler(std::move(st), std::move(data));
}

std::vector<Status> Endpoint::UpdateAll(
    const std::vector<std::string>& instances,
    const std::vector<MetricSet*>& mirrors) {
  const std::size_t n = instances.size();
  std::vector<Status> statuses(n);
  if (n == 0) return statuses;
  struct Harvest {
    std::mutex mu;
    std::condition_variable cv;
    std::size_t remaining;
  } harvest{.remaining = n};
  CorkWrites();
  for (std::size_t i = 0; i < n; ++i) {
    MetricSet* mirror = i < mirrors.size() ? mirrors[i] : nullptr;
    UpdateAsync(instances[i],
                [&statuses, &harvest, mirror, i](Status st,
                                                 std::vector<std::byte> data) {
                  if (st.ok() && mirror != nullptr) {
                    st = mirror->ApplyData(data);
                  }
                  std::lock_guard<std::mutex> lock(harvest.mu);
                  statuses[i] = std::move(st);
                  if (--harvest.remaining == 0) harvest.cv.notify_all();
                });
  }
  UncorkWrites();
  std::unique_lock<std::mutex> lock(harvest.mu);
  harvest.cv.wait(lock, [&harvest] { return harvest.remaining == 0; });
  return statuses;
}

}  // namespace ldmsxx
