// Transport plugin abstraction. ldmsd loads one transport per connection
// type; the paper ships sock (TCP), rdma (Infiniband/iWARP), and ugni
// (Gemini). We provide:
//   "local" — in-process two-sided transport (function-call fabric)
//   "sock"  — real TCP over loopback with an epoll reactor server
//   "rdma"  — simulated IB RDMA: one-sided data reads that consume no
//             target CPU (modeled after Figure 2's note on flow {f})
//   "ugni"  — simulated Gemini RDMA; same semantics, different fan-in and
//             latency envelope
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/metric_set.hpp"
#include "transport/message.hpp"
#include "util/clock.hpp"
#include "util/status.hpp"

namespace ldmsxx {

/// Counters every endpoint/listener maintains; benches read these for the
/// network-footprint rows of §IV-D.
struct TransportStats {
  std::atomic<std::uint64_t> lookups{0};
  std::atomic<std::uint64_t> updates{0};
  std::atomic<std::uint64_t> bytes_tx{0};
  std::atomic<std::uint64_t> bytes_rx{0};
  std::atomic<std::uint64_t> errors{0};
  /// Requests issued but not yet completed (gauge; pipelined transports).
  std::atomic<std::uint64_t> outstanding{0};
  /// Requests completed with kTimeout after exceeding their deadline.
  std::atomic<std::uint64_t> timeouts{0};
  /// Nanoseconds of *server-side* CPU consumed servicing this peer; stays 0
  /// for one-sided RDMA data fetches.
  std::atomic<std::uint64_t> server_cpu_ns{0};
  /// kUpdateBatchReq frames issued (client) or served (listener). Each batch
  /// frame replaces `entries` individual update round-trips; `updates` still
  /// counts per-set results so the ratio updates/update_batches is the
  /// amortization factor.
  std::atomic<std::uint64_t> update_batches{0};
  /// Batch entries answered with the 5-byte "unchanged" marker instead of a
  /// full data chunk (DGN gate hit).
  std::atomic<std::uint64_t> updates_unchanged{0};
  /// Batch entries answered with a changed-extents delta instead of a full
  /// data chunk (the DGN advanced exactly one transaction and the dirty set
  /// was small enough to win).
  std::atomic<std::uint64_t> updates_delta{0};
  /// Wire bytes avoided by those deltas: sum over delta entries of
  /// (full data chunk size - delta payload size).
  std::atomic<std::uint64_t> delta_bytes_saved{0};
};

/// Service interface a daemon exposes to its listeners. Implemented by
/// Ldmsd; invoked by transport server machinery.
class ServiceHandler {
 public:
  virtual ~ServiceHandler() = default;

  /// List available set instance names.
  virtual std::vector<std::string> HandleDir() = 0;

  /// Return the serialized metadata chunk for @p instance.
  virtual Status HandleLookup(const std::string& instance,
                              std::vector<std::byte>* metadata) = 0;

  /// Snapshot the data chunk for @p instance into @p data.
  virtual Status HandleUpdate(const std::string& instance,
                              std::vector<std::byte>* data) = 0;

  /// A producer announced itself and asks to be collected from via
  /// @p dialback (asymmetric-network support). Default: ignore.
  virtual void HandleAdvertise(const AdvertiseMsg& msg) { (void)msg; }

  /// RDMA transports pin the set itself and read its memory directly.
  /// Returns nullptr when the instance is unknown.
  virtual MetricSetPtr HandleRdmaExpose(const std::string& instance) = 0;

  /// Assign (or return the existing) compact handle for @p instance, used by
  /// the batch update protocol to address sets without instance-name strings.
  /// The default keeps legacy handlers at protocol version 0: no handle is
  /// assigned, so clients fall back to per-set updates.
  virtual std::uint32_t HandleAssignHandle(const std::string& instance) {
    (void)instance;
    return kInvalidSetHandle;
  }

  /// Resolve a handle previously returned by HandleAssignHandle back to the
  /// live set. Returns nullptr for unknown/stale handles (e.g. the set was
  /// removed); batch serving turns that into a per-entry kNotFound.
  virtual MetricSetPtr HandleResolveHandle(std::uint32_t handle) {
    (void)handle;
    return nullptr;
  }

  /// Run a tsdb predicate against this daemon's local store (tree-sharded
  /// query fan-out). The default keeps legacy handlers honest: the whole
  /// request fails with kUnsupported, which a fanning-out root counts as a
  /// failed leaf rather than a transport error.
  virtual void HandleQuery(const QueryRequest& req, QueryResponse* resp) {
    (void)req;
    resp->code = static_cast<std::uint8_t>(ErrorCode::kUnsupported);
    resp->error = "query not supported by this peer";
  }
};

/// Default per-request deadline for transports that enforce one. Generous:
/// its job is to unwedge aggregator threads from a stalled peer, not to
/// police slow-but-alive ones.
constexpr DurationNs kDefaultRequestTimeoutNs = 5 * kNsPerSec;

/// Completion of an async request: the status plus the decoded response
/// body — serialized metadata for lookups, the raw data chunk for updates
/// (empty on failure). Handlers run on the transport's completion context
/// (the sock endpoint's reader thread; inline for transports without an
/// async engine), so they must be quick and must not block waiting for
/// further completions from the same endpoint.
using AsyncHandler = std::function<void(Status, std::vector<std::byte>)>;

/// Client side of a connection to one peer.
class Endpoint {
 public:
  virtual ~Endpoint() = default;

  virtual bool connected() const = 0;
  virtual void Close() = 0;

  /// Set discovery (flow preceding lookup).
  virtual Status Dir(std::vector<std::string>* instances) = 0;

  /// Fetch serialized metadata for @p instance (Figure 2 flows {a}-{b}).
  virtual Status Lookup(const std::string& instance,
                        std::vector<std::byte>* metadata) = 0;

  /// Pull the raw data chunk for @p instance without applying it anywhere
  /// (flows {e}-{g}). Implementations must only move the data chunk, never
  /// the metadata.
  virtual Status UpdateRaw(const std::string& instance,
                           std::vector<std::byte>* data) = 0;

  /// Pull the current data chunk for @p instance into @p mirror: UpdateRaw
  /// plus MetricSet::ApplyData.
  Status Update(const std::string& instance, MetricSet& mirror);

  /// Async metadata fetch. The base implementation completes inline via the
  /// synchronous path; pipelined transports (sock) override it.
  virtual void LookupAsync(const std::string& instance, AsyncHandler handler);

  /// Async data pull; delivers the raw data chunk, the caller applies it.
  /// Base implementation completes inline via UpdateRaw.
  virtual void UpdateAsync(const std::string& instance, AsyncHandler handler);

  /// Extra fields carried in the trailing bytes of a lookup response.
  struct LookupExtra {
    std::uint8_t version = 0;  // peer's batch protocol version (0 = legacy)
    std::uint32_t handle = kInvalidSetHandle;
  };

  /// Lookup that also surfaces the peer's protocol version and the compact
  /// set handle it assigned. The base implementation delegates to Lookup()
  /// and reports a legacy peer (version 0, no handle).
  virtual Status LookupEx(const std::string& instance,
                          std::vector<std::byte>* metadata, LookupExtra* extra);

  /// One set's slot in a batched pull.
  struct BatchUpdateSpec {
    std::string instance;  // fallback addressing for legacy peers
    std::uint32_t handle = kInvalidSetHandle;
    std::uint64_t last_dgn = 0;  // DGN the caller last consumed
  };

  /// Per-spec outcome of UpdateBatch.
  struct BatchUpdateResult {
    Status status;
    bool unchanged = false;  // peer answered with the 5-byte DGN-gate marker
    bool batched = false;    // travelled in a kUpdateBatchReq frame
    /// data holds a delta payload (apply with MetricSet::ApplyDelta) rather
    /// than a full data chunk.
    bool delta = false;
    std::vector<std::byte> data;  // data chunk; empty if unchanged or failed
  };

  /// Pull every spec in as few wire round-trips as the transport allows.
  /// Batch-capable transports put all handle-addressed specs in one
  /// kUpdateBatchReq frame (when the peer negotiated version >= 1) and fall
  /// back to per-set UpdateAsync for the rest; the base implementation is
  /// that fallback alone. Synchronous: returns once every result is filled,
  /// in spec order.
  virtual void UpdateBatch(const std::vector<BatchUpdateSpec>& specs,
                           std::vector<BatchUpdateResult>* results);

  /// Batch helper: pull every instances[i] and apply it into *mirrors[i]
  /// (a null mirror skips the apply). Built on UpdateBatch, so transports
  /// with a batch path use it automatically; returns per-instance statuses
  /// in input order. An "unchanged" batch answer maps to Ok with the mirror
  /// left untouched (its DGN already matches).
  std::vector<Status> UpdateAll(const std::vector<std::string>& instances,
                                const std::vector<MetricSet*>& mirrors);

  /// Fire-and-forget advertise (producer-initiated connection setup).
  virtual Status Advertise(const AdvertiseMsg& msg) = 0;

  /// Forward a tsdb query to the peer and wait for its result page. The
  /// base implementation reports kUnsupported — only transports that carry
  /// kQueryReq frames (sock, local) override it.
  virtual Status RemoteQuery(const QueryRequest& req, QueryResponse* resp);

  /// Write corking, used by UpdateAll: between Cork and Uncork a wire
  /// transport may buffer outgoing request frames and flush them as one
  /// send, cutting per-request syscalls on batch issues. Defaults are
  /// no-ops; in-process transports complete inline anyway. Calls must be
  /// paired, on the same thread.
  virtual void CorkWrites() {}
  virtual void UncorkWrites() {}

  /// Whether this client asks peers for delta-encoded batch entries
  /// (declared in the batch request's trailing version byte). On by
  /// default; tests and ablation benches turn it off to force the
  /// full-chunk path on an otherwise identical schedule.
  void set_delta_updates(bool enabled) {
    delta_updates_.store(enabled, std::memory_order_relaxed);
  }
  bool delta_updates() const {
    return delta_updates_.load(std::memory_order_relaxed);
  }

  /// Per-request deadline; a request not completed within it finishes with
  /// kTimeout. 0 disables the deadline. Only transports with a real wire in
  /// between enforce it (sock); in-process transports complete inline.
  void set_request_timeout(DurationNs timeout) {
    request_timeout_ns_.store(timeout, std::memory_order_relaxed);
  }
  DurationNs request_timeout() const {
    return request_timeout_ns_.load(std::memory_order_relaxed);
  }

  const TransportStats& stats() const { return stats_; }

 protected:
  TransportStats stats_;
  std::atomic<DurationNs> request_timeout_ns_{kDefaultRequestTimeoutNs};
  std::atomic<bool> delta_updates_{true};
};

/// Server-side batch service logic shared by the in-process transports (the
/// sock listener gather-encodes the same semantics straight into its write
/// buffer): resolve each handle, DGN-gate, then — when the client declared
/// protocol version >= kDeltaProtocolVersion and the set advanced exactly
/// one transaction — answer with a changed-extents kDelta entry, else a
/// full-chunk snapshot. Unknown handles become per-entry kNotFound errors; a
/// torn snapshot becomes kInconsistent. @p stats (optional) receives
/// updates/updates_unchanged/updates_delta/delta_bytes_saved/update_batches
/// accounting.
void ServeUpdateBatch(ServiceHandler& handler, const UpdateBatchRequest& req,
                      UpdateBatchResponse* resp, TransportStats* stats);

/// Server side: alive while in scope; dispatches requests to the handler.
class Listener {
 public:
  virtual ~Listener() = default;
  virtual std::string address() const = 0;
  const TransportStats& stats() const { return stats_; }

 protected:
  TransportStats stats_;
};

/// A transport plugin: a factory for listeners and endpoints.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Plugin name ("sock", "rdma", "ugni", "local").
  virtual const std::string& name() const = 0;

  /// Start serving @p handler at @p address. The listener stops when the
  /// returned object is destroyed.
  virtual Status Listen(const std::string& address, ServiceHandler* handler,
                        std::unique_ptr<Listener>* listener) = 0;

  /// Connect to a listening peer.
  virtual Status Connect(const std::string& address,
                         std::unique_ptr<Endpoint>* endpoint) = 0;
};

}  // namespace ldmsxx
