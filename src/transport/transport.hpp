// Transport plugin abstraction. ldmsd loads one transport per connection
// type; the paper ships sock (TCP), rdma (Infiniband/iWARP), and ugni
// (Gemini). We provide:
//   "local" — in-process two-sided transport (function-call fabric)
//   "sock"  — real TCP over loopback with an epoll reactor server
//   "rdma"  — simulated IB RDMA: one-sided data reads that consume no
//             target CPU (modeled after Figure 2's note on flow {f})
//   "ugni"  — simulated Gemini RDMA; same semantics, different fan-in and
//             latency envelope
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/metric_set.hpp"
#include "transport/message.hpp"
#include "util/status.hpp"

namespace ldmsxx {

/// Counters every endpoint/listener maintains; benches read these for the
/// network-footprint rows of §IV-D.
struct TransportStats {
  std::atomic<std::uint64_t> lookups{0};
  std::atomic<std::uint64_t> updates{0};
  std::atomic<std::uint64_t> bytes_tx{0};
  std::atomic<std::uint64_t> bytes_rx{0};
  std::atomic<std::uint64_t> errors{0};
  /// Nanoseconds of *server-side* CPU consumed servicing this peer; stays 0
  /// for one-sided RDMA data fetches.
  std::atomic<std::uint64_t> server_cpu_ns{0};
};

/// Service interface a daemon exposes to its listeners. Implemented by
/// Ldmsd; invoked by transport server machinery.
class ServiceHandler {
 public:
  virtual ~ServiceHandler() = default;

  /// List available set instance names.
  virtual std::vector<std::string> HandleDir() = 0;

  /// Return the serialized metadata chunk for @p instance.
  virtual Status HandleLookup(const std::string& instance,
                              std::vector<std::byte>* metadata) = 0;

  /// Snapshot the data chunk for @p instance into @p data.
  virtual Status HandleUpdate(const std::string& instance,
                              std::vector<std::byte>* data) = 0;

  /// A producer announced itself and asks to be collected from via
  /// @p dialback (asymmetric-network support). Default: ignore.
  virtual void HandleAdvertise(const AdvertiseMsg& msg) { (void)msg; }

  /// RDMA transports pin the set itself and read its memory directly.
  /// Returns nullptr when the instance is unknown.
  virtual MetricSetPtr HandleRdmaExpose(const std::string& instance) = 0;
};

/// Client side of a connection to one peer.
class Endpoint {
 public:
  virtual ~Endpoint() = default;

  virtual bool connected() const = 0;
  virtual void Close() = 0;

  /// Set discovery (flow preceding lookup).
  virtual Status Dir(std::vector<std::string>* instances) = 0;

  /// Fetch serialized metadata for @p instance (Figure 2 flows {a}-{b}).
  virtual Status Lookup(const std::string& instance,
                        std::vector<std::byte>* metadata) = 0;

  /// Pull the current data chunk for @p instance into @p mirror (flows
  /// {e}-{g}). Implementations must only move the data chunk, never the
  /// metadata.
  virtual Status Update(const std::string& instance, MetricSet& mirror) = 0;

  /// Fire-and-forget advertise (producer-initiated connection setup).
  virtual Status Advertise(const AdvertiseMsg& msg) = 0;

  const TransportStats& stats() const { return stats_; }

 protected:
  TransportStats stats_;
};

/// Server side: alive while in scope; dispatches requests to the handler.
class Listener {
 public:
  virtual ~Listener() = default;
  virtual std::string address() const = 0;
  const TransportStats& stats() const { return stats_; }

 protected:
  TransportStats stats_;
};

/// A transport plugin: a factory for listeners and endpoints.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Plugin name ("sock", "rdma", "ugni", "local").
  virtual const std::string& name() const = 0;

  /// Start serving @p handler at @p address. The listener stops when the
  /// returned object is destroyed.
  virtual Status Listen(const std::string& address, ServiceHandler* handler,
                        std::unique_ptr<Listener>* listener) = 0;

  /// Connect to a listening peer.
  virtual Status Connect(const std::string& address,
                         std::unique_ptr<Endpoint>* endpoint) = 0;
};

}  // namespace ldmsxx
