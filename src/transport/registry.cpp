#include "transport/registry.hpp"

#include "transport/fault_transport.hpp"
#include "transport/local_transport.hpp"
#include "transport/rdma_transport.hpp"
#include "transport/sock_transport.hpp"

namespace ldmsxx {

void TransportRegistry::Add(std::shared_ptr<Transport> transport) {
  std::lock_guard<std::mutex> lock(mu_);
  transports_[transport->name()] = std::move(transport);
}

std::shared_ptr<Transport> TransportRegistry::Get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = transports_.find(name);
  if (it == transports_.end()) return nullptr;
  return it->second;
}

TransportRegistry& TransportRegistry::Default() {
  static TransportRegistry registry;
  static bool init = [] {
    registry.Add(std::make_shared<LocalTransport>());
    registry.Add(std::make_shared<SockTransport>());
    registry.Add(RdmaSimTransport::Infiniband());
    registry.Add(RdmaSimTransport::Gemini());
    // Fault-injection decorator over local, disarmed (pure passthrough)
    // until a test arms its schedule; chaos harnesses usually build private
    // registries instead, but "fault" is resolvable out of the box.
    registry.Add(std::make_shared<FaultInjectingTransport>(
        std::make_shared<LocalTransport>(), std::make_shared<FaultSchedule>(),
        "fault"));
    return true;
  }();
  (void)init;
  return registry;
}

}  // namespace ldmsxx
