// "local" transport: two-sided request/response over the in-process fabric.
// Semantically equivalent to sock (every operation invokes the target
// daemon's handler and consumes its CPU) without kernel sockets, so tests
// and large simulations can run thousands of daemons cheaply. Byte counters
// are charged as if the messages had been serialized, so network-load
// accounting matches the sock transport.
#pragma once

#include <memory>

#include "transport/fabric.hpp"
#include "transport/transport.hpp"

namespace ldmsxx {

class LocalTransport final : public Transport {
 public:
  /// @param fabric defaults to the process-wide fabric
  explicit LocalTransport(Fabric* fabric = nullptr);

  const std::string& name() const override { return name_; }

  Status Listen(const std::string& address, ServiceHandler* handler,
                std::unique_ptr<Listener>* listener) override;

  Status Connect(const std::string& address,
                 std::unique_ptr<Endpoint>* endpoint) override;

 private:
  std::string name_ = "local";
  Fabric* fabric_;
};

}  // namespace ldmsxx
