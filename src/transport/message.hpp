// Wire protocol between ldmsd peers, mirroring the paper's Figure 2 flows:
// dir (set discovery), lookup (returns the metadata chunk once), update
// (pulls only the data chunk each interval), plus an advertise control
// message supporting connection initiation from the sampler side
// ("mechanisms to enable initiation of a connection from either side",
// §IV-B).
//
// Frame layout: u32 payload_len | u8 type | u64 request_id | payload.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/wire.hpp"
#include "util/status.hpp"

namespace ldmsxx {

enum class MsgType : std::uint8_t {
  kDirReq = 1,
  kDirResp,
  kLookupReq,
  kLookupResp,
  kUpdateReq,
  kUpdateResp,
  kAdvertise,  // sampler -> aggregator: "connect back to me"
  kUpdateBatchReq,   // aggregator -> producer: (handle, last_dgn) pairs
  kUpdateBatchResp,  // producer -> aggregator: data / unchanged / error entries
  kQueryReq,   // aggregator -> leaf: run a tsdb predicate on your local store
  kQueryResp,  // leaf -> aggregator: bounded result page + scan counters
};

/// Protocol revision advertised in the trailing bytes of a lookup response.
/// Version >= 1 peers understand kUpdateBatchReq; version 0 (or a response
/// with no trailing bytes at all, i.e. a pre-batch peer) means the client
/// must stick to per-set kUpdateReq frames — old servers silently drop
/// unknown frame types, which would otherwise turn into request timeouts.
/// Version >= 2 peers additionally understand kDelta batch-response entries;
/// a client declares its own revision in a trailing byte of the batch
/// request (absent = version 1), and the server only emits kDelta entries to
/// clients that declared >= kDeltaProtocolVersion. Both extensions ride in
/// ignored-by-old-decoders trailing bytes, so every version pairing
/// interoperates (worst case: full chunks).
constexpr std::uint8_t kBatchProtocolVersion = 2;
/// Minimum peer revision at which the batch protocol itself is usable.
constexpr std::uint8_t kMinBatchProtocolVersion = 1;
/// Minimum declared client revision at which a server may answer kDelta.
constexpr std::uint8_t kDeltaProtocolVersion = 2;

/// "No handle assigned." Handles are compact u32 ids a producer assigns at
/// lookup time; they address the set in batch updates without re-sending the
/// instance name on every cycle.
constexpr std::uint32_t kInvalidSetHandle = 0xffffffffu;

/// Upper bound on a frame payload. Metric sets are tens of kB; anything
/// near this limit is a corrupt or hostile peer, and both ends of the sock
/// transport drop the connection rather than allocate unbounded buffers.
constexpr std::uint32_t kMaxFramePayload = 64u << 20;

/// Fixed part of every frame.
struct FrameHeader {
  std::uint32_t payload_len = 0;
  MsgType type = MsgType::kDirReq;
  std::uint64_t request_id = 0;
};
constexpr std::size_t kFrameHeaderSize = 4 + 1 + 8;

struct DirResponse {
  std::uint8_t code = 0;  // ErrorCode as u8
  std::vector<std::string> instances;
};

struct LookupRequest {
  std::string instance;
};

struct LookupResponse {
  std::uint8_t code = 0;
  std::vector<std::byte> metadata;
  // Trailing optional fields (appended after metadata). Old decoders ignore
  // trailing bytes; new decoders treat their absence as version 0 / no
  // handle, so the extension is wire-compatible in both directions.
  std::uint8_t version = 0;
  std::uint32_t handle = kInvalidSetHandle;
};

struct UpdateRequest {
  std::string instance;
};

struct UpdateResponse {
  std::uint8_t code = 0;
  std::vector<std::byte> data;
};

/// One batched pull for every set on a producer. Wire form:
///   u32 count | count x (u32 handle, u64 last_dgn) | [u8 version]
/// The decoder rejects duplicate handles — response entries are keyed by
/// handle, so a duplicate would make the reply ambiguous. The trailing
/// version byte declares the client's protocol revision (v1 encoders omit
/// it; decoders treat absence as 1): it is what authorizes the server to
/// answer with kDelta entries.
struct UpdateBatchRequest {
  struct Entry {
    std::uint32_t handle = kInvalidSetHandle;
    std::uint64_t last_dgn = 0;
  };
  std::vector<Entry> entries;
  std::uint8_t version = kBatchProtocolVersion;
};

/// Per-entry result kind inside a batch response.
enum class BatchEntryKind : std::uint8_t {
  kUnchanged = 0,  // DGN has not advanced past last_dgn; no payload
  kData = 1,       // full data chunk follows
  kError = 2,      // per-set failure (unknown handle, torn snapshot, ...)
  kDelta = 3,      // changed-extents delta against the client's last_dgn
};

/// Batch response. Wire form:
///   u8 code | u32 count | count x entry
///   entry: u32 handle | u8 kind | (kData: u32 len, bytes)
///                                 (kDelta: u32 len, delta payload)
///                                 (kError: u8 code)
///                                 (kUnchanged: nothing)  -- exactly 5 bytes
/// A kDelta payload is the MetricSet delta format (see metric_set.hpp):
///   u32 meta_gn | u64 base_dgn | u64 new_dgn | u32 ts_sec | u32 ts_usec |
///   u16 extent_count | extents | packed values
/// and is structurally validated at decode time, so a malformed delta is a
/// framing error, never a half-applied mirror.
/// A non-zero top-level code means the whole request failed (e.g. malformed)
/// and count is 0.
struct UpdateBatchResponse {
  struct Entry {
    std::uint32_t handle = kInvalidSetHandle;
    BatchEntryKind kind = BatchEntryKind::kError;
    std::uint8_t code = 0;  // ErrorCode, kError entries only
    std::vector<std::byte> data;
  };
  std::uint8_t code = 0;
  std::vector<Entry> entries;
};

/// Tree-sharded query fan-out (ISSUE 10): the root aggregator forwards a
/// tsdb predicate to each leaf, which runs it against its local store and
/// answers with a bounded page of rows. Wire form:
///   str strgp | str table | u64 t0 | u64 t1 |
///   u32 nnodes | nnodes x u64 | u32 nmetrics | nmetrics x str |
///   u32 limit | [u8 version]
/// The trailing version byte follows the lookup-response idiom: old
/// decoders stop at limit and ignore it; its absence decodes as version 0.
struct QueryRequest {
  std::string strgp;  ///< storage policy name the store is registered under
  std::string table;
  std::uint64_t t0 = 0;
  std::uint64_t t1 = ~std::uint64_t{0};
  std::vector<std::uint64_t> nodes;   ///< empty = all nodes
  std::vector<std::string> metrics;   ///< empty = all columns
  /// Row cap for the response page; 0 = the server's default cap. The server
  /// never exceeds its own kMaxQueryRespRows regardless.
  std::uint32_t limit = 0;
  std::uint8_t version = 0;
};

/// Hard server-side ceiling on rows in one kQueryResp page; a fan-out over
/// many leaves must stay bounded no matter what limit the client asked for.
constexpr std::uint32_t kMaxQueryRespRows = 65536;

/// Query answer: one page of rows plus the leaf's scan counters, so the
/// root can aggregate pruning/compression effectiveness across the tree.
/// Wire form:
///   u8 code | str error | u16 ncols | ncols x str |
///   u32 nrows | nrows x (u64 ts, u64 node, ncols x f64) |
///   u64 total_rows | u8 truncated |
///   u64 segments_considered | u64 segments_pruned | u64 segments_read |
///   u64 bytes_read | u64 bytes_decoded | [u8 version]
struct QueryResponse {
  struct Row {
    std::uint64_t ts = 0;
    std::uint64_t node = 0;
    std::vector<double> values;  ///< one per column
  };
  std::uint8_t code = 0;  // ErrorCode as u8; non-zero => rows empty
  std::string error;
  std::vector<std::string> columns;
  std::vector<Row> rows;
  /// Rows the predicate matched on this leaf (>= rows.size(); they differ
  /// exactly when truncated is set).
  std::uint64_t total_rows = 0;
  std::uint8_t truncated = 0;
  std::uint64_t segments_considered = 0;
  std::uint64_t segments_pruned = 0;
  std::uint64_t segments_read = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_decoded = 0;
  std::uint8_t version = 0;
};

struct AdvertiseMsg {
  std::string producer;
  std::string dialback_address;  // where the aggregator should connect
  std::string transport;         // transport plugin name for dialback
  /// Trailing extension (same idiom as the lookup-response version byte:
  /// old decoders stop after the three strings and ignore these). announce
  /// upgrades a plain advertise to self-assembly: "place me in the
  /// aggregation tree" — the receiving seed aggregator consults its
  /// TreeManager, assigns a leaf, and persists the assignment. node_id is
  /// the announcing host's torus node id, the rendezvous placement input.
  bool announce = false;
  std::uint64_t node_id = 0;
};

/// Encode a complete frame (header + payload).
std::vector<std::byte> EncodeFrame(MsgType type, std::uint64_t request_id,
                                   std::span<const std::byte> payload);

/// Parse a frame header from exactly kFrameHeaderSize bytes.
FrameHeader DecodeFrameHeader(std::span<const std::byte> bytes);

// Payload encoders/decoders. Decoders return false on malformed input.
std::vector<std::byte> EncodeDirResponse(const DirResponse& msg);
bool DecodeDirResponse(std::span<const std::byte> payload, DirResponse* out);

std::vector<std::byte> EncodeLookupRequest(const LookupRequest& msg);
bool DecodeLookupRequest(std::span<const std::byte> payload, LookupRequest* out);

std::vector<std::byte> EncodeLookupResponse(const LookupResponse& msg);
bool DecodeLookupResponse(std::span<const std::byte> payload,
                          LookupResponse* out);

std::vector<std::byte> EncodeUpdateRequest(const UpdateRequest& msg);
bool DecodeUpdateRequest(std::span<const std::byte> payload, UpdateRequest* out);

std::vector<std::byte> EncodeUpdateResponse(const UpdateResponse& msg);
bool DecodeUpdateResponse(std::span<const std::byte> payload,
                          UpdateResponse* out);

std::vector<std::byte> EncodeAdvertise(const AdvertiseMsg& msg);
bool DecodeAdvertise(std::span<const std::byte> payload, AdvertiseMsg* out);

std::vector<std::byte> EncodeUpdateBatchRequest(const UpdateBatchRequest& msg);
bool DecodeUpdateBatchRequest(std::span<const std::byte> payload,
                              UpdateBatchRequest* out);

std::vector<std::byte> EncodeUpdateBatchResponse(const UpdateBatchResponse& msg);
bool DecodeUpdateBatchResponse(std::span<const std::byte> payload,
                               UpdateBatchResponse* out);

std::vector<std::byte> EncodeQueryRequest(const QueryRequest& msg);
bool DecodeQueryRequest(std::span<const std::byte> payload, QueryRequest* out);

std::vector<std::byte> EncodeQueryResponse(const QueryResponse& msg);
bool DecodeQueryResponse(std::span<const std::byte> payload,
                         QueryResponse* out);

}  // namespace ldmsxx
