// Wire protocol between ldmsd peers, mirroring the paper's Figure 2 flows:
// dir (set discovery), lookup (returns the metadata chunk once), update
// (pulls only the data chunk each interval), plus an advertise control
// message supporting connection initiation from the sampler side
// ("mechanisms to enable initiation of a connection from either side",
// §IV-B).
//
// Frame layout: u32 payload_len | u8 type | u64 request_id | payload.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/wire.hpp"
#include "util/status.hpp"

namespace ldmsxx {

enum class MsgType : std::uint8_t {
  kDirReq = 1,
  kDirResp,
  kLookupReq,
  kLookupResp,
  kUpdateReq,
  kUpdateResp,
  kAdvertise,  // sampler -> aggregator: "connect back to me"
};

/// Upper bound on a frame payload. Metric sets are tens of kB; anything
/// near this limit is a corrupt or hostile peer, and both ends of the sock
/// transport drop the connection rather than allocate unbounded buffers.
constexpr std::uint32_t kMaxFramePayload = 64u << 20;

/// Fixed part of every frame.
struct FrameHeader {
  std::uint32_t payload_len = 0;
  MsgType type = MsgType::kDirReq;
  std::uint64_t request_id = 0;
};
constexpr std::size_t kFrameHeaderSize = 4 + 1 + 8;

struct DirResponse {
  std::uint8_t code = 0;  // ErrorCode as u8
  std::vector<std::string> instances;
};

struct LookupRequest {
  std::string instance;
};

struct LookupResponse {
  std::uint8_t code = 0;
  std::vector<std::byte> metadata;
};

struct UpdateRequest {
  std::string instance;
};

struct UpdateResponse {
  std::uint8_t code = 0;
  std::vector<std::byte> data;
};

struct AdvertiseMsg {
  std::string producer;
  std::string dialback_address;  // where the aggregator should connect
  std::string transport;         // transport plugin name for dialback
};

/// Encode a complete frame (header + payload).
std::vector<std::byte> EncodeFrame(MsgType type, std::uint64_t request_id,
                                   std::span<const std::byte> payload);

/// Parse a frame header from exactly kFrameHeaderSize bytes.
FrameHeader DecodeFrameHeader(std::span<const std::byte> bytes);

// Payload encoders/decoders. Decoders return false on malformed input.
std::vector<std::byte> EncodeDirResponse(const DirResponse& msg);
bool DecodeDirResponse(std::span<const std::byte> payload, DirResponse* out);

std::vector<std::byte> EncodeLookupRequest(const LookupRequest& msg);
bool DecodeLookupRequest(std::span<const std::byte> payload, LookupRequest* out);

std::vector<std::byte> EncodeLookupResponse(const LookupResponse& msg);
bool DecodeLookupResponse(std::span<const std::byte> payload,
                          LookupResponse* out);

std::vector<std::byte> EncodeUpdateRequest(const UpdateRequest& msg);
bool DecodeUpdateRequest(std::span<const std::byte> payload, UpdateRequest* out);

std::vector<std::byte> EncodeUpdateResponse(const UpdateResponse& msg);
bool DecodeUpdateResponse(std::span<const std::byte> payload,
                          UpdateResponse* out);

std::vector<std::byte> EncodeAdvertise(const AdvertiseMsg& msg);
bool DecodeAdvertise(std::span<const std::byte> payload, AdvertiseMsg* out);

}  // namespace ldmsxx
