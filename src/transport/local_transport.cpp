#include "transport/local_transport.hpp"

#include <chrono>

namespace ldmsxx {
namespace {

std::uint64_t NowSteadyNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

class LocalListener final : public Listener {
 public:
  LocalListener(Fabric* fabric, std::string address, ServiceHandler* handler)
      : fabric_(fabric), address_(std::move(address)) {
    node_ = std::make_shared<FabricNode>(handler, &stats_);
  }

  ~LocalListener() override {
    node_->Deactivate();
    fabric_->Unregister(address_, node_.get());
  }

  std::string address() const override { return address_; }
  std::shared_ptr<FabricNode> node() const { return node_; }

 private:
  Fabric* fabric_;
  std::string address_;
  std::shared_ptr<FabricNode> node_;
};

class LocalEndpoint final : public Endpoint {
 public:
  explicit LocalEndpoint(std::shared_ptr<FabricNode> node)
      : node_(std::move(node)) {}

  bool connected() const override { return !closed_ && node_->alive(); }

  void Close() override { closed_ = true; }

  Status Dir(std::vector<std::string>* instances) override {
    if (closed_) return {ErrorCode::kDisconnected, "endpoint closed"};
    return node_->WithHandler([&](ServiceHandler* h, TransportStats* srv) {
      const std::uint64_t t0 = NowSteadyNs();
      *instances = h->HandleDir();
      ChargeServer(srv, NowSteadyNs() - t0);
      std::uint64_t resp_bytes = kFrameHeaderSize + 5;
      for (const auto& name : *instances) resp_bytes += 2 + name.size();
      Account(kFrameHeaderSize, resp_bytes, srv);
      return Status::Ok();
    });
  }

  Status Lookup(const std::string& instance,
                std::vector<std::byte>* metadata) override {
    if (closed_) return {ErrorCode::kDisconnected, "endpoint closed"};
    Status st = node_->WithHandler([&](ServiceHandler* h, TransportStats* srv) {
      const std::uint64_t t0 = NowSteadyNs();
      Status inner = h->HandleLookup(instance, metadata);
      ChargeServer(srv, NowSteadyNs() - t0);
      Account(kFrameHeaderSize + 2 + instance.size(),
              kFrameHeaderSize + 5 + metadata->size(), srv);
      return inner;
    });
    stats_.lookups.fetch_add(1, std::memory_order_relaxed);
    if (!st.ok()) stats_.errors.fetch_add(1, std::memory_order_relaxed);
    return st;
  }

  Status UpdateRaw(const std::string& instance,
                   std::vector<std::byte>* data) override {
    if (closed_) return {ErrorCode::kDisconnected, "endpoint closed"};
    Status st = node_->WithHandler([&](ServiceHandler* h, TransportStats* srv) {
      const std::uint64_t t0 = NowSteadyNs();
      Status inner = h->HandleUpdate(instance, data);
      ChargeServer(srv, NowSteadyNs() - t0);
      Account(kFrameHeaderSize + 2 + instance.size(),
              kFrameHeaderSize + 5 + data->size(), srv);
      return inner;
    });
    stats_.updates.fetch_add(1, std::memory_order_relaxed);
    if (!st.ok()) stats_.errors.fetch_add(1, std::memory_order_relaxed);
    return st;
  }

  Status LookupEx(const std::string& instance, std::vector<std::byte>* metadata,
                  LookupExtra* extra) override {
    if (extra != nullptr) *extra = LookupExtra{};
    Status st = Lookup(instance, metadata);
    if (!st.ok() || extra == nullptr) return st;
    // The version/handle ride in the lookup response's trailing bytes on the
    // wire; in-process we ask the handler directly. A legacy handler returns
    // no handle, which keeps the peer at version 0.
    node_->WithHandler([&](ServiceHandler* h, TransportStats*) {
      extra->handle = h->HandleAssignHandle(instance);
      extra->version =
          extra->handle != kInvalidSetHandle ? kBatchProtocolVersion : 0;
      return Status::Ok();
    });
    return st;
  }

  void UpdateBatch(const std::vector<BatchUpdateSpec>& specs,
                   std::vector<BatchUpdateResult>* results) override {
    const std::size_t n = specs.size();
    results->assign(n, BatchUpdateResult{});
    if (n == 0) return;
    if (closed_) {
      for (auto& r : *results) {
        r.status = {ErrorCode::kDisconnected, "endpoint closed"};
      }
      return;
    }
    // One modeled request frame for the whole batch (12 bytes per entry),
    // one response frame whose size depends on what each entry answered.
    std::uint64_t resp_bytes = kFrameHeaderSize + 5;
    std::size_t batched_entries = 0;
    Status st = node_->WithHandler([&](ServiceHandler* h, TransportStats* srv) {
      const std::uint64_t t0 = NowSteadyNs();
      for (std::size_t i = 0; i < n; ++i) {
        BatchUpdateResult& r = (*results)[i];
        if (specs[i].handle == kInvalidSetHandle) {
          // No handle (set never looked up via LookupEx): legacy per-set
          // semantics inside the same fabric call.
          r.status = h->HandleUpdate(specs[i].instance, &r.data);
          resp_bytes += kFrameHeaderSize + 5 + r.data.size();
          continue;
        }
        r.batched = true;
        ++batched_entries;
        MetricSetPtr set = h->HandleResolveHandle(specs[i].handle);
        if (set == nullptr) {
          r.status = {ErrorCode::kNotFound, "unknown set handle"};
          resp_bytes += 6;  // handle + kind + code
          continue;
        }
        if (set->data_gn() == specs[i].last_dgn && set->consistent()) {
          r.status = Status::Ok();
          r.unchanged = true;
          resp_bytes += 5;  // handle + kind marker only
          stats_.updates_unchanged.fetch_add(1, std::memory_order_relaxed);
          if (srv != nullptr) {
            srv->updates_unchanged.fetch_add(1, std::memory_order_relaxed);
          }
          continue;
        }
        // Delta path, gated on the client-side knob exactly like the wire
        // client's declared protocol version; falls back to the full chunk
        // whenever no (smaller) delta exists for this base DGN.
        if (delta_updates()) {
          ByteWriter dw(&r.data);
          if (set->SnapshotDelta(specs[i].last_dgn, dw).ok()) {
            r.status = Status::Ok();
            r.delta = true;
            resp_bytes += 9 + r.data.size();  // handle + kind + len + delta
            const std::uint64_t saved = set->data_size() - r.data.size();
            stats_.updates_delta.fetch_add(1, std::memory_order_relaxed);
            stats_.delta_bytes_saved.fetch_add(saved,
                                               std::memory_order_relaxed);
            if (srv != nullptr) {
              srv->updates_delta.fetch_add(1, std::memory_order_relaxed);
              srv->delta_bytes_saved.fetch_add(saved,
                                               std::memory_order_relaxed);
            }
            continue;
          }
          r.data.clear();
        }
        r.data.resize(set->data_size());
        r.status = set->SnapshotData(r.data);
        if (!r.status.ok()) {
          r.data.clear();
          resp_bytes += 6;
        } else {
          resp_bytes += 9 + r.data.size();  // handle + kind + len + chunk
        }
      }
      ChargeServer(srv, NowSteadyNs() - t0);
      // +1: the request's trailing client-version byte.
      Account(kFrameHeaderSize + 4 + 12 * batched_entries + 1, resp_bytes,
              srv);
      if (srv != nullptr) {
        srv->update_batches.fetch_add(1, std::memory_order_relaxed);
        srv->updates.fetch_add(n, std::memory_order_relaxed);
      }
      return Status::Ok();
    });
    stats_.updates.fetch_add(n, std::memory_order_relaxed);
    stats_.update_batches.fetch_add(1, std::memory_order_relaxed);
    if (!st.ok()) {
      // The node died: the whole batch is lost.
      stats_.errors.fetch_add(1, std::memory_order_relaxed);
      for (auto& r : *results) {
        r.status = st;
        r.unchanged = false;
        r.data.clear();
      }
    }
  }

  Status Advertise(const AdvertiseMsg& msg) override {
    if (closed_) return {ErrorCode::kDisconnected, "endpoint closed"};
    return node_->WithHandler([&](ServiceHandler* h, TransportStats* srv) {
      h->HandleAdvertise(msg);
      Account(kFrameHeaderSize + EncodeAdvertise(msg).size(), 0, srv);
      return Status::Ok();
    });
  }

  Status RemoteQuery(const QueryRequest& req, QueryResponse* resp) override {
    *resp = QueryResponse{};
    if (closed_) return {ErrorCode::kDisconnected, "endpoint closed"};
    Status st = node_->WithHandler([&](ServiceHandler* h, TransportStats* srv) {
      const std::uint64_t t0 = NowSteadyNs();
      h->HandleQuery(req, resp);
      ChargeServer(srv, NowSteadyNs() - t0);
      // Model the frames the wire transport would have exchanged.
      Account(kFrameHeaderSize + EncodeQueryRequest(req).size(),
              kFrameHeaderSize + EncodeQueryResponse(*resp).size(), srv);
      return Status::Ok();
    });
    if (!st.ok()) stats_.errors.fetch_add(1, std::memory_order_relaxed);
    return st;
  }

 private:
  void ChargeServer(TransportStats* srv, std::uint64_t ns) {
    if (srv != nullptr)
      srv->server_cpu_ns.fetch_add(ns, std::memory_order_relaxed);
    stats_.server_cpu_ns.fetch_add(ns, std::memory_order_relaxed);
  }

  void Account(std::uint64_t tx, std::uint64_t rx, TransportStats* srv) {
    stats_.bytes_tx.fetch_add(tx, std::memory_order_relaxed);
    stats_.bytes_rx.fetch_add(rx, std::memory_order_relaxed);
    if (srv != nullptr) {
      srv->bytes_rx.fetch_add(tx, std::memory_order_relaxed);
      srv->bytes_tx.fetch_add(rx, std::memory_order_relaxed);
    }
  }

  std::shared_ptr<FabricNode> node_;
  bool closed_ = false;
};

}  // namespace

LocalTransport::LocalTransport(Fabric* fabric)
    : fabric_(fabric != nullptr ? fabric : &Fabric::Instance()) {}

Status LocalTransport::Listen(const std::string& address,
                              ServiceHandler* handler,
                              std::unique_ptr<Listener>* listener) {
  auto local = std::make_unique<LocalListener>(fabric_, address, handler);
  Status st = fabric_->Register(address, local->node());
  if (!st.ok()) return st;
  *listener = std::move(local);
  return Status::Ok();
}

Status LocalTransport::Connect(const std::string& address,
                               std::unique_ptr<Endpoint>* endpoint) {
  auto node = fabric_->Find(address);
  if (node == nullptr || !node->alive()) {
    return {ErrorCode::kDisconnected, "no listener at " + address};
  }
  *endpoint = std::make_unique<LocalEndpoint>(std::move(node));
  return Status::Ok();
}

}  // namespace ldmsxx
