// In-process "fabric": the address registry behind the local and simulated
// RDMA transports. Thousands of daemon instances in one process register
// listeners here; endpoints resolve addresses to service handlers through
// it. A reader-writer lock per node guarantees no request is in flight once
// a listener has been torn down (so a dead sampler looks to its aggregator
// exactly like a dead host: kDisconnected).
#pragma once

#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "transport/transport.hpp"
#include "util/status.hpp"

namespace ldmsxx {

/// One registered listening address.
class FabricNode {
 public:
  FabricNode(ServiceHandler* handler, TransportStats* listener_stats)
      : handler_(handler), listener_stats_(listener_stats) {}

  /// Run @p fn with the handler under a shared lock; returns kDisconnected
  /// if the listener has been deactivated.
  template <typename Fn>
  Status WithHandler(Fn&& fn) {
    std::shared_lock lock(mu_);
    if (handler_ == nullptr) {
      return {ErrorCode::kDisconnected, "peer is down"};
    }
    return fn(handler_, listener_stats_);
  }

  /// Detach the handler; blocks until in-flight requests drain.
  void Deactivate() {
    std::unique_lock lock(mu_);
    handler_ = nullptr;
    listener_stats_ = nullptr;
  }

  bool alive() const {
    std::shared_lock lock(mu_);
    return handler_ != nullptr;
  }

 private:
  mutable std::shared_mutex mu_;
  ServiceHandler* handler_;
  TransportStats* listener_stats_;
};

/// Address -> node registry. Usually used through Instance(), but tests can
/// create private fabrics.
class Fabric {
 public:
  static Fabric& Instance();

  /// Register a listener; fails with kAlreadyExists on duplicate address.
  Status Register(const std::string& address,
                  std::shared_ptr<FabricNode> node);

  /// Remove an address, but only if it still maps to @p node — a listener
  /// whose registration failed must not evict the rightful owner.
  void Unregister(const std::string& address, const FabricNode* node);

  /// Resolve an address; nullptr when absent.
  std::shared_ptr<FabricNode> Find(const std::string& address) const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<FabricNode>> nodes_;
};

}  // namespace ldmsxx
