// Simulated RDMA transports. The paper's rdma (Infiniband/iWARP) and ugni
// (Gemini) plugins pull the data chunk with one-sided reads: "If the
// transport is RDMA over IB or UGNI, the data fetching {f} will not consume
// CPU cycles" on the sampler host (Figure 2). We model exactly that
// property:
//
//  * Dir/Lookup/Advertise are two-sided (they hit the handler, like sock).
//  * At lookup time the endpoint "registers" the remote set's memory by
//    taking a shared_ptr to the MetricSet itself.
//  * Update copies the data chunk straight out of that memory with the
//    seqlock snapshot — zero handler involvement, zero target CPU charged.
//
// The rdma and ugni flavors differ only in their option envelope (modeled
// per-op latency, fan-in guidance), matching the paper's observation that
// ugni sustains a higher fan-in (>15,000:1) than IB RDMA (~9,000:1).
#pragma once

#include <memory>

#include "transport/fabric.hpp"
#include "transport/transport.hpp"
#include "util/clock.hpp"

namespace ldmsxx {

struct RdmaOptions {
  /// Plugin name to present ("rdma" or "ugni").
  std::string name = "rdma";
  /// Modeled one-way latency added to each one-sided read, busy-waited on
  /// the *initiator* (aggregator) side. 0 disables latency modeling.
  DurationNs read_latency_ns = 0;
  /// Registered-memory bytes required per connection (footprint accounting;
  /// the paper cites "a few kilobytes" per connection).
  std::size_t registered_bytes_per_conn = 4096;
};

class RdmaSimTransport final : public Transport {
 public:
  explicit RdmaSimTransport(RdmaOptions options, Fabric* fabric = nullptr);

  const std::string& name() const override { return options_.name; }
  const RdmaOptions& options() const { return options_; }

  Status Listen(const std::string& address, ServiceHandler* handler,
                std::unique_ptr<Listener>* listener) override;

  Status Connect(const std::string& address,
                 std::unique_ptr<Endpoint>* endpoint) override;

  /// Convenience factories with the deployment defaults used in the paper's
  /// two production systems.
  static std::unique_ptr<RdmaSimTransport> Infiniband(Fabric* fabric = nullptr);
  static std::unique_ptr<RdmaSimTransport> Gemini(Fabric* fabric = nullptr);

 private:
  RdmaOptions options_;
  Fabric* fabric_;
};

}  // namespace ldmsxx
