// "sock" transport: real TCP. The server side is a single-threaded epoll
// reactor per listener (requests are tiny and handler work is bounded, so a
// reactor sustains the paper's ~9,000:1 fan-in without a thread per
// connection); the client side is a pipelined endpoint: requests are tagged
// with a request_id, recorded in a pending table, and written without
// waiting, while a per-endpoint reader thread completes them out of order
// as response frames arrive. Each request carries a deadline
// (Endpoint::set_request_timeout) and completes with kTimeout if the peer
// stalls; late responses are dropped by id. Synchronous calls are
// submit-and-wait wrappers over the async path, so an aggregator can keep
// dozens of updates in flight on one connection (see Endpoint::UpdateAll).
//
// Addresses are "host:port"; host is resolved as a dotted quad or
// "localhost". For listeners, "*" or an empty host binds INADDR_ANY; for
// connects they mean loopback. Port 0 binds an ephemeral port —
// Listener::address() reports the actual one.
#pragma once

#include <memory>

#include "transport/transport.hpp"

namespace ldmsxx {

class SockTransport final : public Transport {
 public:
  const std::string& name() const override { return name_; }

  Status Listen(const std::string& address, ServiceHandler* handler,
                std::unique_ptr<Listener>* listener) override;

  Status Connect(const std::string& address,
                 std::unique_ptr<Endpoint>* endpoint) override;

 private:
  std::string name_ = "sock";
};

}  // namespace ldmsxx
