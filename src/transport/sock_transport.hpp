// "sock" transport: real TCP. The server side is a single-threaded epoll
// reactor per listener (requests are tiny and handler work is bounded, so a
// reactor sustains the paper's ~9,000:1 fan-in without a thread per
// connection); the client side is a blocking, mutex-serialized
// request/response endpoint, matching how aggregator worker threads issue
// pulls.
//
// Addresses are "host:port"; host is resolved as a dotted quad or
// "localhost". Port 0 binds an ephemeral port — Listener::address() reports
// the actual one.
#pragma once

#include <memory>

#include "transport/transport.hpp"

namespace ldmsxx {

class SockTransport final : public Transport {
 public:
  const std::string& name() const override { return name_; }

  Status Listen(const std::string& address, ServiceHandler* handler,
                std::unique_ptr<Listener>* listener) override;

  Status Connect(const std::string& address,
                 std::unique_ptr<Endpoint>* endpoint) override;

 private:
  std::string name_ = "sock";
};

}  // namespace ldmsxx
