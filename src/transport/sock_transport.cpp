#include "transport/sock_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <string_view>
#include <thread>
#include <unordered_map>

#include "util/logging.hpp"
#include "util/strings.hpp"

namespace ldmsxx {
namespace {

std::uint64_t NowSteadyNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Parse "host:port". For listeners, "*" (and an empty host) bind all
/// interfaces; for connects they mean loopback. "localhost" is loopback on
/// both sides.
Status ParseAddress(const std::string& address, bool for_listen,
                    sockaddr_in* out) {
  const auto colon = address.rfind(':');
  if (colon == std::string::npos) {
    return {ErrorCode::kInvalidArgument, "address must be host:port"};
  }
  std::string host = address.substr(0, colon);
  const auto port = ParseU64(address.substr(colon + 1));
  if (!port || *port > 65535) {
    return {ErrorCode::kInvalidArgument, "bad port in " + address};
  }
  std::memset(out, 0, sizeof(*out));
  out->sin_family = AF_INET;
  out->sin_port = htons(static_cast<std::uint16_t>(*port));
  if (host.empty() || host == "*") {
    if (for_listen) {
      out->sin_addr.s_addr = htonl(INADDR_ANY);
      return Status::Ok();
    }
    host = "127.0.0.1";
  } else if (host == "localhost") {
    host = "127.0.0.1";
  }
  if (inet_pton(AF_INET, host.c_str(), &out->sin_addr) != 1) {
    return {ErrorCode::kInvalidArgument, "bad host in " + address};
  }
  return Status::Ok();
}

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Deadline-poll granularity. Bounds how late a request timeout fires and
/// how quickly a closing endpoint's reader thread notices.
constexpr int kPollSliceMs = 20;

/// Compact a receive buffer only once this many consumed bytes accumulate,
/// so draining N buffered frames costs one memmove, not N.
constexpr std::size_t kCompactBytes = 256 << 10;

// Append-encode helpers: the server encodes response frames straight into a
// per-connection arena (and the client its request frames into a reusable
// scratch), so the steady-state collect cycle reuses capacity instead of
// allocating a vector per frame.

template <typename T>
void AppendScalar(std::vector<std::byte>& buf, T v) {
  const auto* p = reinterpret_cast<const std::byte*>(&v);
  buf.insert(buf.end(), p, p + sizeof(T));
}

void AppendU8(std::vector<std::byte>& buf, std::uint8_t v) {
  AppendScalar(buf, v);
}
void AppendU16(std::vector<std::byte>& buf, std::uint16_t v) {
  AppendScalar(buf, v);
}
void AppendU32(std::vector<std::byte>& buf, std::uint32_t v) {
  AppendScalar(buf, v);
}
void AppendU64(std::vector<std::byte>& buf, std::uint64_t v) {
  AppendScalar(buf, v);
}

void AppendRaw(std::vector<std::byte>& buf, const void* data, std::size_t n) {
  const auto* p = static_cast<const std::byte*>(data);
  buf.insert(buf.end(), p, p + n);
}

/// u32-length-prefixed byte field (ByteWriter::Bytes wire form).
void AppendBytesField(std::vector<std::byte>& buf,
                      std::span<const std::byte> data) {
  AppendU32(buf, static_cast<std::uint32_t>(data.size()));
  AppendRaw(buf, data.data(), data.size());
}

/// u16-length-prefixed string (ByteWriter::Str wire form).
void AppendStrField(std::vector<std::byte>& buf, std::string_view s) {
  AppendU16(buf, static_cast<std::uint16_t>(s.size()));
  AppendRaw(buf, s.data(), s.size());
}

/// Start a frame in @p buf: header with a zero payload_len placeholder.
/// Returns the offset of the frame for EndFrame to patch.
std::size_t BeginFrame(std::vector<std::byte>& buf, MsgType type,
                       std::uint64_t request_id) {
  const std::size_t start = buf.size();
  AppendU32(buf, 0);
  AppendU8(buf, static_cast<std::uint8_t>(type));
  AppendU64(buf, request_id);
  return start;
}

/// Back-patch the payload length once the payload is fully appended.
void EndFrame(std::vector<std::byte>& buf, std::size_t frame_start) {
  const std::uint32_t len = static_cast<std::uint32_t>(
      buf.size() - frame_start - kFrameHeaderSize);
  std::memcpy(buf.data() + frame_start, &len, 4);
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

class SockListener final : public Listener {
 public:
  SockListener() = default;

  ~SockListener() override {
    Stop();
  }

  Status Start(const std::string& address, ServiceHandler* handler) {
    handler_ = handler;
    sockaddr_in addr{};
    Status st = ParseAddress(address, /*for_listen=*/true, &addr);
    if (!st.ok()) return st;

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) return {ErrorCode::kInternal, std::strerror(errno)};
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
      return {ErrorCode::kInvalidArgument,
              "bind " + address + ": " + std::strerror(errno)};
    }
    if (::listen(listen_fd_, 1024) < 0) {
      return {ErrorCode::kInternal, std::strerror(errno)};
    }
    sockaddr_in actual{};
    socklen_t alen = sizeof actual;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&actual), &alen);
    char host[INET_ADDRSTRLEN];
    inet_ntop(AF_INET, &actual.sin_addr, host, sizeof host);
    address_ = std::string(host) + ":" + std::to_string(ntohs(actual.sin_port));

    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (epoll_fd_ < 0 || wake_fd_ < 0) {
      return {ErrorCode::kInternal, "epoll/eventfd failed"};
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listen_fd_;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
    ev.data.fd = wake_fd_;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

    reactor_ = std::thread([this] { ReactorLoop(); });
    return Status::Ok();
  }

  std::string address() const override { return address_; }

 private:
  struct Conn {
    std::vector<std::byte> rbuf;
    /// Bytes of rbuf already consumed as complete frames; rbuf is compacted
    /// lazily (see kCompactBytes) instead of front-erased every batch.
    std::size_t roff = 0;
    /// Outgoing frames, encoded in place back-to-back. woff marks the bytes
    /// already sent; like rbuf, the buffer is cleared when drained and
    /// compacted lazily, so steady state reuses its capacity.
    std::vector<std::byte> wbuf;
    std::size_t woff = 0;
    /// Scratch for handler payloads (lookup metadata, legacy update chunks);
    /// reused across frames so the per-response allocation disappears.
    std::vector<std::byte> scratch;
  };

  void Stop() {
    if (reactor_.joinable()) {
      stop_ = true;
      const std::uint64_t one = 1;
      [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof one);
      reactor_.join();
    }
    for (auto& [fd, conn] : conns_) ::close(fd);
    conns_.clear();
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    listen_fd_ = epoll_fd_ = wake_fd_ = -1;
  }

  void ReactorLoop() {
    constexpr int kMaxEvents = 128;
    epoll_event events[kMaxEvents];
    while (!stop_) {
      const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, 500);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      for (int i = 0; i < n && !stop_; ++i) {
        const int fd = events[i].data.fd;
        if (fd == wake_fd_) {
          std::uint64_t junk;
          [[maybe_unused]] ssize_t r = ::read(wake_fd_, &junk, sizeof junk);
          continue;
        }
        if (fd == listen_fd_) {
          AcceptAll();
          continue;
        }
        if (events[i].events & (EPOLLHUP | EPOLLERR)) {
          CloseConn(fd);
          continue;
        }
        if (events[i].events & EPOLLIN) {
          if (!ReadConn(fd)) continue;  // closed
        }
        if (events[i].events & EPOLLOUT) FlushConn(fd);
      }
    }
  }

  void AcceptAll() {
    for (;;) {
      const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) return;  // EAGAIN or error: stop accepting this round
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      SetNonBlocking(fd);
      conns_.emplace(fd, Conn{});
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = fd;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    }
  }

  void CloseConn(int fd) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    conns_.erase(fd);
  }

  /// Returns false if the connection was closed.
  bool ReadConn(int fd) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) return false;
    Conn& conn = it->second;
    std::byte chunk[16384];
    for (;;) {
      const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
      if (n > 0) {
        conn.rbuf.insert(conn.rbuf.end(), chunk, chunk + n);
        stats_.bytes_rx.fetch_add(static_cast<std::uint64_t>(n),
                                  std::memory_order_relaxed);
        continue;
      }
      if (n == 0) {
        CloseConn(fd);
        return false;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      CloseConn(fd);
      return false;
    }
    // Extract complete frames from the consumed offset onward.
    while (conn.rbuf.size() - conn.roff >= kFrameHeaderSize) {
      const FrameHeader hdr = DecodeFrameHeader(
          std::span<const std::byte>(conn.rbuf).subspan(conn.roff));
      if (hdr.payload_len > kMaxFramePayload) {
        CloseConn(fd);  // corrupt or hostile peer
        return false;
      }
      const std::size_t total = kFrameHeaderSize + hdr.payload_len;
      if (conn.rbuf.size() - conn.roff < total) break;
      HandleFrame(fd, conn, hdr,
                  std::span<const std::byte>(conn.rbuf)
                      .subspan(conn.roff + kFrameHeaderSize, hdr.payload_len));
      conn.roff += total;
      // HandleFrame may have closed fd (not currently, but be safe).
      if (conns_.find(fd) == conns_.end()) return false;
    }
    // Amortized compaction: free the whole buffer when it is fully drained
    // (the common case), memmove only once kCompactBytes have accumulated.
    if (conn.roff == conn.rbuf.size()) {
      conn.rbuf.clear();
      conn.roff = 0;
    } else if (conn.roff >= kCompactBytes) {
      conn.rbuf.erase(
          conn.rbuf.begin(),
          conn.rbuf.begin() + static_cast<std::ptrdiff_t>(conn.roff));
      conn.roff = 0;
    }
    return true;
  }

  // Responses are encoded straight into conn.wbuf (header placeholder first,
  // payload appended in place, length back-patched) — no per-response vector,
  // and batch data chunks are snapshotted directly into the frame.
  void HandleFrame(int fd, Conn& conn, const FrameHeader& hdr,
                   std::span<const std::byte> payload) {
    const std::uint64_t t0 = NowSteadyNs();
    std::vector<std::byte>& out = conn.wbuf;
    const std::size_t frame_start = out.size();
    switch (hdr.type) {
      case MsgType::kDirReq: {
        BeginFrame(out, MsgType::kDirResp, hdr.request_id);
        AppendU8(out, 0);  // code
        const auto instances = handler_->HandleDir();
        AppendU32(out, static_cast<std::uint32_t>(instances.size()));
        for (const auto& name : instances) AppendStrField(out, name);
        break;
      }
      case MsgType::kLookupReq: {
        LookupRequest req;
        BeginFrame(out, MsgType::kLookupResp, hdr.request_id);
        std::uint32_t handle = kInvalidSetHandle;
        if (!DecodeLookupRequest(payload, &req)) {
          AppendU8(out,
                   static_cast<std::uint8_t>(ErrorCode::kInvalidArgument));
          AppendU32(out, 0);  // empty metadata
        } else {
          conn.scratch.clear();
          Status st = handler_->HandleLookup(req.instance, &conn.scratch);
          AppendU8(out, static_cast<std::uint8_t>(st.code()));
          AppendBytesField(out, st.ok()
                                    ? std::span<const std::byte>(conn.scratch)
                                    : std::span<const std::byte>{});
          if (st.ok()) handle = handler_->HandleAssignHandle(req.instance);
        }
        // Trailing extension: protocol version + the set handle the batch
        // path addresses this set by. A legacy handler assigns no handle and
        // the peer stays on per-set updates.
        AppendU8(out, handle != kInvalidSetHandle ? kBatchProtocolVersion
                                                  : std::uint8_t{0});
        AppendU32(out, handle);
        stats_.lookups.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      case MsgType::kUpdateReq: {
        UpdateRequest req;
        BeginFrame(out, MsgType::kUpdateResp, hdr.request_id);
        if (!DecodeUpdateRequest(payload, &req)) {
          AppendU8(out,
                   static_cast<std::uint8_t>(ErrorCode::kInvalidArgument));
          AppendU32(out, 0);
        } else {
          conn.scratch.clear();
          Status st = handler_->HandleUpdate(req.instance, &conn.scratch);
          AppendU8(out, static_cast<std::uint8_t>(st.code()));
          AppendBytesField(out, st.ok()
                                    ? std::span<const std::byte>(conn.scratch)
                                    : std::span<const std::byte>{});
        }
        stats_.updates.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      case MsgType::kUpdateBatchReq: {
        UpdateBatchRequest req;
        BeginFrame(out, MsgType::kUpdateBatchResp, hdr.request_id);
        if (!DecodeUpdateBatchRequest(payload, &req)) {
          AppendU8(out,
                   static_cast<std::uint8_t>(ErrorCode::kInvalidArgument));
          AppendU32(out, 0);  // whole-request failure: no entries
          break;
        }
        stats_.update_batches.fetch_add(1, std::memory_order_relaxed);
        stats_.updates.fetch_add(req.entries.size(),
                                 std::memory_order_relaxed);
        AppendU8(out, 0);
        AppendU32(out, static_cast<std::uint32_t>(req.entries.size()));
        for (const auto& e : req.entries) {
          AppendU32(out, e.handle);
          const std::size_t kind_pos = out.size();
          MetricSetPtr set = handler_->HandleResolveHandle(e.handle);
          if (set == nullptr) {
            AppendU8(out, static_cast<std::uint8_t>(BatchEntryKind::kError));
            AppendU8(out, static_cast<std::uint8_t>(ErrorCode::kNotFound));
            continue;
          }
          // DGN gate: the chunk the peer already consumed — answer with the
          // 5-byte marker instead of the data.
          if (set->data_gn() == e.last_dgn && set->consistent()) {
            AppendU8(out,
                     static_cast<std::uint8_t>(BatchEntryKind::kUnchanged));
            stats_.updates_unchanged.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          // Delta gather-encode, only for clients that declared they can
          // decode it: the changed extents go straight from the live chunk
          // into the connection's write buffer. Any failure (gn gap, torn
          // snapshot, delta not smaller) rolls the entry back and falls
          // through to the full chunk.
          if (req.version >= kDeltaProtocolVersion) {
            AppendU8(out, static_cast<std::uint8_t>(BatchEntryKind::kDelta));
            const std::size_t len_pos = out.size();
            AppendU32(out, 0);  // payload length, patched below
            const std::size_t payload_pos = out.size();
            ByteWriter dw(&out);
            if (set->SnapshotDelta(e.last_dgn, dw).ok()) {
              const auto dlen =
                  static_cast<std::uint32_t>(out.size() - payload_pos);
              std::memcpy(out.data() + len_pos, &dlen, 4);
              stats_.updates_delta.fetch_add(1, std::memory_order_relaxed);
              stats_.delta_bytes_saved.fetch_add(set->data_size() - dlen,
                                                 std::memory_order_relaxed);
              continue;
            }
            out.resize(kind_pos);
          }
          // Gather-encode: reserve the chunk inside the frame and snapshot
          // the live set straight into it.
          AppendU8(out, static_cast<std::uint8_t>(BatchEntryKind::kData));
          const std::size_t size = set->data_size();
          AppendU32(out, static_cast<std::uint32_t>(size));
          const std::size_t data_pos = out.size();
          out.resize(data_pos + size);
          Status st = set->SnapshotData({out.data() + data_pos, size});
          if (!st.ok()) {
            out.resize(kind_pos);  // roll the partial entry back
            AppendU8(out, static_cast<std::uint8_t>(BatchEntryKind::kError));
            AppendU8(out, static_cast<std::uint8_t>(st.code()));
          }
        }
        break;
      }
      case MsgType::kQueryReq: {
        QueryRequest req;
        QueryResponse resp;
        if (!DecodeQueryRequest(payload, &req)) {
          resp.code = static_cast<std::uint8_t>(ErrorCode::kInvalidArgument);
          resp.error = "malformed query request";
        } else {
          handler_->HandleQuery(req, &resp);
        }
        BeginFrame(out, MsgType::kQueryResp, hdr.request_id);
        const auto body = EncodeQueryResponse(resp);
        out.insert(out.end(), body.begin(), body.end());
        break;
      }
      case MsgType::kAdvertise: {
        AdvertiseMsg msg;
        if (DecodeAdvertise(payload, &msg)) handler_->HandleAdvertise(msg);
        stats_.server_cpu_ns.fetch_add(NowSteadyNs() - t0,
                                       std::memory_order_relaxed);
        return;  // no response
      }
      default:
        return;  // unknown frame: drop
    }
    EndFrame(out, frame_start);
    stats_.server_cpu_ns.fetch_add(NowSteadyNs() - t0,
                                   std::memory_order_relaxed);
    stats_.bytes_tx.fetch_add(out.size() - frame_start,
                              std::memory_order_relaxed);
    FlushConn(fd);
  }

  void FlushConn(int fd) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    Conn& conn = it->second;
    while (conn.woff < conn.wbuf.size()) {
      const ssize_t n = ::send(fd, conn.wbuf.data() + conn.woff,
                               conn.wbuf.size() - conn.woff, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          // Arm EPOLLOUT until drained.
          epoll_event ev{};
          ev.events = EPOLLIN | EPOLLOUT;
          ev.data.fd = fd;
          ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
          return;
        }
        if (errno == EINTR) continue;
        CloseConn(fd);
        return;
      }
      conn.woff += static_cast<std::size_t>(n);
    }
    // Drained: recycle the arena (capacity kept) and stop watching EPOLLOUT.
    conn.wbuf.clear();
    conn.woff = 0;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
  }

  ServiceHandler* handler_ = nullptr;
  std::string address_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::thread reactor_;
  std::atomic<bool> stop_{false};
  std::unordered_map<int, Conn> conns_;  // reactor thread only
};

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

// Pipelined client endpoint. Every request is tagged with a fresh
// request_id, recorded in a pending table, and written to the socket
// without waiting; a dedicated reader thread parses response frames and
// completes requests out of order by id. Each request carries a deadline
// (Endpoint::request_timeout); the reader expires overdue requests with
// kTimeout so a stalled peer cannot wedge a caller forever. Synchronous
// Dir/Lookup/UpdateRaw are thin block-on-completion wrappers, which is what
// makes concurrent sync calls from many threads multiplex onto one socket.
class SockEndpoint final : public Endpoint {
 public:
  explicit SockEndpoint(int fd) : fd_(fd) {
    reader_ = std::thread([this] { ReaderLoop(); });
  }

  ~SockEndpoint() override {
    Close();
    if (reader_.joinable()) reader_.join();
    ::close(fd_);
  }

  bool connected() const override {
    return !closed_.load(std::memory_order_acquire);
  }

  void Close() override { Shutdown({ErrorCode::kDisconnected, "closed"}); }

  Status Dir(std::vector<std::string>* instances) override {
    std::vector<std::byte> payload;
    Status st = WaitFor(
        [&](AsyncHandler done) {
          SubmitRequest(MsgType::kDirReq, {}, MsgType::kDirResp,
                        std::move(done));
        },
        &payload);
    if (!st.ok()) return st;
    DirResponse resp;
    if (!DecodeDirResponse(payload, &resp)) {
      stats_.errors.fetch_add(1, std::memory_order_relaxed);
      return {ErrorCode::kInternal, "bad dir response"};
    }
    *instances = std::move(resp.instances);
    return Status::Ok();
  }

  Status Lookup(const std::string& instance,
                std::vector<std::byte>* metadata) override {
    return WaitFor(
        [&](AsyncHandler done) { LookupAsync(instance, std::move(done)); },
        metadata);
  }

  Status UpdateRaw(const std::string& instance,
                   std::vector<std::byte>* data) override {
    return WaitFor(
        [&](AsyncHandler done) { UpdateAsync(instance, std::move(done)); },
        data);
  }

  void LookupAsync(const std::string& instance,
                   AsyncHandler handler) override {
    stats_.lookups.fetch_add(1, std::memory_order_relaxed);
    SubmitRequest(
        MsgType::kLookupReq, EncodeLookupRequest({instance}),
        MsgType::kLookupResp,
        [this, handler = std::move(handler)](Status st,
                                             std::vector<std::byte> payload) {
          if (!st.ok()) {
            handler(std::move(st), {});
            return;
          }
          LookupResponse resp;
          if (!DecodeLookupResponse(payload, &resp)) {
            stats_.errors.fetch_add(1, std::memory_order_relaxed);
            handler({ErrorCode::kInternal, "bad lookup response"}, {});
            return;
          }
          BumpPeerVersion(resp.version);
          if (resp.code != 0) {
            stats_.errors.fetch_add(1, std::memory_order_relaxed);
            handler({static_cast<ErrorCode>(resp.code), "lookup failed"}, {});
            return;
          }
          handler(Status::Ok(), std::move(resp.metadata));
        });
  }

  Status LookupEx(const std::string& instance,
                  std::vector<std::byte>* metadata,
                  LookupExtra* extra) override {
    if (extra != nullptr) *extra = LookupExtra{};
    stats_.lookups.fetch_add(1, std::memory_order_relaxed);
    std::vector<std::byte> payload;
    Status st = WaitFor(
        [&](AsyncHandler done) {
          SubmitRequest(MsgType::kLookupReq, EncodeLookupRequest({instance}),
                        MsgType::kLookupResp, std::move(done));
        },
        &payload);
    if (!st.ok()) return st;
    LookupResponse resp;
    if (!DecodeLookupResponse(payload, &resp)) {
      stats_.errors.fetch_add(1, std::memory_order_relaxed);
      return {ErrorCode::kInternal, "bad lookup response"};
    }
    BumpPeerVersion(resp.version);
    if (resp.code != 0) {
      stats_.errors.fetch_add(1, std::memory_order_relaxed);
      return {static_cast<ErrorCode>(resp.code), "lookup failed"};
    }
    if (extra != nullptr) {
      extra->version = resp.version;
      extra->handle = resp.handle;
    }
    *metadata = std::move(resp.metadata);
    return Status::Ok();
  }

  void UpdateBatch(const std::vector<BatchUpdateSpec>& specs,
                   std::vector<BatchUpdateResult>* results) override {
    const std::size_t n = specs.size();
    results->assign(n, BatchUpdateResult{});
    if (n == 0) return;
    const bool peer_batches =
        peer_version_.load(std::memory_order_relaxed) >=
        kMinBatchProtocolVersion;
    // Partition: handle-addressed specs ride in one kUpdateBatchReq frame;
    // the rest (no handle, legacy peer, or a duplicated handle — the reply
    // is keyed by handle, so a dup would be ambiguous) fall back to per-set
    // update frames. Everything is corked into a single send either way.
    std::vector<std::size_t> batch_idx;
    std::vector<std::size_t> fallback_idx;
    std::unordered_map<std::uint32_t, std::size_t> by_handle;
    batch_idx.reserve(n);
    by_handle.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (peer_batches && specs[i].handle != kInvalidSetHandle &&
          by_handle.emplace(specs[i].handle, i).second) {
        batch_idx.push_back(i);
      } else {
        fallback_idx.push_back(i);
      }
    }
    struct Harvest {
      std::mutex mu;
      std::condition_variable cv;
      std::size_t remaining;
    } harvest{.remaining = fallback_idx.size() + (batch_idx.empty() ? 0 : 1)};
    CorkWrites();
    if (!batch_idx.empty()) {
      UpdateBatchRequest req;
      // Declare v2 (delta-capable) unless the knob forces full chunks; the
      // server never sends kDelta to a lower declared revision.
      req.version =
          delta_updates() ? kBatchProtocolVersion : kMinBatchProtocolVersion;
      req.entries.reserve(batch_idx.size());
      for (const std::size_t i : batch_idx) {
        req.entries.push_back({specs[i].handle, specs[i].last_dgn});
      }
      stats_.update_batches.fetch_add(1, std::memory_order_relaxed);
      stats_.updates.fetch_add(batch_idx.size(), std::memory_order_relaxed);
      // &-captures are safe: UpdateBatch blocks on the harvest until every
      // completion (reader thread or inline failure) has run.
      SubmitRequest(
          MsgType::kUpdateBatchReq, EncodeUpdateBatchRequest(req),
          MsgType::kUpdateBatchResp,
          [this, results, &harvest, &batch_idx, &by_handle](
              Status st, std::vector<std::byte> payload) {
            CompleteBatch(std::move(st), payload, batch_idx, by_handle,
                          results);
            std::lock_guard<std::mutex> lock(harvest.mu);
            if (--harvest.remaining == 0) harvest.cv.notify_all();
          });
    }
    for (const std::size_t i : fallback_idx) {
      UpdateAsync(specs[i].instance,
                  [results, &harvest, i](Status st,
                                         std::vector<std::byte> data) {
                    (*results)[i].status = std::move(st);
                    (*results)[i].data = std::move(data);
                    std::lock_guard<std::mutex> lock(harvest.mu);
                    if (--harvest.remaining == 0) harvest.cv.notify_all();
                  });
    }
    UncorkWrites();
    std::unique_lock<std::mutex> lock(harvest.mu);
    harvest.cv.wait(lock, [&harvest] { return harvest.remaining == 0; });
  }

  void UpdateAsync(const std::string& instance,
                   AsyncHandler handler) override {
    stats_.updates.fetch_add(1, std::memory_order_relaxed);
    SubmitRequest(
        MsgType::kUpdateReq, EncodeUpdateRequest({instance}),
        MsgType::kUpdateResp,
        [this, handler = std::move(handler)](Status st,
                                             std::vector<std::byte> payload) {
          if (!st.ok()) {
            handler(std::move(st), {});
            return;
          }
          UpdateResponse resp;
          if (!DecodeUpdateResponse(payload, &resp)) {
            stats_.errors.fetch_add(1, std::memory_order_relaxed);
            handler({ErrorCode::kInternal, "bad update response"}, {});
            return;
          }
          if (resp.code != 0) {
            stats_.errors.fetch_add(1, std::memory_order_relaxed);
            handler({static_cast<ErrorCode>(resp.code), "update failed"}, {});
            return;
          }
          handler(Status::Ok(), std::move(resp.data));
        });
  }

  Status RemoteQuery(const QueryRequest& req, QueryResponse* resp) override {
    *resp = QueryResponse{};
    std::vector<std::byte> payload;
    Status st = WaitFor(
        [&](AsyncHandler done) {
          SubmitRequest(MsgType::kQueryReq, EncodeQueryRequest(req),
                        MsgType::kQueryResp, std::move(done));
        },
        &payload);
    if (!st.ok()) return st;
    if (!DecodeQueryResponse(payload, resp)) {
      stats_.errors.fetch_add(1, std::memory_order_relaxed);
      return {ErrorCode::kInternal, "bad query response"};
    }
    if (resp->code != 0) {
      stats_.errors.fetch_add(1, std::memory_order_relaxed);
      return {static_cast<ErrorCode>(resp->code),
              resp->error.empty() ? "query failed" : resp->error};
    }
    return Status::Ok();
  }

  void CorkWrites() override {
    std::lock_guard<std::mutex> lock(write_mu_);
    corked_ = true;
  }

  void UncorkWrites() override {
    Status st = Status::Ok();
    {
      std::lock_guard<std::mutex> lock(write_mu_);
      corked_ = false;
      if (!cork_buf_.empty()) {
        const DurationNs timeout = request_timeout();
        const std::uint64_t deadline =
            timeout > 0 ? NowSteadyNs() + timeout : 0;
        st = SendFrame(cork_buf_.data(), cork_buf_.size(), deadline);
        cork_buf_.clear();
      }
    }
    // A failed flush leaves the stream position unknown; the connection is
    // unusable either way. Shutdown fails the batch's pending requests.
    if (!st.ok()) Shutdown({ErrorCode::kDisconnected, st.message()});
  }

  Status Advertise(const AdvertiseMsg& msg) override {
    if (closed_.load(std::memory_order_acquire)) {
      return {ErrorCode::kDisconnected, "closed"};
    }
    const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
    auto frame = EncodeFrame(MsgType::kAdvertise, id, EncodeAdvertise(msg));
    stats_.bytes_tx.fetch_add(frame.size(), std::memory_order_relaxed);
    const DurationNs timeout = request_timeout();
    const std::uint64_t deadline =
        timeout > 0 ? NowSteadyNs() + timeout : 0;
    std::lock_guard<std::mutex> lock(write_mu_);
    Status st = SendFrame(frame.data(), frame.size(), deadline);
    if (!st.ok()) stats_.errors.fetch_add(1, std::memory_order_relaxed);
    return st;
  }

 private:
  struct Pending {
    MsgType expect = MsgType::kDirResp;
    std::uint64_t deadline = 0;  // steady ns; 0 = no deadline
    AsyncHandler handler;
  };

  /// Issue an async request via @p issue and block until its handler runs.
  template <typename IssueFn>
  static Status WaitFor(IssueFn&& issue, std::vector<std::byte>* out) {
    struct Waiter {
      std::mutex mu;
      std::condition_variable cv;
      bool done = false;
      Status st;
      std::vector<std::byte> bytes;
    } waiter;
    issue([&waiter](Status st, std::vector<std::byte> bytes) {
      std::lock_guard<std::mutex> lock(waiter.mu);
      waiter.st = std::move(st);
      waiter.bytes = std::move(bytes);
      waiter.done = true;
      waiter.cv.notify_all();
    });
    std::unique_lock<std::mutex> lock(waiter.mu);
    waiter.cv.wait(lock, [&waiter] { return waiter.done; });
    if (out != nullptr) *out = std::move(waiter.bytes);
    return waiter.st;
  }

  void BumpPeerVersion(std::uint8_t v) {
    std::uint8_t cur = peer_version_.load(std::memory_order_relaxed);
    while (v > cur && !peer_version_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }

  /// Map a kUpdateBatchResp payload (or a whole-batch failure) back onto the
  /// spec-indexed result slots listed in @p batch_idx.
  void CompleteBatch(Status st, std::span<const std::byte> payload,
                     const std::vector<std::size_t>& batch_idx,
                     const std::unordered_map<std::uint32_t, std::size_t>&
                         by_handle,
                     std::vector<BatchUpdateResult>* results) {
    for (const std::size_t i : batch_idx) (*results)[i].batched = true;
    auto fail_all = [&](const Status& why) {
      for (const std::size_t i : batch_idx) (*results)[i].status = why;
    };
    if (!st.ok()) {
      fail_all(st);
      return;
    }
    UpdateBatchResponse resp;
    if (!DecodeUpdateBatchResponse(payload, &resp)) {
      stats_.errors.fetch_add(1, std::memory_order_relaxed);
      fail_all({ErrorCode::kInternal, "bad batch response"});
      return;
    }
    if (resp.code != 0) {
      stats_.errors.fetch_add(1, std::memory_order_relaxed);
      fail_all({static_cast<ErrorCode>(resp.code), "batch update failed"});
      return;
    }
    // Entries the server never answered (it must answer all, but a buggy or
    // hostile peer may not) fall through with kInternal below.
    fail_all({ErrorCode::kInternal, "missing batch entry"});
    for (auto& e : resp.entries) {
      auto it = by_handle.find(e.handle);
      if (it == by_handle.end()) continue;  // unknown handle: drop
      BatchUpdateResult& r = (*results)[it->second];
      switch (e.kind) {
        case BatchEntryKind::kUnchanged:
          r.status = Status::Ok();
          r.unchanged = true;
          stats_.updates_unchanged.fetch_add(1, std::memory_order_relaxed);
          break;
        case BatchEntryKind::kData:
          r.status = Status::Ok();
          r.data = std::move(e.data);
          break;
        case BatchEntryKind::kDelta:
          // Structural validity was already enforced by the decoder; the
          // caller applies the payload straight into its mirror chunk via
          // ApplyDelta (which re-checks MGN/base-DGN against the mirror).
          r.status = Status::Ok();
          r.delta = true;
          r.data = std::move(e.data);
          stats_.updates_delta.fetch_add(1, std::memory_order_relaxed);
          break;
        case BatchEntryKind::kError:
          r.status = {static_cast<ErrorCode>(e.code), "batch entry failed"};
          break;
      }
    }
  }

  /// Register the request in the pending table, then write the frame. The
  /// handler is guaranteed to run exactly once: on response, on deadline
  /// expiry, on send failure, or when the endpoint shuts down.
  void SubmitRequest(MsgType type, std::span<const std::byte> payload,
                     MsgType expect, AsyncHandler handler) {
    const DurationNs timeout = request_timeout();
    const std::uint64_t deadline =
        timeout > 0 ? NowSteadyNs() + timeout : 0;
    std::uint64_t id;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (closed_.load(std::memory_order_relaxed)) {
        lock.unlock();
        stats_.errors.fetch_add(1, std::memory_order_relaxed);
        handler({ErrorCode::kDisconnected, "closed"}, {});
        return;
      }
      id = next_id_.fetch_add(1, std::memory_order_relaxed);
      pending_.emplace(id, Pending{expect, deadline, std::move(handler)});
    }
    stats_.outstanding.fetch_add(1, std::memory_order_relaxed);
    Status st;
    {
      std::lock_guard<std::mutex> lock(write_mu_);
      if (corked_) {
        // Batched issue (UpdateAll/UpdateBatch): append the frame to the
        // cork buffer; UncorkWrites flushes the whole batch as one send.
        const std::size_t start = BeginFrame(cork_buf_, type, id);
        AppendRaw(cork_buf_, payload.data(), payload.size());
        EndFrame(cork_buf_, start);
        stats_.bytes_tx.fetch_add(cork_buf_.size() - start,
                                  std::memory_order_relaxed);
        return;
      }
      // Encode into the reusable scratch (capacity kept across requests) so
      // the steady-state request path does not allocate.
      frame_scratch_.clear();
      const std::size_t start = BeginFrame(frame_scratch_, type, id);
      AppendRaw(frame_scratch_, payload.data(), payload.size());
      EndFrame(frame_scratch_, start);
      stats_.bytes_tx.fetch_add(frame_scratch_.size(),
                                std::memory_order_relaxed);
      st = SendFrame(frame_scratch_.data(), frame_scratch_.size(), deadline);
    }
    if (st.ok()) return;
    // Pull the request back out — unless the reader already failed it.
    AsyncHandler doomed;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = pending_.find(id);
      if (it != pending_.end()) {
        doomed = std::move(it->second.handler);
        pending_.erase(it);
      }
    }
    if (doomed) {
      stats_.outstanding.fetch_sub(1, std::memory_order_relaxed);
      stats_.errors.fetch_add(1, std::memory_order_relaxed);
      if (st.code() == ErrorCode::kTimeout) {
        stats_.timeouts.fetch_add(1, std::memory_order_relaxed);
      }
      doomed(st, {});
    }
    if (st.code() == ErrorCode::kDisconnected) Shutdown(st);
  }

  /// Write a whole frame to the non-blocking socket, waiting (bounded by
  /// @p deadline) when the send buffer is full.
  Status SendFrame(const std::byte* data, std::size_t size,
                   std::uint64_t deadline) {
    std::size_t off = 0;
    while (off < size) {
      const ssize_t n = ::send(fd_, data + off, size - off, MSG_NOSIGNAL);
      if (n >= 0) {
        off += static_cast<std::size_t>(n);
        continue;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (deadline != 0 && NowSteadyNs() >= deadline) {
          return {ErrorCode::kTimeout, "send deadline exceeded"};
        }
        pollfd pfd{};
        pfd.fd = fd_;
        pfd.events = POLLOUT;
        ::poll(&pfd, 1, kPollSliceMs);
        continue;
      }
      return {ErrorCode::kDisconnected, std::strerror(errno)};
    }
    return Status::Ok();
  }

  void ReaderLoop() {
    std::vector<std::byte> rbuf;
    std::size_t roff = 0;
    std::byte chunk[65536];
    while (!closed_.load(std::memory_order_acquire)) {
      pollfd pfd{};
      pfd.fd = fd_;
      pfd.events = POLLIN;
      const int pr = ::poll(&pfd, 1, kPollSliceMs);
      if (closed_.load(std::memory_order_acquire)) return;
      if (pr < 0) {
        if (errno == EINTR) continue;
        Shutdown({ErrorCode::kDisconnected, std::strerror(errno)});
        return;
      }
      ExpireRequests(NowSteadyNs());
      if (pr == 0) continue;
      // Drain the socket (non-blocking). A close/error is noted but only
      // acted on after the parse pass: responses that arrived together with
      // the peer's FIN must still complete their requests.
      Status drain_st = Status::Ok();
      for (;;) {
        const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
        if (n > 0) {
          rbuf.insert(rbuf.end(), chunk, chunk + n);
          stats_.bytes_rx.fetch_add(static_cast<std::uint64_t>(n),
                                    std::memory_order_relaxed);
          continue;
        }
        if (n == 0) {
          drain_st = {ErrorCode::kDisconnected, "peer closed"};
          break;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        drain_st = {ErrorCode::kDisconnected, std::strerror(errno)};
        break;
      }
      // Complete every whole frame buffered so far, in arrival order.
      while (rbuf.size() - roff >= kFrameHeaderSize) {
        const FrameHeader hdr = DecodeFrameHeader(
            std::span<const std::byte>(rbuf).subspan(roff));
        if (hdr.payload_len > kMaxFramePayload) {
          Shutdown({ErrorCode::kInternal, "oversized frame from peer"});
          return;
        }
        const std::size_t total = kFrameHeaderSize + hdr.payload_len;
        if (rbuf.size() - roff < total) break;
        CompleteRequest(hdr, std::span<const std::byte>(rbuf).subspan(
                                 roff + kFrameHeaderSize, hdr.payload_len));
        roff += total;
      }
      if (roff == rbuf.size()) {
        rbuf.clear();
        roff = 0;
      } else if (roff >= kCompactBytes) {
        rbuf.erase(rbuf.begin(),
                   rbuf.begin() + static_cast<std::ptrdiff_t>(roff));
        roff = 0;
      }
      if (!drain_st.ok()) {
        Shutdown(drain_st);
        return;
      }
    }
  }

  void CompleteRequest(const FrameHeader& hdr,
                       std::span<const std::byte> payload) {
    AsyncHandler handler;
    Status st = Status::Ok();
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = pending_.find(hdr.request_id);
      // Unknown id: a response that arrived after its request timed out, or
      // junk from the peer. Drop it.
      if (it == pending_.end()) return;
      if (it->second.expect != hdr.type) {
        st = {ErrorCode::kInternal, "mismatched response type"};
      }
      handler = std::move(it->second.handler);
      pending_.erase(it);
    }
    stats_.outstanding.fetch_sub(1, std::memory_order_relaxed);
    if (!st.ok()) {
      stats_.errors.fetch_add(1, std::memory_order_relaxed);
      handler(std::move(st), {});
      return;
    }
    handler(Status::Ok(),
            std::vector<std::byte>(payload.begin(), payload.end()));
  }

  /// Complete every pending request whose deadline has passed with kTimeout.
  /// The connection stays open: a slow peer's late responses are dropped by
  /// request-id, only a disconnect closes the socket.
  void ExpireRequests(std::uint64_t now) {
    std::vector<AsyncHandler> expired;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (auto it = pending_.begin(); it != pending_.end();) {
        if (it->second.deadline != 0 && it->second.deadline <= now) {
          expired.push_back(std::move(it->second.handler));
          it = pending_.erase(it);
        } else {
          ++it;
        }
      }
    }
    for (auto& handler : expired) {
      stats_.outstanding.fetch_sub(1, std::memory_order_relaxed);
      stats_.timeouts.fetch_add(1, std::memory_order_relaxed);
      stats_.errors.fetch_add(1, std::memory_order_relaxed);
      handler({ErrorCode::kTimeout, "request deadline exceeded"}, {});
    }
  }

  /// Mark the endpoint closed, wake both socket directions, and fail every
  /// pending request with @p reason. Idempotent; callable from any thread
  /// including the reader.
  void Shutdown(const Status& reason) {
    std::vector<AsyncHandler> doomed;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!closed_.exchange(true, std::memory_order_acq_rel)) {
        ::shutdown(fd_, SHUT_RDWR);
      }
      doomed.reserve(pending_.size());
      for (auto& [id, pending] : pending_) {
        doomed.push_back(std::move(pending.handler));
      }
      pending_.clear();
    }
    for (auto& handler : doomed) {
      stats_.outstanding.fetch_sub(1, std::memory_order_relaxed);
      stats_.errors.fetch_add(1, std::memory_order_relaxed);
      handler(reason, {});
    }
  }

  const int fd_;
  std::atomic<bool> closed_{false};
  std::atomic<std::uint64_t> next_id_{1};
  std::mutex mu_;  // guards pending_ and the closed_ transition
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::mutex write_mu_;  // serializes whole-frame writes; guards cork state
  bool corked_ = false;
  std::vector<std::byte> cork_buf_;
  std::vector<std::byte> frame_scratch_;  // guarded by write_mu_
  /// Highest batch protocol version the peer has advertised in a lookup
  /// response. 0 until the first successful lookup (or forever, against a
  /// legacy peer) — and UpdateBatch only emits kUpdateBatchReq at >= 1,
  /// because an old server silently drops unknown frame types and the
  /// request would die by timeout instead of falling back.
  std::atomic<std::uint8_t> peer_version_{0};
  std::thread reader_;
};

}  // namespace

Status SockTransport::Listen(const std::string& address,
                             ServiceHandler* handler,
                             std::unique_ptr<Listener>* listener) {
  auto l = std::make_unique<SockListener>();
  Status st = l->Start(address, handler);
  if (!st.ok()) return st;
  *listener = std::move(l);
  return Status::Ok();
}

Status SockTransport::Connect(const std::string& address,
                              std::unique_ptr<Endpoint>* endpoint) {
  sockaddr_in addr{};
  Status st = ParseAddress(address, /*for_listen=*/false, &addr);
  if (!st.ok()) return st;
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return {ErrorCode::kInternal, std::strerror(errno)};
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return {ErrorCode::kDisconnected, "connect " + address + ": " + err};
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  SetNonBlocking(fd);
  *endpoint = std::make_unique<SockEndpoint>(fd);
  return Status::Ok();
}

}  // namespace ldmsxx
