#include "transport/sock_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "util/logging.hpp"
#include "util/strings.hpp"

namespace ldmsxx {
namespace {

std::uint64_t NowSteadyNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Status ParseAddress(const std::string& address, sockaddr_in* out) {
  const auto colon = address.rfind(':');
  if (colon == std::string::npos) {
    return {ErrorCode::kInvalidArgument, "address must be host:port"};
  }
  std::string host = address.substr(0, colon);
  const auto port = ParseU64(address.substr(colon + 1));
  if (!port || *port > 65535) {
    return {ErrorCode::kInvalidArgument, "bad port in " + address};
  }
  if (host.empty() || host == "localhost" || host == "*") host = "127.0.0.1";
  std::memset(out, 0, sizeof(*out));
  out->sin_family = AF_INET;
  out->sin_port = htons(static_cast<std::uint16_t>(*port));
  if (inet_pton(AF_INET, host.c_str(), &out->sin_addr) != 1) {
    return {ErrorCode::kInvalidArgument, "bad host in " + address};
  }
  return Status::Ok();
}

bool SetNonBlocking(int fd) {
  // fcntl-free: SOCK_NONBLOCK is set at creation for sockets we make; accept4
  // handles accepted ones. This helper is for completeness on odd paths.
  (void)fd;
  return true;
}

/// Write all of @p data to a blocking socket.
Status WriteAll(int fd, const std::byte* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::send(fd, data + off, size - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return {ErrorCode::kDisconnected, std::strerror(errno)};
    }
    off += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

/// Read exactly @p size bytes from a blocking socket.
Status ReadAll(int fd, std::byte* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::recv(fd, data + off, size - off, 0);
    if (n == 0) return {ErrorCode::kDisconnected, "peer closed"};
    if (n < 0) {
      if (errno == EINTR) continue;
      return {ErrorCode::kDisconnected, std::strerror(errno)};
    }
    off += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

class SockListener final : public Listener {
 public:
  SockListener() = default;

  ~SockListener() override {
    Stop();
  }

  Status Start(const std::string& address, ServiceHandler* handler) {
    handler_ = handler;
    sockaddr_in addr{};
    Status st = ParseAddress(address, &addr);
    if (!st.ok()) return st;

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) return {ErrorCode::kInternal, std::strerror(errno)};
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
      return {ErrorCode::kInvalidArgument,
              "bind " + address + ": " + std::strerror(errno)};
    }
    if (::listen(listen_fd_, 1024) < 0) {
      return {ErrorCode::kInternal, std::strerror(errno)};
    }
    sockaddr_in actual{};
    socklen_t alen = sizeof actual;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&actual), &alen);
    char host[INET_ADDRSTRLEN];
    inet_ntop(AF_INET, &actual.sin_addr, host, sizeof host);
    address_ = std::string(host) + ":" + std::to_string(ntohs(actual.sin_port));

    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (epoll_fd_ < 0 || wake_fd_ < 0) {
      return {ErrorCode::kInternal, "epoll/eventfd failed"};
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listen_fd_;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
    ev.data.fd = wake_fd_;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

    reactor_ = std::thread([this] { ReactorLoop(); });
    return Status::Ok();
  }

  std::string address() const override { return address_; }

 private:
  struct Conn {
    std::vector<std::byte> rbuf;
    std::deque<std::vector<std::byte>> wqueue;
    std::size_t woff = 0;
  };

  void Stop() {
    if (reactor_.joinable()) {
      stop_ = true;
      const std::uint64_t one = 1;
      [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof one);
      reactor_.join();
    }
    for (auto& [fd, conn] : conns_) ::close(fd);
    conns_.clear();
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    listen_fd_ = epoll_fd_ = wake_fd_ = -1;
  }

  void ReactorLoop() {
    constexpr int kMaxEvents = 128;
    epoll_event events[kMaxEvents];
    while (!stop_) {
      const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, 500);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      for (int i = 0; i < n && !stop_; ++i) {
        const int fd = events[i].data.fd;
        if (fd == wake_fd_) {
          std::uint64_t junk;
          [[maybe_unused]] ssize_t r = ::read(wake_fd_, &junk, sizeof junk);
          continue;
        }
        if (fd == listen_fd_) {
          AcceptAll();
          continue;
        }
        if (events[i].events & (EPOLLHUP | EPOLLERR)) {
          CloseConn(fd);
          continue;
        }
        if (events[i].events & EPOLLIN) {
          if (!ReadConn(fd)) continue;  // closed
        }
        if (events[i].events & EPOLLOUT) FlushConn(fd);
      }
    }
  }

  void AcceptAll() {
    for (;;) {
      const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) return;  // EAGAIN or error: stop accepting this round
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      SetNonBlocking(fd);
      conns_.emplace(fd, Conn{});
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = fd;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    }
  }

  void CloseConn(int fd) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    conns_.erase(fd);
  }

  /// Returns false if the connection was closed.
  bool ReadConn(int fd) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) return false;
    Conn& conn = it->second;
    std::byte chunk[16384];
    for (;;) {
      const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
      if (n > 0) {
        conn.rbuf.insert(conn.rbuf.end(), chunk, chunk + n);
        stats_.bytes_rx.fetch_add(static_cast<std::uint64_t>(n),
                                  std::memory_order_relaxed);
        continue;
      }
      if (n == 0) {
        CloseConn(fd);
        return false;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      CloseConn(fd);
      return false;
    }
    // Extract complete frames.
    std::size_t consumed = 0;
    while (conn.rbuf.size() - consumed >= kFrameHeaderSize) {
      const FrameHeader hdr = DecodeFrameHeader(
          std::span<const std::byte>(conn.rbuf).subspan(consumed));
      if (hdr.payload_len > kMaxFramePayload) {
        CloseConn(fd);  // corrupt or hostile peer
        return false;
      }
      const std::size_t total = kFrameHeaderSize + hdr.payload_len;
      if (conn.rbuf.size() - consumed < total) break;
      HandleFrame(fd, conn, hdr,
                  std::span<const std::byte>(conn.rbuf)
                      .subspan(consumed + kFrameHeaderSize, hdr.payload_len));
      consumed += total;
      // HandleFrame may have closed fd (not currently, but be safe).
      if (conns_.find(fd) == conns_.end()) return false;
    }
    if (consumed > 0) {
      conn.rbuf.erase(conn.rbuf.begin(),
                      conn.rbuf.begin() + static_cast<std::ptrdiff_t>(consumed));
    }
    return true;
  }

  void HandleFrame(int fd, Conn& conn, const FrameHeader& hdr,
                   std::span<const std::byte> payload) {
    const std::uint64_t t0 = NowSteadyNs();
    MsgType resp_type = hdr.type;
    std::vector<std::byte> resp_payload;
    switch (hdr.type) {
      case MsgType::kDirReq: {
        DirResponse resp;
        resp.instances = handler_->HandleDir();
        resp.code = 0;
        resp_type = MsgType::kDirResp;
        resp_payload = EncodeDirResponse(resp);
        break;
      }
      case MsgType::kLookupReq: {
        LookupRequest req;
        LookupResponse resp;
        if (!DecodeLookupRequest(payload, &req)) {
          resp.code = static_cast<std::uint8_t>(ErrorCode::kInvalidArgument);
        } else {
          Status st = handler_->HandleLookup(req.instance, &resp.metadata);
          resp.code = static_cast<std::uint8_t>(st.code());
        }
        resp_type = MsgType::kLookupResp;
        resp_payload = EncodeLookupResponse(resp);
        stats_.lookups.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      case MsgType::kUpdateReq: {
        UpdateRequest req;
        UpdateResponse resp;
        if (!DecodeUpdateRequest(payload, &req)) {
          resp.code = static_cast<std::uint8_t>(ErrorCode::kInvalidArgument);
        } else {
          Status st = handler_->HandleUpdate(req.instance, &resp.data);
          resp.code = static_cast<std::uint8_t>(st.code());
          if (!st.ok()) resp.data.clear();
        }
        resp_type = MsgType::kUpdateResp;
        resp_payload = EncodeUpdateResponse(resp);
        stats_.updates.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      case MsgType::kAdvertise: {
        AdvertiseMsg msg;
        if (DecodeAdvertise(payload, &msg)) handler_->HandleAdvertise(msg);
        stats_.server_cpu_ns.fetch_add(NowSteadyNs() - t0,
                                       std::memory_order_relaxed);
        return;  // no response
      }
      default:
        return;  // unknown frame: drop
    }
    stats_.server_cpu_ns.fetch_add(NowSteadyNs() - t0,
                                   std::memory_order_relaxed);
    auto frame = EncodeFrame(resp_type, hdr.request_id, resp_payload);
    stats_.bytes_tx.fetch_add(frame.size(), std::memory_order_relaxed);
    conn.wqueue.push_back(std::move(frame));
    FlushConn(fd);
  }

  void FlushConn(int fd) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    Conn& conn = it->second;
    while (!conn.wqueue.empty()) {
      auto& front = conn.wqueue.front();
      const ssize_t n = ::send(fd, front.data() + conn.woff,
                               front.size() - conn.woff, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          // Arm EPOLLOUT until drained.
          epoll_event ev{};
          ev.events = EPOLLIN | EPOLLOUT;
          ev.data.fd = fd;
          ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
          return;
        }
        if (errno == EINTR) continue;
        CloseConn(fd);
        return;
      }
      conn.woff += static_cast<std::size_t>(n);
      if (conn.woff == front.size()) {
        conn.wqueue.pop_front();
        conn.woff = 0;
      }
    }
    // Drained: stop watching EPOLLOUT.
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
  }

  ServiceHandler* handler_ = nullptr;
  std::string address_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::thread reactor_;
  std::atomic<bool> stop_{false};
  std::unordered_map<int, Conn> conns_;  // reactor thread only
};

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

class SockEndpoint final : public Endpoint {
 public:
  explicit SockEndpoint(int fd) : fd_(fd) {}

  ~SockEndpoint() override { Close(); }

  bool connected() const override { return fd_ >= 0; }

  void Close() override {
    std::lock_guard<std::mutex> lock(mu_);
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  Status Dir(std::vector<std::string>* instances) override {
    std::vector<std::byte> payload;
    Status st = RoundTrip(MsgType::kDirReq, {}, &payload);
    if (!st.ok()) return st;
    DirResponse resp;
    if (!DecodeDirResponse(payload, &resp)) {
      return {ErrorCode::kInternal, "bad dir response"};
    }
    *instances = std::move(resp.instances);
    return Status::Ok();
  }

  Status Lookup(const std::string& instance,
                std::vector<std::byte>* metadata) override {
    stats_.lookups.fetch_add(1, std::memory_order_relaxed);
    LookupRequest req{instance};
    std::vector<std::byte> payload;
    Status st = RoundTrip(MsgType::kLookupReq, EncodeLookupRequest(req),
                          &payload);
    if (!st.ok()) return st;
    LookupResponse resp;
    if (!DecodeLookupResponse(payload, &resp)) {
      return {ErrorCode::kInternal, "bad lookup response"};
    }
    if (resp.code != 0) {
      stats_.errors.fetch_add(1, std::memory_order_relaxed);
      return {static_cast<ErrorCode>(resp.code), "lookup failed"};
    }
    *metadata = std::move(resp.metadata);
    return Status::Ok();
  }

  Status Update(const std::string& instance, MetricSet& mirror) override {
    stats_.updates.fetch_add(1, std::memory_order_relaxed);
    UpdateRequest req{instance};
    std::vector<std::byte> payload;
    Status st = RoundTrip(MsgType::kUpdateReq, EncodeUpdateRequest(req),
                          &payload);
    if (!st.ok()) return st;
    UpdateResponse resp;
    if (!DecodeUpdateResponse(payload, &resp)) {
      return {ErrorCode::kInternal, "bad update response"};
    }
    if (resp.code != 0) {
      stats_.errors.fetch_add(1, std::memory_order_relaxed);
      return {static_cast<ErrorCode>(resp.code), "update failed"};
    }
    return mirror.ApplyData(resp.data);
  }

  Status Advertise(const AdvertiseMsg& msg) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (fd_ < 0) return {ErrorCode::kDisconnected, "closed"};
    auto frame =
        EncodeFrame(MsgType::kAdvertise, next_id_++, EncodeAdvertise(msg));
    stats_.bytes_tx.fetch_add(frame.size(), std::memory_order_relaxed);
    return WriteAll(fd_, frame.data(), frame.size());
  }

 private:
  Status RoundTrip(MsgType type, std::span<const std::byte> payload,
                   std::vector<std::byte>* resp_payload) {
    std::lock_guard<std::mutex> lock(mu_);
    if (fd_ < 0) return {ErrorCode::kDisconnected, "closed"};
    auto frame = EncodeFrame(type, next_id_++, payload);
    stats_.bytes_tx.fetch_add(frame.size(), std::memory_order_relaxed);
    Status st = WriteAll(fd_, frame.data(), frame.size());
    if (!st.ok()) {
      stats_.errors.fetch_add(1, std::memory_order_relaxed);
      ::close(fd_);
      fd_ = -1;
      return st;
    }
    std::byte hdr_bytes[kFrameHeaderSize];
    st = ReadAll(fd_, hdr_bytes, sizeof hdr_bytes);
    if (!st.ok()) {
      stats_.errors.fetch_add(1, std::memory_order_relaxed);
      ::close(fd_);
      fd_ = -1;
      return st;
    }
    const FrameHeader hdr = DecodeFrameHeader(hdr_bytes);
    if (hdr.payload_len > kMaxFramePayload) {
      stats_.errors.fetch_add(1, std::memory_order_relaxed);
      ::close(fd_);
      fd_ = -1;
      return {ErrorCode::kInternal, "oversized frame from peer"};
    }
    resp_payload->resize(hdr.payload_len);
    st = ReadAll(fd_, resp_payload->data(), hdr.payload_len);
    if (!st.ok()) {
      stats_.errors.fetch_add(1, std::memory_order_relaxed);
      ::close(fd_);
      fd_ = -1;
      return st;
    }
    stats_.bytes_rx.fetch_add(kFrameHeaderSize + hdr.payload_len,
                              std::memory_order_relaxed);
    return Status::Ok();
  }

  std::mutex mu_;
  int fd_;
  std::uint64_t next_id_ = 1;
};

}  // namespace

Status SockTransport::Listen(const std::string& address,
                             ServiceHandler* handler,
                             std::unique_ptr<Listener>* listener) {
  auto l = std::make_unique<SockListener>();
  Status st = l->Start(address, handler);
  if (!st.ok()) return st;
  *listener = std::move(l);
  return Status::Ok();
}

Status SockTransport::Connect(const std::string& address,
                              std::unique_ptr<Endpoint>* endpoint) {
  sockaddr_in addr{};
  Status st = ParseAddress(address, &addr);
  if (!st.ok()) return st;
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return {ErrorCode::kInternal, std::strerror(errno)};
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return {ErrorCode::kDisconnected, "connect " + address + ": " + err};
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  *endpoint = std::make_unique<SockEndpoint>(fd);
  return Status::Ok();
}

}  // namespace ldmsxx
