#include "transport/fabric.hpp"

namespace ldmsxx {

Fabric& Fabric::Instance() {
  static Fabric fabric;
  return fabric;
}

Status Fabric::Register(const std::string& address,
                        std::shared_ptr<FabricNode> node) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = nodes_.emplace(address, std::move(node));
  if (!inserted) {
    return {ErrorCode::kAlreadyExists, "address in use: " + address};
  }
  return Status::Ok();
}

void Fabric::Unregister(const std::string& address, const FabricNode* node) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = nodes_.find(address);
  if (it != nodes_.end() && it->second.get() == node) nodes_.erase(it);
}

std::shared_ptr<FabricNode> Fabric::Find(const std::string& address) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = nodes_.find(address);
  if (it == nodes_.end()) return nullptr;
  return it->second;
}

}  // namespace ldmsxx
