#include "transport/rdma_transport.hpp"

#include <chrono>
#include <unordered_map>

namespace ldmsxx {
namespace {

std::uint64_t NowSteadyNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

class RdmaListener final : public Listener {
 public:
  RdmaListener(Fabric* fabric, std::string address, ServiceHandler* handler)
      : fabric_(fabric), address_(std::move(address)) {
    node_ = std::make_shared<FabricNode>(handler, &stats_);
  }

  ~RdmaListener() override {
    node_->Deactivate();
    fabric_->Unregister(address_, node_.get());
  }

  std::string address() const override { return address_; }
  std::shared_ptr<FabricNode> node() const { return node_; }

 private:
  Fabric* fabric_;
  std::string address_;
  std::shared_ptr<FabricNode> node_;
};

class RdmaEndpoint final : public Endpoint {
 public:
  RdmaEndpoint(std::shared_ptr<FabricNode> node, const RdmaOptions& options)
      : node_(std::move(node)), options_(options) {}

  bool connected() const override { return !closed_ && node_->alive(); }

  void Close() override {
    closed_ = true;
    pinned_.clear();
  }

  Status Dir(std::vector<std::string>* instances) override {
    if (closed_) return {ErrorCode::kDisconnected, "endpoint closed"};
    return node_->WithHandler([&](ServiceHandler* h, TransportStats* srv) {
      const std::uint64_t t0 = NowSteadyNs();
      *instances = h->HandleDir();
      const std::uint64_t dt = NowSteadyNs() - t0;
      if (srv != nullptr)
        srv->server_cpu_ns.fetch_add(dt, std::memory_order_relaxed);
      return Status::Ok();
    });
  }

  Status Lookup(const std::string& instance,
                std::vector<std::byte>* metadata) override {
    if (closed_) return {ErrorCode::kDisconnected, "endpoint closed"};
    Status st = node_->WithHandler([&](ServiceHandler* h, TransportStats* srv) {
      const std::uint64_t t0 = NowSteadyNs();
      // Two-sided: fetch metadata AND pin the set's memory for one-sided
      // reads (memory registration).
      MetricSetPtr target = h->HandleRdmaExpose(instance);
      if (target == nullptr) {
        return Status{ErrorCode::kNotFound, "no such set: " + instance};
      }
      auto meta = target->metadata_bytes();
      metadata->assign(meta.begin(), meta.end());
      pinned_[instance] = std::move(target);
      const std::uint64_t dt = NowSteadyNs() - t0;
      if (srv != nullptr) {
        srv->server_cpu_ns.fetch_add(dt, std::memory_order_relaxed);
        srv->bytes_tx.fetch_add(metadata->size(), std::memory_order_relaxed);
      }
      stats_.bytes_rx.fetch_add(metadata->size(), std::memory_order_relaxed);
      return Status::Ok();
    });
    stats_.lookups.fetch_add(1, std::memory_order_relaxed);
    if (!st.ok()) stats_.errors.fetch_add(1, std::memory_order_relaxed);
    return st;
  }

  Status UpdateRaw(const std::string& instance,
                   std::vector<std::byte>* data) override {
    if (closed_) return {ErrorCode::kDisconnected, "endpoint closed"};
    stats_.updates.fetch_add(1, std::memory_order_relaxed);
    // One-sided read path: a dead peer means the "NIC" no longer responds,
    // even though the pinned memory is still reachable in-process.
    if (!node_->alive()) {
      stats_.errors.fetch_add(1, std::memory_order_relaxed);
      return {ErrorCode::kDisconnected, "peer is down"};
    }
    auto it = pinned_.find(instance);
    if (it == pinned_.end()) {
      stats_.errors.fetch_add(1, std::memory_order_relaxed);
      return {ErrorCode::kNotFound, "set not looked up: " + instance};
    }
    if (options_.read_latency_ns > 0) SpinFor(options_.read_latency_ns);
    const MetricSet& target = *it->second;
    data->resize(target.data_size());
    Status st = target.SnapshotData(*data);
    if (!st.ok()) {
      stats_.errors.fetch_add(1, std::memory_order_relaxed);
      return st;
    }
    stats_.bytes_rx.fetch_add(data->size(), std::memory_order_relaxed);
    // Deliberately NOT charged to the peer's server_cpu_ns: one-sided.
    return Status::Ok();
  }

  // One-sided batch pull. RDMA needs no set handles or version negotiation —
  // the endpoint reads pinned memory directly — but it benefits from the same
  // DGN gate: an 8-byte read of the header's generation number decides
  // whether the full chunk is fetched, so quiescent sets cost one tiny read
  // instead of the whole data chunk. Server CPU stays uncharged throughout.
  void UpdateBatch(const std::vector<BatchUpdateSpec>& specs,
                   std::vector<BatchUpdateResult>* results) override {
    const std::size_t n = specs.size();
    results->assign(n, BatchUpdateResult{});
    if (n == 0) return;
    stats_.updates.fetch_add(n, std::memory_order_relaxed);
    stats_.update_batches.fetch_add(1, std::memory_order_relaxed);
    if (closed_ || !node_->alive()) {
      const Status down = closed_
                              ? Status{ErrorCode::kDisconnected,
                                       "endpoint closed"}
                              : Status{ErrorCode::kDisconnected,
                                       "peer is down"};
      stats_.errors.fetch_add(1, std::memory_order_relaxed);
      for (auto& r : *results) r.status = down;
      return;
    }
    for (std::size_t i = 0; i < n; ++i) {
      BatchUpdateResult& r = (*results)[i];
      r.batched = true;
      auto it = pinned_.find(specs[i].instance);
      if (it == pinned_.end()) {
        stats_.errors.fetch_add(1, std::memory_order_relaxed);
        r.status = {ErrorCode::kNotFound,
                    "set not looked up: " + specs[i].instance};
        continue;
      }
      const MetricSet& target = *it->second;
      // Gate read: one header-word fetch.
      if (options_.read_latency_ns > 0) SpinFor(options_.read_latency_ns);
      stats_.bytes_rx.fetch_add(8, std::memory_order_relaxed);
      if (target.data_gn() == specs[i].last_dgn && target.consistent()) {
        r.status = Status::Ok();
        r.unchanged = true;
        stats_.updates_unchanged.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (options_.read_latency_ns > 0) SpinFor(options_.read_latency_ns);
      // Delta read: the extent table lives beside the pinned chunk, so a
      // one-sided reader can pull just the changed bytes when the set
      // advanced exactly one transaction. Still no server CPU charged.
      if (delta_updates()) {
        ByteWriter dw(&r.data);
        if (target.SnapshotDelta(specs[i].last_dgn, dw).ok()) {
          r.status = Status::Ok();
          r.delta = true;
          stats_.bytes_rx.fetch_add(r.data.size(), std::memory_order_relaxed);
          stats_.updates_delta.fetch_add(1, std::memory_order_relaxed);
          stats_.delta_bytes_saved.fetch_add(
              target.data_size() - r.data.size(), std::memory_order_relaxed);
          continue;
        }
        r.data.clear();
      }
      r.data.resize(target.data_size());
      r.status = target.SnapshotData(r.data);
      if (!r.status.ok()) {
        stats_.errors.fetch_add(1, std::memory_order_relaxed);
        r.data.clear();
        continue;
      }
      stats_.bytes_rx.fetch_add(r.data.size(), std::memory_order_relaxed);
    }
  }

  Status Advertise(const AdvertiseMsg& msg) override {
    if (closed_) return {ErrorCode::kDisconnected, "endpoint closed"};
    return node_->WithHandler([&](ServiceHandler* h, TransportStats*) {
      h->HandleAdvertise(msg);
      return Status::Ok();
    });
  }

 private:
  std::shared_ptr<FabricNode> node_;
  RdmaOptions options_;
  std::unordered_map<std::string, MetricSetPtr> pinned_;
  bool closed_ = false;
};

}  // namespace

RdmaSimTransport::RdmaSimTransport(RdmaOptions options, Fabric* fabric)
    : options_(std::move(options)),
      fabric_(fabric != nullptr ? fabric : &Fabric::Instance()) {}

Status RdmaSimTransport::Listen(const std::string& address,
                                ServiceHandler* handler,
                                std::unique_ptr<Listener>* listener) {
  auto l = std::make_unique<RdmaListener>(fabric_, address, handler);
  Status st = fabric_->Register(address, l->node());
  if (!st.ok()) return st;
  *listener = std::move(l);
  return Status::Ok();
}

Status RdmaSimTransport::Connect(const std::string& address,
                                 std::unique_ptr<Endpoint>* endpoint) {
  auto node = fabric_->Find(address);
  if (node == nullptr || !node->alive()) {
    return {ErrorCode::kDisconnected, "no listener at " + address};
  }
  *endpoint = std::make_unique<RdmaEndpoint>(std::move(node), options_);
  return Status::Ok();
}

std::unique_ptr<RdmaSimTransport> RdmaSimTransport::Infiniband(Fabric* fabric) {
  RdmaOptions opts;
  opts.name = "rdma";
  opts.registered_bytes_per_conn = 8192;
  return std::make_unique<RdmaSimTransport>(std::move(opts), fabric);
}

std::unique_ptr<RdmaSimTransport> RdmaSimTransport::Gemini(Fabric* fabric) {
  RdmaOptions opts;
  opts.name = "ugni";
  opts.registered_bytes_per_conn = 4096;
  return std::make_unique<RdmaSimTransport>(std::move(opts), fabric);
}

}  // namespace ldmsxx
