// Fault-injecting transport decorator. Wraps any Transport and, driven by a
// seeded deterministic FaultSchedule, injects the failure modes a production
// collector must survive (the Blue Waters churn of §IV-B): connection
// refusal, mid-frame disconnect, delayed delivery, frame truncation or
// corruption, and one-way stalls (request delivered, response never comes,
// surfaced as kTimeout just as the sock transport's deadline path would).
//
// Faults are decided per operation by FaultSchedule::Draw. Two sources feed
// a draw, in priority order:
//   1. an explicit queue per operation (InjectNext) — chaos tests use this
//      to script exact scenarios ("the next update loses its connection");
//   2. a probabilistic draw from a seeded xoshiro stream — same seed and
//      same operation order produce the identical fault sequence, which is
//      what makes the chaos suite reproducible when daemons are driven
//      deterministically (inline pools + SimClock).
// A disarmed schedule (set_armed(false), the default probabilities are all
// zero anyway) makes the decorator a pure passthrough, which is why a
// "fault"-named instance can sit in TransportRegistry::Default() at no cost.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>

#include "transport/transport.hpp"
#include "util/rng.hpp"

namespace ldmsxx {

enum class FaultKind : std::uint8_t {
  kNone = 0,
  kRefuseConnect,  // Connect() fails with kDisconnected
  kDisconnect,     // the connection dies mid-frame; endpoint is dead after
  kDelay,          // response delivery is delayed (real sleep, bounded)
  kTruncate,       // response payload is cut short
  kCorrupt,        // response payload has bytes flipped
  kStall,          // response never arrives; request completes with kTimeout
};

/// Operation classes a fault can attach to.
enum class FaultOp : std::uint8_t {
  kConnect = 0,
  kDir,
  kLookup,
  kUpdate,
  kAdvertise,
  kQuery,  // fan-out RemoteQuery round-trips
};
constexpr std::size_t kFaultOpCount = 6;

/// How many of each fault the schedule has actually injected; chaos tests
/// assert against these.
struct FaultStats {
  std::atomic<std::uint64_t> refused_connects{0};
  std::atomic<std::uint64_t> disconnects{0};
  std::atomic<std::uint64_t> delays{0};
  std::atomic<std::uint64_t> truncations{0};
  std::atomic<std::uint64_t> corruptions{0};
  std::atomic<std::uint64_t> stalls{0};

  std::uint64_t total() const {
    return refused_connects.load(std::memory_order_relaxed) +
           disconnects.load(std::memory_order_relaxed) +
           delays.load(std::memory_order_relaxed) +
           truncations.load(std::memory_order_relaxed) +
           corruptions.load(std::memory_order_relaxed) +
           stalls.load(std::memory_order_relaxed);
  }
};

class FaultSchedule {
 public:
  /// Per-operation fault probabilities, applied independently in the order
  /// refuse/disconnect/stall/truncate/corrupt/delay (first hit wins).
  /// Inapplicable combinations (refuse on non-connect ops, truncate/corrupt
  /// on ops without a response payload) draw as no-fault.
  struct Probabilities {
    double refuse_connect = 0.0;
    double disconnect = 0.0;
    double stall = 0.0;
    double truncate = 0.0;
    double corrupt = 0.0;
    double delay = 0.0;
    /// Upper bound for kDelay's real sleep; keep small in tests.
    DurationNs max_delay = 2 * kNsPerMs;
  };

  FaultSchedule() : FaultSchedule(0, Probabilities()) {}
  explicit FaultSchedule(std::uint64_t seed)
      : FaultSchedule(seed, Probabilities()) {}
  FaultSchedule(std::uint64_t seed, Probabilities probs)
      : rng_(seed ^ 0x6c646d735f666c74ull), probs_(probs) {}

  /// Master switch; a disarmed schedule never injects (queued faults are
  /// retained for when it is re-armed).
  void set_armed(bool armed) {
    std::lock_guard<std::mutex> lock(mu_);
    armed_ = armed;
  }
  bool armed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return armed_;
  }

  void set_probabilities(const Probabilities& probs) {
    std::lock_guard<std::mutex> lock(mu_);
    probs_ = probs;
  }

  /// Script @p count copies of @p kind onto the queue for @p op; queued
  /// faults are consumed (FIFO) before any probabilistic draw.
  void InjectNext(FaultOp op, FaultKind kind, std::size_t count = 1);

  /// One fault decision. delay is set for kDelay; mutation seeds the
  /// truncation point / corruption mask for kTruncate and kCorrupt.
  struct Decision {
    FaultKind kind = FaultKind::kNone;
    DurationNs delay = 0;
    std::uint64_t mutation = 0;
  };
  Decision Draw(FaultOp op);

  const FaultStats& stats() const { return stats_; }

 private:
  static bool Applicable(FaultOp op, FaultKind kind);

  mutable std::mutex mu_;
  Rng rng_;
  Probabilities probs_;
  bool armed_ = true;
  std::deque<FaultKind> queued_[kFaultOpCount];
  FaultStats stats_;
};

/// Decorator: forwards to an inner transport, injecting faults per the
/// shared schedule. Listen() is a pure forward — faults model the network
/// between an aggregator and its producers, so they are applied on the
/// endpoint (client) side where the collector experiences them.
class FaultInjectingTransport final : public Transport {
 public:
  /// @param name registry name; defaults to "fault+<inner name>".
  FaultInjectingTransport(std::shared_ptr<Transport> inner,
                          std::shared_ptr<FaultSchedule> schedule,
                          std::string name = "");

  const std::string& name() const override { return name_; }

  Status Listen(const std::string& address, ServiceHandler* handler,
                std::unique_ptr<Listener>* listener) override;

  Status Connect(const std::string& address,
                 std::unique_ptr<Endpoint>* endpoint) override;

  FaultSchedule& schedule() { return *schedule_; }
  Transport& inner() { return *inner_; }

 private:
  std::shared_ptr<Transport> inner_;
  std::shared_ptr<FaultSchedule> schedule_;
  std::string name_;
};

}  // namespace ldmsxx
