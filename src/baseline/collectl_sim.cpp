#include "baseline/collectl_sim.hpp"

#include "util/strings.hpp"

namespace ldmsxx::baseline {

CollectlSim::CollectlSim(NodeDataSourcePtr source, const std::string& output)
    : source_(std::move(source)), discard_(output.empty()) {
  if (!discard_) out_.open(output, std::ios::trunc);
}

Status CollectlSim::RecordOnce(TimeNs now) {
  std::string stat;
  std::string meminfo;
  Status st = source_->Read("/proc/stat", &stat);
  if (!st.ok()) return st;
  st = source_->Read("/proc/meminfo", &meminfo);
  if (!st.ok()) return st;

  std::string line = std::to_string(now / kNsPerSec) + "." +
                     std::to_string((now % kNsPerSec) / kNsPerMs);
  for (std::string_view l : Split(stat, '\n')) {
    if (StartsWith(l, "cpu ")) {
      for (auto field : SplitWhitespace(l.substr(4))) {
        line += " ";
        line += field;
      }
      break;
    }
  }
  for (std::string_view l : Split(meminfo, '\n')) {
    auto fields = SplitWhitespace(l);
    if (fields.size() >= 2) {
      line += " ";
      line += fields[1];
    }
  }
  line += "\n";
  ++records_;
  if (!discard_) out_ << line;
  return Status::Ok();
}

}  // namespace ldmsxx::baseline
