#include "baseline/ganglia_sim.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cmath>

#include "util/strings.hpp"

namespace ldmsxx::baseline {

GangliaSimCollector::GangliaSimCollector(NodeDataSourcePtr source,
                                         GangliaOptions options)
    : source_(std::move(source)), options_(options) {
  if (options_.udp_transmit) {
    udp_fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0);
    if (udp_fd_ >= 0) {
      // gmond sends to a multicast channel; we point at the local discard
      // port so each metric still pays the datagram syscall.
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(9);  // discard
      inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
      if (::connect(udp_fd_, reinterpret_cast<sockaddr*>(&addr),
                    sizeof addr) != 0) {
        ::close(udp_fd_);
        udp_fd_ = -1;
      }
    }
  }
}

GangliaSimCollector::~GangliaSimCollector() {
  if (udp_fd_ >= 0) ::close(udp_fd_);
}

void GangliaSimCollector::UseDefaultMetrics() {
  const char* mem_fields[] = {"MemTotal", "MemFree", "Buffers",
                              "Cached",   "Active",  "Inactive"};
  for (const char* field : mem_fields) {
    AddMetric({std::string("mem_") + field, "/proc/meminfo",
               std::string(field) + ":", 0, "KB", "uint32"});
  }
  const char* cpu_names[] = {"cpu_user", "cpu_nice", "cpu_system", "cpu_idle",
                             "cpu_wio"};
  for (std::size_t i = 0; i < std::size(cpu_names); ++i) {
    AddMetric({cpu_names[i], "/proc/stat", "cpu", i, "jiffies", "float"});
  }
}

void GangliaSimCollector::AddMetric(GangliaMetricDef def) {
  metrics_.push_back(std::move(def));
  state_.emplace_back();
}

std::size_t GangliaSimCollector::CollectOnce(
    TimeNs now, std::vector<std::string>* packets) {
  std::size_t sent = 0;
  ++collections_;
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    const GangliaMetricDef& def = metrics_[i];
    MetricState& st = state_[i];

    // Per-metric source read + parse: gmond metric modules don't share a
    // parsed snapshot the way an LDMS metric set does.
    std::string content;
    if (!source_->Read(def.source_path, &content).ok()) continue;
    double value = 0.0;
    for (std::string_view line : Split(content, '\n')) {
      auto fields = SplitWhitespace(line);
      if (fields.empty() || fields[0] != def.key) continue;
      if (def.field + 1 < fields.size()) {
        if (auto v = ParseDouble(fields[def.field + 1])) value = *v;
      }
      break;
    }

    // Thresholding: send when the relative change exceeds the threshold or
    // the time threshold expired.
    const bool time_due =
        !st.ever_sent || now - st.last_sent >= options_.time_threshold;
    const double rel_change =
        st.last_value != 0.0
            ? std::fabs(value - st.last_value) / std::fabs(st.last_value)
            : (value != 0.0 ? 1.0 : 0.0);
    if (!time_due && rel_change <= options_.value_threshold) continue;

    // Metadata + value serialized per transmission (Ganglia XML telemetry).
    std::string packet;
    packet.reserve(256);
    packet += "<METRIC NAME=\"";
    packet += def.name;
    packet += "\" VAL=\"";
    packet += std::to_string(value);
    packet += "\" TYPE=\"";
    packet += def.type_string;
    packet += "\" UNITS=\"";
    packet += def.units;
    packet += "\" TN=\"0\" TMAX=\"";
    packet += std::to_string(options_.time_threshold / kNsPerSec);
    packet += "\" DMAX=\"0\" SLOPE=\"both\" SOURCE=\"gmond\"/>";
    bytes_sent_ += packet.size();
    if (udp_fd_ >= 0) {
      // One datagram per metric, like gmond's metric channel.
      (void)::send(udp_fd_, packet.data(), packet.size(), MSG_DONTWAIT);
    }
    if (packets != nullptr) packets->push_back(std::move(packet));

    st.last_value = value;
    st.last_sent = now;
    st.ever_sent = true;
    ++sent;
  }
  return sent;
}

}  // namespace ldmsxx::baseline
