// collectl/sar-like single-host recorder (§IV-E "Profiling systems"):
// collects from the same data sources but writes locally and has no
// transport/aggregation layer. Exists as the paper's second comparison
// point and to demonstrate what LDMS adds (transport, aggregation,
// generation-number consistency, pluggable stores).
#pragma once

#include <fstream>
#include <string>
#include <vector>

#include "sim/data_source.hpp"
#include "util/clock.hpp"

namespace ldmsxx::baseline {

class CollectlSim {
 public:
  /// @param output path of the flat text record ("" = discard)
  CollectlSim(NodeDataSourcePtr source, const std::string& output);

  /// Record one line with CPU + memory values at @p now. Subsecond
  /// intervals supported (collectl's differentiator over sar).
  Status RecordOnce(TimeNs now);

  std::uint64_t records() const { return records_; }

 private:
  NodeDataSourcePtr source_;
  std::ofstream out_;
  bool discard_ = false;
  std::uint64_t records_ = 0;
};

}  // namespace ldmsxx::baseline
