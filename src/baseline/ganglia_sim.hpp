// Ganglia-like baseline collector for the §IV-E comparison ("126 usec per
// metric for Ganglia vs 1.3 usec per metric for LDMS"). The gap is
// structural, and we reproduce the structure rather than the constant:
//
//  * gmond modules collect each metric independently — the /proc source is
//    re-read and re-parsed once per metric, not once per set;
//  * every transmission carries the metric's metadata (name, type string,
//    units, host) serialized in Ganglia's XML telemetry format, so each
//    sample does per-metric string formatting and heap allocation;
//  * values travel as formatted text, not fixed-offset binary.
//
// The collector also implements gmond's value/time thresholding
// (send only when the value moved by > value_threshold or time_threshold
// expired) — the feature the paper notes "can reduce behavioral
// understanding if set too high".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/data_source.hpp"
#include "util/clock.hpp"

namespace ldmsxx::baseline {

struct GangliaMetricDef {
  std::string name;
  std::string source_path;  ///< /proc file to (re-)read
  std::string key;          ///< line key within the file
  std::size_t field = 0;    ///< whitespace field index after the key
  std::string units;
  std::string type_string = "uint32";
};

struct GangliaOptions {
  /// Relative change required to retransmit early (0 = always send).
  double value_threshold = 0.0;
  /// Retransmit at least this often even if unchanged.
  DurationNs time_threshold = 60 * kNsPerSec;
  /// Transmit each metric as its own UDP datagram (gmond's channel; each
  /// metric pays a syscall, where LDMS ships one binary chunk per set).
  /// Disabled in environments without loopback UDP.
  bool udp_transmit = true;
};

class GangliaSimCollector {
 public:
  GangliaSimCollector(NodeDataSourcePtr source, GangliaOptions options = {});
  ~GangliaSimCollector();

  /// The default metric list mirrors what the paper timed: everything LDMS's
  /// meminfo + procstat samplers collect from /proc/meminfo and /proc/stat.
  void UseDefaultMetrics();
  void AddMetric(GangliaMetricDef def);
  std::size_t metric_count() const { return metrics_.size(); }

  /// Collect every metric once at time @p now. Returns the number of
  /// metrics *transmitted* (thresholding may suppress some); @p packets, if
  /// non-null, receives the serialized XML messages.
  std::size_t CollectOnce(TimeNs now, std::vector<std::string>* packets);

  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t collections() const { return collections_; }

 private:
  struct MetricState {
    double last_value = 0.0;
    TimeNs last_sent = 0;
    bool ever_sent = false;
  };

  NodeDataSourcePtr source_;
  GangliaOptions options_;
  std::vector<GangliaMetricDef> metrics_;
  std::vector<MetricState> state_;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t collections_ = 0;
  int udp_fd_ = -1;
};

}  // namespace ldmsxx::baseline
