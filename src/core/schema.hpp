// A Schema defines the metrics of a metric set: names, types, per-metric
// component IDs, and the byte offset of each value in the data chunk
// (§IV-B: metadata records "name, user-defined component ID, data type,
// offset of the element from the beginning of the data chunk").
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/value.hpp"

namespace ldmsxx {

/// One metric's definition within a schema.
struct MetricDef {
  std::string name;
  MetricType type = MetricType::kU64;
  /// User-defined component ID associated with this metric (typically the
  /// node ID the value describes); written alongside every stored value.
  std::uint64_t component_id = 0;
  /// Byte offset of the value from the start of the data chunk's value area.
  std::uint32_t data_offset = 0;
};

/// Ordered collection of metric definitions plus computed layout. Build with
/// AddMetric() then hand to MetricSet::Create; layout is finalized lazily.
class Schema {
 public:
  explicit Schema(std::string name) : name_(std::move(name)) {}

  /// Append a metric; returns its index. Duplicate names are allowed by LDMS
  /// (different component IDs can share a name); lookup-by-name returns the
  /// first.
  std::size_t AddMetric(std::string_view metric_name, MetricType type,
                        std::uint64_t component_id = 0);

  const std::string& name() const { return name_; }
  std::size_t metric_count() const { return metrics_.size(); }
  const MetricDef& metric(std::size_t i) const { return metrics_[i]; }

  /// Index of the first metric with @p metric_name, if any.
  std::optional<std::size_t> FindMetric(std::string_view metric_name) const;

  /// Total bytes of the value area (excludes the data-chunk header).
  /// Computes offsets on first call; adding metrics afterwards recomputes.
  std::uint32_t value_area_size() const;

 private:
  void ComputeLayout() const;

  std::string name_;
  mutable std::vector<MetricDef> metrics_;
  mutable std::unordered_map<std::string, std::size_t> index_;
  mutable std::uint32_t value_area_size_ = 0;
  mutable bool layout_valid_ = false;
};

}  // namespace ldmsxx
