// Metric value types. LDMS metric sets are strongly typed: each metric in a
// set has a fixed scalar type chosen at schema-definition time so that the
// data chunk has a fixed binary layout and samplers never format text on the
// hot path (§IV-B; the "U64" column in the paper's Lustre metric listing is
// this type tag).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace ldmsxx {

/// Scalar metric types supported in metric-set data chunks.
enum class MetricType : std::uint8_t {
  kU8 = 0,
  kS8,
  kU16,
  kS16,
  kU32,
  kS32,
  kU64,
  kS64,
  kF32,
  kD64,
};

/// Size in bytes of a value of @p type in the data chunk.
constexpr std::size_t MetricTypeSize(MetricType type) {
  switch (type) {
    case MetricType::kU8:
    case MetricType::kS8:
      return 1;
    case MetricType::kU16:
    case MetricType::kS16:
      return 2;
    case MetricType::kU32:
    case MetricType::kS32:
    case MetricType::kF32:
      return 4;
    case MetricType::kU64:
    case MetricType::kS64:
    case MetricType::kD64:
      return 8;
  }
  return 0;
}

/// Natural alignment equals size for all supported scalars.
constexpr std::size_t MetricTypeAlign(MetricType type) {
  return MetricTypeSize(type);
}

const char* MetricTypeName(MetricType type);

/// Tagged scalar used by the generic (type-erased) accessors, the stores,
/// and the configuration layer. Hot paths use the typed accessors instead.
struct MetricValue {
  MetricType type = MetricType::kU64;
  union {
    std::uint64_t u64;
    std::int64_t s64;
    double d64;
    float f32;
  } v{};

  static MetricValue U64(std::uint64_t x) {
    MetricValue mv;
    mv.type = MetricType::kU64;
    mv.v.u64 = x;
    return mv;
  }
  static MetricValue S64(std::int64_t x) {
    MetricValue mv;
    mv.type = MetricType::kS64;
    mv.v.s64 = x;
    return mv;
  }
  static MetricValue D64(double x) {
    MetricValue mv;
    mv.type = MetricType::kD64;
    mv.v.d64 = x;
    return mv;
  }

  /// Lossy conversion to double (stores and plots).
  double AsDouble() const;
  /// Render for CSV output.
  std::string ToString() const;
};

inline const char* MetricTypeName(MetricType type) {
  switch (type) {
    case MetricType::kU8: return "U8";
    case MetricType::kS8: return "S8";
    case MetricType::kU16: return "U16";
    case MetricType::kS16: return "S16";
    case MetricType::kU32: return "U32";
    case MetricType::kS32: return "S32";
    case MetricType::kU64: return "U64";
    case MetricType::kS64: return "S64";
    case MetricType::kF32: return "F32";
    case MetricType::kD64: return "D64";
  }
  return "?";
}

inline double MetricValue::AsDouble() const {
  switch (type) {
    case MetricType::kF32:
      return static_cast<double>(v.f32);
    case MetricType::kD64:
      return v.d64;
    case MetricType::kS8:
    case MetricType::kS16:
    case MetricType::kS32:
    case MetricType::kS64:
      return static_cast<double>(v.s64);
    default:
      return static_cast<double>(v.u64);
  }
}

inline std::string MetricValue::ToString() const {
  switch (type) {
    case MetricType::kF32:
      return std::to_string(v.f32);
    case MetricType::kD64:
      return std::to_string(v.d64);
    case MetricType::kS8:
    case MetricType::kS16:
    case MetricType::kS32:
    case MetricType::kS64:
      return std::to_string(v.s64);
    default:
      return std::to_string(v.u64);
  }
}

}  // namespace ldmsxx
