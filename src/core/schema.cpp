#include "core/schema.hpp"

namespace ldmsxx {

std::size_t Schema::AddMetric(std::string_view metric_name, MetricType type,
                              std::uint64_t component_id) {
  MetricDef def;
  def.name = std::string(metric_name);
  def.type = type;
  def.component_id = component_id;
  metrics_.push_back(std::move(def));
  index_.emplace(metrics_.back().name, metrics_.size() - 1);
  layout_valid_ = false;
  return metrics_.size() - 1;
}

std::optional<std::size_t> Schema::FindMetric(
    std::string_view metric_name) const {
  auto it = index_.find(std::string(metric_name));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::uint32_t Schema::value_area_size() const {
  if (!layout_valid_) ComputeLayout();
  return value_area_size_;
}

void Schema::ComputeLayout() const {
  std::uint32_t offset = 0;
  for (auto& def : metrics_) {
    const auto align = static_cast<std::uint32_t>(MetricTypeAlign(def.type));
    offset = (offset + align - 1) / align * align;
    def.data_offset = offset;
    offset += static_cast<std::uint32_t>(MetricTypeSize(def.type));
  }
  value_area_size_ = offset;
  layout_valid_ = true;
}

}  // namespace ldmsxx
