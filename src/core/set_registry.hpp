// Per-daemon directory of metric sets keyed by instance name. Transport
// listeners resolve lookup requests against this; sampler plugins register
// the sets they create (the "set directory" a real ldmsd exposes via
// ldms_ls).
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/metric_set.hpp"
#include "util/status.hpp"

namespace ldmsxx {

/// Thread-safe name -> set map.
class SetRegistry {
 public:
  /// Register @p set under its instance name.
  Status Add(MetricSetPtr set);

  /// Remove by instance name; returns kNotFound if absent.
  Status Remove(std::string_view instance);

  /// Find by instance name; nullptr if absent.
  MetricSetPtr Find(std::string_view instance) const;

  /// All registered instance names, sorted (a stable `ldms_ls`).
  std::vector<std::string> List() const;

  std::size_t size() const;

  /// Sum of total_size() over all sets (footprint accounting).
  std::size_t TotalBytes() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, MetricSetPtr> sets_;
};

}  // namespace ldmsxx
