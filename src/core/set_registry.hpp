// Per-daemon directory of metric sets keyed by instance name. Transport
// listeners resolve lookup requests against this; sampler plugins register
// the sets they create (the "set directory" a real ldmsd exposes via
// ldms_ls).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/metric_set.hpp"
#include "util/status.hpp"

namespace ldmsxx {

/// Thread-safe name -> set map.
class SetRegistry {
 public:
  /// Register @p set under its instance name.
  Status Add(MetricSetPtr set);

  /// Remove by instance name; returns kNotFound if absent.
  Status Remove(std::string_view instance);

  /// Find by instance name; nullptr if absent.
  MetricSetPtr Find(std::string_view instance) const;

  /// All registered instance names, sorted (a stable `ldms_ls`).
  std::vector<std::string> List() const;

  std::size_t size() const;

  /// Sum of total_size() over all sets (footprint accounting).
  std::size_t TotalBytes() const;

  /// Compact handle for @p instance, assigned on first request and stable
  /// while the set stays registered. Handles are monotonic and never reused,
  /// so a handle held across Remove/Add resolves to nothing rather than to a
  /// different set. Returns 0xffffffff (kInvalidSetHandle) if the instance is
  /// not registered.
  std::uint32_t HandleFor(std::string_view instance);

  /// Resolve a handle back to its set; nullptr for unknown/stale handles.
  MetricSetPtr FindByHandle(std::uint32_t handle) const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, MetricSetPtr> sets_;
  std::unordered_map<std::string, std::uint32_t> handle_by_name_;
  std::unordered_map<std::uint32_t, std::string> name_by_handle_;
  std::uint32_t next_handle_ = 1;
};

}  // namespace ldmsxx
