#include "core/metric_set.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "core/wire.hpp"

namespace ldmsxx {
namespace {

/// FNV-1a over the serialized metadata with the MGN field zeroed, reduced to
/// 32 bits. Content addressing means a restarted sampler with an unchanged
/// schema presents the same MGN, so aggregators keep their mirrors.
std::uint32_t HashMetadata(std::span<const std::byte> bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ull;
  }
  std::uint32_t folded = static_cast<std::uint32_t>(h ^ (h >> 32));
  return folded == 0 ? 1 : folded;  // 0 is reserved for "unset"
}

constexpr std::size_t kMgnFieldOffset = 4;  // after magic

// Per-metric name field width in the serialized metadata. Fixed-width, like
// the C implementation's metric descriptors — this is what puts the paper's
// set sizes at ~124 B/metric (24 kB for the 194-metric Blue Waters set) and
// the data chunk at "roughly 10%" of the set.
constexpr std::size_t kNameFieldWidth = 80;

void WriteFixedName(ByteWriter& w, const std::string& name) {
  const auto len =
      static_cast<std::uint16_t>(std::min(name.size(), kNameFieldWidth - 2));
  w.U16(len);
  w.Raw(name.data(), len);
  static const char kZeros[kNameFieldWidth] = {};
  w.Raw(kZeros, kNameFieldWidth - 2 - len);
}

std::string ReadFixedName(ByteReader& r) {
  std::string field(kNameFieldWidth - 2, '\0');
  const std::uint16_t len = r.U16();
  if (len > kNameFieldWidth - 2) return {};
  for (auto& c : field) c = static_cast<char>(r.U8());
  field.resize(len);
  return field;
}

}  // namespace

MetricSet::MetricSet(MemPoolPtr mem, Schema schema, std::string instance,
                     std::string producer, std::uint64_t component_id)
    : mem_(std::move(mem)),
      schema_(std::move(schema)),
      instance_(std::move(instance)),
      producer_(std::move(producer)),
      component_id_(component_id) {}

MetricSet::~MetricSet() {
  mem_->Free(meta_);
  mem_->Free(data_);
}

std::vector<std::byte> MetricSet::SerializeMetadata(
    const Schema& schema, const std::string& instance,
    const std::string& producer, std::uint64_t component_id) {
  ByteWriter w;
  w.U32(kMetaMagic);
  w.U32(0);  // MGN patched below
  w.U32(static_cast<std::uint32_t>(schema.metric_count()));
  w.U32(static_cast<std::uint32_t>(sizeof(DataHeader)) +
        schema.value_area_size());
  w.U64(component_id);
  w.Str(instance);
  w.Str(producer);
  w.Str(schema.name());
  for (std::size_t i = 0; i < schema.metric_count(); ++i) {
    const MetricDef& def = schema.metric(i);
    w.U8(static_cast<std::uint8_t>(def.type));
    w.U64(def.component_id);
    w.U32(def.data_offset);
    WriteFixedName(w, def.name);
  }
  auto bytes = w.Take();
  const std::uint32_t mgn = HashMetadata(bytes);
  std::memcpy(bytes.data() + kMgnFieldOffset, &mgn, sizeof mgn);
  return bytes;
}

Status MetricSet::AllocateChunks(std::span<const std::byte> serialized_meta) {
  meta_size_ = serialized_meta.size();
  data_size_ = sizeof(DataHeader) + schema_.value_area_size();
  meta_ = static_cast<std::byte*>(mem_->Allocate(meta_size_, 8));
  data_ = static_cast<std::byte*>(mem_->Allocate(data_size_, 8));
  if (meta_ == nullptr || data_ == nullptr) {
    mem_->Free(meta_);
    mem_->Free(data_);
    meta_ = data_ = nullptr;
    return {ErrorCode::kOutOfMemory,
            "set memory pool exhausted creating " + instance_};
  }
  std::memcpy(meta_, serialized_meta.data(), meta_size_);
  std::memset(data_, 0, data_size_);
  std::uint32_t mgn;
  std::memcpy(&mgn, meta_ + kMgnFieldOffset, sizeof mgn);
  auto* hdr = header();
  hdr->magic = kDataMagic;
  hdr->meta_gn = mgn;
  hdr->data_gn = 0;
  hdr->consistent = 0;
  return Status::Ok();
}

MetricSetPtr MetricSet::Create(MemManager& mem, const Schema& schema,
                               std::string instance, std::string producer,
                               std::uint64_t component_id, Status* status) {
  // Force layout computation before serializing offsets.
  (void)schema.value_area_size();
  auto meta_bytes =
      SerializeMetadata(schema, instance, producer, component_id);
  // shared_ptr with private ctor: wrap manually.
  MetricSetPtr set(new MetricSet(mem.pool(), schema, std::move(instance),
                                 std::move(producer), component_id));
  Status st = set->AllocateChunks(meta_bytes);
  if (status != nullptr) *status = st;
  if (!st.ok()) return nullptr;
  return set;
}

MetricSetPtr MetricSet::CreateMirror(MemManager& mem,
                                     std::span<const std::byte> metadata,
                                     Status* status) {
  ByteReader r(metadata);
  const std::uint32_t magic = r.U32();
  const std::uint32_t mgn = r.U32();
  const std::uint32_t card = r.U32();
  const std::uint32_t data_size = r.U32();
  const std::uint64_t component_id = r.U64();
  std::string instance = r.Str();
  std::string producer = r.Str();
  std::string schema_name = r.Str();
  if (!r.ok() || magic != kMetaMagic || mgn == 0) {
    if (status != nullptr)
      *status = {ErrorCode::kInvalidArgument, "malformed set metadata"};
    return nullptr;
  }
  Schema schema(schema_name);
  for (std::uint32_t i = 0; i < card; ++i) {
    const auto type = static_cast<MetricType>(r.U8());
    const std::uint64_t comp = r.U64();
    const std::uint32_t offset = r.U32();
    std::string name = ReadFixedName(r);
    if (!r.ok()) {
      if (status != nullptr)
        *status = {ErrorCode::kInvalidArgument, "truncated metric record"};
      return nullptr;
    }
    const std::size_t idx = schema.AddMetric(name, type, comp);
    (void)idx;
    (void)offset;  // recomputed deterministically below
  }
  // The layout algorithm is deterministic, so recomputed offsets match the
  // producer's; verify the data size as a cross-check.
  if (sizeof(DataHeader) + schema.value_area_size() != data_size) {
    if (status != nullptr)
      *status = {ErrorCode::kInvalidArgument, "metadata layout mismatch"};
    return nullptr;
  }
  MetricSetPtr set(new MetricSet(mem.pool(), std::move(schema),
                                 std::move(instance), std::move(producer),
                                 component_id));
  Status st = set->AllocateChunks(metadata);
  if (status != nullptr) *status = st;
  if (!st.ok()) return nullptr;
  return set;
}

std::uint32_t MetricSet::meta_gn() const { return header()->meta_gn; }

std::uint64_t MetricSet::data_gn() const {
  return std::atomic_ref<const std::uint64_t>(header()->data_gn)
      .load(std::memory_order_acquire);
}

bool MetricSet::consistent() const {
  return std::atomic_ref<const std::uint32_t>(header()->consistent)
             .load(std::memory_order_acquire) != 0;
}

TimeNs MetricSet::timestamp() const {
  const auto* hdr = header();
  return static_cast<TimeNs>(hdr->ts_sec) * kNsPerSec +
         static_cast<TimeNs>(hdr->ts_usec) * kNsPerUs;
}

void MetricSet::BeginTransaction() {
  auto* hdr = header();
  std::atomic_ref<std::uint32_t>(hdr->consistent)
      .store(0, std::memory_order_release);
  // Make the inconsistent mark visible before any value writes.
  std::atomic_thread_fence(std::memory_order_release);
}

void MetricSet::EndTransaction(TimeNs ts) {
  auto* hdr = header();
  hdr->ts_sec = static_cast<std::uint32_t>(ts / kNsPerSec);
  hdr->ts_usec = static_cast<std::uint32_t>((ts % kNsPerSec) / kNsPerUs);
  // Publish values before bumping the DGN and consistent flag.
  std::atomic_thread_fence(std::memory_order_release);
  std::atomic_ref<std::uint64_t>(hdr->data_gn)
      .fetch_add(1, std::memory_order_acq_rel);
  std::atomic_ref<std::uint32_t>(hdr->consistent)
      .store(1, std::memory_order_release);
}

void MetricSet::StoreScalar(std::size_t idx, const void* src) {
  const MetricDef& def = schema_.metric(idx);
  std::memcpy(value_area() + def.data_offset, src, MetricTypeSize(def.type));
}

void MetricSet::SetValue(std::size_t idx, const MetricValue& v) {
  const MetricDef& def = schema_.metric(idx);
  switch (def.type) {
    case MetricType::kU8: {
      auto x = static_cast<std::uint8_t>(v.v.u64);
      StoreScalar(idx, &x);
      break;
    }
    case MetricType::kS8: {
      auto x = static_cast<std::int8_t>(v.v.s64);
      StoreScalar(idx, &x);
      break;
    }
    case MetricType::kU16: {
      auto x = static_cast<std::uint16_t>(v.v.u64);
      StoreScalar(idx, &x);
      break;
    }
    case MetricType::kS16: {
      auto x = static_cast<std::int16_t>(v.v.s64);
      StoreScalar(idx, &x);
      break;
    }
    case MetricType::kU32: {
      auto x = static_cast<std::uint32_t>(v.v.u64);
      StoreScalar(idx, &x);
      break;
    }
    case MetricType::kS32: {
      auto x = static_cast<std::int32_t>(v.v.s64);
      StoreScalar(idx, &x);
      break;
    }
    case MetricType::kU64:
      StoreScalar(idx, &v.v.u64);
      break;
    case MetricType::kS64:
      StoreScalar(idx, &v.v.s64);
      break;
    case MetricType::kF32: {
      float x = v.type == MetricType::kF32 ? v.v.f32
                                           : static_cast<float>(v.AsDouble());
      StoreScalar(idx, &x);
      break;
    }
    case MetricType::kD64: {
      double x = v.AsDouble();
      StoreScalar(idx, &x);
      break;
    }
  }
}

std::uint64_t MetricSet::GetU64(std::size_t idx) const {
  const MetricDef& def = schema_.metric(idx);
  std::uint64_t v = 0;
  std::memcpy(&v, value_area() + def.data_offset, MetricTypeSize(def.type));
  return v;
}

std::int64_t MetricSet::GetS64(std::size_t idx) const {
  return GetValue(idx).v.s64;
}

double MetricSet::GetD64(std::size_t idx) const {
  const MetricDef& def = schema_.metric(idx);
  if (def.type == MetricType::kD64) {
    double v;
    std::memcpy(&v, value_area() + def.data_offset, sizeof v);
    return v;
  }
  return GetValue(idx).AsDouble();
}

MetricValue MetricSet::GetValue(std::size_t idx) const {
  const MetricDef& def = schema_.metric(idx);
  const std::byte* src = value_area() + def.data_offset;
  MetricValue out;
  out.type = def.type;
  switch (def.type) {
    case MetricType::kU8: {
      std::uint8_t x;
      std::memcpy(&x, src, 1);
      out.v.u64 = x;
      break;
    }
    case MetricType::kS8: {
      std::int8_t x;
      std::memcpy(&x, src, 1);
      out.v.s64 = x;
      break;
    }
    case MetricType::kU16: {
      std::uint16_t x;
      std::memcpy(&x, src, 2);
      out.v.u64 = x;
      break;
    }
    case MetricType::kS16: {
      std::int16_t x;
      std::memcpy(&x, src, 2);
      out.v.s64 = x;
      break;
    }
    case MetricType::kU32: {
      std::uint32_t x;
      std::memcpy(&x, src, 4);
      out.v.u64 = x;
      break;
    }
    case MetricType::kS32: {
      std::int32_t x;
      std::memcpy(&x, src, 4);
      out.v.s64 = x;
      break;
    }
    case MetricType::kU64:
      std::memcpy(&out.v.u64, src, 8);
      break;
    case MetricType::kS64:
      std::memcpy(&out.v.s64, src, 8);
      break;
    case MetricType::kF32:
      std::memcpy(&out.v.f32, src, 4);
      break;
    case MetricType::kD64:
      std::memcpy(&out.v.d64, src, 8);
      break;
  }
  return out;
}

Status MetricSet::SnapshotData(std::span<std::byte> out) const {
  if (out.size() < data_size_) {
    return {ErrorCode::kInvalidArgument, "snapshot buffer too small"};
  }
  const auto* hdr = header();
  for (int attempt = 0; attempt < 8; ++attempt) {
    const std::uint64_t gn_before =
        std::atomic_ref<const std::uint64_t>(hdr->data_gn)
            .load(std::memory_order_acquire);
    const bool consistent_before =
        std::atomic_ref<const std::uint32_t>(hdr->consistent)
            .load(std::memory_order_acquire) != 0;
    if (!consistent_before) continue;  // writer active; retry
    std::memcpy(out.data(), data_, data_size_);
    std::atomic_thread_fence(std::memory_order_acquire);
    const std::uint64_t gn_after =
        std::atomic_ref<const std::uint64_t>(hdr->data_gn)
            .load(std::memory_order_acquire);
    const bool consistent_after =
        std::atomic_ref<const std::uint32_t>(hdr->consistent)
            .load(std::memory_order_acquire) != 0;
    if (gn_before == gn_after && consistent_after) return Status::Ok();
  }
  return {ErrorCode::kInconsistent, "could not obtain stable snapshot"};
}

Status MetricSet::ApplyData(std::span<const std::byte> data) {
  if (data.size() != data_size_) {
    return {ErrorCode::kInvalidArgument, "data chunk size mismatch"};
  }
  DataHeader incoming;
  std::memcpy(&incoming, data.data(), sizeof incoming);
  if (incoming.magic != kDataMagic) {
    return {ErrorCode::kInvalidArgument, "bad data chunk magic"};
  }
  if (incoming.meta_gn != meta_gn()) {
    return {ErrorCode::kInvalidArgument, "metadata generation mismatch"};
  }
  if (incoming.consistent == 0) {
    return {ErrorCode::kInconsistent, "peer sample was torn"};
  }
  std::memcpy(data_, data.data(), data_size_);
  return Status::Ok();
}

}  // namespace ldmsxx
