#include "core/metric_set.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "core/wire.hpp"

namespace ldmsxx {
namespace {

/// FNV-1a over the serialized metadata with the MGN field zeroed, reduced to
/// 32 bits. Content addressing means a restarted sampler with an unchanged
/// schema presents the same MGN, so aggregators keep their mirrors.
std::uint32_t HashMetadata(std::span<const std::byte> bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ull;
  }
  std::uint32_t folded = static_cast<std::uint32_t>(h ^ (h >> 32));
  return folded == 0 ? 1 : folded;  // 0 is reserved for "unset"
}

constexpr std::size_t kMgnFieldOffset = 4;  // after magic

// Adjacent dirty extents closer than this many clean bytes are merged:
// shipping a few unchanged padding/neighbour bytes is cheaper than another
// 8-byte extent table entry (and keeps the gather loop cache-friendly).
constexpr std::uint32_t kDeltaMergeSlack = 16;

// Bounded seqlock retries, shared by SnapshotData and SnapshotDelta.
constexpr int kSnapshotAttempts = 8;

// Per-metric name field width in the serialized metadata. Fixed-width, like
// the C implementation's metric descriptors — this is what puts the paper's
// set sizes at ~124 B/metric (24 kB for the 194-metric Blue Waters set) and
// the data chunk at "roughly 10%" of the set.
constexpr std::size_t kNameFieldWidth = 80;

void WriteFixedName(ByteWriter& w, const std::string& name) {
  const auto len =
      static_cast<std::uint16_t>(std::min(name.size(), kNameFieldWidth - 2));
  w.U16(len);
  w.Raw(name.data(), len);
  static const char kZeros[kNameFieldWidth] = {};
  w.Raw(kZeros, kNameFieldWidth - 2 - len);
}

std::string ReadFixedName(ByteReader& r) {
  std::string field(kNameFieldWidth - 2, '\0');
  const std::uint16_t len = r.U16();
  if (len > kNameFieldWidth - 2) return {};
  for (auto& c : field) c = static_cast<char>(r.U8());
  field.resize(len);
  return field;
}

}  // namespace

MetricSet::MetricSet(MemPoolPtr mem, Schema schema, std::string instance,
                     std::string producer, std::uint64_t component_id)
    : mem_(std::move(mem)),
      schema_(std::move(schema)),
      instance_(std::move(instance)),
      producer_(std::move(producer)),
      component_id_(component_id) {}

MetricSet::~MetricSet() {
  mem_->Free(meta_);
  mem_->Free(data_);
}

std::vector<std::byte> MetricSet::SerializeMetadata(
    const Schema& schema, const std::string& instance,
    const std::string& producer, std::uint64_t component_id) {
  ByteWriter w;
  w.U32(kMetaMagic);
  w.U32(0);  // MGN patched below
  w.U32(static_cast<std::uint32_t>(schema.metric_count()));
  w.U32(static_cast<std::uint32_t>(sizeof(DataHeader)) +
        schema.value_area_size());
  w.U64(component_id);
  w.Str(instance);
  w.Str(producer);
  w.Str(schema.name());
  for (std::size_t i = 0; i < schema.metric_count(); ++i) {
    const MetricDef& def = schema.metric(i);
    w.U8(static_cast<std::uint8_t>(def.type));
    w.U64(def.component_id);
    w.U32(def.data_offset);
    WriteFixedName(w, def.name);
  }
  auto bytes = w.Take();
  const std::uint32_t mgn = HashMetadata(bytes);
  std::memcpy(bytes.data() + kMgnFieldOffset, &mgn, sizeof mgn);
  return bytes;
}

Status MetricSet::AllocateChunks(std::span<const std::byte> serialized_meta) {
  meta_size_ = serialized_meta.size();
  data_size_ = sizeof(DataHeader) + schema_.value_area_size();
  meta_ = static_cast<std::byte*>(mem_->Allocate(meta_size_, 8));
  data_ = static_cast<std::byte*>(mem_->Allocate(data_size_, 8));
  if (meta_ == nullptr || data_ == nullptr) {
    mem_->Free(meta_);
    mem_->Free(data_);
    meta_ = data_ = nullptr;
    return {ErrorCode::kOutOfMemory,
            "set memory pool exhausted creating " + instance_};
  }
  std::memcpy(meta_, serialized_meta.data(), meta_size_);
  std::memset(data_, 0, data_size_);
  const std::size_t metrics = schema_.metric_count();
  dirty_words_.assign((metrics + 63) / 64, 0);
  delta_extent_cap_ = static_cast<std::uint32_t>(metrics);
  if (metrics > 0) {
    delta_extents_ = std::make_unique<DeltaExtent[]>(metrics);
  }
  std::uint32_t mgn;
  std::memcpy(&mgn, meta_ + kMgnFieldOffset, sizeof mgn);
  auto* hdr = header();
  hdr->magic = kDataMagic;
  hdr->meta_gn = mgn;
  hdr->data_gn = 0;
  hdr->consistent = 0;
  return Status::Ok();
}

MetricSetPtr MetricSet::Create(MemManager& mem, const Schema& schema,
                               std::string instance, std::string producer,
                               std::uint64_t component_id, Status* status) {
  // Force layout computation before serializing offsets.
  (void)schema.value_area_size();
  auto meta_bytes =
      SerializeMetadata(schema, instance, producer, component_id);
  // shared_ptr with private ctor: wrap manually.
  MetricSetPtr set(new MetricSet(mem.pool(), schema, std::move(instance),
                                 std::move(producer), component_id));
  Status st = set->AllocateChunks(meta_bytes);
  if (status != nullptr) *status = st;
  if (!st.ok()) return nullptr;
  return set;
}

MetricSetPtr MetricSet::CreateMirror(MemManager& mem,
                                     std::span<const std::byte> metadata,
                                     Status* status) {
  ByteReader r(metadata);
  const std::uint32_t magic = r.U32();
  const std::uint32_t mgn = r.U32();
  const std::uint32_t card = r.U32();
  const std::uint32_t data_size = r.U32();
  const std::uint64_t component_id = r.U64();
  std::string instance = r.Str();
  std::string producer = r.Str();
  std::string schema_name = r.Str();
  if (!r.ok() || magic != kMetaMagic || mgn == 0) {
    if (status != nullptr)
      *status = {ErrorCode::kInvalidArgument, "malformed set metadata"};
    return nullptr;
  }
  Schema schema(schema_name);
  for (std::uint32_t i = 0; i < card; ++i) {
    const auto type = static_cast<MetricType>(r.U8());
    const std::uint64_t comp = r.U64();
    const std::uint32_t offset = r.U32();
    std::string name = ReadFixedName(r);
    if (!r.ok()) {
      if (status != nullptr)
        *status = {ErrorCode::kInvalidArgument, "truncated metric record"};
      return nullptr;
    }
    const std::size_t idx = schema.AddMetric(name, type, comp);
    (void)idx;
    (void)offset;  // recomputed deterministically below
  }
  // The layout algorithm is deterministic, so recomputed offsets match the
  // producer's; verify the data size as a cross-check.
  if (sizeof(DataHeader) + schema.value_area_size() != data_size) {
    if (status != nullptr)
      *status = {ErrorCode::kInvalidArgument, "metadata layout mismatch"};
    return nullptr;
  }
  MetricSetPtr set(new MetricSet(mem.pool(), std::move(schema),
                                 std::move(instance), std::move(producer),
                                 component_id));
  Status st = set->AllocateChunks(metadata);
  if (status != nullptr) *status = st;
  if (!st.ok()) return nullptr;
  return set;
}

std::uint32_t MetricSet::meta_gn() const { return header()->meta_gn; }

std::uint64_t MetricSet::data_gn() const {
  return std::atomic_ref<const std::uint64_t>(header()->data_gn)
      .load(std::memory_order_acquire);
}

bool MetricSet::consistent() const {
  return std::atomic_ref<const std::uint32_t>(header()->consistent)
             .load(std::memory_order_acquire) != 0;
}

TimeNs MetricSet::timestamp() const {
  const auto* hdr = header();
  return static_cast<TimeNs>(hdr->ts_sec) * kNsPerSec +
         static_cast<TimeNs>(hdr->ts_usec) * kNsPerUs;
}

void MetricSet::BeginTransaction() {
  auto* hdr = header();
  std::atomic_ref<std::uint32_t>(hdr->consistent)
      .store(0, std::memory_order_release);
  // Make the inconsistent mark visible before any value writes.
  std::atomic_thread_fence(std::memory_order_release);
  // Start recording this transaction's change set.
  std::fill(dirty_words_.begin(), dirty_words_.end(), 0);
}

void MetricSet::CompileDirtyExtents(std::uint64_t base_dgn) {
  std::uint32_t count = 0;
  const std::size_t metrics = schema_.metric_count();
  // Layout assigns offsets in index order, so scanning by index walks the
  // value area monotonically and extents come out sorted.
  for (std::size_t i = 0; i < metrics; ++i) {
    if ((dirty_words_[i >> 6] & (1ull << (i & 63))) == 0) continue;
    const MetricDef& def = schema_.metric(i);
    const std::uint32_t off = def.data_offset;
    const auto len = static_cast<std::uint32_t>(MetricTypeSize(def.type));
    if (count > 0) {
      DeltaExtent& last = delta_extents_[count - 1];
      if (off <= last.offset + last.len + kDeltaMergeSlack) {
        last.len = std::max(last.len, off + len - last.offset);
        continue;
      }
    }
    delta_extents_[count] = {off, len};
    ++count;
  }
  delta_extent_count_ = count;
  delta_base_dgn_ = base_dgn;
}

void MetricSet::EndTransaction(TimeNs ts) {
  auto* hdr = header();
  hdr->ts_sec = static_cast<std::uint32_t>(ts / kNsPerSec);
  hdr->ts_usec = static_cast<std::uint32_t>((ts % kNsPerSec) / kNsPerUs);
  // Compile the change set while still inside the transaction window, so a
  // seqlock reader can never observe a half-written extent table as valid.
  CompileDirtyExtents(std::atomic_ref<const std::uint64_t>(hdr->data_gn)
                          .load(std::memory_order_relaxed));
  // Publish values before bumping the DGN and consistent flag.
  std::atomic_thread_fence(std::memory_order_release);
  std::atomic_ref<std::uint64_t>(hdr->data_gn)
      .fetch_add(1, std::memory_order_acq_rel);
  std::atomic_ref<std::uint32_t>(hdr->consistent)
      .store(1, std::memory_order_release);
}

void MetricSet::StoreScalar(std::size_t idx, const void* src) {
  const MetricDef& def = schema_.metric(idx);
  std::memcpy(value_area() + def.data_offset, src, MetricTypeSize(def.type));
  MarkDirty(idx);
}

void MetricSet::SetValue(std::size_t idx, const MetricValue& v) {
  const MetricDef& def = schema_.metric(idx);
  switch (def.type) {
    case MetricType::kU8: {
      auto x = static_cast<std::uint8_t>(v.v.u64);
      StoreScalar(idx, &x);
      break;
    }
    case MetricType::kS8: {
      auto x = static_cast<std::int8_t>(v.v.s64);
      StoreScalar(idx, &x);
      break;
    }
    case MetricType::kU16: {
      auto x = static_cast<std::uint16_t>(v.v.u64);
      StoreScalar(idx, &x);
      break;
    }
    case MetricType::kS16: {
      auto x = static_cast<std::int16_t>(v.v.s64);
      StoreScalar(idx, &x);
      break;
    }
    case MetricType::kU32: {
      auto x = static_cast<std::uint32_t>(v.v.u64);
      StoreScalar(idx, &x);
      break;
    }
    case MetricType::kS32: {
      auto x = static_cast<std::int32_t>(v.v.s64);
      StoreScalar(idx, &x);
      break;
    }
    case MetricType::kU64:
      StoreScalar(idx, &v.v.u64);
      break;
    case MetricType::kS64:
      StoreScalar(idx, &v.v.s64);
      break;
    case MetricType::kF32: {
      float x = v.type == MetricType::kF32 ? v.v.f32
                                           : static_cast<float>(v.AsDouble());
      StoreScalar(idx, &x);
      break;
    }
    case MetricType::kD64: {
      double x = v.AsDouble();
      StoreScalar(idx, &x);
      break;
    }
  }
}

std::uint64_t MetricSet::GetU64(std::size_t idx) const {
  const MetricDef& def = schema_.metric(idx);
  std::uint64_t v = 0;
  std::memcpy(&v, value_area() + def.data_offset, MetricTypeSize(def.type));
  return v;
}

std::int64_t MetricSet::GetS64(std::size_t idx) const {
  return GetValue(idx).v.s64;
}

double MetricSet::GetD64(std::size_t idx) const {
  const MetricDef& def = schema_.metric(idx);
  if (def.type == MetricType::kD64) {
    double v;
    std::memcpy(&v, value_area() + def.data_offset, sizeof v);
    return v;
  }
  return GetValue(idx).AsDouble();
}

MetricValue MetricSet::GetValue(std::size_t idx) const {
  const MetricDef& def = schema_.metric(idx);
  const std::byte* src = value_area() + def.data_offset;
  MetricValue out;
  out.type = def.type;
  switch (def.type) {
    case MetricType::kU8: {
      std::uint8_t x;
      std::memcpy(&x, src, 1);
      out.v.u64 = x;
      break;
    }
    case MetricType::kS8: {
      std::int8_t x;
      std::memcpy(&x, src, 1);
      out.v.s64 = x;
      break;
    }
    case MetricType::kU16: {
      std::uint16_t x;
      std::memcpy(&x, src, 2);
      out.v.u64 = x;
      break;
    }
    case MetricType::kS16: {
      std::int16_t x;
      std::memcpy(&x, src, 2);
      out.v.s64 = x;
      break;
    }
    case MetricType::kU32: {
      std::uint32_t x;
      std::memcpy(&x, src, 4);
      out.v.u64 = x;
      break;
    }
    case MetricType::kS32: {
      std::int32_t x;
      std::memcpy(&x, src, 4);
      out.v.s64 = x;
      break;
    }
    case MetricType::kU64:
      std::memcpy(&out.v.u64, src, 8);
      break;
    case MetricType::kS64:
      std::memcpy(&out.v.s64, src, 8);
      break;
    case MetricType::kF32:
      std::memcpy(&out.v.f32, src, 4);
      break;
    case MetricType::kD64:
      std::memcpy(&out.v.d64, src, 8);
      break;
  }
  return out;
}

Status MetricSet::SnapshotData(std::span<std::byte> out) const {
  if (out.size() < data_size_) {
    return {ErrorCode::kInvalidArgument, "snapshot buffer too small"};
  }
  const auto* hdr = header();
  for (int attempt = 0; attempt < kSnapshotAttempts; ++attempt) {
    if (attempt > 0) snapshot_retries_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t gn_before =
        std::atomic_ref<const std::uint64_t>(hdr->data_gn)
            .load(std::memory_order_acquire);
    const bool consistent_before =
        std::atomic_ref<const std::uint32_t>(hdr->consistent)
            .load(std::memory_order_acquire) != 0;
    if (!consistent_before) continue;  // writer active; retry
    std::memcpy(out.data(), data_, data_size_);
    std::atomic_thread_fence(std::memory_order_acquire);
    const std::uint64_t gn_after =
        std::atomic_ref<const std::uint64_t>(hdr->data_gn)
            .load(std::memory_order_acquire);
    const bool consistent_after =
        std::atomic_ref<const std::uint32_t>(hdr->consistent)
            .load(std::memory_order_acquire) != 0;
    if (gn_before == gn_after && consistent_after) return Status::Ok();
  }
  snapshot_starved_.fetch_add(1, std::memory_order_relaxed);
  return {ErrorCode::kInconsistent, "could not obtain stable snapshot"};
}

Status MetricSet::SnapshotDelta(std::uint64_t base_dgn, ByteWriter& w) const {
  const auto* hdr = header();
  const std::size_t rollback = w.size();
  const std::size_t value_size = data_size_ - sizeof(DataHeader);
  for (int attempt = 0; attempt < kSnapshotAttempts; ++attempt) {
    if (attempt > 0) snapshot_retries_.fetch_add(1, std::memory_order_relaxed);
    w.Truncate(rollback);
    const std::uint64_t gn_before =
        std::atomic_ref<const std::uint64_t>(hdr->data_gn)
            .load(std::memory_order_acquire);
    const bool consistent_before =
        std::atomic_ref<const std::uint32_t>(hdr->consistent)
            .load(std::memory_order_acquire) != 0;
    if (!consistent_before) continue;  // writer active; retry
    // Plain reads of the delta bookkeeping. A torn read either fails the
    // checks below (downgrading to "no delta", which is always safe — the
    // caller ships a full chunk) or is caught by the gn re-check at the end.
    const std::uint64_t delta_base = delta_base_dgn_;
    const std::uint32_t count = delta_extent_count_;
    if (delta_base != base_dgn || gn_before != base_dgn + 1 ||
        count > delta_extent_cap_ || count > 0xffff) {
      return {ErrorCode::kNotFound, "no delta for base dgn"};
    }
    w.U32(hdr->meta_gn);
    w.U64(base_dgn);
    w.U64(gn_before);
    w.U32(hdr->ts_sec);
    w.U32(hdr->ts_usec);
    w.U16(static_cast<std::uint16_t>(count));
    const std::size_t table_bytes = static_cast<std::size_t>(count) * 8;
    const std::size_t table_off = w.Extend(table_bytes);
    if (count > 0) {
      std::memcpy(w.MutableSpan(table_off, table_bytes).data(),
                  delta_extents_.get(), table_bytes);
    }
    // Validate the private copy of the table just written into the frame
    // (the live table may still be racing): monotonic, non-overlapping,
    // inside the value area. Any violation means a torn read — retry.
    std::size_t total = 0;
    std::uint64_t prev_end = 0;
    bool valid = true;
    for (std::uint32_t i = 0; i < count; ++i) {
      DeltaExtent e;
      std::memcpy(&e, w.buffer().data() + table_off + i * 8, sizeof e);
      const std::uint64_t end =
          static_cast<std::uint64_t>(e.offset) + e.len;
      if (e.len == 0 || e.offset < prev_end || end > value_size) {
        valid = false;
        break;
      }
      prev_end = end;
      total += e.len;
    }
    if (!valid) continue;
    // Size gate: a delta no smaller than the full chunk is pointless.
    if (kDeltaPayloadHeaderSize + table_bytes + total >= data_size_) {
      w.Truncate(rollback);
      return {ErrorCode::kNotFound, "delta not smaller than chunk"};
    }
    const std::size_t values_off = w.Extend(total);
    auto dst = w.MutableSpan(values_off, total);
    std::size_t o = 0;
    for (std::uint32_t i = 0; i < count; ++i) {
      DeltaExtent e;
      std::memcpy(&e, w.buffer().data() + table_off + i * 8, sizeof e);
      std::memcpy(dst.data() + o, value_area() + e.offset, e.len);
      o += e.len;
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    const std::uint64_t gn_after =
        std::atomic_ref<const std::uint64_t>(hdr->data_gn)
            .load(std::memory_order_acquire);
    const bool consistent_after =
        std::atomic_ref<const std::uint32_t>(hdr->consistent)
            .load(std::memory_order_acquire) != 0;
    if (gn_before == gn_after && consistent_after) return Status::Ok();
  }
  w.Truncate(rollback);
  snapshot_starved_.fetch_add(1, std::memory_order_relaxed);
  return {ErrorCode::kInconsistent, "could not obtain stable delta snapshot"};
}

bool MetricSet::ValidateDeltaPayload(std::span<const std::byte> payload) {
  ByteReader r(payload);
  r.U32();  // meta_gn: schema-aware checks happen in ApplyDelta
  const std::uint64_t base_dgn = r.U64();
  const std::uint64_t new_dgn = r.U64();
  r.U32();  // ts_sec
  r.U32();  // ts_usec
  const std::uint32_t count = r.U16();
  if (!r.ok() || new_dgn <= base_dgn) return false;
  // Each extent costs 8 table bytes and at least 1 value byte.
  if (static_cast<std::size_t>(count) > r.remaining() / 8) return false;
  std::uint64_t prev_end = 0;
  std::uint64_t total = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t off = r.U32();
    const std::uint32_t len = r.U32();
    if (!r.ok() || len == 0 || off < prev_end) return false;
    prev_end = static_cast<std::uint64_t>(off) + len;
    total += len;
  }
  return r.ok() && r.remaining() == total;
}

Status MetricSet::ApplyDelta(std::span<const std::byte> payload) {
  if (!ValidateDeltaPayload(payload)) {
    return {ErrorCode::kInvalidArgument, "malformed delta payload"};
  }
  ByteReader r(payload);
  const std::uint32_t mgn = r.U32();
  const std::uint64_t base_dgn = r.U64();
  const std::uint64_t new_dgn = r.U64();
  const std::uint32_t ts_sec = r.U32();
  const std::uint32_t ts_usec = r.U32();
  const std::uint32_t count = r.U16();
  if (mgn != meta_gn()) {
    return {ErrorCode::kInvalidArgument, "metadata generation mismatch"};
  }
  // No delta chains: the delta must extend exactly the state this chunk
  // holds. A gap (missed cycle) or a previously torn apply forces the
  // caller back to a full chunk.
  if (base_dgn != data_gn() || !consistent()) {
    return {ErrorCode::kInconsistent, "delta base does not match mirror dgn"};
  }
  if (count > delta_extent_cap_) {
    return {ErrorCode::kInvalidArgument, "delta extent count exceeds schema"};
  }
  const std::size_t value_size = data_size_ - sizeof(DataHeader);
  const std::size_t table_bytes = static_cast<std::size_t>(count) * 8;
  // Bounds pass before touching the chunk: every extent inside the value
  // area. (Monotonicity/overlap already established by the validator.)
  {
    ByteReader t(payload.subspan(kDeltaPayloadHeaderSize, table_bytes));
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::uint32_t off = t.U32();
      const std::uint32_t len = t.U32();
      if (static_cast<std::uint64_t>(off) + len > value_size) {
        return {ErrorCode::kInvalidArgument, "delta extent out of bounds"};
      }
    }
  }
  // Apply under the writer-side seqlock discipline so a local reader (e.g.
  // this mirror being re-served to a second-level aggregator) never sees a
  // half-applied delta as consistent.
  auto* hdr = header();
  std::atomic_ref<std::uint32_t>(hdr->consistent)
      .store(0, std::memory_order_release);
  std::atomic_thread_fence(std::memory_order_release);
  ByteReader t(payload.subspan(kDeltaPayloadHeaderSize, table_bytes));
  const std::byte* src = payload.data() + kDeltaPayloadHeaderSize + table_bytes;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t off = t.U32();
    const std::uint32_t len = t.U32();
    std::memcpy(value_area() + off, src, len);
    delta_extents_[i] = {off, len};
    src += len;
  }
  hdr->ts_sec = ts_sec;
  hdr->ts_usec = ts_usec;
  delta_extent_count_ = count;
  delta_base_dgn_ = base_dgn;
  std::atomic_thread_fence(std::memory_order_release);
  std::atomic_ref<std::uint64_t>(hdr->data_gn)
      .store(new_dgn, std::memory_order_release);
  std::atomic_ref<std::uint32_t>(hdr->consistent)
      .store(1, std::memory_order_release);
  return Status::Ok();
}

Status MetricSet::ApplyData(std::span<const std::byte> data) {
  if (data.size() != data_size_) {
    return {ErrorCode::kInvalidArgument, "data chunk size mismatch"};
  }
  DataHeader incoming;
  std::memcpy(&incoming, data.data(), sizeof incoming);
  if (incoming.magic != kDataMagic) {
    return {ErrorCode::kInvalidArgument, "bad data chunk magic"};
  }
  if (incoming.meta_gn != meta_gn()) {
    return {ErrorCode::kInvalidArgument, "metadata generation mismatch"};
  }
  if (incoming.consistent == 0) {
    return {ErrorCode::kInconsistent, "peer sample was torn"};
  }
  // A full chunk carries no per-metric change information, so this set can
  // no longer serve deltas until the next delta apply (or transaction).
  delta_base_dgn_ = kNoDeltaBase;
  delta_extent_count_ = 0;
  std::memcpy(data_, data.data(), data_size_);
  return Status::Ok();
}

}  // namespace ldmsxx
