#include "core/mem_manager.hpp"

#include <cassert>
#include <cstring>

namespace ldmsxx {

// Every block (free or allocated) starts with a header. Free blocks form an
// address-ordered implicit list: we walk headers by size, which makes
// coalescing adjacent free blocks trivial.
struct MemPool::BlockHeader {
  std::size_t size;  // payload size, excluding header
  bool free;
  std::uint32_t magic;  // guards double-free / stray pointers
};

namespace {
constexpr std::uint32_t kBlockMagic = 0x4c444d53;  // "LDMS"
constexpr std::size_t kRawHeaderSize = sizeof(std::size_t) + sizeof(bool) +
                                       sizeof(std::uint32_t);
constexpr std::size_t kHeaderSize = (kRawHeaderSize + 15) / 16 * 16;

std::size_t RoundUp(std::size_t v, std::size_t align) {
  return (v + align - 1) / align * align;
}
}  // namespace

static_assert(kHeaderSize == 16);

MemPool::MemPool(std::size_t pool_size)
    : pool_size_(RoundUp(pool_size, 16)),
      pool_(new std::byte[pool_size_]) {
  static_assert(sizeof(BlockHeader) <= kHeaderSize);
  auto* first = reinterpret_cast<BlockHeader*>(pool_.get());
  first->size = pool_size_ - kHeaderSize;
  first->free = true;
  first->magic = kBlockMagic;
}

MemPool::~MemPool() = default;

void* MemPool::Allocate(std::size_t size, std::size_t align) {
  assert(align > 0 && (align & (align - 1)) == 0 && align <= 64);
  // Headers are 16-byte aligned, so payloads are too; larger alignments are
  // satisfied by padding the request.
  std::size_t need = RoundUp(size, 16);
  if (align > 16) need = RoundUp(need + align, 16);

  std::lock_guard<std::mutex> lock(mu_);
  std::byte* cursor = pool_.get();
  std::byte* pool_end = pool_.get() + pool_size_;
  while (cursor < pool_end) {
    auto* block = reinterpret_cast<BlockHeader*>(cursor);
    assert(block->magic == kBlockMagic);
    if (block->free && block->size >= need) {
      // Split when the remainder can hold another block.
      if (block->size >= need + kHeaderSize + 16) {
        auto* rest = reinterpret_cast<BlockHeader*>(cursor + kHeaderSize + need);
        rest->size = block->size - need - kHeaderSize;
        rest->free = true;
        rest->magic = kBlockMagic;
        block->size = need;
      }
      block->free = false;
      in_use_ += block->size + kHeaderSize;
      peak_in_use_ = std::max(peak_in_use_, in_use_);
      ++live_allocations_;
      void* payload = cursor + kHeaderSize;
      if (align > 16) {
        payload = reinterpret_cast<void*>(
            RoundUp(reinterpret_cast<std::uintptr_t>(payload), align));
      }
      return payload;
    }
    cursor += kHeaderSize + block->size;
  }
  return nullptr;
}

void MemPool::Free(void* ptr) {
  if (ptr == nullptr) return;
  assert(Contains(ptr));
  std::lock_guard<std::mutex> lock(mu_);
  // Find the owning block by walking the list: alignment padding means ptr
  // may not sit exactly at header+kHeaderSize, so locate the block whose
  // payload range contains ptr.
  std::byte* cursor = pool_.get();
  std::byte* pool_end = pool_.get() + pool_size_;
  auto* target = static_cast<std::byte*>(ptr);
  BlockHeader* owner = nullptr;
  while (cursor < pool_end) {
    auto* block = reinterpret_cast<BlockHeader*>(cursor);
    assert(block->magic == kBlockMagic);
    std::byte* payload = cursor + kHeaderSize;
    if (!block->free && target >= payload && target < payload + block->size) {
      owner = block;
      break;
    }
    cursor += kHeaderSize + block->size;
  }
  assert(owner != nullptr && "Free of pointer not allocated from this pool");
  if (owner == nullptr) return;
  owner->free = true;
  in_use_ -= owner->size + kHeaderSize;
  --live_allocations_;

  // Full coalescing pass over adjacent free blocks. Pool sizes are small
  // (megabytes) and Free is far off the sampling hot path, so O(n) is fine
  // and keeps the allocator easy to audit.
  cursor = pool_.get();
  while (cursor < pool_end) {
    auto* block = reinterpret_cast<BlockHeader*>(cursor);
    std::byte* next = cursor + kHeaderSize + block->size;
    while (block->free && next < pool_end) {
      auto* next_block = reinterpret_cast<BlockHeader*>(next);
      if (!next_block->free) break;
      block->size += kHeaderSize + next_block->size;
      next = cursor + kHeaderSize + block->size;
    }
    cursor = next;
  }
}

bool MemPool::Contains(const void* ptr) const {
  const auto* p = static_cast<const std::byte*>(ptr);
  return p >= pool_.get() && p < pool_.get() + pool_size_;
}

std::size_t MemPool::bytes_in_use() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_use_;
}

std::size_t MemPool::peak_bytes_in_use() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_in_use_;
}

std::size_t MemPool::allocation_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_allocations_;
}

}  // namespace ldmsxx
