#include "core/set_registry.hpp"

#include <algorithm>

namespace ldmsxx {

Status SetRegistry::Add(MetricSetPtr set) {
  if (set == nullptr) {
    return {ErrorCode::kInvalidArgument, "null set"};
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = sets_.emplace(set->instance_name(), std::move(set));
  if (!inserted) {
    return {ErrorCode::kAlreadyExists,
            "set already registered: " + it->first};
  }
  return Status::Ok();
}

Status SetRegistry::Remove(std::string_view instance) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sets_.find(std::string(instance));
  if (it == sets_.end()) {
    return {ErrorCode::kNotFound, "no such set: " + std::string(instance)};
  }
  auto hit = handle_by_name_.find(it->first);
  if (hit != handle_by_name_.end()) {
    name_by_handle_.erase(hit->second);
    handle_by_name_.erase(hit);
  }
  sets_.erase(it);
  return Status::Ok();
}

MetricSetPtr SetRegistry::Find(std::string_view instance) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sets_.find(std::string(instance));
  if (it == sets_.end()) return nullptr;
  return it->second;
}

std::vector<std::string> SetRegistry::List() const {
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(mu_);
    names.reserve(sets_.size());
    for (const auto& [name, set] : sets_) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::size_t SetRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sets_.size();
}

std::uint32_t SetRegistry::HandleFor(std::string_view instance) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string key(instance);
  if (sets_.find(key) == sets_.end()) return 0xffffffffu;
  auto it = handle_by_name_.find(key);
  if (it != handle_by_name_.end()) return it->second;
  const std::uint32_t h = next_handle_++;
  handle_by_name_.emplace(key, h);
  name_by_handle_.emplace(h, std::move(key));
  return h;
}

MetricSetPtr SetRegistry::FindByHandle(std::uint32_t handle) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = name_by_handle_.find(handle);
  if (it == name_by_handle_.end()) return nullptr;
  auto sit = sets_.find(it->second);
  if (sit == sets_.end()) return nullptr;
  return sit->second;
}

std::size_t SetRegistry::TotalBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t total = 0;
  for (const auto& [name, set] : sets_) total += set->total_size();
  return total;
}

}  // namespace ldmsxx
