// Custom memory manager for metric-set chunks (§IV-D: "A custom memory
// manager is employed to manage memory allocation"). Each ldmsd reserves a
// fixed pool at startup (the real ldmsd's -m flag); metric sets are carved
// out of it so the daemon's footprint is bounded and RDMA transports can
// register the whole pool once.
//
// Ownership: the allocator state (MemPool) is shared. Metric sets hold a
// reference to the pool they were carved from, so a set pinned by a remote
// RDMA endpoint keeps the pool alive even after its daemon is destroyed —
// exactly like registered memory outliving the registering process's
// bookkeeping would be a bug on real hardware, here the shared_ptr makes
// teardown order a non-issue.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>

#include "util/status.hpp"

namespace ldmsxx {

/// First-fit free-list allocator with coalescing over a single contiguous
/// region. Thread-safe. Usually used through MemManager.
class MemPool {
 public:
  explicit MemPool(std::size_t pool_size);
  ~MemPool();

  MemPool(const MemPool&) = delete;
  MemPool& operator=(const MemPool&) = delete;

  /// Allocate @p size bytes aligned to @p align (power of two, <= 64).
  /// Returns nullptr when the pool is exhausted.
  void* Allocate(std::size_t size, std::size_t align = 8);

  /// Return a block obtained from Allocate(). Null is a no-op.
  void Free(void* ptr);

  /// True when @p ptr lies inside the managed pool.
  bool Contains(const void* ptr) const;

  std::size_t pool_size() const { return pool_size_; }
  std::size_t bytes_in_use() const;
  std::size_t peak_bytes_in_use() const;
  std::size_t allocation_count() const;

 private:
  struct BlockHeader;

  std::size_t pool_size_;
  std::unique_ptr<std::byte[]> pool_;
  mutable std::mutex mu_;
  std::size_t in_use_ = 0;
  std::size_t peak_in_use_ = 0;
  std::size_t live_allocations_ = 0;
};

using MemPoolPtr = std::shared_ptr<MemPool>;

/// Handle a daemon owns; hands out the shared pool to metric sets.
class MemManager {
 public:
  /// @param pool_size bytes reserved for all metric sets of this daemon
  explicit MemManager(std::size_t pool_size)
      : pool_(std::make_shared<MemPool>(pool_size)) {}

  void* Allocate(std::size_t size, std::size_t align = 8) {
    return pool_->Allocate(size, align);
  }
  void Free(void* ptr) { pool_->Free(ptr); }
  bool Contains(const void* ptr) const { return pool_->Contains(ptr); }

  std::size_t pool_size() const { return pool_->pool_size(); }
  std::size_t bytes_in_use() const { return pool_->bytes_in_use(); }
  std::size_t peak_bytes_in_use() const { return pool_->peak_bytes_in_use(); }
  std::size_t allocation_count() const { return pool_->allocation_count(); }

  /// Shared handle for objects that must keep the pool alive (metric sets).
  const MemPoolPtr& pool() const { return pool_; }

 private:
  MemPoolPtr pool_;
};

}  // namespace ldmsxx
