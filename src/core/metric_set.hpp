// The metric set: LDMS's unit of collection. Two contiguous chunks live in
// the daemon's MemManager pool (§IV-B):
//
//   metadata chunk — serialized set/schema description plus a metadata
//     generation number (MGN); sent once per lookup.
//   data chunk — header {MGN copy, data generation number (DGN), timestamp,
//     consistent flag} followed by the packed metric values; this is the only
//     part pulled on each update (~10% of the set size, §IV-B).
//
// Writers use Begin/EndTransaction around a sampling pass; readers take
// seqlock-style snapshots so a torn concurrent read is detected, never
// silently stored (§IV-B "Storage").
#pragma once

#include <atomic>
#include <memory>
#include <span>
#include <string>

#include "core/mem_manager.hpp"
#include "core/schema.hpp"
#include "core/value.hpp"
#include "util/clock.hpp"
#include "util/status.hpp"

namespace ldmsxx {

class MetricSet;
using MetricSetPtr = std::shared_ptr<MetricSet>;

/// A metric set resident in a daemon's memory pool. Local sets are created
/// from a Schema by samplers; mirror sets are reconstructed on aggregators
/// from a peer's serialized metadata.
class MetricSet {
 public:
  /// Header prepended to the data chunk. Standard layout; data_gn is accessed
  /// through std::atomic_ref for the seqlock protocol.
  struct DataHeader {
    std::uint32_t magic;
    std::uint32_t meta_gn;
    std::uint64_t data_gn;
    std::uint32_t ts_sec;
    std::uint32_t ts_usec;
    std::uint32_t consistent;
    std::uint32_t reserved;
  };
  static_assert(sizeof(DataHeader) == 32);

  /// Create a local (writable) set.
  /// @param mem       pool the chunks are carved from
  /// @param schema    metric definitions (layout is finalized here; do not
  ///                  add metrics to @p schema afterwards)
  /// @param instance  set instance name, e.g. "nid00042/meminfo"
  /// @param producer  producer (host) name stored with the set
  /// @param component_id default component ID for metrics defined with 0
  /// Returns nullptr and sets @p status on pool exhaustion.
  static MetricSetPtr Create(MemManager& mem, const Schema& schema,
                             std::string instance, std::string producer,
                             std::uint64_t component_id, Status* status);

  /// Reconstruct a read-mostly mirror from serialized metadata received in a
  /// lookup reply. The mirror's data chunk is overwritten by ApplyData().
  static MetricSetPtr CreateMirror(MemManager& mem,
                                   std::span<const std::byte> metadata,
                                   Status* status);

  ~MetricSet();

  MetricSet(const MetricSet&) = delete;
  MetricSet& operator=(const MetricSet&) = delete;

  const Schema& schema() const { return schema_; }
  const std::string& instance_name() const { return instance_; }
  const std::string& producer_name() const { return producer_; }
  std::uint64_t component_id() const { return component_id_; }

  std::uint32_t meta_gn() const;
  std::uint64_t data_gn() const;
  bool consistent() const;
  /// Timestamp of the last completed transaction.
  TimeNs timestamp() const;

  std::size_t meta_size() const { return meta_size_; }
  std::size_t data_size() const { return data_size_; }
  /// Total pool bytes this set occupies.
  std::size_t total_size() const { return meta_size_ + data_size_; }

  // --- writer side (sampling plugins) ---------------------------------

  /// Mark the set inconsistent and open a write pass.
  void BeginTransaction();
  /// Stamp @p ts, bump the DGN, and mark the set consistent.
  void EndTransaction(TimeNs ts);

  void SetU64(std::size_t idx, std::uint64_t v) { StoreScalar(idx, &v); }
  void SetS64(std::size_t idx, std::int64_t v) { StoreScalar(idx, &v); }
  void SetD64(std::size_t idx, double v) { StoreScalar(idx, &v); }
  void SetU32(std::size_t idx, std::uint32_t v) { StoreScalar(idx, &v); }
  void SetValue(std::size_t idx, const MetricValue& v);

  // --- reader side ------------------------------------------------------

  std::uint64_t GetU64(std::size_t idx) const;
  std::int64_t GetS64(std::size_t idx) const;
  double GetD64(std::size_t idx) const;
  /// Type-erased read honoring the metric's declared type.
  MetricValue GetValue(std::size_t idx) const;

  /// Serialized metadata (the lookup-reply payload).
  std::span<const std::byte> metadata_bytes() const {
    return {meta_, meta_size_};
  }
  /// Raw data chunk (header + values). Reading this while a writer is active
  /// can tear; use SnapshotData() when consistency matters.
  std::span<const std::byte> data_bytes() const { return {data_, data_size_}; }

  /// Copy the data chunk into @p out with a seqlock retry loop. Fails with
  /// kInconsistent if a stable, consistent snapshot cannot be obtained in a
  /// bounded number of retries (writer continuously active).
  Status SnapshotData(std::span<std::byte> out) const;

  /// Overwrite this mirror's data chunk with @p data pulled from a peer.
  /// Rejects wrong-size chunks, MGN mismatches (kInvalidArgument), torn or
  /// stale payloads (kInconsistent) — the aggregator then skips the store and
  /// retries next interval, exactly the paper's behaviour.
  Status ApplyData(std::span<const std::byte> data);

  /// DGN value of the last ApplyData/EndTransaction the caller consumed;
  /// aggregator bookkeeping uses this to detect "no new sample".
  std::uint64_t last_consumed_gn() const {
    return last_consumed_gn_.load(std::memory_order_relaxed);
  }
  void set_last_consumed_gn(std::uint64_t gn) {
    last_consumed_gn_.store(gn, std::memory_order_relaxed);
  }

  static constexpr std::uint32_t kDataMagic = 0x4c444d44;  // "LDMD"
  static constexpr std::uint32_t kMetaMagic = 0x4c444d4d;  // "LDMM"

 private:
  MetricSet(MemPoolPtr mem, Schema schema, std::string instance,
            std::string producer, std::uint64_t component_id);

  Status AllocateChunks(std::span<const std::byte> serialized_meta);
  DataHeader* header() { return reinterpret_cast<DataHeader*>(data_); }
  const DataHeader* header() const {
    return reinterpret_cast<const DataHeader*>(data_);
  }
  std::byte* value_area() { return data_ + sizeof(DataHeader); }
  const std::byte* value_area() const { return data_ + sizeof(DataHeader); }

  void StoreScalar(std::size_t idx, const void* src);

  /// Serialize header+schema into metadata bytes; MGN is a content hash so
  /// identical schemas produce identical MGNs across restarts.
  static std::vector<std::byte> SerializeMetadata(
      const Schema& schema, const std::string& instance,
      const std::string& producer, std::uint64_t component_id);

  /// Shared: keeps the pool alive while this set (or a remote pin of it)
  /// exists, regardless of daemon teardown order.
  MemPoolPtr mem_;
  Schema schema_;
  std::string instance_;
  std::string producer_;
  std::uint64_t component_id_ = 0;

  std::byte* meta_ = nullptr;
  std::byte* data_ = nullptr;
  std::size_t meta_size_ = 0;
  std::size_t data_size_ = 0;

  std::atomic<std::uint64_t> last_consumed_gn_{0};
};

}  // namespace ldmsxx
