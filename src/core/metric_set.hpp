// The metric set: LDMS's unit of collection. Two contiguous chunks live in
// the daemon's MemManager pool (§IV-B):
//
//   metadata chunk — serialized set/schema description plus a metadata
//     generation number (MGN); sent once per lookup.
//   data chunk — header {MGN copy, data generation number (DGN), timestamp,
//     consistent flag} followed by the packed metric values; this is the only
//     part pulled on each update (~10% of the set size, §IV-B).
//
// Writers use Begin/EndTransaction around a sampling pass; readers take
// seqlock-style snapshots so a torn concurrent read is detected, never
// silently stored (§IV-B "Storage").
#pragma once

#include <atomic>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/mem_manager.hpp"
#include "core/schema.hpp"
#include "core/value.hpp"
#include "core/wire.hpp"
#include "util/clock.hpp"
#include "util/status.hpp"

namespace ldmsxx {

class MetricSet;
using MetricSetPtr = std::shared_ptr<MetricSet>;

/// A metric set resident in a daemon's memory pool. Local sets are created
/// from a Schema by samplers; mirror sets are reconstructed on aggregators
/// from a peer's serialized metadata.
class MetricSet {
 public:
  /// Header prepended to the data chunk. Standard layout; data_gn is accessed
  /// through std::atomic_ref for the seqlock protocol.
  struct DataHeader {
    std::uint32_t magic;
    std::uint32_t meta_gn;
    std::uint64_t data_gn;
    std::uint32_t ts_sec;
    std::uint32_t ts_usec;
    std::uint32_t consistent;
    std::uint32_t reserved;
  };
  static_assert(sizeof(DataHeader) == 32);

  /// Create a local (writable) set.
  /// @param mem       pool the chunks are carved from
  /// @param schema    metric definitions (layout is finalized here; do not
  ///                  add metrics to @p schema afterwards)
  /// @param instance  set instance name, e.g. "nid00042/meminfo"
  /// @param producer  producer (host) name stored with the set
  /// @param component_id default component ID for metrics defined with 0
  /// Returns nullptr and sets @p status on pool exhaustion.
  static MetricSetPtr Create(MemManager& mem, const Schema& schema,
                             std::string instance, std::string producer,
                             std::uint64_t component_id, Status* status);

  /// Reconstruct a read-mostly mirror from serialized metadata received in a
  /// lookup reply. The mirror's data chunk is overwritten by ApplyData().
  static MetricSetPtr CreateMirror(MemManager& mem,
                                   std::span<const std::byte> metadata,
                                   Status* status);

  ~MetricSet();

  MetricSet(const MetricSet&) = delete;
  MetricSet& operator=(const MetricSet&) = delete;

  const Schema& schema() const { return schema_; }
  const std::string& instance_name() const { return instance_; }
  const std::string& producer_name() const { return producer_; }
  std::uint64_t component_id() const { return component_id_; }

  std::uint32_t meta_gn() const;
  std::uint64_t data_gn() const;
  bool consistent() const;
  /// Timestamp of the last completed transaction.
  TimeNs timestamp() const;

  std::size_t meta_size() const { return meta_size_; }
  std::size_t data_size() const { return data_size_; }
  /// Total pool bytes this set occupies.
  std::size_t total_size() const { return meta_size_ + data_size_; }

  // --- writer side (sampling plugins) ---------------------------------

  /// Mark the set inconsistent and open a write pass.
  void BeginTransaction();
  /// Stamp @p ts, bump the DGN, and mark the set consistent.
  void EndTransaction(TimeNs ts);

  void SetU64(std::size_t idx, std::uint64_t v) { StoreScalar(idx, &v); }
  void SetS64(std::size_t idx, std::int64_t v) { StoreScalar(idx, &v); }
  void SetD64(std::size_t idx, double v) { StoreScalar(idx, &v); }
  void SetU32(std::size_t idx, std::uint32_t v) { StoreScalar(idx, &v); }
  void SetValue(std::size_t idx, const MetricValue& v);

  // --- reader side ------------------------------------------------------

  std::uint64_t GetU64(std::size_t idx) const;
  std::int64_t GetS64(std::size_t idx) const;
  double GetD64(std::size_t idx) const;
  /// Type-erased read honoring the metric's declared type.
  MetricValue GetValue(std::size_t idx) const;

  /// Serialized metadata (the lookup-reply payload).
  std::span<const std::byte> metadata_bytes() const {
    return {meta_, meta_size_};
  }
  /// Raw data chunk (header + values). Reading this while a writer is active
  /// can tear; use SnapshotData() when consistency matters.
  std::span<const std::byte> data_bytes() const { return {data_, data_size_}; }

  /// Copy the data chunk into @p out with a seqlock retry loop. Fails with
  /// kInconsistent if a stable, consistent snapshot cannot be obtained in a
  /// bounded number of retries (writer continuously active).
  Status SnapshotData(std::span<std::byte> out) const;

  /// Overwrite this mirror's data chunk with @p data pulled from a peer.
  /// Rejects wrong-size chunks, MGN mismatches (kInvalidArgument), torn or
  /// stale payloads (kInconsistent) — the aggregator then skips the store and
  /// retries next interval, exactly the paper's behaviour.
  Status ApplyData(std::span<const std::byte> data);

  // --- delta update path ------------------------------------------------
  //
  // A writer-side dirty bitmap (maintained by the Set* calls between
  // Begin/EndTransaction) is compiled at commit into run-length {offset,len}
  // extents over the value area. A reader that already holds the previous
  // DGN can then pull just the changed bytes. Payload layout (all LE):
  //
  //   u32 meta_gn | u64 base_dgn | u64 new_dgn | u32 ts_sec | u32 ts_usec |
  //   u16 extent_count | extent_count x (u32 offset, u32 len) |
  //   packed values (sum of extent lengths bytes)
  //
  // Extents are value-area-relative, strictly increasing, non-overlapping.
  // There are no delta chains: a delta is only offered for the exact
  // predecessor DGN, so a missed cycle forces a full chunk.

  /// One changed byte range in the value area. Matches the wire encoding.
  struct DeltaExtent {
    std::uint32_t offset;
    std::uint32_t len;
  };
  static_assert(sizeof(DeltaExtent) == 8);

  /// Bytes before the extent table in a delta payload.
  static constexpr std::size_t kDeltaPayloadHeaderSize = 4 + 8 + 8 + 4 + 4 + 2;

  /// Gather-encode a delta payload for a reader whose mirror holds
  /// @p base_dgn, appending to @p w (extent bytes go straight from the live
  /// chunk into the writer via Extend/MutableSpan — no staging buffer) under
  /// the same seqlock validation as SnapshotData. Returns kOk with the
  /// payload appended, kNotFound when no delta exists for that base or the
  /// delta would not be smaller than the full chunk (caller ships kData), or
  /// kInconsistent when the writer stayed active through every retry. On
  /// anything but kOk the writer is rolled back to its original size.
  Status SnapshotDelta(std::uint64_t base_dgn, ByteWriter& w) const;

  /// Apply a delta payload to this mirror's chunk. Validates structure
  /// (ValidateDeltaPayload), MGN, that base_dgn matches the chunk's current
  /// DGN with the chunk consistent (a torn or skipped apply forces a full
  /// chunk), and that every extent is inside the value area; then copies
  /// extent bytes straight from @p payload into the chunk and stamps the
  /// header. The applied extents are recorded so a second-level aggregator
  /// can be served deltas off this mirror.
  Status ApplyDelta(std::span<const std::byte> payload);

  /// Structural validation only (no schema knowledge): header present,
  /// extent table complete, extents strictly increasing and non-overlapping,
  /// new_dgn > base_dgn, and the value region exactly the sum of extent
  /// lengths. Transports use this to reject malformed frames early.
  static bool ValidateDeltaPayload(std::span<const std::byte> payload);

  /// Seqlock contention counters: retries = snapshot attempts that observed
  /// a concurrent writer and looped; starved = snapshot calls that exhausted
  /// every retry (kInconsistent against a continuously-active writer).
  std::uint64_t snapshot_retries() const {
    return snapshot_retries_.load(std::memory_order_relaxed);
  }
  std::uint64_t snapshot_starved() const {
    return snapshot_starved_.load(std::memory_order_relaxed);
  }

  /// DGN value of the last ApplyData/EndTransaction the caller consumed;
  /// aggregator bookkeeping uses this to detect "no new sample".
  std::uint64_t last_consumed_gn() const {
    return last_consumed_gn_.load(std::memory_order_relaxed);
  }
  void set_last_consumed_gn(std::uint64_t gn) {
    last_consumed_gn_.store(gn, std::memory_order_relaxed);
  }

  static constexpr std::uint32_t kDataMagic = 0x4c444d44;  // "LDMD"
  static constexpr std::uint32_t kMetaMagic = 0x4c444d4d;  // "LDMM"

 private:
  MetricSet(MemPoolPtr mem, Schema schema, std::string instance,
            std::string producer, std::uint64_t component_id);

  Status AllocateChunks(std::span<const std::byte> serialized_meta);
  DataHeader* header() { return reinterpret_cast<DataHeader*>(data_); }
  const DataHeader* header() const {
    return reinterpret_cast<const DataHeader*>(data_);
  }
  std::byte* value_area() { return data_ + sizeof(DataHeader); }
  const std::byte* value_area() const { return data_ + sizeof(DataHeader); }

  void StoreScalar(std::size_t idx, const void* src);

  void MarkDirty(std::size_t idx) {
    dirty_words_[idx >> 6] |= 1ull << (idx & 63);
  }
  /// Compile the dirty bitmap into delta_extents_ for the transaction
  /// committing at @p base_dgn -> base_dgn + 1. Writer-side only, called
  /// inside the transaction window (consistent == 0).
  void CompileDirtyExtents(std::uint64_t base_dgn);

  /// Serialize header+schema into metadata bytes; MGN is a content hash so
  /// identical schemas produce identical MGNs across restarts.
  static std::vector<std::byte> SerializeMetadata(
      const Schema& schema, const std::string& instance,
      const std::string& producer, std::uint64_t component_id);

  /// Shared: keeps the pool alive while this set (or a remote pin of it)
  /// exists, regardless of daemon teardown order.
  MemPoolPtr mem_;
  Schema schema_;
  std::string instance_;
  std::string producer_;
  std::uint64_t component_id_ = 0;

  std::byte* meta_ = nullptr;
  std::byte* data_ = nullptr;
  std::size_t meta_size_ = 0;
  std::size_t data_size_ = 0;

  std::atomic<std::uint64_t> last_consumed_gn_{0};

  /// Sentinel for "no delta information" (fresh set, or after a full-chunk
  /// ApplyData which loses per-metric change knowledge).
  static constexpr std::uint64_t kNoDeltaBase = ~0ull;

  /// One bit per metric, set by the Set* writers, cleared at
  /// BeginTransaction. Only meaningful between Begin and EndTransaction.
  std::vector<std::uint64_t> dirty_words_;
  /// Compiled extents for the last committed transaction (or last applied
  /// delta, on mirrors). Fixed capacity = metric count, allocated once, so a
  /// concurrent seqlock-validated reader never races a reallocation.
  std::unique_ptr<DeltaExtent[]> delta_extents_;
  std::uint32_t delta_extent_cap_ = 0;
  std::uint32_t delta_extent_count_ = 0;
  std::uint64_t delta_base_dgn_ = kNoDeltaBase;

  mutable std::atomic<std::uint64_t> snapshot_retries_{0};
  mutable std::atomic<std::uint64_t> snapshot_starved_{0};
};

}  // namespace ldmsxx
