// Byte-buffer writer/reader for the serialized metadata chunk and the
// transport wire protocol. Little-endian host order: LDMS peers in one
// deployment share architecture (and we only target x86-64/ARM64 LE), the
// same assumption the C implementation makes for its binary sets.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ldmsxx {

/// Append-only binary writer.
class ByteWriter {
 public:
  ByteWriter() = default;
  /// Adopt @p buf as the backing store (cleared but capacity kept), so hot
  /// paths can reuse one arena across frames instead of allocating per frame.
  explicit ByteWriter(std::vector<std::byte> buf) : buf_(std::move(buf)) {
    buf_.clear();
  }

  void U8(std::uint8_t v) { Raw(&v, 1); }
  void U16(std::uint16_t v) { Raw(&v, 2); }
  void U32(std::uint32_t v) { Raw(&v, 4); }
  void U64(std::uint64_t v) { Raw(&v, 8); }
  void D64(double v) { Raw(&v, 8); }

  /// Length-prefixed (u16) string.
  void Str(std::string_view s) {
    U16(static_cast<std::uint16_t>(s.size()));
    Raw(s.data(), s.size());
  }

  void Bytes(std::span<const std::byte> data) {
    U32(static_cast<std::uint32_t>(data.size()));
    Raw(data.data(), data.size());
  }

  void Raw(const void* data, std::size_t size) {
    const auto* p = static_cast<const std::byte*>(data);
    buf_.insert(buf_.end(), p, p + size);
  }

  const std::vector<std::byte>& buffer() const { return buf_; }
  std::vector<std::byte> Take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

  /// Overwrite 4 bytes at @p offset (for back-patched length fields).
  void PatchU32(std::size_t offset, std::uint32_t v) {
    std::memcpy(buf_.data() + offset, &v, 4);
  }

  /// Grow the buffer by @p n uninitialized-ish bytes and return the offset of
  /// the new region. Lets callers snapshot data straight into the frame
  /// (gather-encode) instead of staging it in a temporary vector.
  std::size_t Extend(std::size_t n) {
    const std::size_t off = buf_.size();
    buf_.resize(off + n);
    return off;
  }

  /// Writable view of a previously Extend()ed region.
  std::span<std::byte> MutableSpan(std::size_t offset, std::size_t n) {
    return {buf_.data() + offset, n};
  }

  /// Roll the buffer back to @p size (undo a partially written entry).
  void Truncate(std::size_t size) { buf_.resize(size); }

 private:
  std::vector<std::byte> buf_;
};

/// Sequential binary reader over a borrowed span. Out-of-bounds reads set a
/// sticky failure flag rather than throwing; callers check ok() once at the
/// end of a parse.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) : data_(data) {}

  std::uint8_t U8() { return Scalar<std::uint8_t>(); }
  std::uint16_t U16() { return Scalar<std::uint16_t>(); }
  std::uint32_t U32() { return Scalar<std::uint32_t>(); }
  std::uint64_t U64() { return Scalar<std::uint64_t>(); }
  double D64() { return Scalar<double>(); }

  std::string Str() {
    const std::size_t len = U16();
    if (!Ensure(len)) return {};
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), len);
    pos_ += len;
    return s;
  }

  std::vector<std::byte> Bytes() {
    const std::size_t len = U32();
    if (!Ensure(len)) return {};
    std::vector<std::byte> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                               data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
    pos_ += len;
    return out;
  }

  bool ok() const { return ok_; }
  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t position() const { return pos_; }

 private:
  template <typename T>
  T Scalar() {
    if (!Ensure(sizeof(T))) return T{};
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  bool Ensure(std::size_t n) {
    if (pos_ + n > data_.size()) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace ldmsxx
