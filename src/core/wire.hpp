// Byte-buffer writer/reader for the serialized metadata chunk and the
// transport wire protocol. Little-endian host order: LDMS peers in one
// deployment share architecture (and we only target x86-64/ARM64 LE), the
// same assumption the C implementation makes for its binary sets.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ldmsxx {

/// Append-only binary writer. Unencodable input (a string longer than its
/// u16 length prefix can express, an out-of-range back-patch) sets a sticky
/// failure flag instead of silently corrupting the frame; callers check
/// ok() once after building a payload, mirroring ByteReader.
class ByteWriter {
 public:
  ByteWriter() = default;
  /// Adopt @p buf as the backing store (cleared but capacity kept), so hot
  /// paths can reuse one arena across frames instead of allocating per frame.
  explicit ByteWriter(std::vector<std::byte> buf) : owned_(std::move(buf)) {
    owned_.clear();
  }
  /// Borrow @p external as the backing store without clearing it: writes
  /// append in place, which is what lets a server gather-encode straight
  /// into a connection's output arena. Take() is invalid in this mode.
  explicit ByteWriter(std::vector<std::byte>* external) : buf_(external) {}

  // buf_ points into this object; default copy/move would leave it dangling.
  ByteWriter(const ByteWriter&) = delete;
  ByteWriter& operator=(const ByteWriter&) = delete;

  void U8(std::uint8_t v) { Raw(&v, 1); }
  void U16(std::uint16_t v) { Raw(&v, 2); }
  void U32(std::uint32_t v) { Raw(&v, 4); }
  void U64(std::uint64_t v) { Raw(&v, 8); }
  void D64(double v) { Raw(&v, 8); }

  /// Length-prefixed (u16) string. Strings longer than 65535 bytes cannot be
  /// represented; they are rejected outright (nothing is appended) and the
  /// writer is marked failed, rather than truncating the length prefix and
  /// desynchronizing every field that follows.
  void Str(std::string_view s) {
    if (s.size() > 0xffff) {
      ok_ = false;
      return;
    }
    U16(static_cast<std::uint16_t>(s.size()));
    Raw(s.data(), s.size());
  }

  void Bytes(std::span<const std::byte> data) {
    U32(static_cast<std::uint32_t>(data.size()));
    Raw(data.data(), data.size());
  }

  void Raw(const void* data, std::size_t size) {
    const auto* p = static_cast<const std::byte*>(data);
    buf_->insert(buf_->end(), p, p + size);
  }

  /// False once any write was unencodable; the buffer contents are then not
  /// a valid frame and must not be sent.
  bool ok() const { return ok_; }

  const std::vector<std::byte>& buffer() const { return *buf_; }
  std::vector<std::byte> Take() { return std::move(*buf_); }
  std::size_t size() const { return buf_->size(); }

  /// Overwrite 4 bytes at @p offset (for back-patched length fields).
  /// An offset whose 4-byte window is not entirely inside the written region
  /// marks the writer failed instead of scribbling out of bounds.
  void PatchU32(std::size_t offset, std::uint32_t v) {
    if (buf_->size() < 4 || offset > buf_->size() - 4) {
      ok_ = false;
      return;
    }
    std::memcpy(buf_->data() + offset, &v, 4);
  }

  /// Grow the buffer by @p n uninitialized-ish bytes and return the offset of
  /// the new region. Lets callers snapshot data straight into the frame
  /// (gather-encode) instead of staging it in a temporary vector.
  std::size_t Extend(std::size_t n) {
    const std::size_t off = buf_->size();
    buf_->resize(off + n);
    return off;
  }

  /// Writable view of a previously Extend()ed region. A window outside the
  /// written region marks the writer failed and returns an empty span.
  std::span<std::byte> MutableSpan(std::size_t offset, std::size_t n) {
    if (n > buf_->size() || offset > buf_->size() - n) {
      ok_ = false;
      return {};
    }
    return {buf_->data() + offset, n};
  }

  /// Roll the buffer back to @p size (undo a partially written entry).
  void Truncate(std::size_t size) { buf_->resize(size); }

 private:
  std::vector<std::byte> owned_;
  std::vector<std::byte>* buf_ = &owned_;
  bool ok_ = true;
};

/// Sequential binary reader over a borrowed span. Out-of-bounds reads set a
/// sticky failure flag rather than throwing; callers check ok() once at the
/// end of a parse.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) : data_(data) {}

  std::uint8_t U8() { return Scalar<std::uint8_t>(); }
  std::uint16_t U16() { return Scalar<std::uint16_t>(); }
  std::uint32_t U32() { return Scalar<std::uint32_t>(); }
  std::uint64_t U64() { return Scalar<std::uint64_t>(); }
  double D64() { return Scalar<double>(); }

  std::string Str() {
    const std::size_t len = U16();
    if (!Ensure(len)) return {};
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), len);
    pos_ += len;
    return s;
  }

  std::vector<std::byte> Bytes() {
    const std::size_t len = U32();
    if (!Ensure(len)) return {};
    std::vector<std::byte> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                               data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
    pos_ += len;
    return out;
  }

  /// Borrowed view of the next @p len bytes without copying; empty (and the
  /// reader failed) on overrun. This is what lets a delta apply copy extent
  /// bytes straight from the wire buffer into the destination chunk.
  std::span<const std::byte> View(std::size_t len) {
    if (!Ensure(len)) return {};
    std::span<const std::byte> v = data_.subspan(pos_, len);
    pos_ += len;
    return v;
  }

  bool ok() const { return ok_; }
  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t position() const { return pos_; }

 private:
  template <typename T>
  T Scalar() {
    if (!Ensure(sizeof(T))) return T{};
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  bool Ensure(std::size_t n) {
    // `pos_ + n` would wrap for adversarial length fields near SIZE_MAX
    // (a u32/u16 prefix read from the wire), turning an overrun into an
    // accepted read; compare against the remaining bytes instead.
    if (n > data_.size() - pos_) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace ldmsxx
