// Minimal thread-safe leveled logger. ldmsd in the paper writes a debugging
// log file per daemon; we reproduce that shape (per-daemon Logger instances
// with an optional file sink) without pulling in a logging dependency.
#pragma once

#include <cstdio>
#include <mutex>
#include <sstream>
#include <string>

namespace ldmsxx {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError, kOff };

/// Thread-safe logger writing "<level> <component>: <message>" lines.
/// A null path logs to stderr. Copies are not allowed; daemons own theirs.
class Logger {
 public:
  /// @param component tag prepended to every line (e.g. the daemon name)
  /// @param path      log file path, or empty for stderr
  explicit Logger(std::string component, const std::string& path = "");
  ~Logger();

  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  void Log(LogLevel level, const std::string& message);

  template <typename... Args>
  void Debug(Args&&... args) { LogFmt(LogLevel::kDebug, args...); }
  template <typename... Args>
  void Info(Args&&... args) { LogFmt(LogLevel::kInfo, args...); }
  template <typename... Args>
  void Warn(Args&&... args) { LogFmt(LogLevel::kWarn, args...); }
  template <typename... Args>
  void Error(Args&&... args) { LogFmt(LogLevel::kError, args...); }

  /// Process-wide default logger (stderr, level Warn) for code without a
  /// daemon context.
  static Logger& Default();

 private:
  template <typename... Args>
  void LogFmt(LogLevel level, const Args&... args) {
    if (level < level_) return;
    std::ostringstream os;
    (os << ... << args);
    Log(level, os.str());
  }

  std::string component_;
  LogLevel level_ = LogLevel::kInfo;
  std::FILE* file_ = nullptr;  // owned iff not stderr
  std::mutex mu_;
};

}  // namespace ldmsxx
