#include "util/clock.hpp"

#include <cassert>
#include <chrono>

namespace ldmsxx {

TimeNs RealClock::Now() const {
  return static_cast<TimeNs>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

RealClock& RealClock::Instance() {
  static RealClock clock;
  return clock;
}

void SimClock::SetTime(TimeNs t) {
  TimeNs prev = now_.load(std::memory_order_acquire);
  assert(t >= prev);
  (void)prev;
  now_.store(t, std::memory_order_release);
}

DurationNs SpinFor(DurationNs duration) {
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::nanoseconds(duration);
  // Volatile sink defeats loop elision without touching memory bandwidth.
  volatile std::uint64_t sink = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    sink = sink + 1;
  }
  return static_cast<DurationNs>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace ldmsxx
