#include "util/csv.hpp"

#include <charconv>
#include <cstdio>

namespace ldmsxx {

CsvWriter::CsvWriter(const std::string& path, bool truncate)
    : out_(path, truncate ? std::ios::trunc : std::ios::app) {}

void CsvWriter::Separator() {
  if (row_open_) {
    out_.put(',');
    ++bytes_;
  }
  row_open_ = true;
}

void CsvWriter::Field(std::string_view value) {
  Separator();
  const bool needs_quote =
      value.find_first_of(",\"\n") != std::string_view::npos;
  if (!needs_quote) {
    out_.write(value.data(), static_cast<std::streamsize>(value.size()));
    bytes_ += value.size();
    return;
  }
  out_.put('"');
  ++bytes_;
  for (char c : value) {
    if (c == '"') {
      out_.put('"');
      ++bytes_;
    }
    out_.put(c);
    ++bytes_;
  }
  out_.put('"');
  ++bytes_;
}

void CsvWriter::Field(double value) {
  char buf[32];
  const int n = std::snprintf(buf, sizeof buf, "%.6g", value);
  Separator();
  out_.write(buf, n);
  bytes_ += static_cast<std::uint64_t>(n);
}

void CsvWriter::Field(std::uint64_t value) {
  char buf[24];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value);
  (void)ec;
  Separator();
  out_.write(buf, ptr - buf);
  bytes_ += static_cast<std::uint64_t>(ptr - buf);
}

void CsvWriter::Field(std::int64_t value) {
  char buf[24];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value);
  (void)ec;
  Separator();
  out_.write(buf, ptr - buf);
  bytes_ += static_cast<std::uint64_t>(ptr - buf);
}

void CsvWriter::EndRow() {
  out_.put('\n');
  ++bytes_;
  row_open_ = false;
}

void CsvWriter::Row(const std::vector<std::string>& fields) {
  for (const auto& f : fields) Field(std::string_view(f));
  EndRow();
}

void CsvWriter::Flush() { out_.flush(); }

std::vector<std::string> ParseCsvLine(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

std::vector<std::vector<std::string>> ReadCsvFile(const std::string& path) {
  std::vector<std::vector<std::string>> rows;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    rows.push_back(ParseCsvLine(line));
  }
  return rows;
}

}  // namespace ldmsxx
