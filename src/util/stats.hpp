// Streaming statistics and histograms used by the analysis module, the PSNAP
// probe (Figures 5 and 8 are loop-time histograms), and the benches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace ldmsxx {

/// Welford streaming mean/variance plus min/max.
class RunningStats {
 public:
  void Add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  double min() const { return min_; }
  double max() const { return max_; }
  /// Sample variance (n-1 denominator); 0 when count < 2.
  double variance() const;
  double stddev() const;
  double sum() const { return sum_; }

  /// Merge another accumulator into this one (parallel reduction).
  void Merge(const RunningStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width-bin histogram over [lo, hi); out-of-range values land in
/// underflow/overflow counters so the tail that Figures 5/8 care about is
/// never silently dropped.
class Histogram {
 public:
  /// @param lo,hi   value range covered by the bins
  /// @param bins    number of equal-width bins; must be >= 1
  Histogram(double lo, double hi, std::size_t bins);

  void Add(double x);
  void AddN(double x, std::uint64_t n);

  std::size_t bin_count() const { return counts_.size(); }
  std::uint64_t bin(std::size_t i) const { return counts_[i]; }
  /// Inclusive lower edge of bin i.
  double bin_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }
  double bin_width() const { return width_; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t total() const { return total_; }

  /// Count of samples at or above @p threshold (tail mass), including
  /// overflow.
  std::uint64_t TailCount(double threshold) const;

  /// Merge a histogram with identical binning; returns false on mismatch.
  bool Merge(const Histogram& other);

  /// Render "bin_lo,count" CSV lines (skips empty bins when @p skip_empty).
  std::string ToCsv(bool skip_empty = true) const;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

/// Exact percentile from an unsorted sample (copies + nth_element).
/// @param q in [0,1].
double Percentile(std::vector<double> values, double q);

}  // namespace ldmsxx
