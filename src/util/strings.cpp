#include "util/strings.hpp"

#include <cctype>
#include <charconv>

namespace ldmsxx {

std::vector<std::string_view> Split(std::string_view text, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delim) {
      out.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> SplitWhitespace(std::string_view text) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    std::size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) out.push_back(text.substr(start, i - start));
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

template <typename T>
static std::optional<T> ParseIntegral(std::string_view text) {
  text = Trim(text);
  T value{};
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end || text.empty()) return std::nullopt;
  return value;
}

std::optional<std::uint64_t> ParseU64(std::string_view text) {
  return ParseIntegral<std::uint64_t>(text);
}

std::optional<std::int64_t> ParseI64(std::string_view text) {
  return ParseIntegral<std::int64_t>(text);
}

std::optional<double> ParseDouble(std::string_view text) {
  text = Trim(text);
  if (text.empty()) return std::nullopt;
  // std::from_chars<double> is available in libstdc++ 11+; use it directly.
  double value{};
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  return value;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::vector<std::pair<std::string, std::string>> ParseKeyValues(
    std::string_view line) {
  std::vector<std::pair<std::string, std::string>> out;
  for (std::string_view token : SplitWhitespace(line)) {
    const auto eq = token.find('=');
    if (eq == std::string_view::npos) {
      out.emplace_back(std::string(token), std::string());
    } else {
      out.emplace_back(std::string(token.substr(0, eq)),
                       std::string(token.substr(eq + 1)));
    }
  }
  return out;
}

}  // namespace ldmsxx
