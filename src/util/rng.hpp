// Deterministic, splittable PRNG (xoshiro256**). Simulation substrates need
// reproducible streams per node/job so experiment figures are stable across
// runs; std::mt19937 is heavier and its seeding is awkward to split.
#pragma once

#include <cmath>
#include <cstdint>

namespace ldmsxx {

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // splitmix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t NextBelow(std::uint64_t bound) { return Next() % bound; }

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Standard normal via Box-Muller (one value per call; simple and fine for
  /// simulation rates).
  double NextGaussian();

  /// Exponential with the given mean.
  double NextExponential(double mean);

  /// Derive an independent stream, e.g. one per simulated node.
  Rng Split(std::uint64_t stream_id) {
    return Rng(Next() ^ (stream_id * 0xd1342543de82ef95ull + 0x2545f4914f6cdd1dull));
  }

 private:
  static std::uint64_t Rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }

  std::uint64_t state_[4];
};

inline double Rng::NextGaussian() {
  // Box-Muller; regenerate if the log argument would be zero.
  double u1 = NextDouble();
  while (u1 <= 1e-12) u1 = NextDouble();
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return r * std::cos(6.283185307179586 * u2);
}

inline double Rng::NextExponential(double mean) {
  double u = NextDouble();
  while (u <= 1e-12) u = NextDouble();
  return -mean * std::log(u);
}

}  // namespace ldmsxx
