// Crash-safe file writes, the lokinet-nodedb pattern: write the whole
// payload to a sibling temp file, fsync it, rename() over the target, then
// fsync the directory so the rename itself is durable. A reader never sees
// a half-written file — it sees the old contents or the new ones. Shared by
// the cluster registry (src/daemon/registry) and the file stores' directory
// creation paths so there is exactly one audited implementation.
#pragma once

#include <string>
#include <string_view>

#include "util/status.hpp"

namespace ldmsxx {

/// Non-throwing mkdir -p. Ok when the directories already exist; the error
/// message carries errno detail otherwise. File stores call this at open
/// time so a probe after disk recovery can succeed (never throw from a
/// store constructor — the breaker needs a Status to count).
Status EnsureDirectories(const std::string& path);

/// Atomically replace @p path with @p contents: write "<path>.tmp.<pid>",
/// fsync, rename over @p path, fsync the parent directory. On any failure
/// the temp file is unlinked and @p path is untouched.
/// @param mode permission bits for a newly created file (e.g. 0600 for key
///        material, 0644 for world-readable state).
/// @param durable when false, skip both fsyncs: readers still never see a
///        torn file (tmp + rename), but after a power loss the target may
///        hold stale or zero-length contents. For callers whose on-disk
///        format is self-validating and who batch durability themselves
///        (store_tsdb fsyncs sealed segments from a background thread and
///        drains the queue on Flush).
Status AtomicWriteFile(const std::string& path, std::string_view contents,
                       unsigned mode = 0644, bool durable = true);

/// fsync @p path (and its parent directory) in place; the second half of an
/// AtomicWriteFile(durable=false) write.
Status SyncFile(const std::string& path);

/// Read a whole file into @p out. kNotFound when it does not exist.
Status ReadFileToString(const std::string& path, std::string* out);

}  // namespace ldmsxx
