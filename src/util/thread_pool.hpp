// Fixed-size worker pool. ldmsd uses two of these per daemon: a sampling /
// collection worker pool and a separate connection-setup pool (the paper adds
// the latter so connects hung in timeout on sick nodes cannot starve
// collection threads — see §IV-B "Aggregators").
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace ldmsxx {

/// Bounded-concurrency task executor with a FIFO queue.
class ThreadPool {
 public:
  /// @param threads number of workers (>= 1)
  /// @param name    used to tag worker threads in logs/debuggers
  explicit ThreadPool(std::size_t threads, std::string name = "pool");
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Safe from any thread, including pool workers.
  /// Tasks submitted after Shutdown() are dropped.
  void Submit(std::function<void()> task);

  /// Block until the queue is empty and all workers are idle.
  void Drain();

  /// Stop accepting work, finish queued tasks, join workers. Idempotent.
  void Shutdown();

  std::size_t thread_count() const { return workers_.size(); }
  /// Number of queued (not yet started) tasks; approximate.
  std::size_t queued() const;
  /// Deepest the task queue has ever been; a persistent gap between this and
  /// queued() means a past burst, a climbing value means sustained overload.
  std::size_t queued_high_water() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t active_ = 0;
  std::size_t queued_high_water_ = 0;
  bool shutdown_ = false;
};

}  // namespace ldmsxx
