// Lightweight error propagation used across ldmsxx instead of exceptions on
// hot paths. A Status is cheap to copy when OK (no allocation).
#pragma once

#include <string>
#include <utility>

namespace ldmsxx {

/// Error categories used across the library. Mirrors the failure modes the
/// paper's protocol distinguishes (e.g. lookup miss vs. transport failure).
enum class ErrorCode {
  kOk = 0,
  kNotFound,        ///< named object (set, plugin, host) does not exist
  kAlreadyExists,   ///< duplicate registration
  kInvalidArgument, ///< bad configuration or malformed request
  kOutOfMemory,     ///< arena or registration memory exhausted
  kDisconnected,    ///< transport endpoint lost
  kTimeout,         ///< operation exceeded its deadline
  kInconsistent,    ///< metric set torn or stale (DGN / consistent-flag check)
  kUnsupported,     ///< feature not available on this transport/store
  kInternal,        ///< invariant violation
};

/// Result of an operation: a code plus an optional human-readable detail.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return {}; }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Render "OK" or "<code>: <message>" for logs.
  std::string ToString() const;

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

inline const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kAlreadyExists: return "ALREADY_EXISTS";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kOutOfMemory: return "OUT_OF_MEMORY";
    case ErrorCode::kDisconnected: return "DISCONNECTED";
    case ErrorCode::kTimeout: return "TIMEOUT";
    case ErrorCode::kInconsistent: return "INCONSISTENT";
    case ErrorCode::kUnsupported: return "UNSUPPORTED";
    case ErrorCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

inline std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = ErrorCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace ldmsxx
