#include "util/logging.hpp"

#include <ctime>

namespace ldmsxx {
namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?    ";
}

}  // namespace

Logger::Logger(std::string component, const std::string& path)
    : component_(std::move(component)) {
  if (!path.empty()) {
    file_ = std::fopen(path.c_str(), "a");
  }
  if (file_ == nullptr) file_ = stderr;
}

Logger::~Logger() {
  if (file_ != nullptr && file_ != stderr) std::fclose(file_);
}

void Logger::Log(LogLevel level, const std::string& message) {
  if (level < level_) return;
  std::timespec ts{};
  std::timespec_get(&ts, TIME_UTC);
  std::lock_guard<std::mutex> lock(mu_);
  std::fprintf(file_, "%lld.%03ld %s %s: %s\n",
               static_cast<long long>(ts.tv_sec), ts.tv_nsec / 1000000,
               LevelName(level), component_.c_str(), message.c_str());
  std::fflush(file_);
}

Logger& Logger::Default() {
  static Logger logger("ldmsxx");
  static bool init = [] {
    logger.set_level(LogLevel::kWarn);
    return true;
  }();
  (void)init;
  return logger;
}

}  // namespace ldmsxx
