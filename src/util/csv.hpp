// CSV reading/writing helpers shared by the CSV/flat-file stores and the
// analysis tooling that post-processes them.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

namespace ldmsxx {

/// Buffered CSV line writer. Fields containing the separator or quotes are
/// quoted per RFC 4180. Not thread-safe; stores serialize through their own
/// flush thread.
class CsvWriter {
 public:
  /// Opens @p path for append (or truncate when @p truncate).
  CsvWriter(const std::string& path, bool truncate = false);

  bool ok() const { return out_.good(); }
  /// False when the file never opened (e.g. missing directory); callers
  /// should recreate the writer rather than retry on a dead stream.
  bool is_open() const { return out_.is_open(); }

  /// Clear a sticky stream error so later writes can retry (disk-full
  /// recovery: a failed ofstream otherwise stays failed forever and the
  /// store could never resume after space is freed).
  void ClearError() { out_.clear(); }

  /// Begin a row; subsequent Field() calls append cells; EndRow() terminates.
  void Field(std::string_view value);
  void Field(double value);
  void Field(std::uint64_t value);
  void Field(std::int64_t value);
  void EndRow();

  /// Convenience: write an entire row of raw (unquoted-checked) fields.
  void Row(const std::vector<std::string>& fields);

  void Flush();
  /// Bytes written so far (for footprint accounting in bench_footprint).
  std::uint64_t bytes_written() const { return bytes_; }

 private:
  void Separator();

  std::ofstream out_;
  bool row_open_ = false;
  std::uint64_t bytes_ = 0;
};

/// Parse one CSV line into fields (handles RFC 4180 quoting).
std::vector<std::string> ParseCsvLine(std::string_view line);

/// Read an entire CSV file into rows of fields. Intended for tests and
/// analysis on modest files, not the multi-GB production stores.
std::vector<std::vector<std::string>> ReadCsvFile(const std::string& path);

}  // namespace ldmsxx
