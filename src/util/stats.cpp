#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace ldmsxx {

void RunningStats::Add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo),
      width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  assert(bins >= 1 && hi > lo);
}

void Histogram::Add(double x) { AddN(x, 1); }

void Histogram::AddN(double x, std::uint64_t n) {
  total_ += n;
  if (x < lo_) {
    underflow_ += n;
    return;
  }
  const auto idx = static_cast<std::size_t>((x - lo_) / width_);
  if (idx >= counts_.size()) {
    overflow_ += n;
    return;
  }
  counts_[idx] += n;
}

std::uint64_t Histogram::TailCount(double threshold) const {
  std::uint64_t tail = overflow_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (bin_lo(i) + width_ > threshold) tail += counts_[i];
  }
  return tail;
}

bool Histogram::Merge(const Histogram& other) {
  if (other.counts_.size() != counts_.size() || other.lo_ != lo_ ||
      other.width_ != width_) {
    return false;
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
  return true;
}

std::string Histogram::ToCsv(bool skip_empty) const {
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (skip_empty && counts_[i] == 0) continue;
    os << bin_lo(i) << "," << counts_[i] << "\n";
  }
  return os.str();
}

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(values.size() - 1) + 0.5);
  std::nth_element(values.begin(),
                   values.begin() + static_cast<std::ptrdiff_t>(idx),
                   values.end());
  return values[idx];
}

}  // namespace ldmsxx
