#include "util/atomic_file.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

namespace ldmsxx {
namespace {

std::string ParentDir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status ErrnoStatus(const std::string& what) {
  return {ErrorCode::kInternal, what + ": " + std::strerror(errno)};
}

}  // namespace

Status EnsureDirectories(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec && !std::filesystem::is_directory(path)) {
    return {ErrorCode::kInternal, "mkdir " + path + ": " + ec.message()};
  }
  return Status::Ok();
}

Status AtomicWriteFile(const std::string& path, std::string_view contents,
                       unsigned mode, bool durable) {
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        static_cast<mode_t>(mode));
  if (fd < 0) return ErrnoStatus("open " + tmp);
  // O_CREAT mode is filtered by umask; key files need the exact bits.
  if (::fchmod(fd, static_cast<mode_t>(mode)) != 0) {
    const Status st = ErrnoStatus("fchmod " + tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return st;
  }
  std::size_t off = 0;
  while (off < contents.size()) {
    const ssize_t n = ::write(fd, contents.data() + off, contents.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status st = ErrnoStatus("write " + tmp);
      ::close(fd);
      ::unlink(tmp.c_str());
      return st;
    }
    off += static_cast<std::size_t>(n);
  }
  if (durable && ::fsync(fd) != 0) {
    const Status st = ErrnoStatus("fsync " + tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return st;
  }
  if (::close(fd) != 0) {
    const Status st = ErrnoStatus("close " + tmp);
    ::unlink(tmp.c_str());
    return st;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status st = ErrnoStatus("rename " + tmp + " -> " + path);
    ::unlink(tmp.c_str());
    return st;
  }
  if (!durable) return Status::Ok();
  // Make the rename durable: fsync the containing directory. Failure here is
  // reported (the caller may retry) but the file content is already safe.
  const std::string dir = ParentDir(path);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    const int rc = ::fsync(dfd);
    ::close(dfd);
    if (rc != 0) return ErrnoStatus("fsync " + dir);
  }
  return Status::Ok();
}

Status SyncFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return ErrnoStatus("open " + path);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return ErrnoStatus("fsync " + path);
  const std::string dir = ParentDir(path);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    const int drc = ::fsync(dfd);
    ::close(dfd);
    if (drc != 0) return ErrnoStatus("fsync " + dir);
  }
  return Status::Ok();
}

Status ReadFileToString(const std::string& path, std::string* out) {
  out->clear();
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return {ErrorCode::kNotFound, "no file: " + path};
    return ErrnoStatus("open " + path);
  }
  char buf[1 << 14];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status st = ErrnoStatus("read " + path);
      ::close(fd);
      return st;
    }
    if (n == 0) break;
    out->append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return Status::Ok();
}

}  // namespace ldmsxx
