// Time source abstraction. The paper's evaluation mixes two regimes:
//  * real-time overhead measurements (PSNAP, application impact), which need
//    the machine's actual clocks, and
//  * 24-hour system characterizations (Figures 9-12), which we drive from a
//    simulated clock so a day of cluster telemetry runs in seconds.
// All ldmsxx components take a Clock& so either regime works unchanged.
#pragma once

#include <atomic>
#include <cstdint>

namespace ldmsxx {

/// Nanoseconds since the UNIX epoch (real clock) or since simulation start.
using TimeNs = std::uint64_t;

/// Duration in nanoseconds.
using DurationNs = std::uint64_t;

constexpr DurationNs kNsPerUs = 1000ull;
constexpr DurationNs kNsPerMs = 1000ull * kNsPerUs;
constexpr DurationNs kNsPerSec = 1000ull * kNsPerMs;
constexpr DurationNs kNsPerMin = 60ull * kNsPerSec;
constexpr DurationNs kNsPerHour = 60ull * kNsPerMin;

/// Abstract monotonic time source.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in nanoseconds. Must be monotonic non-decreasing.
  virtual TimeNs Now() const = 0;
};

/// Wall clock backed by std::chrono::system_clock (so stored timestamps are
/// meaningful) with steady_clock monotonicity for interval math.
class RealClock final : public Clock {
 public:
  TimeNs Now() const override;

  /// Process-wide instance.
  static RealClock& Instance();
};

/// Manually advanced clock for simulations and deterministic tests.
/// Thread-safe: samplers on worker threads may read while the simulation
/// driver advances.
class SimClock final : public Clock {
 public:
  explicit SimClock(TimeNs start = 0) : now_(start) {}

  TimeNs Now() const override { return now_.load(std::memory_order_acquire); }

  /// Move time forward by @p delta nanoseconds.
  void Advance(DurationNs delta) {
    now_.fetch_add(delta, std::memory_order_acq_rel);
  }

  /// Jump to an absolute time; must not go backwards.
  void SetTime(TimeNs t);

 private:
  std::atomic<TimeNs> now_;
};

/// Cycle-accurate-ish busy-wait timer for microbenchmarks (PSNAP loop).
/// Returns elapsed nanoseconds of the spin.
DurationNs SpinFor(DurationNs duration);

}  // namespace ldmsxx
