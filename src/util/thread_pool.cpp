#include "util/thread_pool.hpp"

#include <cassert>

namespace ldmsxx {

ThreadPool::ThreadPool(std::size_t threads, std::string name) {
  assert(threads >= 1);
  (void)name;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    queue_.push_back(std::move(task));
    if (queue_.size() > queued_high_water_) queued_high_water_ = queue_.size();
  }
  work_cv_.notify_one();
}

void ThreadPool::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

std::size_t ThreadPool::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

std::size_t ThreadPool::queued_high_water() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_high_water_;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace ldmsxx
