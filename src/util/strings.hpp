// Small string utilities shared by the /proc-format parsers, the
// configuration command language, and the CSV stores.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ldmsxx {

/// Split on a single delimiter; empty fields are preserved.
std::vector<std::string_view> Split(std::string_view text, char delim);

/// Split on runs of whitespace; empty fields are dropped (the shape of
/// /proc/stat and friends).
std::vector<std::string_view> SplitWhitespace(std::string_view text);

/// Trim ASCII whitespace from both ends.
std::string_view Trim(std::string_view text);

/// Parse an unsigned/signed/floating value; nullopt on any trailing garbage.
std::optional<std::uint64_t> ParseU64(std::string_view text);
std::optional<std::int64_t> ParseI64(std::string_view text);
std::optional<double> ParseDouble(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);

/// Parse "key=value" tokens (the ldmsd configuration command shape:
/// `config name=meminfo producer=nid0001 interval=1000000`).
/// Returns pairs in order; tokens without '=' get an empty value.
std::vector<std::pair<std::string, std::string>> ParseKeyValues(
    std::string_view line);

}  // namespace ldmsxx
