#include "sim/workload.hpp"

namespace ldmsxx::sim {

JobProfile JobProfile::Compute() {
  JobProfile p;
  p.cpu_user_frac = 0.95;
  p.net_bytes_per_s = 2.0e7;
  p.comm = CommPattern::kNeighbor;
  return p;
}

JobProfile JobProfile::CommHeavy() {
  JobProfile p;
  p.cpu_user_frac = 0.75;
  p.cpu_sys_frac = 0.1;
  p.net_bytes_per_s = 9.0e9;  // drives shared links past saturation
  p.comm = CommPattern::kAllReduce;
  p.net_phase_period_s = 7200.0;  // CG solve phases on an hours scale
  p.net_phase_depth = 0.5;
  return p;
}

JobProfile JobProfile::Halo() {
  JobProfile p;
  p.cpu_user_frac = 0.85;
  p.net_bytes_per_s = 1.2e9;
  p.comm = CommPattern::kHalo3D;
  return p;
}

JobProfile JobProfile::IoHeavy() {
  JobProfile p;
  p.cpu_user_frac = 0.6;
  p.cpu_wait_frac = 0.15;
  p.lustre_writes_per_s = 50.0;
  p.lustre_write_bps = 2.0e8;
  p.lustre_opens_per_s = 5.0;
  p.lustre_closes_per_s = 5.0;
  p.disk_write_bps = 2.0e7;  // local scratch staging
  p.disk_read_bps = 5.0e6;
  p.page_faults_per_s = 400.0;
  p.net_bytes_per_s = 1.5e9;
  p.comm = CommPattern::kIoService;
  return p;
}

JobProfile JobProfile::MetadataStorm() {
  JobProfile p;
  p.cpu_user_frac = 0.4;
  p.lustre_opens_per_s = 120.0;  // the sustained horizontal bands
  p.lustre_closes_per_s = 120.0;
  p.lustre_storm_period_s = 3600.0;
  p.lustre_storm_factor = 40.0;
  p.net_bytes_per_s = 1.0e7;
  p.comm = CommPattern::kIoService;
  return p;
}

JobProfile JobProfile::MemoryRamp(double growth_kb_per_s) {
  JobProfile p;
  p.cpu_user_frac = 0.9;
  p.mem_per_node_kb = 12ull * 1024 * 1024;
  p.mem_growth_kb_per_s = growth_kb_per_s;
  p.mem_imbalance = 0.8;
  p.net_bytes_per_s = 1.0e8;
  p.comm = CommPattern::kHalo3D;
  return p;
}

}  // namespace ldmsxx::sim
