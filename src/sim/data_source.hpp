// Data-source abstraction for sampler plugins. Real LDMS samplers read
// /proc and /sys files; ours read the same text formats through this
// interface so a plugin is byte-for-byte the same parser whether it samples
// the real machine (RealFsDataSource) or a simulated node
// (SimNodeDataSource). This preserves the per-metric sampling cost that the
// Ganglia comparison (§IV-E) and the footprint table (§IV-D) measure.
#pragma once

#include <memory>
#include <string>

#include "util/status.hpp"

namespace ldmsxx {

class NodeDataSource {
 public:
  virtual ~NodeDataSource() = default;

  /// Read the full contents of @p path into @p out.
  virtual Status Read(const std::string& path, std::string* out) = 0;
};

using NodeDataSourcePtr = std::shared_ptr<NodeDataSource>;

/// Reads the actual filesystem (deploying on a real Linux host).
class RealFsDataSource final : public NodeDataSource {
 public:
  Status Read(const std::string& path, std::string* out) override;
};

}  // namespace ldmsxx
