// SimCluster ties the substrate together: nodes, the optional Gemini torus,
// a job scheduler with first-fit contiguous placement, and the per-tick
// demand pipeline (jobs -> node demands + network flows -> counter
// integration -> OOM enforcement). Factory configs approximate the paper's
// two production systems: Blue Waters (torus, 2 nodes/Gemini, 194-metric
// sets at 1-minute intervals) and Chama (1296 IB nodes, 467 metrics at 20 s).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "sim/data_source.hpp"
#include "sim/gemini.hpp"
#include "sim/node.hpp"
#include "sim/workload.hpp"
#include "util/status.hpp"

namespace ldmsxx::sim {

struct ClusterConfig {
  std::string name = "cluster";
  std::string hostname_prefix = "nid";
  /// Node count for flat (non-torus) clusters; ignored when has_torus.
  int node_count = 128;
  bool has_torus = false;
  TorusDims torus_dims{};
  SimNodeConfig node_template;
  std::uint64_t seed = 42;

  /// Chama-like capacity cluster: @p nodes Infiniband-connected nodes.
  static ClusterConfig Chama(int nodes = 1296);
  /// Blue-Waters-like torus system; default scaled to 8x8x8 (1024 nodes) so
  /// tests are fast — pass {24,24,24} for full scale.
  static ClusterConfig BlueWaters(TorusDims dims = {8, 8, 8});
};

class SimCluster {
 public:
  explicit SimCluster(ClusterConfig config);

  const ClusterConfig& config() const { return config_; }
  int node_count() const { return static_cast<int>(nodes_.size()); }
  TimeNs now() const { return now_; }

  SimNode& node(int id) { return nodes_[static_cast<std::size_t>(id)]; }
  const SimNode& node(int id) const {
    return nodes_[static_cast<std::size_t>(id)];
  }
  /// nullptr for flat clusters.
  GeminiTorus* torus() { return torus_ ? &*torus_ : nullptr; }
  const GeminiTorus* torus() const { return torus_ ? &*torus_ : nullptr; }

  /// Queue a job; it starts at spec.arrival (or when nodes free up).
  Status Submit(JobSpec spec);

  /// Advance the simulation by @p dt.
  void Tick(DurationNs dt);

  /// Convenience: Tick repeatedly with @p step until @p duration elapsed.
  void RunFor(DurationNs duration, DurationNs step);

  const std::vector<JobRecord>& jobs() const { return jobs_; }
  /// Records of jobs currently running.
  std::vector<const JobRecord*> running_jobs() const;

  /// Data source bound to one node (hand to sampler plugins).
  NodeDataSourcePtr MakeDataSource(int node_id);

  std::string Hostname(int node_id) const;

 private:
  void StartPendingJobs();
  void ApplyJobDemands(JobRecord& job, DurationNs dt);
  void BuildFlows(const JobRecord& job);
  /// Deterministic per-(job,node-rank) imbalance factor in [1-i/2, 1+1.5i].
  double ImbalanceFactor(const JobRecord& job, int rank) const;

  ClusterConfig config_;
  Rng rng_;
  TimeNs now_ = 0;
  std::vector<SimNode> nodes_;
  std::optional<GeminiTorus> torus_;
  std::vector<JobRecord> jobs_;
  std::vector<std::size_t> pending_;  // indices into jobs_
  std::vector<std::size_t> running_;
  std::vector<bool> node_busy_;
};

/// NodeDataSource rendering /proc- and /sys-style text from a SimCluster
/// node. The formats match what the corresponding sampler plugins parse.
class SimNodeDataSource final : public NodeDataSource {
 public:
  SimNodeDataSource(SimCluster* cluster, int node_id)
      : cluster_(cluster), node_id_(node_id) {}

  Status Read(const std::string& path, std::string* out) override;

 private:
  SimCluster* cluster_;
  int node_id_;
};

}  // namespace ldmsxx::sim
