// Simulated Cray Gemini 3-D torus HSN. This is the substrate behind the
// paper's Figures 9 and 10: per-link traffic and credit-stall accounting on
// a 24x24x24 torus (dimensions configurable so tests run on small tori).
//
// Model notes, matched to the real Gemini (§II, §VI-A):
//  * Two nodes share one Gemini router; node 2g and 2g+1 live on Gemini g.
//  * Six link directions per Gemini (X+, X-, Y+, Y-, Z+, Z-), torus wrap.
//  * Link media differ by dimension: X and Z links are faster than Y
//    (the paper derives %bandwidth from "estimated theoretical maximum
//    bandwidth figures based on link type").
//  * Routing is deterministic dimension-ordered (X, then Y, then Z),
//    shortest wrap direction — "the routing algorithm between any 2 Gemini
//    is well-defined", which is why congestion features have extent in X.
//  * Credit-based flow control: when per-tick demand on a link exceeds its
//    capacity, sources stall; we account the stalled fraction of the tick
//    into a cumulative stall-time counter per link, which is exactly what
//    the gpcdr-exposed performance counters aggregate.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/clock.hpp"
#include "util/rng.hpp"

namespace ldmsxx::sim {

enum class LinkDir : std::uint8_t {
  kXPlus = 0,
  kXMinus,
  kYPlus,
  kYMinus,
  kZPlus,
  kZMinus,
};
constexpr std::size_t kLinkDirs = 6;
const char* LinkDirName(LinkDir dir);

struct TorusDims {
  int x = 24;
  int y = 24;
  int z = 24;
  int gemini_count() const { return x * y * z; }
  int node_count() const { return 2 * gemini_count(); }
};

struct Coord {
  int x = 0;
  int y = 0;
  int z = 0;
};

/// Cumulative per-link counters (what gpcdr exposes to samplers).
struct LinkCounters {
  std::uint64_t traffic_bytes = 0;  ///< delivered bytes
  std::uint64_t packets = 0;
  std::uint64_t stalled_ns = 0;  ///< cumulative time spent in credit stalls
  std::uint64_t elapsed_ns = 0;
  bool up = true;
  // Last-tick instantaneous values (analysis convenience).
  double last_utilization = 0.0;
  double last_stall_fraction = 0.0;
};

/// A steady traffic demand between two Geminis for the current tick set.
struct Flow {
  int src_gemini = 0;
  int dst_gemini = 0;
  double bytes_per_s = 0.0;
};

class GeminiTorus {
 public:
  GeminiTorus(TorusDims dims, Rng rng);

  const TorusDims& dims() const { return dims_; }
  int gemini_count() const { return dims_.gemini_count(); }
  int node_count() const { return dims_.node_count(); }

  static int GeminiOfNode(int node_id) { return node_id / 2; }
  Coord CoordOf(int gemini) const;
  int IndexOf(const Coord& c) const;

  /// Theoretical max bandwidth of a link in @p dir, bytes/second.
  double LinkCapacity(LinkDir dir) const;

  /// Dimension-ordered route; appends (gemini, direction) hops.
  void Route(int src_gemini, int dst_gemini,
             std::vector<std::pair<int, LinkDir>>* hops) const;

  /// Replace the flow set for subsequent ticks.
  void ClearFlows() { flows_.clear(); }
  void AddFlow(const Flow& flow) { flows_.push_back(flow); }
  std::size_t flow_count() const { return flows_.size(); }

  /// Mark a link up/down (failure injection; down links drop traffic and
  /// stall their sources completely).
  void SetLinkUp(int gemini, LinkDir dir, bool up);

  /// Advance the network @p dt: apply flows, accumulate per-link traffic
  /// and stall counters.
  void Tick(DurationNs dt);

  const LinkCounters& link(int gemini, LinkDir dir) const {
    return links_[LinkIndex(gemini, dir)];
  }

  /// Gemini on the other end of (gemini, dir).
  int Neighbor(int gemini, LinkDir dir) const;

 private:
  std::size_t LinkIndex(int gemini, LinkDir dir) const {
    return static_cast<std::size_t>(gemini) * kLinkDirs +
           static_cast<std::size_t>(dir);
  }

  TorusDims dims_;
  Rng rng_;
  std::vector<LinkCounters> links_;
  std::vector<Flow> flows_;
  std::vector<double> demand_;  // scratch: bytes/s per link this tick
};

}  // namespace ldmsxx::sim
