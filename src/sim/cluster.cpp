#include "sim/cluster.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace ldmsxx::sim {

ClusterConfig ClusterConfig::Chama(int nodes) {
  ClusterConfig config;
  config.name = "chama";
  config.hostname_prefix = "ch";
  config.node_count = nodes;
  config.has_torus = false;
  config.node_template.mem_total_kb = 64ull * 1024 * 1024;
  config.node_template.cores = 16;
  return config;
}

ClusterConfig ClusterConfig::BlueWaters(TorusDims dims) {
  ClusterConfig config;
  config.name = "bluewaters";
  config.hostname_prefix = "nid";
  config.has_torus = true;
  config.torus_dims = dims;
  config.node_template.mem_total_kb = 64ull * 1024 * 1024;
  config.node_template.cores = 32;
  return config;
}

SimCluster::SimCluster(ClusterConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  if (config_.has_torus) {
    torus_.emplace(config_.torus_dims, rng_.Split(1));
    config_.node_count = config_.torus_dims.node_count();
  }
  nodes_.reserve(static_cast<std::size_t>(config_.node_count));
  for (int i = 0; i < config_.node_count; ++i) {
    SimNodeConfig nc = config_.node_template;
    nc.node_id = static_cast<std::uint64_t>(i);
    nc.hostname = Hostname(i);
    nodes_.emplace_back(nc, rng_.Split(1000 + static_cast<std::uint64_t>(i)));
  }
  node_busy_.assign(nodes_.size(), false);
}

std::string SimCluster::Hostname(int node_id) const {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%s%05d", config_.hostname_prefix.c_str(),
                node_id);
  return buf;
}

Status SimCluster::Submit(JobSpec spec) {
  if (spec.fixed_nodes.empty() &&
      (spec.node_count <= 0 || spec.node_count > node_count())) {
    return {ErrorCode::kInvalidArgument, "bad node count"};
  }
  for (int n : spec.fixed_nodes) {
    if (n < 0 || n >= node_count()) {
      return {ErrorCode::kInvalidArgument, "fixed node out of range"};
    }
  }
  JobRecord record;
  record.spec = std::move(spec);
  jobs_.push_back(std::move(record));
  pending_.push_back(jobs_.size() - 1);
  return Status::Ok();
}

void SimCluster::StartPendingJobs() {
  for (auto it = pending_.begin(); it != pending_.end();) {
    JobRecord& job = jobs_[*it];
    if (job.spec.arrival > now_) {
      ++it;
      continue;
    }
    if (!job.spec.fixed_nodes.empty()) {
      // Explicit placement: may deliberately overlap running jobs.
      job.nodes = job.spec.fixed_nodes;
    } else {
      // First-fit contiguous block, falling back to scattered free nodes —
      // both placements occur in production and both shapes matter for the
      // network figures.
      const int want = job.spec.node_count;
      int run_start = -1;
      int run_len = 0;
      for (int i = 0; i < node_count(); ++i) {
        if (!node_busy_[static_cast<std::size_t>(i)]) {
          if (run_len == 0) run_start = i;
          if (++run_len == want) break;
        } else {
          run_len = 0;
        }
      }
      if (run_len == want) {
        for (int i = run_start; i < run_start + want; ++i) {
          job.nodes.push_back(i);
        }
      } else {
        for (int i = 0; i < node_count() &&
                        static_cast<int>(job.nodes.size()) < want;
             ++i) {
          if (!node_busy_[static_cast<std::size_t>(i)]) job.nodes.push_back(i);
        }
        if (static_cast<int>(job.nodes.size()) < want) {
          job.nodes.clear();
          ++it;  // not enough free nodes; stay pending
          continue;
        }
      }
      for (int n : job.nodes) node_busy_[static_cast<std::size_t>(n)] = true;
    }
    job.started = true;
    job.start_time = now_;
    running_.push_back(*it);
    it = pending_.erase(it);
  }
}

double SimCluster::ImbalanceFactor(const JobRecord& job, int rank) const {
  // Deterministic hash -> [-0.5, 1.0); rank 0 is biased high so imbalance
  // has a visible leader (Figure 12's outlier node).
  std::uint64_t h = job.spec.job_id * 0x9e3779b97f4a7c15ull +
                    static_cast<std::uint64_t>(rank) * 0xd1342543de82ef95ull;
  h ^= h >> 29;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 32;
  double u = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0,1)
  double spread = u * 1.5 - 0.5;
  if (rank == 0) spread = 1.0;
  return 1.0 + job.spec.profile.mem_imbalance * spread;
}

void SimCluster::ApplyJobDemands(JobRecord& job, DurationNs dt) {
  const JobProfile& p = job.spec.profile;
  const double elapsed_s =
      static_cast<double>(now_ - job.start_time) / static_cast<double>(kNsPerSec);
  (void)dt;

  // Metadata storm this tick?
  double open_factor = 1.0;
  if (p.lustre_storm_period_s > 0.0) {
    const double period_ns = p.lustre_storm_period_s * 1e9;
    const auto phase = static_cast<double>((now_ - job.start_time) %
                                           static_cast<DurationNs>(period_ns));
    if (phase < static_cast<double>(dt)) open_factor = p.lustre_storm_factor;
  }

  for (std::size_t rank = 0; rank < job.nodes.size(); ++rank) {
    SimNode& n = nodes_[static_cast<std::size_t>(job.nodes[rank])];
    NodeDemand d = n.demand();  // accumulate across overlapping jobs
    const double cores = static_cast<double>(n.config().cores);
    d.cpu_user_cores += p.cpu_user_frac * cores;
    d.cpu_sys_cores += p.cpu_sys_frac * cores;
    d.cpu_wait_cores += p.cpu_wait_frac * cores;
    const double factor = ImbalanceFactor(job, static_cast<int>(rank));
    d.mem_active_kb += static_cast<std::uint64_t>(
        (static_cast<double>(p.mem_per_node_kb) +
         p.mem_growth_kb_per_s * elapsed_s) *
        factor);
    d.lustre_opens_per_s += p.lustre_opens_per_s * open_factor;
    d.lustre_closes_per_s += p.lustre_closes_per_s * open_factor;
    d.lustre_reads_per_s += p.lustre_reads_per_s;
    d.lustre_writes_per_s += p.lustre_writes_per_s;
    d.lustre_read_bps += p.lustre_read_bps;
    d.lustre_write_bps += p.lustre_write_bps;
    d.nfs_ops_per_s += p.nfs_ops_per_s;
    d.disk_read_bps += p.disk_read_bps;
    d.disk_write_bps += p.disk_write_bps;
    d.page_faults_per_s += p.page_faults_per_s;
    if (torus_) {
      // HSN injection is modeled by flows in BuildFlows().
    } else {
      d.ib_tx_bps += p.net_bytes_per_s;
      d.ib_rx_bps += p.net_bytes_per_s;
    }
    d.eth_tx_bps += 1.0e5;
    d.eth_rx_bps += 1.0e5;
    n.SetDemand(d);
  }
}

void SimCluster::BuildFlows(const JobRecord& job) {
  if (!torus_) return;
  const JobProfile& p = job.spec.profile;
  const auto n = static_cast<int>(job.nodes.size());
  if (n < 2 || p.net_bytes_per_s <= 0.0) return;

  // Slow application-phase modulation of the injection rate.
  double phase_factor = 1.0;
  if (p.net_phase_period_s > 0.0 && p.net_phase_depth > 0.0) {
    const double elapsed_s = static_cast<double>(now_ - job.start_time) /
                             static_cast<double>(kNsPerSec);
    const double phase0 =
        static_cast<double>(job.spec.job_id % 16) * 0.3926990816987241;
    phase_factor = 1.0 + p.net_phase_depth *
                             std::sin(6.283185307179586 * elapsed_s /
                                          p.net_phase_period_s +
                                      phase0);
  }

  auto rank_factor = [&](int rank) {
    if (p.net_rank_jitter <= 0.0) return 1.0;
    std::uint64_t h = job.spec.job_id * 0x9e3779b97f4a7c15ull +
                      static_cast<std::uint64_t>(rank) * 0x2545f4914f6cdd1dull;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0,1)
    return 1.0 + p.net_rank_jitter * (u - 0.5);
  };

  auto add = [&](int from_rank, int to_rank, double bps) {
    const int src = GeminiTorus::GeminiOfNode(job.nodes[from_rank]);
    const int dst = GeminiTorus::GeminiOfNode(job.nodes[to_rank]);
    if (src == dst) return;
    torus_->AddFlow({src, dst, bps * phase_factor * rank_factor(from_rank)});
  };

  switch (p.comm) {
    case CommPattern::kNone:
      break;
    case CommPattern::kNeighbor:
      for (int i = 0; i < n; ++i) add(i, (i + 1) % n, p.net_bytes_per_s);
      break;
    case CommPattern::kHalo3D: {
      const int nx = std::max(1, static_cast<int>(std::cbrt(n)));
      const int strides[3] = {1, nx, nx * nx};
      for (int i = 0; i < n; ++i) {
        for (int stride : strides) {
          if (i + stride < n) add(i, i + stride, p.net_bytes_per_s / 3.0);
        }
      }
      break;
    }
    case CommPattern::kAllReduce: {
      int levels = 0;
      for (int k = 1; k < n; k <<= 1) ++levels;
      if (levels == 0) break;
      const double per_level = p.net_bytes_per_s / levels;
      for (int k = 1; k < n; k <<= 1) {
        for (int i = 0; i < n; ++i) {
          const int peer = i ^ k;
          if (peer < n && peer > i) {
            add(i, peer, per_level);
            add(peer, i, per_level);
          }
        }
      }
      break;
    }
    case CommPattern::kIoService:
      for (int i = 0; i < n; ++i) {
        const int src = GeminiTorus::GeminiOfNode(
            job.nodes[static_cast<std::size_t>(i)]);
        Coord c = torus_->CoordOf(src);
        c.x = 0;  // the row's I/O-router Gemini
        const int dst = torus_->IndexOf(c);
        if (src != dst) {
          torus_->AddFlow(
              {src, dst, p.net_bytes_per_s * rank_factor(i) * phase_factor});
        }
      }
      break;
  }
}

void SimCluster::Tick(DurationNs dt) {
  StartPendingJobs();

  // Reset all node demands, then accumulate running jobs.
  for (SimNode& n : nodes_) n.SetDemand(NodeDemand{});
  if (torus_) torus_->ClearFlows();
  for (std::size_t idx : running_) {
    ApplyJobDemands(jobs_[idx], dt);
    BuildFlows(jobs_[idx]);
  }

  if (torus_) torus_->Tick(dt);
  for (SimNode& n : nodes_) n.Tick(dt);

  now_ += dt;

  // Completion and OOM enforcement.
  for (auto it = running_.begin(); it != running_.end();) {
    JobRecord& job = jobs_[*it];
    bool oom = false;
    for (int node_id : job.nodes) {
      if (nodes_[static_cast<std::size_t>(node_id)].OomCondition()) {
        oom = true;
        break;
      }
    }
    const bool done =
        now_ >= job.start_time + job.spec.duration || oom;
    if (!done) {
      ++it;
      continue;
    }
    job.finished = true;
    job.oom_killed = oom;
    job.end_time = now_;
    if (job.spec.fixed_nodes.empty()) {
      for (int n : job.nodes) node_busy_[static_cast<std::size_t>(n)] = false;
    }
    it = running_.erase(it);
  }
}

void SimCluster::RunFor(DurationNs duration, DurationNs step) {
  const TimeNs end = now_ + duration;
  while (now_ < end) Tick(std::min(step, end - now_));
}

std::vector<const JobRecord*> SimCluster::running_jobs() const {
  std::vector<const JobRecord*> out;
  out.reserve(running_.size());
  for (std::size_t idx : running_) out.push_back(&jobs_[idx]);
  return out;
}

NodeDataSourcePtr SimCluster::MakeDataSource(int node_id) {
  return std::make_shared<SimNodeDataSource>(this, node_id);
}

}  // namespace ldmsxx::sim
