// Synthetic application workloads. Each job deposits per-node resource
// demands (CPU, memory, Lustre, network) every simulation tick; profiles
// approximate the application classes the paper's evaluation uses:
// communication-heavy lattice codes (MILC), halo-exchange stencils
// (MiniGhost/CTH), I/O-heavy implicit codes (Nalu/Adagio restart dumps),
// metadata-storm jobs (Figure 11), and the memory-ramp job that the OOM
// killer terminates in Figure 12.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/clock.hpp"

namespace ldmsxx::sim {

enum class CommPattern {
  kNone,       ///< embarrassingly parallel
  kNeighbor,   ///< ring: rank i -> i+1
  kHalo3D,     ///< 3-D stencil: strides 1, nx, nx*ny in rank space
  kAllReduce,  ///< binomial-tree pairs: i <-> i^2^k
  kIoService,  ///< every rank -> the I/O-router Gemini at x=0 of its own
               ///< (y,z) row; Blue Waters distributes I/O nodes through the
               ///< torus, so file-system traffic converges along X
};

struct JobProfile {
  double cpu_user_frac = 0.85;  ///< fraction of node cores in user time
  double cpu_sys_frac = 0.05;
  double cpu_wait_frac = 0.0;
  std::uint64_t mem_per_node_kb = 8ull * 1024 * 1024;
  /// Linear active-memory growth (leaks / accumulating AMR meshes).
  double mem_growth_kb_per_s = 0.0;
  /// Per-node spread: node demand is scaled by 1 + imbalance * u, with u
  /// deterministic per (job, node) in [-0.5, 1.5] — rank 0 biased high, the
  /// shape visible in Figure 12.
  double mem_imbalance = 0.1;
  double lustre_opens_per_s = 0.5;
  double lustre_closes_per_s = 0.5;
  double lustre_reads_per_s = 2.0;
  double lustre_writes_per_s = 2.0;
  double lustre_read_bps = 1.0e6;
  double lustre_write_bps = 4.0e6;
  /// Periodic metadata storms: every period, opens_per_s is multiplied by
  /// storm_factor for one tick (0 disables).
  double lustre_storm_period_s = 0.0;
  double lustre_storm_factor = 200.0;
  double nfs_ops_per_s = 0.2;
  /// Node-local scratch disk traffic.
  double disk_read_bps = 1.0e5;
  double disk_write_bps = 2.0e5;
  double page_faults_per_s = 50.0;
  /// HSN injection per node.
  double net_bytes_per_s = 2.0e8;
  CommPattern comm = CommPattern::kNeighbor;
  /// Slow sinusoidal modulation of the injection rate (application phases:
  /// communication-heavy solves alternating with I/O or setup). 0 = steady.
  double net_phase_period_s = 0.0;
  /// Modulation depth in [0,1): rate swings between (1-depth) and (1+depth).
  double net_phase_depth = 0.0;
  /// Per-rank multiplicative jitter of flow rates in [1-j/2, 1+j/2]
  /// (deterministic per job+rank); makes congestion heterogeneous the way
  /// real rank-dependent communication volumes do.
  double net_rank_jitter = 0.5;

  // Presets named for the application classes they imitate.
  static JobProfile Compute();
  static JobProfile CommHeavy();      ///< MILC-like
  static JobProfile Halo();           ///< MiniGhost/CTH-like
  static JobProfile IoHeavy();        ///< Nalu/Adagio-like restart dumps
  static JobProfile MetadataStorm();  ///< Figure 11 bands
  /// Figure 12: ramping, imbalanced memory that eventually trips the OOM
  /// killer. @p growth_kb_per_s is the mean per-node growth.
  static JobProfile MemoryRamp(double growth_kb_per_s);
};

struct JobSpec {
  std::uint64_t job_id = 0;
  std::string name;
  std::string user;
  int node_count = 1;
  TimeNs arrival = 0;
  DurationNs duration = kNsPerHour;
  JobProfile profile;
  /// Non-empty: run on exactly these nodes (allows deliberate overlap and
  /// system-wide events); empty: the scheduler places the job.
  std::vector<int> fixed_nodes;
};

struct JobRecord {
  JobSpec spec;
  std::vector<int> nodes;
  TimeNs start_time = 0;
  TimeNs end_time = 0;
  bool started = false;
  bool finished = false;
  bool oom_killed = false;
};

}  // namespace ldmsxx::sim
