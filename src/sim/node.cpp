#include "sim/node.hpp"

#include <algorithm>
#include <cmath>

namespace ldmsxx::sim {
namespace {

constexpr double kUserHz = 100.0;  // jiffies per second

std::uint64_t Jiffies(double cores, double seconds, Rng& rng) {
  const double exact = cores * seconds * kUserHz;
  // Stochastic rounding keeps long-run rates exact at coarse ticks.
  const auto whole = static_cast<std::uint64_t>(exact);
  return whole + (rng.NextDouble() < (exact - static_cast<double>(whole)) ? 1 : 0);
}

std::uint64_t Events(double rate_per_s, double seconds, Rng& rng) {
  const double exact = rate_per_s * seconds;
  const auto whole = static_cast<std::uint64_t>(exact);
  return whole + (rng.NextDouble() < (exact - static_cast<double>(whole)) ? 1 : 0);
}

}  // namespace

SimNode::SimNode(SimNodeConfig config, Rng rng)
    : config_(std::move(config)), rng_(rng) {
  // An idle node still runs an OS: ~1.5 GB kernel/cache resident on a big
  // node, proportionally less on small (test-sized) nodes.
  counters_.mem_cached_kb =
      std::min<std::uint64_t>(1200 * 1024, config_.mem_total_kb / 8);
  counters_.mem_buffers_kb =
      std::min<std::uint64_t>(80 * 1024, config_.mem_total_kb / 64);
  os_active_base_kb_ =
      std::min<std::uint64_t>(300 * 1024, config_.mem_total_kb / 32);
  counters_.mem_active_kb = os_active_base_kb_;
  counters_.mem_free_kb =
      config_.mem_total_kb - counters_.mem_cached_kb -
      counters_.mem_buffers_kb - counters_.mem_active_kb;
}

void SimNode::Tick(DurationNs dt) {
  const double seconds = static_cast<double>(dt) / static_cast<double>(kNsPerSec);
  const double total_cores = static_cast<double>(config_.cores);

  // Background OS activity: a few hundredths of a core of system time and
  // occasional daemon user time.
  const double os_sys = 0.01 + 0.01 * rng_.NextDouble();
  const double os_user = 0.005 * rng_.NextDouble();

  double user = std::min(demand_.cpu_user_cores + os_user, total_cores);
  double sys = std::min(demand_.cpu_sys_cores + os_sys, total_cores - user);
  double wait = std::min(demand_.cpu_wait_cores, total_cores - user - sys);
  double idle = std::max(0.0, total_cores - user - sys - wait);

  counters_.cpu_user += Jiffies(user, seconds, rng_);
  counters_.cpu_system += Jiffies(sys, seconds, rng_);
  counters_.cpu_iowait += Jiffies(wait, seconds, rng_);
  counters_.cpu_idle += Jiffies(idle, seconds, rng_);

  // Memory is level-based, not cumulative: jobs' active memory plus a
  // jittering OS baseline.
  const std::uint64_t os_active =
      os_active_base_kb_ +
      static_cast<std::uint64_t>(8.0 * 1024 * rng_.NextDouble());
  const std::uint64_t active =
      std::min(demand_.mem_active_kb + os_active, config_.mem_total_kb);
  counters_.mem_active_kb = active;
  const std::uint64_t used =
      active + counters_.mem_cached_kb + counters_.mem_buffers_kb;
  counters_.mem_free_kb =
      config_.mem_total_kb > used ? config_.mem_total_kb - used : 0;

  counters_.lustre_open += Events(demand_.lustre_opens_per_s, seconds, rng_);
  counters_.lustre_close += Events(demand_.lustre_closes_per_s, seconds, rng_);
  counters_.lustre_read += Events(demand_.lustre_reads_per_s, seconds, rng_);
  counters_.lustre_write += Events(demand_.lustre_writes_per_s, seconds, rng_);
  counters_.lustre_read_bytes +=
      static_cast<std::uint64_t>(demand_.lustre_read_bps * seconds);
  counters_.lustre_write_bytes +=
      static_cast<std::uint64_t>(demand_.lustre_write_bps * seconds);
  // Dirty-page cache behaviour: hits dominate while writes are streaming.
  counters_.lustre_dirty_pages_hits +=
      Events(demand_.lustre_write_bps / 4096.0 * 0.9, seconds, rng_);
  counters_.lustre_dirty_pages_misses +=
      Events(demand_.lustre_write_bps / 4096.0 * 0.1, seconds, rng_);

  counters_.nfs_ops += Events(demand_.nfs_ops_per_s, seconds, rng_);

  const auto eth_tx = static_cast<std::uint64_t>(demand_.eth_tx_bps * seconds);
  const auto eth_rx = static_cast<std::uint64_t>(demand_.eth_rx_bps * seconds);
  counters_.eth_tx_bytes += eth_tx;
  counters_.eth_rx_bytes += eth_rx;
  counters_.eth_tx_packets += eth_tx / 1400 + 1;
  counters_.eth_rx_packets += eth_rx / 1400 + 1;

  const auto ib_tx = static_cast<std::uint64_t>(demand_.ib_tx_bps * seconds);
  const auto ib_rx = static_cast<std::uint64_t>(demand_.ib_rx_bps * seconds);
  counters_.ib_port_xmit_data += ib_tx / 4;  // real counters are 4-byte units
  counters_.ib_port_rcv_data += ib_rx / 4;
  counters_.ib_port_xmit_pkts += ib_tx / 2048 + 1;
  counters_.ib_port_rcv_pkts += ib_rx / 2048 + 1;

  // Local scratch disk plus light OS housekeeping I/O.
  const double disk_read = demand_.disk_read_bps + 2.0e4 * rng_.NextDouble();
  const double disk_write = demand_.disk_write_bps + 5.0e4 * rng_.NextDouble();
  counters_.disk_sectors_read +=
      static_cast<std::uint64_t>(disk_read * seconds / 512.0);
  counters_.disk_sectors_written +=
      static_cast<std::uint64_t>(disk_write * seconds / 512.0);
  counters_.disk_reads_completed += Events(disk_read / 65536.0, seconds, rng_);
  counters_.disk_writes_completed +=
      Events(disk_write / 65536.0, seconds, rng_);

  // Paging: faults scale with CPU activity; major faults with disk reads.
  counters_.pgfault +=
      Events(demand_.page_faults_per_s + 200.0 * user + 20.0, seconds, rng_);
  counters_.pgmajfault += Events(disk_read / 1.0e6, seconds, rng_);
  counters_.pgpgin +=
      static_cast<std::uint64_t>(disk_read * seconds / 1024.0);
  counters_.pgpgout +=
      static_cast<std::uint64_t>(disk_write * seconds / 1024.0);

  // Power model: idle floor plus per-busy-core increment plus a small
  // network term; energy integrates power.
  const double busy = user + sys + wait;
  counters_.power_w = 95.0 + 11.5 * busy +
                      (demand_.ib_tx_bps + demand_.ib_rx_bps) / 1.0e9 * 4.0 +
                      2.0 * rng_.NextDouble();
  counters_.energy_j +=
      static_cast<std::uint64_t>(counters_.power_w * seconds);

  // Load average: exponentially smoothed runnable-task estimate.
  const double runnable = user + sys + wait;
  const double alpha = 1.0 - std::exp(-seconds / 60.0);
  counters_.loadavg_1m += alpha * (runnable - counters_.loadavg_1m);
}

bool SimNode::OomCondition() const {
  const auto threshold = static_cast<std::uint64_t>(
      config_.oom_fraction * static_cast<double>(config_.mem_total_kb));
  return demand_.mem_active_kb + counters_.mem_cached_kb +
             counters_.mem_buffers_kb >
         threshold;
}

}  // namespace ldmsxx::sim
