#include "sim/data_source.hpp"

#include <fstream>
#include <sstream>

namespace ldmsxx {

Status RealFsDataSource::Read(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) {
    return {ErrorCode::kNotFound, "cannot open " + path};
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return Status::Ok();
}

}  // namespace ldmsxx
