// Simulated compute node: the substrate behind /proc-style data sources.
// Jobs deposit per-tick resource demands; Tick() integrates them into the
// cumulative counters the kernel would keep (jiffies, bytes, operation
// counts), plus a little background OS activity so an idle node is not
// perfectly flat — the behaviour every sampler actually sees in production.
#pragma once

#include <cstdint>
#include <string>

#include "util/clock.hpp"
#include "util/rng.hpp"

namespace ldmsxx::sim {

struct SimNodeConfig {
  std::uint64_t node_id = 0;
  std::string hostname;               ///< e.g. "nid00042"
  std::uint64_t mem_total_kb = 64ull * 1024 * 1024;  ///< 64 GB default
  unsigned cores = 16;
  /// Per-node OOM threshold: a job pushing Active beyond this is killed.
  double oom_fraction = 0.98;
};

/// Per-tick resource demand aggregated over the jobs on this node.
struct NodeDemand {
  double cpu_user_cores = 0.0;  ///< cores of user time demanded
  double cpu_sys_cores = 0.0;
  double cpu_wait_cores = 0.0;
  std::uint64_t mem_active_kb = 0;  ///< job anonymous/active memory
  double lustre_opens_per_s = 0.0;
  double lustre_closes_per_s = 0.0;
  double lustre_reads_per_s = 0.0;
  double lustre_writes_per_s = 0.0;
  double lustre_read_bps = 0.0;
  double lustre_write_bps = 0.0;
  double nfs_ops_per_s = 0.0;
  double eth_tx_bps = 0.0;
  double eth_rx_bps = 0.0;
  double ib_tx_bps = 0.0;
  double ib_rx_bps = 0.0;
  /// Node-local scratch disk traffic.
  double disk_read_bps = 0.0;
  double disk_write_bps = 0.0;
  /// Page-fault pressure (faults per second beyond the OS baseline).
  double page_faults_per_s = 0.0;
};

/// Cumulative kernel-style counters (monotonic).
struct NodeCounters {
  // /proc/stat, USER_HZ=100 jiffies
  std::uint64_t cpu_user = 0;
  std::uint64_t cpu_nice = 0;
  std::uint64_t cpu_system = 0;
  std::uint64_t cpu_idle = 0;
  std::uint64_t cpu_iowait = 0;
  // /proc/meminfo, kB
  std::uint64_t mem_free_kb = 0;
  std::uint64_t mem_active_kb = 0;
  std::uint64_t mem_cached_kb = 0;
  std::uint64_t mem_buffers_kb = 0;
  // Lustre llite counters
  std::uint64_t lustre_open = 0;
  std::uint64_t lustre_close = 0;
  std::uint64_t lustre_read = 0;
  std::uint64_t lustre_write = 0;
  std::uint64_t lustre_read_bytes = 0;
  std::uint64_t lustre_write_bytes = 0;
  std::uint64_t lustre_dirty_pages_hits = 0;
  std::uint64_t lustre_dirty_pages_misses = 0;
  // NFS
  std::uint64_t nfs_ops = 0;
  // Ethernet (/proc/net/dev)
  std::uint64_t eth_rx_bytes = 0;
  std::uint64_t eth_rx_packets = 0;
  std::uint64_t eth_tx_bytes = 0;
  std::uint64_t eth_tx_packets = 0;
  // Infiniband port counters (units of 4 bytes, like the real ones)
  std::uint64_t ib_port_xmit_data = 0;
  std::uint64_t ib_port_rcv_data = 0;
  std::uint64_t ib_port_xmit_pkts = 0;
  std::uint64_t ib_port_rcv_pkts = 0;
  // /proc/diskstats (sda)
  std::uint64_t disk_reads_completed = 0;
  std::uint64_t disk_sectors_read = 0;
  std::uint64_t disk_writes_completed = 0;
  std::uint64_t disk_sectors_written = 0;
  // /proc/vmstat
  std::uint64_t pgfault = 0;
  std::uint64_t pgmajfault = 0;
  std::uint64_t pgpgin = 0;   // KiB paged in
  std::uint64_t pgpgout = 0;  // KiB paged out
  // Power (Cray pm_counters shape): instantaneous watts + cumulative joules
  double power_w = 0.0;
  std::uint64_t energy_j = 0;
  // load average (not cumulative)
  double loadavg_1m = 0.0;
};

class SimNode {
 public:
  SimNode(SimNodeConfig config, Rng rng);

  const SimNodeConfig& config() const { return config_; }
  const NodeCounters& counters() const { return counters_; }

  /// Replace this tick's demand (cluster aggregates jobs before calling).
  void SetDemand(const NodeDemand& demand) { demand_ = demand; }
  const NodeDemand& demand() const { return demand_; }

  /// Integrate @p dt of activity into the counters.
  void Tick(DurationNs dt);

  /// True when demanded active memory exceeds the OOM threshold this tick.
  bool OomCondition() const;

 private:
  SimNodeConfig config_;
  Rng rng_;
  NodeDemand demand_;
  NodeCounters counters_;
  std::uint64_t os_active_base_kb_ = 0;
};

}  // namespace ldmsxx::sim
