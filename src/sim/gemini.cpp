#include "sim/gemini.hpp"

#include <cassert>

namespace ldmsxx::sim {

const char* LinkDirName(LinkDir dir) {
  switch (dir) {
    case LinkDir::kXPlus: return "X+";
    case LinkDir::kXMinus: return "X-";
    case LinkDir::kYPlus: return "Y+";
    case LinkDir::kYMinus: return "Y-";
    case LinkDir::kZPlus: return "Z+";
    case LinkDir::kZMinus: return "Z-";
  }
  return "?";
}

GeminiTorus::GeminiTorus(TorusDims dims, Rng rng)
    : dims_(dims),
      rng_(rng),
      links_(static_cast<std::size_t>(dims.gemini_count()) * kLinkDirs),
      demand_(links_.size(), 0.0) {}

Coord GeminiTorus::CoordOf(int gemini) const {
  Coord c;
  c.x = gemini % dims_.x;
  c.y = (gemini / dims_.x) % dims_.y;
  c.z = gemini / (dims_.x * dims_.y);
  return c;
}

int GeminiTorus::IndexOf(const Coord& c) const {
  return c.x + dims_.x * (c.y + dims_.y * c.z);
}

double GeminiTorus::LinkCapacity(LinkDir dir) const {
  // Approximate Gemini media bandwidths: X and Z use faster backplane/cable
  // links than Y (bytes/second).
  switch (dir) {
    case LinkDir::kXPlus:
    case LinkDir::kXMinus:
    case LinkDir::kZPlus:
    case LinkDir::kZMinus:
      return 9.375e9;
    case LinkDir::kYPlus:
    case LinkDir::kYMinus:
      return 4.6875e9;
  }
  return 9.375e9;
}

int GeminiTorus::Neighbor(int gemini, LinkDir dir) const {
  Coord c = CoordOf(gemini);
  switch (dir) {
    case LinkDir::kXPlus: c.x = (c.x + 1) % dims_.x; break;
    case LinkDir::kXMinus: c.x = (c.x + dims_.x - 1) % dims_.x; break;
    case LinkDir::kYPlus: c.y = (c.y + 1) % dims_.y; break;
    case LinkDir::kYMinus: c.y = (c.y + dims_.y - 1) % dims_.y; break;
    case LinkDir::kZPlus: c.z = (c.z + 1) % dims_.z; break;
    case LinkDir::kZMinus: c.z = (c.z + dims_.z - 1) % dims_.z; break;
  }
  return IndexOf(c);
}

namespace {

/// Steps and direction along one dimension with torus wrap; positive
/// distance ties choose the plus direction (deterministic routing).
std::pair<int, bool> WrapSteps(int from, int to, int extent) {
  int forward = to - from;
  if (forward < 0) forward += extent;
  const int backward = extent - forward;
  if (forward == 0) return {0, true};
  if (forward <= backward) return {forward, true};
  return {backward, false};
}

}  // namespace

void GeminiTorus::Route(int src_gemini, int dst_gemini,
                        std::vector<std::pair<int, LinkDir>>* hops) const {
  Coord cur = CoordOf(src_gemini);
  const Coord dst = CoordOf(dst_gemini);

  struct Dim {
    int Coord::*member;
    int extent;
    LinkDir plus;
    LinkDir minus;
  };
  const Dim dims[3] = {
      {&Coord::x, dims_.x, LinkDir::kXPlus, LinkDir::kXMinus},
      {&Coord::y, dims_.y, LinkDir::kYPlus, LinkDir::kYMinus},
      {&Coord::z, dims_.z, LinkDir::kZPlus, LinkDir::kZMinus},
  };
  for (const Dim& dim : dims) {
    auto [steps, plus] = WrapSteps(cur.*dim.member, dst.*dim.member, dim.extent);
    const LinkDir dir = plus ? dim.plus : dim.minus;
    for (int s = 0; s < steps; ++s) {
      hops->emplace_back(IndexOf(cur), dir);
      cur.*dim.member =
          plus ? (cur.*dim.member + 1) % dim.extent
               : (cur.*dim.member + dim.extent - 1) % dim.extent;
    }
  }
  assert(IndexOf(cur) == dst_gemini);
}

void GeminiTorus::SetLinkUp(int gemini, LinkDir dir, bool up) {
  links_[LinkIndex(gemini, dir)].up = up;
}

void GeminiTorus::Tick(DurationNs dt) {
  const double seconds = static_cast<double>(dt) / static_cast<double>(kNsPerSec);
  std::fill(demand_.begin(), demand_.end(), 0.0);

  // OS/background traffic: a trickle on every link so counters are never
  // perfectly silent (the paper separates "Operating System Traffic
  // Bandwidth" as its own metric).
  constexpr double kOsBps = 2.0e5;
  for (double& d : demand_) d = kOsBps * (0.5 + rng_.NextDouble());

  std::vector<std::pair<int, LinkDir>> hops;
  for (const Flow& flow : flows_) {
    hops.clear();
    Route(flow.src_gemini, flow.dst_gemini, &hops);
    for (const auto& [gemini, dir] : hops) {
      demand_[LinkIndex(gemini, dir)] += flow.bytes_per_s;
    }
  }

  for (std::size_t i = 0; i < links_.size(); ++i) {
    LinkCounters& link = links_[i];
    const auto dir = static_cast<LinkDir>(i % kLinkDirs);
    const double capacity = LinkCapacity(dir);
    link.elapsed_ns += dt;
    if (!link.up) {
      // Down link: nothing delivered; senders stall the whole tick.
      link.last_utilization = 0.0;
      link.last_stall_fraction = demand_[i] > 0.0 ? 1.0 : 0.0;
      link.stalled_ns += demand_[i] > 0.0 ? dt : 0;
      continue;
    }
    const double demanded = demand_[i];
    const double delivered = std::min(demanded, capacity);
    const double stall_fraction =
        demanded > capacity ? (demanded - capacity) / demanded : 0.0;
    link.traffic_bytes +=
        static_cast<std::uint64_t>(delivered * seconds);
    link.packets += static_cast<std::uint64_t>(delivered * seconds / 64.0);
    link.stalled_ns +=
        static_cast<std::uint64_t>(stall_fraction * static_cast<double>(dt));
    link.last_utilization = delivered / capacity;
    link.last_stall_fraction = stall_fraction;
  }
}

}  // namespace ldmsxx::sim
