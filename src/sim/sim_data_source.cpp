// Rendering of /proc- and /sys-style text for simulated nodes. The formats
// deliberately mimic the real kernel interfaces so sampler plugins exercise
// genuine parsing work per sample — the cost the paper's overhead numbers
// (1.3 us/metric, §IV-E) are made of.
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <string>

#include "sim/cluster.hpp"

namespace ldmsxx::sim {
namespace {

void AppendF(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  out->append(buf, static_cast<std::size_t>(n));
}

std::string RenderMeminfo(const SimNode& node) {
  const NodeCounters& c = node.counters();
  std::string out;
  out.reserve(512);
  AppendF(&out, "MemTotal:       %" PRIu64 " kB\n", node.config().mem_total_kb);
  AppendF(&out, "MemFree:        %" PRIu64 " kB\n", c.mem_free_kb);
  AppendF(&out, "Buffers:        %" PRIu64 " kB\n", c.mem_buffers_kb);
  AppendF(&out, "Cached:         %" PRIu64 " kB\n", c.mem_cached_kb);
  AppendF(&out, "Active:         %" PRIu64 " kB\n", c.mem_active_kb);
  AppendF(&out, "Inactive:       %" PRIu64 " kB\n", c.mem_cached_kb / 2);
  AppendF(&out, "SwapTotal:      0 kB\nSwapFree:       0 kB\n");
  return out;
}

std::string RenderProcStat(const SimNode& node) {
  const NodeCounters& c = node.counters();
  std::string out;
  out.reserve(1024);
  AppendF(&out,
          "cpu  %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64
          " 0 0 0 0 0\n",
          c.cpu_user, c.cpu_nice, c.cpu_system, c.cpu_idle, c.cpu_iowait);
  // Per-core lines: activity split evenly (samplers that want per-core data
  // parse these; ours uses the aggregate).
  const auto cores = static_cast<std::uint64_t>(node.config().cores);
  for (std::uint64_t i = 0; i < cores; ++i) {
    AppendF(&out,
            "cpu%" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64
            " %" PRIu64 " 0 0 0 0 0\n",
            i, c.cpu_user / cores, c.cpu_nice / cores, c.cpu_system / cores,
            c.cpu_idle / cores, c.cpu_iowait / cores);
  }
  AppendF(&out, "intr %" PRIu64 "\n", c.cpu_user + c.cpu_system);
  AppendF(&out, "ctxt %" PRIu64 "\n", (c.cpu_user + c.cpu_system) * 3);
  AppendF(&out, "btime 0\nprocesses 1000\nprocs_running 1\nprocs_blocked 0\n");
  return out;
}

std::string RenderLoadavg(const SimNode& node) {
  std::string out;
  const double load = node.counters().loadavg_1m;
  AppendF(&out, "%.2f %.2f %.2f 1/500 12345\n", load, load * 0.95,
          load * 0.9);
  return out;
}

std::string RenderNetDev(const SimNode& node) {
  const NodeCounters& c = node.counters();
  std::string out;
  out +=
      "Inter-|   Receive                                                |  "
      "Transmit\n"
      " face |bytes    packets errs drop fifo frame compressed multicast|"
      "bytes    packets errs drop fifo colls carrier compressed\n";
  AppendF(&out,
          "  eth0: %" PRIu64 " %" PRIu64
          " 0 0 0 0 0 0 %" PRIu64 " %" PRIu64 " 0 0 0 0 0 0\n",
          c.eth_rx_bytes, c.eth_rx_packets, c.eth_tx_bytes, c.eth_tx_packets);
  return out;
}

std::string RenderLustreStats(const SimNode& node, TimeNs now) {
  const NodeCounters& c = node.counters();
  std::string out;
  out.reserve(512);
  AppendF(&out, "snapshot_time             %" PRIu64 ".%06" PRIu64
          " secs.usecs\n",
          now / kNsPerSec, (now % kNsPerSec) / kNsPerUs);
  AppendF(&out, "dirty_pages_hits          %" PRIu64 " samples [regs]\n",
          c.lustre_dirty_pages_hits);
  AppendF(&out, "dirty_pages_misses        %" PRIu64 " samples [regs]\n",
          c.lustre_dirty_pages_misses);
  AppendF(&out, "read_bytes                %" PRIu64
          " samples [bytes] 0 1048576 %" PRIu64 "\n",
          c.lustre_read, c.lustre_read_bytes);
  AppendF(&out, "write_bytes               %" PRIu64
          " samples [bytes] 0 1048576 %" PRIu64 "\n",
          c.lustre_write, c.lustre_write_bytes);
  AppendF(&out, "open                      %" PRIu64 " samples [regs]\n",
          c.lustre_open);
  AppendF(&out, "close                     %" PRIu64 " samples [regs]\n",
          c.lustre_close);
  return out;
}

std::string RenderNfs(const SimNode& node) {
  std::string out;
  AppendF(&out, "rpc %" PRIu64 " 0 0\n", node.counters().nfs_ops);
  return out;
}

std::string RenderVmstat(const SimNode& node) {
  const NodeCounters& c = node.counters();
  std::string out;
  AppendF(&out, "nr_free_pages %" PRIu64 "\n", c.mem_free_kb / 4);
  AppendF(&out, "pgpgin %" PRIu64 "\n", c.pgpgin);
  AppendF(&out, "pgpgout %" PRIu64 "\n", c.pgpgout);
  AppendF(&out, "pswpin 0\npswpout 0\n");
  AppendF(&out, "pgfault %" PRIu64 "\n", c.pgfault);
  AppendF(&out, "pgmajfault %" PRIu64 "\n", c.pgmajfault);
  return out;
}

std::string RenderDiskstats(const SimNode& node) {
  const NodeCounters& c = node.counters();
  std::string out;
  // major minor name reads merges sectors ms writes merges sectors ms ...
  AppendF(&out,
          "   8       0 sda %" PRIu64 " 0 %" PRIu64 " 0 %" PRIu64
          " 0 %" PRIu64 " 0 0 0 0\n",
          c.disk_reads_completed, c.disk_sectors_read,
          c.disk_writes_completed, c.disk_sectors_written);
  return out;
}

std::string RenderGpcdr(const SimCluster& cluster, int node_id) {
  const GeminiTorus* torus = cluster.torus();
  std::string out;
  out.reserve(1024);
  const int gemini = GeminiTorus::GeminiOfNode(node_id);
  for (std::size_t d = 0; d < kLinkDirs; ++d) {
    const auto dir = static_cast<LinkDir>(d);
    const LinkCounters& link = torus->link(gemini, dir);
    const char* name = LinkDirName(dir);
    AppendF(&out, "%s_traffic %" PRIu64 "\n", name, link.traffic_bytes);
    AppendF(&out, "%s_packets %" PRIu64 "\n", name, link.packets);
    AppendF(&out, "%s_stalled %" PRIu64 "\n", name, link.stalled_ns);
    AppendF(&out, "%s_linkstatus %d\n", name, link.up ? 1 : 0);
    AppendF(&out, "%s_max_bw %.0f\n", name, torus->LinkCapacity(dir));
  }
  return out;
}

}  // namespace

Status SimNodeDataSource::Read(const std::string& path, std::string* out) {
  const SimNode& node = cluster_->node(node_id_);
  if (path == "/proc/meminfo") {
    *out = RenderMeminfo(node);
    return Status::Ok();
  }
  if (path == "/proc/stat") {
    *out = RenderProcStat(node);
    return Status::Ok();
  }
  if (path == "/proc/loadavg") {
    *out = RenderLoadavg(node);
    return Status::Ok();
  }
  if (path == "/proc/net/dev") {
    *out = RenderNetDev(node);
    return Status::Ok();
  }
  if (path == "/proc/fs/lustre/llite/snx11024/stats") {
    *out = RenderLustreStats(node, cluster_->now());
    return Status::Ok();
  }
  if (path == "/proc/net/rpc/nfs") {
    *out = RenderNfs(node);
    return Status::Ok();
  }
  if (path == "/proc/vmstat") {
    *out = RenderVmstat(node);
    return Status::Ok();
  }
  if (path == "/proc/diskstats") {
    *out = RenderDiskstats(node);
    return Status::Ok();
  }
  if (path == "/sys/cray/pm_counters/power") {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f W\n", node.counters().power_w);
    *out = buf;
    return Status::Ok();
  }
  if (path == "/sys/cray/pm_counters/energy") {
    *out = std::to_string(node.counters().energy_j) + " J\n";
    return Status::Ok();
  }
  if (path == "/sys/class/infiniband/mlx5_0/ports/1/counters/port_xmit_data") {
    *out = std::to_string(node.counters().ib_port_xmit_data) + "\n";
    return Status::Ok();
  }
  if (path == "/sys/class/infiniband/mlx5_0/ports/1/counters/port_rcv_data") {
    *out = std::to_string(node.counters().ib_port_rcv_data) + "\n";
    return Status::Ok();
  }
  if (path == "/sys/class/infiniband/mlx5_0/ports/1/counters/port_xmit_packets") {
    *out = std::to_string(node.counters().ib_port_xmit_pkts) + "\n";
    return Status::Ok();
  }
  if (path == "/sys/class/infiniband/mlx5_0/ports/1/counters/port_rcv_packets") {
    *out = std::to_string(node.counters().ib_port_rcv_pkts) + "\n";
    return Status::Ok();
  }
  if (path == "/sys/devices/virtual/gni/gpcdr0/metricsets/links/metrics") {
    if (cluster_->torus() == nullptr) {
      return {ErrorCode::kNotFound, "no HSN on this cluster"};
    }
    *out = RenderGpcdr(*cluster_, node_id_);
    return Status::Ok();
  }
  return {ErrorCode::kNotFound, "no such simulated path: " + path};
}

}  // namespace ldmsxx::sim
