#include "sampler/samplers.hpp"

#include "daemon/plugin_registry.hpp"

namespace ldmsxx {

void RegisterBuiltinSamplers(NodeDataSourcePtr default_source) {
  if (default_source == nullptr) {
    default_source = std::make_shared<RealFsDataSource>();
  }
  auto& registry = PluginRegistry::Instance();
  auto add = [&](const std::string& name, auto make) {
    registry.AddSampler(name, [default_source, make](const PluginParams&) {
      return make(default_source);
    });
  };
  add("meminfo", [](NodeDataSourcePtr s) {
    return std::make_shared<MeminfoSampler>(std::move(s));
  });
  add("procstat", [](NodeDataSourcePtr s) {
    return std::make_shared<ProcStatSampler>(std::move(s));
  });
  add("loadavg", [](NodeDataSourcePtr s) {
    return std::make_shared<LoadAvgSampler>(std::move(s));
  });
  add("lustre", [](NodeDataSourcePtr s) {
    return std::make_shared<LustreSampler>(std::move(s));
  });
  add("nfs", [](NodeDataSourcePtr s) {
    return std::make_shared<NfsSampler>(std::move(s));
  });
  add("netdev", [](NodeDataSourcePtr s) {
    return std::make_shared<NetDevSampler>(std::move(s));
  });
  add("sysclassib", [](NodeDataSourcePtr s) {
    return std::make_shared<IbnetSampler>(std::move(s));
  });
  add("gpcdr", [](NodeDataSourcePtr s) {
    return std::make_shared<GpcdrSampler>(std::move(s));
  });
  add("vmstat", [](NodeDataSourcePtr s) {
    return std::make_shared<VmstatSampler>(std::move(s));
  });
  add("diskstats", [](NodeDataSourcePtr s) {
    return std::make_shared<DiskstatsSampler>(std::move(s));
  });
  add("cray_power", [](NodeDataSourcePtr s) {
    return std::make_shared<PowerSampler>(std::move(s));
  });
  add("synthetic", [](NodeDataSourcePtr s) {
    return std::make_shared<SyntheticSampler>(std::move(s));
  });
}

}  // namespace ldmsxx
