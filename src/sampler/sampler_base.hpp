// Common machinery for sampler plugins: set creation at Init, transaction
// wrapping around each sample, and buffered data-source reads. Subclasses
// define their schema once and refresh values on every Sample() — memory for
// the metric set "is overwritten by each successive sampling and no sample
// history is retained within a plugin or the host daemon" (§IV).
#pragma once

#include <string>

#include "daemon/plugin.hpp"
#include "sim/data_source.hpp"

namespace ldmsxx {

class SamplerBase : public SamplerPlugin {
 public:
  /// @param plugin_name plugin ("meminfo", "procstat", ...)
  /// @param source      where Read()s are served from (real fs or sim node)
  SamplerBase(std::string plugin_name, NodeDataSourcePtr source);

  const std::string& name() const override { return name_; }

  Status Init(MemManager& mem, SetRegistry& sets,
              const PluginParams& params) final;

  Status Sample(TimeNs now) final;

  std::vector<MetricSetPtr> Sets() const override;

 protected:
  /// Add this plugin's metrics to @p schema (called once from Init).
  virtual Status DefineSchema(Schema& schema, const PluginParams& params) = 0;

  /// Refresh the metric values; runs inside a Begin/EndTransaction pair.
  virtual Status UpdateMetrics(TimeNs now) = 0;

  MetricSet& set() { return *set_; }
  NodeDataSource& source() { return *source_; }

  /// Read @p path into the reusable buffer (no per-sample allocation once
  /// the buffer has grown to its working size).
  Status ReadSource(const std::string& path);
  const std::string& buffer() const { return buf_; }

 private:
  std::string name_;
  NodeDataSourcePtr source_;
  MetricSetPtr set_;
  std::string buf_;
};

}  // namespace ldmsxx
