// vmstat, diskstats, cray_power samplers.
#include "sampler/samplers.hpp"

#include "util/strings.hpp"

namespace ldmsxx {
namespace {

constexpr const char* kVmstatFields[] = {"pgpgin", "pgpgout", "pgfault",
                                         "pgmajfault"};
constexpr std::size_t kVmstatCount = std::size(kVmstatFields);

}  // namespace

// --------------------------------------------------------------------------
// vmstat
// --------------------------------------------------------------------------

Status VmstatSampler::DefineSchema(Schema& schema, const PluginParams&) {
  for (const char* field : kVmstatFields) {
    schema.AddMetric(field, MetricType::kU64);
  }
  return Status::Ok();
}

Status VmstatSampler::UpdateMetrics(TimeNs) {
  Status st = ReadSource("/proc/vmstat");
  if (!st.ok()) return st;
  for (std::string_view line : Split(buffer(), '\n')) {
    auto fields = SplitWhitespace(line);
    if (fields.size() < 2) continue;
    for (std::size_t i = 0; i < kVmstatCount; ++i) {
      if (fields[0] != kVmstatFields[i]) continue;
      if (auto v = ParseU64(fields[1])) set().SetU64(i, *v);
      break;
    }
  }
  return Status::Ok();
}

// --------------------------------------------------------------------------
// diskstats
// --------------------------------------------------------------------------

Status DiskstatsSampler::DefineSchema(Schema& schema, const PluginParams&) {
  schema.AddMetric("reads_completed#sda", MetricType::kU64);
  schema.AddMetric("sectors_read#sda", MetricType::kU64);
  schema.AddMetric("writes_completed#sda", MetricType::kU64);
  schema.AddMetric("sectors_written#sda", MetricType::kU64);
  return Status::Ok();
}

Status DiskstatsSampler::UpdateMetrics(TimeNs) {
  Status st = ReadSource("/proc/diskstats");
  if (!st.ok()) return st;
  for (std::string_view line : Split(buffer(), '\n')) {
    auto fields = SplitWhitespace(line);
    // major minor name reads merges sectors ms writes merges sectors ms...
    if (fields.size() < 10 || fields[2] != "sda") continue;
    if (auto v = ParseU64(fields[3])) set().SetU64(0, *v);
    if (auto v = ParseU64(fields[5])) set().SetU64(1, *v);
    if (auto v = ParseU64(fields[7])) set().SetU64(2, *v);
    if (auto v = ParseU64(fields[9])) set().SetU64(3, *v);
    break;
  }
  return Status::Ok();
}

// --------------------------------------------------------------------------
// cray_power
// --------------------------------------------------------------------------

Status PowerSampler::DefineSchema(Schema& schema, const PluginParams&) {
  schema.AddMetric("power", MetricType::kD64);   // watts, instantaneous
  schema.AddMetric("energy", MetricType::kU64);  // joules, cumulative
  return Status::Ok();
}

Status PowerSampler::UpdateMetrics(TimeNs) {
  Status st = ReadSource("/sys/cray/pm_counters/power");
  if (!st.ok()) return st;
  {
    auto fields = SplitWhitespace(buffer());
    if (!fields.empty()) {
      if (auto v = ParseDouble(fields[0])) set().SetD64(0, *v);
    }
  }
  st = ReadSource("/sys/cray/pm_counters/energy");
  if (!st.ok()) return st;
  auto fields = SplitWhitespace(buffer());
  if (!fields.empty()) {
    if (auto v = ParseU64(fields[0])) set().SetU64(1, *v);
  }
  return Status::Ok();
}

}  // namespace ldmsxx
