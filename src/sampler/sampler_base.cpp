#include "sampler/sampler_base.hpp"

#include "util/strings.hpp"

namespace ldmsxx {

SamplerBase::SamplerBase(std::string plugin_name, NodeDataSourcePtr source)
    : name_(std::move(plugin_name)), source_(std::move(source)) {}

Status SamplerBase::Init(MemManager& mem, SetRegistry& sets,
                         const PluginParams& params) {
  std::string producer = "localhost";
  if (auto it = params.find("producer"); it != params.end())
    producer = it->second;
  std::string instance = producer + "/" + name_;
  if (auto it = params.find("instance"); it != params.end())
    instance = it->second;
  std::uint64_t component_id = 0;
  if (auto it = params.find("component_id"); it != params.end()) {
    if (auto v = ParseU64(it->second)) component_id = *v;
  }

  Schema schema(name_);
  Status st = DefineSchema(schema, params);
  if (!st.ok()) return st;

  Status create_st;
  set_ = MetricSet::Create(mem, schema, instance, producer, component_id,
                           &create_st);
  if (set_ == nullptr) return create_st;
  return sets.Add(set_);
}

Status SamplerBase::Sample(TimeNs now) {
  set_->BeginTransaction();
  Status st = UpdateMetrics(now);
  set_->EndTransaction(now);
  return st;
}

std::vector<MetricSetPtr> SamplerBase::Sets() const {
  if (set_ == nullptr) return {};
  return {set_};
}

Status SamplerBase::ReadSource(const std::string& path) {
  buf_.clear();
  return source_->Read(path, &buf_);
}

}  // namespace ldmsxx
