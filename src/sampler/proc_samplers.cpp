// meminfo, procstat, loadavg, netdev, nfs: the /proc text parsers.
#include "sampler/samplers.hpp"

#include "util/strings.hpp"

namespace ldmsxx {
namespace {

constexpr const char* kMeminfoFields[] = {"MemTotal", "MemFree", "Buffers",
                                          "Cached",   "Active",  "Inactive"};
constexpr std::size_t kMeminfoCount = std::size(kMeminfoFields);

constexpr const char* kCpuFields[] = {"user", "nice", "sys", "idle", "iowait"};
constexpr std::size_t kCpuCount = std::size(kCpuFields);

}  // namespace

// --------------------------------------------------------------------------
// meminfo
// --------------------------------------------------------------------------

Status MeminfoSampler::DefineSchema(Schema& schema, const PluginParams&) {
  for (const char* field : kMeminfoFields) {
    schema.AddMetric(field, MetricType::kU64);
  }
  return Status::Ok();
}

Status MeminfoSampler::UpdateMetrics(TimeNs) {
  Status st = ReadSource("/proc/meminfo");
  if (!st.ok()) return st;
  for (std::string_view line : Split(buffer(), '\n')) {
    const auto colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    const std::string_view key = line.substr(0, colon);
    for (std::size_t i = 0; i < kMeminfoCount; ++i) {
      if (key != kMeminfoFields[i]) continue;
      auto fields = SplitWhitespace(line.substr(colon + 1));
      if (!fields.empty()) {
        if (auto v = ParseU64(fields[0])) set().SetU64(i, *v);
      }
      break;
    }
  }
  return Status::Ok();
}

// --------------------------------------------------------------------------
// procstat
// --------------------------------------------------------------------------

Status ProcStatSampler::DefineSchema(Schema& schema, const PluginParams&) {
  for (const char* field : kCpuFields) {
    schema.AddMetric(field, MetricType::kU64);
  }
  return Status::Ok();
}

Status ProcStatSampler::UpdateMetrics(TimeNs) {
  Status st = ReadSource("/proc/stat");
  if (!st.ok()) return st;
  for (std::string_view line : Split(buffer(), '\n')) {
    if (!StartsWith(line, "cpu ")) continue;
    auto fields = SplitWhitespace(line);
    // "cpu user nice system idle iowait ..."
    for (std::size_t i = 0; i < kCpuCount && i + 1 < fields.size(); ++i) {
      if (auto v = ParseU64(fields[i + 1])) set().SetU64(i, *v);
    }
    break;
  }
  return Status::Ok();
}

// --------------------------------------------------------------------------
// loadavg
// --------------------------------------------------------------------------

Status LoadAvgSampler::DefineSchema(Schema& schema, const PluginParams&) {
  schema.AddMetric("load1", MetricType::kD64);
  schema.AddMetric("load5", MetricType::kD64);
  schema.AddMetric("load15", MetricType::kD64);
  return Status::Ok();
}

Status LoadAvgSampler::UpdateMetrics(TimeNs) {
  Status st = ReadSource("/proc/loadavg");
  if (!st.ok()) return st;
  auto fields = SplitWhitespace(buffer());
  for (std::size_t i = 0; i < 3 && i < fields.size(); ++i) {
    if (auto v = ParseDouble(fields[i])) set().SetD64(i, *v);
  }
  return Status::Ok();
}

// --------------------------------------------------------------------------
// netdev (eth0)
// --------------------------------------------------------------------------

Status NetDevSampler::DefineSchema(Schema& schema, const PluginParams&) {
  schema.AddMetric("rx_bytes#eth0", MetricType::kU64);
  schema.AddMetric("rx_packets#eth0", MetricType::kU64);
  schema.AddMetric("tx_bytes#eth0", MetricType::kU64);
  schema.AddMetric("tx_packets#eth0", MetricType::kU64);
  return Status::Ok();
}

Status NetDevSampler::UpdateMetrics(TimeNs) {
  Status st = ReadSource("/proc/net/dev");
  if (!st.ok()) return st;
  for (std::string_view line : Split(buffer(), '\n')) {
    const auto colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    if (Trim(line.substr(0, colon)) != "eth0") continue;
    auto fields = SplitWhitespace(line.substr(colon + 1));
    // rx: bytes packets ... (8 fields), then tx: bytes packets ...
    if (fields.size() >= 10) {
      if (auto v = ParseU64(fields[0])) set().SetU64(0, *v);
      if (auto v = ParseU64(fields[1])) set().SetU64(1, *v);
      if (auto v = ParseU64(fields[8])) set().SetU64(2, *v);
      if (auto v = ParseU64(fields[9])) set().SetU64(3, *v);
    }
    break;
  }
  return Status::Ok();
}

// --------------------------------------------------------------------------
// nfs
// --------------------------------------------------------------------------

Status NfsSampler::DefineSchema(Schema& schema, const PluginParams&) {
  schema.AddMetric("rpc_ops", MetricType::kU64);
  return Status::Ok();
}

Status NfsSampler::UpdateMetrics(TimeNs) {
  Status st = ReadSource("/proc/net/rpc/nfs");
  if (!st.ok()) return st;
  for (std::string_view line : Split(buffer(), '\n')) {
    if (!StartsWith(line, "rpc ")) continue;
    auto fields = SplitWhitespace(line);
    if (fields.size() >= 2) {
      if (auto v = ParseU64(fields[1])) set().SetU64(0, *v);
    }
    break;
  }
  return Status::Ok();
}

}  // namespace ldmsxx
