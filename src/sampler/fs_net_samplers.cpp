// lustre, sysclassib (Infiniband), gpcdr (Gemini HSN), synthetic.
#include "sampler/samplers.hpp"

#include "util/strings.hpp"

namespace ldmsxx {
namespace {

// Lustre llite stats entries we publish; names carry the filesystem suffix
// exactly as the paper shows them ("open#stats.snx11024").
constexpr const char* kLustreFields[] = {
    "dirty_pages_hits", "dirty_pages_misses", "read_bytes", "write_bytes",
    "open",             "close"};
constexpr std::size_t kLustreCount = std::size(kLustreFields);

constexpr const char* kIbCounters[] = {
    "port_xmit_data", "port_rcv_data", "port_xmit_packets",
    "port_rcv_packets"};
constexpr std::size_t kIbCount = std::size(kIbCounters);

// Per-direction gpcdr metric layout: 4 raw + 2 derived metrics per link
// direction, directions ordered as sim::LinkDir.
constexpr std::size_t kGpcdrPerDir = 6;
constexpr std::size_t kRawTraffic = 0;
constexpr std::size_t kRawPackets = 1;
constexpr std::size_t kRawStalled = 2;
constexpr std::size_t kRawStatus = 3;
constexpr std::size_t kDerivedPctStall = 4;
constexpr std::size_t kDerivedPctBw = 5;

}  // namespace

// --------------------------------------------------------------------------
// lustre
// --------------------------------------------------------------------------

Status LustreSampler::DefineSchema(Schema& schema,
                                   const PluginParams& params) {
  if (auto it = params.find("fs"); it != params.end()) fs_ = it->second;
  for (const char* field : kLustreFields) {
    schema.AddMetric(std::string(field) + "#stats." + fs_, MetricType::kU64);
  }
  return Status::Ok();
}

Status LustreSampler::UpdateMetrics(TimeNs) {
  Status st = ReadSource("/proc/fs/lustre/llite/" + fs_ + "/stats");
  if (!st.ok()) return st;
  for (std::string_view line : Split(buffer(), '\n')) {
    auto fields = SplitWhitespace(line);
    if (fields.size() < 2) continue;
    for (std::size_t i = 0; i < kLustreCount; ++i) {
      if (fields[0] != kLustreFields[i]) continue;
      // "*_bytes" entries report "<name> <count> samples [bytes] <min>
      // <max> <sum>": we publish the byte sum; plain entries publish the
      // count.
      std::optional<std::uint64_t> v;
      if (fields.size() >= 7 && fields[3] == "[bytes]") {
        v = ParseU64(fields[6]);
      } else {
        v = ParseU64(fields[1]);
      }
      if (v) set().SetU64(i, *v);
      break;
    }
  }
  return Status::Ok();
}

// --------------------------------------------------------------------------
// sysclassib
// --------------------------------------------------------------------------

Status IbnetSampler::DefineSchema(Schema& schema, const PluginParams&) {
  for (const char* counter : kIbCounters) {
    schema.AddMetric(std::string(counter) + "#mlx5_0.1", MetricType::kU64);
  }
  return Status::Ok();
}

Status IbnetSampler::UpdateMetrics(TimeNs) {
  // One small file per counter, like the real sysclassib sampler.
  static const std::string kBase =
      "/sys/class/infiniband/mlx5_0/ports/1/counters/";
  for (std::size_t i = 0; i < kIbCount; ++i) {
    Status st = ReadSource(kBase + kIbCounters[i]);
    if (!st.ok()) return st;
    if (auto v = ParseU64(Trim(buffer()))) set().SetU64(i, *v);
  }
  return Status::Ok();
}

// --------------------------------------------------------------------------
// gpcdr
// --------------------------------------------------------------------------

Status GpcdrSampler::DefineSchema(Schema& schema, const PluginParams&) {
  for (std::size_t d = 0; d < sim::kLinkDirs; ++d) {
    const char* dir = sim::LinkDirName(static_cast<sim::LinkDir>(d));
    schema.AddMetric(std::string("traffic_") + dir, MetricType::kU64);
    schema.AddMetric(std::string("packets_") + dir, MetricType::kU64);
    schema.AddMetric(std::string("stalled_") + dir, MetricType::kU64);
    schema.AddMetric(std::string("linkstatus_") + dir, MetricType::kU64);
    schema.AddMetric(std::string("percent_stalled_") + dir, MetricType::kD64);
    schema.AddMetric(std::string("percent_bw_") + dir, MetricType::kD64);
  }
  return Status::Ok();
}

Status GpcdrSampler::UpdateMetrics(TimeNs now) {
  Status st =
      ReadSource("/sys/devices/virtual/gni/gpcdr0/metricsets/links/metrics");
  if (!st.ok()) return st;

  std::array<DirState, sim::kLinkDirs> current{};
  std::array<double, sim::kLinkDirs> max_bw{};
  for (std::string_view line : Split(buffer(), '\n')) {
    auto fields = SplitWhitespace(line);
    if (fields.size() < 2) continue;
    const std::string_view key = fields[0];
    const auto underscore = key.find('_');
    if (underscore == std::string_view::npos) continue;
    const std::string_view dir_name = key.substr(0, underscore);
    const std::string_view metric = key.substr(underscore + 1);
    for (std::size_t d = 0; d < sim::kLinkDirs; ++d) {
      if (dir_name != sim::LinkDirName(static_cast<sim::LinkDir>(d))) continue;
      const std::size_t base = d * kGpcdrPerDir;
      if (metric == "traffic") {
        if (auto v = ParseU64(fields[1])) {
          current[d].traffic = *v;
          set().SetU64(base + kRawTraffic, *v);
        }
      } else if (metric == "packets") {
        if (auto v = ParseU64(fields[1])) set().SetU64(base + kRawPackets, *v);
      } else if (metric == "stalled") {
        if (auto v = ParseU64(fields[1])) {
          current[d].stalled = *v;
          set().SetU64(base + kRawStalled, *v);
        }
      } else if (metric == "linkstatus") {
        if (auto v = ParseU64(fields[1])) set().SetU64(base + kRawStatus, *v);
      } else if (metric == "max") {
        // "max_bw" splits at the first underscore into dir "X+"... not this
        // branch; handled below via full key match.
      }
      break;
    }
    // max_bw lines: "<dir>_max_bw <Bps>"
    if (metric == "max_bw") {
      for (std::size_t d = 0; d < sim::kLinkDirs; ++d) {
        if (dir_name == sim::LinkDirName(static_cast<sim::LinkDir>(d))) {
          if (auto v = ParseDouble(fields[1])) max_bw[d] = *v;
          break;
        }
      }
    }
  }

  // Derived metrics over the sample period (§IV-F): percent of time the
  // link spent stalled, and percent of theoretical peak bandwidth used.
  if (have_prev_ && now > prev_time_) {
    const double dt_ns = static_cast<double>(now - prev_time_);
    const double dt_s = dt_ns / static_cast<double>(kNsPerSec);
    for (std::size_t d = 0; d < sim::kLinkDirs; ++d) {
      const std::size_t base = d * kGpcdrPerDir;
      const double stall_delta =
          static_cast<double>(current[d].stalled - prev_[d].stalled);
      const double traffic_delta =
          static_cast<double>(current[d].traffic - prev_[d].traffic);
      set().SetD64(base + kDerivedPctStall, 100.0 * stall_delta / dt_ns);
      const double pct_bw = max_bw[d] > 0.0
                                ? 100.0 * traffic_delta / dt_s / max_bw[d]
                                : 0.0;
      set().SetD64(base + kDerivedPctBw, pct_bw);
    }
  }
  prev_ = current;
  prev_time_ = now;
  have_prev_ = true;
  return Status::Ok();
}

// --------------------------------------------------------------------------
// synthetic
// --------------------------------------------------------------------------

Status SyntheticSampler::DefineSchema(Schema& schema,
                                      const PluginParams& params) {
  metric_count_ = 64;
  if (auto it = params.find("metrics"); it != params.end()) {
    if (auto v = ParseU64(it->second)) metric_count_ = *v;
  }
  // "base" sets the starting counter value; production counters are large
  // cumulative numbers, which matters for text-store volume studies.
  if (auto it = params.find("base"); it != params.end()) {
    if (auto v = ParseU64(it->second)) counter_ = *v;
  }
  for (std::size_t i = 0; i < metric_count_; ++i) {
    schema.AddMetric("metric_" + std::to_string(i), MetricType::kU64);
  }
  return Status::Ok();
}

Status SyntheticSampler::UpdateMetrics(TimeNs) {
  ++counter_;
  for (std::size_t i = 0; i < metric_count_; ++i) {
    set().SetU64(i, counter_ + i);
  }
  return Status::Ok();
}

}  // namespace ldmsxx
