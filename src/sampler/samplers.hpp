// Concrete sampler plugins. Metric names and source formats follow the real
// plugins: meminfo and procstat read /proc text, the Lustre sampler's metric
// names carry the "#stats.<filesystem>" suffix shown in §IV-B, the
// Infiniband sampler reads one /sys counter file per metric, and the gpcdr
// sampler consumes the Cray gpcdr module's link metrics and derives the
// percent-stalled / percent-bandwidth values described in §IV-F.
#pragma once

#include <array>

#include "sampler/sampler_base.hpp"
#include "sim/gemini.hpp"

namespace ldmsxx {

/// /proc/meminfo: MemTotal, MemFree, Buffers, Cached, Active, Inactive (kB).
class MeminfoSampler final : public SamplerBase {
 public:
  explicit MeminfoSampler(NodeDataSourcePtr source)
      : SamplerBase("meminfo", std::move(source)) {}

 protected:
  Status DefineSchema(Schema& schema, const PluginParams& params) override;
  Status UpdateMetrics(TimeNs now) override;
};

/// /proc/stat aggregate CPU jiffies: user, nice, sys, idle, iowait.
class ProcStatSampler final : public SamplerBase {
 public:
  explicit ProcStatSampler(NodeDataSourcePtr source)
      : SamplerBase("procstat", std::move(source)) {}

 protected:
  Status DefineSchema(Schema& schema, const PluginParams& params) override;
  Status UpdateMetrics(TimeNs now) override;
};

/// /proc/loadavg: load1, load5, load15.
class LoadAvgSampler final : public SamplerBase {
 public:
  explicit LoadAvgSampler(NodeDataSourcePtr source)
      : SamplerBase("loadavg", std::move(source)) {}

 protected:
  Status DefineSchema(Schema& schema, const PluginParams& params) override;
  Status UpdateMetrics(TimeNs now) override;
};

/// Lustre llite stats; param "fs" selects the filesystem suffix
/// (default "snx11024", the Blue Waters scratch name used in the paper).
class LustreSampler final : public SamplerBase {
 public:
  explicit LustreSampler(NodeDataSourcePtr source)
      : SamplerBase("lustre", std::move(source)) {}

 protected:
  Status DefineSchema(Schema& schema, const PluginParams& params) override;
  Status UpdateMetrics(TimeNs now) override;

 private:
  std::string fs_ = "snx11024";
};

/// /proc/net/rpc/nfs total RPC operations.
class NfsSampler final : public SamplerBase {
 public:
  explicit NfsSampler(NodeDataSourcePtr source)
      : SamplerBase("nfs", std::move(source)) {}

 protected:
  Status DefineSchema(Schema& schema, const PluginParams& params) override;
  Status UpdateMetrics(TimeNs now) override;
};

/// /proc/net/dev eth0 byte/packet counters.
class NetDevSampler final : public SamplerBase {
 public:
  explicit NetDevSampler(NodeDataSourcePtr source)
      : SamplerBase("netdev", std::move(source)) {}

 protected:
  Status DefineSchema(Schema& schema, const PluginParams& params) override;
  Status UpdateMetrics(TimeNs now) override;
};

/// Infiniband port counters (one /sys file per metric, like sysclassib).
class IbnetSampler final : public SamplerBase {
 public:
  explicit IbnetSampler(NodeDataSourcePtr source)
      : SamplerBase("sysclassib", std::move(source)) {}

 protected:
  Status DefineSchema(Schema& schema, const PluginParams& params) override;
  Status UpdateMetrics(TimeNs now) override;
};

/// Cray Gemini HSN metrics via the gpcdr module: per-direction traffic,
/// packets, stall time and link status, plus derived percent-of-time-stalled
/// and percent-of-peak-bandwidth over the sample period (§IV-F).
class GpcdrSampler final : public SamplerBase {
 public:
  explicit GpcdrSampler(NodeDataSourcePtr source)
      : SamplerBase("gpcdr", std::move(source)) {}

 protected:
  Status DefineSchema(Schema& schema, const PluginParams& params) override;
  Status UpdateMetrics(TimeNs now) override;

 private:
  struct DirState {
    std::uint64_t traffic = 0;
    std::uint64_t stalled = 0;
  };
  std::array<DirState, sim::kLinkDirs> prev_{};
  TimeNs prev_time_ = 0;
  bool have_prev_ = false;
};

/// /proc/vmstat paging counters: pgpgin/pgpgout/pgfault/pgmajfault.
class VmstatSampler final : public SamplerBase {
 public:
  explicit VmstatSampler(NodeDataSourcePtr source)
      : SamplerBase("vmstat", std::move(source)) {}

 protected:
  Status DefineSchema(Schema& schema, const PluginParams& params) override;
  Status UpdateMetrics(TimeNs now) override;
};

/// /proc/diskstats for the node-local scratch device (sda).
class DiskstatsSampler final : public SamplerBase {
 public:
  explicit DiskstatsSampler(NodeDataSourcePtr source)
      : SamplerBase("diskstats", std::move(source)) {}

 protected:
  Status DefineSchema(Schema& schema, const PluginParams& params) override;
  Status UpdateMetrics(TimeNs now) override;
};

/// Node power/energy (Cray pm_counters shape): instantaneous watts and
/// cumulative joules — the "power" resource class of §I.
class PowerSampler final : public SamplerBase {
 public:
  explicit PowerSampler(NodeDataSourcePtr source)
      : SamplerBase("cray_power", std::move(source)) {}

 protected:
  Status DefineSchema(Schema& schema, const PluginParams& params) override;
  Status UpdateMetrics(TimeNs now) override;
};

/// Synthetic sampler with a configurable metric count (param "metrics=N");
/// fills values from a running counter. Used by the footprint and fan-in
/// benches to reproduce the paper's set shapes (194-metric Blue Waters set,
/// 467-metric Chama aggregate) without inventing fake kernel sources.
class SyntheticSampler final : public SamplerBase {
 public:
  explicit SyntheticSampler(NodeDataSourcePtr source)
      : SamplerBase("synthetic", std::move(source)) {}

 protected:
  Status DefineSchema(Schema& schema, const PluginParams& params) override;
  Status UpdateMetrics(TimeNs now) override;

 private:
  std::uint64_t counter_ = 0;
  std::size_t metric_count_ = 0;
};

/// Register all samplers above in the global PluginRegistry, creating them
/// with @p default_source (RealFsDataSource when null). Call once at
/// startup; later calls rebind the default source.
void RegisterBuiltinSamplers(NodeDataSourcePtr default_source = nullptr);

}  // namespace ldmsxx
