// Post-processing helpers for the characterization figures (§VI): turn
// stored samples into per-node time series, node-vs-time grids (Figures 9
// top, 10, 11), torus-coordinate snapshots (Figure 9 bottom), and job
// profiles joined with scheduler data (Figure 12).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/gemini.hpp"
#include "sim/workload.hpp"
#include "store/memory_store.hpp"

namespace ldmsxx::analysis {

struct TimeSeries {
  std::vector<TimeNs> times;
  std::vector<double> values;

  double MaxValue() const;
  double MeanValue() const;
};

/// Index of @p name in a store's metric-name list.
std::optional<std::size_t> MetricIndex(const std::vector<std::string>& names,
                                       std::string_view name);

/// Split rows into one series per component id for metric @p metric_idx.
std::map<std::uint64_t, TimeSeries> PerComponentSeries(
    const std::vector<MemRow>& rows, std::size_t metric_idx);

/// One cell of a node-vs-time grid.
struct GridCell {
  TimeNs time;
  std::uint64_t component_id;
  double value;
};

/// Flatten rows into grid cells for one metric, dropping values below
/// @p threshold (the paper's figures "eliminate quantities under a
/// threshold value of 1" so features stand out).
std::vector<GridCell> NodeTimeGrid(const std::vector<MemRow>& rows,
                                   std::size_t metric_idx, double threshold);

/// Per-Gemini value snapshot at the sample time nearest @p when.
struct TorusPoint {
  int x, y, z;
  double value;
};
std::vector<TorusPoint> TorusSnapshot(const std::vector<MemRow>& rows,
                                      std::size_t metric_idx, TimeNs when,
                                      const sim::TorusDims& dims,
                                      double threshold);

/// Longest run of consecutive samples >= @p level in a series; returns the
/// duration (used to verify Figure 9's multi-hour persistent congestion).
DurationNs LongestPersistence(const TimeSeries& series, double level);

/// Figure 12: per-node metric series for one job, including @p pre/@p post
/// margins around the job window ("grey shaded areas" in the figure).
struct JobProfile {
  sim::JobRecord job;
  std::string metric;
  std::map<std::uint64_t, TimeSeries> per_node;

  /// Max over nodes of (max - min) of the metric during the job: the
  /// imbalance the figure makes visible.
  double ImbalanceSpread() const;
};
JobProfile BuildJobProfile(const sim::JobRecord& job,
                           const std::vector<MemRow>& rows,
                           std::size_t metric_idx, const std::string& metric,
                           DurationNs pre, DurationNs post);

/// §VI-A: "The routing algorithm between any 2 Gemini is well-defined; thus
/// the links that are involved in an application's communication paths can
/// be statically determined." Given a job's placement and a communication
/// pattern, enumerate the links its traffic traverses and score the job's
/// congestion exposure from the observed per-link stall levels.
struct LinkExposure {
  int gemini = 0;
  sim::LinkDir dir = sim::LinkDir::kXPlus;
  /// How many of the job's flows traverse this link.
  int flows = 0;
  /// Observed congestion on this link (e.g. % time stalled), filled by the
  /// caller's metric of choice.
  double congestion = 0.0;
};

struct JobCongestionReport {
  std::vector<LinkExposure> links;  ///< sorted by congestion, descending
  /// Flow-weighted mean congestion over all traversed links.
  double mean_exposure = 0.0;
  double max_exposure = 0.0;
};

/// Enumerate the links traversed by ring-neighbour traffic between the
/// job's nodes in rank order (the dominant pattern for contiguous
/// placements) and score each against @p link_congestion, a callback
/// returning the observed congestion level for (gemini, dir).
JobCongestionReport AttributeCongestion(
    const sim::JobRecord& job, const sim::GeminiTorus& torus,
    const std::function<double(int gemini, sim::LinkDir dir)>&
        link_congestion);

}  // namespace ldmsxx::analysis
