#include "analysis/timeseries.hpp"

#include <algorithm>
#include <cmath>

namespace ldmsxx::analysis {

double TimeSeries::MaxValue() const {
  double best = -1e300;
  for (double v : values) best = std::max(best, v);
  return values.empty() ? 0.0 : best;
}

double TimeSeries::MeanValue() const {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

std::optional<std::size_t> MetricIndex(const std::vector<std::string>& names,
                                       std::string_view name) {
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return i;
  }
  return std::nullopt;
}

std::map<std::uint64_t, TimeSeries> PerComponentSeries(
    const std::vector<MemRow>& rows, std::size_t metric_idx) {
  std::map<std::uint64_t, TimeSeries> out;
  for (const MemRow& row : rows) {
    if (metric_idx >= row.values.size()) continue;
    TimeSeries& series = out[row.component_id];
    series.times.push_back(row.timestamp);
    series.values.push_back(row.values[metric_idx]);
  }
  return out;
}

std::vector<GridCell> NodeTimeGrid(const std::vector<MemRow>& rows,
                                   std::size_t metric_idx, double threshold) {
  std::vector<GridCell> cells;
  for (const MemRow& row : rows) {
    if (metric_idx >= row.values.size()) continue;
    const double v = row.values[metric_idx];
    if (v < threshold) continue;
    cells.push_back({row.timestamp, row.component_id, v});
  }
  return cells;
}

std::vector<TorusPoint> TorusSnapshot(const std::vector<MemRow>& rows,
                                      std::size_t metric_idx, TimeNs when,
                                      const sim::TorusDims& dims,
                                      double threshold) {
  // Nearest sample time per component.
  std::map<std::uint64_t, std::pair<DurationNs, double>> best;
  for (const MemRow& row : rows) {
    if (metric_idx >= row.values.size()) continue;
    const DurationNs dist = row.timestamp > when ? row.timestamp - when
                                                 : when - row.timestamp;
    auto it = best.find(row.component_id);
    if (it == best.end() || dist < it->second.first) {
      best[row.component_id] = {dist, row.values[metric_idx]};
    }
  }
  sim::GeminiTorus geometry(dims, Rng(0));
  std::vector<TorusPoint> points;
  for (const auto& [component, entry] : best) {
    if (entry.second < threshold) continue;
    // Component IDs are node IDs; two nodes share a Gemini.
    const int gemini =
        sim::GeminiTorus::GeminiOfNode(static_cast<int>(component));
    const sim::Coord c = geometry.CoordOf(gemini);
    points.push_back({c.x, c.y, c.z, entry.second});
  }
  return points;
}

DurationNs LongestPersistence(const TimeSeries& series, double level) {
  DurationNs best = 0;
  std::optional<TimeNs> run_start;
  TimeNs last_time = 0;
  for (std::size_t i = 0; i < series.values.size(); ++i) {
    if (series.values[i] >= level) {
      if (!run_start) run_start = series.times[i];
      last_time = series.times[i];
      best = std::max(best, last_time - *run_start);
    } else {
      run_start.reset();
    }
  }
  return best;
}

double JobProfile::ImbalanceSpread() const {
  double spread = 0.0;
  double lo = 1e300;
  double hi = -1e300;
  for (const auto& [node, series] : per_node) {
    for (std::size_t i = 0; i < series.values.size(); ++i) {
      if (series.times[i] < job.start_time ||
          series.times[i] > job.end_time) {
        continue;
      }
      lo = std::min(lo, series.values[i]);
      hi = std::max(hi, series.values[i]);
    }
  }
  if (hi > lo) spread = hi - lo;
  return spread;
}

JobProfile BuildJobProfile(const sim::JobRecord& job,
                           const std::vector<MemRow>& rows,
                           std::size_t metric_idx, const std::string& metric,
                           DurationNs pre, DurationNs post) {
  JobProfile profile;
  profile.job = job;
  profile.metric = metric;
  const TimeNs lo = job.start_time > pre ? job.start_time - pre : 0;
  const TimeNs hi = job.end_time + post;
  for (const MemRow& row : rows) {
    if (row.timestamp < lo || row.timestamp > hi) continue;
    if (metric_idx >= row.values.size()) continue;
    const bool on_job_node =
        std::find(job.nodes.begin(), job.nodes.end(),
                  static_cast<int>(row.component_id)) != job.nodes.end();
    if (!on_job_node) continue;
    TimeSeries& series = profile.per_node[row.component_id];
    series.times.push_back(row.timestamp);
    series.values.push_back(row.values[metric_idx]);
  }
  return profile;
}

JobCongestionReport AttributeCongestion(
    const sim::JobRecord& job, const sim::GeminiTorus& torus,
    const std::function<double(int gemini, sim::LinkDir dir)>&
        link_congestion) {
  JobCongestionReport report;
  // Count flow traversals per link for ring-neighbour traffic in rank
  // order (the deterministic routes of §VI-A).
  std::map<std::pair<int, int>, int> traversals;  // (gemini, dir) -> flows
  std::vector<std::pair<int, sim::LinkDir>> hops;
  const auto n = job.nodes.size();
  for (std::size_t rank = 0; n >= 2 && rank < n; ++rank) {
    const int src =
        sim::GeminiTorus::GeminiOfNode(job.nodes[rank]);
    const int dst =
        sim::GeminiTorus::GeminiOfNode(job.nodes[(rank + 1) % n]);
    if (src == dst) continue;
    hops.clear();
    torus.Route(src, dst, &hops);
    for (const auto& [gemini, dir] : hops) {
      ++traversals[{gemini, static_cast<int>(dir)}];
    }
  }

  double weighted_sum = 0.0;
  int total_flows = 0;
  report.links.reserve(traversals.size());
  for (const auto& [key, flows] : traversals) {
    LinkExposure exposure;
    exposure.gemini = key.first;
    exposure.dir = static_cast<sim::LinkDir>(key.second);
    exposure.flows = flows;
    exposure.congestion = link_congestion(exposure.gemini, exposure.dir);
    weighted_sum += exposure.congestion * flows;
    total_flows += flows;
    report.max_exposure = std::max(report.max_exposure, exposure.congestion);
    report.links.push_back(exposure);
  }
  if (total_flows > 0) {
    report.mean_exposure = weighted_sum / total_flows;
  }
  std::sort(report.links.begin(), report.links.end(),
            [](const LinkExposure& a, const LinkExposure& b) {
              return a.congestion > b.congestion;
            });
  return report;
}

}  // namespace ldmsxx::analysis
