// Interval scheduler: our replacement for the libevent core the real ldmsd
// uses to "schedule sampling activities on user-defined time intervals"
// (§IV-B). Tasks fire either
//   * asynchronously — every `interval` from an arbitrary start, or
//   * synchronously  — aligned to wall-clock multiples of `interval` plus
//     `offset`, the feature that lets all samplers across a machine sample
//     at the same instant and bound how many application iterations are
//     perturbed (§V-A1).
//
// Two drive modes:
//   * Start()/Stop(): a timer thread fires tasks onto a worker pool
//     (production / overhead benches, RealClock).
//   * RunUntil(sim_clock, t): deterministically steps a SimClock through
//     every deadline <= t, running tasks inline (24-hour characterization
//     runs execute in seconds).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <functional>
#include <map>
#include <mutex>
#include <queue>
#include <thread>

#include "util/clock.hpp"
#include "util/status.hpp"
#include "util/thread_pool.hpp"

namespace ldmsxx {

class TimerScheduler {
 public:
  using TaskId = std::uint64_t;

  struct TaskOptions {
    DurationNs interval = kNsPerSec;
    /// Offset from the aligned boundary (synchronous tasks only).
    DurationNs offset = 0;
    /// Wall-aligned firing (see header comment).
    bool synchronous = false;
  };

  /// @param clock time source; must outlive the scheduler
  /// @param pool  worker pool tasks are submitted to in threaded mode; may
  ///              be nullptr if only RunUntil() is used
  TimerScheduler(Clock& clock, ThreadPool* pool);
  ~TimerScheduler();

  TimerScheduler(const TimerScheduler&) = delete;
  TimerScheduler& operator=(const TimerScheduler&) = delete;

  /// Register a repeating task; first deadline is computed from the options.
  TaskId Schedule(std::function<void()> fn, const TaskOptions& options);

  /// Change a task's interval on the fly (LDMS supports this for sampling).
  /// The next deadline is recomputed from now.
  Status Reschedule(TaskId id, DurationNs new_interval);

  /// Remove a task. In-flight executions finish.
  void Cancel(TaskId id);

  // -- threaded mode -------------------------------------------------------
  void Start();
  void Stop();

  // -- manual (simulation) mode -------------------------------------------
  /// Step @p sim through every deadline <= @p until, running due tasks
  /// inline in deadline order. The scheduler's clock must be @p sim.
  void RunUntil(SimClock& sim, TimeNs until);

  /// Earliest pending deadline, or ~0 when idle.
  TimeNs NextDeadline() const;

  std::size_t task_count() const;

  /// Total firings skipped across all tasks because a previous execution was
  /// still in flight (the paper's "bypass, retry at the next interval" rule).
  /// RunUntil counts deadlines the sim clock had already passed the same way.
  std::uint64_t skipped_total() const;

  /// Skipped firings for one task; 0 for unknown ids.
  std::uint64_t skipped_count(TaskId id) const;

 private:
  struct Task {
    std::function<void()> fn;
    TaskOptions options;
    std::uint64_t generation = 0;
    bool canceled = false;
    /// True while an execution is in flight on the worker pool. Deadlines
    /// that arrive meanwhile are skipped, not queued: a task slower than
    /// its interval must never accumulate a backlog (the "bypasses and
    /// later retries" behaviour of the paper's collection loop).
    std::shared_ptr<std::atomic<bool>> running =
        std::make_shared<std::atomic<bool>>(false);
    /// Deadlines that came due while a previous execution was in flight.
    std::uint64_t skipped = 0;
  };

  struct HeapEntry {
    TimeNs deadline;
    TaskId id;
    std::uint64_t generation;
    bool operator>(const HeapEntry& other) const {
      return deadline > other.deadline;
    }
  };

  TimeNs FirstDeadline(const TaskOptions& options, TimeNs now) const;
  TimeNs NextPeriodic(const TaskOptions& options, TimeNs prev_deadline,
                      TimeNs now) const;
  void TimerLoop();

  Clock& clock_;
  ThreadPool* pool_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<TaskId, Task> tasks_;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap_;
  TaskId next_id_ = 1;
  std::uint64_t skipped_total_ = 0;
  bool running_ = false;
  std::thread timer_;
};

}  // namespace ldmsxx
