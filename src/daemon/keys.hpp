// Pre-shared-key authentication for the control socket (ISSUE 8 hardening,
// the lokinet key_manager pattern). The paper's access control is UNIX
// socket permissions alone (§IV-G); production ops want mutating verbs to
// additionally prove possession of a key so a leaked socket path (or a
// future TCP control channel) cannot reconfigure the daemon.
//
// Model: one active 128-bit key, stored in a 0600 key file the KeyManager
// creates on first use. A client signs each mutating command line with
// SipHash-2-4 (a keyed MAC designed for exactly this short-input use; no
// external crypto dependency) and prefixes the line with
//
//   auth <key_id>:<mac_hex> <verb ...>
//
// where the MAC covers the verb and everything after it. Rotation bumps the
// key id and rewrites the file atomically; old-key MACs fail closed.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "util/status.hpp"

namespace ldmsxx {

/// SipHash-2-4 (Aumasson & Bernstein reference algorithm) of @p data under
/// a 128-bit key. Deterministic, keyed, and cheap on short inputs.
std::uint64_t SipHash24(const std::array<std::uint8_t, 16>& key,
                        std::string_view data);

struct ControlKey {
  std::uint32_t id = 0;
  std::array<std::uint8_t, 16> secret{};
};

/// Owns the on-disk key file. File format (plain text, 0600):
///   id <decimal>
///   key <32 hex chars>
class KeyManager {
 public:
  /// Load the key file, creating it with a fresh random key (and 0600
  /// permissions) when absent. A malformed or world-readable file is an
  /// error, never silently accepted.
  static Status LoadOrCreate(const std::string& path,
                             std::unique_ptr<KeyManager>* out);

  const std::string& path() const { return path_; }
  ControlKey current() const;

  /// Generate a new key (id + 1), persist it atomically with 0600 perms,
  /// and make it the only valid key.
  Status Rotate();

  /// Client side: "<id>:<mac_hex>" over @p line under the current key.
  std::string Sign(std::string_view line) const;

  /// Server side: does @p token (the "<id>:<mac_hex>" from an auth prefix)
  /// authenticate @p line under the current key?
  bool Verify(std::string_view token, std::string_view line) const;

  std::uint64_t rotations() const { return rotations_; }

 private:
  KeyManager(std::string path, ControlKey key)
      : path_(std::move(path)), key_(key) {}

  Status Persist() const;

  std::string path_;
  mutable std::mutex mu_;
  ControlKey key_;
  std::uint64_t rotations_ = 0;
};

/// Format a MAC as fixed-width lowercase hex (16 chars).
std::string MacToHex(std::uint64_t mac);

}  // namespace ldmsxx
