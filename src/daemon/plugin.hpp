// Sampler plugin API. "Sampling plugins are written in C. Each plugin
// defines a collection of metrics called a metric set" (§IV). Ours are C++
// classes: Init() creates the plugin's metric set(s) in the daemon's memory
// pool; Sample() refreshes the values inside a Begin/EndTransaction pair.
// The hosting ldmsd schedules Sample() on its worker pool at the configured
// interval; plugins never block on I/O longer than a read of their source.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/mem_manager.hpp"
#include "core/metric_set.hpp"
#include "core/set_registry.hpp"
#include "util/clock.hpp"
#include "util/status.hpp"

namespace ldmsxx {

/// Key=value configuration handed to a plugin's Init (the `config name=...`
/// command line of a real ldmsd).
using PluginParams = std::map<std::string, std::string>;

class SamplerPlugin {
 public:
  virtual ~SamplerPlugin() = default;

  /// Plugin name, e.g. "meminfo".
  virtual const std::string& name() const = 0;

  /// Create metric set(s) in @p mem and register them in @p sets.
  /// Standard params every plugin honors: "producer" (host name),
  /// "instance" (set instance name; defaults to "<producer>/<plugin>"),
  /// "component_id".
  virtual Status Init(MemManager& mem, SetRegistry& sets,
                      const PluginParams& params) = 0;

  /// Take one sample at time @p now.
  virtual Status Sample(TimeNs now) = 0;

  /// The sets this plugin fills (for accounting and tests).
  virtual std::vector<MetricSetPtr> Sets() const = 0;
};

using SamplerPluginPtr = std::shared_ptr<SamplerPlugin>;

}  // namespace ldmsxx
