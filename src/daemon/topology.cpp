#include "daemon/topology.hpp"

#include <algorithm>
#include <sstream>

#include "sim/gemini.hpp"

namespace ldmsxx {

namespace {

// splitmix64 finalizer: full-avalanche 64-bit mix.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t Fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

std::uint64_t RendezvousScore(std::uint64_t seed, std::uint64_t sampler_key,
                              std::uint64_t leaf_key) {
  return Mix64(seed ^ Mix64(sampler_key ^ Mix64(leaf_key)));
}

TreeManager::TreeManager(TreeOptions options) : options_(std::move(options)) {
  alive_.assign(options_.leaves.size(), true);
  leaf_keys_.reserve(options_.leaves.size() + 1);
  for (const auto& name : options_.leaves) leaf_keys_.push_back(Fnv1a(name));
  if (has_spare()) leaf_keys_.push_back(Fnv1a(options_.spare_name));
  sampler_keys_.reserve(options_.samplers.size());
  for (const auto& s : options_.samplers) sampler_keys_.push_back(SamplerKey(s));
  owner_.assign(options_.samplers.size(), kUnassigned);
  std::lock_guard<std::mutex> lock(mu_);
  (void)RecomputeLocked();  // initial placement; no events recorded
}

std::uint64_t TreeManager::SamplerKey(const TreeSamplerId& sampler) const {
  // Fold in the node id and its Gemini router id so placement is seeded
  // from node ids over the simulated torus: the two hosts sharing a router
  // (gemini.hpp) still land independently, but the key is a pure function
  // of the torus position + name.
  const auto gemini = static_cast<std::uint64_t>(
      sim::GeminiTorus::GeminiOfNode(static_cast<int>(sampler.node_id)));
  return Mix64(sampler.node_id) ^ Mix64(gemini) ^ Fnv1a(sampler.name);
}

const std::string& TreeManager::leaf_name(std::size_t leaf) const {
  if (has_spare() && leaf == spare_index()) return options_.spare_name;
  return options_.leaves.at(leaf);
}

std::size_t TreeManager::PickLocked(std::size_t i) const {
  // Rendezvous over all leaves first: the natural owner. With a spare, a
  // dead natural owner promotes the sampler to the spare (whole shards move
  // together); without one, the argmax re-runs over the alive subset so the
  // dead shard redistributes and everyone else's owner is untouched.
  std::size_t best = kUnassigned;
  std::uint64_t best_score = 0;
  for (std::size_t l = 0; l < options_.leaves.size(); ++l) {
    if (!has_spare() && !alive_[l]) continue;
    const std::uint64_t score =
        RendezvousScore(options_.seed, sampler_keys_[i], leaf_keys_[l]);
    if (best == kUnassigned || score > best_score) {
      best = l;
      best_score = score;
    }
  }
  if (has_spare() && best != kUnassigned && !alive_[best]) return spare_index();
  return best;
}

std::vector<TreeManager::Reassignment> TreeManager::RecomputeLocked() {
  std::vector<Reassignment> moves;
  for (std::size_t i = 0; i < options_.samplers.size(); ++i) {
    const std::size_t next = PickLocked(i);
    if (next == owner_[i]) continue;
    moves.push_back({options_.samplers[i].name, owner_[i], next});
    owner_[i] = next;
  }
  return moves;
}

std::size_t TreeManager::leaf_of(const std::string& sampler) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < options_.samplers.size(); ++i) {
    if (options_.samplers[i].name == sampler) return owner_[i];
  }
  return kUnassigned;
}

std::vector<std::string> TreeManager::shard(std::size_t leaf) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (std::size_t i = 0; i < owner_.size(); ++i) {
    if (owner_[i] == leaf) out.push_back(options_.samplers[i].name);
  }
  return out;
}

bool TreeManager::leaf_alive(std::size_t leaf) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (leaf >= alive_.size()) return has_spare() && leaf == spare_index();
  return alive_[leaf];
}

std::size_t TreeManager::alive_leaf_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<std::size_t>(
      std::count(alive_.begin(), alive_.end(), true));
}

std::vector<TreeManager::Reassignment> TreeManager::MarkLeafDown(
    std::size_t leaf, TimeNs now) {
  std::lock_guard<std::mutex> lock(mu_);
  if (leaf >= alive_.size() || !alive_[leaf]) return {};
  alive_[leaf] = false;
  auto moves = RecomputeLocked();
  events_.push_back({now, has_spare() ? "promote" : "redistribute",
                     options_.leaves[leaf], moves.size()});
  return moves;
}

std::vector<TreeManager::Reassignment> TreeManager::MarkLeafUp(
    std::size_t leaf, TimeNs now) {
  std::lock_guard<std::mutex> lock(mu_);
  if (leaf >= alive_.size() || alive_[leaf]) return {};
  alive_[leaf] = true;
  auto moves = RecomputeLocked();
  events_.push_back({now, "rejoin", options_.leaves[leaf], moves.size()});
  return moves;
}

std::size_t TreeManager::AddSampler(const TreeSamplerId& sampler) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < options_.samplers.size(); ++i) {
    if (options_.samplers[i].name == sampler.name) return owner_[i];
  }
  options_.samplers.push_back(sampler);
  sampler_keys_.push_back(SamplerKey(sampler));
  owner_.push_back(kUnassigned);
  const std::size_t i = owner_.size() - 1;
  owner_[i] = PickLocked(i);
  return owner_[i];
}

TreeOptions TreeManager::options() const {
  std::lock_guard<std::mutex> lock(mu_);
  return options_;
}

std::vector<std::size_t> TreeManager::down_leaves() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::size_t> down;
  for (std::size_t l = 0; l < alive_.size(); ++l) {
    if (!alive_[l]) down.push_back(l);
  }
  return down;
}

void TreeManager::RestoreDownLeaves(const std::vector<std::size_t>& down) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::size_t leaf : down) {
    if (leaf < alive_.size()) alive_[leaf] = false;
  }
  (void)RecomputeLocked();  // reconstruction, not repair: no events
}

std::vector<TreeManager::RepairEvent> TreeManager::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::uint64_t TreeManager::repairs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::string TreeManager::StatusString() const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t slots = options_.leaves.size() + (has_spare() ? 1 : 0);
  std::vector<std::size_t> sizes(slots, 0);
  std::size_t orphans = 0;
  for (std::size_t o : owner_) {
    if (o == kUnassigned) {
      ++orphans;
    } else {
      ++sizes[o];
    }
  }
  std::ostringstream out;
  out << "levels=3 root=" << options_.root_name
      << " samplers=" << owner_.size() << " leaves=" << options_.leaves.size()
      << " alive=" << std::count(alive_.begin(), alive_.end(), true)
      << " spare=" << (has_spare() ? options_.spare_name : "-")
      << " orphans=" << orphans << " shards=";
  for (std::size_t l = 0; l < slots; ++l) {
    if (l > 0) out << ":";
    out << sizes[l];
  }
  out << " repairs=" << events_.size();
  if (!events_.empty()) {
    const RepairEvent& e = events_.back();
    out << " last_repair=" << e.kind << ":" << e.leaf
        << ":moved=" << e.sets_moved << ":at_us=" << e.at / 1000;
  }
  return out.str();
}

std::string TreeManager::LeafStatusString(std::size_t leaf) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  const bool spare = has_spare() && leaf == spare_index();
  out << "leaf=" << (spare ? options_.spare_name : options_.leaves.at(leaf))
      << " alive=" << ((spare || alive_.at(leaf)) ? 1 : 0) << " samplers=";
  bool first = true;
  for (std::size_t i = 0; i < owner_.size(); ++i) {
    if (owner_[i] != leaf) continue;
    if (!first) out << ",";
    out << options_.samplers[i].name;
    first = false;
  }
  if (first) out << "-";
  return out.str();
}

}  // namespace ldmsxx
