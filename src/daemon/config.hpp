// ldmsd configuration command language. The real daemon is driven by
// "process-owner issued configuration commands" over a UNIX domain socket
// (§IV-B); we implement the command set as a text processor so deployments
// are descriptions, not code:
//
//   load       name=<sampler plugin>
//   config     name=<plugin> [producer=<p>] [instance=<i>] [component_id=<n>]
//              [plugin-specific params...]
//   start      name=<plugin> interval=<usec> [offset=<usec>] [sync=1]
//   stop       name=<plugin>
//   prdcr_add  name=<producer> xprt=<transport> host=<address>
//              interval=<usec> [offset=<usec>] [sync=1]
//              [sets=<a,b,c>] [rediscover=<usec>] [standby=1]
//              [standby_for=<primary>]
//   strgp_add  name=<policy> plugin=<store plugin> [path=<dir>]
//              [schema=<filter>] [producer=<filter>] [altheader=1]
//              [queue=<max samples>] [shed=drop_oldest|drop_newest|block]
//              [breaker_k=<consecutive failures>] [breaker_min=<usec>]
//              [breaker_max=<usec>] [decomp=<spec>] [max_samples=<rows>]
//              (decomp= requires a row-capable plugin such as store_tsdb;
//               spec grammar is in daemon/decomp/decomp.hpp. max_samples=
//               caps store_mem's per-schema row ring, drop-oldest.)
//   prdcr_del  name=<producer>      (stop collecting; drops mirrors and the
//                                    registry record)
//   interval   name=<plugin> interval=<usec>       (on-the-fly change)
//   strgp_status [name=<policy>]   (queue depth, shed counts, breaker state)
//   prdcr_status [name=<producer>]  (connection state, batch-update counters)
//   counters                        (daemon-wide activity counters)
//   tree_status [leaf=<index>]      (aggregation-tree depth, shard sizes,
//                                    repair events; requires an attached
//                                    TreeManager — see daemon/topology.hpp)
//   registry_status                 (cluster-registry path, record counts,
//                                    save/quarantine stats)
//   registry_export path=<file>     (write the registry snapshot to a file)
//   registry_import path=<file>     (strict-parse a file and replace the
//                                    registry contents with it)
//   query      strgp=<policy> table=<t> [mode=rows|rollup|tables]
//              [t0_us=<usec>] [t1_us=<usec>] [nodes=<1,2,3>]
//              [metrics=<a,b>] [limit=<rows, default 64>]
//              (serve a time-range x node-set x metric query from a
//               store_tsdb policy's indexed segments)
//
// Intervals are microseconds, matching ldmsd's convention. Lines starting
// with '#' and blank lines are ignored. Query verbs report through the
// output parameter of Execute(); the control server appends it to "OK".
#pragma once

#include <string_view>

#include "daemon/ldmsd.hpp"
#include "daemon/plugin_registry.hpp"

namespace ldmsxx {

/// Does @p verb change daemon state (as opposed to querying it)? The
/// control server requires a valid auth MAC for mutating verbs when a key
/// manager is attached. Unknown verbs count as mutating (fail closed).
bool IsMutatingControlVerb(std::string_view verb);

class ConfigProcessor {
 public:
  /// @param daemon daemon to configure
  /// @param registry plugin factories; nullptr = PluginRegistry::Instance()
  explicit ConfigProcessor(Ldmsd& daemon, PluginRegistry* registry = nullptr);

  /// Execute a single command line.
  Status Execute(std::string_view line);

  /// Execute a single command line; query verbs write their (single-line)
  /// reply into @p output, which is cleared first. @p output may be null.
  Status Execute(std::string_view line, std::string* output);

  /// Execute a multi-line script; stops at the first failing command and
  /// returns its status annotated with the line number.
  Status ExecuteScript(std::string_view script);

 private:
  Status CmdLoad(const PluginParams& args);
  Status CmdConfig(const PluginParams& args);
  Status CmdStart(const PluginParams& args);
  Status CmdStop(const PluginParams& args);
  Status CmdInterval(const PluginParams& args);
  Status CmdPrdcrAdd(const PluginParams& args);
  Status CmdPrdcrDel(const PluginParams& args);
  Status CmdStrgpAdd(const PluginParams& args);
  Status CmdStrgpStatus(const PluginParams& args, std::string* output);
  Status CmdPrdcrStatus(const PluginParams& args, std::string* output);
  Status CmdCounters(std::string* output);
  Status CmdTreeStatus(const PluginParams& args, std::string* output);
  Status CmdRegistryStatus(std::string* output);
  Status CmdRegistryExport(const PluginParams& args);
  Status CmdRegistryImport(const PluginParams& args);
  Status CmdQuery(const PluginParams& args, std::string* output);

  Ldmsd& daemon_;
  PluginRegistry* registry_;
  /// Plugins loaded but not yet started: name -> accumulated config params.
  std::map<std::string, PluginParams> pending_;
};

}  // namespace ldmsxx
