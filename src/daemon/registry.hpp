// Crash-safe cluster registry (ISSUE 8 tentpole, the lokinet nodedb
// pattern). An aggregator's working knowledge of its cluster — which
// producers it pulls, which store policies it runs, which tree shard it
// serves — historically lived only in the configuration script that built
// it. This registry persists that knowledge to one on-disk file so a
// restarted daemon can resume the whole topology with no operator action:
//
//   #ldmsxx-registry v1 crc=<16 hex> entries=<n>
//   meta name=<daemon> saved_tick=<ns>
//   prdcr name=... transport=... address=... interval=... ...
//   strgp name=... plugin=... params=... ...
//   tree role=root leaves=... samplers=... down=...
//
// Line-oriented key=value text (the configuration command shape), one
// record per line, values percent-encoded so names may contain any byte.
// The crc in the header is FNV-1a over everything after the header line;
// entries is the record-line count. Both must match on load.
//
// Durability ladder:
//   1. every Save() goes through AtomicWriteFile (tmp + fsync + rename +
//      parent fsync) — a crash mid-save leaves the previous snapshot intact;
//   2. a load that fails version/crc/entries validation quarantines the file
//      to <path>.corrupt.<n> and starts empty — the daemon rebuilds the
//      registry from live traffic instead of trusting a torn file;
//   3. a missing file is a clean first boot, not an error.
//
// Topology mutations (producer add/remove, store add, tree change) save
// eagerly; cheap freshness updates (last-seen ticks, schema digests) only
// mark the registry dirty and ride the periodic snapshot / clean shutdown.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "daemon/topology.hpp"
#include "util/clock.hpp"
#include "util/status.hpp"

namespace ldmsxx {

/// One persisted producer: the full ProducerConfig shape plus the freshness
/// metadata the restart path uses (last-seen tick, per-schema metadata
/// digests, the control key id in force when it was recorded).
struct ProducerRecord {
  std::string name;
  std::string transport = "local";
  std::string address;
  DurationNs interval = kNsPerSec;
  DurationNs offset = 0;
  bool synchronous = false;
  DurationNs request_timeout = 0;
  DurationNs reconnect_min_backoff = 50 * kNsPerMs;
  DurationNs reconnect_max_backoff = 2 * kNsPerSec;
  std::vector<std::string> set_instances;
  DurationNs rediscover_interval = 0;
  bool delta_updates = true;
  bool standby = false;
  std::string standby_for;
  /// Control key id current when this record was last written (audit trail
  /// for rotation: a record signed under key 3 predates rotation 4).
  std::uint32_t auth_key_id = 0;
  /// Daemon tick of the last successful dir/lookup/update on this producer.
  TimeNs last_seen = 0;
  /// schema name -> FNV-1a of the serialized metadata chunk, recorded at
  /// lookup. A digest mismatch after restart means the producer's schema
  /// changed while we were down, so the mirror must be re-looked-up (the
  /// existing relookup path already handles that).
  std::map<std::string, std::uint64_t> schema_digests;
};

/// One persisted store policy. Holds the plugin name + params the policy
/// was built from (not the constructed Store), so restart can re-make the
/// store through the PluginRegistry.
struct StoreRecord {
  std::string name;
  std::string plugin;
  std::map<std::string, std::string> params;
  std::string schema_filter;
  std::string producer_filter;
  /// Row-decomposition spec (strgp_add decomp=...); empty = whole sets.
  std::string decomp;
  std::size_t queue_capacity = 1024;
  std::string shed_policy = "drop_oldest";
  std::uint64_t breaker_threshold = 5;
  DurationNs breaker_min_backoff = 100 * kNsPerMs;
  DurationNs breaker_max_backoff = 10 * kNsPerSec;
};

/// The aggregation-tree view this daemon roots, if any: the full TreeOptions
/// (so TreeManager can be reconstructed bit-identically — rendezvous
/// placement is a pure function of these) plus which leaves were down.
struct TreeRecord {
  bool present = false;
  std::string role;  // "root" today; leaves persist only producers
  std::vector<TreeSamplerId> samplers;
  std::vector<std::string> leaves;
  std::string root_name = "root";
  std::string spare_name;
  std::uint64_t seed = 1;
  std::vector<std::size_t> down_leaves;
};

/// Full registry contents, as loaded/saved in one shot.
struct RegistrySnapshot {
  std::string daemon_name;
  /// Clock reading at the time of the save (provenance, and the restart
  /// drill's measure of how stale the snapshot was).
  TimeNs saved_tick = 0;
  std::vector<ProducerRecord> producers;
  std::vector<StoreRecord> stores;
  TreeRecord tree;
};

struct RegistryStats {
  std::uint64_t loads = 0;
  std::uint64_t saves = 0;
  std::uint64_t save_failures = 0;
  /// Corrupt files moved aside to <path>.corrupt.<n>.
  std::uint64_t quarantines = 0;
  /// Records parsed by the last successful Load().
  std::uint64_t last_load_records = 0;
};

/// Serialize a snapshot to the full file text, header included.
std::string SerializeRegistry(const RegistrySnapshot& snapshot);

/// Strict parse: header version, crc, and entry count must all check out.
/// kInconsistent on any mismatch, kInvalidArgument on malformed records.
Status ParseRegistry(std::string_view text, RegistrySnapshot* out);

/// Thread-safe owner of one registry file.
class ClusterRegistry {
 public:
  explicit ClusterRegistry(std::string path);

  const std::string& path() const { return path_; }

  /// Read the file. Missing file = clean first boot (ok, empty). A file
  /// that fails validation is quarantined to <path>.corrupt.<n> and the
  /// registry starts empty; the returned status is still ok (the recovery
  /// ladder's last rung is rebuild-from-traffic, not refuse-to-start) but
  /// last_load_quarantined() reports it.
  Status Load();

  /// Atomically write the current contents; clears the dirty flag.
  Status Save();
  /// Save() only when something changed since the last save.
  Status SaveIfDirty();

  bool dirty() const;
  bool last_load_quarantined() const;

  void SetMeta(const std::string& daemon_name, TimeNs saved_tick);
  /// Eager-save mutators return the Save() status; freshness updates below
  /// only mark dirty.
  void UpsertProducer(const ProducerRecord& record);
  bool RemoveProducer(const std::string& name);
  void UpsertStore(const StoreRecord& record);
  void SetTree(const TreeRecord& record);
  /// Record a successful contact with @p name (no-op for unknown producers).
  void TouchProducer(const std::string& name, TimeNs last_seen);
  /// Record the metadata digest seen for (producer, schema) at lookup.
  void RecordSchemaDigest(const std::string& producer,
                          const std::string& schema, std::uint64_t digest);

  RegistrySnapshot snapshot() const;
  RegistryStats stats() const;

  /// Write the current contents to @p path (same format; plain atomic
  /// write, no registry bookkeeping).
  Status ExportTo(const std::string& export_path) const;
  /// Strict-parse @p path and replace the in-memory contents with it, then
  /// Save(). Unlike Load(), a bad file here is the operator's explicit
  /// input, so it fails loudly instead of quarantining.
  Status ImportFrom(const std::string& import_path);

  /// Single-line summary for the registry_status control verb.
  std::string StatusString() const;

 private:
  Status SaveLocked();  // mu_ held by caller
  void QuarantineLocked();

  const std::string path_;
  mutable std::mutex mu_;
  RegistrySnapshot state_;
  RegistryStats stats_;
  bool dirty_ = false;
  bool last_load_quarantined_ = false;
};

}  // namespace ldmsxx
