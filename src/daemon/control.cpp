#include "daemon/control.hpp"

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ldmsxx {
namespace {

Status FillSockaddr(const std::string& path, sockaddr_un* addr) {
  if (path.size() + 1 > sizeof(addr->sun_path)) {
    return {ErrorCode::kInvalidArgument, "socket path too long: " + path};
  }
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return Status::Ok();
}

/// Read until '\n' or EOF (commands and replies are single lines).
Status ReadLine(int fd, std::string* line) {
  line->clear();
  char c;
  for (;;) {
    const ssize_t n = ::recv(fd, &c, 1, 0);
    if (n == 0) {
      return line->empty() ? Status{ErrorCode::kDisconnected, "EOF"}
                           : Status::Ok();
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return {ErrorCode::kDisconnected, std::strerror(errno)};
    }
    if (c == '\n') return Status::Ok();
    line->push_back(c);
  }
}

Status WriteLine(int fd, const std::string& line) {
  std::string out = line;
  out.push_back('\n');
  std::size_t off = 0;
  while (off < out.size()) {
    const ssize_t n =
        ::send(fd, out.data() + off, out.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return {ErrorCode::kDisconnected, std::strerror(errno)};
    }
    off += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

ControlServer::ControlServer(Ldmsd& daemon, std::string socket_path)
    : daemon_(daemon),
      processor_(daemon),
      socket_path_(std::move(socket_path)) {}

ControlServer::~ControlServer() { Stop(); }

Status ControlServer::Start() {
  sockaddr_un addr{};
  Status st = FillSockaddr(socket_path_, &addr);
  if (!st.ok()) return st;
  ::unlink(socket_path_.c_str());
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return {ErrorCode::kInternal, std::strerror(errno)};
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
      0) {
    return {ErrorCode::kInvalidArgument,
            "bind " + socket_path_ + ": " + std::strerror(errno)};
  }
  // Owner-only: the paper's access control.
  ::chmod(socket_path_.c_str(), 0600);
  if (::listen(listen_fd_, 16) < 0) {
    return {ErrorCode::kInternal, std::strerror(errno)};
  }
  running_ = true;
  server_ = std::thread([this] { ServeLoop(); });
  daemon_.log().Info("control socket at ", socket_path_);
  return Status::Ok();
}

void ControlServer::Stop() {
  if (!running_.exchange(false)) return;
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (server_.joinable()) server_.join();
  ::unlink(socket_path_.c_str());
}

void ControlServer::ServeLoop() {
  while (running_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed
    }
    // Control traffic is rare and tiny; serve inline.
    ServeClient(fd);
    ::close(fd);
  }
}

void ControlServer::ServeClient(int fd) {
  std::string line;
  while (ReadLine(fd, &line).ok()) {
    if (line.empty()) continue;
    commands_.fetch_add(1, std::memory_order_relaxed);
    std::string output;
    Status st = processor_.Execute(line, &output);
    std::string reply;
    if (!st.ok()) {
      reply = "ERROR: " + st.ToString();
    } else {
      // Query verbs reply "OK <payload>"; mutating verbs keep the bare "OK".
      reply = output.empty() ? "OK" : "OK " + output;
    }
    Status wst = WriteLine(fd, reply);
    if (!wst.ok()) return;
  }
}

Status ControlServer::SendCommand(const std::string& socket_path,
                                  const std::string& command,
                                  std::string* reply) {
  sockaddr_un addr{};
  Status st = FillSockaddr(socket_path, &addr);
  if (!st.ok()) return st;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return {ErrorCode::kInternal, std::strerror(errno)};
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return {ErrorCode::kDisconnected, "connect " + socket_path + ": " + err};
  }
  st = WriteLine(fd, command);
  if (st.ok()) st = ReadLine(fd, reply);
  ::close(fd);
  if (!st.ok()) return st;
  if (reply->rfind("ERROR", 0) == 0) {
    return {ErrorCode::kInvalidArgument, *reply};
  }
  return Status::Ok();
}

}  // namespace ldmsxx
