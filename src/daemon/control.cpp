#include "daemon/control.hpp"

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/strings.hpp"

namespace ldmsxx {
namespace {

Status FillSockaddr(const std::string& path, sockaddr_un* addr) {
  if (path.size() + 1 > sizeof(addr->sun_path)) {
    return {ErrorCode::kInvalidArgument, "socket path too long: " + path};
  }
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return Status::Ok();
}

/// Read until '\n' or EOF (commands and replies are single lines).
Status ReadLine(int fd, std::string* line) {
  line->clear();
  char c;
  for (;;) {
    const ssize_t n = ::recv(fd, &c, 1, 0);
    if (n == 0) {
      return line->empty() ? Status{ErrorCode::kDisconnected, "EOF"}
                           : Status::Ok();
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return {ErrorCode::kDisconnected, std::strerror(errno)};
    }
    if (c == '\n') return Status::Ok();
    line->push_back(c);
  }
}

Status WriteLine(int fd, const std::string& line) {
  std::string out = line;
  out.push_back('\n');
  std::size_t off = 0;
  while (off < out.size()) {
    const ssize_t n =
        ::send(fd, out.data() + off, out.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return {ErrorCode::kDisconnected, std::strerror(errno)};
    }
    off += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

ControlServer::ControlServer(Ldmsd& daemon, std::string socket_path,
                             KeyManager* keys)
    : daemon_(daemon),
      processor_(daemon),
      socket_path_(std::move(socket_path)),
      keys_(keys) {}

ControlServer::~ControlServer() { Stop(); }

Status ControlServer::Start() {
  sockaddr_un addr{};
  Status st = FillSockaddr(socket_path_, &addr);
  if (!st.ok()) return st;
  ::unlink(socket_path_.c_str());
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return {ErrorCode::kInternal, std::strerror(errno)};
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
      0) {
    return {ErrorCode::kInvalidArgument,
            "bind " + socket_path_ + ": " + std::strerror(errno)};
  }
  // Owner-only: the paper's access control.
  ::chmod(socket_path_.c_str(), 0600);
  if (::listen(listen_fd_, 16) < 0) {
    return {ErrorCode::kInternal, std::strerror(errno)};
  }
  running_ = true;
  server_ = std::thread([this] { ServeLoop(); });
  daemon_.log().Info("control socket at ", socket_path_);
  return Status::Ok();
}

void ControlServer::Stop() {
  if (!running_.exchange(false)) return;
  // Wake the blocked accept() with shutdown, but only touch listen_fd_
  // (close + reset) after the server thread has joined — it reads the fd
  // until then.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (server_.joinable()) server_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(socket_path_.c_str());
}

void ControlServer::ServeLoop() {
  while (running_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed
    }
    // Control traffic is rare and tiny; serve inline.
    ServeClient(fd);
    ::close(fd);
  }
}

void ControlServer::ServeClient(int fd) {
  // Buffered line framing. A client may dribble a command byte by byte or
  // pack several newline-terminated verbs into a single write; either way
  // each complete line gets exactly one reply, in order. A trailing
  // fragment with no terminating newline at EOF is discarded, never
  // executed half-parsed.
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n == 0) return;  // EOF; any partial line in `buffer` is dropped
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    std::size_t newline;
    while ((newline = buffer.find('\n', start)) != std::string::npos) {
      const std::string_view line(buffer.data() + start, newline - start);
      start = newline + 1;
      if (Trim(line).empty()) continue;
      commands_.fetch_add(1, std::memory_order_relaxed);
      if (!WriteLine(fd, HandleLine(line)).ok()) return;
    }
    buffer.erase(0, start);
  }
}

std::string ControlServer::HandleLine(std::string_view line) {
  std::string_view body = Trim(line);
  bool authenticated = false;
  if (StartsWith(body, "auth ")) {
    // auth <key_id>:<mac_hex> <verb ...> — the MAC covers everything after
    // the token, so a verb (or its arguments) can't be swapped under a
    // captured prefix.
    const std::string_view rest = Trim(body.substr(5));
    const std::size_t space = rest.find(' ');
    if (space == std::string_view::npos) {
      auth_failures_.fetch_add(1, std::memory_order_relaxed);
      return "ERROR: malformed auth prefix";
    }
    const std::string_view token = rest.substr(0, space);
    body = Trim(rest.substr(space + 1));
    if (keys_ == nullptr || !keys_->Verify(token, body)) {
      auth_failures_.fetch_add(1, std::memory_order_relaxed);
      return "ERROR: authentication failed";
    }
    authenticated = true;
  }
  const std::size_t space = body.find(' ');
  const std::string_view verb =
      body.substr(0, space == std::string_view::npos ? body.size() : space);
  if (keys_ != nullptr && !authenticated && IsMutatingControlVerb(verb)) {
    auth_failures_.fetch_add(1, std::memory_order_relaxed);
    return "ERROR: auth required for " + std::string(verb);
  }
  // Key management lives at the server, not the config processor: rotation
  // must go through the same KeyManager that gates this socket.
  if (verb == "key_rotate") {
    if (keys_ == nullptr) return "ERROR: no control key configured";
    Status st = keys_->Rotate();
    if (!st.ok()) return "ERROR: " + st.ToString();
    daemon_.log().Info("control key rotated, key_id=", keys_->current().id);
    return "OK key_id=" + std::to_string(keys_->current().id);
  }
  if (verb == "auth_status") {
    std::string out = keys_ == nullptr ? "enabled=0" : "enabled=1";
    if (keys_ != nullptr) {
      out += " key_id=" + std::to_string(keys_->current().id);
      out += " rotations=" + std::to_string(keys_->rotations());
    }
    out += " failures=" +
           std::to_string(auth_failures_.load(std::memory_order_relaxed));
    return "OK " + out;
  }
  std::string output;
  Status st = processor_.Execute(body, &output);
  if (!st.ok()) return "ERROR: " + st.ToString();
  // Query verbs reply "OK <payload>"; mutating verbs keep the bare "OK".
  return output.empty() ? "OK" : "OK " + output;
}

Status ControlServer::SendCommand(const std::string& socket_path,
                                  const std::string& command,
                                  std::string* reply, const KeyManager* keys) {
  sockaddr_un addr{};
  Status st = FillSockaddr(socket_path, &addr);
  if (!st.ok()) return st;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return {ErrorCode::kInternal, std::strerror(errno)};
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return {ErrorCode::kDisconnected, "connect " + socket_path + ": " + err};
  }
  std::string wire(Trim(command));
  if (keys != nullptr) wire = "auth " + keys->Sign(wire) + " " + wire;
  st = WriteLine(fd, wire);
  if (st.ok()) st = ReadLine(fd, reply);
  ::close(fd);
  if (!st.ok()) return st;
  if (reply->rfind("ERROR", 0) == 0) {
    return {ErrorCode::kInvalidArgument, *reply};
  }
  return Status::Ok();
}

}  // namespace ldmsxx
