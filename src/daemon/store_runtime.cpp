#include "daemon/store_runtime.hpp"

#include <algorithm>
#include <chrono>
#include <vector>

namespace ldmsxx {
namespace {

std::uint64_t NowSteadyNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// FNV-1a, same reason as the producer jitter seed: std::hash promises no
/// cross-run stability, and breaker backoff jitter must be reproducible.
std::uint64_t HashName(const std::string& name) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

const char* ShedPolicyName(ShedPolicy policy) {
  switch (policy) {
    case ShedPolicy::kDropOldest:
      return "drop_oldest";
    case ShedPolicy::kDropNewest:
      return "drop_newest";
    case ShedPolicy::kBlock:
      return "block";
  }
  return "?";
}

bool ParseShedPolicy(const std::string& text, ShedPolicy* out) {
  if (text == "drop_oldest") {
    *out = ShedPolicy::kDropOldest;
  } else if (text == "drop_newest") {
    *out = ShedPolicy::kDropNewest;
  } else if (text == "block") {
    *out = ShedPolicy::kBlock;
  } else {
    return false;
  }
  return true;
}

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "?";
}

StorePolicyRuntime::StorePolicyRuntime(StorePolicy policy, Clock* clock,
                                       Logger* log, StoreCounters* counters)
    : policy_(std::move(policy)),
      clock_(clock),
      log_(log),
      counters_(counters),
      jitter_rng_(HashName(policy_.name) ^ 0x73747267705f6271ull) {
  if (!policy_.decomp.empty()) {
    DecompSpec spec;
    const Status st = ParseDecompSpec(policy_.decomp, &spec);
    if (st.ok()) {
      decomposer_ = std::make_unique<Decomposer>(std::move(spec));
    } else {
      // Config validates the spec before the policy reaches us; a bad spec
      // here means a hand-built policy — store whole sets rather than drop.
      log_->Error("strgp ", policy_.name, " decomp rejected: ",
                  st.ToString());
    }
  }
}

bool StorePolicyRuntime::Matches(const MetricSet& set) const {
  if (!policy_.schema_filter.empty() &&
      policy_.schema_filter != set.schema().name()) {
    return false;
  }
  if (!policy_.producer_filter.empty() &&
      policy_.producer_filter != set.producer_name()) {
    return false;
  }
  return true;
}

void StorePolicyRuntime::Submit(MetricSetPtr set,
                                std::shared_ptr<std::mutex> set_mu,
                                ThreadPool* pool) {
  if (!Matches(*set)) return;
  Pending item{std::move(set), std::move(set_mu)};

  if (pool == nullptr) {
    // Inline mode (store_threads = 0): no queue, but the breaker still
    // gates the write so a dead store cannot stall a simulation loop.
    if (batched()) {
      WriteBatch(&item, 1);
    } else {
      WriteOne(item);
    }
    return;
  }

  bool schedule = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Shed at the door while quarantined: enqueueing samples the breaker
    // would refuse at write time only fills the queue with doomed data and
    // evicts samples that could have been written after recovery.
    if (policy_.breaker_threshold > 0 &&
        (breaker_ == BreakerState::kHalfOpen ||
         (breaker_ == BreakerState::kOpen &&
          clock_->Now() < retry_at_))) {
      ++shed_samples_;
      ++quarantine_gap_;
      ++episode_gap_;
      counters_->shed_samples.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    const std::size_t cap = policy_.queue_capacity;
    if (cap > 0 && queue_.size() >= cap) {
      switch (policy_.shed_policy) {
        case ShedPolicy::kDropOldest:
          queue_.pop_front();
          ++shed_samples_;
          counters_->shed_samples.fetch_add(1, std::memory_order_relaxed);
          break;
        case ShedPolicy::kDropNewest:
          ++shed_samples_;
          counters_->shed_samples.fetch_add(1, std::memory_order_relaxed);
          return;
        case ShedPolicy::kBlock:
          space_cv_.wait(lock, [this, cap] {
            return stopping_ || queue_.size() < cap;
          });
          if (stopping_ && queue_.size() >= cap) {
            ++shed_samples_;
            counters_->shed_samples.fetch_add(1, std::memory_order_relaxed);
            return;
          }
          break;
      }
    }
    queue_.push_back(std::move(item));
    if (queue_.size() > queue_high_water_) queue_high_water_ = queue_.size();
    if (!draining_) {
      draining_ = true;
      schedule = true;
    }
  }
  if (schedule) {
    pool->Submit([this, pool] { DrainBatch(pool); });
  }
}

void StorePolicyRuntime::DrainBatch(ThreadPool* pool) {
  std::vector<Pending> batch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const std::size_t n = std::min(queue_.size(), kDrainBatch);
    batch.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    if (n == 0) {
      draining_ = false;
      return;
    }
  }
  space_cv_.notify_all();
  if (batched()) {
    // One store call per drain trip: the columnar path amortizes the
    // store's internal lock and plan lookup over the whole batch instead
    // of paying them per sample.
    WriteBatch(batch.data(), batch.size());
  } else {
    for (const Pending& item : batch) WriteOne(item);
  }
  bool more = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) {
      draining_ = false;
    } else {
      more = true;  // keep draining_; the resubmitted task continues
    }
  }
  // Resubmit instead of looping so a deep queue on one policy yields the
  // worker between batches and siblings get stored too.
  if (more) pool->Submit([this, pool] { DrainBatch(pool); });
}

void StorePolicyRuntime::DrainInline() {
  for (;;) {
    Pending item;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (queue_.empty()) {
        draining_ = false;
        return;
      }
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    space_cv_.notify_all();
    if (batched()) {
      WriteBatch(&item, 1);
    } else {
      WriteOne(item);
    }
  }
}

void StorePolicyRuntime::BeginShutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  space_cv_.notify_all();
}

bool StorePolicyRuntime::AdmitLocked() {
  if (policy_.breaker_threshold == 0) return true;
  switch (breaker_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kHalfOpen:
      // A probe is already in flight; exactly one write may test the store.
      return false;
    case BreakerState::kOpen:
      if (clock_->Now() < retry_at_) return false;
      breaker_ = BreakerState::kHalfOpen;
      log_->Info("strgp ", policy_.name, " breaker half-open: probing after ",
                 backoff_ / kNsPerMs, "ms quarantine");
      return true;
  }
  return true;
}

void StorePolicyRuntime::RecordOutcomeLocked(bool ok, const Status& st,
                                             std::uint64_t samples) {
  if (ok) {
    stores_ += samples;
    counters_->stores.fetch_add(samples, std::memory_order_relaxed);
    consecutive_failures_ = 0;
    if (breaker_ == BreakerState::kHalfOpen) {
      breaker_ = BreakerState::kClosed;
      backoff_ = 0;
      retry_at_ = 0;
      ++breaker_recoveries_;
      counters_->breaker_recoveries.fetch_add(1, std::memory_order_relaxed);
      log_->Info("strgp ", policy_.name, " breaker closed: store recovered, ",
                 episode_gap_, " samples shed during quarantine");
    }
    return;
  }
  ++store_failures_;
  counters_->store_failures.fetch_add(1, std::memory_order_relaxed);
  ++consecutive_failures_;
  log_->Error("store ", policy_.store->name(), " failed: ", st.ToString());
  if (policy_.breaker_threshold == 0) return;
  // Grow the quarantine window: exponential doubling min→max with ±25%
  // deterministic jitter, the same discipline as producer reconnects.
  auto reopen = [this] {
    const DurationNs min_backoff = policy_.breaker_min_backoff;
    const DurationNs max_backoff =
        std::max(policy_.breaker_max_backoff, min_backoff);
    backoff_ = backoff_ == 0 ? min_backoff
                             : std::min(backoff_ * 2, max_backoff);
    const double jitter = 0.75 + 0.5 * jitter_rng_.NextDouble();
    retry_at_ = clock_->Now() + static_cast<DurationNs>(
                                    static_cast<double>(backoff_) * jitter);
    breaker_ = BreakerState::kOpen;
  };
  if (breaker_ == BreakerState::kHalfOpen) {
    reopen();
    log_->Warn("strgp ", policy_.name, " breaker re-opened: probe failed, "
               "next probe in ", backoff_ / kNsPerMs, "ms");
  } else if (breaker_ == BreakerState::kClosed &&
             consecutive_failures_ >= policy_.breaker_threshold) {
    episode_gap_ = 0;
    reopen();
    ++breaker_trips_;
    counters_->breaker_trips.fetch_add(1, std::memory_order_relaxed);
    log_->Warn("strgp ", policy_.name, " breaker tripped after ",
               consecutive_failures_, " consecutive failures; quarantined ",
               backoff_ / kNsPerMs, "ms");
  }
}

void StorePolicyRuntime::WriteOne(const Pending& item) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!AdmitLocked()) {
      ++shed_samples_;
      ++quarantine_gap_;
      ++episode_gap_;
      counters_->shed_samples.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  const std::uint64_t t0 = NowSteadyNs();
  Status st;
  {
    std::lock_guard<std::mutex> set_lock(*item.set_mu);
    st = policy_.store->StoreSet(*item.set);
  }
  counters_->store_ns.fetch_add(NowSteadyNs() - t0,
                                std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  RecordOutcomeLocked(st.ok(), st);
}

void StorePolicyRuntime::WriteBatch(const Pending* items, std::size_t n) {
  if (n == 0) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!AdmitLocked()) {
      shed_samples_ += n;
      quarantine_gap_ += n;
      episode_gap_ += n;
      counters_->shed_samples.fetch_add(n, std::memory_order_relaxed);
      return;
    }
  }
  const std::uint64_t t0 = NowSteadyNs();
  Status st;
  std::uint64_t written = n;
  std::uint64_t decomp_failed = 0;
  if (decomposer_ != nullptr) {
    std::lock_guard<std::mutex> write_lock(write_mu_);
    row_scratch_.Clear();
    written = 0;
    for (std::size_t i = 0; i < n; ++i) {
      std::lock_guard<std::mutex> set_lock(*items[i].set_mu);
      const Status ds = decomposer_->Decompose(*items[i].set, &row_scratch_);
      if (ds.ok()) {
        ++written;
      } else {
        ++decomp_failed;
        if (st.ok()) st = ds;
      }
    }
    if (written > 0) {
      const Status ws = policy_.store->StoreRows(row_scratch_);
      if (!ws.ok()) {
        st = ws;
        written = 0;
      }
    }
  } else {
    std::vector<Store::BatchItem> batch(n);
    for (std::size_t i = 0; i < n; ++i) {
      batch[i] = {items[i].set.get(), items[i].set_mu.get()};
    }
    std::size_t stored = 0;
    st = policy_.store->StoreSetBatch(batch.data(), n, &stored);
    written = st.ok() ? n : stored;
  }
  counters_->store_ns.fetch_add(NowSteadyNs() - t0,
                                std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  decompose_failures_ += decomp_failed;
  // A fully-decomposed, fully-written batch is one success; anything short
  // of that is one failure episode for the breaker, with the samples that
  // did land still counted.
  if (written > 0) {
    RecordOutcomeLocked(true, Status::Ok(), written);
  }
  if (!st.ok()) {
    RecordOutcomeLocked(false, st);
  }
}

StorePolicyStatus StorePolicyRuntime::status() const {
  StorePolicyStatus s;
  std::lock_guard<std::mutex> lock(mu_);
  s.known = true;
  s.name = policy_.name;
  s.queue_depth = queue_.size();
  s.queue_high_water = queue_high_water_;
  s.stores = stores_;
  s.store_failures = store_failures_;
  s.shed_samples = shed_samples_;
  s.breaker = breaker_;
  s.consecutive_failures = consecutive_failures_;
  s.breaker_trips = breaker_trips_;
  s.breaker_recoveries = breaker_recoveries_;
  s.quarantine_gap = quarantine_gap_;
  s.current_backoff = breaker_ == BreakerState::kClosed ? 0 : backoff_;
  s.store_evictions = policy_.store->rows_evicted();
  s.decompose_failures = decompose_failures_;
  return s;
}

}  // namespace ldmsxx
