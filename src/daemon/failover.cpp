#include "daemon/failover.hpp"

#include <chrono>

namespace ldmsxx {

void FailoverWatchdog::AddRule(FailoverRule rule) {
  std::lock_guard<std::mutex> lock(mu_);
  RuleState state;
  state.rule = std::move(rule);
  rules_.push_back(std::move(state));
}

std::size_t FailoverWatchdog::Poll() {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t triggered_now = 0;
  for (auto& state : rules_) {
    if (state.rule.primary_alive()) {
      // A recovered primary re-arms the rule, so a later death of the same
      // primary triggers again (tree repair needs repeated kill/restart
      // cycles); rules whose primary stays dead remain one-shot.
      state.consecutive_failures = 0;
      state.triggered = false;
      continue;
    }
    if (state.triggered) continue;
    if (++state.consecutive_failures < state.rule.failure_threshold) continue;
    state.triggered = true;
    ++triggered_now;
    failovers_.fetch_add(1, std::memory_order_relaxed);
    if (state.rule.standby_daemon != nullptr) {
      for (const auto& producer : state.rule.standby_producers) {
        (void)state.rule.standby_daemon->ActivateStandby(producer);
      }
    }
    if (state.rule.on_failure) state.rule.on_failure();
  }
  return triggered_now;
}

void FailoverWatchdog::Start() {
  if (running_.exchange(true)) return;
  thread_ = std::thread([this] {
    while (running_.load(std::memory_order_acquire)) {
      Poll();
      std::this_thread::sleep_for(std::chrono::nanoseconds(poll_interval_));
    }
  });
}

void FailoverWatchdog::Stop() {
  if (!running_.exchange(false)) return;
  if (thread_.joinable()) thread_.join();
}

}  // namespace ldmsxx
