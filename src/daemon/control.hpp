// Runtime control channel: "Access is controlled via permissions on a UNIX
// Domain Socket ... The owner of an LDMS instance controls it through a
// local UNIX Domain socket" (§IV-B, §IV-G). One line per command in the
// ldmsd configuration language; the reply is "OK" or "ERROR: <detail>".
// This is what lets users reconfigure sampling (including the on-the-fly
// interval change) on a live daemon without restarting it.
//
// Hardening (ISSUE 8): with a KeyManager attached, socket permissions are
// no longer the only gate — mutating verbs must carry a MAC proving
// possession of the pre-shared control key:
//
//   auth <key_id>:<mac_hex> <verb ...>
//
// (see daemon/keys.hpp for the MAC construction). Query verbs stay open;
// failed or missing auth on a mutating verb is refused and counted. The
// server also handles two key verbs itself: `key_rotate` (mutating —
// generate + persist a new key, old MACs fail closed) and `auth_status`
// (query — key id, rotations, failure counter).
#pragma once

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "daemon/config.hpp"
#include "daemon/keys.hpp"

namespace ldmsxx {

class ControlServer {
 public:
  /// @param daemon daemon the commands apply to
  /// @param socket_path filesystem path of the UNIX domain socket; an
  ///        existing file at the path is replaced
  /// @param keys pre-shared control key (not owned; may be shared with the
  ///        daemon for registry stamping). nullptr = unauthenticated
  ///        operation, socket permissions only (the paper's model).
  ControlServer(Ldmsd& daemon, std::string socket_path,
                KeyManager* keys = nullptr);
  ~ControlServer();

  ControlServer(const ControlServer&) = delete;
  ControlServer& operator=(const ControlServer&) = delete;

  /// Bind, listen, and start serving. The socket is created with owner-only
  /// permissions (0600), the paper's access-control mechanism.
  Status Start();
  void Stop();

  const std::string& socket_path() const { return socket_path_; }
  std::uint64_t commands_served() const {
    return commands_.load(std::memory_order_relaxed);
  }
  /// Mutating commands refused for a missing, malformed, or wrong MAC.
  std::uint64_t auth_failures() const {
    return auth_failures_.load(std::memory_order_relaxed);
  }

  /// Client helper: send one command line to a control socket and return
  /// the daemon's reply ("OK" or "ERROR: ..."). With @p keys, the command
  /// is sent with an auth prefix signed under the current key.
  static Status SendCommand(const std::string& socket_path,
                            const std::string& command, std::string* reply,
                            const KeyManager* keys = nullptr);

 private:
  void ServeLoop();
  void ServeClient(int fd);
  /// Authenticate + dispatch one complete command line; returns the reply.
  std::string HandleLine(std::string_view line);

  Ldmsd& daemon_;
  ConfigProcessor processor_;
  std::string socket_path_;
  KeyManager* keys_;
  int listen_fd_ = -1;
  std::thread server_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> commands_{0};
  std::atomic<std::uint64_t> auth_failures_{0};
};

}  // namespace ldmsxx
