// Runtime control channel: "Access is controlled via permissions on a UNIX
// Domain Socket ... The owner of an LDMS instance controls it through a
// local UNIX Domain socket" (§IV-B, §IV-G). One line per command in the
// ldmsd configuration language; the reply is "OK" or "ERROR: <detail>".
// This is what lets users reconfigure sampling (including the on-the-fly
// interval change) on a live daemon without restarting it.
#pragma once

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "daemon/config.hpp"

namespace ldmsxx {

class ControlServer {
 public:
  /// @param daemon daemon the commands apply to
  /// @param socket_path filesystem path of the UNIX domain socket; an
  ///        existing file at the path is replaced
  ControlServer(Ldmsd& daemon, std::string socket_path);
  ~ControlServer();

  ControlServer(const ControlServer&) = delete;
  ControlServer& operator=(const ControlServer&) = delete;

  /// Bind, listen, and start serving. The socket is created with owner-only
  /// permissions (0600), the paper's access-control mechanism.
  Status Start();
  void Stop();

  const std::string& socket_path() const { return socket_path_; }
  std::uint64_t commands_served() const {
    return commands_.load(std::memory_order_relaxed);
  }

  /// Client helper: send one command line to a control socket and return
  /// the daemon's reply ("OK" or "ERROR: ...").
  static Status SendCommand(const std::string& socket_path,
                            const std::string& command, std::string* reply);

 private:
  void ServeLoop();
  void ServeClient(int fd);

  Ldmsd& daemon_;
  ConfigProcessor processor_;
  std::string socket_path_;
  int listen_fd_ = -1;
  std::thread server_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> commands_{0};
};

}  // namespace ldmsxx
