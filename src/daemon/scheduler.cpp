#include "daemon/scheduler.hpp"

#include <cassert>

namespace ldmsxx {

TimerScheduler::TimerScheduler(Clock& clock, ThreadPool* pool)
    : clock_(clock), pool_(pool) {}

TimerScheduler::~TimerScheduler() { Stop(); }

TimeNs TimerScheduler::FirstDeadline(const TaskOptions& options,
                                     TimeNs now) const {
  if (options.synchronous) {
    // Next wall-aligned boundary strictly after now.
    const TimeNs base = (now / options.interval + 1) * options.interval;
    return base + options.offset;
  }
  return now + options.interval;
}

TimeNs TimerScheduler::NextPeriodic(const TaskOptions& options,
                                    TimeNs prev_deadline, TimeNs now) const {
  TimeNs next = prev_deadline + options.interval;
  if (next <= now) {
    // Fell behind (slow task or suspended process): skip missed firings but
    // keep alignment for synchronous tasks.
    if (options.synchronous) {
      next = (now / options.interval + 1) * options.interval + options.offset;
    } else {
      next = now + options.interval;
    }
  }
  return next;
}

TimerScheduler::TaskId TimerScheduler::Schedule(std::function<void()> fn,
                                                const TaskOptions& options) {
  assert(options.interval > 0);
  std::lock_guard<std::mutex> lock(mu_);
  const TaskId id = next_id_++;
  Task task;
  task.fn = std::move(fn);
  task.options = options;
  tasks_.emplace(id, std::move(task));
  heap_.push({FirstDeadline(options, clock_.Now()), id, 0});
  cv_.notify_all();
  return id;
}

Status TimerScheduler::Reschedule(TaskId id, DurationNs new_interval) {
  if (new_interval == 0) {
    return {ErrorCode::kInvalidArgument, "interval must be positive"};
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tasks_.find(id);
  if (it == tasks_.end() || it->second.canceled) {
    return {ErrorCode::kNotFound, "no such task"};
  }
  it->second.options.interval = new_interval;
  ++it->second.generation;  // invalidate queued heap entries
  heap_.push({FirstDeadline(it->second.options, clock_.Now()), id,
              it->second.generation});
  cv_.notify_all();
  return Status::Ok();
}

void TimerScheduler::Cancel(TaskId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tasks_.find(id);
  if (it != tasks_.end()) it->second.canceled = true;
}

TimeNs TimerScheduler::NextDeadline() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Stale heap entries (canceled / rescheduled) may sit on top; peeking past
  // them would need a pop, so report the raw top — RunUntil and TimerLoop
  // handle staleness correctly on pop.
  if (heap_.empty()) return ~TimeNs{0};
  return heap_.top().deadline;
}

std::size_t TimerScheduler::task_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [id, task] : tasks_) {
    if (!task.canceled) ++n;
  }
  return n;
}

std::uint64_t TimerScheduler::skipped_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return skipped_total_;
}

std::uint64_t TimerScheduler::skipped_count(TaskId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tasks_.find(id);
  return it != tasks_.end() ? it->second.skipped : 0;
}

void TimerScheduler::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_) return;
    running_ = true;
  }
  timer_ = std::thread([this] { TimerLoop(); });
}

void TimerScheduler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    running_ = false;
  }
  cv_.notify_all();
  if (timer_.joinable()) timer_.join();
}

void TimerScheduler::TimerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (running_) {
    if (heap_.empty()) {
      cv_.wait(lock, [this] { return !running_ || !heap_.empty(); });
      continue;
    }
    const HeapEntry top = heap_.top();
    auto it = tasks_.find(top.id);
    const bool stale = it == tasks_.end() || it->second.canceled ||
                       it->second.generation != top.generation;
    if (stale) {
      heap_.pop();
      if (it != tasks_.end() && it->second.canceled) tasks_.erase(it);
      continue;
    }
    const TimeNs now = clock_.Now();
    if (top.deadline > now) {
      cv_.wait_for(lock, std::chrono::nanoseconds(top.deadline - now));
      continue;  // re-evaluate: heap may have changed
    }
    heap_.pop();
    heap_.push({NextPeriodic(it->second.options, top.deadline, now), top.id,
                top.generation});
    auto running = it->second.running;
    if (running->exchange(true)) {
      // Previous execution in flight: bypass this firing, don't queue it.
      ++it->second.skipped;
      ++skipped_total_;
      continue;
    }
    auto fn = it->second.fn;  // copy: task may be canceled while running
    lock.unlock();
    auto guarded = [fn = std::move(fn), running] {
      fn();
      running->store(false, std::memory_order_release);
    };
    if (pool_ != nullptr) {
      pool_->Submit(std::move(guarded));
    } else {
      guarded();
    }
    lock.lock();
  }
}

void TimerScheduler::RunUntil(SimClock& sim, TimeNs until) {
  for (;;) {
    std::function<void()> fn;
    {
      std::lock_guard<std::mutex> lock(mu_);
      // Drop stale entries.
      while (!heap_.empty()) {
        const HeapEntry top = heap_.top();
        auto it = tasks_.find(top.id);
        if (it == tasks_.end() || it->second.canceled ||
            it->second.generation != top.generation) {
          heap_.pop();
          if (it != tasks_.end() && it->second.canceled) tasks_.erase(it);
          continue;
        }
        break;
      }
      if (heap_.empty() || heap_.top().deadline > until) break;
      const HeapEntry top = heap_.top();
      heap_.pop();
      auto it = tasks_.find(top.id);
      if (top.deadline < sim.Now()) {
        // The previous execution advanced the sim clock past this deadline,
        // i.e. it was still "in flight" when the deadline came due. Mirror
        // threaded mode: count a skipped firing, reschedule, don't run.
        // (Also keeps SimClock::SetTime monotonic.)
        ++it->second.skipped;
        ++skipped_total_;
        heap_.push({NextPeriodic(it->second.options, top.deadline,
                                 top.deadline),
                    top.id, top.generation});
        continue;
      }
      sim.SetTime(top.deadline);
      // Same successor computation as TimerLoop — NextPeriodic, not a bare
      // deadline+interval — so sim and real runs produce identical deadline
      // sequences for synchronous/offset tasks.
      heap_.push({NextPeriodic(it->second.options, top.deadline, top.deadline),
                  top.id, top.generation});
      fn = it->second.fn;
    }
    fn();
  }
  if (sim.Now() < until) sim.SetTime(until);
}

}  // namespace ldmsxx
