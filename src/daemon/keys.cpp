#include "daemon/keys.hpp"

#include <sys/stat.h>

#include <cstdio>
#include <random>

#include "util/atomic_file.hpp"
#include "util/strings.hpp"

namespace ldmsxx {
namespace {

inline std::uint64_t Rotl(std::uint64_t x, int b) {
  return (x << b) | (x >> (64 - b));
}

inline void SipRound(std::uint64_t& v0, std::uint64_t& v1, std::uint64_t& v2,
                     std::uint64_t& v3) {
  v0 += v1;
  v1 = Rotl(v1, 13);
  v1 ^= v0;
  v0 = Rotl(v0, 32);
  v2 += v3;
  v3 = Rotl(v3, 16);
  v3 ^= v2;
  v0 += v3;
  v3 = Rotl(v3, 21);
  v3 ^= v0;
  v2 += v1;
  v1 = Rotl(v1, 17);
  v1 ^= v2;
  v2 = Rotl(v2, 32);
}

std::uint64_t LoadLe64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

constexpr char kHexDigits[] = "0123456789abcdef";

}  // namespace

std::uint64_t SipHash24(const std::array<std::uint8_t, 16>& key,
                        std::string_view data) {
  const std::uint64_t k0 = LoadLe64(key.data());
  const std::uint64_t k1 = LoadLe64(key.data() + 8);
  std::uint64_t v0 = 0x736f6d6570736575ull ^ k0;
  std::uint64_t v1 = 0x646f72616e646f6dull ^ k1;
  std::uint64_t v2 = 0x6c7967656e657261ull ^ k0;
  std::uint64_t v3 = 0x7465646279746573ull ^ k1;

  const auto* in = reinterpret_cast<const std::uint8_t*>(data.data());
  const std::size_t len = data.size();
  const std::size_t full = len / 8;
  for (std::size_t i = 0; i < full; ++i) {
    const std::uint64_t m = LoadLe64(in + 8 * i);
    v3 ^= m;
    SipRound(v0, v1, v2, v3);
    SipRound(v0, v1, v2, v3);
    v0 ^= m;
  }
  std::uint64_t last = static_cast<std::uint64_t>(len & 0xff) << 56;
  for (std::size_t i = 0; i < (len & 7); ++i) {
    last |= static_cast<std::uint64_t>(in[8 * full + i]) << (8 * i);
  }
  v3 ^= last;
  SipRound(v0, v1, v2, v3);
  SipRound(v0, v1, v2, v3);
  v0 ^= last;
  v2 ^= 0xff;
  SipRound(v0, v1, v2, v3);
  SipRound(v0, v1, v2, v3);
  SipRound(v0, v1, v2, v3);
  SipRound(v0, v1, v2, v3);
  return v0 ^ v1 ^ v2 ^ v3;
}

std::string MacToHex(std::uint64_t mac) {
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHexDigits[mac & 0xf];
    mac >>= 4;
  }
  return out;
}

namespace {

ControlKey FreshKey(std::uint32_t id) {
  ControlKey key;
  key.id = id;
  std::random_device rd;  // key material must not be reproducible
  for (auto& b : key.secret) {
    b = static_cast<std::uint8_t>(rd() & 0xff);
  }
  return key;
}

std::string SerializeKey(const ControlKey& key) {
  std::string out = "id " + std::to_string(key.id) + "\nkey ";
  for (const std::uint8_t b : key.secret) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xf]);
  }
  out.push_back('\n');
  return out;
}

bool ParseHexByte(char hi, char lo, std::uint8_t* out) {
  auto nibble = [](char c, int* v) {
    if (c >= '0' && c <= '9') *v = c - '0';
    else if (c >= 'a' && c <= 'f') *v = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') *v = c - 'A' + 10;
    else return false;
    return true;
  };
  int h = 0;
  int l = 0;
  if (!nibble(hi, &h) || !nibble(lo, &l)) return false;
  *out = static_cast<std::uint8_t>((h << 4) | l);
  return true;
}

bool ParseKeyFile(const std::string& text, ControlKey* out) {
  bool have_id = false;
  bool have_key = false;
  for (const auto line : Split(text, '\n')) {
    const auto fields = SplitWhitespace(line);
    if (fields.size() != 2) continue;
    if (fields[0] == "id") {
      const auto id = ParseU64(fields[1]);
      if (!id || *id > 0xffffffffull) return false;
      out->id = static_cast<std::uint32_t>(*id);
      have_id = true;
    } else if (fields[0] == "key") {
      if (fields[1].size() != 32) return false;
      for (std::size_t i = 0; i < 16; ++i) {
        if (!ParseHexByte(fields[1][2 * i], fields[1][2 * i + 1],
                          &out->secret[i])) {
          return false;
        }
      }
      have_key = true;
    }
  }
  return have_id && have_key;
}

}  // namespace

Status KeyManager::LoadOrCreate(const std::string& path,
                                std::unique_ptr<KeyManager>* out) {
  out->reset();
  std::string text;
  Status st = ReadFileToString(path, &text);
  if (st.ok()) {
    struct stat info{};
    if (::stat(path.c_str(), &info) == 0 && (info.st_mode & 0077) != 0) {
      return {ErrorCode::kInvalidArgument,
              "key file " + path + " is group/world accessible; chmod 600 it"};
    }
    ControlKey key;
    if (!ParseKeyFile(text, &key)) {
      return {ErrorCode::kInvalidArgument, "malformed key file: " + path};
    }
    out->reset(new KeyManager(path, key));
    return Status::Ok();
  }
  if (st.code() != ErrorCode::kNotFound) return st;
  const ControlKey key = FreshKey(1);
  st = AtomicWriteFile(path, SerializeKey(key), 0600);
  if (!st.ok()) return st;
  out->reset(new KeyManager(path, key));
  return Status::Ok();
}

ControlKey KeyManager::current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return key_;
}

Status KeyManager::Persist() const {
  return AtomicWriteFile(path_, SerializeKey(key_), 0600);
}

Status KeyManager::Rotate() {
  std::lock_guard<std::mutex> lock(mu_);
  const ControlKey next = FreshKey(key_.id + 1);
  const ControlKey previous = key_;
  key_ = next;
  Status st = Persist();
  if (!st.ok()) {
    key_ = previous;  // keep the on-disk and in-memory keys consistent
    return st;
  }
  ++rotations_;
  return Status::Ok();
}

std::string KeyManager::Sign(std::string_view line) const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::to_string(key_.id) + ":" + MacToHex(SipHash24(key_.secret, line));
}

bool KeyManager::Verify(std::string_view token, std::string_view line) const {
  const std::size_t colon = token.find(':');
  if (colon == std::string_view::npos) return false;
  const auto id = ParseU64(token.substr(0, colon));
  if (!id) return false;
  const std::string_view mac_hex = token.substr(colon + 1);
  std::lock_guard<std::mutex> lock(mu_);
  if (*id != key_.id) return false;
  const std::string expected = MacToHex(SipHash24(key_.secret, line));
  if (mac_hex.size() != expected.size()) return false;
  // Constant-time compare; a timing oracle on a 64-bit MAC is far-fetched
  // over a UNIX socket, but it costs nothing to do it right.
  unsigned diff = 0;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    diff |= static_cast<unsigned>(mac_hex[i]) ^
            static_cast<unsigned>(expected[i]);
  }
  return diff == 0;
}

}  // namespace ldmsxx
