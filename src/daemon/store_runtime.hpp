// Storage-path resilience: the runtime that sits between an aggregator's
// collection threads and each store plugin. The paper's storer pool decouples
// collection from "the speed of the store" (§IV-B); this file adds the two
// mechanisms that keep that decoupling safe when a store misbehaves:
//
//   1. A bounded per-policy write queue. A slow disk used to grow the storer
//      pool's unbounded task queue (one closure per stored sample) until the
//      aggregator fell over; now each policy holds at most queue_capacity
//      samples and sheds per its ShedPolicy, with depth/high-water gauges and
//      shed counters so the overload is visible instead of silent.
//
//   2. A per-policy circuit breaker. After breaker_threshold consecutive
//      StoreSet failures the policy is quarantined: writes are shed (and the
//      gap accounted) instead of burning a storer thread on a dead disk.
//      Retry uses exponential backoff with deterministic ±25% jitter (the
//      same discipline as producer reconnects), and recovery goes through a
//      half-open single probe write so one success — not a timer — closes
//      the breaker. A broken policy never affects its siblings.
//
// Writes are serialized per policy by a single-flight drain task that batches
// up to kDrainBatch samples per trip to the pool, then resubmits itself while
// work remains — so N policies share the storer pool fairly instead of one
// deep queue monopolizing a worker.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/metric_set.hpp"
#include "daemon/decomp/decomp.hpp"
#include "store/store.hpp"
#include "util/clock.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace ldmsxx {

/// What to do with a new sample when a policy's write queue is full.
enum class ShedPolicy : std::uint8_t {
  kDropOldest = 0,  // evict the queue head — keep the freshest data (default)
  kDropNewest,      // refuse the new sample — keep the oldest backlog
  kBlock,           // block the submitter until space frees (backpressure)
};

const char* ShedPolicyName(ShedPolicy policy);
/// Parse "drop_oldest" / "drop_newest" / "block"; false on anything else.
bool ParseShedPolicy(const std::string& text, ShedPolicy* out);

enum class BreakerState : std::uint8_t {
  kClosed = 0,  // healthy, writes flow
  kOpen,        // quarantined, writes shed until the backoff window elapses
  kHalfOpen,    // one probe write in flight; its outcome decides the state
};

const char* BreakerStateName(BreakerState state);

/// Routes stored sets to a storage plugin (the `strgp_add` command). The
/// constructor keeps the historical `{store, "schema", "producer"}` shape
/// working; resilience knobs follow with production-sane defaults.
struct StorePolicy {
  StorePolicy() = default;
  StorePolicy(std::shared_ptr<Store> s, std::string schema = "",
              std::string producer = "")
      : store(std::move(s)),
        schema_filter(std::move(schema)),
        producer_filter(std::move(producer)) {}

  std::shared_ptr<Store> store;
  /// Provenance for the cluster registry: the plugin name + params this
  /// policy's store was built from, so a restarted daemon can re-make the
  /// store through the PluginRegistry. Empty plugin = not reconstructible
  /// (hand-built store object), recorded but skipped on restore.
  std::string plugin;
  std::map<std::string, std::string> plugin_params;
  /// Only store sets whose schema name matches; empty = all.
  std::string schema_filter;
  /// Only store sets from this producer; empty = all.
  std::string producer_filter;
  /// Row-decomposition spec (`strgp_add decomp=...`), compiled once per
  /// schema digest into a flat column plan; empty = store whole sets. Only
  /// meaningful with a row_capable() store — config rejects the rest.
  std::string decomp;
  /// Policy name for logs/control queries; empty = derived from the store.
  std::string name;
  /// Max samples queued ahead of the storer pool; 0 = unbounded (old
  /// behaviour, discouraged).
  std::size_t queue_capacity = 1024;
  ShedPolicy shed_policy = ShedPolicy::kDropOldest;
  /// Consecutive StoreSet failures that trip the breaker; 0 disables it.
  std::uint64_t breaker_threshold = 5;
  /// Quarantine backoff: exponential doubling min→max, ±25% jitter seeded
  /// from the policy name (stable across runs, distinct across policies).
  DurationNs breaker_min_backoff = 100 * kNsPerMs;
  DurationNs breaker_max_backoff = 10 * kNsPerSec;
};

/// Aggregate storage-path counters, shared by every policy of a daemon and
/// surfaced through Ldmsd::Counters (the control socket's `counters` verb).
struct StoreCounters {
  std::atomic<std::uint64_t> stores{0};
  std::atomic<std::uint64_t> store_ns{0};
  std::atomic<std::uint64_t> store_failures{0};
  /// Samples dropped by full queues or an open breaker.
  std::atomic<std::uint64_t> shed_samples{0};
  std::atomic<std::uint64_t> breaker_trips{0};
  std::atomic<std::uint64_t> breaker_recoveries{0};
};

/// Point-in-time view of one policy (the `strgp_status` verb).
struct StorePolicyStatus {
  bool known = false;
  std::string name;
  std::size_t queue_depth = 0;
  std::size_t queue_high_water = 0;
  std::uint64_t stores = 0;
  std::uint64_t store_failures = 0;
  std::uint64_t shed_samples = 0;
  BreakerState breaker = BreakerState::kClosed;
  std::uint64_t consecutive_failures = 0;
  std::uint64_t breaker_trips = 0;
  std::uint64_t breaker_recoveries = 0;
  /// Samples shed while quarantined, lifetime total across episodes.
  std::uint64_t quarantine_gap = 0;
  /// Current quarantine backoff span; 0 when closed.
  DurationNs current_backoff = 0;
  /// Rows evicted by the store itself (e.g. memory_store's ring cap).
  std::uint64_t store_evictions = 0;
  /// Samples that failed row decomposition (plan compile or derive error).
  std::uint64_t decompose_failures = 0;
};

/// Per-policy storage runtime: bounded queue + breaker + drain scheduling.
/// One instance per AddStorePolicy call; immutable identity, all mutable
/// state behind one mutex. Thread-safe.
class StorePolicyRuntime {
 public:
  /// Samples written per drain-task trip before resubmitting; bounds how
  /// long one policy holds a storer thread while siblings wait.
  static constexpr std::size_t kDrainBatch = 16;

  StorePolicyRuntime(StorePolicy policy, Clock* clock, Logger* log,
                     StoreCounters* counters);

  const std::string& name() const { return policy_.name; }
  const StorePolicy& policy() const { return policy_; }

  /// Does this policy's schema/producer filter accept @p set?
  bool Matches(const MetricSet& set) const;

  /// Submit one sample. With a pool, enqueues (shedding per policy when
  /// full) and schedules the single-flight drain; with pool == nullptr the
  /// write runs inline (deterministic simulations, store_threads = 0). The
  /// breaker is consulted either way. @p set_mu serializes the store write
  /// against concurrent ApplyData on the mirror.
  void Submit(MetricSetPtr set, std::shared_ptr<std::mutex> set_mu,
              ThreadPool* pool);

  /// Write everything still queued, inline on the caller. Used at shutdown
  /// after the storer pool has been joined, so no sample accepted into a
  /// queue is silently lost. Breaker admission still applies.
  void DrainInline();

  /// Wake block-mode submitters and refuse further blocking; queued samples
  /// stay queued for DrainInline.
  void BeginShutdown();

  StorePolicyStatus status() const;

 private:
  struct Pending {
    MetricSetPtr set;
    std::shared_ptr<std::mutex> set_mu;
  };

  /// Breaker admission for one sample; caller holds mu_. Returns false when
  /// the sample must be shed (open breaker, or half-open with a probe
  /// already in flight).
  bool AdmitLocked();
  /// Record a write outcome covering @p samples; caller holds mu_.
  void RecordOutcomeLocked(bool ok, const Status& st,
                           std::uint64_t samples = 1);
  /// Pop-and-write up to kDrainBatch samples; resubmits itself while work
  /// remains. Runs on the storer pool.
  void DrainBatch(ThreadPool* pool);
  /// Write one sample through the store (outside mu_), then record the
  /// outcome (under mu_).
  void WriteOne(const Pending& item);
  /// Does this policy take the batched path (one store call per drain batch
  /// instead of one per sample)? True for decomposing policies and
  /// batch-capable stores; everything else keeps the historical per-sample
  /// WriteOne semantics exactly.
  bool batched() const {
    return decomposer_ != nullptr || policy_.store->batch_capable();
  }
  /// Write @p n samples in one store call: decomposed rows via StoreRows
  /// when the policy has a decomp spec, whole sets via StoreSetBatch
  /// otherwise. One breaker admission and one outcome per batch.
  void WriteBatch(const Pending* items, std::size_t n);

  const StorePolicy policy_;
  Clock* clock_;
  Logger* log_;
  StoreCounters* counters_;

  /// Set iff policy_.decomp parsed; Decomposer keeps per-series history for
  /// delta/rate columns, so writes through it serialize on write_mu_.
  std::unique_ptr<Decomposer> decomposer_;
  std::mutex write_mu_;
  RowBatch row_scratch_;             // guarded by write_mu_
  std::uint64_t decompose_failures_ = 0;  // guarded by mu_

  mutable std::mutex mu_;
  std::condition_variable space_cv_;  // block-mode submitters wait here
  std::deque<Pending> queue_;
  std::size_t queue_high_water_ = 0;
  bool draining_ = false;  // a drain task is scheduled or running
  bool stopping_ = false;

  // Breaker state (guarded by mu_).
  BreakerState breaker_ = BreakerState::kClosed;
  std::uint64_t consecutive_failures_ = 0;
  DurationNs backoff_ = 0;
  TimeNs retry_at_ = 0;
  bool probe_in_flight_ = false;
  Rng jitter_rng_;

  // Per-policy counters (guarded by mu_; aggregates also go to counters_).
  std::uint64_t stores_ = 0;
  std::uint64_t store_failures_ = 0;
  std::uint64_t shed_samples_ = 0;
  std::uint64_t breaker_trips_ = 0;
  std::uint64_t breaker_recoveries_ = 0;
  std::uint64_t quarantine_gap_ = 0;   // lifetime, across episodes
  std::uint64_t episode_gap_ = 0;      // current/most recent episode
};

}  // namespace ldmsxx
