// Name -> plugin factory registries, the moral equivalent of ldmsd's
// dlopen-based plugin loading. Static libraries make self-registration
// fragile, so modules expose an explicit registration call (e.g.
// RegisterBuiltinSamplers() in the sampler library) that applications invoke
// once at startup.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "daemon/plugin.hpp"
#include "store/store.hpp"

namespace ldmsxx {

/// Factory building a sampler plugin instance from its config params.
using SamplerFactory =
    std::function<SamplerPluginPtr(const PluginParams& params)>;

/// Factory building a store plugin instance from its config params.
using StoreFactory =
    std::function<std::shared_ptr<Store>(const PluginParams& params)>;

class PluginRegistry {
 public:
  static PluginRegistry& Instance();

  void AddSampler(const std::string& name, SamplerFactory factory);
  void AddStore(const std::string& name, StoreFactory factory);

  /// nullptr result when unknown.
  SamplerPluginPtr MakeSampler(const std::string& name,
                               const PluginParams& params) const;
  std::shared_ptr<Store> MakeStore(const std::string& name,
                                   const PluginParams& params) const;

  bool HasSampler(const std::string& name) const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, SamplerFactory> samplers_;
  std::unordered_map<std::string, StoreFactory> stores_;
};

/// Register the four built-in store plugins (store_csv, store_flatfile,
/// store_sos, store_mem). Idempotent.
void RegisterBuiltinStores();

}  // namespace ldmsxx
