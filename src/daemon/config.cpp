#include "daemon/config.hpp"

#include "daemon/decomp/decomp.hpp"
#include "daemon/topology.hpp"
#include "store/tsdb/tsdb_store.hpp"
#include "util/strings.hpp"

namespace ldmsxx {
namespace {

PluginParams ToParams(
    const std::vector<std::pair<std::string, std::string>>& kvs,
    std::size_t skip) {
  PluginParams params;
  for (std::size_t i = skip; i < kvs.size(); ++i) {
    params[kvs[i].first] = kvs[i].second;
  }
  return params;
}

std::optional<DurationNs> IntervalUsParam(const PluginParams& args,
                                          const std::string& key) {
  auto it = args.find(key);
  if (it == args.end()) return std::nullopt;
  auto us = ParseU64(it->second);
  if (!us) return std::nullopt;
  return *us * kNsPerUs;
}

}  // namespace

bool IsMutatingControlVerb(std::string_view verb) {
  // Query verbs are the explicit allowlist; everything else — including
  // verbs added later and typos — requires auth (fail closed).
  return !(verb == "counters" || verb == "strgp_status" ||
           verb == "prdcr_status" || verb == "tree_status" ||
           verb == "registry_status" || verb == "auth_status" ||
           verb == "query");
}

ConfigProcessor::ConfigProcessor(Ldmsd& daemon, PluginRegistry* registry)
    : daemon_(daemon),
      registry_(registry != nullptr ? registry : &PluginRegistry::Instance()) {}

Status ConfigProcessor::Execute(std::string_view line) {
  return Execute(line, nullptr);
}

Status ConfigProcessor::Execute(std::string_view line, std::string* output) {
  if (output != nullptr) output->clear();
  line = Trim(line);
  if (line.empty() || line.front() == '#') return Status::Ok();
  auto kvs = ParseKeyValues(line);
  if (kvs.empty()) return Status::Ok();
  const std::string& verb = kvs[0].first;
  PluginParams args = ToParams(kvs, 1);

  if (verb == "load") return CmdLoad(args);
  if (verb == "config") return CmdConfig(args);
  if (verb == "start") return CmdStart(args);
  if (verb == "stop") return CmdStop(args);
  if (verb == "interval") return CmdInterval(args);
  if (verb == "prdcr_add") return CmdPrdcrAdd(args);
  if (verb == "prdcr_del") return CmdPrdcrDel(args);
  if (verb == "strgp_add") return CmdStrgpAdd(args);
  if (verb == "registry_export") return CmdRegistryExport(args);
  if (verb == "registry_import") return CmdRegistryImport(args);
  if (verb == "registry_status") {
    std::string local;
    return CmdRegistryStatus(output != nullptr ? output : &local);
  }
  if (verb == "strgp_status") {
    std::string local;
    return CmdStrgpStatus(args, output != nullptr ? output : &local);
  }
  if (verb == "prdcr_status") {
    std::string local;
    return CmdPrdcrStatus(args, output != nullptr ? output : &local);
  }
  if (verb == "counters") {
    std::string local;
    return CmdCounters(output != nullptr ? output : &local);
  }
  if (verb == "tree_status") {
    std::string local;
    return CmdTreeStatus(args, output != nullptr ? output : &local);
  }
  if (verb == "query") {
    std::string local;
    return CmdQuery(args, output != nullptr ? output : &local);
  }
  return {ErrorCode::kInvalidArgument, "unknown command: " + verb};
}

Status ConfigProcessor::ExecuteScript(std::string_view script) {
  std::size_t line_no = 0;
  for (std::string_view line : Split(script, '\n')) {
    ++line_no;
    Status st = Execute(line);
    if (!st.ok()) {
      return {st.code(),
              "line " + std::to_string(line_no) + ": " + st.message()};
    }
  }
  return Status::Ok();
}

Status ConfigProcessor::CmdLoad(const PluginParams& args) {
  auto it = args.find("name");
  if (it == args.end()) {
    return {ErrorCode::kInvalidArgument, "load requires name="};
  }
  if (!registry_->HasSampler(it->second)) {
    return {ErrorCode::kNotFound, "unknown sampler plugin: " + it->second};
  }
  pending_[it->second];  // create empty pending config
  return Status::Ok();
}

Status ConfigProcessor::CmdConfig(const PluginParams& args) {
  auto it = args.find("name");
  if (it == args.end()) {
    return {ErrorCode::kInvalidArgument, "config requires name="};
  }
  auto pending = pending_.find(it->second);
  if (pending == pending_.end()) {
    return {ErrorCode::kNotFound, "plugin not loaded: " + it->second};
  }
  for (const auto& [key, value] : args) {
    if (key != "name") pending->second[key] = value;
  }
  return Status::Ok();
}

Status ConfigProcessor::CmdStart(const PluginParams& args) {
  auto it = args.find("name");
  if (it == args.end()) {
    return {ErrorCode::kInvalidArgument, "start requires name="};
  }
  auto pending = pending_.find(it->second);
  if (pending == pending_.end()) {
    return {ErrorCode::kNotFound, "plugin not loaded: " + it->second};
  }
  SamplerConfig config;
  config.params = pending->second;
  if (auto interval = IntervalUsParam(args, "interval")) {
    config.interval = *interval;
  } else {
    return {ErrorCode::kInvalidArgument, "start requires interval=<usec>"};
  }
  if (auto offset = IntervalUsParam(args, "offset")) config.offset = *offset;
  if (auto sync = args.find("sync"); sync != args.end()) {
    config.synchronous = sync->second == "1";
  }
  SamplerPluginPtr plugin = registry_->MakeSampler(it->second, config.params);
  if (plugin == nullptr) {
    return {ErrorCode::kNotFound, "unknown sampler plugin: " + it->second};
  }
  Status st = daemon_.AddSampler(std::move(plugin), config);
  if (st.ok()) pending_.erase(pending);
  return st;
}

Status ConfigProcessor::CmdStop(const PluginParams& args) {
  auto it = args.find("name");
  if (it == args.end()) {
    return {ErrorCode::kInvalidArgument, "stop requires name="};
  }
  return daemon_.RemoveSampler(it->second);
}

Status ConfigProcessor::CmdInterval(const PluginParams& args) {
  auto it = args.find("name");
  auto interval = IntervalUsParam(args, "interval");
  if (it == args.end() || !interval) {
    return {ErrorCode::kInvalidArgument,
            "interval requires name= and interval=<usec>"};
  }
  return daemon_.SetSamplingInterval(it->second, *interval);
}

Status ConfigProcessor::CmdPrdcrAdd(const PluginParams& args) {
  ProducerConfig config;
  if (auto it = args.find("name"); it != args.end()) {
    config.name = it->second;
  } else {
    return {ErrorCode::kInvalidArgument, "prdcr_add requires name="};
  }
  if (auto it = args.find("xprt"); it != args.end())
    config.transport = it->second;
  if (auto it = args.find("host"); it != args.end())
    config.address = it->second;
  if (auto interval = IntervalUsParam(args, "interval")) {
    config.interval = *interval;
  }
  if (auto offset = IntervalUsParam(args, "offset")) config.offset = *offset;
  if (auto it = args.find("sync"); it != args.end())
    config.synchronous = it->second == "1";
  if (auto timeout = IntervalUsParam(args, "timeout")) {
    config.request_timeout = *timeout;
  }
  if (auto min_backoff = IntervalUsParam(args, "reconnect_min")) {
    config.reconnect_min_backoff = *min_backoff;
  }
  if (auto max_backoff = IntervalUsParam(args, "reconnect_max")) {
    config.reconnect_max_backoff = *max_backoff;
  }
  if (auto it = args.find("sets"); it != args.end()) {
    for (auto inst : Split(it->second, ',')) {
      if (!inst.empty()) config.set_instances.emplace_back(inst);
    }
  }
  if (auto rediscover = IntervalUsParam(args, "rediscover")) {
    config.rediscover_interval = *rediscover;
  }
  if (auto it = args.find("delta"); it != args.end())
    config.delta_updates = it->second == "1";
  if (auto it = args.find("standby"); it != args.end())
    config.standby = it->second == "1";
  if (auto it = args.find("standby_for"); it != args.end())
    config.standby_for = it->second;
  return daemon_.AddProducer(config);
}

Status ConfigProcessor::CmdPrdcrDel(const PluginParams& args) {
  auto it = args.find("name");
  if (it == args.end()) {
    return {ErrorCode::kInvalidArgument, "prdcr_del requires name="};
  }
  return daemon_.RemoveProducer(it->second);
}

Status ConfigProcessor::CmdStrgpAdd(const PluginParams& args) {
  auto plugin_it = args.find("plugin");
  if (plugin_it == args.end()) {
    return {ErrorCode::kInvalidArgument, "strgp_add requires plugin="};
  }
  auto store = registry_->MakeStore(plugin_it->second, args);
  if (store == nullptr) {
    return {ErrorCode::kNotFound,
            "unknown store plugin: " + plugin_it->second};
  }
  StorePolicy policy;
  policy.store = std::move(store);
  // Provenance for restart-resume: the cluster registry records the plugin
  // name + args so a restarted daemon can re-make this store.
  policy.plugin = plugin_it->second;
  policy.plugin_params = args;
  if (auto it = args.find("name"); it != args.end()) policy.name = it->second;
  if (auto it = args.find("schema"); it != args.end())
    policy.schema_filter = it->second;
  if (auto it = args.find("producer"); it != args.end())
    policy.producer_filter = it->second;
  if (auto it = args.find("queue"); it != args.end()) {
    auto n = ParseU64(it->second);
    if (!n) return {ErrorCode::kInvalidArgument, "bad queue=" + it->second};
    policy.queue_capacity = static_cast<std::size_t>(*n);
  }
  if (auto it = args.find("shed"); it != args.end()) {
    if (!ParseShedPolicy(it->second, &policy.shed_policy)) {
      return {ErrorCode::kInvalidArgument, "bad shed=" + it->second};
    }
  }
  if (auto it = args.find("breaker_k"); it != args.end()) {
    auto n = ParseU64(it->second);
    if (!n) {
      return {ErrorCode::kInvalidArgument, "bad breaker_k=" + it->second};
    }
    policy.breaker_threshold = *n;
  }
  if (auto min_backoff = IntervalUsParam(args, "breaker_min")) {
    policy.breaker_min_backoff = *min_backoff;
  }
  if (auto max_backoff = IntervalUsParam(args, "breaker_max")) {
    policy.breaker_max_backoff = *max_backoff;
  }
  if (auto it = args.find("decomp"); it != args.end()) {
    // Validate the spec here so a typo fails the command, not (silently)
    // the first stored sample. Metric resolution against the schema still
    // happens lazily at first sample — config does not know schemas.
    DecompSpec spec;
    Status st = ParseDecompSpec(it->second, &spec);
    if (!st.ok()) return st;
    if (!policy.store->row_capable()) {
      return {ErrorCode::kUnsupported,
              "decomp= requires a row-capable store plugin (" +
                  policy.plugin + " stores whole sets)"};
    }
    policy.decomp = it->second;
  }
  return daemon_.AddStorePolicy(std::move(policy));
}

Status ConfigProcessor::CmdStrgpStatus(const PluginParams& args,
                                       std::string* output) {
  if (auto it = args.find("name"); it != args.end()) {
    const StorePolicyStatus s = daemon_.store_policy_status(it->second);
    if (!s.known) {
      return {ErrorCode::kNotFound, "no such store policy: " + it->second};
    }
    *output = "name=" + s.name +
              " state=" + BreakerStateName(s.breaker) +
              " queue=" + std::to_string(s.queue_depth) +
              " high_water=" + std::to_string(s.queue_high_water) +
              " stores=" + std::to_string(s.stores) +
              " failures=" + std::to_string(s.store_failures) +
              " shed=" + std::to_string(s.shed_samples) +
              " trips=" + std::to_string(s.breaker_trips) +
              " recoveries=" + std::to_string(s.breaker_recoveries) +
              " gap=" + std::to_string(s.quarantine_gap) +
              " backoff_us=" + std::to_string(s.current_backoff / kNsPerUs) +
              " evictions=" + std::to_string(s.store_evictions) +
              " decomp_failures=" + std::to_string(s.decompose_failures);
    return Status::Ok();
  }
  for (const auto& name : daemon_.store_policy_names()) {
    if (!output->empty()) output->push_back(' ');
    *output += name;
  }
  return Status::Ok();
}

Status ConfigProcessor::CmdPrdcrStatus(const PluginParams& args,
                                       std::string* output) {
  if (auto it = args.find("name"); it != args.end()) {
    const Ldmsd::ProducerStatus s = daemon_.producer_status(it->second);
    if (!s.known) {
      return {ErrorCode::kNotFound, "no such producer: " + it->second};
    }
    *output = "name=" + it->second +
              " connected=" + std::to_string(s.connected ? 1 : 0) +
              " active=" + std::to_string(s.active ? 1 : 0) +
              " sets=" + std::to_string(s.sets_ready) +
              " failures=" + std::to_string(s.consecutive_failures) +
              " reconnects=" + std::to_string(s.reconnects) +
              " updates_batched=" + std::to_string(s.updates_batched) +
              " updates_unchanged=" + std::to_string(s.updates_unchanged) +
              " updates_delta=" + std::to_string(s.updates_delta) +
              " delta_bytes_saved=" + std::to_string(s.delta_bytes_saved) +
              " update_bytes_on_wire=" +
              std::to_string(s.update_bytes_on_wire) +
              " backoff_us=" + std::to_string(s.current_backoff / kNsPerUs);
    return Status::Ok();
  }
  for (const auto& name : daemon_.producer_names()) {
    if (!output->empty()) output->push_back(' ');
    *output += name;
  }
  return Status::Ok();
}

Status ConfigProcessor::CmdCounters(std::string* output) {
  const auto& c = daemon_.counters();
  auto get = [](const std::atomic<std::uint64_t>& v) {
    return std::to_string(v.load(std::memory_order_relaxed));
  };
  *output = "samples=" + get(c.samples) +
            " updates_ok=" + get(c.updates_ok) +
            " updates_no_new_data=" + get(c.updates_no_new_data) +
            " updates_failed=" + get(c.updates_failed) +
            " lookups=" + get(c.lookups) +
            " stores=" + get(c.storage.stores) +
            " store_failures=" + get(c.storage.store_failures) +
            " shed_samples=" + get(c.storage.shed_samples) +
            " breaker_trips=" + get(c.storage.breaker_trips) +
            " breaker_recoveries=" + get(c.storage.breaker_recoveries) +
            " connects_ok=" + get(c.connects_ok) +
            " connects_failed=" + get(c.connects_failed) +
            " reconnects=" + get(c.reconnects) +
            " backoff_deferrals=" + get(c.backoff_deferrals) +
            " announce_retries=" + get(c.announce_retries) +
            " updates_batched=" + get(c.updates_batched) +
            " updates_unchanged=" + get(c.updates_unchanged) +
            " updates_delta=" + get(c.updates_delta) +
            " delta_bytes_saved=" + get(c.delta_bytes_saved) +
            " update_bytes_on_wire=" + get(c.update_bytes_on_wire);
  // Snapshot-contention counters aggregated over the whole registry (local
  // sets and mirrors alike): how often a reader's seqlock snapshot had to
  // retry against a concurrent writer, and how often it gave up starved.
  std::uint64_t retries = 0;
  std::uint64_t starved = 0;
  for (const auto& instance : daemon_.sets().List()) {
    if (MetricSetPtr set = daemon_.sets().Find(instance)) {
      retries += set->snapshot_retries();
      starved += set->snapshot_starved();
    }
  }
  *output += " snapshot_retries=" + std::to_string(retries) +
             " snapshot_starved=" + std::to_string(starved);
  return Status::Ok();
}

Status ConfigProcessor::CmdTreeStatus(const PluginParams& args,
                                      std::string* output) {
  TreeManager* tree = daemon_.tree();
  if (tree == nullptr) {
    return {ErrorCode::kUnsupported,
            "no aggregation tree attached to this daemon"};
  }
  if (auto it = args.find("leaf"); it != args.end()) {
    auto leaf = ParseU64(it->second);
    const std::size_t slots = tree->leaf_count() + (tree->has_spare() ? 1 : 0);
    if (!leaf || *leaf >= slots) {
      return {ErrorCode::kInvalidArgument, "bad leaf=" + it->second};
    }
    *output = tree->LeafStatusString(static_cast<std::size_t>(*leaf));
    return Status::Ok();
  }
  *output = tree->StatusString();
  return Status::Ok();
}

Status ConfigProcessor::CmdRegistryStatus(std::string* output) {
  ClusterRegistry* registry = daemon_.registry();
  if (registry == nullptr) {
    return {ErrorCode::kUnsupported, "no cluster registry configured"};
  }
  *output = registry->StatusString();
  return Status::Ok();
}

Status ConfigProcessor::CmdRegistryExport(const PluginParams& args) {
  ClusterRegistry* registry = daemon_.registry();
  if (registry == nullptr) {
    return {ErrorCode::kUnsupported, "no cluster registry configured"};
  }
  auto it = args.find("path");
  if (it == args.end() || it->second.empty()) {
    return {ErrorCode::kInvalidArgument, "registry_export requires path="};
  }
  return registry->ExportTo(it->second);
}

Status ConfigProcessor::CmdQuery(const PluginParams& args,
                                 std::string* output) {
  auto strgp = args.find("strgp");
  if (strgp == args.end()) {
    return {ErrorCode::kInvalidArgument, "query requires strgp="};
  }
  std::string mode = "rows";
  if (auto it = args.find("mode"); it != args.end()) mode = it->second;
  TsdbStore* tsdb = nullptr;
  std::shared_ptr<Store> store;
  if (mode != "fanout") {
    // All other modes run against this daemon's own store; fanout is the
    // aggregator shape, where the store lives on the tree leaves.
    store = daemon_.store_for_policy(strgp->second);
    if (store == nullptr) {
      return {ErrorCode::kNotFound, "no such store policy: " + strgp->second};
    }
    tsdb = dynamic_cast<TsdbStore*>(store.get());
    if (tsdb == nullptr) {
      return {ErrorCode::kUnsupported,
              "strgp " + strgp->second + " is not backed by store_tsdb"};
    }
  }
  if (mode == "tables") {
    for (const auto& table : tsdb->Tables()) {
      if (!output->empty()) output->push_back(' ');
      *output += table;
    }
    return Status::Ok();
  }

  TsdbQuery q;
  if (auto it = args.find("table"); it != args.end()) {
    q.table = it->second;
  } else {
    return {ErrorCode::kInvalidArgument, "query requires table="};
  }
  if (auto t0 = IntervalUsParam(args, "t0_us")) q.t0 = *t0;
  if (auto t1 = IntervalUsParam(args, "t1_us")) q.t1 = *t1;
  if (auto it = args.find("nodes"); it != args.end()) {
    for (auto node_sv : Split(it->second, ',')) {
      auto node = ParseU64(node_sv);
      if (!node) {
        return {ErrorCode::kInvalidArgument,
                "bad nodes=" + it->second};
      }
      q.nodes.push_back(*node);
    }
  }
  if (auto it = args.find("metrics"); it != args.end()) {
    for (auto metric : Split(it->second, ',')) {
      if (!metric.empty()) q.metrics.emplace_back(metric);
    }
  }
  std::size_t limit = 64;
  if (auto it = args.find("limit"); it != args.end()) {
    auto n = ParseU64(it->second);
    if (!n) return {ErrorCode::kInvalidArgument, "bad limit=" + it->second};
    limit = static_cast<std::size_t>(*n);
  }

  if (mode == "rollup") {
    std::vector<TsdbRollupRow> rollups;
    Status st = tsdb->QueryRollup(q, &rollups);
    if (!st.ok()) return st;
    *output = "buckets=" + std::to_string(rollups.size());
    std::size_t emitted = 0;
    for (const auto& r : rollups) {
      if (emitted++ >= limit) break;
      *output += " rollup=" + std::to_string(r.bucket / kNsPerUs) + ":" +
                 std::to_string(r.node) + ":" + r.metric + ":" +
                 std::to_string(r.min) + ":" + std::to_string(r.max) + ":" +
                 std::to_string(r.avg) + ":" + std::to_string(r.count);
    }
    return Status::Ok();
  }
  if (mode == "fanout") {
    // Tree-sharded fan-out: forward the predicate to every producer peer's
    // local store and merge the bounded result pages.
    QueryRequest req;
    req.strgp = strgp->second;
    req.table = q.table;
    req.t0 = q.t0;
    req.t1 = q.t1;
    req.nodes = q.nodes;
    req.metrics = q.metrics;
    req.limit = static_cast<std::uint32_t>(limit);
    Ldmsd::FanoutResult fanout;
    Status st = daemon_.FanoutQuery(req, &fanout);
    if (!st.ok()) return st;
    const QueryResponse& merged = fanout.merged;
    std::string columns;
    for (const auto& column : merged.columns) {
      if (!columns.empty()) columns.push_back(',');
      columns += column;
    }
    *output = "columns=" + columns +
              " rows=" + std::to_string(merged.rows.size()) +
              " total_rows=" + std::to_string(merged.total_rows) +
              " truncated=" + std::to_string(merged.truncated) +
              " leaves_ok=" + std::to_string(fanout.leaves_ok) +
              " leaves_failed=" + std::to_string(fanout.leaves_failed) +
              " segments_considered=" +
              std::to_string(merged.segments_considered) +
              " segments_pruned=" + std::to_string(merged.segments_pruned) +
              " segments_read=" + std::to_string(merged.segments_read) +
              " bytes_read=" + std::to_string(merged.bytes_read) +
              " bytes_decoded=" + std::to_string(merged.bytes_decoded);
    for (const auto& row : merged.rows) {
      *output += " row=" + std::to_string(row.ts / kNsPerUs) + ":" +
                 std::to_string(row.node);
      for (const double v : row.values) *output += ":" + std::to_string(v);
    }
    return Status::Ok();
  }
  if (mode != "rows") {
    return {ErrorCode::kInvalidArgument, "bad mode=" + mode};
  }
  TsdbQueryResult result;
  Status st = tsdb->Query(q, &result);
  if (!st.ok()) return st;
  std::string columns;
  for (const auto& column : result.columns) {
    if (!columns.empty()) columns.push_back(',');
    columns += column;
  }
  *output = "columns=" + columns +
            " rows=" + std::to_string(result.rows.size()) +
            " segments_considered=" + std::to_string(result.segments_considered) +
            " segments_pruned=" + std::to_string(result.segments_pruned) +
            " segments_read=" + std::to_string(result.segments_read) +
            " bytes_read=" + std::to_string(result.bytes_read) +
            " bytes_decoded=" + std::to_string(result.bytes_decoded);
  std::size_t emitted = 0;
  for (const auto& row : result.rows) {
    if (emitted++ >= limit) break;
    *output += " row=" + std::to_string(row.ts / kNsPerUs) + ":" +
               std::to_string(row.node);
    for (const double v : row.values) *output += ":" + std::to_string(v);
  }
  return Status::Ok();
}

Status ConfigProcessor::CmdRegistryImport(const PluginParams& args) {
  ClusterRegistry* registry = daemon_.registry();
  if (registry == nullptr) {
    return {ErrorCode::kUnsupported, "no cluster registry configured"};
  }
  auto it = args.find("path");
  if (it == args.end() || it->second.empty()) {
    return {ErrorCode::kInvalidArgument, "registry_import requires path="};
  }
  return registry->ImportFrom(it->second);
}

}  // namespace ldmsxx
