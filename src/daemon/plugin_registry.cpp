#include "daemon/plugin_registry.hpp"

#include "store/csv_store.hpp"
#include "store/fault_store.hpp"
#include "store/flatfile_store.hpp"
#include "store/memory_store.hpp"
#include "store/sos_store.hpp"
#include "store/tsdb/tsdb_store.hpp"
#include "util/strings.hpp"

namespace ldmsxx {

PluginRegistry& PluginRegistry::Instance() {
  static PluginRegistry registry;
  return registry;
}

void PluginRegistry::AddSampler(const std::string& name,
                                SamplerFactory factory) {
  std::lock_guard<std::mutex> lock(mu_);
  samplers_[name] = std::move(factory);
}

void PluginRegistry::AddStore(const std::string& name, StoreFactory factory) {
  std::lock_guard<std::mutex> lock(mu_);
  stores_[name] = std::move(factory);
}

SamplerPluginPtr PluginRegistry::MakeSampler(const std::string& name,
                                             const PluginParams& params) const {
  SamplerFactory factory;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = samplers_.find(name);
    if (it == samplers_.end()) return nullptr;
    factory = it->second;
  }
  return factory(params);
}

std::shared_ptr<Store> PluginRegistry::MakeStore(
    const std::string& name, const PluginParams& params) const {
  StoreFactory factory;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = stores_.find(name);
    if (it == stores_.end()) return nullptr;
    factory = it->second;
  }
  return factory(params);
}

bool PluginRegistry::HasSampler(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return samplers_.contains(name);
}

void RegisterBuiltinStores() {
  auto& registry = PluginRegistry::Instance();
  registry.AddStore("store_csv", [](const PluginParams& params) {
    CsvStoreOptions opts;
    if (auto it = params.find("path"); it != params.end())
      opts.root_path = it->second;
    if (auto it = params.find("altheader"); it != params.end())
      opts.header_in_separate_file = it->second == "1";
    return std::make_shared<CsvStore>(std::move(opts));
  });
  registry.AddStore("store_flatfile", [](const PluginParams& params) {
    FlatFileStoreOptions opts;
    if (auto it = params.find("path"); it != params.end())
      opts.root_path = it->second;
    return std::make_shared<FlatFileStore>(std::move(opts));
  });
  registry.AddStore("store_sos", [](const PluginParams& params) {
    SosStoreOptions opts;
    if (auto it = params.find("path"); it != params.end())
      opts.root_path = it->second;
    return std::make_shared<SosStore>(std::move(opts));
  });
  registry.AddStore("store_mem", [](const PluginParams& params) {
    std::size_t max_samples = 0;
    if (auto it = params.find("max_samples"); it != params.end()) {
      if (auto v = ParseU64(it->second)) max_samples = *v;
    }
    return std::make_shared<MemoryStore>(max_samples);
  });
  // Columnar time-series backend with indexed segments and rollups, e.g.
  //   strgp_add plugin=store_tsdb path=/data/tsdb segment_rows=4096
  //             rollup_sec=60 compress=1 scan_threads=4
  //             decomp=hot@cpu_user:user:rate,cpu_idle
  registry.AddStore("store_tsdb", [](const PluginParams& params) {
    TsdbOptions opts;
    if (auto it = params.find("path"); it != params.end())
      opts.root_path = it->second;
    if (auto it = params.find("segment_rows"); it != params.end()) {
      if (auto v = ParseU64(it->second); v && *v > 0) opts.segment_rows = *v;
    }
    if (auto it = params.find("rollup_sec"); it != params.end()) {
      if (auto v = ParseU64(it->second))
        opts.rollup_granularity = *v * kNsPerSec;
    }
    if (auto it = params.find("compress"); it != params.end())
      opts.compress = it->second != "0";
    if (auto it = params.find("scan_threads"); it != params.end()) {
      if (auto v = ParseU64(it->second)) opts.scan_threads = *v;
    }
    return std::make_shared<TsdbStore>(std::move(opts));
  });
  // Decorator: wraps another registered store plugin with a seeded fault
  // schedule. Probabilities are permille (integer config language); e.g.
  //   strgp_add plugin=store_fault inner=store_csv path=/x seed=7
  //             fail_permille=50 stall_permille=10 stall_us=500
  registry.AddStore("store_fault",
                    [&registry](const PluginParams& params)
                        -> std::shared_ptr<Store> {
    std::string inner_name = "store_mem";
    if (auto it = params.find("inner"); it != params.end())
      inner_name = it->second;
    auto inner = registry.MakeStore(inner_name, params);
    if (inner == nullptr) return nullptr;
    std::uint64_t seed = 0;
    if (auto it = params.find("seed"); it != params.end()) {
      if (auto v = ParseU64(it->second)) seed = *v;
    }
    StoreFaultSchedule::Probabilities probs;
    auto permille = [&params](const char* key, double* out) {
      if (auto it = params.find(key); it != params.end()) {
        if (auto v = ParseU64(it->second)) *out = *v / 1000.0;
      }
    };
    permille("fail_permille", &probs.fail_write);
    permille("partial_permille", &probs.partial_write);
    permille("stall_permille", &probs.stall);
    permille("flush_fail_permille", &probs.fail_flush);
    if (auto it = params.find("stall_us"); it != params.end()) {
      if (auto v = ParseU64(it->second)) probs.stall_ns = *v * kNsPerUs;
    }
    auto schedule = std::make_shared<StoreFaultSchedule>(seed, probs);
    return std::make_shared<FaultInjectingStore>(std::move(inner),
                                                 std::move(schedule));
  });
}

}  // namespace ldmsxx
