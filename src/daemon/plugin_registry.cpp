#include "daemon/plugin_registry.hpp"

#include "store/csv_store.hpp"
#include "store/flatfile_store.hpp"
#include "store/memory_store.hpp"
#include "store/sos_store.hpp"

namespace ldmsxx {

PluginRegistry& PluginRegistry::Instance() {
  static PluginRegistry registry;
  return registry;
}

void PluginRegistry::AddSampler(const std::string& name,
                                SamplerFactory factory) {
  std::lock_guard<std::mutex> lock(mu_);
  samplers_[name] = std::move(factory);
}

void PluginRegistry::AddStore(const std::string& name, StoreFactory factory) {
  std::lock_guard<std::mutex> lock(mu_);
  stores_[name] = std::move(factory);
}

SamplerPluginPtr PluginRegistry::MakeSampler(const std::string& name,
                                             const PluginParams& params) const {
  SamplerFactory factory;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = samplers_.find(name);
    if (it == samplers_.end()) return nullptr;
    factory = it->second;
  }
  return factory(params);
}

std::shared_ptr<Store> PluginRegistry::MakeStore(
    const std::string& name, const PluginParams& params) const {
  StoreFactory factory;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = stores_.find(name);
    if (it == stores_.end()) return nullptr;
    factory = it->second;
  }
  return factory(params);
}

bool PluginRegistry::HasSampler(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return samplers_.contains(name);
}

void RegisterBuiltinStores() {
  auto& registry = PluginRegistry::Instance();
  registry.AddStore("store_csv", [](const PluginParams& params) {
    CsvStoreOptions opts;
    if (auto it = params.find("path"); it != params.end())
      opts.root_path = it->second;
    if (auto it = params.find("altheader"); it != params.end())
      opts.header_in_separate_file = it->second == "1";
    return std::make_shared<CsvStore>(std::move(opts));
  });
  registry.AddStore("store_flatfile", [](const PluginParams& params) {
    FlatFileStoreOptions opts;
    if (auto it = params.find("path"); it != params.end())
      opts.root_path = it->second;
    return std::make_shared<FlatFileStore>(std::move(opts));
  });
  registry.AddStore("store_sos", [](const PluginParams& params) {
    SosStoreOptions opts;
    if (auto it = params.find("path"); it != params.end())
      opts.root_path = it->second;
    return std::make_shared<SosStore>(std::move(opts));
  });
  registry.AddStore("store_mem", [](const PluginParams&) {
    return std::make_shared<MemoryStore>();
  });
}

}  // namespace ldmsxx
