// Multi-level aggregation topology (§IV-B): N samplers are partitioned over
// L leaf aggregators feeding a root, the paper's Blue Waters daisy chain
// (27k nodes → leaf tier → root tier). TreeManager owns the placement and
// the repair bookkeeping; it does not own daemons — harnesses and benches
// wire Ldmsd instances to the shards it computes.
//
// Placement is rendezvous (highest-random-weight) hashing: every sampler
// scores every leaf with a seeded mix of the sampler key and the leaf key,
// and is owned by the highest-scoring *alive* leaf. The sampler key folds in
// the node id and its Gemini router id (node_id / 2 on the simulated torus,
// see sim/gemini.hpp), so placement is a pure function of
// (seed, node ids, alive leaf set). That gives, by construction:
//
//   stability — same seed + same node set → same assignment;
//   balance   — scores are uniform, shards stay within ~2x of each other;
//   minimal movement — removing one leaf reassigns only that leaf's shard
//     (every other sampler's argmax is unchanged), and a rejoining leaf
//     reclaims exactly its old shard.
//
// Repair: MarkLeafDown/MarkLeafUp recompute ownership and return the delta
// as Reassignments for the caller to apply to live daemons (activate a
// standby, add producers on the new owner, refresh the root's view). With a
// spare configured, a dead leaf's whole shard promotes to the spare
// (standby promotion) instead of redistributing across survivors.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/clock.hpp"

namespace ldmsxx {

/// Seeded rendezvous score of (sampler, leaf); the owner of a sampler is the
/// alive leaf maximizing this. splitmix64-style finalizers give full
/// avalanche so per-leaf score streams are independent.
std::uint64_t RendezvousScore(std::uint64_t seed, std::uint64_t sampler_key,
                              std::uint64_t leaf_key);

/// One simulated sampler host: name (set-instance prefix / producer name)
/// plus its node id on the simulated torus.
struct TreeSamplerId {
  std::string name;
  std::uint64_t node_id = 0;
};

struct TreeOptions {
  std::vector<TreeSamplerId> samplers;
  /// Leaf aggregator names, index order is the leaf index used everywhere.
  std::vector<std::string> leaves;
  std::string root_name = "root";
  /// Optional spare leaf: when non-empty, a dead leaf's shard promotes here
  /// wholesale instead of redistributing. Addressed as leaf index
  /// leaves.size().
  std::string spare_name;
  std::uint64_t seed = 1;
};

class TreeManager {
 public:
  /// Sampler index not owned by any leaf (all leaves dead, no spare).
  static constexpr std::size_t kUnassigned = static_cast<std::size_t>(-1);

  struct Reassignment {
    std::string sampler;
    std::size_t from_leaf = kUnassigned;
    std::size_t to_leaf = kUnassigned;
  };

  struct RepairEvent {
    TimeNs at = 0;
    std::string kind;  // "redistribute" | "promote" | "rejoin"
    std::string leaf;
    std::size_t sets_moved = 0;
  };

  explicit TreeManager(TreeOptions options);

  std::size_t sampler_count() const { return options_.samplers.size(); }
  std::size_t leaf_count() const { return options_.leaves.size(); }
  bool has_spare() const { return !options_.spare_name.empty(); }
  /// Leaf index of the spare (valid only when has_spare()).
  std::size_t spare_index() const { return options_.leaves.size(); }
  /// Levels in the tree: samplers → leaves → root.
  std::size_t depth() const { return 3; }
  const std::string& root_name() const { return options_.root_name; }
  /// Display name of leaf index i (the spare index maps to spare_name).
  const std::string& leaf_name(std::size_t leaf) const;

  /// Current owner of @p sampler (kUnassigned if orphaned or unknown).
  std::size_t leaf_of(const std::string& sampler) const;
  /// Samplers currently owned by leaf index @p leaf (spare index allowed).
  std::vector<std::string> shard(std::size_t leaf) const;
  bool leaf_alive(std::size_t leaf) const;
  std::size_t alive_leaf_count() const;

  /// Mark a leaf dead and recompute ownership; returns the moves the caller
  /// must apply downstream. Idempotent: a second MarkLeafDown on the same
  /// leaf returns no moves and records no event.
  std::vector<Reassignment> MarkLeafDown(std::size_t leaf, TimeNs now);
  /// Mark a restarted leaf alive again; it reclaims exactly the shard
  /// rendezvous assigns it (its pre-death shard, if the node set is stable).
  std::vector<Reassignment> MarkLeafUp(std::size_t leaf, TimeNs now);

  /// Add one sampler dynamically (self-assembly announce) and return its
  /// owner leaf. Rendezvous placement means adding a sampler moves nothing
  /// else. Re-announcing a known name just re-reports its current owner.
  std::size_t AddSampler(const TreeSamplerId& sampler);

  /// Full option set (for persisting the tree to the cluster registry: the
  /// assignment is a pure function of these plus the alive set).
  TreeOptions options() const;
  /// Leaf indices currently marked down (registry snapshot of alive state).
  std::vector<std::size_t> down_leaves() const;
  /// Re-apply a persisted alive set without recording repair events — the
  /// restart path reconstructs state, it does not repair anything.
  void RestoreDownLeaves(const std::vector<std::size_t>& down);

  std::vector<RepairEvent> events() const;
  std::uint64_t repairs() const;

  /// Single-line summary for the tree_status control verb: per-level depth,
  /// shard sizes, repair counters and the last repair event.
  std::string StatusString() const;
  /// Single-line shard listing for `tree_status leaf=<i>`.
  std::string LeafStatusString(std::size_t leaf) const;

 private:
  std::uint64_t SamplerKey(const TreeSamplerId& sampler) const;
  /// Rendezvous owner of sampler index @p i over the current alive set;
  /// mu_ held by caller.
  std::size_t PickLocked(std::size_t i) const;
  /// Recompute all owners, appending moves vs. the previous assignment;
  /// mu_ held by caller.
  std::vector<Reassignment> RecomputeLocked();

  TreeOptions options_;
  mutable std::mutex mu_;
  std::vector<bool> alive_;                // per leaf (spare excluded: always up)
  std::vector<std::size_t> owner_;         // sampler index -> leaf index
  std::vector<std::uint64_t> leaf_keys_;   // hashed leaf names (incl. spare)
  std::vector<std::uint64_t> sampler_keys_;
  std::vector<RepairEvent> events_;
};

}  // namespace ldmsxx
