// Failover watchdog. The paper: "there is currently no internal mechanism
// for a standby aggregator to detect a primary has gone down automatically.
// This is accomplished either manually or by an external watchdog program
// that provides notification" (§IV-B). This is that external watchdog: it
// polls a liveness predicate for each primary aggregator and, on failure,
// activates the corresponding standby producers on the backup aggregator.
#pragma once

#include <atomic>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "daemon/ldmsd.hpp"

namespace ldmsxx {

struct FailoverRule {
  /// Returns true while the primary aggregator is healthy.
  std::function<bool()> primary_alive;
  /// Aggregator holding the standby connections; may be null when
  /// on_failure performs the activation instead.
  Ldmsd* standby_daemon = nullptr;
  /// Standby producer names on @p standby_daemon to activate on failure.
  std::vector<std::string> standby_producers;
  /// Invoked on trigger (after any standby_producers activation). Test
  /// harnesses use this to re-resolve daemons that may have been restarted
  /// since the rule was installed, instead of holding a raw pointer.
  std::function<void()> on_failure;
  /// Consecutive failed polls required before declaring the primary dead.
  std::uint64_t failure_threshold = 2;
};

class FailoverWatchdog {
 public:
  explicit FailoverWatchdog(DurationNs poll_interval = kNsPerSec)
      : poll_interval_(poll_interval) {}
  ~FailoverWatchdog() { Stop(); }

  void AddRule(FailoverRule rule);

  /// Evaluate all rules once (tests and simulation drive this directly).
  /// Returns the number of failovers triggered by this poll.
  std::size_t Poll();

  /// Background polling thread (production mode).
  void Start();
  void Stop();

  std::uint64_t failovers() const {
    return failovers_.load(std::memory_order_relaxed);
  }

 private:
  struct RuleState {
    FailoverRule rule;
    std::uint64_t consecutive_failures = 0;
    /// Sticky while the primary stays dead (one failover per outage);
    /// re-armed when primary_alive() observes a recovery.
    bool triggered = false;
  };

  DurationNs poll_interval_;
  std::mutex mu_;
  std::vector<RuleState> rules_;
  std::atomic<std::uint64_t> failovers_{0};
  std::thread thread_;
  std::atomic<bool> running_{false};
};

}  // namespace ldmsxx
