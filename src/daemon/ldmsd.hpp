// ldmsd: the LDMS daemon. "The base LDMS component is the multi-threaded
// ldmsd daemon which is run in either sampler or aggregator mode and
// supports the store functionality when run in aggregator mode" (§IV-B).
// One class covers both modes; behaviour is purely configuration:
//
//   sampler mode    — AddSampler() plugins, Listen() for collectors
//   aggregator mode — AddProducer() targets to pull from, AddStorePolicy()
//                     to persist what arrives; mirrors are re-exported in
//                     the local set registry, which is what makes multi-
//                     level daisy-chained aggregation work.
//
// Thread pools, per the paper: a worker pool runs sampling and collection;
// a separate connection pool runs connection setup so connects hung in
// timeout cannot starve collection; a dedicated storage pool flushes to
// stable storage. Setting a pool's size to 0 runs that work inline, which
// the deterministic simulation mode uses.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/mem_manager.hpp"
#include "core/set_registry.hpp"
#include "daemon/keys.hpp"
#include "daemon/plugin.hpp"
#include "daemon/registry.hpp"
#include "daemon/scheduler.hpp"
#include "daemon/store_runtime.hpp"
#include "store/store.hpp"
#include "transport/registry.hpp"
#include "transport/transport.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace ldmsxx {

class PluginRegistry;

struct LdmsdOptions {
  /// Daemon name; also the default producer name stamped on local sets.
  std::string name = "ldmsd";
  /// Transport plugin + address to listen on; empty transport = no listener.
  std::string listen_transport;
  std::string listen_address;
  /// Metric-set memory pool size (the real ldmsd's -m flag).
  std::size_t set_memory = 1 << 20;
  /// Worker pool (sampling + collection). 0 = run inline.
  std::size_t worker_threads = 2;
  /// Connection-setup pool. 0 = connect inline.
  std::size_t connection_threads = 1;
  /// Storage flush pool. 0 = store inline.
  std::size_t store_threads = 1;
  std::string log_path;
  LogLevel log_level = LogLevel::kWarn;
  /// Time source; nullptr = RealClock.
  Clock* clock = nullptr;
  /// Transport plugins; nullptr = TransportRegistry::Default().
  TransportRegistry* transports = nullptr;
  /// Accept advertise messages by auto-adding the announcing producer.
  bool accept_advertised_producers = false;
  /// Collection interval used for advertised producers.
  DurationNs advertised_interval = kNsPerSec;
  /// Crash-safe cluster registry file; empty = no registry. With one set,
  /// producer/store/tree topology is persisted (atomically) across restarts
  /// and RestoreFromRegistry() can resume the whole configuration with no
  /// config script.
  std::string registry_path;
  /// Cadence of the periodic snapshot that flushes freshness-only registry
  /// changes (last-seen ticks, schema digests); topology mutations save
  /// eagerly regardless. 0 = only eager saves and the clean-shutdown save.
  DurationNs registry_snapshot_interval = 10 * kNsPerSec;
};

/// Per-sampler schedule (the `start name=X interval=...` command).
struct SamplerConfig {
  DurationNs interval = kNsPerSec;
  DurationNs offset = 0;
  bool synchronous = false;
  PluginParams params;
};

/// One collection target (the `prdcr_add` + `updtr_add` commands). The
/// aggregation schedule cannot be altered once set — restart the producer
/// to change it, matching the paper's stated limitation.
struct ProducerConfig {
  std::string name;
  std::string transport = "local";
  std::string address;
  DurationNs interval = kNsPerSec;
  DurationNs offset = 0;
  bool synchronous = false;
  /// Per-request deadline on this producer's connection; a stalled peer
  /// completes updates with kTimeout instead of wedging a collection thread.
  /// 0 = the transport's default (kDefaultRequestTimeoutNs).
  DurationNs request_timeout = 0;
  /// Reconnect backoff after *failed connect attempts*: exponential doubling
  /// from min to max with deterministic ±25% jitter (seeded per producer, so
  /// a herd of aggregators reconnecting to one restarted peer de-
  /// synchronizes reproducibly). A detected disconnect itself retries on the
  /// next cycle; backoff only grows while the peer stays unreachable.
  /// min = 0 disables gating entirely (retry every collection cycle).
  DurationNs reconnect_min_backoff = 50 * kNsPerMs;
  DurationNs reconnect_max_backoff = 2 * kNsPerSec;
  /// Set instances to collect; empty = discover all via dir().
  std::vector<std::string> set_instances;
  /// With dir()-discovery (set_instances empty), re-run dir+lookup at this
  /// cadence even while mirrors exist, so sets that appear on the peer
  /// *after* the first lookup (a mid-tier aggregator re-serving a repaired
  /// shard, late-starting samplers) are picked up without operator action.
  /// 0 = only the initial discovery (and explicit RefreshProducer() nudges).
  DurationNs rediscover_interval = 0;
  /// Declare delta-capable to the producer (protocol v2): sets that advanced
  /// exactly one transaction arrive as RLE extent deltas instead of full
  /// data chunks. Disable to force the full-chunk path (ablation, or as an
  /// escape hatch against a misbehaving peer).
  bool delta_updates = true;
  /// Standby connections are established (connect + lookup) but not pulled
  /// from until ActivateStandby() — fast failover (§IV-B).
  bool standby = false;
  /// Name of the primary producer this standby covers (bookkeeping only).
  std::string standby_for;
};

class Ldmsd final : public ServiceHandler {
 public:
  /// Aggregate activity counters (CPU/footprint accounting for §IV-D).
  struct Counters {
    std::atomic<std::uint64_t> samples{0};
    std::atomic<std::uint64_t> sample_ns{0};
    std::atomic<std::uint64_t> updates_ok{0};
    std::atomic<std::uint64_t> updates_no_new_data{0};
    std::atomic<std::uint64_t> updates_failed{0};
    /// Per-set pulls that travelled inside a kUpdateBatchReq frame instead
    /// of their own request frame.
    std::atomic<std::uint64_t> updates_batched{0};
    /// Pulls the producer answered with the 5-byte DGN-gate marker (no new
    /// sample), so no data chunk crossed the wire.
    std::atomic<std::uint64_t> updates_unchanged{0};
    /// Pulls answered with a delta payload (changed extents only) instead of
    /// the full data chunk, and the wire bytes that saved versus shipping
    /// the whole chunk.
    std::atomic<std::uint64_t> updates_delta{0};
    std::atomic<std::uint64_t> delta_bytes_saved{0};
    /// Transport bytes (tx+rx) attributable to collect cycles, as reported
    /// by the producer endpoints' stats deltas.
    std::atomic<std::uint64_t> update_bytes_on_wire{0};
    std::atomic<std::uint64_t> update_ns{0};
    std::atomic<std::uint64_t> lookups{0};
    /// Storage-path counters (queue shedding, breaker activity) shared by
    /// every store policy; see StoreCounters.
    StoreCounters storage;
    std::atomic<std::uint64_t> connects_ok{0};
    std::atomic<std::uint64_t> connects_failed{0};
    /// Successful re-establishments of a producer connection that had been
    /// up before (surfaced alongside skipped_firings for churn visibility).
    std::atomic<std::uint64_t> reconnects{0};
    /// Collection cycles that skipped a connect attempt because the
    /// producer's reconnect backoff window had not yet elapsed.
    std::atomic<std::uint64_t> backoff_deferrals{0};
    /// Announce attempts re-fired by AnnounceWithRetry after the current
    /// seed-aggregator target failed (failover re-seeding, ISSUE 9).
    std::atomic<std::uint64_t> announce_retries{0};
  };

  /// Health of one producer connection.
  struct ProducerStatus {
    bool known = false;
    bool connected = false;
    bool active = false;  // standby producers are inactive until failover
    std::uint64_t consecutive_failures = 0;
    std::uint64_t sets_ready = 0;
    /// Times this producer's connection was re-established after a drop.
    std::uint64_t reconnects = 0;
    /// Current backoff span; 0 when the last connect succeeded.
    DurationNs current_backoff = 0;
    /// Batch-protocol accounting for this producer (see Counters).
    std::uint64_t updates_batched = 0;
    std::uint64_t updates_unchanged = 0;
    std::uint64_t updates_delta = 0;
    std::uint64_t delta_bytes_saved = 0;
    std::uint64_t update_bytes_on_wire = 0;
  };

  explicit Ldmsd(LdmsdOptions options);
  ~Ldmsd() override;

  Ldmsd(const Ldmsd&) = delete;
  Ldmsd& operator=(const Ldmsd&) = delete;

  /// Bring up the listener (if configured) and the timer thread when using
  /// a real clock. With a SimClock, use RunUntil() instead of Start().
  Status Start();
  void Stop();

  // --- sampler mode -------------------------------------------------------

  /// Load + config + start a sampling plugin.
  Status AddSampler(SamplerPluginPtr plugin, const SamplerConfig& config);

  /// Change a running sampler's interval on the fly.
  Status SetSamplingInterval(const std::string& plugin_name,
                             DurationNs interval);

  /// Stop a sampler plugin and deregister its sets.
  Status RemoveSampler(const std::string& plugin_name);

  // --- aggregator mode ----------------------------------------------------

  Status AddProducer(const ProducerConfig& config);

  /// Stop collecting from a producer and drop its mirrors (the `prdcr_del`
  /// shape); removes it from the cluster registry too.
  Status RemoveProducer(const std::string& producer_name);

  /// Begin pulling from a standby producer (manual or watchdog failover).
  Status ActivateStandby(const std::string& producer_name);

  /// Stop pulling from a producer (does not drop the connection).
  Status DeactivateProducer(const std::string& producer_name);

  /// Force a dir+lookup on the producer's next collect cycle. Tree repair
  /// uses this to make the root re-discover a shard that moved to a new
  /// leaf without waiting out the rediscover_interval.
  Status RefreshProducer(const std::string& producer_name);

  /// Register a store policy. An empty policy.name is derived from the
  /// store's plugin name and uniquified with a "#N" suffix.
  Status AddStorePolicy(StorePolicy policy);

  /// Run @p set through every matching store policy, as if it had just been
  /// collected (sampler-mode local storage, and tests).
  void StoreLocalSet(const MetricSetPtr& set);

  ProducerStatus producer_status(const std::string& producer_name) const;
  std::vector<std::string> producer_names() const;

  /// Point-in-time view of one store policy; status.known is false for an
  /// unknown name.
  StorePolicyStatus store_policy_status(const std::string& policy_name) const;
  std::vector<std::string> store_policy_names() const;

  // --- simulation drive ---------------------------------------------------

  /// Deterministically run all schedules up to @p until. Requires
  /// options.clock to be @p sim and pools sized 0 for full determinism.
  void RunUntil(SimClock& sim, TimeNs until) { scheduler_.RunUntil(sim, until); }

  // --- ServiceHandler (requests arriving from peers) ----------------------

  std::vector<std::string> HandleDir() override;
  Status HandleLookup(const std::string& instance,
                      std::vector<std::byte>* metadata) override;
  Status HandleUpdate(const std::string& instance,
                      std::vector<std::byte>* data) override;
  void HandleAdvertise(const AdvertiseMsg& msg) override;
  MetricSetPtr HandleRdmaExpose(const std::string& instance) override;
  std::uint32_t HandleAssignHandle(const std::string& instance) override;
  MetricSetPtr HandleResolveHandle(std::uint32_t handle) override;
  /// Serve a tree-sharded query against this daemon's local tsdb store (the
  /// strgp named in the request). Errors are carried in resp->code so the
  /// root's merge can account the leaf as failed, not the transport.
  void HandleQuery(const QueryRequest& req, QueryResponse* resp) override;

  /// Result of fanning one query out to every producer peer: the merged,
  /// (ts, node)-ordered page plus per-leaf accounting. A leaf whose
  /// transport failed, timed out, or answered a non-zero code counts in
  /// leaves_failed; its rows are simply absent — partial results are the
  /// contract, exactly like `dir` over a degraded tree.
  struct FanoutResult {
    QueryResponse merged;
    std::size_t leaves_ok = 0;
    std::size_t leaves_failed = 0;
  };
  /// Forward @p req to every producer's endpoint (the aggregation-tree
  /// leaves, in deterministic name order) and merge the result pages.
  /// Returns Ok even when some leaves failed; the accounting says so.
  Status FanoutQuery(const QueryRequest& req, FanoutResult* out);

  // --- introspection ------------------------------------------------------

  const std::string& name() const { return options_.name; }
  SetRegistry& sets() { return sets_; }
  const SetRegistry& sets() const { return sets_; }
  MemManager& memory() { return mem_; }
  const Counters& counters() const { return counters_; }
  Logger& log() { return log_; }
  Clock& clock() const { return *clock_; }
  TimerScheduler& scheduler() { return scheduler_; }
  /// Sampling/collection firings skipped because the previous execution was
  /// still in flight (surfaced so operators can spot over-tight intervals).
  std::uint64_t skipped_firings() const { return scheduler_.skipped_total(); }
  /// Attach the aggregation-tree view this daemon roots (not owned); the
  /// tree_status control verb reads it, and the current tree state is
  /// snapshotted into the cluster registry. nullptr = no tree.
  void set_tree(TreeManager* tree) {
    tree_ = tree;
    RecordTreeState();
  }
  /// Like set_tree, but the daemon owns the manager — the shape restart-
  /// resume produces (the restored tree has no external owner).
  void AdoptTree(std::unique_ptr<TreeManager> tree);
  TreeManager* tree() const { return tree_; }
  /// Actual listener address (resolves ephemeral ports).
  std::string listen_address() const;
  /// Announce this daemon to an aggregator and ask it to connect back.
  Status AdvertiseTo(const std::string& transport, const std::string& address);
  /// Self-assembly: announce to a seed aggregator with our torus node id so
  /// it assigns us a leaf in its aggregation tree and persists the
  /// assignment (ISSUE 8 tentpole part 3).
  Status AnnounceTo(const std::string& transport, const std::string& address,
                    std::uint64_t node_id);
  /// One seed-aggregator announce target for AnnounceWithRetry.
  struct AnnounceTarget {
    std::string transport;
    std::string address;
  };
  /// AnnounceTo with failover re-seeding: try @p targets in order (primary
  /// first, standbys after); if every target refuses, keep retrying on the
  /// scheduler with exponential backoff, rotating through the targets, until
  /// one accepts. Each re-fired attempt bumps Counters.announce_retries, so
  /// a sampler stuck re-seeding is visible through the counters verb.
  /// Returns Ok when the first synchronous attempt landed; kDisconnected
  /// (with retries armed) otherwise.
  Status AnnounceWithRetry(std::vector<AnnounceTarget> targets,
                           std::uint64_t node_id,
                           DurationNs min_backoff = 50 * kNsPerMs,
                           DurationNs max_backoff = 2 * kNsPerSec);
  /// Store object behind a named policy (the `query` verb resolves its
  /// strgp name through this); nullptr for an unknown policy.
  std::shared_ptr<Store> store_for_policy(const std::string& policy_name) const;

  // --- cluster registry (crash-safe restart-resume) -----------------------

  /// The attached registry; nullptr when options.registry_path is empty.
  ClusterRegistry* registry() const { return registry_.get(); }
  /// Load the registry file and reconstitute producers, store policies
  /// (re-made through @p plugins), and the owned aggregation tree — no
  /// config script. Reconnection/lookup re-validation rides the existing
  /// collect-cycle backoff machinery. kUnsupported without a registry.
  Status RestoreFromRegistry(PluginRegistry* plugins);
  /// Re-snapshot the attached tree (options + down leaves) into the
  /// registry and save. Call after applying repairs (MarkLeafDown/Up).
  void RecordTreeState();
  /// Key manager whose current key id is stamped on registry records (not
  /// owned; typically shared with the control server). nullptr = id 0.
  void set_key_manager(KeyManager* keys) { keys_ = keys; }
  /// Invoked when an announce-flagged advertise is placed into the tree:
  /// (message, assigned leaf index). The wiring layer (harness/operator
  /// tooling) uses it to add the producer on the assigned leaf daemon.
  /// Without a hook, the announce falls back to local collection.
  using AnnounceHook =
      std::function<void(const AdvertiseMsg&, std::size_t leaf)>;
  void set_announce_hook(AnnounceHook hook) {
    announce_hook_ = std::move(hook);
  }

 private:
  struct SamplerEntry {
    SamplerPluginPtr plugin;
    SamplerConfig config;
    TimerScheduler::TaskId task = 0;
  };

  struct MirrorEntry {
    MetricSetPtr set;
    std::uint64_t last_gn = 0;
    /// Compact handle the producer assigned at lookup for batch-addressed
    /// pulls; kInvalidSetHandle against legacy peers. Refreshed on every
    /// (re-)lookup, since a producer restart invalidates old handles.
    std::uint32_t handle = kInvalidSetHandle;
    /// Serializes ApplyData against StoreSet.
    std::shared_ptr<std::mutex> mu = std::make_shared<std::mutex>();
  };

  struct Producer {
    ProducerConfig config;
    std::unique_ptr<Endpoint> endpoint;
    std::map<std::string, MirrorEntry> mirrors;
    bool connected = false;
    bool connecting = false;
    bool active = false;
    /// Set when a mirror was dropped (schema change) and must be re-looked
    /// up on the next cycle.
    bool need_lookup = false;
    std::uint64_t consecutive_failures = 0;
    /// True once a connect has ever succeeded; distinguishes reconnects
    /// from the first connection for the reconnect counters.
    bool ever_connected = false;
    std::uint64_t reconnects = 0;
    /// Current exponential backoff span (0 = none) and the earliest time the
    /// next connect attempt may run.
    DurationNs backoff = 0;
    TimeNs next_connect_attempt = 0;
    /// Earliest time the next periodic re-discovery (rediscover_interval)
    /// may run; 0 arms it on the first pull cycle.
    TimeNs next_rediscover = 0;
    /// Deterministic jitter stream, seeded from the producer name.
    Rng jitter_rng{0};
    TimerScheduler::TaskId task = 0;
    /// Batch accounting mirrored into ProducerStatus (guarded by mu).
    std::uint64_t updates_batched = 0;
    std::uint64_t updates_unchanged = 0;
    std::uint64_t updates_delta = 0;
    std::uint64_t delta_bytes_saved = 0;
    std::uint64_t update_bytes_on_wire = 0;
    /// Collect-cycle scratch (guarded by mu): reused across cycles so the
    /// steady-state pull path recycles capacity instead of reallocating.
    std::vector<Endpoint::BatchUpdateSpec> batch_specs;
    std::vector<Endpoint::BatchUpdateResult> batch_results;
    std::vector<MirrorEntry*> batch_entries;
    std::mutex mu;  // guards all mutable state above
  };

  using PolicyList = std::vector<std::shared_ptr<StorePolicyRuntime>>;

  void SampleOnce(SamplerEntry& entry);
  /// Record @p config into the registry (with the current key id) and save,
  /// unless restoring. No-op without a registry.
  void RecordProducer(const ProducerConfig& config);
  /// Flush freshness-only registry changes (periodic snapshot task).
  void SnapshotRegistry();
  Status AdvertiseInternal(const std::string& transport,
                           const std::string& address, bool announce,
                           std::uint64_t node_id);
  void CollectCycle(const std::shared_ptr<Producer>& producer);
  void ConnectProducer(const std::shared_ptr<Producer>& producer);
  /// Grow the backoff window after a failed connect; caller holds producer.mu.
  void ScheduleReconnect(Producer& producer);
  Status LookupSets(Producer& producer);  // caller holds producer.mu
  void StoreMirror(const MirrorEntry& mirror);
  /// Snapshot of the current policy list: copy-on-write, so the hot store
  /// path pays one refcount bump under state_mu_ instead of copying a
  /// vector of policies per stored sample.
  std::shared_ptr<const PolicyList> policies() const {
    std::lock_guard<std::mutex> lock(state_mu_);
    return store_policies_;
  }

  LdmsdOptions options_;
  Logger log_;
  Clock* clock_;
  TransportRegistry* transports_;
  MemManager mem_;
  SetRegistry sets_;

  std::unique_ptr<ThreadPool> workers_;     // may be null (inline)
  std::unique_ptr<ThreadPool> connectors_;  // may be null (inline)
  std::unique_ptr<ThreadPool> storers_;     // may be null (inline)
  TimerScheduler scheduler_;

  std::unique_ptr<Listener> listener_;

  mutable std::mutex state_mu_;  // guards the maps below
  std::map<std::string, SamplerEntry> samplers_;
  std::map<std::string, std::shared_ptr<Producer>> producers_;
  /// Immutable snapshot, swapped wholesale by AddStorePolicy (which also
  /// holds state_mu_ to serialize writers); readers go through policies().
  std::shared_ptr<const PolicyList> store_policies_ =
      std::make_shared<PolicyList>();

  Counters counters_;
  TreeManager* tree_ = nullptr;
  /// Set only by AdoptTree (restart-resume); tree_ aliases it then.
  std::unique_ptr<TreeManager> owned_tree_;
  std::unique_ptr<ClusterRegistry> registry_;  // null without registry_path
  KeyManager* keys_ = nullptr;                 // not owned
  AnnounceHook announce_hook_;
  /// Suppresses per-record eager saves while RestoreFromRegistry replays
  /// the snapshot (one save at the end instead of one per record).
  std::atomic<bool> restoring_{false};
  std::atomic<bool> started_{false};
};

}  // namespace ldmsxx
