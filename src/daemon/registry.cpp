#include "daemon/registry.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "util/atomic_file.hpp"
#include "util/strings.hpp"

namespace ldmsxx {
namespace {

std::uint64_t Fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

constexpr char kHexDigits[] = "0123456789abcdef";

bool Unreserved(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '-' || c == '.' || c == '_' ||
         c == '/' || c == '@';
}

/// Percent-encode so a value is a single whitespace-free token that cannot
/// contain the '=' ',' ':' separators the record grammar uses.
std::string Encode(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (Unreserved(c)) {
      out.push_back(c);
    } else {
      out.push_back('%');
      out.push_back(kHexDigits[static_cast<std::uint8_t>(c) >> 4]);
      out.push_back(kHexDigits[static_cast<std::uint8_t>(c) & 0xf]);
    }
  }
  return out;
}

bool HexVal(char c, int* v) {
  if (c >= '0' && c <= '9') *v = c - '0';
  else if (c >= 'a' && c <= 'f') *v = c - 'a' + 10;
  else if (c >= 'A' && c <= 'F') *v = c - 'A' + 10;
  else return false;
  return true;
}

bool Decode(std::string_view token, std::string* out) {
  out->clear();
  out->reserve(token.size());
  for (std::size_t i = 0; i < token.size(); ++i) {
    if (token[i] != '%') {
      out->push_back(token[i]);
      continue;
    }
    int hi = 0;
    int lo = 0;
    if (i + 2 >= token.size() || !HexVal(token[i + 1], &hi) ||
        !HexVal(token[i + 2], &lo)) {
      return false;
    }
    out->push_back(static_cast<char>((hi << 4) | lo));
    i += 2;
  }
  return true;
}

std::string HexU64(std::uint64_t v) {
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHexDigits[v & 0xf];
    v >>= 4;
  }
  return out;
}

std::optional<std::uint64_t> ParseHexU64(std::string_view text) {
  if (text.empty() || text.size() > 16) return std::nullopt;
  std::uint64_t v = 0;
  for (const char c : text) {
    int nibble = 0;
    if (!HexVal(c, &nibble)) return std::nullopt;
    v = (v << 4) | static_cast<std::uint64_t>(nibble);
  }
  return v;
}

/// key=value fields of one record line, as a lookup map. Record grammar is
/// whitespace-separated tokens, so encoded values never split.
std::map<std::string, std::string> FieldsOf(std::string_view line) {
  std::map<std::string, std::string> out;
  for (const auto& [key, value] : ParseKeyValues(line)) out[key] = value;
  return out;
}

class FieldReader {
 public:
  explicit FieldReader(std::string_view line) : fields_(FieldsOf(line)) {}

  bool ok() const { return ok_; }

  std::string Str(const std::string& key, std::string fallback = "") {
    auto it = fields_.find(key);
    if (it == fields_.end()) return fallback;
    std::string decoded;
    if (!Decode(it->second, &decoded)) ok_ = false;
    return decoded;
  }

  std::uint64_t U64(const std::string& key, std::uint64_t fallback = 0) {
    auto it = fields_.find(key);
    if (it == fields_.end()) return fallback;
    const auto v = ParseU64(it->second);
    if (!v) ok_ = false;
    return v.value_or(fallback);
  }

  bool Flag(const std::string& key, bool fallback = false) {
    return U64(key, fallback ? 1 : 0) != 0;
  }

  /// Comma-separated encoded items; an absent key or empty value is an
  /// empty list.
  std::vector<std::string> List(const std::string& key) {
    std::vector<std::string> out;
    auto it = fields_.find(key);
    if (it == fields_.end() || it->second.empty()) return out;
    for (const auto item : Split(it->second, ',')) {
      std::string decoded;
      if (!Decode(item, &decoded)) ok_ = false;
      out.push_back(std::move(decoded));
    }
    return out;
  }

  /// Comma-separated "encoded_key:encoded_value" pairs.
  std::map<std::string, std::string> PairMap(const std::string& key) {
    std::map<std::string, std::string> out;
    auto it = fields_.find(key);
    if (it == fields_.end() || it->second.empty()) return out;
    for (const auto item : Split(it->second, ',')) {
      const std::size_t colon = item.find(':');
      if (colon == std::string_view::npos) {
        ok_ = false;
        continue;
      }
      std::string k;
      std::string v;
      if (!Decode(item.substr(0, colon), &k) ||
          !Decode(item.substr(colon + 1), &v)) {
        ok_ = false;
        continue;
      }
      out[std::move(k)] = std::move(v);
    }
    return out;
  }

 private:
  std::map<std::string, std::string> fields_;
  bool ok_ = true;
};

void AppendField(std::string* line, const char* key, std::string_view value) {
  line->push_back(' ');
  line->append(key);
  line->push_back('=');
  line->append(Encode(value));
}

void AppendU64(std::string* line, const char* key, std::uint64_t value) {
  line->push_back(' ');
  line->append(key);
  line->push_back('=');
  line->append(std::to_string(value));
}

std::string SerializeProducer(const ProducerRecord& p) {
  std::string line = "prdcr";
  AppendField(&line, "name", p.name);
  AppendField(&line, "transport", p.transport);
  AppendField(&line, "address", p.address);
  AppendU64(&line, "interval", static_cast<std::uint64_t>(p.interval));
  AppendU64(&line, "offset", static_cast<std::uint64_t>(p.offset));
  AppendU64(&line, "sync", p.synchronous ? 1 : 0);
  AppendU64(&line, "request_timeout",
            static_cast<std::uint64_t>(p.request_timeout));
  AppendU64(&line, "min_backoff",
            static_cast<std::uint64_t>(p.reconnect_min_backoff));
  AppendU64(&line, "max_backoff",
            static_cast<std::uint64_t>(p.reconnect_max_backoff));
  AppendU64(&line, "rediscover",
            static_cast<std::uint64_t>(p.rediscover_interval));
  AppendU64(&line, "delta", p.delta_updates ? 1 : 0);
  AppendU64(&line, "standby", p.standby ? 1 : 0);
  AppendField(&line, "standby_for", p.standby_for);
  AppendU64(&line, "key_id", p.auth_key_id);
  AppendU64(&line, "last_seen", static_cast<std::uint64_t>(p.last_seen));
  std::string sets;
  for (const auto& s : p.set_instances) {
    if (!sets.empty()) sets.push_back(',');
    sets.append(Encode(s));
  }
  line.append(" sets=").append(sets);
  std::string digests;
  for (const auto& [schema, digest] : p.schema_digests) {
    if (!digests.empty()) digests.push_back(',');
    digests.append(Encode(schema)).push_back(':');
    digests.append(HexU64(digest));
  }
  line.append(" digests=").append(digests);
  return line;
}

bool ParseProducer(std::string_view line, ProducerRecord* out) {
  FieldReader r(line);
  out->name = r.Str("name");
  out->transport = r.Str("transport", "local");
  out->address = r.Str("address");
  out->interval = static_cast<DurationNs>(r.U64("interval", kNsPerSec));
  out->offset = static_cast<DurationNs>(r.U64("offset"));
  out->synchronous = r.Flag("sync");
  out->request_timeout = static_cast<DurationNs>(r.U64("request_timeout"));
  out->reconnect_min_backoff =
      static_cast<DurationNs>(r.U64("min_backoff", 50 * kNsPerMs));
  out->reconnect_max_backoff =
      static_cast<DurationNs>(r.U64("max_backoff", 2 * kNsPerSec));
  out->rediscover_interval = static_cast<DurationNs>(r.U64("rediscover"));
  out->delta_updates = r.Flag("delta", true);
  out->standby = r.Flag("standby");
  out->standby_for = r.Str("standby_for");
  out->auth_key_id = static_cast<std::uint32_t>(r.U64("key_id"));
  out->last_seen = static_cast<TimeNs>(r.U64("last_seen"));
  out->set_instances = r.List("sets");
  out->schema_digests.clear();
  for (const auto& [schema, hex] : r.PairMap("digests")) {
    const auto digest = ParseHexU64(hex);
    if (!digest) return false;
    out->schema_digests[schema] = *digest;
  }
  return r.ok() && !out->name.empty();
}

std::string SerializeStore(const StoreRecord& s) {
  std::string line = "strgp";
  AppendField(&line, "name", s.name);
  AppendField(&line, "plugin", s.plugin);
  AppendField(&line, "schema", s.schema_filter);
  AppendField(&line, "producer", s.producer_filter);
  AppendField(&line, "decomp", s.decomp);
  AppendU64(&line, "queue", s.queue_capacity);
  AppendField(&line, "shed", s.shed_policy);
  AppendU64(&line, "breaker", s.breaker_threshold);
  AppendU64(&line, "bmin", static_cast<std::uint64_t>(s.breaker_min_backoff));
  AppendU64(&line, "bmax", static_cast<std::uint64_t>(s.breaker_max_backoff));
  std::string params;
  for (const auto& [k, v] : s.params) {
    if (!params.empty()) params.push_back(',');
    params.append(Encode(k)).push_back(':');
    params.append(Encode(v));
  }
  line.append(" params=").append(params);
  return line;
}

bool ParseStore(std::string_view line, StoreRecord* out) {
  FieldReader r(line);
  out->name = r.Str("name");
  out->plugin = r.Str("plugin");
  out->schema_filter = r.Str("schema");
  out->producer_filter = r.Str("producer");
  out->decomp = r.Str("decomp");  // absent in pre-decomp registries
  out->queue_capacity = static_cast<std::size_t>(r.U64("queue", 1024));
  out->shed_policy = r.Str("shed", "drop_oldest");
  out->breaker_threshold = r.U64("breaker", 5);
  out->breaker_min_backoff =
      static_cast<DurationNs>(r.U64("bmin", 100 * kNsPerMs));
  out->breaker_max_backoff =
      static_cast<DurationNs>(r.U64("bmax", 10 * kNsPerSec));
  out->params = r.PairMap("params");
  return r.ok() && !out->name.empty() && !out->plugin.empty();
}

std::string SerializeTree(const TreeRecord& t) {
  std::string line = "tree";
  AppendField(&line, "role", t.role);
  AppendField(&line, "root", t.root_name);
  AppendField(&line, "spare", t.spare_name);
  AppendU64(&line, "seed", t.seed);
  std::string leaves;
  for (const auto& leaf : t.leaves) {
    if (!leaves.empty()) leaves.push_back(',');
    leaves.append(Encode(leaf));
  }
  line.append(" leaves=").append(leaves);
  std::string samplers;
  for (const auto& s : t.samplers) {
    if (!samplers.empty()) samplers.push_back(',');
    samplers.append(Encode(s.name)).push_back(':');
    samplers.append(std::to_string(s.node_id));
  }
  line.append(" samplers=").append(samplers);
  std::string down;
  for (const std::size_t leaf : t.down_leaves) {
    if (!down.empty()) down.push_back(',');
    down.append(std::to_string(leaf));
  }
  line.append(" down=").append(down);
  return line;
}

bool ParseTree(std::string_view line, TreeRecord* out) {
  FieldReader r(line);
  out->present = true;
  out->role = r.Str("role", "root");
  out->root_name = r.Str("root", "root");
  out->spare_name = r.Str("spare");
  out->seed = r.U64("seed", 1);
  out->leaves = r.List("leaves");
  out->samplers.clear();
  for (const auto& [name, node_id] : r.PairMap("samplers")) {
    const auto id = ParseU64(node_id);
    if (!id) return false;
    out->samplers.push_back(TreeSamplerId{name, *id});
  }
  out->down_leaves.clear();
  for (const auto& idx : r.List("down")) {
    const auto v = ParseU64(idx);
    if (!v) return false;
    out->down_leaves.push_back(static_cast<std::size_t>(*v));
  }
  return r.ok();
}

constexpr std::string_view kHeaderTag = "#ldmsxx-registry v1";

std::string SerializeBody(const RegistrySnapshot& snapshot) {
  std::string body = "meta";
  AppendField(&body, "name", snapshot.daemon_name);
  AppendU64(&body, "saved_tick", static_cast<std::uint64_t>(snapshot.saved_tick));
  body.push_back('\n');
  for (const auto& p : snapshot.producers) {
    body.append(SerializeProducer(p)).push_back('\n');
  }
  for (const auto& s : snapshot.stores) {
    body.append(SerializeStore(s)).push_back('\n');
  }
  if (snapshot.tree.present) {
    body.append(SerializeTree(snapshot.tree)).push_back('\n');
  }
  return body;
}

std::size_t CountEntries(const RegistrySnapshot& snapshot) {
  return 1 /* meta */ + snapshot.producers.size() + snapshot.stores.size() +
         (snapshot.tree.present ? 1 : 0);
}

}  // namespace

std::string SerializeRegistry(const RegistrySnapshot& snapshot) {
  const std::string body = SerializeBody(snapshot);
  std::string out(kHeaderTag);
  out.append(" crc=").append(HexU64(Fnv1a(body)));
  out.append(" entries=").append(std::to_string(CountEntries(snapshot)));
  out.push_back('\n');
  out.append(body);
  return out;
}

Status ParseRegistry(std::string_view text, RegistrySnapshot* out) {
  *out = RegistrySnapshot{};
  const std::size_t newline = text.find('\n');
  if (newline == std::string_view::npos) {
    return {ErrorCode::kInconsistent, "registry: missing header line"};
  }
  const std::string_view header = text.substr(0, newline);
  const std::string_view body = text.substr(newline + 1);
  if (!StartsWith(header, kHeaderTag)) {
    return {ErrorCode::kInconsistent, "registry: bad magic/version"};
  }
  FieldReader h(header.substr(kHeaderTag.size()));
  const std::string crc_hex = h.Str("crc");
  const std::uint64_t want_entries = h.U64("entries");
  const auto want_crc = ParseHexU64(crc_hex);
  if (!h.ok() || !want_crc) {
    return {ErrorCode::kInconsistent, "registry: malformed header"};
  }
  if (Fnv1a(body) != *want_crc) {
    return {ErrorCode::kInconsistent, "registry: body checksum mismatch"};
  }

  std::uint64_t entries = 0;
  bool have_meta = false;
  for (const auto raw_line : Split(body, '\n')) {
    const std::string_view line = Trim(raw_line);
    if (line.empty()) continue;
    ++entries;
    const std::size_t space = line.find(' ');
    const std::string_view kind = line.substr(0, space);
    const std::string_view rest =
        space == std::string_view::npos ? std::string_view{}
                                        : line.substr(space + 1);
    if (kind == "meta") {
      FieldReader r(rest);
      out->daemon_name = r.Str("name");
      out->saved_tick = static_cast<TimeNs>(r.U64("saved_tick"));
      if (!r.ok()) {
        return {ErrorCode::kInvalidArgument, "registry: malformed meta line"};
      }
      have_meta = true;
    } else if (kind == "prdcr") {
      ProducerRecord record;
      if (!ParseProducer(rest, &record)) {
        return {ErrorCode::kInvalidArgument, "registry: malformed prdcr line"};
      }
      out->producers.push_back(std::move(record));
    } else if (kind == "strgp") {
      StoreRecord record;
      if (!ParseStore(rest, &record)) {
        return {ErrorCode::kInvalidArgument, "registry: malformed strgp line"};
      }
      out->stores.push_back(std::move(record));
    } else if (kind == "tree") {
      if (!ParseTree(rest, &out->tree)) {
        return {ErrorCode::kInvalidArgument, "registry: malformed tree line"};
      }
    } else {
      return {ErrorCode::kInvalidArgument,
              "registry: unknown record kind '" + std::string(kind) + "'"};
    }
  }
  if (!have_meta) {
    return {ErrorCode::kInconsistent, "registry: missing meta line"};
  }
  if (entries != want_entries) {
    return {ErrorCode::kInconsistent, "registry: entry count mismatch"};
  }
  return Status::Ok();
}

ClusterRegistry::ClusterRegistry(std::string path) : path_(std::move(path)) {}

void ClusterRegistry::QuarantineLocked() {
  for (int n = 1; n < 1000; ++n) {
    const std::string target = path_ + ".corrupt." + std::to_string(n);
    // Probe-by-read keeps this dependency-free; a duplicate between the
    // probe and the rename is impossible in the single-daemon-per-registry
    // model this implements.
    std::string probe;
    if (ReadFileToString(target, &probe).code() != ErrorCode::kNotFound) {
      continue;
    }
    if (::rename(path_.c_str(), target.c_str()) == 0) {
      ++stats_.quarantines;
    }
    return;
  }
}

Status ClusterRegistry::Load() {
  std::lock_guard<std::mutex> lock(mu_);
  last_load_quarantined_ = false;
  std::string text;
  Status st = ReadFileToString(path_, &text);
  if (st.code() == ErrorCode::kNotFound) {
    state_ = RegistrySnapshot{};
    ++stats_.loads;
    stats_.last_load_records = 0;
    return Status::Ok();
  }
  if (!st.ok()) return st;
  RegistrySnapshot parsed;
  st = ParseRegistry(text, &parsed);
  if (!st.ok()) {
    // The recovery ladder's last rung: move the torn file aside and rebuild
    // from live traffic rather than refuse to start or trust bad data.
    QuarantineLocked();
    state_ = RegistrySnapshot{};
    last_load_quarantined_ = true;
    dirty_ = true;  // the (empty) truth is not on disk any more
    ++stats_.loads;
    stats_.last_load_records = 0;
    return Status::Ok();
  }
  state_ = std::move(parsed);
  dirty_ = false;
  ++stats_.loads;
  stats_.last_load_records = CountEntries(state_);
  return Status::Ok();
}

Status ClusterRegistry::SaveLocked() {
  Status st = AtomicWriteFile(path_, SerializeRegistry(state_), 0644);
  if (!st.ok()) {
    ++stats_.save_failures;
    return st;
  }
  ++stats_.saves;
  dirty_ = false;
  return Status::Ok();
}

Status ClusterRegistry::Save() {
  std::lock_guard<std::mutex> lock(mu_);
  return SaveLocked();
}

Status ClusterRegistry::SaveIfDirty() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!dirty_) return Status::Ok();
  return SaveLocked();
}

bool ClusterRegistry::dirty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dirty_;
}

bool ClusterRegistry::last_load_quarantined() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_load_quarantined_;
}

void ClusterRegistry::SetMeta(const std::string& daemon_name,
                              TimeNs saved_tick) {
  std::lock_guard<std::mutex> lock(mu_);
  state_.daemon_name = daemon_name;
  state_.saved_tick = saved_tick;
  dirty_ = true;
}

void ClusterRegistry::UpsertProducer(const ProducerRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& existing : state_.producers) {
    if (existing.name == record.name) {
      // Keep freshness metadata the caller did not re-derive.
      ProducerRecord merged = record;
      if (merged.last_seen == 0) merged.last_seen = existing.last_seen;
      if (merged.schema_digests.empty()) {
        merged.schema_digests = existing.schema_digests;
      }
      existing = std::move(merged);
      dirty_ = true;
      return;
    }
  }
  state_.producers.push_back(record);
  dirty_ = true;
}

bool ClusterRegistry::RemoveProducer(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = state_.producers.begin(); it != state_.producers.end(); ++it) {
    if (it->name == name) {
      state_.producers.erase(it);
      dirty_ = true;
      return true;
    }
  }
  return false;
}

void ClusterRegistry::UpsertStore(const StoreRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& existing : state_.stores) {
    if (existing.name == record.name) {
      existing = record;
      dirty_ = true;
      return;
    }
  }
  state_.stores.push_back(record);
  dirty_ = true;
}

void ClusterRegistry::SetTree(const TreeRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  state_.tree = record;
  dirty_ = true;
}

void ClusterRegistry::TouchProducer(const std::string& name,
                                    TimeNs last_seen) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& p : state_.producers) {
    if (p.name == name) {
      if (p.last_seen != last_seen) {
        p.last_seen = last_seen;
        dirty_ = true;
      }
      return;
    }
  }
}

void ClusterRegistry::RecordSchemaDigest(const std::string& producer,
                                         const std::string& schema,
                                         std::uint64_t digest) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& p : state_.producers) {
    if (p.name == producer) {
      auto it = p.schema_digests.find(schema);
      if (it == p.schema_digests.end() || it->second != digest) {
        p.schema_digests[schema] = digest;
        dirty_ = true;
      }
      return;
    }
  }
}

RegistrySnapshot ClusterRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

RegistryStats ClusterRegistry::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

Status ClusterRegistry::ExportTo(const std::string& export_path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return AtomicWriteFile(export_path, SerializeRegistry(state_), 0644);
}

Status ClusterRegistry::ImportFrom(const std::string& import_path) {
  std::string text;
  Status st = ReadFileToString(import_path, &text);
  if (!st.ok()) return st;
  RegistrySnapshot parsed;
  st = ParseRegistry(text, &parsed);
  if (!st.ok()) return st;
  std::lock_guard<std::mutex> lock(mu_);
  state_ = std::move(parsed);
  dirty_ = true;
  return SaveLocked();
}

std::string ClusterRegistry::StatusString() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "path=" << path_ << " producers=" << state_.producers.size()
      << " stores=" << state_.stores.size()
      << " tree=" << (state_.tree.present ? 1 : 0)
      << " saved_tick=" << state_.saved_tick << " dirty=" << (dirty_ ? 1 : 0)
      << " loads=" << stats_.loads << " saves=" << stats_.saves
      << " save_failures=" << stats_.save_failures
      << " quarantines=" << stats_.quarantines
      << " last_load_records=" << stats_.last_load_records
      << " quarantined_last_load=" << (last_load_quarantined_ ? 1 : 0);
  return out.str();
}

}  // namespace ldmsxx
