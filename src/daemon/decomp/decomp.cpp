#include "daemon/decomp/decomp.hpp"

#include "util/strings.hpp"

namespace ldmsxx {
namespace {

bool IsFloatType(MetricType t) {
  return t == MetricType::kF32 || t == MetricType::kD64;
}

bool IsSignedType(MetricType t) {
  return t == MetricType::kS8 || t == MetricType::kS16 ||
         t == MetricType::kS32 || t == MetricType::kS64;
}

Status Invalid(std::string msg) {
  return {ErrorCode::kInvalidArgument, std::move(msg)};
}

}  // namespace

Status ParseDecompSpec(std::string_view text, DecompSpec* out) {
  *out = DecompSpec{};
  out->text = std::string(text);
  if (Trim(text).empty()) {
    return Invalid("decomp: empty select list");
  }
  for (const auto group_sv : Split(text, ';')) {
    if (group_sv.empty()) {
      return Invalid("decomp: empty row group");
    }
    DecompGroupSpec group;
    std::string_view cols_sv = group_sv;
    if (const auto at = group_sv.find('@'); at != std::string_view::npos) {
      if (at == 0) return Invalid("decomp: empty table name");
      group.table = std::string(group_sv.substr(0, at));
      cols_sv = group_sv.substr(at + 1);
    }
    for (const auto col_sv : Split(cols_sv, ',')) {
      const auto parts = Split(col_sv, ':');
      if (parts.empty() || parts[0].empty()) {
        return Invalid("decomp: empty column name");
      }
      if (parts.size() > 3) {
        return Invalid("decomp: too many ':' fields in '" +
                       std::string(col_sv) + "'");
      }
      DecompColSpec col;
      col.metric = std::string(parts[0]);
      if (parts.size() >= 2) col.alias = std::string(parts[1]);
      if (parts.size() == 3 && !parts[2].empty()) {
        const std::string_view op = parts[2];
        if (op == "delta") {
          col.op = ColumnOp::kDelta;
        } else if (op == "rate") {
          col.op = ColumnOp::kRate;
        } else if (StartsWith(op, "scale")) {
          const auto factor = ParseU64(op.substr(5));
          if (!factor) {
            // Covers both garbage ("scaleX") and literals past u64 range —
            // the derived-column overflow case.
            return Invalid("decomp: bad or overflowing scale factor in '" +
                           std::string(col_sv) + "'");
          }
          col.op = ColumnOp::kScale;
          col.scale = *factor;
        } else {
          return Invalid("decomp: unknown op '" + std::string(op) + "'");
        }
      }
      if (col.op == ColumnOp::kDelta || col.op == ColumnOp::kRate) {
        out->has_derived = true;
      }
      group.cols.push_back(std::move(col));
    }
    if (group.cols.empty()) {
      return Invalid("decomp: empty select list");
    }
    for (std::size_t i = 0; i < group.cols.size(); ++i) {
      const std::string& a = group.cols[i].alias.empty()
                                 ? group.cols[i].metric
                                 : group.cols[i].alias;
      for (std::size_t j = i + 1; j < group.cols.size(); ++j) {
        const std::string& b = group.cols[j].alias.empty()
                                   ? group.cols[j].metric
                                   : group.cols[j].alias;
        if (a == b) {
          return Invalid("decomp: duplicate output column '" + a + "'");
        }
      }
    }
    out->groups.push_back(std::move(group));
  }
  return Status::Ok();
}

Status CompileRowPlan(const DecompSpec& spec, const Schema& schema,
                      std::uint32_t meta_gn, RowPlan* out) {
  *out = RowPlan{};
  out->schema = schema.name();
  out->meta_gn = meta_gn;
  for (const DecompGroupSpec& gspec : spec.groups) {
    RowGroup group;
    group.table = gspec.table.empty() ? schema.name() : gspec.table;
    group.columns.reserve(gspec.cols.size());
    for (const DecompColSpec& cspec : gspec.cols) {
      const auto idx = schema.FindMetric(cspec.metric);
      if (!idx) {
        return {ErrorCode::kNotFound, "decomp: unknown metric '" +
                                          cspec.metric + "' in schema '" +
                                          schema.name() + "'"};
      }
      RowColumn col;
      col.name = cspec.alias.empty() ? cspec.metric : cspec.alias;
      col.metric_index = static_cast<std::uint32_t>(*idx);
      col.op = cspec.op;
      col.scale = cspec.scale;
      const MetricType src = schema.metric(*idx).type;
      col.type = cspec.op == ColumnOp::kRate ? MetricType::kD64 : src;
      if (cspec.op == ColumnOp::kDelta || cspec.op == ColumnOp::kRate) {
        group.has_derived = true;
      }
      group.columns.push_back(std::move(col));
    }
    out->total_slots += group.columns.size();
    out->groups.push_back(std::move(group));
  }
  return Status::Ok();
}

Status Decomposer::Decompose(const MetricSet& set, RowBatch* out) {
  const std::uint32_t gn = set.meta_gn();
  auto it = plans_.find(gn);
  if (it == plans_.end()) {
    auto plan = std::make_unique<RowPlan>();
    Status st = CompileRowPlan(spec_, set.schema(), gn, plan.get());
    if (!st.ok()) return st;
    it = plans_.emplace(gn, std::move(plan)).first;
  }
  const RowPlan& plan = *it->second;
  if (!spec_.has_derived) {
    AppendPlanRows(set, plan, out);
    return Status::Ok();
  }

  // Derived path: same index-driven copies, plus per-slot history in the
  // source metric's own domain so u64 counter deltas stay exact.
  Series& series = series_[set.instance_name()];
  if (series.prev.size() != plan.total_slots) {
    series.prev.assign(plan.total_slots, 0);
    series.valid = false;
  }
  const TimeNs ts = set.timestamp();
  const bool have_prev = series.valid && ts > series.prev_ts;
  const double dt_sec =
      have_prev ? static_cast<double>(ts - series.prev_ts) / 1e9 : 0.0;
  std::size_t slot_idx = 0;
  for (std::size_t g = 0; g < plan.groups.size(); ++g) {
    const RowGroup& group = plan.groups[g];
    RowBatch::Row row;
    row.plan = &plan;
    row.group = static_cast<std::uint32_t>(g);
    row.ts = ts;
    row.component_id = set.component_id();
    row.producer = &set.producer_name();
    row.slot_offset = static_cast<std::uint32_t>(out->slots.size());
    for (const RowColumn& col : group.columns) {
      const MetricValue v = set.GetValue(col.metric_index);
      const MetricType src = set.schema().metric(col.metric_index).type;
      const std::uint64_t raw = SlotFromValue(v, src);
      std::uint64_t slot = 0;
      switch (col.op) {
        case ColumnOp::kCopy:
          slot = raw;
          break;
        case ColumnOp::kScale:
          if (IsFloatType(src)) {
            slot = SlotFromDouble(std::bit_cast<double>(raw) *
                                  static_cast<double>(col.scale));
          } else {
            slot = raw * col.scale;
          }
          break;
        case ColumnOp::kDelta: {
          const std::uint64_t prev = series.prev[slot_idx];
          if (!have_prev) {
            slot = 0;
          } else if (IsFloatType(src)) {
            slot = SlotFromDouble(std::bit_cast<double>(raw) -
                                  std::bit_cast<double>(prev));
          } else if (IsSignedType(src)) {
            slot = raw - prev;  // two's-complement difference
          } else {
            // Counter reset (reboot) clamps to 0 instead of a huge wrap.
            slot = raw >= prev ? raw - prev : 0;
          }
          break;
        }
        case ColumnOp::kRate: {
          double rate = 0.0;
          if (have_prev && dt_sec > 0) {
            rate = (SlotAsDouble(raw, src) -
                    SlotAsDouble(series.prev[slot_idx], src)) /
                   dt_sec;
            if (rate < 0 && !IsSignedType(src) && !IsFloatType(src)) {
              rate = 0.0;  // counter reset
            }
          }
          slot = SlotFromDouble(rate);
          break;
        }
      }
      series.prev[slot_idx] = raw;
      ++slot_idx;
      out->slots.push_back(slot);
    }
    out->rows.push_back(row);
  }
  series.prev_ts = ts;
  series.valid = true;
  return Status::Ok();
}

}  // namespace ldmsxx
