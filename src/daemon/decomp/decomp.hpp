// Per-strgp row decomposition (ISSUE 9 tentpole part 1): the mapping layer
// between the `strgp_add decomp=...` config language and the RowPlan/RowBatch
// interchange types the row-capable stores consume.
//
// Spec grammar (one whitespace-free config token — the control protocol
// splits commands on whitespace before the first '='):
//
//   spec   := group (';' group)*
//   group  := [table '@'] col (',' col)*
//   col    := metric [':' alias [':' op]]
//   op     := 'delta' | 'rate' | 'scale' uint
//
// One set sample emits one row per group, so `rx@rx_bytes::rate;tx@tx_bytes`
// turns each sample into two rows bound for tables "rx" and "tx". An empty
// alias ("m::rate") keeps the metric's own name. Ops:
//
//   delta  — value minus the previous sample's value, clamped at 0 when a
//            counter resets (node reboot) instead of emitting a huge wrap.
//   rate   — delta divided by elapsed seconds, emitted as D64.
//   scaleN — value * N (e.g. scale1024 to turn kB counters into bytes).
//
// The spec is parsed once at strgp_add (config errors are synchronous) and
// compiled against each schema it meets, keyed by the schema's content hash
// (meta_gn), into a flat RowPlan — so the per-sample hot path is index-driven
// copies with zero string lookups. Derived columns keep per-series history
// keyed by set instance name; a counter reset or first sample emits 0.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/metric_set.hpp"
#include "core/schema.hpp"
#include "store/rows.hpp"
#include "util/status.hpp"

namespace ldmsxx {

/// One column of the (unresolved) spec.
struct DecompColSpec {
  std::string metric;
  std::string alias;  ///< empty = use the metric name
  ColumnOp op = ColumnOp::kCopy;
  std::uint64_t scale = 1;
};

/// One row group of the spec.
struct DecompGroupSpec {
  std::string table;  ///< empty = use the schema name
  std::vector<DecompColSpec> cols;
};

struct DecompSpec {
  std::string text;  ///< original spec, for provenance / registry round-trip
  std::vector<DecompGroupSpec> groups;
  bool has_derived = false;
  bool empty() const { return groups.empty(); }
};

/// Parse @p text. Rejects: empty select lists, empty metric names, duplicate
/// output columns within a group, unknown ops, and scale factors that do not
/// fit in a u64 (derived-column overflow).
Status ParseDecompSpec(std::string_view text, DecompSpec* out);

/// Resolve @p spec against @p schema. Fails with kNotFound when the spec
/// names a metric the schema does not have.
Status CompileRowPlan(const DecompSpec& spec, const Schema& schema,
                      std::uint32_t meta_gn, RowPlan* out);

/// Applies one parsed spec to samples, caching compiled plans per schema
/// digest and per-series history for derived columns. Not thread-safe; the
/// store runtime serializes calls per policy.
class Decomposer {
 public:
  explicit Decomposer(DecompSpec spec) : spec_(std::move(spec)) {}

  const DecompSpec& spec() const { return spec_; }

  /// Append rows for @p set's current sample to @p out. Compiles (and
  /// caches) the plan on first contact with a schema digest; a compile
  /// failure is returned on every call for that digest.
  Status Decompose(const MetricSet& set, RowBatch* out);

 private:
  struct Series {
    std::vector<std::uint64_t> prev;  ///< raw slots, one per plan slot
    TimeNs prev_ts = 0;
    bool valid = false;
  };

  DecompSpec spec_;
  std::unordered_map<std::uint32_t, std::unique_ptr<RowPlan>> plans_;
  /// Per-series history for derived columns, keyed by instance name. Only
  /// touched when the spec has derived columns.
  std::unordered_map<std::string, Series> series_;
};

}  // namespace ldmsxx
