#include "daemon/ldmsd.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>

#include "daemon/plugin_registry.hpp"
#include "daemon/topology.hpp"
#include "store/tsdb/tsdb_store.hpp"

namespace ldmsxx {
namespace {

std::uint64_t NowSteadyNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// FNV-1a, used to seed a producer's jitter stream from its name so the
/// sequence is stable across runs (std::hash makes no such promise).
std::uint64_t HashName(const std::string& name) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// FNV-1a over a metadata chunk — the schema digest the registry keeps per
/// (producer, schema) so a restart can detect schema drift while down.
std::uint64_t HashBytes(const std::vector<std::byte>& bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const std::byte b : bytes) {
    h ^= static_cast<std::uint8_t>(b);
    h *= 1099511628211ull;
  }
  return h;
}

ProducerRecord RecordFromConfig(const ProducerConfig& config) {
  ProducerRecord record;
  record.name = config.name;
  record.transport = config.transport;
  record.address = config.address;
  record.interval = config.interval;
  record.offset = config.offset;
  record.synchronous = config.synchronous;
  record.request_timeout = config.request_timeout;
  record.reconnect_min_backoff = config.reconnect_min_backoff;
  record.reconnect_max_backoff = config.reconnect_max_backoff;
  record.set_instances = config.set_instances;
  record.rediscover_interval = config.rediscover_interval;
  record.delta_updates = config.delta_updates;
  record.standby = config.standby;
  record.standby_for = config.standby_for;
  return record;
}

ProducerConfig ConfigFromRecord(const ProducerRecord& record) {
  ProducerConfig config;
  config.name = record.name;
  config.transport = record.transport;
  config.address = record.address;
  config.interval = record.interval;
  config.offset = record.offset;
  config.synchronous = record.synchronous;
  config.request_timeout = record.request_timeout;
  config.reconnect_min_backoff = record.reconnect_min_backoff;
  config.reconnect_max_backoff = record.reconnect_max_backoff;
  config.set_instances = record.set_instances;
  config.rediscover_interval = record.rediscover_interval;
  config.delta_updates = record.delta_updates;
  config.standby = record.standby;
  config.standby_for = record.standby_for;
  return config;
}

}  // namespace

Ldmsd::Ldmsd(LdmsdOptions options)
    : options_(std::move(options)),
      log_(options_.name, options_.log_path),
      clock_(options_.clock != nullptr ? options_.clock
                                       : &RealClock::Instance()),
      transports_(options_.transports != nullptr
                      ? options_.transports
                      : &TransportRegistry::Default()),
      mem_(options_.set_memory),
      workers_(options_.worker_threads > 0
                   ? std::make_unique<ThreadPool>(options_.worker_threads,
                                                  options_.name + "/work")
                   : nullptr),
      connectors_(options_.connection_threads > 0
                      ? std::make_unique<ThreadPool>(
                            options_.connection_threads,
                            options_.name + "/conn")
                      : nullptr),
      storers_(options_.store_threads > 0
                   ? std::make_unique<ThreadPool>(options_.store_threads,
                                                  options_.name + "/store")
                   : nullptr),
      scheduler_(*clock_, workers_.get()) {
  log_.set_level(options_.log_level);
  if (!options_.registry_path.empty()) {
    registry_ = std::make_unique<ClusterRegistry>(options_.registry_path);
    if (options_.registry_snapshot_interval > 0) {
      TimerScheduler::TaskOptions topts;
      topts.interval = options_.registry_snapshot_interval;
      scheduler_.Schedule([this] { SnapshotRegistry(); }, topts);
    }
  }
}

Ldmsd::~Ldmsd() { Stop(); }

Status Ldmsd::Start() {
  if (started_.exchange(true)) return Status::Ok();
  if (!options_.listen_transport.empty()) {
    auto transport = transports_->Get(options_.listen_transport);
    if (transport == nullptr) {
      return {ErrorCode::kNotFound,
              "unknown transport: " + options_.listen_transport};
    }
    Status st = transport->Listen(options_.listen_address, this, &listener_);
    if (!st.ok()) return st;
    log_.Info("listening on ", options_.listen_transport, "://",
              listener_->address());
  }
  // Threaded timing only makes sense on a real clock; SimClock users drive
  // via RunUntil().
  if (dynamic_cast<SimClock*>(clock_) == nullptr) scheduler_.Start();
  return Status::Ok();
}

void Ldmsd::Stop() {
  if (!started_.exchange(false)) return;
  scheduler_.Stop();
  if (workers_ != nullptr) workers_->Shutdown();
  if (connectors_ != nullptr) connectors_->Shutdown();
  // Unblock any collection thread parked on a full block-mode queue before
  // joining the storer pool, or Shutdown could wait on a waiter forever.
  auto snapshot = policies();
  for (const auto& runtime : *snapshot) runtime->BeginShutdown();
  if (storers_ != nullptr) storers_->Shutdown();
  listener_.reset();
  // The pool drained its task queue, but a drain task that tried to resubmit
  // after shutdown was dropped — write whatever is still queued inline, then
  // flush, so no sample accepted into a queue is silently lost.
  for (const auto& runtime : *snapshot) {
    runtime->DrainInline();
    Status st = runtime->policy().store->Flush();
    if (!st.ok()) {
      log_.Error("flush of strgp ", runtime->name(), " failed: ",
                 st.ToString());
    }
  }
  // Clean-shutdown snapshot: stamp the tick and flush freshness-only
  // changes so the registry on disk is exactly the state we died with.
  if (registry_ != nullptr) {
    registry_->SetMeta(options_.name, clock_->Now());
    Status st = registry_->Save();
    if (!st.ok()) {
      log_.Error("registry save at shutdown failed: ", st.ToString());
    }
  }
}

std::string Ldmsd::listen_address() const {
  return listener_ != nullptr ? listener_->address()
                              : options_.listen_address;
}

// ---------------------------------------------------------------------------
// Sampler mode
// ---------------------------------------------------------------------------

Status Ldmsd::AddSampler(SamplerPluginPtr plugin,
                         const SamplerConfig& config) {
  if (plugin == nullptr) {
    return {ErrorCode::kInvalidArgument, "null plugin"};
  }
  PluginParams params = config.params;
  params.try_emplace("producer", options_.name);
  Status st = plugin->Init(mem_, sets_, params);
  if (!st.ok()) {
    log_.Error("sampler ", plugin->name(), " init failed: ", st.ToString());
    return st;
  }
  SamplerEntry entry;
  entry.plugin = std::move(plugin);
  entry.config = config;
  const std::string name = entry.plugin->name();

  std::lock_guard<std::mutex> lock(state_mu_);
  auto [it, inserted] = samplers_.emplace(name, std::move(entry));
  if (!inserted) {
    return {ErrorCode::kAlreadyExists, "sampler already loaded: " + name};
  }
  TimerScheduler::TaskOptions topts;
  topts.interval = config.interval;
  topts.offset = config.offset;
  topts.synchronous = config.synchronous;
  SamplerEntry* raw = &it->second;
  it->second.task = scheduler_.Schedule([this, raw] { SampleOnce(*raw); },
                                        topts);
  log_.Info("sampler ", name, " started, interval ",
            config.interval / kNsPerUs, "us");
  return Status::Ok();
}

void Ldmsd::SampleOnce(SamplerEntry& entry) {
  const std::uint64_t t0 = NowSteadyNs();
  Status st = entry.plugin->Sample(clock_->Now());
  const std::uint64_t dt = NowSteadyNs() - t0;
  counters_.samples.fetch_add(1, std::memory_order_relaxed);
  counters_.sample_ns.fetch_add(dt, std::memory_order_relaxed);
  if (!st.ok()) {
    log_.Warn("sampler ", entry.plugin->name(), " failed: ", st.ToString());
  }
}

Status Ldmsd::SetSamplingInterval(const std::string& plugin_name,
                                  DurationNs interval) {
  std::lock_guard<std::mutex> lock(state_mu_);
  auto it = samplers_.find(plugin_name);
  if (it == samplers_.end()) {
    return {ErrorCode::kNotFound, "no such sampler: " + plugin_name};
  }
  it->second.config.interval = interval;
  return scheduler_.Reschedule(it->second.task, interval);
}

Status Ldmsd::RemoveSampler(const std::string& plugin_name) {
  std::lock_guard<std::mutex> lock(state_mu_);
  auto it = samplers_.find(plugin_name);
  if (it == samplers_.end()) {
    return {ErrorCode::kNotFound, "no such sampler: " + plugin_name};
  }
  scheduler_.Cancel(it->second.task);
  for (const auto& set : it->second.plugin->Sets()) {
    (void)sets_.Remove(set->instance_name());
  }
  samplers_.erase(it);
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Aggregator mode
// ---------------------------------------------------------------------------

Status Ldmsd::AddProducer(const ProducerConfig& config) {
  if (transports_->Get(config.transport) == nullptr) {
    return {ErrorCode::kNotFound, "unknown transport: " + config.transport};
  }
  auto producer = std::make_shared<Producer>();
  producer->config = config;
  producer->active = !config.standby;
  producer->jitter_rng = Rng(HashName(config.name));
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    auto [it, inserted] = producers_.emplace(config.name, producer);
    if (!inserted) {
      return {ErrorCode::kAlreadyExists,
              "producer already added: " + config.name};
    }
  }
  TimerScheduler::TaskOptions topts;
  topts.interval = config.interval;
  topts.offset = config.offset;
  topts.synchronous = config.synchronous;
  std::weak_ptr<Producer> weak = producer;
  producer->task = scheduler_.Schedule(
      [this, weak] {
        if (auto p = weak.lock()) CollectCycle(p);
      },
      topts);
  log_.Info("producer ", config.name, " added (", config.transport, "://",
            config.address, config.standby ? ", standby)" : ")");
  RecordProducer(config);
  return Status::Ok();
}

Status Ldmsd::RemoveProducer(const std::string& producer_name) {
  std::shared_ptr<Producer> producer;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    auto it = producers_.find(producer_name);
    if (it == producers_.end()) {
      return {ErrorCode::kNotFound, "no such producer: " + producer_name};
    }
    producer = it->second;
    producers_.erase(it);
  }
  scheduler_.Cancel(producer->task);
  {
    std::lock_guard<std::mutex> lock(producer->mu);
    for (const auto& [instance, mirror] : producer->mirrors) {
      (void)sets_.Remove(instance);
    }
    producer->mirrors.clear();
    producer->endpoint.reset();
    producer->connected = false;
    producer->active = false;
  }
  if (registry_ != nullptr && registry_->RemoveProducer(producer_name) &&
      !restoring_.load(std::memory_order_relaxed)) {
    Status st = registry_->Save();
    if (!st.ok()) log_.Warn("registry save failed: ", st.ToString());
  }
  log_.Info("producer ", producer_name, " removed");
  return Status::Ok();
}

Status Ldmsd::ActivateStandby(const std::string& producer_name) {
  std::shared_ptr<Producer> producer;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    auto it = producers_.find(producer_name);
    if (it == producers_.end()) {
      return {ErrorCode::kNotFound, "no such producer: " + producer_name};
    }
    producer = it->second;
  }
  std::lock_guard<std::mutex> lock(producer->mu);
  producer->active = true;
  log_.Info("standby producer ", producer_name, " activated");
  return Status::Ok();
}

Status Ldmsd::DeactivateProducer(const std::string& producer_name) {
  std::shared_ptr<Producer> producer;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    auto it = producers_.find(producer_name);
    if (it == producers_.end()) {
      return {ErrorCode::kNotFound, "no such producer: " + producer_name};
    }
    producer = it->second;
  }
  std::lock_guard<std::mutex> lock(producer->mu);
  producer->active = false;
  return Status::Ok();
}

Status Ldmsd::RefreshProducer(const std::string& producer_name) {
  std::shared_ptr<Producer> producer;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    auto it = producers_.find(producer_name);
    if (it == producers_.end()) {
      return {ErrorCode::kNotFound, "no such producer: " + producer_name};
    }
    producer = it->second;
  }
  std::lock_guard<std::mutex> lock(producer->mu);
  producer->need_lookup = true;
  return Status::Ok();
}

Status Ldmsd::AddStorePolicy(StorePolicy policy) {
  if (policy.store == nullptr) {
    return {ErrorCode::kInvalidArgument, "null store"};
  }
  std::lock_guard<std::mutex> lock(state_mu_);
  auto taken = [this](const std::string& name) {
    for (const auto& runtime : *store_policies_) {
      if (runtime->name() == name) return true;
    }
    return false;
  };
  if (policy.name.empty()) policy.name = policy.store->name();
  if (taken(policy.name)) {
    const std::string base = policy.name;
    for (int i = 2;; ++i) {
      policy.name = base + "#" + std::to_string(i);
      if (!taken(policy.name)) break;
    }
  }
  auto runtime = std::make_shared<StorePolicyRuntime>(
      std::move(policy), clock_, &log_, &counters_.storage);
  // Copy-on-write: readers hold shared_ptr snapshots of the old list, so
  // build a new vector and swap the pointer rather than mutating in place.
  auto next = std::make_shared<PolicyList>(*store_policies_);
  next->push_back(runtime);
  store_policies_ = std::move(next);
  if (registry_ != nullptr) {
    const StorePolicy& final_policy = runtime->policy();
    StoreRecord record;
    record.name = final_policy.name;
    record.plugin = final_policy.plugin;
    record.params = final_policy.plugin_params;
    record.schema_filter = final_policy.schema_filter;
    record.producer_filter = final_policy.producer_filter;
    record.decomp = final_policy.decomp;
    record.queue_capacity = final_policy.queue_capacity;
    record.shed_policy = ShedPolicyName(final_policy.shed_policy);
    record.breaker_threshold = final_policy.breaker_threshold;
    record.breaker_min_backoff = final_policy.breaker_min_backoff;
    record.breaker_max_backoff = final_policy.breaker_max_backoff;
    registry_->UpsertStore(record);
    if (!restoring_.load(std::memory_order_relaxed)) {
      Status st = registry_->Save();
      if (!st.ok()) log_.Warn("registry save failed: ", st.ToString());
    }
  }
  return Status::Ok();
}

void Ldmsd::StoreLocalSet(const MetricSetPtr& set) {
  if (set == nullptr) return;
  auto snapshot = policies();
  if (snapshot->empty()) return;
  // Local sets have no per-mirror mutex; give each write a throwaway one.
  auto mu = std::make_shared<std::mutex>();
  for (const auto& runtime : *snapshot) {
    runtime->Submit(set, mu, storers_.get());
  }
}

StorePolicyStatus Ldmsd::store_policy_status(
    const std::string& policy_name) const {
  auto snapshot = policies();
  for (const auto& runtime : *snapshot) {
    if (runtime->name() == policy_name) return runtime->status();
  }
  return {};
}

std::vector<std::string> Ldmsd::store_policy_names() const {
  auto snapshot = policies();
  std::vector<std::string> names;
  names.reserve(snapshot->size());
  for (const auto& runtime : *snapshot) names.push_back(runtime->name());
  return names;
}

Ldmsd::ProducerStatus Ldmsd::producer_status(
    const std::string& producer_name) const {
  ProducerStatus status;
  std::shared_ptr<Producer> producer;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    auto it = producers_.find(producer_name);
    if (it == producers_.end()) return status;
    producer = it->second;
  }
  std::lock_guard<std::mutex> lock(producer->mu);
  status.known = true;
  status.connected = producer->connected;
  status.active = producer->active;
  status.consecutive_failures = producer->consecutive_failures;
  status.sets_ready = producer->mirrors.size();
  status.reconnects = producer->reconnects;
  status.current_backoff = producer->backoff;
  status.updates_batched = producer->updates_batched;
  status.updates_unchanged = producer->updates_unchanged;
  status.updates_delta = producer->updates_delta;
  status.delta_bytes_saved = producer->delta_bytes_saved;
  status.update_bytes_on_wire = producer->update_bytes_on_wire;
  return status;
}

std::vector<std::string> Ldmsd::producer_names() const {
  std::vector<std::string> names;
  std::lock_guard<std::mutex> lock(state_mu_);
  names.reserve(producers_.size());
  for (const auto& [name, producer] : producers_) names.push_back(name);
  return names;
}

void Ldmsd::ScheduleReconnect(Producer& producer) {
  const DurationNs min_backoff = producer.config.reconnect_min_backoff;
  if (min_backoff == 0) return;  // gating disabled: retry every cycle
  const DurationNs max_backoff =
      std::max(producer.config.reconnect_max_backoff, min_backoff);
  producer.backoff = producer.backoff == 0
                         ? min_backoff
                         : std::min(producer.backoff * 2, max_backoff);
  // ±25% jitter so many aggregators hammering one restarted peer spread out.
  const double jitter = 0.75 + 0.5 * producer.jitter_rng.NextDouble();
  producer.next_connect_attempt =
      clock_->Now() +
      static_cast<DurationNs>(static_cast<double>(producer.backoff) * jitter);
}

void Ldmsd::ConnectProducer(const std::shared_ptr<Producer>& producer) {
  // Runs on the connection pool (or inline when connection_threads == 0).
  auto transport = transports_->Get(producer->config.transport);
  std::unique_ptr<Endpoint> endpoint;
  Status st = transport->Connect(producer->config.address, &endpoint);
  std::lock_guard<std::mutex> lock(producer->mu);
  producer->connecting = false;
  if (!st.ok()) {
    counters_.connects_failed.fetch_add(1, std::memory_order_relaxed);
    ++producer->consecutive_failures;
    ScheduleReconnect(*producer);
    log_.Debug("connect to ", producer->config.name, " failed: ",
               st.ToString(), "; next attempt in ",
               producer->backoff / kNsPerMs, "ms");
    return;
  }
  producer->endpoint = std::move(endpoint);
  if (producer->config.request_timeout > 0) {
    producer->endpoint->set_request_timeout(producer->config.request_timeout);
  }
  producer->endpoint->set_delta_updates(producer->config.delta_updates);
  producer->connected = true;
  producer->backoff = 0;
  producer->next_connect_attempt = 0;
  if (producer->ever_connected) {
    ++producer->reconnects;
    counters_.reconnects.fetch_add(1, std::memory_order_relaxed);
    log_.Info("producer ", producer->config.name, " reconnected");
  }
  producer->ever_connected = true;
  counters_.connects_ok.fetch_add(1, std::memory_order_relaxed);
  Status lst = LookupSets(*producer);
  if (!lst.ok()) {
    log_.Warn("lookup on ", producer->config.name, " failed: ",
              lst.ToString());
  }
}

Status Ldmsd::LookupSets(Producer& producer) {
  std::vector<std::string> instances = producer.config.set_instances;
  if (instances.empty()) {
    Status st = producer.endpoint->Dir(&instances);
    if (!st.ok()) return st;
  }
  for (const auto& instance : instances) {
    // Lookup runs even when a mirror already exists: after a reconnect the
    // new endpoint must re-register (pin) the peer's set memory for
    // one-sided transports, and the peer assigns a fresh batch handle (the
    // old one died with the old connection/daemon incarnation).
    std::vector<std::byte> metadata;
    Endpoint::LookupExtra extra;
    Status st = producer.endpoint->LookupEx(instance, &metadata, &extra);
    counters_.lookups.fetch_add(1, std::memory_order_relaxed);
    if (!st.ok()) {
      // Set may not exist yet on the peer; retried next cycle ({a} loop in
      // Figure 2).
      log_.Debug("lookup ", instance, " on ", producer.config.name,
                 " failed: ", st.ToString());
      continue;
    }
    auto existing = producer.mirrors.find(instance);
    if (existing != producer.mirrors.end()) {
      existing->second.handle = extra.handle;  // mirror retained
      if (registry_ != nullptr) {
        registry_->RecordSchemaDigest(producer.config.name,
                                      existing->second.set->schema().name(),
                                      HashBytes(metadata));
      }
      continue;
    }
    Status mirror_st;
    MetricSetPtr mirror = MetricSet::CreateMirror(mem_, metadata, &mirror_st);
    if (mirror == nullptr) {
      log_.Error("mirror creation for ", instance, " failed: ",
                 mirror_st.ToString());
      continue;
    }
    if (registry_ != nullptr) {
      registry_->RecordSchemaDigest(producer.config.name,
                                    mirror->schema().name(),
                                    HashBytes(metadata));
    }
    MirrorEntry entry;
    entry.set = mirror;
    entry.handle = extra.handle;
    producer.mirrors.emplace(instance, std::move(entry));
    // Re-export for higher-level aggregators (daisy chaining).
    (void)sets_.Add(mirror);
  }
  if (registry_ != nullptr) {
    registry_->TouchProducer(producer.config.name, clock_->Now());
  }
  return Status::Ok();
}

void Ldmsd::CollectCycle(const std::shared_ptr<Producer>& producer_ptr) {
  Producer& producer = *producer_ptr;
  bool need_connect = false;
  bool pull = true;
  {
    std::lock_guard<std::mutex> lock(producer.mu);
    // Inactive standby producers keep their connection warm (connect +
    // lookup, §IV-B fast failover) but never pull; other inactive producers
    // are fully idle.
    if (!producer.active && !producer.config.standby) return;
    pull = producer.active;
    // A warm standby never pulls, so a dead peer would go unnoticed until
    // failover; probe the endpoint's liveness so it re-warms promptly.
    if (!pull && producer.connected && producer.endpoint != nullptr &&
        !producer.endpoint->connected()) {
      producer.connected = false;
      producer.endpoint.reset();
      producer.backoff = 0;
      producer.next_connect_attempt = 0;
    }
    if (!producer.connected && !producer.connecting) {
      if (clock_->Now() < producer.next_connect_attempt) {
        counters_.backoff_deferrals.fetch_add(1, std::memory_order_relaxed);
        return;  // still inside the reconnect backoff window
      }
      producer.connecting = true;
      need_connect = true;
    }
  }
  if (need_connect) {
    if (connectors_ != nullptr) {
      // Connection setup runs on its own pool so a connect hung in timeout
      // cannot starve collection threads (§IV-B).
      connectors_->Submit(
          [this, producer_ptr] { ConnectProducer(producer_ptr); });
      return;  // collection resumes next cycle once connected
    }
    ConnectProducer(producer_ptr);  // inline (deterministic simulations)
  }
  if (!pull) return;  // standby: connection warmed, nothing to collect

  std::lock_guard<std::mutex> lock(producer.mu);
  if (!producer.connected) return;
  // Pick up sets that appeared since connect, or re-lookup after a schema
  // change dropped a mirror. With rediscover_interval, dir()-discovered
  // producers also re-dir periodically so sets the peer started re-serving
  // later (tree repair, late samplers) show up without a nudge.
  bool want_lookup =
      producer.mirrors.empty() || producer.need_lookup ||
      (!producer.config.set_instances.empty() &&
       producer.mirrors.size() < producer.config.set_instances.size());
  if (producer.config.rediscover_interval > 0 &&
      clock_->Now() >= producer.next_rediscover) {
    want_lookup = true;
    producer.next_rediscover =
        clock_->Now() + producer.config.rediscover_interval;
  }
  if (want_lookup) {
    producer.need_lookup = false;
    (void)LookupSets(producer);
  }
  const std::uint64_t t0 = NowSteadyNs();
  bool any_failure = false;
  std::vector<std::string> stale_mirrors;
  // One batched pull for all of this producer's sets (the tentpole of the
  // batch protocol): handle-addressed sets travel in a single
  // kUpdateBatchReq frame — one request frame per producer per cycle instead
  // of one per set — and sets whose DGN has not advanced come back as 5-byte
  // "unchanged" markers instead of full chunks. Legacy peers (version 0) fall
  // back to pipelined per-set updates inside the same call. The spec/result
  // vectors live on the producer so steady-state cycles reuse capacity.
  const std::size_t n = producer.mirrors.size();
  auto& specs = producer.batch_specs;
  auto& results = producer.batch_results;
  auto& entries = producer.batch_entries;
  specs.clear();
  entries.clear();
  specs.reserve(n);
  entries.reserve(n);
  for (auto& [instance, mirror] : producer.mirrors) {
    Endpoint::BatchUpdateSpec spec;
    spec.instance = instance;
    spec.handle = mirror.handle;
    spec.last_dgn = mirror.last_gn;
    specs.push_back(std::move(spec));
    entries.push_back(&mirror);
  }
  const TransportStats& ep_stats = producer.endpoint->stats();
  const std::uint64_t wire_before =
      ep_stats.bytes_tx.load(std::memory_order_relaxed) +
      ep_stats.bytes_rx.load(std::memory_order_relaxed);
  producer.endpoint->UpdateBatch(specs, &results);
  // The batch call is synchronous; the endpoint is quiescent for this cycle,
  // so the per-result bookkeeping below (including endpoint.reset()) is safe.
  const std::uint64_t wire_delta =
      ep_stats.bytes_tx.load(std::memory_order_relaxed) +
      ep_stats.bytes_rx.load(std::memory_order_relaxed) - wire_before;
  producer.update_bytes_on_wire += wire_delta;
  counters_.update_bytes_on_wire.fetch_add(wire_delta,
                                           std::memory_order_relaxed);
  bool disconnected = false;
  for (std::size_t i = 0; i < n; ++i) {
    Endpoint::BatchUpdateResult& result = results[i];
    MirrorEntry& mirror = *entries[i];
    if (result.batched) {
      ++producer.updates_batched;
      counters_.updates_batched.fetch_add(1, std::memory_order_relaxed);
    }
    Status st = std::move(result.status);
    if (st.ok() && !result.unchanged) {
      std::lock_guard<std::mutex> set_lock(*mirror.mu);
      if (result.delta) {
        // Delta payload: changed extents only, decoded straight into the
        // mirror's data chunk. A mirror whose DGN drifted from the delta's
        // base rejects it with kInconsistent — treated like any failed
        // pull; the next cycle's DGN mismatch fetches the full chunk.
        st = mirror.set->ApplyDelta(result.data);
        if (st.ok()) {
          ++producer.updates_delta;
          counters_.updates_delta.fetch_add(1, std::memory_order_relaxed);
          const std::uint64_t saved =
              mirror.set->data_size() - result.data.size();
          producer.delta_bytes_saved += saved;
          counters_.delta_bytes_saved.fetch_add(saved,
                                                std::memory_order_relaxed);
        }
      } else {
        st = mirror.set->ApplyData(result.data);
      }
    }
    if (!st.ok()) {
      counters_.updates_failed.fetch_add(1, std::memory_order_relaxed);
      any_failure = true;
      if (st.code() == ErrorCode::kDisconnected) {
        disconnected = true;
      } else if (st.code() == ErrorCode::kInvalidArgument) {
        // Metadata generation mismatch: the peer restarted with a changed
        // schema. Drop the mirror; the next cycle looks it up fresh.
        log_.Warn("set ", specs[i].instance, " changed schema on ",
                  producer.config.name, "; re-looking up");
        stale_mirrors.push_back(specs[i].instance);
      } else if (result.batched && st.code() == ErrorCode::kNotFound) {
        // The peer no longer knows this handle (it restarted, or the set was
        // dropped and re-registered). Re-lookup refreshes the handle without
        // discarding the mirror.
        producer.need_lookup = true;
      }
      continue;
    }
    if (result.unchanged) {
      // The producer's DGN gate answered "no new sample" without shipping
      // the chunk — same outcome as the legacy gn == last_gn check below.
      ++producer.updates_unchanged;
      counters_.updates_unchanged.fetch_add(1, std::memory_order_relaxed);
      counters_.updates_no_new_data.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const std::uint64_t gn = mirror.set->data_gn();
    if (gn == mirror.last_gn || !mirror.set->consistent()) {
      // No new sample since last pull, or torn: skip the store and retry
      // next interval (§IV-B "Storage").
      counters_.updates_no_new_data.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    mirror.last_gn = gn;
    counters_.updates_ok.fetch_add(1, std::memory_order_relaxed);
    StoreMirror(mirror);
  }
  if (disconnected) {
    producer.connected = false;
    producer.endpoint.reset();
    // The drop itself does not impose backoff — the peer may just have
    // restarted — so the next cycle reconnects immediately; backoff grows
    // only if that connect attempt fails.
    producer.backoff = 0;
    producer.next_connect_attempt = 0;
    log_.Warn("producer ", producer.config.name, " disconnected");
  }
  for (const auto& instance : stale_mirrors) {
    (void)sets_.Remove(instance);
    producer.mirrors.erase(instance);
    producer.need_lookup = true;
  }
  producer.consecutive_failures =
      any_failure ? producer.consecutive_failures + 1 : 0;
  // Freshness for the cluster registry: a fully clean pull cycle counts as
  // "seen". Dirty-mark only — the periodic snapshot flushes it to disk.
  if (registry_ != nullptr && n > 0 && !any_failure) {
    registry_->TouchProducer(producer.config.name, clock_->Now());
  }
  counters_.update_ns.fetch_add(NowSteadyNs() - t0, std::memory_order_relaxed);
}

void Ldmsd::StoreMirror(const MirrorEntry& mirror) {
  auto snapshot = policies();
  if (snapshot->empty()) return;
  for (const auto& runtime : *snapshot) {
    runtime->Submit(mirror.set, mirror.mu, storers_.get());
  }
}

// ---------------------------------------------------------------------------
// ServiceHandler: requests from peers
// ---------------------------------------------------------------------------

std::vector<std::string> Ldmsd::HandleDir() { return sets_.List(); }

Status Ldmsd::HandleLookup(const std::string& instance,
                           std::vector<std::byte>* metadata) {
  MetricSetPtr set = sets_.Find(instance);
  if (set == nullptr) {
    return {ErrorCode::kNotFound, "no such set: " + instance};
  }
  auto bytes = set->metadata_bytes();
  metadata->assign(bytes.begin(), bytes.end());
  return Status::Ok();
}

Status Ldmsd::HandleUpdate(const std::string& instance,
                           std::vector<std::byte>* data) {
  MetricSetPtr set = sets_.Find(instance);
  if (set == nullptr) {
    return {ErrorCode::kNotFound, "no such set: " + instance};
  }
  data->resize(set->data_size());
  return set->SnapshotData(*data);
}

void Ldmsd::HandleAdvertise(const AdvertiseMsg& msg) {
  if (!options_.accept_advertised_producers) {
    log_.Debug("ignoring advertise from ", msg.producer);
    return;
  }
  if (msg.announce && tree_ != nullptr) {
    // Self-assembly: place the announcing sampler in the aggregation tree
    // and persist the assignment, then let the wiring hook add the producer
    // on the assigned leaf daemon. Without a hook, fall through and collect
    // from it directly (seed == collector).
    const std::size_t leaf = tree_->AddSampler({msg.producer, msg.node_id});
    RecordTreeState();
    log_.Info("announce from ", msg.producer, " placed on ",
              leaf == TreeManager::kUnassigned ? std::string("<orphan>")
                                               : tree_->leaf_name(leaf));
    if (announce_hook_) {
      announce_hook_(msg, leaf);
      return;
    }
  }
  ProducerConfig config;
  config.name = msg.producer;
  config.transport = msg.transport;
  config.address = msg.dialback_address;
  config.interval = options_.advertised_interval;
  Status st = AddProducer(config);
  if (!st.ok() && st.code() != ErrorCode::kAlreadyExists) {
    log_.Warn("advertised producer ", msg.producer, " rejected: ",
              st.ToString());
  }
}

MetricSetPtr Ldmsd::HandleRdmaExpose(const std::string& instance) {
  return sets_.Find(instance);
}

std::uint32_t Ldmsd::HandleAssignHandle(const std::string& instance) {
  return sets_.HandleFor(instance);
}

MetricSetPtr Ldmsd::HandleResolveHandle(std::uint32_t handle) {
  return sets_.FindByHandle(handle);
}

void Ldmsd::HandleQuery(const QueryRequest& req, QueryResponse* resp) {
  *resp = QueryResponse{};
  auto store = store_for_policy(req.strgp);
  if (store == nullptr) {
    resp->code = static_cast<std::uint8_t>(ErrorCode::kNotFound);
    resp->error = "no storage policy '" + req.strgp + "'";
    return;
  }
  auto* tsdb = dynamic_cast<TsdbStore*>(store.get());
  if (tsdb == nullptr) {
    resp->code = static_cast<std::uint8_t>(ErrorCode::kUnsupported);
    resp->error = "policy '" + req.strgp + "' is not a queryable store";
    return;
  }
  TsdbQuery q;
  q.table = req.table;
  q.t0 = req.t0;
  q.t1 = req.t1;
  q.nodes = req.nodes;
  q.metrics = req.metrics;
  TsdbQueryResult result;
  Status st = tsdb->Query(q, &result);
  if (!st.ok()) {
    resp->code = static_cast<std::uint8_t>(st.code());
    resp->error = st.message();
    return;
  }
  resp->columns = std::move(result.columns);
  resp->total_rows = result.rows.size();
  resp->segments_considered = result.segments_considered;
  resp->segments_pruned = result.segments_pruned;
  resp->segments_read = result.segments_read;
  resp->bytes_read = result.bytes_read;
  resp->bytes_decoded = result.bytes_decoded;
  // Bound the response page: the client's limit, itself clamped by the
  // server-side ceiling — a fan-out root never receives an unbounded page.
  std::size_t cap = kMaxQueryRespRows;
  if (req.limit != 0 && req.limit < cap) cap = req.limit;
  if (result.rows.size() > cap) {
    result.rows.resize(cap);
    resp->truncated = 1;
  }
  resp->rows.reserve(result.rows.size());
  for (auto& row : result.rows) {
    resp->rows.push_back({row.ts, row.node, std::move(row.values)});
  }
}

Status Ldmsd::FanoutQuery(const QueryRequest& req, FanoutResult* out) {
  *out = FanoutResult{};
  // Snapshot the producer set under state_mu_; the map is name-ordered, so
  // the fan-out order (and thus the merged page under a row cap) is
  // deterministic. Queries then run without daemon-wide locks held.
  std::vector<std::shared_ptr<Producer>> leaves;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    leaves.reserve(producers_.size());
    for (const auto& [name, producer] : producers_) leaves.push_back(producer);
  }
  QueryResponse& merged = out->merged;
  for (const auto& leaf : leaves) {
    QueryResponse resp;
    Status st;
    {
      // Per-leaf serialization with that producer's collect cycle; one dead
      // leaf costs at most the endpoint's request timeout, not the fan-out.
      std::lock_guard<std::mutex> lock(leaf->mu);
      if (leaf->endpoint == nullptr || !leaf->endpoint->connected()) {
        st = {ErrorCode::kDisconnected, "producer not connected"};
      } else {
        st = leaf->endpoint->RemoteQuery(req, &resp);
      }
    }
    if (!st.ok() || resp.code != 0) {
      ++out->leaves_failed;
      continue;
    }
    ++out->leaves_ok;
    if (merged.columns.empty()) merged.columns = resp.columns;
    if (resp.columns != merged.columns) {
      // Schema drift between leaves: the page would be meaningless.
      ++out->leaves_failed;
      --out->leaves_ok;
      continue;
    }
    merged.rows.insert(merged.rows.end(),
                       std::make_move_iterator(resp.rows.begin()),
                       std::make_move_iterator(resp.rows.end()));
    merged.total_rows += resp.total_rows;
    merged.truncated |= resp.truncated;
    merged.segments_considered += resp.segments_considered;
    merged.segments_pruned += resp.segments_pruned;
    merged.segments_read += resp.segments_read;
    merged.bytes_read += resp.bytes_read;
    merged.bytes_decoded += resp.bytes_decoded;
  }
  // Global (ts, node) order regardless of which leaf answered first; stable
  // so equal keys keep leaf order — same input, same page, every run.
  std::stable_sort(merged.rows.begin(), merged.rows.end(),
                   [](const QueryResponse::Row& a, const QueryResponse::Row& b) {
                     return a.ts != b.ts ? a.ts < b.ts : a.node < b.node;
                   });
  std::size_t cap = kMaxQueryRespRows;
  if (req.limit != 0 && req.limit < cap) cap = req.limit;
  if (merged.rows.size() > cap) {
    merged.rows.resize(cap);
    merged.truncated = 1;
  }
  return Status::Ok();
}

Status Ldmsd::AdvertiseInternal(const std::string& transport,
                                const std::string& address, bool announce,
                                std::uint64_t node_id) {
  auto t = transports_->Get(transport);
  if (t == nullptr) {
    return {ErrorCode::kNotFound, "unknown transport: " + transport};
  }
  std::unique_ptr<Endpoint> endpoint;
  Status st = t->Connect(address, &endpoint);
  if (!st.ok()) return st;
  AdvertiseMsg msg;
  msg.producer = options_.name;
  msg.transport = options_.listen_transport;
  msg.dialback_address = listen_address();
  msg.announce = announce;
  msg.node_id = node_id;
  return endpoint->Advertise(msg);
}

Status Ldmsd::AdvertiseTo(const std::string& transport,
                          const std::string& address) {
  return AdvertiseInternal(transport, address, /*announce=*/false, 0);
}

Status Ldmsd::AnnounceTo(const std::string& transport,
                         const std::string& address, std::uint64_t node_id) {
  return AdvertiseInternal(transport, address, /*announce=*/true, node_id);
}

Status Ldmsd::AnnounceWithRetry(std::vector<AnnounceTarget> targets,
                                std::uint64_t node_id,
                                DurationNs min_backoff,
                                DurationNs max_backoff) {
  if (targets.empty()) {
    return {ErrorCode::kInvalidArgument, "no announce targets"};
  }
  // First attempt runs inline against the primary: the common case (seed
  // aggregator healthy) never touches the scheduler.
  Status st = AdvertiseInternal(targets[0].transport, targets[0].address,
                                /*announce=*/true, node_id);
  if (st.ok()) return st;
  log_.Warn("announce to ", targets[0].address, " failed (", st.ToString(),
            "); re-seeding against ", targets.size() - 1, " standby(s)");

  // Retry state lives in a shared_ptr owned by the task closure; the task
  // cancels itself on success (Cancel from within a task is safe — the
  // scheduler runs fn with its lock released).
  struct RetryState {
    std::vector<AnnounceTarget> targets;
    std::uint64_t node_id = 0;
    std::size_t next = 1;          // targets[0] just failed; rotate on
    DurationNs backoff = 0;
    TimeNs next_attempt_at = 0;    // gate: the task ticks faster than this
    TimerScheduler::TaskId task = 0;
    std::mutex mu;
  };
  auto state = std::make_shared<RetryState>();
  state->targets = std::move(targets);
  state->node_id = node_id;
  state->backoff = min_backoff;
  state->next_attempt_at = clock_->Now() + min_backoff;
  const DurationNs capped_max = std::max(max_backoff, min_backoff);
  TimerScheduler::TaskOptions topts;
  topts.interval = min_backoff;
  state->task = scheduler_.Schedule(
      [this, state, capped_max] {
        std::lock_guard<std::mutex> lock(state->mu);
        if (clock_->Now() < state->next_attempt_at) return;
        const AnnounceTarget& target =
            state->targets[state->next % state->targets.size()];
        ++state->next;
        counters_.announce_retries.fetch_add(1, std::memory_order_relaxed);
        const Status ast = AdvertiseInternal(target.transport, target.address,
                                             /*announce=*/true,
                                             state->node_id);
        if (ast.ok()) {
          log_.Info("announce re-seeded via ", target.address, " after ",
                    counters_.announce_retries.load(std::memory_order_relaxed),
                    " retries");
          scheduler_.Cancel(state->task);
          return;
        }
        state->backoff = std::min(state->backoff * 2, capped_max);
        state->next_attempt_at = clock_->Now() + state->backoff;
      },
      topts);
  return {ErrorCode::kDisconnected,
          "announce failed; retrying against standby targets"};
}

std::shared_ptr<Store> Ldmsd::store_for_policy(
    const std::string& policy_name) const {
  auto snapshot = policies();
  for (const auto& runtime : *snapshot) {
    if (runtime->name() == policy_name) return runtime->policy().store;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Cluster registry: crash-safe restart-resume
// ---------------------------------------------------------------------------

void Ldmsd::AdoptTree(std::unique_ptr<TreeManager> tree) {
  owned_tree_ = std::move(tree);
  tree_ = owned_tree_.get();
  RecordTreeState();
}

void Ldmsd::RecordProducer(const ProducerConfig& config) {
  if (registry_ == nullptr) return;
  ProducerRecord record = RecordFromConfig(config);
  record.auth_key_id = keys_ != nullptr ? keys_->current().id : 0;
  registry_->UpsertProducer(record);
  if (!restoring_.load(std::memory_order_relaxed)) {
    Status st = registry_->Save();
    if (!st.ok()) log_.Warn("registry save failed: ", st.ToString());
  }
}

void Ldmsd::RecordTreeState() {
  if (registry_ == nullptr || tree_ == nullptr) return;
  TreeRecord record;
  record.present = true;
  record.role = "root";
  TreeOptions topts = tree_->options();
  record.samplers = std::move(topts.samplers);
  record.leaves = std::move(topts.leaves);
  record.root_name = std::move(topts.root_name);
  record.spare_name = std::move(topts.spare_name);
  record.seed = topts.seed;
  record.down_leaves = tree_->down_leaves();
  registry_->SetTree(record);
  if (!restoring_.load(std::memory_order_relaxed)) {
    Status st = registry_->Save();
    if (!st.ok()) log_.Warn("registry save failed: ", st.ToString());
  }
}

void Ldmsd::SnapshotRegistry() {
  if (registry_ == nullptr || !registry_->dirty()) return;
  registry_->SetMeta(options_.name, clock_->Now());
  Status st = registry_->SaveIfDirty();
  if (!st.ok()) log_.Warn("registry snapshot failed: ", st.ToString());
}

Status Ldmsd::RestoreFromRegistry(PluginRegistry* plugins) {
  if (registry_ == nullptr) {
    return {ErrorCode::kUnsupported, "no registry configured"};
  }
  Status st = registry_->Load();
  if (!st.ok()) return st;
  if (registry_->last_load_quarantined()) {
    log_.Warn("registry file was corrupt; quarantined and starting empty");
    return Status::Ok();  // nothing to restore: rebuild from live traffic
  }
  const RegistrySnapshot snap = registry_->snapshot();
  restoring_.store(true, std::memory_order_relaxed);
  // Tree first, so producers resume against the same placement context the
  // old incarnation persisted (and announces placed before the crash stay
  // placed — the sampler list is part of the options).
  if (snap.tree.present && snap.tree.role == "root") {
    TreeOptions topts;
    topts.samplers = snap.tree.samplers;
    topts.leaves = snap.tree.leaves;
    topts.root_name = snap.tree.root_name;
    topts.spare_name = snap.tree.spare_name;
    topts.seed = snap.tree.seed;
    auto tree = std::make_unique<TreeManager>(std::move(topts));
    tree->RestoreDownLeaves(snap.tree.down_leaves);
    AdoptTree(std::move(tree));
  }
  std::size_t restored = 0;
  std::size_t skipped = 0;
  for (const auto& record : snap.stores) {
    if (record.plugin.empty()) {
      log_.Warn("strgp ", record.name,
                " has no plugin provenance; not restored");
      ++skipped;
      continue;
    }
    std::shared_ptr<Store> store =
        plugins != nullptr ? plugins->MakeStore(record.plugin, record.params)
                           : nullptr;
    if (store == nullptr) {
      log_.Warn("strgp ", record.name, ": plugin ", record.plugin,
                " unavailable; not restored");
      ++skipped;
      continue;
    }
    StorePolicy policy(std::move(store), record.schema_filter,
                       record.producer_filter);
    policy.name = record.name;
    policy.plugin = record.plugin;
    policy.plugin_params = record.params;
    policy.decomp = record.decomp;
    policy.queue_capacity = record.queue_capacity;
    (void)ParseShedPolicy(record.shed_policy, &policy.shed_policy);
    policy.breaker_threshold = record.breaker_threshold;
    policy.breaker_min_backoff = record.breaker_min_backoff;
    policy.breaker_max_backoff = record.breaker_max_backoff;
    Status pst = AddStorePolicy(std::move(policy));
    if (pst.ok()) {
      ++restored;
    } else {
      log_.Warn("strgp ", record.name, " restore failed: ", pst.ToString());
      ++skipped;
    }
  }
  for (const auto& record : snap.producers) {
    // Reconnect + dir/lookup re-validation rides the normal collect-cycle
    // machinery (with its backoff); schema drift while we were down is
    // caught by the usual metadata-generation check against the persisted
    // digests' sets.
    Status pst = AddProducer(ConfigFromRecord(record));
    if (pst.ok()) {
      ++restored;
    } else {
      log_.Warn("prdcr ", record.name, " restore failed: ", pst.ToString());
      ++skipped;
    }
  }
  restoring_.store(false, std::memory_order_relaxed);
  log_.Info("registry restore: ", restored, " records restored, ", skipped,
            " skipped from ", registry_->path());
  registry_->SetMeta(options_.name, clock_->Now());
  return registry_->Save();
}

}  // namespace ldmsxx
