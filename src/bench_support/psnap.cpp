#include "bench_support/psnap.hpp"

#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

namespace ldmsxx::bench {
namespace {

/// Fixed work unit: integer FMA chain. The asm constraint defeats
/// constant-folding without memory traffic, so the loop measures CPU time,
/// not cache behaviour.
inline std::uint64_t SpinWork(std::uint64_t reps, std::uint64_t seed) {
  std::uint64_t acc = seed | 1;
  for (std::uint64_t i = 0; i < reps; ++i) {
    acc = acc * 6364136223846793005ull + 1442695040888963407ull;
    asm volatile("" : "+r"(acc));
  }
  return acc;
}

std::uint64_t NowSteadyNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::uint64_t CalibrateLoop(DurationNs target) {
  // Measure the per-rep cost over a long spin, then refine twice.
  std::uint64_t reps = 100000;
  for (int round = 0; round < 3; ++round) {
    const std::uint64_t t0 = NowSteadyNs();
    SpinWork(reps, t0);
    const std::uint64_t elapsed = NowSteadyNs() - t0;
    if (elapsed == 0) {
      reps *= 10;
      continue;
    }
    const double per_rep =
        static_cast<double>(elapsed) / static_cast<double>(reps);
    reps = static_cast<std::uint64_t>(static_cast<double>(target) / per_rep);
    if (reps == 0) reps = 1;
  }
  return reps;
}

std::uint64_t PsnapResult::TailEvents(double extra_us) const {
  return histogram.TailCount(100.0 + extra_us);
}

PsnapResult RunPsnap(const PsnapConfig& config) {
  const std::uint64_t reps = CalibrateLoop(config.loop_target);

  std::mutex merge_mu;
  PsnapResult result;
  result.histogram =
      Histogram(config.hist_lo_us, config.hist_hi_us,
                static_cast<std::size_t>(config.hist_hi_us - config.hist_lo_us));

  auto worker = [&](unsigned tid) {
    Histogram local(config.hist_lo_us, config.hist_hi_us,
                    static_cast<std::size_t>(config.hist_hi_us -
                                             config.hist_lo_us));
    RunningStats stats;
    for (std::uint64_t i = 0; i < config.iterations; ++i) {
      const std::uint64_t t0 = NowSteadyNs();
      SpinWork(reps, t0 + tid);
      const double us =
          static_cast<double>(NowSteadyNs() - t0) / 1000.0;
      local.Add(us);
      stats.Add(us);
    }
    std::lock_guard<std::mutex> lock(merge_mu);
    result.histogram.Merge(local);
    result.stats.Merge(stats);
    result.total_iterations += config.iterations;
  };

  std::vector<std::thread> threads;
  threads.reserve(config.threads);
  for (unsigned t = 0; t < config.threads; ++t) threads.emplace_back(worker, t);
  for (auto& t : threads) t.join();
  return result;
}

}  // namespace ldmsxx::bench
