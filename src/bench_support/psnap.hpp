// PSNAP reimplementation (§V-A1, §V-B4): "an OS and network noise profiling
// tool which performs multiple iterations of a loop calibrated to run for a
// given amount of time. On an unloaded system, variation from the ideal
// amount of time can be attributed to system noise." We run the calibrated
// loop on several threads (the paper used 32 tasks/node), histogram each
// iteration's duration, and look at the tail that sampler activity adds.
// No barrier mode, matching the runs in both Figure 5 and Figure 8.
#pragma once

#include <cstdint>

#include "util/clock.hpp"
#include "util/stats.hpp"

namespace ldmsxx::bench {

struct PsnapConfig {
  /// Target loop duration (the paper used 100 us).
  DurationNs loop_target = 100 * kNsPerUs;
  /// Iterations per thread.
  std::uint64_t iterations = 100000;
  /// Concurrent loop threads ("tasks per node").
  unsigned threads = 4;
  /// Histogram range [lo, hi) in microseconds; 1 us bins.
  double hist_lo_us = 50.0;
  double hist_hi_us = 1050.0;
};

struct PsnapResult {
  Histogram histogram;  ///< loop durations, microseconds
  RunningStats stats;   ///< same data, streaming moments
  std::uint64_t total_iterations = 0;

  /// Iterations delayed beyond target + slack (the "tail events" Figure 5
  /// counts: ~1,400 of 16M at 25-200 us extra delay).
  std::uint64_t TailEvents(double extra_us) const;

  PsnapResult() : histogram(50.0, 1050.0, 1000) {}
};

/// Calibrate the spin-work repetition count whose execution takes
/// @p target on the current machine.
std::uint64_t CalibrateLoop(DurationNs target);

/// Run PSNAP with the given configuration. Monitoring (if any) must already
/// be running in this process; the probe only measures.
PsnapResult RunPsnap(const PsnapConfig& config);

}  // namespace ldmsxx::bench
