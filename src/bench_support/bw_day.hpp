// Shared harness for the Figure 9/10 characterizations: simulate a day of a
// Blue-Waters-like torus system under a production-shaped job mix, sample
// every Gemini's gpcdr metrics at 1-minute intervals through real
// GpcdrSampler plugins, and collect the derived per-direction series
// (percent time stalled, percent peak bandwidth).
#pragma once

#include <map>
#include <vector>

#include "analysis/timeseries.hpp"
#include "sim/cluster.hpp"

namespace ldmsxx::bench {

struct BwDayConfig {
  sim::TorusDims dims{8, 8, 8};
  int hours = 24;
  DurationNs sample_interval = kNsPerMin;
  std::uint64_t seed = 2014;
};

struct BwDayResult {
  sim::TorusDims dims;
  /// Per even-node series of percent-time-stalled in X+ (Figure 9) and
  /// percent-bandwidth in Y+ (Figure 10).
  std::map<std::uint64_t, analysis::TimeSeries> stall_xplus;
  std::map<std::uint64_t, analysis::TimeSeries> bw_yplus;
  /// Flat rows (component, time, {stall_x+, bw_y+}) for grids/snapshots.
  std::vector<MemRow> rows;

  double max_stall = 0.0;
  TimeNs max_stall_time = 0;
  std::uint64_t max_stall_node = 0;
  double max_bw = 0.0;
  TimeNs max_bw_time = 0;
};

/// Run the simulated day. Deterministic for a given config.
BwDayResult RunBlueWatersDay(const BwDayConfig& config);

}  // namespace ldmsxx::bench
