#include "bench_support/bw_day.hpp"

#include <algorithm>

#include "core/mem_manager.hpp"
#include "core/set_registry.hpp"
#include "sampler/samplers.hpp"

namespace ldmsxx::bench {
namespace {

// gpcdr schema layout: 6 metrics per direction, directions in LinkDir order.
constexpr std::size_t kPctStallXPlus = 0 * 6 + 4;
constexpr std::size_t kPctBwYPlus = 2 * 6 + 5;

/// A production-shaped job mix: long communication-heavy jobs (multi-hour
/// congestion features), mid-sized halo jobs, bursts of intense I/O funnels
/// (short, severe hotspots — the 85% stall peaks), and background compute.
void SubmitDayMix(sim::SimCluster& cluster, int hours, Rng& rng) {
  const int nodes = cluster.node_count();
  std::uint64_t job_id = 1;

  // Backbone: one very long lattice job over half the machine.
  sim::JobSpec lattice;
  lattice.job_id = job_id++;
  lattice.name = "milc-long";
  lattice.node_count = nodes / 2;
  lattice.duration = static_cast<DurationNs>(hours) * kNsPerHour;
  lattice.profile = sim::JobProfile::CommHeavy();
  // Long production runs hold their communication level for many hours:
  // shallow modulation keeps the 40-60% stall band persistent (Figure 9's
  // label-A features last up to ~20 h).
  lattice.profile.net_phase_depth = 0.12;
  // Sized so Y links peak near ~60% of capacity (the paper's day never
  // saturated Y: Figure 10's max is 63%) while X pressure comes from the
  // ring and funnel jobs below.
  lattice.profile.net_bytes_per_s = 6.5e8;
  (void)cluster.Submit(lattice);

  // Halo stencil job over an eighth, most of the day.
  sim::JobSpec halo;
  halo.job_id = job_id++;
  halo.name = "stencil";
  halo.node_count = nodes / 8;
  halo.duration = static_cast<DurationNs>(hours) * kNsPerHour * 9 / 10;
  halo.profile = sim::JobProfile::Halo();
  (void)cluster.Submit(halo);

  // Ring-exchange jobs pinned to complete X rows: rank neighbours are
  // X-adjacent Geminis and the wrap closes in X too, so the traffic lands
  // exclusively on X links — the persistent 40-60% X+ stall band of
  // Figure 9 (label A), with the torus wrap of label C.
  const sim::TorusDims& dims = cluster.torus()->dims();
  const int ring_rows = std::max(2, dims.y * dims.z / 8);
  for (int r = 0; r < ring_rows; ++r) {
    const int y = static_cast<int>(rng.NextBelow(
        static_cast<std::uint64_t>(dims.y)));
    const int z = static_cast<int>(rng.NextBelow(
        static_cast<std::uint64_t>(dims.z)));
    sim::JobSpec ring;
    ring.job_id = job_id++;
    ring.name = "ring-exchange-" + std::to_string(r);
    ring.duration = (12 + rng.NextBelow(9)) * kNsPerHour;
    ring.profile = sim::JobProfile::Compute();
    ring.profile.comm = sim::CommPattern::kNeighbor;
    ring.profile.net_bytes_per_s = 1.8e10;  // ~1.9x X capacity -> ~45% stall
    ring.profile.net_rank_jitter = 0.6;
    ring.profile.net_phase_period_s = 14400.0;
    ring.profile.net_phase_depth = 0.15;
    for (int x = 0; x < dims.x; ++x) {
      const int gemini = cluster.torus()->IndexOf({x, y, z});
      ring.fixed_nodes.push_back(2 * gemini);
      ring.fixed_nodes.push_back(2 * gemini + 1);
    }
    (void)cluster.Submit(ring);
  }

  // Episodic severe congestion: every ~90 simulated minutes an I/O funnel
  // job runs for ~40-80 minutes at a rate that overloads links near the
  // service Gemini several-fold (the paper's 60+% stall episodes).
  TimeNs t = 30 * kNsPerMin;
  while (t < static_cast<TimeNs>(hours) * kNsPerHour) {
    sim::JobSpec funnel;
    funnel.job_id = job_id++;
    funnel.name = "checkpoint-storm";
    funnel.duration =
        (40 + rng.NextBelow(40)) * kNsPerMin;
    funnel.arrival = t;
    funnel.profile = sim::JobProfile::IoHeavy();
    funnel.profile.net_bytes_per_s = 4.0e9;
    // Fixed placement over a contiguous block so it never queues.
    const int span = nodes / 8;
    const int start =
        static_cast<int>(rng.NextBelow(static_cast<std::uint64_t>(
            nodes - span)));
    for (int n = start; n < start + span; ++n) {
      funnel.fixed_nodes.push_back(n);
    }
    (void)cluster.Submit(funnel);
    t += (80 + rng.NextBelow(40)) * kNsPerMin;
  }

  // Background compute filler (no meaningful traffic).
  sim::JobSpec filler;
  filler.job_id = job_id++;
  filler.name = "filler";
  filler.node_count = nodes / 8;
  filler.duration = static_cast<DurationNs>(hours) * kNsPerHour;
  filler.profile = sim::JobProfile::Compute();
  (void)cluster.Submit(filler);
}

}  // namespace

BwDayResult RunBlueWatersDay(const BwDayConfig& config) {
  sim::ClusterConfig cluster_config = sim::ClusterConfig::BlueWaters(config.dims);
  cluster_config.seed = config.seed;
  sim::SimCluster cluster(cluster_config);
  Rng rng(config.seed);
  SubmitDayMix(cluster, config.hours, rng);

  // One gpcdr sampler per Gemini (even nodes); real sampler plugins parsing
  // real gpcdr-format text.
  MemManager mem(static_cast<std::size_t>(cluster.node_count()) * 24 << 10);
  SetRegistry sets;
  std::vector<std::shared_ptr<GpcdrSampler>> samplers;
  samplers.reserve(static_cast<std::size_t>(cluster.node_count() / 2));
  for (int n = 0; n < cluster.node_count(); n += 2) {
    auto sampler = std::make_shared<GpcdrSampler>(cluster.MakeDataSource(n));
    PluginParams params{{"producer", cluster.Hostname(n)},
                        {"component_id", std::to_string(n)}};
    if (!sampler->Init(mem, sets, params).ok()) break;
    samplers.push_back(std::move(sampler));
  }

  BwDayResult result;
  result.dims = config.dims;
  const int ticks = config.hours * 60;
  result.rows.reserve(static_cast<std::size_t>(ticks) * samplers.size());
  for (int tick = 0; tick < ticks; ++tick) {
    cluster.Tick(config.sample_interval);
    for (std::size_t i = 0; i < samplers.size(); ++i) {
      auto& sampler = *samplers[i];
      (void)sampler.Sample(cluster.now());
      const MetricSet& set = *sampler.Sets().front();
      const double stall = set.GetD64(kPctStallXPlus);
      const double bw = set.GetD64(kPctBwYPlus);
      const auto node = static_cast<std::uint64_t>(2 * i);

      auto& stall_series = result.stall_xplus[node];
      stall_series.times.push_back(cluster.now());
      stall_series.values.push_back(stall);
      auto& bw_series = result.bw_yplus[node];
      bw_series.times.push_back(cluster.now());
      bw_series.values.push_back(bw);

      MemRow row;
      row.timestamp = cluster.now();
      row.component_id = node;
      row.values = {stall, bw};
      result.rows.push_back(std::move(row));

      if (stall > result.max_stall) {
        result.max_stall = stall;
        result.max_stall_time = cluster.now();
        result.max_stall_node = node;
      }
      if (bw > result.max_bw) {
        result.max_bw = bw;
        result.max_bw_time = cluster.now();
      }
    }
  }
  return result;
}

}  // namespace ldmsxx::bench
