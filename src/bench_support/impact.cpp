#include "bench_support/impact.hpp"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <chrono>
#include <memory>
#include <thread>

#include "daemon/ldmsd.hpp"
#include "sampler/samplers.hpp"
#include "store/memory_store.hpp"

namespace ldmsxx::bench {
namespace {

inline std::uint64_t SpinWork(std::uint64_t reps, std::uint64_t seed) {
  std::uint64_t acc = seed | 1;
  for (std::uint64_t i = 0; i < reps; ++i) {
    acc = acc * 6364136223846793005ull + 1442695040888963407ull;
    asm volatile("" : "+r"(acc));
  }
  return acc;
}

double WallSeconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

AppKernel MakeHaloKernel(unsigned threads, std::uint64_t steps,
                         std::uint64_t work_per_step) {
  return [=] {
    std::barrier sync(static_cast<std::ptrdiff_t>(threads));
    // Shared halo cells: each thread writes its boundary, reads neighbours'.
    std::vector<std::atomic<std::uint64_t>> halo(threads);
    auto body = [&](unsigned tid) {
      std::uint64_t acc = tid;
      for (std::uint64_t s = 0; s < steps; ++s) {
        acc = SpinWork(work_per_step, acc);
        halo[tid].store(acc, std::memory_order_release);
        sync.arrive_and_wait();
        const unsigned left = (tid + threads - 1) % threads;
        const unsigned right = (tid + 1) % threads;
        acc ^= halo[left].load(std::memory_order_acquire) +
               halo[right].load(std::memory_order_acquire);
        sync.arrive_and_wait();
      }
      asm volatile("" : "+r"(acc));
    };
    return WallSeconds([&] {
      std::vector<std::thread> pool;
      for (unsigned t = 0; t < threads; ++t) pool.emplace_back(body, t);
      for (auto& t : pool) t.join();
    });
  };
}

AppKernel MakeCgKernel(unsigned threads, std::uint64_t steps,
                       std::uint64_t work_per_step) {
  return [=] {
    std::barrier sync(static_cast<std::ptrdiff_t>(threads));
    std::vector<std::atomic<std::uint64_t>> partial(threads);
    std::atomic<std::uint64_t> global{0};
    auto body = [&](unsigned tid) {
      std::uint64_t acc = tid + 1;
      for (std::uint64_t s = 0; s < steps; ++s) {
        // CG iteration: long compute, small reduction (64 B payload shape).
        acc = SpinWork(work_per_step, acc);
        partial[tid].store(acc, std::memory_order_release);
        sync.arrive_and_wait();
        if (tid == 0) {
          std::uint64_t sum = 0;
          for (auto& p : partial) sum += p.load(std::memory_order_acquire);
          global.store(sum, std::memory_order_release);
        }
        sync.arrive_and_wait();
        acc ^= global.load(std::memory_order_acquire);
      }
      asm volatile("" : "+r"(acc));
    };
    return WallSeconds([&] {
      std::vector<std::thread> pool;
      for (unsigned t = 0; t < threads; ++t) pool.emplace_back(body, t);
      for (auto& t : pool) t.join();
    });
  };
}

AppKernel MakeAllReduceKernel(unsigned threads, std::uint64_t iterations) {
  // All synchronization, minimal compute: the most noise-sensitive shape.
  return MakeCgKernel(threads, iterations, 200);
}

AppKernel MakeLinkTestKernel(std::uint64_t iterations) {
  return [=] {
    std::atomic<std::uint64_t> ping{0};
    std::atomic<std::uint64_t> pong{0};
    // Spin with a yield so the partner makes progress even when both
    // threads share one core (otherwise each burns its whole timeslice).
    auto a = [&] {
      for (std::uint64_t i = 1; i <= iterations; ++i) {
        ping.store(i, std::memory_order_release);
        while (pong.load(std::memory_order_acquire) != i) {
          std::this_thread::yield();
        }
      }
    };
    auto b = [&] {
      for (std::uint64_t i = 1; i <= iterations; ++i) {
        while (ping.load(std::memory_order_acquire) != i) {
          std::this_thread::yield();
        }
        pong.store(i, std::memory_order_release);
      }
    };
    return WallSeconds([&] {
      std::thread ta(a);
      std::thread tb(b);
      ta.join();
      tb.join();
    });
  };
}

double ImpactResult::Mean() const {
  double sum = 0.0;
  for (double w : wall_seconds) sum += w;
  return wall_seconds.empty() ? 0.0
                              : sum / static_cast<double>(wall_seconds.size());
}

double ImpactResult::Min() const {
  return wall_seconds.empty()
             ? 0.0
             : *std::min_element(wall_seconds.begin(), wall_seconds.end());
}

double ImpactResult::Max() const {
  return wall_seconds.empty()
             ? 0.0
             : *std::max_element(wall_seconds.begin(), wall_seconds.end());
}

ImpactResult RunUnderMonitoring(const std::string& app_name,
                                const AppKernel& kernel,
                                const MonitorConfig& config,
                                unsigned repetitions) {
  ImpactResult result;
  result.app = app_name;
  result.config = config.label;

  std::unique_ptr<Ldmsd> sampler_daemon;
  std::unique_ptr<Ldmsd> aggregator;
  auto store = std::make_shared<MemoryStore>();

  if (config.monitored) {
    LdmsdOptions opts;
    opts.name = "impact-sampler";
    opts.worker_threads = 1;
    opts.set_memory = 4 << 20;
    if (config.with_network) {
      opts.listen_transport = "local";
      opts.listen_address = "impact/sampler";
    }
    sampler_daemon = std::make_unique<Ldmsd>(opts);

    // The real machine's /proc is the data source: sampling cost is genuine.
    auto source = std::make_shared<RealFsDataSource>();
    SamplerConfig sc;
    sc.interval = config.interval;
    sc.synchronous = config.synchronous;
    std::vector<SamplerPluginPtr> plugins = {
        std::make_shared<MeminfoSampler>(source),
        std::make_shared<ProcStatSampler>(source),
        std::make_shared<LoadAvgSampler>(source),
        std::make_shared<NetDevSampler>(source),
    };
    // Pad with synthetic samplers up to the requested count (some paper
    // sources, e.g. Lustre, do not exist on a dev box).
    for (unsigned i = static_cast<unsigned>(plugins.size());
         i < config.sampler_count; ++i) {
      sc.params["metrics"] = "64";
      plugins.push_back(std::make_shared<SyntheticSampler>(source));
      break;  // synthetic plugin name collides; one padding set suffices
    }
    for (unsigned i = 0; i < plugins.size() && i < config.sampler_count; ++i) {
      (void)sampler_daemon->AddSampler(plugins[i], sc);
    }
    (void)sampler_daemon->Start();

    if (config.with_network) {
      LdmsdOptions agg_opts;
      agg_opts.name = "impact-aggregator";
      agg_opts.worker_threads = 1;
      agg_opts.set_memory = 8 << 20;
      aggregator = std::make_unique<Ldmsd>(agg_opts);
      ProducerConfig pc;
      pc.name = "impact-sampler";
      pc.transport = "local";
      pc.address = "impact/sampler";
      pc.interval = config.interval;
      pc.synchronous = config.synchronous;
      (void)aggregator->AddProducer(pc);
      (void)aggregator->AddStorePolicy({store, "", ""});
      (void)aggregator->Start();
    }
    // Let the monitoring reach steady state (connections + first lookups).
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  for (unsigned rep = 0; rep < repetitions; ++rep) {
    result.wall_seconds.push_back(kernel());
  }

  if (aggregator != nullptr) aggregator->Stop();
  if (sampler_daemon != nullptr) sampler_daemon->Stop();
  return result;
}

}  // namespace ldmsxx::bench
