// Application-impact harness for Figures 6 and 7: run fixed-work kernels
// shaped like the paper's benchmark applications while real LDMS sampler
// daemons (and optionally aggregation + storage) run in the same process,
// then compare wall times across monitoring configurations:
//   unmonitored | interval sampling, no net | interval sampling + aggregation
//
// Kernels expose the two coupling channels LDMS could perturb: CPU time on
// the node (compute phases) and synchronization waits (barrier/reduce
// phases, where one delayed thread delays all — the paper's discussion of
// why random sampling across nodes can amplify impact).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "util/clock.hpp"

namespace ldmsxx::bench {

/// A fixed-work application kernel; returns elapsed wall seconds.
using AppKernel = std::function<double()>;

/// Halo-exchange stencil: compute + neighbour copies + barrier per step
/// (MiniGhost, CTH shape).
AppKernel MakeHaloKernel(unsigned threads, std::uint64_t steps,
                         std::uint64_t work_per_step);

/// CG-like phase loop: compute-heavy iterations punctuated by small
/// allreduce-style reductions (MILC shape).
AppKernel MakeCgKernel(unsigned threads, std::uint64_t steps,
                       std::uint64_t work_per_step);

/// Pure synchronization benchmark: allreduce over a 64-byte payload per
/// iteration (IMB MPI_Allreduce shape).
AppKernel MakeAllReduceKernel(unsigned threads, std::uint64_t iterations);

/// Ping-pong message latency between two threads (Cray LinkTest shape).
AppKernel MakeLinkTestKernel(std::uint64_t iterations);

/// Monitoring configuration applied while a kernel runs.
struct MonitorConfig {
  std::string label = "unmonitored";
  bool monitored = false;
  DurationNs interval = kNsPerSec;
  /// Also run an aggregator pulling + storing over the local transport
  /// (the paper's "no net" variants disable exactly this part).
  bool with_network = false;
  /// Number of sampler plugins to run (Figure 8's HM_HALF halves this).
  unsigned sampler_count = 7;
  /// Wall-aligned synchronous sampling.
  bool synchronous = true;
};

struct ImpactResult {
  std::string app;
  std::string config;
  std::vector<double> wall_seconds;  ///< one entry per repetition

  double Mean() const;
  double Min() const;
  double Max() const;
};

/// Run @p kernel @p repetitions times under @p config; monitoring daemons
/// are brought up before the first repetition and torn down after the last.
ImpactResult RunUnderMonitoring(const std::string& app_name,
                                const AppKernel& kernel,
                                const MonitorConfig& config,
                                unsigned repetitions);

}  // namespace ldmsxx::bench
