#include "store/store.hpp"

namespace ldmsxx {

Status Store::StoreRows(const RowBatch&) {
  return {ErrorCode::kUnsupported, name() + " does not accept decomposed rows"};
}

Status Store::StoreSetBatch(const BatchItem* items, std::size_t n,
                            std::size_t* stored) {
  std::size_t ok = 0;
  Status st;
  for (std::size_t i = 0; i < n; ++i) {
    Status one;
    {
      std::lock_guard<std::mutex> lock(*items[i].mu);
      one = StoreSet(*items[i].set);
    }
    if (one.ok()) {
      ++ok;
    } else {
      st = one;
      break;
    }
  }
  if (stored != nullptr) *stored = ok;
  return st;
}

}  // namespace ldmsxx
