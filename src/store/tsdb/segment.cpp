#include "store/tsdb/segment.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "core/wire.hpp"
#include "util/atomic_file.hpp"

namespace ldmsxx {
namespace {

constexpr std::uint32_t kSegMagicV1 = 0x3147534c;      // "LSG1"
constexpr std::uint32_t kSegMagicV2 = 0x3247534c;      // "LSG2"
constexpr std::uint32_t kTrailerMagicV1 = 0x4647534c;  // "LSGF"
constexpr std::uint32_t kTrailerMagicV2 = 0x4747534c;  // "LSGG"
constexpr std::size_t kTrailerSize = 8 + 8 + 4;

/// FNV-1a over raw bytes; same function the registry uses for its CRC (a
/// corruption check, not a cryptographic seal). Used for the variable-
/// length footer, which is small.
std::uint64_t Fnv1a(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

/// FNV-1a folded one u64 lane per step. Raw columns are dense 8-byte slot
/// arrays, and the byte-serial variant's dependent multiply per byte is the
/// single largest CPU cost of sealing a segment; folding a word at a time
/// keeps the same corruption-detection role at 1/8th the multiplies. Used
/// for kRaw column CRCs (v1 and v2 writers and readers agree).
std::uint64_t Fnv1aWords(const std::uint64_t* p, std::size_t n_words) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < n_words; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

/// Word-folded FNV-1a over a byte-granular stream: full 8-byte chunks fold
/// as u64 lanes, the (< 8 byte) tail folds byte-wise. Compressed column
/// blocks use this — the byte-serial form's dependent-multiply chain costs
/// more than the varint decode it guards, which would put the CRC, not the
/// codec, on the query's critical path.
std::uint64_t Fnv1aBytes(const std::uint8_t* p, std::size_t n) {
  std::uint64_t h = 1469598103934665603ull;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t word;
    std::memcpy(&word, p + i, 8);
    h ^= word;
    h *= 1099511628211ull;
  }
  for (; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

Status Corrupt(const std::string& path, const char* what) {
  return {ErrorCode::kInconsistent,
          "segment " + path + ": " + what};
}

/// RAII stdio handle.
struct File {
  std::FILE* f = nullptr;
  explicit File(const std::string& path) : f(std::fopen(path.c_str(), "rb")) {}
  ~File() {
    if (f != nullptr) std::fclose(f);
  }
};

}  // namespace

int SegmentFooter::FindColumn(const std::string& name) const {
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

SegmentBuilder::SegmentBuilder(std::string table,
                               std::vector<SegmentColumn> columns,
                               std::size_t capacity)
    : table_(std::move(table)),
      columns_(std::move(columns)),
      capacity_(capacity == 0 ? 1 : capacity) {
  ts_.reserve(capacity_);
  nodes_.reserve(capacity_);
  prod_.reserve(capacity_);
  cols_.resize(columns_.size());
  for (auto& col : cols_) col.reserve(capacity_);
}

std::uint16_t SegmentBuilder::InternProducer(const std::string& producer) {
  auto it = prod_index_.find(producer);
  if (it != prod_index_.end()) return it->second;
  const auto idx = static_cast<std::uint16_t>(prod_dict_.size());
  prod_dict_.push_back(producer);
  prod_index_.emplace(producer, idx);
  return idx;
}

void SegmentBuilder::Append(TimeNs ts, std::uint64_t node,
                            std::uint16_t producer,
                            const std::uint64_t* slots) {
  ts_.push_back(ts);
  nodes_.push_back(node);
  prod_.push_back(producer);
  for (std::size_t i = 0; i < cols_.size(); ++i) cols_[i].push_back(slots[i]);
  min_ts_ = std::min(min_ts_, ts);
  max_ts_ = std::max(max_ts_, ts);
}

std::string SegmentBuilder::Serialize(bool compress) const {
  ByteWriter w;
  w.U32(kSegMagicV2);
  w.Str(table_);
  w.U16(static_cast<std::uint16_t>(columns_.size()));

  const std::size_t n_cols = 3 + columns_.size();
  std::vector<std::uint64_t> offsets(n_cols), crcs(n_cols), enc_lens(n_cols);
  std::vector<std::uint8_t> codecs(n_cols);
  // One scratch encode buffer shared by every column: cleared per column,
  // capacity retained, so a seal does at most one encode allocation total.
  std::vector<std::uint8_t> scratch;
  auto put_column = [&](const std::vector<std::uint64_t>& col,
                        ColumnCodec want, std::size_t idx) {
    offsets[idx] = w.size();
    const std::size_t raw_bytes = col.size() * sizeof(std::uint64_t);
    if (compress && want != ColumnCodec::kRaw) {
      scratch.clear();
      EncodeColumn(want, col.data(), col.size(), &scratch);
      if (scratch.size() < raw_bytes) {
        codecs[idx] = static_cast<std::uint8_t>(want);
        enc_lens[idx] = scratch.size();
        crcs[idx] = Fnv1aBytes(scratch.data(), scratch.size());
        w.Raw(scratch.data(), scratch.size());
        return;
      }
    }
    codecs[idx] = static_cast<std::uint8_t>(ColumnCodec::kRaw);
    enc_lens[idx] = raw_bytes;
    crcs[idx] = Fnv1aWords(col.data(), col.size());
    w.Raw(col.data(), raw_bytes);
  };
  put_column(ts_, ColumnCodec::kDeltaOfDelta, SegmentFooter::kTsCol);
  put_column(nodes_, ColumnCodec::kRle, SegmentFooter::kNodeCol);
  put_column(prod_, ColumnCodec::kRle, SegmentFooter::kProdCol);
  for (std::size_t i = 0; i < cols_.size(); ++i) {
    const bool is_double = columns_[i].type == MetricType::kD64 ||
                           columns_[i].type == MetricType::kF32;
    put_column(cols_[i], PreferredDataCodec(is_double),
               SegmentFooter::DataCol(i));
  }

  // Footer: the index. Node dictionary is sorted-unique with an overflow
  // escape so the footer stays small no matter what the segment holds.
  const std::size_t footer_offset = w.size();
  w.Str(table_);
  w.U64(empty() ? 0 : min_ts_);
  w.U64(max_ts_);
  w.U64(row_count());
  std::vector<std::uint64_t> dict(nodes_);
  std::sort(dict.begin(), dict.end());
  dict.erase(std::unique(dict.begin(), dict.end()), dict.end());
  const bool overflow = dict.size() > kMaxNodeDict;
  w.U8(overflow ? 1 : 0);
  if (overflow) dict.clear();
  w.U16(static_cast<std::uint16_t>(dict.size()));
  for (const std::uint64_t node : dict) w.U64(node);
  w.U16(static_cast<std::uint16_t>(prod_dict_.size()));
  for (const auto& p : prod_dict_) w.Str(p);
  w.U16(static_cast<std::uint16_t>(columns_.size()));
  for (const auto& col : columns_) {
    w.Str(col.name);
    w.U8(static_cast<std::uint8_t>(col.type));
  }
  for (const std::uint64_t off : offsets) w.U64(off);
  for (const std::uint64_t crc : crcs) w.U64(crc);
  for (const std::uint8_t codec : codecs) w.U8(codec);
  for (const std::uint64_t len : enc_lens) w.U64(len);
  const std::size_t footer_end = w.size();

  w.U64(footer_offset);
  w.U64(Fnv1a(w.buffer().data() + footer_offset, footer_end - footer_offset));
  w.U32(kTrailerMagicV2);

  const auto& buf = w.buffer();
  return std::string(reinterpret_cast<const char*>(buf.data()), buf.size());
}

Status WriteSegmentFile(const std::string& path, const SegmentBuilder& builder,
                        bool durable, bool compress) {
  return AtomicWriteFile(path, builder.Serialize(compress), 0644, durable);
}

Status ReadSegmentFooter(const std::string& path, SegmentFooter* out) {
  *out = SegmentFooter{};
  File file(path);
  if (file.f == nullptr) {
    return {ErrorCode::kNotFound, "segment " + path + ": cannot open"};
  }
  if (std::fseek(file.f, 0, SEEK_END) != 0) {
    return Corrupt(path, "seek failed");
  }
  const long size = std::ftell(file.f);
  if (size < 0 || static_cast<std::size_t>(size) < kTrailerSize) {
    return Corrupt(path, "shorter than trailer");
  }
  std::uint8_t trailer[kTrailerSize];
  if (std::fseek(file.f, -static_cast<long>(kTrailerSize), SEEK_END) != 0 ||
      std::fread(trailer, 1, kTrailerSize, file.f) != kTrailerSize) {
    return Corrupt(path, "trailer read failed");
  }
  ByteReader tr({reinterpret_cast<const std::byte*>(trailer), kTrailerSize});
  const std::uint64_t footer_offset = tr.U64();
  const std::uint64_t footer_crc = tr.U64();
  const std::uint32_t trailer_magic = tr.U32();
  if (trailer_magic == kTrailerMagicV1) {
    out->version = 1;
  } else if (trailer_magic == kTrailerMagicV2) {
    out->version = 2;
  } else {
    return Corrupt(path, "bad trailer magic");
  }
  const std::size_t footer_end = static_cast<std::size_t>(size) - kTrailerSize;
  if (footer_offset >= footer_end) {
    return Corrupt(path, "footer offset out of range");
  }
  std::vector<std::byte> footer(footer_end - footer_offset);
  if (std::fseek(file.f, static_cast<long>(footer_offset), SEEK_SET) != 0 ||
      std::fread(footer.data(), 1, footer.size(), file.f) != footer.size()) {
    return Corrupt(path, "footer read failed");
  }
  if (Fnv1a(footer.data(), footer.size()) != footer_crc) {
    return Corrupt(path, "footer checksum mismatch");
  }
  ByteReader r(footer);
  out->table = r.Str();
  out->min_ts = r.U64();
  out->max_ts = r.U64();
  out->row_count = r.U64();
  out->node_overflow = r.U8() != 0;
  const std::uint16_t n_nodes = r.U16();
  out->nodes.reserve(n_nodes);
  for (std::uint16_t i = 0; i < n_nodes; ++i) out->nodes.push_back(r.U64());
  const std::uint16_t n_prod = r.U16();
  out->producers.reserve(n_prod);
  for (std::uint16_t i = 0; i < n_prod; ++i) out->producers.push_back(r.Str());
  const std::uint16_t n_cols = r.U16();
  out->columns.reserve(n_cols);
  for (std::uint16_t i = 0; i < n_cols; ++i) {
    SegmentColumn col;
    col.name = r.Str();
    col.type = static_cast<MetricType>(r.U8());
    out->columns.push_back(std::move(col));
  }
  const std::size_t total_cols = 3 + static_cast<std::size_t>(n_cols);
  out->offsets.reserve(total_cols);
  for (std::size_t i = 0; i < total_cols; ++i) out->offsets.push_back(r.U64());
  out->crcs.reserve(total_cols);
  for (std::size_t i = 0; i < total_cols; ++i) out->crcs.push_back(r.U64());
  if (out->version >= 2) {
    out->codecs.reserve(total_cols);
    for (std::size_t i = 0; i < total_cols; ++i) out->codecs.push_back(r.U8());
    out->enc_lens.reserve(total_cols);
    for (std::size_t i = 0; i < total_cols; ++i) {
      out->enc_lens.push_back(r.U64());
    }
  } else {
    // v1: every column is a raw slot run.
    out->codecs.assign(total_cols,
                       static_cast<std::uint8_t>(ColumnCodec::kRaw));
    out->enc_lens.assign(total_cols,
                         out->row_count * sizeof(std::uint64_t));
  }
  if (!r.ok() || out->table.empty()) {
    return Corrupt(path, "malformed footer");
  }
  // Column blocks must fit inside the body (before the footer), raw blocks
  // must be exactly the slot run, and codec ids must be ones we know.
  for (std::size_t i = 0; i < total_cols; ++i) {
    const std::uint64_t off = out->offsets[i];
    const std::uint64_t len = out->enc_lens[i];
    if (off > footer_offset || len > footer_offset - off) {
      return Corrupt(path, "column run out of range");
    }
    if (out->codecs[i] > static_cast<std::uint8_t>(ColumnCodec::kDelta)) {
      return Corrupt(path, "unknown column codec");
    }
    if (out->codecs[i] == static_cast<std::uint8_t>(ColumnCodec::kRaw) &&
        len != out->row_count * sizeof(std::uint64_t)) {
      return Corrupt(path, "raw column length mismatch");
    }
  }
  return Status::Ok();
}

Status ReadSegmentColumn(const std::string& path, const SegmentFooter& footer,
                         std::size_t col, std::vector<std::uint64_t>* out,
                         std::vector<std::uint8_t>* scratch) {
  if (col >= footer.offsets.size()) {
    return Corrupt(path, "column index out of range");
  }
  File file(path);
  if (file.f == nullptr) {
    return {ErrorCode::kNotFound, "segment " + path + ": cannot open"};
  }
  const std::uint64_t offset = footer.offsets[col];
  const std::size_t enc_len = static_cast<std::size_t>(footer.enc_lens[col]);
  const auto codec = static_cast<ColumnCodec>(footer.codecs[col]);
  out->resize(footer.row_count);
  if (codec == ColumnCodec::kRaw) {
    // Raw blocks decode in place: read straight into the slot vector and
    // verify the word-folded CRC over it.
    if (enc_len > 0 &&
        (std::fseek(file.f, static_cast<long>(offset), SEEK_SET) != 0 ||
         std::fread(out->data(), 1, enc_len, file.f) != enc_len)) {
      return Corrupt(path, "column read failed");
    }
    if (Fnv1aWords(out->data(), footer.row_count) != footer.crcs[col]) {
      return Corrupt(path, "column checksum mismatch");
    }
    return Status::Ok();
  }
  std::vector<std::uint8_t> local;
  std::vector<std::uint8_t>& buf = scratch != nullptr ? *scratch : local;
  buf.resize(enc_len);
  if (enc_len > 0 &&
      (std::fseek(file.f, static_cast<long>(offset), SEEK_SET) != 0 ||
       std::fread(buf.data(), 1, enc_len, file.f) != enc_len)) {
    return Corrupt(path, "column read failed");
  }
  if (Fnv1aBytes(buf.data(), enc_len) != footer.crcs[col]) {
    return Corrupt(path, "column checksum mismatch");
  }
  if (!DecodeColumn(codec, buf.data(), enc_len, footer.row_count,
                    out->data())) {
    return Corrupt(path, "column decode failed");
  }
  return Status::Ok();
}

}  // namespace ldmsxx
