#include "store/tsdb/segment.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "core/wire.hpp"
#include "util/atomic_file.hpp"

namespace ldmsxx {
namespace {

constexpr std::uint32_t kSegMagic = 0x3147534c;      // "LSG1"
constexpr std::uint32_t kTrailerMagic = 0x4647534c;  // "LSGF"
constexpr std::size_t kTrailerSize = 8 + 8 + 4;

/// FNV-1a over raw bytes; same function the registry uses for its CRC (a
/// corruption check, not a cryptographic seal).
std::uint64_t Fnv1a(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

/// FNV-1a folded one u64 lane per step. Column bodies are dense 8-byte slot
/// arrays, and the byte-serial variant's dependent multiply per byte is the
/// single largest CPU cost of sealing a segment; folding a word at a time
/// keeps the same corruption-detection role at 1/8th the multiplies. Used
/// only for column-body CRCs (writer and reader agree); the variable-length
/// footer keeps the byte-wise form.
std::uint64_t Fnv1aWords(const std::uint64_t* p, std::size_t n_words) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < n_words; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

Status Corrupt(const std::string& path, const char* what) {
  return {ErrorCode::kInconsistent,
          "segment " + path + ": " + what};
}

/// RAII stdio handle.
struct File {
  std::FILE* f = nullptr;
  explicit File(const std::string& path) : f(std::fopen(path.c_str(), "rb")) {}
  ~File() {
    if (f != nullptr) std::fclose(f);
  }
};

}  // namespace

int SegmentFooter::FindColumn(const std::string& name) const {
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

SegmentBuilder::SegmentBuilder(std::string table,
                               std::vector<SegmentColumn> columns,
                               std::size_t capacity)
    : table_(std::move(table)),
      columns_(std::move(columns)),
      capacity_(capacity == 0 ? 1 : capacity) {
  ts_.reserve(capacity_);
  nodes_.reserve(capacity_);
  prod_.reserve(capacity_);
  cols_.resize(columns_.size());
  for (auto& col : cols_) col.reserve(capacity_);
}

std::uint16_t SegmentBuilder::InternProducer(const std::string& producer) {
  auto it = prod_index_.find(producer);
  if (it != prod_index_.end()) return it->second;
  const auto idx = static_cast<std::uint16_t>(prod_dict_.size());
  prod_dict_.push_back(producer);
  prod_index_.emplace(producer, idx);
  return idx;
}

void SegmentBuilder::Append(TimeNs ts, std::uint64_t node,
                            std::uint16_t producer,
                            const std::uint64_t* slots) {
  ts_.push_back(ts);
  nodes_.push_back(node);
  prod_.push_back(producer);
  for (std::size_t i = 0; i < cols_.size(); ++i) cols_[i].push_back(slots[i]);
  min_ts_ = std::min(min_ts_, ts);
  max_ts_ = std::max(max_ts_, ts);
}

std::string SegmentBuilder::Serialize() const {
  ByteWriter w;
  w.U32(kSegMagic);
  w.Str(table_);
  w.U16(static_cast<std::uint16_t>(columns_.size()));

  const std::size_t n_cols = 3 + columns_.size();
  std::vector<std::uint64_t> offsets(n_cols), crcs(n_cols);
  auto put_column = [&w](const std::vector<std::uint64_t>& col,
                         std::uint64_t* offset, std::uint64_t* crc) {
    *offset = w.size();
    const std::size_t bytes = col.size() * sizeof(std::uint64_t);
    *crc = Fnv1aWords(col.data(), col.size());
    w.Raw(col.data(), bytes);
  };
  put_column(ts_, &offsets[0], &crcs[0]);
  put_column(nodes_, &offsets[1], &crcs[1]);
  put_column(prod_, &offsets[2], &crcs[2]);
  for (std::size_t i = 0; i < cols_.size(); ++i) {
    put_column(cols_[i], &offsets[3 + i], &crcs[3 + i]);
  }

  // Footer: the index. Node dictionary is sorted-unique with an overflow
  // escape so the footer stays small no matter what the segment holds.
  const std::size_t footer_offset = w.size();
  w.Str(table_);
  w.U64(empty() ? 0 : min_ts_);
  w.U64(max_ts_);
  w.U64(row_count());
  std::vector<std::uint64_t> dict(nodes_);
  std::sort(dict.begin(), dict.end());
  dict.erase(std::unique(dict.begin(), dict.end()), dict.end());
  const bool overflow = dict.size() > kMaxNodeDict;
  w.U8(overflow ? 1 : 0);
  if (overflow) dict.clear();
  w.U16(static_cast<std::uint16_t>(dict.size()));
  for (const std::uint64_t node : dict) w.U64(node);
  w.U16(static_cast<std::uint16_t>(prod_dict_.size()));
  for (const auto& p : prod_dict_) w.Str(p);
  w.U16(static_cast<std::uint16_t>(columns_.size()));
  for (const auto& col : columns_) {
    w.Str(col.name);
    w.U8(static_cast<std::uint8_t>(col.type));
  }
  for (const std::uint64_t off : offsets) w.U64(off);
  for (const std::uint64_t crc : crcs) w.U64(crc);
  const std::size_t footer_end = w.size();

  w.U64(footer_offset);
  w.U64(Fnv1a(w.buffer().data() + footer_offset, footer_end - footer_offset));
  w.U32(kTrailerMagic);

  const auto& buf = w.buffer();
  return std::string(reinterpret_cast<const char*>(buf.data()), buf.size());
}

Status WriteSegmentFile(const std::string& path, const SegmentBuilder& builder,
                        bool durable) {
  return AtomicWriteFile(path, builder.Serialize(), 0644, durable);
}

Status ReadSegmentFooter(const std::string& path, SegmentFooter* out) {
  *out = SegmentFooter{};
  File file(path);
  if (file.f == nullptr) {
    return {ErrorCode::kNotFound, "segment " + path + ": cannot open"};
  }
  if (std::fseek(file.f, 0, SEEK_END) != 0) {
    return Corrupt(path, "seek failed");
  }
  const long size = std::ftell(file.f);
  if (size < 0 || static_cast<std::size_t>(size) < kTrailerSize) {
    return Corrupt(path, "shorter than trailer");
  }
  std::uint8_t trailer[kTrailerSize];
  if (std::fseek(file.f, -static_cast<long>(kTrailerSize), SEEK_END) != 0 ||
      std::fread(trailer, 1, kTrailerSize, file.f) != kTrailerSize) {
    return Corrupt(path, "trailer read failed");
  }
  ByteReader tr({reinterpret_cast<const std::byte*>(trailer), kTrailerSize});
  const std::uint64_t footer_offset = tr.U64();
  const std::uint64_t footer_crc = tr.U64();
  if (tr.U32() != kTrailerMagic) {
    return Corrupt(path, "bad trailer magic");
  }
  const std::size_t footer_end = static_cast<std::size_t>(size) - kTrailerSize;
  if (footer_offset >= footer_end) {
    return Corrupt(path, "footer offset out of range");
  }
  std::vector<std::byte> footer(footer_end - footer_offset);
  if (std::fseek(file.f, static_cast<long>(footer_offset), SEEK_SET) != 0 ||
      std::fread(footer.data(), 1, footer.size(), file.f) != footer.size()) {
    return Corrupt(path, "footer read failed");
  }
  if (Fnv1a(footer.data(), footer.size()) != footer_crc) {
    return Corrupt(path, "footer checksum mismatch");
  }
  ByteReader r(footer);
  out->table = r.Str();
  out->min_ts = r.U64();
  out->max_ts = r.U64();
  out->row_count = r.U64();
  out->node_overflow = r.U8() != 0;
  const std::uint16_t n_nodes = r.U16();
  out->nodes.reserve(n_nodes);
  for (std::uint16_t i = 0; i < n_nodes; ++i) out->nodes.push_back(r.U64());
  const std::uint16_t n_prod = r.U16();
  out->producers.reserve(n_prod);
  for (std::uint16_t i = 0; i < n_prod; ++i) out->producers.push_back(r.Str());
  const std::uint16_t n_cols = r.U16();
  out->columns.reserve(n_cols);
  for (std::uint16_t i = 0; i < n_cols; ++i) {
    SegmentColumn col;
    col.name = r.Str();
    col.type = static_cast<MetricType>(r.U8());
    out->columns.push_back(std::move(col));
  }
  out->ts_offset = r.U64();
  out->node_offset = r.U64();
  out->prod_offset = r.U64();
  out->col_offsets.reserve(n_cols);
  for (std::uint16_t i = 0; i < n_cols; ++i) out->col_offsets.push_back(r.U64());
  out->ts_crc = r.U64();
  out->node_crc = r.U64();
  out->prod_crc = r.U64();
  out->col_crcs.reserve(n_cols);
  for (std::uint16_t i = 0; i < n_cols; ++i) out->col_crcs.push_back(r.U64());
  if (!r.ok() || out->table.empty()) {
    return Corrupt(path, "malformed footer");
  }
  // Column runs must fit inside the body (before the footer).
  const std::uint64_t run = out->row_count * sizeof(std::uint64_t);
  auto bad_run = [&](std::uint64_t off) {
    return off > footer_offset || run > footer_offset - off;
  };
  if (bad_run(out->ts_offset) || bad_run(out->node_offset) ||
      bad_run(out->prod_offset)) {
    return Corrupt(path, "column run out of range");
  }
  for (const std::uint64_t off : out->col_offsets) {
    if (bad_run(off)) return Corrupt(path, "column run out of range");
  }
  return Status::Ok();
}

Status ReadSegmentColumn(const std::string& path, const SegmentFooter& footer,
                         std::uint64_t offset, std::uint64_t crc,
                         std::vector<std::uint64_t>* out) {
  File file(path);
  if (file.f == nullptr) {
    return {ErrorCode::kNotFound, "segment " + path + ": cannot open"};
  }
  out->resize(footer.row_count);
  const std::size_t bytes = footer.row_count * sizeof(std::uint64_t);
  if (std::fseek(file.f, static_cast<long>(offset), SEEK_SET) != 0 ||
      std::fread(out->data(), 1, bytes, file.f) != bytes) {
    return Corrupt(path, "column read failed");
  }
  if (Fnv1aWords(out->data(), footer.row_count) != crc) {
    return Corrupt(path, "column checksum mismatch");
  }
  return Status::Ok();
}

}  // namespace ldmsxx
