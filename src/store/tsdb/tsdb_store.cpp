#include "store/tsdb/tsdb_store.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>

#include "core/wire.hpp"
#include "util/atomic_file.hpp"

namespace ldmsxx {
namespace {

constexpr std::uint32_t kRollupMagic = 0x3155524c;  // "LRU1"

std::uint64_t Fnv1a(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

bool SortedContains(const std::vector<std::uint64_t>& sorted,
                    std::uint64_t v) {
  return std::binary_search(sorted.begin(), sorted.end(), v);
}

/// Do two sorted vectors share any element?
bool SortedIntersect(const std::vector<std::uint64_t>& a,
                     const std::vector<std::uint64_t>& b) {
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return true;
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

}  // namespace

TsdbStore::TsdbStore(TsdbOptions opts) : opts_(std::move(opts)) {
  if (opts_.scan_threads > 0) {
    scan_pool_ = std::make_unique<ThreadPool>(opts_.scan_threads, "tsdbscan");
  }
  std::lock_guard<std::mutex> lock(mu_);
  AttachExistingLocked();
}

TsdbStore::~TsdbStore() {
  {
    std::lock_guard<std::mutex> lock(sync_mu_);
    sync_stop_ = true;
  }
  sync_cv_.notify_all();
  if (syncer_.joinable()) syncer_.join();
}

void TsdbStore::EnqueueSync(std::string path) {
  std::lock_guard<std::mutex> lock(sync_mu_);
  if (!syncer_.joinable()) {
    syncer_ = std::thread([this] { SyncerMain(); });
  }
  sync_queue_.push_back(std::move(path));
  sync_cv_.notify_all();
}

void TsdbStore::SyncerMain() {
  std::unique_lock<std::mutex> lock(sync_mu_);
  for (;;) {
    sync_cv_.wait(lock, [this] { return sync_stop_ || !sync_queue_.empty(); });
    // Drain the remaining queue even on stop: destruction must not drop
    // durability work that a caller already handed over.
    if (sync_queue_.empty()) {
      if (sync_stop_) return;
      continue;
    }
    const std::string path = std::move(sync_queue_.front());
    sync_queue_.pop_front();
    ++sync_in_flight_;
    lock.unlock();
    Status st = SyncFile(path);
    lock.lock();
    --sync_in_flight_;
    if (!st.ok() && sync_err_.ok()) sync_err_ = st;
    if (sync_queue_.empty() && sync_in_flight_ == 0) sync_cv_.notify_all();
  }
}

Status TsdbStore::DrainSyncs() {
  std::unique_lock<std::mutex> lock(sync_mu_);
  sync_cv_.wait(lock, [this] {
    return sync_queue_.empty() && sync_in_flight_ == 0;
  });
  Status st = sync_err_;
  sync_err_ = Status::Ok();
  return st;
}

void TsdbStore::AttachExistingLocked() {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(opts_.root_path, ec)) return;
  std::vector<std::string> segs, rollups;
  for (const auto& entry : fs::directory_iterator(opts_.root_path, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const fs::path& p = entry.path();
    if (p.extension() == ".seg") segs.push_back(p.string());
    if (p.extension() == ".rollup") rollups.push_back(p.string());
  }
  // Attach in (table, numeric seq) order, not directory or lexicographic
  // order — "t.10.seg" must follow "t.9.seg" so sealed history replays in
  // write order regardless of how the filesystem iterates.
  auto seg_key = [](const std::string& path) {
    std::string stem = fs::path(path).filename().string();
    if (stem.size() > 4 && stem.ends_with(".seg")) {
      stem.resize(stem.size() - 4);
    }
    const std::size_t dot = stem.rfind('.');
    std::uint64_t seq = 0;
    std::string table = stem;
    if (dot != std::string::npos && dot + 1 < stem.size()) {
      bool numeric = true;
      for (std::size_t i = dot + 1; i < stem.size(); ++i) {
        if (stem[i] < '0' || stem[i] > '9') {
          numeric = false;
          break;
        }
        seq = seq * 10 + static_cast<std::uint64_t>(stem[i] - '0');
      }
      if (numeric) {
        table = stem.substr(0, dot);
      } else {
        seq = 0;
      }
    }
    return std::make_pair(std::move(table), seq);
  };
  std::sort(segs.begin(), segs.end(),
            [&seg_key](const std::string& a, const std::string& b) {
              return seg_key(a) < seg_key(b);
            });
  std::sort(rollups.begin(), rollups.end());
  for (const std::string& path : segs) {
    Sealed sealed;
    sealed.path = path;
    if (!ReadSegmentFooter(path, &sealed.footer).ok()) {
      // Torn/corrupt segment (should be impossible with atomic seals, but a
      // disk can rot): skip it rather than refusing to start.
      ++attach_rejects_;
      continue;
    }
    Table& t = tables_[sealed.footer.table];
    if (t.columns.empty()) {
      t.name = sealed.footer.table;
      t.columns = sealed.footer.columns;
    } else if (t.columns.size() != sealed.footer.columns.size()) {
      ++attach_rejects_;
      continue;
    }
    t.sealed.push_back(std::move(sealed));
    ++segments_attached_;
  }
  for (const std::string& path : rollups) LoadRollupFileLocked(path);
}

void TsdbStore::LoadRollupFileLocked(const std::string& path) {
  std::string text;
  if (!ReadFileToString(path, &text).ok() || text.size() < 8) {
    ++attach_rejects_;
    return;
  }
  const std::size_t body_size = text.size() - 8;
  std::uint64_t want_crc;
  std::memcpy(&want_crc, text.data() + body_size, 8);
  if (Fnv1a(text.data(), body_size) != want_crc) {
    ++attach_rejects_;
    return;
  }
  ByteReader r({reinterpret_cast<const std::byte*>(text.data()), body_size});
  if (r.U32() != kRollupMagic) {
    ++attach_rejects_;
    return;
  }
  const std::string table = r.Str();
  const DurationNs granularity = r.U64();
  const std::uint32_t n = r.U32();
  auto it = tables_.find(table);
  if (it == tables_.end() || granularity != opts_.rollup_granularity) {
    ++attach_rejects_;
    return;
  }
  Table& t = it->second;
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    const std::string column = r.Str();
    const std::uint64_t node = r.U64();
    const std::uint64_t bucket = r.U64();
    RollupAccum acc;
    acc.min = r.D64();
    acc.max = r.D64();
    acc.sum = r.D64();
    acc.count = r.U64();
    int col = -1;
    for (std::size_t c = 0; c < t.columns.size(); ++c) {
      if (t.columns[c].name == column) {
        col = static_cast<int>(c);
        break;
      }
    }
    if (col < 0 || !r.ok()) continue;  // column gone: drop the bucket
    std::vector<RollupAccum>& accs = t.rollups[{node, bucket}];
    if (accs.size() != t.columns.size()) accs.resize(t.columns.size());
    accs[static_cast<std::size_t>(col)] = acc;
  }
}

TsdbStore::Table* TsdbStore::TableForLocked(const RowPlan* plan,
                                            std::uint32_t group_idx) {
  auto& slots = group_tables_[plan];
  if (slots.size() != plan->groups.size()) {
    slots.assign(plan->groups.size(), nullptr);
  }
  if (slots[group_idx] != nullptr) return slots[group_idx];
  const RowGroup& group = plan->groups[group_idx];
  Table& t = tables_[group.table];
  if (t.columns.empty() && t.sealed.empty() && t.active == nullptr) {
    t.name = group.table;
    t.columns.reserve(group.columns.size());
    for (const RowColumn& col : group.columns) {
      t.columns.push_back({col.name, col.type});
    }
  } else {
    // Existing table: the incoming rows must match its column layout.
    if (t.columns.size() != group.columns.size()) return nullptr;
    for (std::size_t i = 0; i < t.columns.size(); ++i) {
      if (t.columns[i].name != group.columns[i].name) return nullptr;
    }
  }
  slots[group_idx] = &t;
  return &t;
}

Status TsdbStore::AppendRowsLocked(const RowBatch& batch) {
  for (const RowBatch::Row& row : batch.rows) {
    Table* t = TableForLocked(row.plan, row.group);
    if (t == nullptr) {
      CountFailedRow();
      return {ErrorCode::kInvalidArgument,
              "store_tsdb: row shape does not match table '" +
                  row.plan->groups[row.group].table + "'"};
    }
    if (t->active == nullptr) {
      t->active = std::make_unique<SegmentBuilder>(t->name, t->columns,
                                                   opts_.segment_rows);
    }
    const std::uint16_t producer =
        t->active->InternProducer(row.producer != nullptr ? *row.producer
                                                          : std::string());
    t->active->Append(row.ts, row.component_id, producer,
                      batch.slots.data() + row.slot_offset);
    CountRow(8 * t->columns.size() + 24);
    if (t->active->full()) {
      Status st = SealLocked(*t);
      if (!st.ok()) {
        // Rows stay in the (now oversized) active segment; the seal is
        // retried on the next append, so a transient disk fault loses
        // nothing — but the failure must reach the breaker.
        CountFailedRow();
        return st;
      }
    }
  }
  return Status::Ok();
}

Status TsdbStore::SealLocked(Table& t) {
  Status st = EnsureDirectories(opts_.root_path);
  if (!st.ok()) return st;
  namespace fs = std::filesystem;
  std::string path;
  for (;;) {
    path = opts_.root_path + "/" + t.name + "." + std::to_string(t.seq) +
           ".seg";
    std::error_code ec;
    if (!fs::exists(path, ec)) break;
    ++t.seq;
  }
  // Rename the segment into place now (readers see it immediately, never
  // torn); the fsyncs run on the background syncer and are awaited by
  // Flush(). A crash before they land leaves a file the CRC checks reject
  // at the next attach — indistinguishable from a crash mid-write.
  st = WriteSegmentFile(path, *t.active, /*durable=*/false, opts_.compress);
  if (!st.ok()) return st;
  EnqueueSync(path);
  Sealed sealed;
  sealed.path = path;
  st = ReadSegmentFooter(path, &sealed.footer);
  if (!st.ok()) return st;
  FoldRollupsLocked(t, *t.active);
  t.sealed.push_back(std::move(sealed));
  ++t.seq;
  ++segments_sealed_;
  t.active.reset();
  return Status::Ok();
}

void TsdbStore::FoldRollupsLocked(Table& t, const SegmentBuilder& seg) {
  const DurationNs g = opts_.rollup_granularity;
  if (g == 0) return;
  const auto& ts = seg.ts();
  const auto& nodes = seg.nodes();
  const std::size_t ncols = t.columns.size();
  if (ts.empty() || ncols == 0) return;
  // Resolve each row's accumulator vector once (runs of the same node and
  // bucket — the common arrival order — share a single map lookup), then
  // fold column-major so each column body streams sequentially.
  std::vector<std::vector<RollupAccum>*> row_accs(ts.size());
  std::vector<RollupAccum>* accs = nullptr;
  std::uint64_t last_node = 0, last_bucket = 0;
  for (std::size_t r = 0; r < ts.size(); ++r) {
    const std::uint64_t bucket = ts[r] - ts[r] % g;
    if (accs == nullptr || nodes[r] != last_node || bucket != last_bucket) {
      last_node = nodes[r];
      last_bucket = bucket;
      accs = &t.rollups[{last_node, last_bucket}];
      if (accs->size() != ncols) accs->resize(ncols);
    }
    row_accs[r] = accs;
  }
  for (std::size_t c = 0; c < ncols; ++c) {
    const auto& col = seg.column(c);
    const MetricType type = t.columns[c].type;
    for (std::size_t r = 0; r < ts.size(); ++r) {
      const double v = SlotAsDouble(col[r], type);
      RollupAccum& acc = (*row_accs[r])[c];
      if (acc.count == 0) {
        acc.min = acc.max = v;
      } else {
        acc.min = std::min(acc.min, v);
        acc.max = std::max(acc.max, v);
      }
      acc.sum += v;
      ++acc.count;
    }
  }
  t.rollup_dirty = true;
}

Status TsdbStore::PersistRollupsLocked(Table& t) {
  ByteWriter w;
  w.U32(kRollupMagic);
  w.Str(t.name);
  w.U64(opts_.rollup_granularity);
  std::uint32_t records = 0;
  for (const auto& [key, accs] : t.rollups) {
    for (const RollupAccum& acc : accs) records += acc.count > 0 ? 1 : 0;
  }
  w.U32(records);
  for (const auto& [key, accs] : t.rollups) {
    for (std::size_t c = 0; c < accs.size(); ++c) {
      const RollupAccum& acc = accs[c];
      if (acc.count == 0) continue;
      w.Str(t.columns[c].name);
      w.U64(key.first);
      w.U64(key.second);
      w.D64(acc.min);
      w.D64(acc.max);
      w.D64(acc.sum);
      w.U64(acc.count);
    }
  }
  const std::uint64_t crc = Fnv1a(w.buffer().data(), w.size());
  w.U64(crc);
  if (!w.ok()) {
    return {ErrorCode::kInvalidArgument, "store_tsdb: rollup encode failed"};
  }
  const auto& buf = w.buffer();
  Status st = AtomicWriteFile(
      opts_.root_path + "/" + t.name + ".rollup",
      std::string_view(reinterpret_cast<const char*>(buf.data()), buf.size()));
  if (st.ok()) t.rollup_dirty = false;
  return st;
}

Status TsdbStore::StoreSet(const MetricSet& set) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint32_t gn = set.meta_gn();
  auto it = identity_plans_.find(gn);
  if (it == identity_plans_.end()) {
    it = identity_plans_.emplace(gn, BuildIdentityPlan(set.schema(), gn))
             .first;
  }
  scratch_.Clear();
  AppendPlanRows(set, it->second, &scratch_);
  return AppendRowsLocked(scratch_);
}

Status TsdbStore::StoreRows(const RowBatch& batch) {
  std::lock_guard<std::mutex> lock(mu_);
  return AppendRowsLocked(batch);
}

Status TsdbStore::StoreSetBatch(const BatchItem* items, std::size_t n,
                                std::size_t* stored) {
  std::lock_guard<std::mutex> lock(mu_);
  scratch_.Clear();
  for (std::size_t i = 0; i < n; ++i) {
    std::lock_guard<std::mutex> set_lock(*items[i].mu);
    const MetricSet& set = *items[i].set;
    const std::uint32_t gn = set.meta_gn();
    auto it = identity_plans_.find(gn);
    if (it == identity_plans_.end()) {
      it = identity_plans_.emplace(gn, BuildIdentityPlan(set.schema(), gn))
               .first;
    }
    AppendPlanRows(set, it->second, &scratch_);
  }
  Status st = AppendRowsLocked(scratch_);
  if (stored != nullptr) *stored = st.ok() ? n : 0;
  return st;
}

Status TsdbStore::Flush() {
  Status first;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, t] : tables_) {
      if (t.active != nullptr && !t.active->empty()) {
        Status st = SealLocked(t);
        if (!st.ok() && first.ok()) first = st;
      }
      if (t.rollup_dirty) {
        Status st = PersistRollupsLocked(t);
        if (!st.ok() && first.ok()) first = st;
      }
    }
  }
  // Outside mu_: waiting for fsyncs must not block concurrent queries.
  Status st = DrainSyncs();
  if (!st.ok() && first.ok()) first = st;
  return first;
}

const TsdbStore::Table* TsdbStore::FindTableLocked(
    const std::string& name) const {
  auto it = tables_.find(name);
  return it != tables_.end() ? &it->second : nullptr;
}

Status TsdbStore::ResolveColumns(const Table& t,
                                 const std::vector<std::string>& want,
                                 std::vector<std::uint32_t>* idx,
                                 std::vector<std::string>* names) const {
  idx->clear();
  names->clear();
  if (want.empty()) {
    for (std::size_t i = 0; i < t.columns.size(); ++i) {
      idx->push_back(static_cast<std::uint32_t>(i));
      names->push_back(t.columns[i].name);
    }
    return Status::Ok();
  }
  for (const std::string& metric : want) {
    int found = -1;
    for (std::size_t i = 0; i < t.columns.size(); ++i) {
      if (t.columns[i].name == metric) {
        found = static_cast<int>(i);
        break;
      }
    }
    if (found < 0) {
      return {ErrorCode::kNotFound,
              "store_tsdb: no metric '" + metric + "' in table '" + t.name +
                  "'"};
    }
    idx->push_back(static_cast<std::uint32_t>(found));
    names->push_back(metric);
  }
  return Status::Ok();
}

Status TsdbStore::ScanSealedSegment(
    const Sealed& seg, const std::vector<std::uint32_t>& cols,
    const std::vector<MetricType>& types, TimeNs t0, TimeNs t1,
    const std::vector<std::uint64_t>& node_filter,
    std::vector<TsdbQueryRow>* rows, std::uint64_t* bytes_read,
    std::uint64_t* bytes_decoded) const {
  // Per-worker scratch: a pool worker (or the inline caller) recycles its
  // decode buffers across every segment it scans in its lifetime.
  thread_local std::vector<std::uint8_t> enc_scratch;
  thread_local std::vector<std::uint64_t> ts, nodes;
  thread_local std::vector<std::vector<std::uint64_t>> data;
  const SegmentFooter& f = seg.footer;
  Status st = ReadSegmentColumn(seg.path, f, SegmentFooter::kTsCol, &ts,
                                &enc_scratch);
  if (!st.ok()) return st;
  st = ReadSegmentColumn(seg.path, f, SegmentFooter::kNodeCol, &nodes,
                         &enc_scratch);
  if (!st.ok()) return st;
  if (data.size() < cols.size()) data.resize(cols.size());
  *bytes_read += f.enc_lens[SegmentFooter::kTsCol] +
                 f.enc_lens[SegmentFooter::kNodeCol];
  for (std::size_t c = 0; c < cols.size(); ++c) {
    st = ReadSegmentColumn(seg.path, f, SegmentFooter::DataCol(cols[c]),
                           &data[c], &enc_scratch);
    if (!st.ok()) return st;
    *bytes_read += f.enc_lens[SegmentFooter::DataCol(cols[c])];
  }
  *bytes_decoded += (2 + cols.size()) * f.row_count * sizeof(std::uint64_t);
  for (std::size_t r = 0; r < f.row_count; ++r) {
    if (ts[r] < t0 || ts[r] > t1) continue;
    if (!node_filter.empty() && !SortedContains(node_filter, nodes[r])) {
      continue;
    }
    TsdbQueryRow row;
    row.ts = ts[r];
    row.node = nodes[r];
    row.values.reserve(cols.size());
    for (std::size_t c = 0; c < cols.size(); ++c) {
      row.values.push_back(SlotAsDouble(data[c][r], types[c]));
    }
    rows->push_back(std::move(row));
  }
  return Status::Ok();
}

Status TsdbStore::Query(const TsdbQuery& q, TsdbQueryResult* out) const {
  *out = TsdbQueryResult{};
  std::vector<std::uint32_t> cols;
  std::vector<MetricType> types;
  std::vector<std::uint64_t> node_filter(q.nodes);
  std::sort(node_filter.begin(), node_filter.end());
  std::vector<Sealed> survivors;
  std::vector<TsdbQueryRow> active_rows;
  {
    // Under mu_: prune on footers, snapshot the surviving sealed entries
    // (path + footer copies — sealed files are immutable), and scan the
    // active in-memory segment. Disk reads happen after the lock drops, so
    // a long scan never stalls ingest.
    std::lock_guard<std::mutex> lock(mu_);
    const Table* t = FindTableLocked(q.table);
    if (t == nullptr) {
      return {ErrorCode::kNotFound, "store_tsdb: no table '" + q.table + "'"};
    }
    Status st = ResolveColumns(*t, q.metrics, &cols, &out->columns);
    if (!st.ok()) return st;
    types.reserve(cols.size());
    for (const std::uint32_t c : cols) types.push_back(t->columns[c].type);
    for (const Sealed& seg : t->sealed) {
      ++out->segments_considered;
      const SegmentFooter& f = seg.footer;
      if (f.max_ts < q.t0 || f.min_ts > q.t1 ||
          (!node_filter.empty() && !f.node_overflow &&
           !SortedIntersect(f.nodes, node_filter))) {
        ++out->segments_pruned;
        continue;
      }
      survivors.push_back(seg);
    }
    if (t->active != nullptr) {
      const SegmentBuilder& seg = *t->active;
      for (std::size_t r = 0; r < seg.row_count(); ++r) {
        const TimeNs ts = seg.ts()[r];
        const std::uint64_t node = seg.nodes()[r];
        if (ts < q.t0 || ts > q.t1) continue;
        if (!node_filter.empty() && !SortedContains(node_filter, node)) {
          continue;
        }
        TsdbQueryRow row;
        row.ts = ts;
        row.node = node;
        row.values.reserve(cols.size());
        for (std::size_t c = 0; c < cols.size(); ++c) {
          row.values.push_back(SlotAsDouble(seg.column(cols[c])[r], types[c]));
        }
        active_rows.push_back(std::move(row));
      }
    }
  }
  out->segments_read = survivors.size();

  // Decode + filter the survivors — on the scan pool when configured, with
  // one result slot per segment so the merge is in seq order no matter
  // which worker finishes first (identical output at any thread count).
  const std::size_t n = survivors.size();
  std::vector<std::vector<TsdbQueryRow>> seg_rows(n);
  std::vector<Status> seg_status(n);
  std::vector<std::uint64_t> seg_bytes(n, 0), seg_decoded(n, 0);
  auto scan_one = [&](std::size_t i) {
    seg_status[i] =
        ScanSealedSegment(survivors[i], cols, types, q.t0, q.t1, node_filter,
                          &seg_rows[i], &seg_bytes[i], &seg_decoded[i]);
  };
  if (scan_pool_ != nullptr && n > 1) {
    std::mutex done_mu;
    std::condition_variable done_cv;
    std::size_t remaining = n;
    for (std::size_t i = 0; i < n; ++i) {
      scan_pool_->Submit([&, i] {
        scan_one(i);
        std::lock_guard<std::mutex> lock(done_mu);
        if (--remaining == 0) done_cv.notify_all();
      });
    }
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&] { return remaining == 0; });
  } else {
    for (std::size_t i = 0; i < n; ++i) scan_one(i);
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!seg_status[i].ok()) return seg_status[i];
    out->bytes_read += seg_bytes[i];
    out->bytes_decoded += seg_decoded[i];
    out->rows.insert(out->rows.end(),
                     std::make_move_iterator(seg_rows[i].begin()),
                     std::make_move_iterator(seg_rows[i].end()));
  }
  out->rows.insert(out->rows.end(),
                   std::make_move_iterator(active_rows.begin()),
                   std::make_move_iterator(active_rows.end()));
  return Status::Ok();
}

Status TsdbStore::QueryFullScan(const TsdbQuery& q,
                                TsdbQueryResult* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  *out = TsdbQueryResult{};
  const Table* t = FindTableLocked(q.table);
  if (t == nullptr) {
    return {ErrorCode::kNotFound, "store_tsdb: no table '" + q.table + "'"};
  }
  std::vector<std::uint32_t> cols;
  Status st = ResolveColumns(*t, q.metrics, &cols, &out->columns);
  if (!st.ok()) return st;
  std::vector<std::uint64_t> node_filter(q.nodes);
  std::sort(node_filter.begin(), node_filter.end());

  for (const Sealed& seg : t->sealed) {
    ++out->segments_considered;
    ++out->segments_read;
    const SegmentFooter& f = seg.footer;
    // The honest row-store comparison: reconstruct every row by reading
    // every column, then filter row-wise.
    std::vector<std::uint64_t> ts, nodes, prod;
    st = ReadSegmentColumn(seg.path, f, SegmentFooter::kTsCol, &ts);
    if (!st.ok()) return st;
    st = ReadSegmentColumn(seg.path, f, SegmentFooter::kNodeCol, &nodes);
    if (!st.ok()) return st;
    st = ReadSegmentColumn(seg.path, f, SegmentFooter::kProdCol, &prod);
    if (!st.ok()) return st;
    std::vector<std::vector<std::uint64_t>> data(t->columns.size());
    for (std::size_t c = 0; c < t->columns.size(); ++c) {
      st = ReadSegmentColumn(seg.path, f, SegmentFooter::DataCol(c), &data[c]);
      if (!st.ok()) return st;
    }
    for (const std::uint64_t len : f.enc_lens) out->bytes_read += len;
    out->bytes_decoded +=
        (3 + t->columns.size()) * f.row_count * sizeof(std::uint64_t);
    for (std::size_t r = 0; r < f.row_count; ++r) {
      if (ts[r] < q.t0 || ts[r] > q.t1) continue;
      if (!node_filter.empty() && !SortedContains(node_filter, nodes[r])) {
        continue;
      }
      TsdbQueryRow row;
      row.ts = ts[r];
      row.node = nodes[r];
      row.values.reserve(cols.size());
      for (std::size_t c = 0; c < cols.size(); ++c) {
        row.values.push_back(
            SlotAsDouble(data[cols[c]][r], t->columns[cols[c]].type));
      }
      out->rows.push_back(std::move(row));
    }
  }
  if (t->active != nullptr) {
    const SegmentBuilder& seg = *t->active;
    for (std::size_t r = 0; r < seg.row_count(); ++r) {
      const TimeNs ts = seg.ts()[r];
      const std::uint64_t node = seg.nodes()[r];
      if (ts < q.t0 || ts > q.t1) continue;
      if (!node_filter.empty() && !SortedContains(node_filter, node)) continue;
      TsdbQueryRow row;
      row.ts = ts;
      row.node = node;
      row.values.reserve(cols.size());
      for (std::size_t c = 0; c < cols.size(); ++c) {
        row.values.push_back(
            SlotAsDouble(seg.column(cols[c])[r], t->columns[cols[c]].type));
      }
      out->rows.push_back(std::move(row));
    }
  }
  return Status::Ok();
}

Status TsdbStore::QueryRollup(const TsdbQuery& q,
                              std::vector<TsdbRollupRow>* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out->clear();
  const Table* t = FindTableLocked(q.table);
  if (t == nullptr) {
    return {ErrorCode::kNotFound, "store_tsdb: no table '" + q.table + "'"};
  }
  std::vector<std::uint32_t> cols;
  std::vector<std::string> names;
  Status st = ResolveColumns(*t, q.metrics, &cols, &names);
  if (!st.ok()) return st;
  std::vector<std::uint64_t> node_filter(q.nodes);
  std::sort(node_filter.begin(), node_filter.end());
  for (const auto& [key, accs] : t->rollups) {
    const auto& [node, bucket] = key;
    if (bucket + opts_.rollup_granularity <= q.t0 || bucket > q.t1) continue;
    if (!node_filter.empty() && !SortedContains(node_filter, node)) continue;
    for (const std::uint32_t col : cols) {
      if (col >= accs.size()) continue;
      const RollupAccum& acc = accs[col];
      if (acc.count == 0) continue;
      TsdbRollupRow row;
      row.bucket = bucket;
      row.node = node;
      row.metric = t->columns[col].name;
      row.min = acc.min;
      row.max = acc.max;
      row.avg = acc.sum / static_cast<double>(acc.count);
      row.count = acc.count;
      out->push_back(std::move(row));
    }
  }
  return Status::Ok();
}

std::vector<std::string> TsdbStore::Tables() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, t] : tables_) out.push_back(name);
  return out;
}

std::uint64_t TsdbStore::segments_sealed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return segments_sealed_;
}

}  // namespace ldmsxx
