// store_tsdb: the queryable columnar time-series backend (ISSUE 9 tentpole).
// Rows (decomposed by the strgp's RowPlan, or the identity plan for plain
// StoreSet calls) are appended to an in-memory columnar segment per table;
// at segment_rows the segment is sealed to disk (atomic write, CRC-sealed
// footer index) and folded into min/max/avg/count rollups at a configurable
// granularity. Queries (time range × node set × metric list) prune whole
// segments on the footer's min/max timestamp and node dictionary, then read
// only the requested columns — versus the full-scan path that re-reads every
// column of every segment the way a CSV consumer would.
//
// A store constructed over an existing directory re-attaches every sealed
// segment (and the persisted rollups), so a daemon restarted via
// RestoreFromRegistry serves queries spanning segments written before and
// after the restart.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "store/store.hpp"
#include "store/tsdb/segment.hpp"
#include "util/clock.hpp"
#include "util/thread_pool.hpp"

namespace ldmsxx {

struct TsdbOptions {
  std::string root_path = "tsdb";
  /// Rows per segment before it is sealed to disk.
  std::size_t segment_rows = 4096;
  /// Rollup bucket width; 0 disables rollup compaction.
  DurationNs rollup_granularity = 60 * kNsPerSec;
  /// Seal segments with per-column codecs (format v2); false writes every
  /// column raw — same v2 layout, ~v1 sizes (the ablation escape hatch).
  bool compress = true;
  /// Worker threads for the parallel sealed-segment scan in Query(). 0 (the
  /// default) decodes inline on the calling thread — fully deterministic,
  /// what the simulation harness uses. Results are identical either way;
  /// the pool only changes wall-clock.
  std::size_t scan_threads = 0;
};

/// A time-range × node-set × metric query.
struct TsdbQuery {
  std::string table;
  TimeNs t0 = 0;
  TimeNs t1 = ~TimeNs{0};
  std::vector<std::uint64_t> nodes;   ///< empty = all nodes
  std::vector<std::string> metrics;   ///< empty = all columns
};

struct TsdbQueryRow {
  TimeNs ts = 0;
  std::uint64_t node = 0;
  std::vector<double> values;  ///< one per result column
};

struct TsdbQueryResult {
  std::vector<std::string> columns;
  std::vector<TsdbQueryRow> rows;
  /// Index effectiveness: sealed segments considered, pruned by the footer
  /// index without touching the body, and actually read.
  std::uint64_t segments_considered = 0;
  std::uint64_t segments_pruned = 0;
  std::uint64_t segments_read = 0;
  /// Encoded column bytes fetched from disk (0 for the active in-memory
  /// segment). With compressed segments this is the on-disk cost...
  std::uint64_t bytes_read = 0;
  /// ...and this is the uncompressed slot bytes those reads decoded into;
  /// bytes_decoded / bytes_read is the effective compression ratio the
  /// query enjoyed (equal when every column was raw).
  std::uint64_t bytes_decoded = 0;
};

/// One rollup bucket for one (metric, node).
struct TsdbRollupRow {
  TimeNs bucket = 0;
  std::uint64_t node = 0;
  std::string metric;
  double min = 0, max = 0, avg = 0;
  std::uint64_t count = 0;
};

class TsdbStore final : public Store {
 public:
  explicit TsdbStore(TsdbOptions opts);
  ~TsdbStore() override;

  const std::string& name() const override { return name_; }
  bool row_capable() const override { return true; }
  bool batch_capable() const override { return true; }

  Status StoreSet(const MetricSet& set) override;
  Status StoreRows(const RowBatch& batch) override;
  Status StoreSetBatch(const BatchItem* items, std::size_t n,
                       std::size_t* stored) override;
  /// Seal non-empty active segments and persist dirty rollups.
  Status Flush() override;

  /// Indexed query: footer-pruned segment selection, column-selective reads.
  Status Query(const TsdbQuery& q, TsdbQueryResult* out) const;
  /// Comparison path: no pruning, reads every column of every segment (what
  /// answering the same question from a row-oriented store costs).
  Status QueryFullScan(const TsdbQuery& q, TsdbQueryResult* out) const;
  /// Downsampled rollup buckets overlapping the query window.
  Status QueryRollup(const TsdbQuery& q,
                     std::vector<TsdbRollupRow>* out) const;

  std::vector<std::string> Tables() const;
  std::uint64_t segments_sealed() const;
  /// Sealed segments found on disk at attach (restart-resume).
  std::uint64_t segments_attached() const { return segments_attached_; }
  /// Segment/rollup files skipped at attach because they failed validation.
  std::uint64_t attach_rejects() const { return attach_rejects_; }

 private:
  struct Sealed {
    std::string path;
    SegmentFooter footer;
  };
  struct RollupAccum {
    double min = 0, max = 0, sum = 0;
    std::uint64_t count = 0;
  };
  /// (node, bucket start) -> one accumulator per table column. Keyed per
  /// row rather than per value so the seal-time fold costs one map lookup
  /// per row run, not one per cell.
  using RollupMap = std::map<std::pair<std::uint64_t, std::uint64_t>,
                             std::vector<RollupAccum>>;
  struct Table {
    std::string name;
    std::vector<SegmentColumn> columns;
    std::unique_ptr<SegmentBuilder> active;
    std::vector<Sealed> sealed;
    std::uint64_t seq = 0;  ///< next segment file number
    RollupMap rollups;
    bool rollup_dirty = false;
  };

  Status AppendRowsLocked(const RowBatch& batch);
  /// Hand a freshly renamed segment file to the background syncer; its
  /// fsync happens off the ingest path and is awaited by DrainSyncs.
  void EnqueueSync(std::string path);
  /// Block until every queued fsync has completed; returns (and clears) the
  /// first error the syncer hit since the last drain.
  Status DrainSyncs();
  void SyncerMain();
  /// Find-or-create the destination table for one plan row group, via the
  /// pointer-keyed cache so steady state does no string lookups.
  Table* TableForLocked(const RowPlan* plan, std::uint32_t group_idx);
  Status SealLocked(Table& t);
  void FoldRollupsLocked(Table& t, const SegmentBuilder& seg);
  Status PersistRollupsLocked(Table& t);
  void AttachExistingLocked();
  void LoadRollupFileLocked(const std::string& path);
  const Table* FindTableLocked(const std::string& name) const;
  Status ResolveColumns(const Table& t, const std::vector<std::string>& want,
                        std::vector<std::uint32_t>* idx,
                        std::vector<std::string>* names) const;
  /// Decode + filter one sealed segment (no store locks held; sealed files
  /// are immutable). Uses thread_local scratch buffers so pool workers
  /// recycle their decode allocations across segments.
  Status ScanSealedSegment(const Sealed& seg,
                           const std::vector<std::uint32_t>& cols,
                           const std::vector<MetricType>& types, TimeNs t0,
                           TimeNs t1,
                           const std::vector<std::uint64_t>& node_filter,
                           std::vector<TsdbQueryRow>* rows,
                           std::uint64_t* bytes_read,
                           std::uint64_t* bytes_decoded) const;

  TsdbOptions opts_;
  std::string name_ = "store_tsdb";
  mutable std::mutex mu_;
  std::map<std::string, Table> tables_;
  /// Identity plans for plain StoreSet ingest, keyed by schema digest.
  std::unordered_map<std::uint32_t, RowPlan> identity_plans_;
  /// plan pointer -> per-group destination table; plans are stable for the
  /// life of their Decomposer (or this store, for identity plans).
  std::unordered_map<const RowPlan*, std::vector<Table*>> group_tables_;
  RowBatch scratch_;  ///< reused by StoreSet/StoreSetBatch (under mu_)
  std::uint64_t segments_sealed_ = 0;
  std::uint64_t segments_attached_ = 0;
  std::uint64_t attach_rejects_ = 0;
  /// Parallel-scan pool (scan_threads > 0); queries snapshot the surviving
  /// sealed list under mu_, then decode on these workers with mu_ released.
  std::unique_ptr<ThreadPool> scan_pool_;

  // Background durability: seals rename the segment into place inline (a
  // reader never sees a torn file) but the fsyncs — the dominant cost of a
  // seal — run on this thread. Flush() drains the queue, so the store's
  // durability contract is "everything stored before a successful Flush".
  // The syncer touches only this state, never the tables above.
  std::mutex sync_mu_;
  std::condition_variable sync_cv_;
  std::deque<std::string> sync_queue_;
  std::size_t sync_in_flight_ = 0;
  Status sync_err_;
  bool sync_stop_ = false;
  std::thread syncer_;
};

}  // namespace ldmsxx
