#include "store/tsdb/codec.hpp"

#include <cstring>

namespace ldmsxx {
namespace {

// LEB128-style varint: 7 bits per byte, high bit = continuation. A u64
// never needs more than 10 bytes.
void PutVarint(std::uint64_t v, std::vector<std::uint8_t>* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<std::uint8_t>(v));
}

/// Multi-byte continuation of GetVarint; @p p sits on the first byte (which
/// has the high bit set, or the cursor is at @p end). False on truncation
/// or an over-long encoding (more than 10 bytes / bits past 64).
bool GetVarintSlow(const std::uint8_t*& p, const std::uint8_t* end,
                   std::uint64_t* out) {
  std::uint64_t v = 0;
  unsigned shift = 0;
  while (p < end) {
    const std::uint8_t b = *p++;
    if (shift == 63 && (b & 0x7e) != 0) return false;  // bits past 64
    if (shift > 63) return false;
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      *out = v;
      return true;
    }
    shift += 7;
  }
  return false;  // ran off the end mid-varint
}

/// Reads one varint at @p p, advancing it. Small deltas dominate
/// well-behaved columns, so most varints are one byte; the decode loops are
/// on the indexed query's critical path, and keeping the cursor in a
/// register (reference-to-pointer, inlined fast path) rather than behind a
/// size_t* is worth ~2x on dense delta columns.
inline bool GetVarint(const std::uint8_t*& p, const std::uint8_t* end,
                      std::uint64_t* out) {
  if (p < end) {
    const std::uint8_t b = *p;
    if (b < 0x80) {
      *out = b;
      ++p;
      return true;
    }
  }
  return GetVarintSlow(p, end, out);
}

std::uint64_t Zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t Unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

/// Difference interpreted as signed, in wrapping u64 arithmetic — correct
/// for counters that reset (huge negative delta) and for u64 values with
/// the top bit set.
std::int64_t SignedDelta(std::uint64_t a, std::uint64_t b) {
  return static_cast<std::int64_t>(a - b);
}

void EncodeRaw(const std::uint64_t* vals, std::size_t n,
               std::vector<std::uint8_t>* out) {
  const std::size_t bytes = n * sizeof(std::uint64_t);
  const std::size_t base = out->size();
  out->resize(base + bytes);
  if (bytes > 0) std::memcpy(out->data() + base, vals, bytes);
}

bool DecodeRaw(const std::uint8_t* bytes, std::size_t len, std::size_t n,
               std::uint64_t* out) {
  if (len != n * sizeof(std::uint64_t)) return false;
  if (len > 0) std::memcpy(out, bytes, len);
  return true;
}

void EncodeDelta(const std::uint64_t* vals, std::size_t n,
                 std::vector<std::uint8_t>* out) {
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < n; ++i) {
    PutVarint(Zigzag(SignedDelta(vals[i], prev)), out);
    prev = vals[i];
  }
}

bool DecodeDelta(const std::uint8_t* bytes, std::size_t len, std::size_t n,
                 std::uint64_t* out) {
  const std::uint8_t* p = bytes;
  const std::uint8_t* const end = bytes + len;
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t z;
    if (!GetVarint(p, end, &z)) return false;
    prev += static_cast<std::uint64_t>(Unzigzag(z));
    out[i] = prev;
  }
  return p == end;
}

void EncodeDeltaOfDelta(const std::uint64_t* vals, std::size_t n,
                        std::vector<std::uint8_t>* out) {
  if (n == 0) return;
  PutVarint(vals[0], out);
  std::int64_t prev_delta = 0;
  for (std::size_t i = 1; i < n; ++i) {
    const std::int64_t delta = SignedDelta(vals[i], vals[i - 1]);
    PutVarint(Zigzag(delta - prev_delta), out);
    prev_delta = delta;
  }
}

bool DecodeDeltaOfDelta(const std::uint8_t* bytes, std::size_t len,
                        std::size_t n, std::uint64_t* out) {
  if (n == 0) return len == 0;
  const std::uint8_t* p = bytes;
  const std::uint8_t* const end = bytes + len;
  std::uint64_t v;
  if (!GetVarint(p, end, &v)) return false;
  out[0] = v;
  std::int64_t delta = 0;
  for (std::size_t i = 1; i < n; ++i) {
    std::uint64_t z;
    if (!GetVarint(p, end, &z)) return false;
    delta += Unzigzag(z);
    v += static_cast<std::uint64_t>(delta);
    out[i] = v;
  }
  return p == end;
}

void EncodeRle(const std::uint64_t* vals, std::size_t n,
               std::vector<std::uint8_t>* out) {
  std::size_t i = 0;
  while (i < n) {
    std::size_t run = 1;
    while (i + run < n && vals[i + run] == vals[i]) ++run;
    PutVarint(vals[i], out);
    PutVarint(run, out);
    i += run;
  }
}

bool DecodeRle(const std::uint8_t* bytes, std::size_t len, std::size_t n,
               std::uint64_t* out) {
  const std::uint8_t* p = bytes;
  const std::uint8_t* const end = bytes + len;
  std::size_t filled = 0;
  while (filled < n) {
    std::uint64_t value, run;
    if (!GetVarint(p, end, &value) || !GetVarint(p, end, &run)) {
      return false;
    }
    if (run == 0 || run > n - filled) return false;
    for (std::uint64_t j = 0; j < run; ++j) out[filled + j] = value;
    filled += static_cast<std::size_t>(run);
  }
  return p == end;
}

// XOR with zero-byte suppression: x = v ^ prev; header byte packs the count
// of leading zero bytes (high nibble) and significant bytes (low nibble),
// then the significant bytes follow most-significant first. Similar doubles
// xor to a value whose sign/exponent bytes are zero and whose trailing
// mantissa bytes are zero; both ends are dropped. x == 0 is one 0x00 byte.
void EncodeXor(const std::uint64_t* vals, std::size_t n,
               std::vector<std::uint8_t>* out) {
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t x = vals[i] ^ prev;
    prev = vals[i];
    if (x == 0) {
      out->push_back(0);
      continue;
    }
    unsigned lead = 0;
    while (((x >> (56 - 8 * lead)) & 0xff) == 0) ++lead;
    unsigned trail = 0;
    while (((x >> (8 * trail)) & 0xff) == 0) ++trail;
    const unsigned sig = 8 - lead - trail;
    out->push_back(static_cast<std::uint8_t>((lead << 4) | sig));
    for (unsigned b = 0; b < sig; ++b) {
      out->push_back(
          static_cast<std::uint8_t>(x >> (8 * (8 - lead - 1 - b))));
    }
  }
}

bool DecodeXor(const std::uint8_t* bytes, std::size_t len, std::size_t n,
               std::uint64_t* out) {
  std::size_t pos = 0;
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (pos >= len) return false;
    const std::uint8_t header = bytes[pos++];
    if (header == 0) {
      out[i] = prev;
      continue;
    }
    const unsigned lead = header >> 4;
    const unsigned sig = header & 0x0f;
    if (sig == 0 || lead + sig > 8 || pos + sig > len) return false;
    std::uint64_t x = 0;
    for (unsigned b = 0; b < sig; ++b) {
      x = (x << 8) | bytes[pos++];
    }
    x <<= 8 * (8 - lead - sig);
    prev ^= x;
    out[i] = prev;
  }
  return pos == len;
}

}  // namespace

void EncodeColumn(ColumnCodec codec, const std::uint64_t* vals, std::size_t n,
                  std::vector<std::uint8_t>* out) {
  switch (codec) {
    case ColumnCodec::kRaw:
      return EncodeRaw(vals, n, out);
    case ColumnCodec::kDeltaOfDelta:
      return EncodeDeltaOfDelta(vals, n, out);
    case ColumnCodec::kRle:
      return EncodeRle(vals, n, out);
    case ColumnCodec::kXor:
      return EncodeXor(vals, n, out);
    case ColumnCodec::kDelta:
      return EncodeDelta(vals, n, out);
  }
}

bool DecodeColumn(ColumnCodec codec, const std::uint8_t* bytes,
                  std::size_t len, std::size_t n, std::uint64_t* out) {
  switch (codec) {
    case ColumnCodec::kRaw:
      return DecodeRaw(bytes, len, n, out);
    case ColumnCodec::kDeltaOfDelta:
      return DecodeDeltaOfDelta(bytes, len, n, out);
    case ColumnCodec::kRle:
      return DecodeRle(bytes, len, n, out);
    case ColumnCodec::kXor:
      return DecodeXor(bytes, len, n, out);
    case ColumnCodec::kDelta:
      return DecodeDelta(bytes, len, n, out);
  }
  return false;
}

}  // namespace ldmsxx
