// Per-column codecs for segment format v2 (ISSUE 10 tentpole part 1). A
// sealed segment's columns are all u64 slot runs; what varies is what the
// slots *mean*, and each meaning has a cheap, effective encoding:
//
//   timestamps     — near-constant spacing: delta-of-delta + zigzag varint
//   node/prod idx  — long runs of repeats: run-length (value, run) varints
//   double columns — slowly-drifting floats: XOR vs. previous value with
//                    zero-byte suppression (byte-aligned Gorilla)
//   int columns    — counters/gauges: delta + zigzag varint
//
// Codecs are chosen per column at seal time and recorded in the footer; a
// codec that fails to beat the raw 8-byte slots is discarded in favour of
// kRaw, so a pathological column never costs more than format v1 did.
//
// Decoders are defensive: they never read past the supplied span, never
// write more than the requested value count, and report malformed input as
// failure instead of producing short output — the column CRC (over the
// encoded bytes) catches corruption first, but a CRC collision must still
// not crash the reader.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ldmsxx {

enum class ColumnCodec : std::uint8_t {
  kRaw = 0,           // n × u64, host (little-endian) byte order
  kDeltaOfDelta = 1,  // varint(first) | zigzag-varint second differences
  kRle = 2,           // (varint value, varint run) pairs
  kXor = 3,           // per value: u8 (lead<<4|len) header + significant bytes
  kDelta = 4,         // zigzag-varint first differences (prev starts at 0)
};

/// Append the encoding of @p vals under @p codec to @p out (not cleared).
/// kRaw appends the little-endian slot bytes verbatim.
void EncodeColumn(ColumnCodec codec, const std::uint64_t* vals, std::size_t n,
                  std::vector<std::uint8_t>* out);

/// Decode exactly @p n values from @p bytes into @p out. Returns false when
/// the input is malformed: truncated, over-long, or structurally invalid
/// (e.g. RLE runs that overshoot @p n). @p out is only valid on success.
bool DecodeColumn(ColumnCodec codec, const std::uint8_t* bytes,
                  std::size_t len, std::size_t n, std::uint64_t* out);

/// The codec the seal path tries first for a column holding @p is_double
/// data slots (the implicit ts/node/prod columns pick their own).
inline ColumnCodec PreferredDataCodec(bool is_double) {
  return is_double ? ColumnCodec::kXor : ColumnCodec::kDelta;
}

}  // namespace ldmsxx
