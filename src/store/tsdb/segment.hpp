// Time-partitioned columnar segments (ISSUE 9 tentpole part 2; compressed
// format v2 in ISSUE 10). A segment is an append-only batch of rows for one
// table, stored column-major. Segments are built in memory (preallocated
// column buffers) and sealed to disk in one AtomicWriteFile — a reader
// never sees a torn segment.
//
// On-disk layout (ByteWriter little-endian), format v2:
//
//   header : u32 magic "LSG2" | str table | u16 ncols
//   body   : 3 + ncols encoded column blocks (ts, node, prod_idx, data
//            columns), each under the codec the footer records for it
//   footer : str table | u64 min_ts | u64 max_ts | u64 row_count |
//            u8 node_overflow | u16 nnodes | nnodes x u64 (sorted unique) |
//            u16 nproducers | nproducers x str |
//            u16 ncols | ncols x (str name, u8 type) |
//            (3 + ncols) x u64 column offsets | (3 + ncols) x u64 CRCs |
//            (3 + ncols) x u8 codec ids | (3 + ncols) x u64 encoded lengths
//   trailer: u64 footer_offset | u64 footer_crc | u32 magic "LSGG"
//
// Format v1 ("LSG1"/"LSGF") is the same without the codec-id/encoded-length
// footer arrays — every column is a raw u64 slot run. Readers dispatch on
// the trailer magic, so a store directory can mix v1 and v2 files and a
// restart re-attaches both seamlessly.
//
// Codecs (store/tsdb/codec.hpp) are chosen per column at seal time:
// delta-of-delta varints for timestamps, RLE for the node and producer-
// index columns, XOR-with-byte-suppression for double columns, delta
// varints for integer columns — each falling back to raw whenever it fails
// to beat the 8-byte slots. Column CRCs cover the *encoded* bytes (word-
// folded FNV-1a for raw columns, byte-wise for compressed ones), so
// corruption is rejected before any decode runs.
//
// The footer is the index: a reader seeks to the 20-byte trailer, reads the
// CRC-sealed footer, and can then prune the whole segment on min/max
// timestamp or the node dictionary — or seek straight to the few columns a
// query asks for. The node dictionary degrades to an "any node" overflow
// flag past kMaxNodeDict distinct ids so a pathological segment cannot
// bloat the index.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/value.hpp"
#include "store/tsdb/codec.hpp"
#include "util/clock.hpp"
#include "util/status.hpp"

namespace ldmsxx {

/// Name + output type of one data column.
struct SegmentColumn {
  std::string name;
  MetricType type = MetricType::kU64;
};

/// Parsed footer of a sealed segment: everything a query needs to prune the
/// segment or locate its columns, without touching the body. Per-column
/// arrays are indexed uniformly: kTsCol, kNodeCol, kProdCol, then
/// DataCol(i) for data column i.
struct SegmentFooter {
  static constexpr std::size_t kTsCol = 0;
  static constexpr std::size_t kNodeCol = 1;
  static constexpr std::size_t kProdCol = 2;
  static constexpr std::size_t DataCol(std::size_t i) { return 3 + i; }

  std::string table;
  std::uint8_t version = 2;
  TimeNs min_ts = 0;
  TimeNs max_ts = 0;
  std::uint64_t row_count = 0;
  /// Distinct component ids in this segment, sorted. When node_overflow is
  /// set the dictionary was abandoned (too many distinct ids) and node
  /// pruning must treat the segment as "may contain any node".
  bool node_overflow = false;
  std::vector<std::uint64_t> nodes;
  std::vector<std::string> producers;
  std::vector<SegmentColumn> columns;
  /// Per-column byte offset, CRC, codec, and encoded length (3 + ncols
  /// entries each). v1 footers parse into the same arrays with every codec
  /// kRaw and every encoded length row_count * 8.
  std::vector<std::uint64_t> offsets;
  std::vector<std::uint64_t> crcs;
  std::vector<std::uint8_t> codecs;
  std::vector<std::uint64_t> enc_lens;

  /// Index of the data column named @p name, or -1.
  int FindColumn(const std::string& name) const;
};

/// In-memory segment under construction; also serves queries over the active
/// (not yet sealed) segment. Not thread-safe — the owning store serializes.
class SegmentBuilder {
 public:
  SegmentBuilder(std::string table, std::vector<SegmentColumn> columns,
                 std::size_t capacity);

  /// Map a producer name to its per-segment dictionary index.
  std::uint16_t InternProducer(const std::string& producer);

  /// Append one row; @p slots must hold columns().size() values.
  void Append(TimeNs ts, std::uint64_t node, std::uint16_t producer,
              const std::uint64_t* slots);

  const std::string& table() const { return table_; }
  const std::vector<SegmentColumn>& columns() const { return columns_; }
  std::size_t row_count() const { return ts_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool full() const { return ts_.size() >= capacity_; }
  bool empty() const { return ts_.empty(); }
  TimeNs min_ts() const { return min_ts_; }
  TimeNs max_ts() const { return max_ts_; }

  const std::vector<std::uint64_t>& ts() const { return ts_; }
  const std::vector<std::uint64_t>& nodes() const { return nodes_; }
  const std::vector<std::uint64_t>& producers_idx() const { return prod_; }
  const std::vector<std::uint64_t>& column(std::size_t i) const {
    return cols_[i];
  }
  const std::vector<std::string>& producer_dict() const { return prod_dict_; }

  /// Serialize the whole segment file (header + body + footer + trailer) in
  /// format v2. With @p compress false every column is written raw (codec
  /// ids all kRaw) — the ablation/debug path; the layout stays v2 either
  /// way. One scratch encode buffer is reused across all columns.
  std::string Serialize(bool compress = true) const;

  /// How many distinct node ids the footer dictionary will index before
  /// degrading to the overflow flag.
  static constexpr std::size_t kMaxNodeDict = 256;

 private:
  std::string table_;
  std::vector<SegmentColumn> columns_;
  std::size_t capacity_;
  TimeNs min_ts_ = ~TimeNs{0};
  TimeNs max_ts_ = 0;
  std::vector<std::uint64_t> ts_;
  std::vector<std::uint64_t> nodes_;
  std::vector<std::uint64_t> prod_;
  std::vector<std::vector<std::uint64_t>> cols_;
  std::vector<std::string> prod_dict_;
  // Interning index over prod_dict_: the append path runs once per stored
  // row, so the lookup must not scale with the number of producers.
  std::unordered_map<std::string, std::uint16_t> prod_index_;
};

/// Seal @p builder to @p path via AtomicWriteFile (tmp + rename; with
/// @p durable false the fsyncs are the caller's to batch — store_tsdb
/// queues them on a background syncer drained by Flush).
Status WriteSegmentFile(const std::string& path, const SegmentBuilder& builder,
                        bool durable = true, bool compress = true);

/// Read and validate a sealed segment's footer (one seek + one small read).
/// Accepts both format v1 and v2; footer->version records which.
Status ReadSegmentFooter(const std::string& path, SegmentFooter* out);

/// Read column @p col (uniform index: SegmentFooter::kTsCol / kNodeCol /
/// kProdCol / DataCol(i)), verify its CRC over the encoded bytes, and
/// decode it into @p out (resized to row_count). @p scratch, when given,
/// receives the compressed read buffer — the parallel scan path passes a
/// per-worker buffer so concurrent decodes never allocate per call.
Status ReadSegmentColumn(const std::string& path, const SegmentFooter& footer,
                         std::size_t col, std::vector<std::uint64_t>* out,
                         std::vector<std::uint8_t>* scratch = nullptr);

}  // namespace ldmsxx
