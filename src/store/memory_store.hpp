// store_mem: in-memory row store used by tests and by the characterization
// benches that build the paper's Figures 9-12 (they need random access to a
// simulated day of samples without round-tripping through the filesystem).
#pragma once

#include <deque>
#include <map>
#include <mutex>
#include <vector>

#include "store/store.hpp"
#include "util/clock.hpp"

namespace ldmsxx {

/// One stored sample row.
struct MemRow {
  TimeNs timestamp = 0;
  std::uint64_t component_id = 0;
  std::string producer;
  std::vector<double> values;  ///< metric values coerced to double
};

class MemoryStore final : public Store {
 public:
  /// @p max_samples caps each schema's row ring (`strgp_add ...
  /// max_samples=N`): past the cap the oldest row is evicted, and the
  /// eviction is surfaced through rows_evicted() / strgp_status. 0 keeps
  /// the historical unbounded behaviour.
  explicit MemoryStore(std::size_t max_samples = 0)
      : max_samples_(max_samples) {}

  const std::string& name() const override { return name_; }
  Status StoreSet(const MetricSet& set) override;

  std::size_t max_samples() const { return max_samples_; }

  /// Metric names for @p schema as of the first stored row.
  std::vector<std::string> MetricNames(const std::string& schema) const;

  /// All rows stored for @p schema, in arrival order.
  std::vector<MemRow> Rows(const std::string& schema) const;

  /// Number of rows stored for @p schema.
  std::size_t RowCount(const std::string& schema) const;

  /// Schemas seen so far.
  std::vector<std::string> Schemas() const;

  void Clear();

 private:
  struct Table {
    std::vector<std::string> metric_names;
    std::deque<MemRow> rows;  ///< ring when max_samples_ > 0
  };

  std::string name_ = "store_mem";
  std::size_t max_samples_ = 0;
  mutable std::mutex mu_;
  std::map<std::string, Table> tables_;
};

}  // namespace ldmsxx
