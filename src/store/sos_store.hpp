// store_sos: a Scalable-Object-Store-like binary format ("a proprietary
// structured file format called Scalable Object Store (SOS)", §IV-A). One
// container file per schema:
//
//   [SosFileHeader][schema record: names + types][fixed-size sample records…]
//
// Sample records are fixed-size (u64 timestamp ns, u64 component id, and one
// 8-byte slot per metric), appended in time order, so time-range queries are
// a binary search plus a sequential scan — the property that lets NCSA keep
// "the most recent 24 hours of node metrics for live queries".
#pragma once

#include <cstdio>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "store/store.hpp"
#include "util/clock.hpp"

namespace ldmsxx {

struct SosStoreOptions {
  std::string root_path;
  bool truncate = true;
};

/// One decoded sample returned by queries.
struct SosRecord {
  TimeNs timestamp = 0;
  std::uint64_t component_id = 0;
  /// Raw 8-byte slots; interpret with the schema from SosSchemaInfo.
  std::vector<std::uint64_t> slots;

  double SlotAsDouble(std::size_t i, MetricType type) const;
};

/// Schema description stored in a container header.
struct SosSchemaInfo {
  std::string schema_name;
  std::vector<std::string> metric_names;
  std::vector<MetricType> metric_types;
};

class SosStore final : public Store {
 public:
  explicit SosStore(SosStoreOptions options);
  ~SosStore() override;

  const std::string& name() const override { return name_; }
  Status StoreSet(const MetricSet& set) override;
  Status Flush() override;

  std::string FilePath(const std::string& schema) const;

  /// Read a container's schema; nullopt if the file is missing/corrupt.
  static std::optional<SosSchemaInfo> ReadSchema(const std::string& path);

  /// Visit records with timestamp in [t0, t1); binary-searches the start.
  /// Returns the number of records visited.
  static std::size_t Query(const std::string& path, TimeNs t0, TimeNs t1,
                           const std::function<void(const SosRecord&)>& visit);

 private:
  struct Container {
    std::FILE* file = nullptr;
    std::size_t record_size = 0;
  };

  Container& ContainerFor(const MetricSet& set);

  std::string name_ = "store_sos";
  SosStoreOptions options_;
  std::mutex mu_;
  std::map<std::string, Container> containers_;
};

}  // namespace ldmsxx
