#include "store/fault_store.hpp"

#include <chrono>
#include <thread>

namespace ldmsxx {

void StoreFaultSchedule::InjectNext(StoreFaultOp op, StoreFaultKind kind,
                                    std::size_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < count; ++i) {
    queued_[static_cast<std::size_t>(op)].push_back(kind);
  }
}

bool StoreFaultSchedule::Applicable(StoreFaultOp op, StoreFaultKind kind) {
  switch (kind) {
    case StoreFaultKind::kNone:
      return true;
    case StoreFaultKind::kFailWrite:
    case StoreFaultKind::kPartialWrite:
    case StoreFaultKind::kStall:
      return op == StoreFaultOp::kWrite;
    case StoreFaultKind::kFailFlush:
      return op == StoreFaultOp::kFlush;
  }
  return false;
}

StoreFaultSchedule::Decision StoreFaultSchedule::Draw(StoreFaultOp op) {
  Decision d;
  std::lock_guard<std::mutex> lock(mu_);
  if (!armed_) return d;
  auto& queue = queued_[static_cast<std::size_t>(op)];
  if (!queue.empty()) {
    d.kind = queue.front();
    queue.pop_front();
  } else if (op == StoreFaultOp::kWrite) {
    // Independent draws, first hit wins, fixed order — the exact discipline
    // FaultSchedule::Draw uses, so same seed + same write order = same run.
    if (rng_.NextDouble() < probs_.fail_write) {
      d.kind = StoreFaultKind::kFailWrite;
    } else if (rng_.NextDouble() < probs_.partial_write) {
      d.kind = StoreFaultKind::kPartialWrite;
    } else if (rng_.NextDouble() < probs_.stall) {
      d.kind = StoreFaultKind::kStall;
    }
  } else if (op == StoreFaultOp::kFlush) {
    if (rng_.NextDouble() < probs_.fail_flush) {
      d.kind = StoreFaultKind::kFailFlush;
    }
  }
  if (!Applicable(op, d.kind)) d.kind = StoreFaultKind::kNone;
  switch (d.kind) {
    case StoreFaultKind::kFailWrite:
      stats_.failed_writes.fetch_add(1, std::memory_order_relaxed);
      break;
    case StoreFaultKind::kPartialWrite:
      stats_.partial_writes.fetch_add(1, std::memory_order_relaxed);
      break;
    case StoreFaultKind::kStall:
      stats_.stalls.fetch_add(1, std::memory_order_relaxed);
      d.stall = probs_.stall_ns;
      break;
    case StoreFaultKind::kFailFlush:
      stats_.failed_flushes.fetch_add(1, std::memory_order_relaxed);
      break;
    case StoreFaultKind::kNone:
      break;
  }
  return d;
}

FaultInjectingStore::FaultInjectingStore(
    std::shared_ptr<Store> inner, std::shared_ptr<StoreFaultSchedule> schedule,
    std::string name)
    : inner_(std::move(inner)),
      schedule_(std::move(schedule)),
      name_(name.empty() ? "fault+" + inner_->name() : std::move(name)) {}

Status FaultInjectingStore::StoreSet(const MetricSet& set) {
  const StoreFaultSchedule::Decision d =
      schedule_->Draw(StoreFaultOp::kWrite);
  switch (d.kind) {
    case StoreFaultKind::kFailWrite:
      CountFailedRow();
      return {ErrorCode::kInternal, "injected write failure (ENOSPC)"};
    case StoreFaultKind::kPartialWrite: {
      // The inner write happens, but the caller is told it failed — the
      // ambiguous outcome a torn fsync or lost ack produces. A correct
      // caller treats it as failed (breaker counts it); duplicated rows on
      // retry are the accepted cost, same as production stores.
      (void)inner_->StoreSet(set);
      CountFailedRow();
      return {ErrorCode::kInternal, "injected partial write"};
    }
    case StoreFaultKind::kStall:
      if (d.stall > 0) {
        std::this_thread::sleep_for(std::chrono::nanoseconds(d.stall));
      }
      return inner_->StoreSet(set);
    default:
      return inner_->StoreSet(set);
  }
}

Status FaultInjectingStore::Flush() {
  const StoreFaultSchedule::Decision d =
      schedule_->Draw(StoreFaultOp::kFlush);
  if (d.kind == StoreFaultKind::kFailFlush) {
    return {ErrorCode::kInternal, "injected flush failure"};
  }
  return inner_->Flush();
}

}  // namespace ldmsxx
