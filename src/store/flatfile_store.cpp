#include "store/flatfile_store.hpp"

#include "util/atomic_file.hpp"

namespace ldmsxx {
namespace {

/// Metric names can contain '#' and '.' (e.g. "open#stats.snx11024"); map
/// path-hostile characters to '_' for the file name.
std::string SanitizeFileName(const std::string& metric_name) {
  std::string out = metric_name;
  for (char& c : out) {
    if (c == '/' || c == '\\' || c == ' ') c = '_';
  }
  return out;
}

}  // namespace

FlatFileStore::FlatFileStore(FlatFileStoreOptions options)
    : options_(std::move(options)) {
  // Failure is surfaced by StoreSet (unopenable stream), not thrown here: a
  // store pointed at a dead path must report a Status the breaker can count.
  (void)EnsureDirectories(options_.root_path);
}

std::string FlatFileStore::FilePath(const std::string& metric_name) const {
  return options_.root_path + "/" + SanitizeFileName(metric_name);
}

std::ofstream& FlatFileStore::FileFor(const std::string& metric_name) {
  auto it = files_.find(metric_name);
  if (it != files_.end()) {
    // A cached stream whose file never opened can never write; drop it and
    // reopen so the store can come back once the disk does.
    if (it->second.is_open()) return it->second;
    files_.erase(it);
  }
  (void)EnsureDirectories(options_.root_path);
  auto mode = options_.truncate ? std::ios::trunc : std::ios::app;
  auto [ins, ok] =
      files_.emplace(metric_name, std::ofstream(FilePath(metric_name), mode));
  (void)ok;
  return ins->second;
}

Status FlatFileStore::StoreSet(const MetricSet& set) {
  std::lock_guard<std::mutex> lock(mu_);
  const Schema& schema = set.schema();
  const TimeNs ts = set.timestamp();
  char prefix[48];
  const int prefix_len = std::snprintf(
      prefix, sizeof prefix, "%llu.%06llu",
      static_cast<unsigned long long>(ts / kNsPerSec),
      static_cast<unsigned long long>((ts % kNsPerSec) / kNsPerUs));
  std::uint64_t bytes = 0;
  for (std::size_t i = 0; i < schema.metric_count(); ++i) {
    std::ofstream& out = FileFor(schema.metric(i).name);
    const MetricValue v = set.GetValue(i);
    const std::uint64_t comp = schema.metric(i).component_id != 0
                                   ? schema.metric(i).component_id
                                   : set.component_id();
    std::string line = std::string(prefix, static_cast<std::size_t>(prefix_len)) +
                       " " + std::to_string(comp) + " " + v.ToString() + "\n";
    out << line;
    bytes += line.size();
    if (!out.good()) {
      // Clear the sticky badbit/failbit so the next attempt (after breaker
      // backoff) retries instead of silently no-op failing forever.
      out.clear();
      CountFailedRow();
      return {ErrorCode::kInternal,
              "flatfile write failed for " + schema.metric(i).name};
    }
  }
  CountRow(bytes);
  return Status::Ok();
}

Status FlatFileStore::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  Status st;
  for (auto& [name, file] : files_) {
    file.flush();
    if (!file.good()) {
      file.clear();
      st = {ErrorCode::kInternal, "flatfile flush failed for " + name};
    }
  }
  return st;
}

}  // namespace ldmsxx
