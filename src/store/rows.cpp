#include "store/rows.hpp"

namespace ldmsxx {

const char* ColumnOpName(ColumnOp op) {
  switch (op) {
    case ColumnOp::kCopy:
      return "copy";
    case ColumnOp::kDelta:
      return "delta";
    case ColumnOp::kRate:
      return "rate";
    case ColumnOp::kScale:
      return "scale";
  }
  return "?";
}

std::uint64_t SlotFromValue(const MetricValue& v, MetricType out_type) {
  switch (out_type) {
    case MetricType::kF32:
    case MetricType::kD64:
      return std::bit_cast<std::uint64_t>(v.AsDouble());
    case MetricType::kS8:
    case MetricType::kS16:
    case MetricType::kS32:
    case MetricType::kS64:
      // Sign-extend through the union's s64 view.
      return static_cast<std::uint64_t>(v.v.s64);
    default:
      return v.v.u64;
  }
}

double SlotAsDouble(std::uint64_t slot, MetricType type) {
  switch (type) {
    case MetricType::kF32:
    case MetricType::kD64:
      return std::bit_cast<double>(slot);
    case MetricType::kS8:
    case MetricType::kS16:
    case MetricType::kS32:
    case MetricType::kS64:
      return static_cast<double>(static_cast<std::int64_t>(slot));
    default:
      return static_cast<double>(slot);
  }
}

RowPlan BuildIdentityPlan(const Schema& schema, std::uint32_t meta_gn) {
  RowPlan plan;
  plan.schema = schema.name();
  plan.meta_gn = meta_gn;
  RowGroup group;
  group.table = schema.name();
  group.columns.reserve(schema.metric_count());
  for (std::size_t i = 0; i < schema.metric_count(); ++i) {
    const MetricDef& def = schema.metric(i);
    RowColumn col;
    col.name = def.name;
    col.type = def.type;
    col.metric_index = static_cast<std::uint32_t>(i);
    group.columns.push_back(std::move(col));
  }
  plan.total_slots = group.columns.size();
  plan.groups.push_back(std::move(group));
  return plan;
}

void AppendPlanRows(const MetricSet& set, const RowPlan& plan, RowBatch* out) {
  const TimeNs ts = set.timestamp();
  const std::uint64_t node = set.component_id();
  for (std::size_t g = 0; g < plan.groups.size(); ++g) {
    const RowGroup& group = plan.groups[g];
    RowBatch::Row row;
    row.plan = &plan;
    row.group = static_cast<std::uint32_t>(g);
    row.ts = ts;
    row.component_id = node;
    row.producer = &set.producer_name();
    row.slot_offset = static_cast<std::uint32_t>(out->slots.size());
    for (const RowColumn& col : group.columns) {
      const MetricValue v = set.GetValue(col.metric_index);
      std::uint64_t slot = SlotFromValue(v, col.type);
      if (col.op == ColumnOp::kScale) {
        if (col.type == MetricType::kF32 || col.type == MetricType::kD64) {
          slot = SlotFromDouble(std::bit_cast<double>(slot) *
                                static_cast<double>(col.scale));
        } else {
          slot *= col.scale;
        }
      }
      out->slots.push_back(slot);
    }
    out->rows.push_back(row);
  }
}

}  // namespace ldmsxx
