// store_flatfile: one file per metric name ("a file per metric name (e.g.
// Active and Cached memory are stored in 2 separate files)", §IV-A). Each
// line is "timestamp component_id value". Simple, greppable, and the layout
// Sandia used for quick per-metric investigations.
#pragma once

#include <fstream>
#include <map>
#include <mutex>

#include "store/store.hpp"

namespace ldmsxx {

struct FlatFileStoreOptions {
  std::string root_path;
  bool truncate = true;
};

class FlatFileStore final : public Store {
 public:
  explicit FlatFileStore(FlatFileStoreOptions options);

  const std::string& name() const override { return name_; }
  Status StoreSet(const MetricSet& set) override;
  Status Flush() override;

  /// Path of the data file for @p metric_name.
  std::string FilePath(const std::string& metric_name) const;

 private:
  std::ofstream& FileFor(const std::string& metric_name);

  std::string name_ = "store_flatfile";
  FlatFileStoreOptions options_;
  std::mutex mu_;
  std::map<std::string, std::ofstream> files_;
};

}  // namespace ldmsxx
