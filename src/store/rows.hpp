// Row-decomposition interchange types (ISSUE 9 tentpole part 1). A RowPlan is
// the compiled form of a per-strgp decomposition config: which schema metrics
// feed which output columns of which destination table, resolved to metric
// *indices* once per schema digest so the per-sample hot path is index-driven
// copies with zero string lookups. A RowBatch is the flat buffer those copies
// land in: one slot vector shared by every row emitted from a drain batch, so
// a 16-sample drain hands the store one contiguous append instead of 16
// per-sample StoreSet calls.
//
// The plan/batch types live in the store layer (not daemon/decomp) because
// they are the argument type of Store::StoreRows; the config grammar that
// *produces* plans (`strgp_add decomp=...`) is the daemon-side mapping layer
// in src/daemon/decomp/.
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "core/metric_set.hpp"
#include "core/schema.hpp"
#include "core/value.hpp"
#include "util/clock.hpp"

namespace ldmsxx {

/// How a source metric becomes an output column.
enum class ColumnOp : std::uint8_t {
  kCopy = 0,  ///< value copied as-is (default)
  kDelta,     ///< difference vs. the previous sample, clamped at 0 on reset
  kRate,      ///< delta / elapsed seconds, always emitted as D64
  kScale,     ///< value * scale factor
};

const char* ColumnOpName(ColumnOp op);

/// One output column of a row group, resolved against a concrete schema.
struct RowColumn {
  std::string name;  ///< output column name (alias or source metric name)
  MetricType type = MetricType::kU64;  ///< output value type
  std::uint32_t metric_index = 0;      ///< source index into the schema
  ColumnOp op = ColumnOp::kCopy;
  std::uint64_t scale = 1;  ///< factor for kScale
};

/// One destination table: a sample contributes one row per group, so a spec
/// with N groups turns one set sample into N rows.
struct RowGroup {
  std::string table;
  std::vector<RowColumn> columns;
  bool has_derived = false;  ///< any kDelta/kRate column (needs history)
};

/// A decomposition spec compiled against one schema digest (meta_gn).
struct RowPlan {
  std::string schema;
  std::uint32_t meta_gn = 0;
  std::vector<RowGroup> groups;
  /// Sum of all groups' column counts: slots one sample contributes.
  std::size_t total_slots = 0;
};

/// 8-byte slot encoding: every output value travels as the raw bits of its
/// declared type widened to 64 bits (sign-extended for signed integers,
/// double bits for F32/D64). Segments store slots verbatim, so encode and
/// decode must stay inverses.
std::uint64_t SlotFromValue(const MetricValue& v, MetricType out_type);
double SlotAsDouble(std::uint64_t slot, MetricType type);

inline std::uint64_t SlotFromDouble(double d) {
  return std::bit_cast<std::uint64_t>(d);
}

/// Rows emitted by decomposing one or more samples. `slots` is one flat
/// buffer; each row covers `plan->groups[group].columns.size()` slots
/// starting at `slot_offset`.
struct RowBatch {
  struct Row {
    const RowPlan* plan = nullptr;
    std::uint32_t group = 0;
    TimeNs ts = 0;
    std::uint64_t component_id = 0;
    /// Producer of the source set. Points into the MetricSet; valid only for
    /// the duration of the StoreRows call that consumes this batch.
    const std::string* producer = nullptr;
    std::uint32_t slot_offset = 0;
  };
  std::vector<Row> rows;
  std::vector<std::uint64_t> slots;

  void Clear() {
    rows.clear();
    slots.clear();
  }
  bool empty() const { return rows.empty(); }
};

/// The identity decomposition: one row group named after the schema, every
/// metric copied under its own name. Row-capable stores use this for plain
/// StoreSet calls so the batched and unbatched ingest paths share one
/// append implementation.
RowPlan BuildIdentityPlan(const Schema& schema, std::uint32_t meta_gn);

/// Append @p set's current values to @p out following @p plan. Derived
/// columns (kDelta/kRate) are not handled here — plans built by
/// BuildIdentityPlan never contain them; the daemon-side Decomposer owns the
/// history state those need.
void AppendPlanRows(const MetricSet& set, const RowPlan& plan, RowBatch* out);

}  // namespace ldmsxx
