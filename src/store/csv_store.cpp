#include "store/csv_store.hpp"

#include "util/atomic_file.hpp"

namespace ldmsxx {

CsvStore::CsvStore(CsvStoreOptions options) : options_(std::move(options)) {
  // Failure is surfaced by StoreSet (unopenable writer), not thrown here: a
  // store pointed at a dead path must report a Status the breaker can count.
  (void)EnsureDirectories(options_.root_path);
}

std::string CsvStore::FilePath(const std::string& schema) const {
  return options_.root_path + "/" + schema + ".csv";
}

CsvStore::SchemaFile& CsvStore::FileFor(const MetricSet& set) {
  const std::string& schema = set.schema().name();
  auto it = files_.find(schema);
  if (it != files_.end()) {
    // A cached writer whose file never opened is dead forever; drop it and
    // reopen so the store can come back once the disk does.
    if (it->second.writer->is_open()) return it->second;
    files_.erase(it);
  }
  (void)EnsureDirectories(options_.root_path);
  SchemaFile file;
  file.writer = std::make_unique<CsvWriter>(FilePath(schema), options_.truncate);
  auto [ins, ok] = files_.emplace(schema, std::move(file));
  (void)ok;
  return ins->second;
}

Status CsvStore::StoreSet(const MetricSet& set) {
  std::lock_guard<std::mutex> lock(mu_);
  SchemaFile& file = FileFor(set);
  const Schema& schema = set.schema();

  if (!file.header_written) {
    file.header_written = true;
    CsvWriter* header_out = file.writer.get();
    std::unique_ptr<CsvWriter> separate;
    if (options_.header_in_separate_file) {
      separate = std::make_unique<CsvWriter>(
          FilePath(schema.name()) + ".HEADER", options_.truncate);
      header_out = separate.get();
    }
    header_out->Field("#Time");
    header_out->Field("ProducerName");
    header_out->Field("component_id");
    for (std::size_t i = 0; i < schema.metric_count(); ++i) {
      header_out->Field(schema.metric(i).name);
    }
    header_out->EndRow();
    header_out->Flush();
  }

  const std::uint64_t before = file.writer->bytes_written();
  const TimeNs ts = set.timestamp();
  char ts_buf[32];
  std::snprintf(ts_buf, sizeof ts_buf, "%llu.%06llu",
                static_cast<unsigned long long>(ts / kNsPerSec),
                static_cast<unsigned long long>((ts % kNsPerSec) / kNsPerUs));
  file.writer->Field(std::string_view(ts_buf));
  file.writer->Field(std::string_view(set.producer_name()));
  file.writer->Field(set.component_id());
  for (std::size_t i = 0; i < schema.metric_count(); ++i) {
    const MetricValue v = set.GetValue(i);
    switch (v.type) {
      case MetricType::kF32:
      case MetricType::kD64:
        file.writer->Field(v.AsDouble());
        break;
      case MetricType::kS8:
      case MetricType::kS16:
      case MetricType::kS32:
      case MetricType::kS64:
        file.writer->Field(v.v.s64);
        break;
      default:
        file.writer->Field(v.v.u64);
        break;
    }
  }
  file.writer->EndRow();
  if (!file.writer->ok()) {
    // Clear the sticky failbit so a retry after the breaker's backoff can
    // succeed once the disk recovers; this row is lost either way.
    file.writer->ClearError();
    CountFailedRow();
    return {ErrorCode::kInternal, "csv write failed for " + schema.name()};
  }
  CountRow(file.writer->bytes_written() - before);
  return Status::Ok();
}

Status CsvStore::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  Status st;
  for (auto& [schema, file] : files_) {
    file.writer->Flush();
    if (!file.writer->ok()) {
      file.writer->ClearError();
      st = {ErrorCode::kInternal, "csv flush failed for " + schema};
    }
  }
  return st;
}

}  // namespace ldmsxx
