// Fault-injecting store decorator, the storage-side sibling of
// FaultInjectingTransport. Wraps any Store and, driven by a seeded
// deterministic StoreFaultSchedule, injects the disk failure modes an
// aggregator's storage path must survive: ENOSPC-style write failures,
// per-write latency stalls (slow disk), partial writes (the ambiguous
// "bytes may or may not have landed" failure), and Flush failures.
//
// Faults are decided per operation by StoreFaultSchedule::Draw, with the
// same two sources as the transport schedule, in priority order:
//   1. an explicit per-operation queue (InjectNext) — overload tests use
//      this to script exact scenarios ("the next 10 writes hit ENOSPC");
//   2. a probabilistic draw from a seeded xoshiro stream — same seed and
//      same write order produce the identical fault sequence, which is what
//      makes shed/breaker digests reproducible when daemons run with inline
//      pools over a SimClock.
// A disarmed schedule is a pure passthrough, so a "store_fault"-wrapped
// plugin can sit in a config script at no cost until a test arms it.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>

#include "store/store.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

namespace ldmsxx {

enum class StoreFaultKind : std::uint8_t {
  kNone = 0,
  kFailWrite,    // StoreSet fails, nothing written (ENOSPC)
  kPartialWrite, // inner write happens, failure reported anyway (torn fsync)
  kStall,        // write succeeds after a real (bounded) latency stall
  kFailFlush,    // Flush fails
};

/// Operation classes a store fault can attach to.
enum class StoreFaultOp : std::uint8_t {
  kWrite = 0,
  kFlush,
};
constexpr std::size_t kStoreFaultOpCount = 2;

/// How many of each fault the schedule has injected; overload tests fold
/// these into their determinism digests.
struct StoreFaultStats {
  std::atomic<std::uint64_t> failed_writes{0};
  std::atomic<std::uint64_t> partial_writes{0};
  std::atomic<std::uint64_t> stalls{0};
  std::atomic<std::uint64_t> failed_flushes{0};

  std::uint64_t total() const {
    return failed_writes.load(std::memory_order_relaxed) +
           partial_writes.load(std::memory_order_relaxed) +
           stalls.load(std::memory_order_relaxed) +
           failed_flushes.load(std::memory_order_relaxed);
  }
};

class StoreFaultSchedule {
 public:
  /// Per-operation fault probabilities, applied independently in the order
  /// fail/partial/stall (first hit wins); fail_flush applies to kFlush.
  struct Probabilities {
    double fail_write = 0.0;
    double partial_write = 0.0;
    double stall = 0.0;
    double fail_flush = 0.0;
    /// Real sleep injected by kStall; keep small in tests (it models a slow
    /// disk for the bounded-queue/backpressure path, not simulated time).
    DurationNs stall_ns = 1 * kNsPerMs;
  };

  StoreFaultSchedule() : StoreFaultSchedule(0, Probabilities()) {}
  explicit StoreFaultSchedule(std::uint64_t seed)
      : StoreFaultSchedule(seed, Probabilities()) {}
  StoreFaultSchedule(std::uint64_t seed, Probabilities probs)
      : rng_(seed ^ 0x6c646d735f737472ull), probs_(probs) {}

  /// Master switch; a disarmed schedule never injects (queued faults are
  /// retained for when it is re-armed).
  void set_armed(bool armed) {
    std::lock_guard<std::mutex> lock(mu_);
    armed_ = armed;
  }
  bool armed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return armed_;
  }

  void set_probabilities(const Probabilities& probs) {
    std::lock_guard<std::mutex> lock(mu_);
    probs_ = probs;
  }

  /// Script @p count copies of @p kind onto the queue for @p op; queued
  /// faults are consumed (FIFO) before any probabilistic draw.
  void InjectNext(StoreFaultOp op, StoreFaultKind kind, std::size_t count = 1);

  struct Decision {
    StoreFaultKind kind = StoreFaultKind::kNone;
    DurationNs stall = 0;
  };
  Decision Draw(StoreFaultOp op);

  const StoreFaultStats& stats() const { return stats_; }

 private:
  static bool Applicable(StoreFaultOp op, StoreFaultKind kind);

  mutable std::mutex mu_;
  Rng rng_;
  Probabilities probs_;
  bool armed_ = true;
  std::deque<StoreFaultKind> queued_[kStoreFaultOpCount];
  StoreFaultStats stats_;
};

/// Decorator: forwards to an inner store, injecting faults per the shared
/// schedule. The wrapper's own rows_failed counter tracks injected write
/// failures; rows_written/bytes_written stay on the inner store.
class FaultInjectingStore final : public Store {
 public:
  /// @param name plugin name; defaults to "fault+<inner name>".
  FaultInjectingStore(std::shared_ptr<Store> inner,
                      std::shared_ptr<StoreFaultSchedule> schedule,
                      std::string name = "");

  const std::string& name() const override { return name_; }
  Status StoreSet(const MetricSet& set) override;
  Status Flush() override;

  StoreFaultSchedule& schedule() { return *schedule_; }
  Store& inner() { return *inner_; }

 private:
  std::shared_ptr<Store> inner_;
  std::shared_ptr<StoreFaultSchedule> schedule_;
  std::string name_;
};

}  // namespace ldmsxx
