// Storage plugin API (§IV-B "Storage"). Stores run on aggregators and write
// metric-set contents to stable storage. The aggregator only hands a store a
// mirror set that just passed the DGN/consistent checks, so stores never see
// torn or stale data ("collection of a metric set whose data has not been
// updated or is incomplete does not result in a write to storage").
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "core/metric_set.hpp"
#include "store/rows.hpp"
#include "util/status.hpp"

namespace ldmsxx {

/// Base class for storage plugins.
class Store {
 public:
  virtual ~Store() = default;

  /// Plugin name ("store_csv", "store_flatfile", "store_sos", "store_mem").
  virtual const std::string& name() const = 0;

  /// Append one sample: the current contents of @p set, stamped with the
  /// set's transaction timestamp. Called from the aggregator's dedicated
  /// storage thread pool; implementations must be thread-safe across
  /// different sets but may assume per-set serialization. A non-ok status
  /// means the sample did NOT reach storage (disk full, stream failure);
  /// the aggregator's circuit breaker counts these, so implementations must
  /// not swallow write errors.
  virtual Status StoreSet(const MetricSet& set) = 0;

  /// Flush buffered data to stable storage. A non-ok status means buffered
  /// rows may not have reached the device.
  virtual Status Flush() { return Status::Ok(); }

  // --- decomposed / batched ingest (ISSUE 9) ----------------------------

  /// True when this store accepts decomposed rows via StoreRows. Only
  /// row-capable stores may be targeted by a strgp with a decomp= spec.
  virtual bool row_capable() const { return false; }

  /// Append decomposed rows. The batch may span many source samples (the
  /// drain hands over up to kDrainBatch samples' worth in one call), so
  /// implementations should take their internal lock once per call, not per
  /// row. Default: unsupported.
  virtual Status StoreRows(const RowBatch& batch);

  /// One queued sample handed to StoreSetBatch: the set plus the mutex that
  /// serializes the read against concurrent ApplyData on the mirror.
  struct BatchItem {
    const MetricSet* set = nullptr;
    std::mutex* mu = nullptr;
  };

  /// True when StoreSetBatch is cheaper than n StoreSet calls (the store
  /// can amortize locking/appends across the whole drain batch).
  virtual bool batch_capable() const { return false; }

  /// Store @p n samples in one call. @p stored receives the number that
  /// reached storage; on a non-ok status the remaining samples did not.
  /// Default implementation: loop StoreSet under each item's mutex.
  virtual Status StoreSetBatch(const BatchItem* items, std::size_t n,
                               std::size_t* stored);

  std::uint64_t rows_written() const {
    return rows_.load(std::memory_order_relaxed);
  }
  /// Rows whose write failed (StoreSet returned non-ok).
  std::uint64_t rows_failed() const {
    return failed_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_written() const {
    return bytes_.load(std::memory_order_relaxed);
  }
  /// Rows dropped by the store's own retention policy (e.g. the
  /// memory store's max_samples ring). Surfaced in strgp_status.
  std::uint64_t rows_evicted() const {
    return evicted_.load(std::memory_order_relaxed);
  }

 protected:
  void CountRow(std::uint64_t bytes) {
    rows_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void CountFailedRow() { failed_.fetch_add(1, std::memory_order_relaxed); }
  void CountEvicted(std::uint64_t n = 1) {
    evicted_.fetch_add(n, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> rows_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> evicted_{0};
};

}  // namespace ldmsxx
