#include "store/sos_store.hpp"

#include <cstring>

#include "core/wire.hpp"
#include "util/atomic_file.hpp"

namespace ldmsxx {
namespace {

constexpr std::uint32_t kSosMagic = 0x534f5331;  // "SOS1"

struct SosFileHeader {
  std::uint32_t magic;
  std::uint32_t schema_bytes;  // length of the serialized schema record
  std::uint32_t metric_count;
  std::uint32_t record_size;
};

std::vector<std::byte> SerializeSchemaRecord(const Schema& schema) {
  ByteWriter w;
  w.Str(schema.name());
  w.U32(static_cast<std::uint32_t>(schema.metric_count()));
  for (std::size_t i = 0; i < schema.metric_count(); ++i) {
    w.U8(static_cast<std::uint8_t>(schema.metric(i).type));
    w.Str(schema.metric(i).name);
  }
  return w.Take();
}

}  // namespace

double SosRecord::SlotAsDouble(std::size_t i, MetricType type) const {
  MetricValue v;
  v.type = type;
  switch (type) {
    case MetricType::kD64:
      std::memcpy(&v.v.d64, &slots[i], 8);
      break;
    case MetricType::kF32: {
      float f;
      std::memcpy(&f, &slots[i], 4);
      v.v.f32 = f;
      break;
    }
    case MetricType::kS8:
    case MetricType::kS16:
    case MetricType::kS32:
    case MetricType::kS64:
      v.v.s64 = static_cast<std::int64_t>(slots[i]);
      break;
    default:
      v.v.u64 = slots[i];
      break;
  }
  return v.AsDouble();
}

SosStore::SosStore(SosStoreOptions options) : options_(std::move(options)) {
  // Failure is surfaced by StoreSet (failed container open), not thrown
  // here: a store pointed at a dead path must report a Status the breaker
  // can count.
  (void)EnsureDirectories(options_.root_path);
}

SosStore::~SosStore() {
  for (auto& [schema, container] : containers_) {
    if (container.file != nullptr) std::fclose(container.file);
  }
}

std::string SosStore::FilePath(const std::string& schema) const {
  return options_.root_path + "/" + schema + ".sos";
}

SosStore::Container& SosStore::ContainerFor(const MetricSet& set) {
  const std::string& schema_name = set.schema().name();
  auto it = containers_.find(schema_name);
  // A cached entry with a null file recorded a failed open; retry it so the
  // store can come back once the disk does (nothing was written, so the
  // truncate-on-open below clobbers nothing).
  if (it != containers_.end()) {
    if (it->second.file != nullptr) return it->second;
    containers_.erase(it);
  }

  Container container;
  container.record_size = 16 + 8 * set.schema().metric_count();
  (void)EnsureDirectories(options_.root_path);
  const std::string path = FilePath(schema_name);
  container.file = std::fopen(path.c_str(), options_.truncate ? "wb" : "ab");
  if (container.file != nullptr) {
    const auto schema_rec = SerializeSchemaRecord(set.schema());
    SosFileHeader hdr{};
    hdr.magic = kSosMagic;
    hdr.schema_bytes = static_cast<std::uint32_t>(schema_rec.size());
    hdr.metric_count = static_cast<std::uint32_t>(set.schema().metric_count());
    hdr.record_size = static_cast<std::uint32_t>(container.record_size);
    // A short header/schema write leaves an unreadable container; treat it
    // like a failed open so every StoreSet reports the fault instead of
    // appending records to a corrupt file.
    if (std::fwrite(&hdr, sizeof hdr, 1, container.file) != 1 ||
        std::fwrite(schema_rec.data(), 1, schema_rec.size(), container.file) !=
            schema_rec.size()) {
      std::fclose(container.file);
      container.file = nullptr;
    }
  }
  auto [ins, ok] = containers_.emplace(schema_name, container);
  (void)ok;
  return ins->second;
}

Status SosStore::StoreSet(const MetricSet& set) {
  std::lock_guard<std::mutex> lock(mu_);
  Container& container = ContainerFor(set);
  if (container.file == nullptr) {
    CountFailedRow();
    return {ErrorCode::kInternal, "cannot open sos container"};
  }
  std::vector<std::uint64_t> record(2 + set.schema().metric_count());
  record[0] = set.timestamp();
  record[1] = set.component_id();
  for (std::size_t i = 0; i < set.schema().metric_count(); ++i) {
    const MetricValue v = set.GetValue(i);
    std::uint64_t slot = 0;
    switch (v.type) {
      case MetricType::kD64:
        std::memcpy(&slot, &v.v.d64, 8);
        break;
      case MetricType::kF32:
        std::memcpy(&slot, &v.v.f32, 4);
        break;
      case MetricType::kS8:
      case MetricType::kS16:
      case MetricType::kS32:
      case MetricType::kS64:
        slot = static_cast<std::uint64_t>(v.v.s64);
        break;
      default:
        slot = v.v.u64;
        break;
    }
    record[2 + i] = slot;
  }
  const std::size_t bytes = record.size() * 8;
  const std::size_t wrote =
      std::fwrite(record.data(), 1, bytes, container.file);
  if (wrote != bytes) {
    // Short write: clear the error and truncate nothing — the next record
    // realigns on the stream position only if the partial bytes are backed
    // out, so rewind over them where the filesystem allows it.
    std::clearerr(container.file);
    if (wrote > 0) {
      std::fseek(container.file, -static_cast<long>(wrote), SEEK_CUR);
    }
    CountFailedRow();
    return {ErrorCode::kInternal, "sos append failed (short write)"};
  }
  CountRow(bytes);
  return Status::Ok();
}

Status SosStore::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  Status st;
  for (auto& [schema, container] : containers_) {
    if (container.file == nullptr) continue;
    if (std::fflush(container.file) != 0) {
      std::clearerr(container.file);
      st = {ErrorCode::kInternal, "sos flush failed for " + schema};
    }
  }
  return st;
}

std::optional<SosSchemaInfo> SosStore::ReadSchema(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  SosFileHeader hdr{};
  if (std::fread(&hdr, sizeof hdr, 1, f) != 1 || hdr.magic != kSosMagic) {
    std::fclose(f);
    return std::nullopt;
  }
  std::vector<std::byte> schema_bytes(hdr.schema_bytes);
  if (std::fread(schema_bytes.data(), 1, schema_bytes.size(), f) !=
      schema_bytes.size()) {
    std::fclose(f);
    return std::nullopt;
  }
  std::fclose(f);
  ByteReader r(schema_bytes);
  SosSchemaInfo info;
  info.schema_name = r.Str();
  const std::uint32_t count = r.U32();
  for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
    info.metric_types.push_back(static_cast<MetricType>(r.U8()));
    info.metric_names.push_back(r.Str());
  }
  if (!r.ok() || info.metric_names.size() != count) return std::nullopt;
  return info;
}

std::size_t SosStore::Query(const std::string& path, TimeNs t0, TimeNs t1,
                            const std::function<void(const SosRecord&)>& visit) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return 0;
  SosFileHeader hdr{};
  if (std::fread(&hdr, sizeof hdr, 1, f) != 1 || hdr.magic != kSosMagic) {
    std::fclose(f);
    return 0;
  }
  const long data_start =
      static_cast<long>(sizeof hdr + hdr.schema_bytes);
  std::fseek(f, 0, SEEK_END);
  const long file_end = std::ftell(f);
  const std::size_t record_size = hdr.record_size;
  const std::size_t n_records =
      static_cast<std::size_t>(file_end - data_start) / record_size;

  auto read_ts = [&](std::size_t idx) -> TimeNs {
    std::fseek(f, data_start + static_cast<long>(idx * record_size), SEEK_SET);
    std::uint64_t ts = 0;
    if (std::fread(&ts, 8, 1, f) != 1) return ~0ull;
    return ts;
  };

  // Binary search for the first record with ts >= t0 (records time-ordered).
  std::size_t lo = 0;
  std::size_t hi = n_records;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (read_ts(mid) < t0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }

  std::size_t visited = 0;
  std::vector<std::uint64_t> raw(record_size / 8);
  std::fseek(f, data_start + static_cast<long>(lo * record_size), SEEK_SET);
  for (std::size_t i = lo; i < n_records; ++i) {
    if (std::fread(raw.data(), 1, record_size, f) != record_size) break;
    if (raw[0] >= t1) break;
    SosRecord rec;
    rec.timestamp = raw[0];
    rec.component_id = raw[1];
    rec.slots.assign(raw.begin() + 2, raw.end());
    visit(rec);
    ++visited;
  }
  std::fclose(f);
  return visited;
}

}  // namespace ldmsxx
