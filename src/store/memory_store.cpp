#include "store/memory_store.hpp"

namespace ldmsxx {

Status MemoryStore::StoreSet(const MetricSet& set) {
  std::lock_guard<std::mutex> lock(mu_);
  Table& table = tables_[set.schema().name()];
  if (table.metric_names.empty()) {
    for (std::size_t i = 0; i < set.schema().metric_count(); ++i) {
      table.metric_names.push_back(set.schema().metric(i).name);
    }
  }
  MemRow row;
  row.timestamp = set.timestamp();
  row.component_id = set.component_id();
  row.producer = set.producer_name();
  row.values.reserve(set.schema().metric_count());
  for (std::size_t i = 0; i < set.schema().metric_count(); ++i) {
    row.values.push_back(set.GetValue(i).AsDouble());
  }
  table.rows.push_back(std::move(row));
  if (max_samples_ > 0 && table.rows.size() > max_samples_) {
    table.rows.pop_front();
    CountEvicted();
  }
  CountRow(8 * set.schema().metric_count() + 24);
  return Status::Ok();
}

std::vector<std::string> MemoryStore::MetricNames(
    const std::string& schema) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(schema);
  if (it == tables_.end()) return {};
  return it->second.metric_names;
}

std::vector<MemRow> MemoryStore::Rows(const std::string& schema) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(schema);
  if (it == tables_.end()) return {};
  return {it->second.rows.begin(), it->second.rows.end()};
}

std::size_t MemoryStore::RowCount(const std::string& schema) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(schema);
  if (it == tables_.end()) return 0;
  return it->second.rows.size();
}

std::vector<std::string> MemoryStore::Schemas() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, table] : tables_) out.push_back(name);
  return out;
}

void MemoryStore::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  tables_.clear();
}

}  // namespace ldmsxx
