// store_csv: one CSV file per metric-set schema ("a Comma Separated Value
// (CSV) file per metric set", §IV-A). Row shape matches the production
// store: timestamp, producer, component id, then one column per metric.
// Optionally writes the header to a separate .HEADER file (the paper's
// "optionally write header to separate file" configuration).
#pragma once

#include <map>
#include <memory>
#include <mutex>

#include "store/store.hpp"
#include "util/csv.hpp"

namespace ldmsxx {

struct CsvStoreOptions {
  std::string root_path;       ///< directory for the per-schema files
  bool header_in_separate_file = false;
  bool truncate = true;        ///< start files fresh (tests/benches)
};

class CsvStore final : public Store {
 public:
  explicit CsvStore(CsvStoreOptions options);

  const std::string& name() const override { return name_; }
  Status StoreSet(const MetricSet& set) override;
  Status Flush() override;

  /// Path of the data file for @p schema (for tests/analysis).
  std::string FilePath(const std::string& schema) const;

 private:
  struct SchemaFile {
    std::unique_ptr<CsvWriter> writer;
    bool header_written = false;
  };

  SchemaFile& FileFor(const MetricSet& set);

  std::string name_ = "store_csv";
  CsvStoreOptions options_;
  std::mutex mu_;
  std::map<std::string, SchemaFile> files_;
};

}  // namespace ldmsxx
