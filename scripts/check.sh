#!/usr/bin/env bash
# Resilience gate: build every preset and run the deterministic
# chaos/overload suites under it. The default preset additionally runs the
# full tier-1 test list. Usage: scripts/check.sh [preset...]
#   scripts/check.sh              # default + tsan + asan
#   scripts/check.sh tsan         # just one preset
set -euo pipefail
cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(default tsan asan)
fi

for preset in "${presets[@]}"; do
  echo "==> [$preset] configure + build"
  cmake --preset "$preset" >/dev/null
  cmake --build --preset "$preset" -j "$(nproc)"
  if [ "$preset" = default ]; then
    echo "==> [$preset] full test suite"
    ctest --preset "$preset" --output-on-failure
    echo "==> [$preset] bench smoke (crash check + JSON artifacts)"
    scripts/bench_smoke.sh build build/bench-artifacts
    echo "==> [$preset] bench regression gate (scale-free metrics vs baseline)"
    for artifact in BENCH_fanin.json BENCH_store_overload.json \
                    BENCH_tree.json BENCH_restart.json BENCH_query.json; do
      scripts/bench_compare.py "bench/baselines/$artifact" \
        "build/bench-artifacts/$artifact"
    done
  else
    # Sanitizer presets focus on the concurrency-heavy fault suites and the
    # wire codecs (the preset's own filter applies on top of the labels).
    echo "==> [$preset] chaos + overload + codec + tree + persist + query suites"
    ctest --preset "$preset" --output-on-failure \
      -L 'chaos|overload|codec|tree|persist|query'
  fi
done
echo "==> all presets green"
