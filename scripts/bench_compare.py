#!/usr/bin/env python3
"""Compare a fresh BENCH_*.json against its committed baseline.

Only scale-free metrics are compared: wire bytes per cycle, request frames,
unchanged/delta entry counts, and the derived reduction/ratio fields. These
are protocol-determined — the same binary produces the same values on any
machine — so a shift beyond the threshold means the wire protocol or the
gating logic changed, not that the CI box was slow. Timing fields (`*_us`,
`*_per_sec`, throughput, percentiles) are machine-dependent and skipped.

Exit status: 0 = within threshold, 1 = regression(s) flagged, 2 = usage or
structural mismatch (a case disappeared from the fresh run).

Usage: bench_compare.py BASELINE CURRENT [--threshold 0.15]
"""

import argparse
import json
import sys

# A numeric leaf is compared iff its key matches INCLUDE and not EXCLUDE.
INCLUDE = ("bytes", "frames", "unchanged", "delta", "reduction", "ratio",
           "shed", "write", "breaker_trips", "submits")
EXCLUDE = ("_us", "_ms", "_per_sec", "per_pull", "fanin", "elapsed",
           "throughput")


def comparable(key):
    k = key.lower()
    if any(pat in k for pat in EXCLUDE):
        return False
    return any(pat in k for pat in INCLUDE)


def walk(base, cur, path, rows, missing):
    """Collect (path, base, cur) for comparable numeric leaves present in
    both trees; record baseline paths absent from the fresh run."""
    if isinstance(base, dict):
        if not isinstance(cur, dict):
            missing.append(path or "<root>")
            return
        for key, bval in base.items():
            child = f"{path}.{key}" if path else key
            if key not in cur:
                if comparable(key) or isinstance(bval, (dict, list)):
                    missing.append(child)
                continue
            walk(bval, cur[key], child, rows, missing)
    elif isinstance(base, list):
        if not isinstance(cur, list):
            missing.append(path)
            return
        if len(cur) < len(base):
            missing.append(f"{path}[{len(cur)}..{len(base) - 1}]")
        for i, bval in enumerate(base[: len(cur)]):
            walk(bval, cur[i], f"{path}[{i}]", rows, missing)
    elif isinstance(base, (int, float)) and not isinstance(base, bool):
        key = path.rsplit(".", 1)[-1].split("[")[0]
        if comparable(key) and isinstance(cur, (int, float)):
            rows.append((path, float(base), float(cur)))


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="relative change that counts as a regression "
                             "(default 0.15)")
    args = parser.parse_args()

    try:
        with open(args.baseline) as f:
            base = json.load(f)
        with open(args.current) as f:
            cur = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"bench_compare: {err}", file=sys.stderr)
        return 2

    rows, missing = [], []
    walk(base, cur, "", rows, missing)

    if missing:
        for path in missing:
            print(f"bench_compare: MISSING {path} (present in baseline, "
                  f"absent from current run)")
        return 2
    if not rows:
        print("bench_compare: no comparable metrics found", file=sys.stderr)
        return 2

    flagged = []
    for path, bval, cval in rows:
        denom = max(abs(bval), abs(cval))
        rel = 0.0 if denom < 1e-12 else (cval - bval) / denom
        if abs(rel) > args.threshold:
            flagged.append((path, bval, cval, rel))

    name = base.get("bench", args.baseline) if isinstance(base, dict) \
        else args.baseline
    if flagged:
        print(f"bench_compare[{name}]: {len(flagged)} metric(s) moved "
              f">{args.threshold:.0%} vs baseline:")
        for path, bval, cval, rel in flagged:
            print(f"  {path}: {bval:g} -> {cval:g} ({rel:+.1%})")
        return 1
    print(f"bench_compare[{name}]: {len(rows)} scale-free metrics within "
          f"{args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
