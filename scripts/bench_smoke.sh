#!/usr/bin/env bash
# Crash-check the benches in a seconds-long configuration and verify they
# produce their machine-readable BENCH_*.json artifacts. Usage:
#   scripts/bench_smoke.sh [build-dir] [artifact-dir]
# default build-dir: build. When artifact-dir is given the JSON artifacts are
# left there for the caller (bench_compare.py); otherwise they go to a temp
# dir that is cleaned up on exit.
set -euo pipefail

build_dir="${1:-build}"
if [[ $# -ge 2 ]]; then
  out_dir="$2"
  mkdir -p "$out_dir"
  out_dir="$(realpath "$out_dir")"
else
  out_dir="$(mktemp -d)"
  trap 'rm -rf "$out_dir"' EXIT
fi

run_bench() {
  local name="$1" artifact="$2"
  local bin="$build_dir/bench/$name"
  if [[ ! -x "$bin" ]]; then
    echo "bench_smoke: missing binary $bin" >&2
    exit 1
  fi
  bin="$(realpath "$bin")"
  echo "=== bench_smoke: $name ==="
  (cd "$out_dir" && LDMSXX_BENCH_SMOKE=1 "$bin")
  if [[ ! -s "$out_dir/$artifact" ]]; then
    echo "bench_smoke: $name did not produce $artifact" >&2
    exit 1
  fi
  echo "bench_smoke: $artifact OK ($(wc -c <"$out_dir/$artifact") bytes)"
}

run_bench bench_fanin BENCH_fanin.json
run_bench bench_store_overload BENCH_store_overload.json
run_bench bench_tree BENCH_tree.json
run_bench bench_restart BENCH_restart.json
run_bench bench_query BENCH_query.json

echo "bench_smoke: all benches passed"
