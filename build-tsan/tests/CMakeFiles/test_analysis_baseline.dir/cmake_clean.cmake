file(REMOVE_RECURSE
  "CMakeFiles/test_analysis_baseline.dir/test_analysis_baseline.cpp.o"
  "CMakeFiles/test_analysis_baseline.dir/test_analysis_baseline.cpp.o.d"
  "test_analysis_baseline"
  "test_analysis_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
