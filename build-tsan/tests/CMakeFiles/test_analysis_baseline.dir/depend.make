# Empty dependencies file for test_analysis_baseline.
# This may be replaced when dependencies are built.
