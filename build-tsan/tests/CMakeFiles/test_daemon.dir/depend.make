# Empty dependencies file for test_daemon.
# This may be replaced when dependencies are built.
