file(REMOVE_RECURSE
  "CMakeFiles/test_daemon.dir/test_daemon.cpp.o"
  "CMakeFiles/test_daemon.dir/test_daemon.cpp.o.d"
  "test_daemon"
  "test_daemon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_daemon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
