# Empty compiler generated dependencies file for test_failure_recovery.
# This may be replaced when dependencies are built.
