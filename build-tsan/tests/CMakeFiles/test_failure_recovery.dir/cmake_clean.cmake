file(REMOVE_RECURSE
  "CMakeFiles/test_failure_recovery.dir/test_failure_recovery.cpp.o"
  "CMakeFiles/test_failure_recovery.dir/test_failure_recovery.cpp.o.d"
  "test_failure_recovery"
  "test_failure_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_failure_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
