# Empty compiler generated dependencies file for test_integration_pipeline.
# This may be replaced when dependencies are built.
