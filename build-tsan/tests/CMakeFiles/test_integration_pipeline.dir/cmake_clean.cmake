file(REMOVE_RECURSE
  "CMakeFiles/test_integration_pipeline.dir/test_integration_pipeline.cpp.o"
  "CMakeFiles/test_integration_pipeline.dir/test_integration_pipeline.cpp.o.d"
  "test_integration_pipeline"
  "test_integration_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
