# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_util "/root/repo/build-tsan/tests/test_util")
set_tests_properties(test_util PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;11;ldmsxx_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_core "/root/repo/build-tsan/tests/test_core")
set_tests_properties(test_core PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;12;ldmsxx_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_transport "/root/repo/build-tsan/tests/test_transport")
set_tests_properties(test_transport PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;13;ldmsxx_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_scheduler "/root/repo/build-tsan/tests/test_scheduler")
set_tests_properties(test_scheduler PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;14;ldmsxx_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_store "/root/repo/build-tsan/tests/test_store")
set_tests_properties(test_store PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;15;ldmsxx_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_sim "/root/repo/build-tsan/tests/test_sim")
set_tests_properties(test_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;16;ldmsxx_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_sampler "/root/repo/build-tsan/tests/test_sampler")
set_tests_properties(test_sampler PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;17;ldmsxx_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_daemon "/root/repo/build-tsan/tests/test_daemon")
set_tests_properties(test_daemon PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;18;ldmsxx_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_analysis_baseline "/root/repo/build-tsan/tests/test_analysis_baseline")
set_tests_properties(test_analysis_baseline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;19;ldmsxx_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_properties "/root/repo/build-tsan/tests/test_properties")
set_tests_properties(test_properties PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;20;ldmsxx_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_control "/root/repo/build-tsan/tests/test_control")
set_tests_properties(test_control PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;21;ldmsxx_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_failure_recovery "/root/repo/build-tsan/tests/test_failure_recovery")
set_tests_properties(test_failure_recovery PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;22;ldmsxx_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_integration_pipeline "/root/repo/build-tsan/tests/test_integration_pipeline")
set_tests_properties(test_integration_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;23;ldmsxx_test;/root/repo/tests/CMakeLists.txt;0;")
