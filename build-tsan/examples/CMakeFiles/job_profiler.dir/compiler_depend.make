# Empty compiler generated dependencies file for job_profiler.
# This may be replaced when dependencies are built.
