file(REMOVE_RECURSE
  "CMakeFiles/job_profiler.dir/job_profiler.cpp.o"
  "CMakeFiles/job_profiler.dir/job_profiler.cpp.o.d"
  "job_profiler"
  "job_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/job_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
