file(REMOVE_RECURSE
  "CMakeFiles/congestion_explorer.dir/congestion_explorer.cpp.o"
  "CMakeFiles/congestion_explorer.dir/congestion_explorer.cpp.o.d"
  "congestion_explorer"
  "congestion_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/congestion_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
