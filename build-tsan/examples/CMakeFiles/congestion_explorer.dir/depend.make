# Empty dependencies file for congestion_explorer.
# This may be replaced when dependencies are built.
