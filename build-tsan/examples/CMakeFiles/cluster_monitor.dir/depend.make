# Empty dependencies file for cluster_monitor.
# This may be replaced when dependencies are built.
