file(REMOVE_RECURSE
  "CMakeFiles/cluster_monitor.dir/cluster_monitor.cpp.o"
  "CMakeFiles/cluster_monitor.dir/cluster_monitor.cpp.o.d"
  "cluster_monitor"
  "cluster_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
