file(REMOVE_RECURSE
  "CMakeFiles/bench_lustre_opens.dir/bench_lustre_opens.cpp.o"
  "CMakeFiles/bench_lustre_opens.dir/bench_lustre_opens.cpp.o.d"
  "bench_lustre_opens"
  "bench_lustre_opens.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lustre_opens.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
