# Empty dependencies file for bench_lustre_opens.
# This may be replaced when dependencies are built.
