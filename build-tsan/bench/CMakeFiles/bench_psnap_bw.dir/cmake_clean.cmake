file(REMOVE_RECURSE
  "CMakeFiles/bench_psnap_bw.dir/bench_psnap_bw.cpp.o"
  "CMakeFiles/bench_psnap_bw.dir/bench_psnap_bw.cpp.o.d"
  "bench_psnap_bw"
  "bench_psnap_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_psnap_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
