# Empty dependencies file for bench_psnap_bw.
# This may be replaced when dependencies are built.
