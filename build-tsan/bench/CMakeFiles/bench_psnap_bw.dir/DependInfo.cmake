
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_psnap_bw.cpp" "bench/CMakeFiles/bench_psnap_bw.dir/bench_psnap_bw.cpp.o" "gcc" "bench/CMakeFiles/bench_psnap_bw.dir/bench_psnap_bw.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/daemon/CMakeFiles/ldmsxx_daemon.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sampler/CMakeFiles/ldmsxx_sampler.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/ldmsxx_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/store/CMakeFiles/ldmsxx_store.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/analysis/CMakeFiles/ldmsxx_analysis.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/baseline/CMakeFiles/ldmsxx_baseline.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/bench_support/CMakeFiles/ldmsxx_bench_support.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/transport/CMakeFiles/ldmsxx_transport.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/core/CMakeFiles/ldmsxx_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/ldmsxx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
