# Empty compiler generated dependencies file for bench_hsn_bandwidth.
# This may be replaced when dependencies are built.
