file(REMOVE_RECURSE
  "CMakeFiles/bench_hsn_bandwidth.dir/bench_hsn_bandwidth.cpp.o"
  "CMakeFiles/bench_hsn_bandwidth.dir/bench_hsn_bandwidth.cpp.o.d"
  "bench_hsn_bandwidth"
  "bench_hsn_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hsn_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
