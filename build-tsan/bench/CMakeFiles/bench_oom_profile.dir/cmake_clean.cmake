file(REMOVE_RECURSE
  "CMakeFiles/bench_oom_profile.dir/bench_oom_profile.cpp.o"
  "CMakeFiles/bench_oom_profile.dir/bench_oom_profile.cpp.o.d"
  "bench_oom_profile"
  "bench_oom_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_oom_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
