# Empty compiler generated dependencies file for bench_oom_profile.
# This may be replaced when dependencies are built.
