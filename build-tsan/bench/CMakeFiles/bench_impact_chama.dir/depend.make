# Empty dependencies file for bench_impact_chama.
# This may be replaced when dependencies are built.
