file(REMOVE_RECURSE
  "CMakeFiles/bench_impact_chama.dir/bench_impact_chama.cpp.o"
  "CMakeFiles/bench_impact_chama.dir/bench_impact_chama.cpp.o.d"
  "bench_impact_chama"
  "bench_impact_chama.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_impact_chama.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
