file(REMOVE_RECURSE
  "CMakeFiles/bench_collection_cost.dir/bench_collection_cost.cpp.o"
  "CMakeFiles/bench_collection_cost.dir/bench_collection_cost.cpp.o.d"
  "bench_collection_cost"
  "bench_collection_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_collection_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
