# Empty compiler generated dependencies file for bench_collection_cost.
# This may be replaced when dependencies are built.
