# Empty compiler generated dependencies file for bench_fanin.
# This may be replaced when dependencies are built.
