file(REMOVE_RECURSE
  "CMakeFiles/bench_fanin.dir/bench_fanin.cpp.o"
  "CMakeFiles/bench_fanin.dir/bench_fanin.cpp.o.d"
  "bench_fanin"
  "bench_fanin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fanin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
