# Empty compiler generated dependencies file for bench_psnap_chama.
# This may be replaced when dependencies are built.
