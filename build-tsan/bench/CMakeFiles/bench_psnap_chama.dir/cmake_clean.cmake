file(REMOVE_RECURSE
  "CMakeFiles/bench_psnap_chama.dir/bench_psnap_chama.cpp.o"
  "CMakeFiles/bench_psnap_chama.dir/bench_psnap_chama.cpp.o.d"
  "bench_psnap_chama"
  "bench_psnap_chama.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_psnap_chama.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
