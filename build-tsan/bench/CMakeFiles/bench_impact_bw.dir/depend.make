# Empty dependencies file for bench_impact_bw.
# This may be replaced when dependencies are built.
