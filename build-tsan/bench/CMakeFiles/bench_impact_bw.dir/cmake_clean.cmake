file(REMOVE_RECURSE
  "CMakeFiles/bench_impact_bw.dir/bench_impact_bw.cpp.o"
  "CMakeFiles/bench_impact_bw.dir/bench_impact_bw.cpp.o.d"
  "bench_impact_bw"
  "bench_impact_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_impact_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
