# Empty dependencies file for bench_footprint.
# This may be replaced when dependencies are built.
