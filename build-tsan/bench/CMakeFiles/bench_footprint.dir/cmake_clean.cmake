file(REMOVE_RECURSE
  "CMakeFiles/bench_footprint.dir/bench_footprint.cpp.o"
  "CMakeFiles/bench_footprint.dir/bench_footprint.cpp.o.d"
  "bench_footprint"
  "bench_footprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
