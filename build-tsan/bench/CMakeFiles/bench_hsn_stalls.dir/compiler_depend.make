# Empty compiler generated dependencies file for bench_hsn_stalls.
# This may be replaced when dependencies are built.
