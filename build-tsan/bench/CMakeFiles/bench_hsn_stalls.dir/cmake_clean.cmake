file(REMOVE_RECURSE
  "CMakeFiles/bench_hsn_stalls.dir/bench_hsn_stalls.cpp.o"
  "CMakeFiles/bench_hsn_stalls.dir/bench_hsn_stalls.cpp.o.d"
  "bench_hsn_stalls"
  "bench_hsn_stalls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hsn_stalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
