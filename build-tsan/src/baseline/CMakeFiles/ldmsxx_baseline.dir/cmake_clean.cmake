file(REMOVE_RECURSE
  "CMakeFiles/ldmsxx_baseline.dir/collectl_sim.cpp.o"
  "CMakeFiles/ldmsxx_baseline.dir/collectl_sim.cpp.o.d"
  "CMakeFiles/ldmsxx_baseline.dir/ganglia_sim.cpp.o"
  "CMakeFiles/ldmsxx_baseline.dir/ganglia_sim.cpp.o.d"
  "libldmsxx_baseline.a"
  "libldmsxx_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldmsxx_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
