
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/collectl_sim.cpp" "src/baseline/CMakeFiles/ldmsxx_baseline.dir/collectl_sim.cpp.o" "gcc" "src/baseline/CMakeFiles/ldmsxx_baseline.dir/collectl_sim.cpp.o.d"
  "/root/repo/src/baseline/ganglia_sim.cpp" "src/baseline/CMakeFiles/ldmsxx_baseline.dir/ganglia_sim.cpp.o" "gcc" "src/baseline/CMakeFiles/ldmsxx_baseline.dir/ganglia_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/sim/CMakeFiles/ldmsxx_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/ldmsxx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
