file(REMOVE_RECURSE
  "libldmsxx_baseline.a"
)
