# Empty dependencies file for ldmsxx_baseline.
# This may be replaced when dependencies are built.
