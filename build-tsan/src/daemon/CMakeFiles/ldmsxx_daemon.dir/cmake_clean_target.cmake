file(REMOVE_RECURSE
  "libldmsxx_daemon.a"
)
