# Empty dependencies file for ldmsxx_daemon.
# This may be replaced when dependencies are built.
