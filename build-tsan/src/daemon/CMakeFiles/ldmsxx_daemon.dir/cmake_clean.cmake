file(REMOVE_RECURSE
  "CMakeFiles/ldmsxx_daemon.dir/config.cpp.o"
  "CMakeFiles/ldmsxx_daemon.dir/config.cpp.o.d"
  "CMakeFiles/ldmsxx_daemon.dir/control.cpp.o"
  "CMakeFiles/ldmsxx_daemon.dir/control.cpp.o.d"
  "CMakeFiles/ldmsxx_daemon.dir/failover.cpp.o"
  "CMakeFiles/ldmsxx_daemon.dir/failover.cpp.o.d"
  "CMakeFiles/ldmsxx_daemon.dir/ldmsd.cpp.o"
  "CMakeFiles/ldmsxx_daemon.dir/ldmsd.cpp.o.d"
  "CMakeFiles/ldmsxx_daemon.dir/plugin_registry.cpp.o"
  "CMakeFiles/ldmsxx_daemon.dir/plugin_registry.cpp.o.d"
  "CMakeFiles/ldmsxx_daemon.dir/scheduler.cpp.o"
  "CMakeFiles/ldmsxx_daemon.dir/scheduler.cpp.o.d"
  "libldmsxx_daemon.a"
  "libldmsxx_daemon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldmsxx_daemon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
