file(REMOVE_RECURSE
  "libldmsxx_analysis.a"
)
