file(REMOVE_RECURSE
  "CMakeFiles/ldmsxx_analysis.dir/timeseries.cpp.o"
  "CMakeFiles/ldmsxx_analysis.dir/timeseries.cpp.o.d"
  "libldmsxx_analysis.a"
  "libldmsxx_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldmsxx_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
