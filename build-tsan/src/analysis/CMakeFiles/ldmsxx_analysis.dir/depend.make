# Empty dependencies file for ldmsxx_analysis.
# This may be replaced when dependencies are built.
