file(REMOVE_RECURSE
  "libldmsxx_core.a"
)
