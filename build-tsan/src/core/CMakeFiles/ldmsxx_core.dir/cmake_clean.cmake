file(REMOVE_RECURSE
  "CMakeFiles/ldmsxx_core.dir/mem_manager.cpp.o"
  "CMakeFiles/ldmsxx_core.dir/mem_manager.cpp.o.d"
  "CMakeFiles/ldmsxx_core.dir/metric_set.cpp.o"
  "CMakeFiles/ldmsxx_core.dir/metric_set.cpp.o.d"
  "CMakeFiles/ldmsxx_core.dir/schema.cpp.o"
  "CMakeFiles/ldmsxx_core.dir/schema.cpp.o.d"
  "CMakeFiles/ldmsxx_core.dir/set_registry.cpp.o"
  "CMakeFiles/ldmsxx_core.dir/set_registry.cpp.o.d"
  "libldmsxx_core.a"
  "libldmsxx_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldmsxx_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
