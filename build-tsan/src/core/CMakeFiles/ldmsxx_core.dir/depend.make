# Empty dependencies file for ldmsxx_core.
# This may be replaced when dependencies are built.
