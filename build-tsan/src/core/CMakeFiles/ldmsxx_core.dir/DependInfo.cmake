
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/mem_manager.cpp" "src/core/CMakeFiles/ldmsxx_core.dir/mem_manager.cpp.o" "gcc" "src/core/CMakeFiles/ldmsxx_core.dir/mem_manager.cpp.o.d"
  "/root/repo/src/core/metric_set.cpp" "src/core/CMakeFiles/ldmsxx_core.dir/metric_set.cpp.o" "gcc" "src/core/CMakeFiles/ldmsxx_core.dir/metric_set.cpp.o.d"
  "/root/repo/src/core/schema.cpp" "src/core/CMakeFiles/ldmsxx_core.dir/schema.cpp.o" "gcc" "src/core/CMakeFiles/ldmsxx_core.dir/schema.cpp.o.d"
  "/root/repo/src/core/set_registry.cpp" "src/core/CMakeFiles/ldmsxx_core.dir/set_registry.cpp.o" "gcc" "src/core/CMakeFiles/ldmsxx_core.dir/set_registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/ldmsxx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
