file(REMOVE_RECURSE
  "libldmsxx_store.a"
)
