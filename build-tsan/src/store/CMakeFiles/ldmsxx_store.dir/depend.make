# Empty dependencies file for ldmsxx_store.
# This may be replaced when dependencies are built.
