
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/store/csv_store.cpp" "src/store/CMakeFiles/ldmsxx_store.dir/csv_store.cpp.o" "gcc" "src/store/CMakeFiles/ldmsxx_store.dir/csv_store.cpp.o.d"
  "/root/repo/src/store/flatfile_store.cpp" "src/store/CMakeFiles/ldmsxx_store.dir/flatfile_store.cpp.o" "gcc" "src/store/CMakeFiles/ldmsxx_store.dir/flatfile_store.cpp.o.d"
  "/root/repo/src/store/memory_store.cpp" "src/store/CMakeFiles/ldmsxx_store.dir/memory_store.cpp.o" "gcc" "src/store/CMakeFiles/ldmsxx_store.dir/memory_store.cpp.o.d"
  "/root/repo/src/store/sos_store.cpp" "src/store/CMakeFiles/ldmsxx_store.dir/sos_store.cpp.o" "gcc" "src/store/CMakeFiles/ldmsxx_store.dir/sos_store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/core/CMakeFiles/ldmsxx_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/ldmsxx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
