file(REMOVE_RECURSE
  "CMakeFiles/ldmsxx_store.dir/csv_store.cpp.o"
  "CMakeFiles/ldmsxx_store.dir/csv_store.cpp.o.d"
  "CMakeFiles/ldmsxx_store.dir/flatfile_store.cpp.o"
  "CMakeFiles/ldmsxx_store.dir/flatfile_store.cpp.o.d"
  "CMakeFiles/ldmsxx_store.dir/memory_store.cpp.o"
  "CMakeFiles/ldmsxx_store.dir/memory_store.cpp.o.d"
  "CMakeFiles/ldmsxx_store.dir/sos_store.cpp.o"
  "CMakeFiles/ldmsxx_store.dir/sos_store.cpp.o.d"
  "libldmsxx_store.a"
  "libldmsxx_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldmsxx_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
