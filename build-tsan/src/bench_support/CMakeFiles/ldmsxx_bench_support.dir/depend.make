# Empty dependencies file for ldmsxx_bench_support.
# This may be replaced when dependencies are built.
