file(REMOVE_RECURSE
  "CMakeFiles/ldmsxx_bench_support.dir/bw_day.cpp.o"
  "CMakeFiles/ldmsxx_bench_support.dir/bw_day.cpp.o.d"
  "CMakeFiles/ldmsxx_bench_support.dir/impact.cpp.o"
  "CMakeFiles/ldmsxx_bench_support.dir/impact.cpp.o.d"
  "CMakeFiles/ldmsxx_bench_support.dir/psnap.cpp.o"
  "CMakeFiles/ldmsxx_bench_support.dir/psnap.cpp.o.d"
  "libldmsxx_bench_support.a"
  "libldmsxx_bench_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldmsxx_bench_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
