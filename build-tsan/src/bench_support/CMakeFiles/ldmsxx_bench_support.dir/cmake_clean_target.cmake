file(REMOVE_RECURSE
  "libldmsxx_bench_support.a"
)
