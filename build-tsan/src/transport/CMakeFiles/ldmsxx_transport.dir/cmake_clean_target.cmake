file(REMOVE_RECURSE
  "libldmsxx_transport.a"
)
