file(REMOVE_RECURSE
  "CMakeFiles/ldmsxx_transport.dir/endpoint.cpp.o"
  "CMakeFiles/ldmsxx_transport.dir/endpoint.cpp.o.d"
  "CMakeFiles/ldmsxx_transport.dir/fabric.cpp.o"
  "CMakeFiles/ldmsxx_transport.dir/fabric.cpp.o.d"
  "CMakeFiles/ldmsxx_transport.dir/local_transport.cpp.o"
  "CMakeFiles/ldmsxx_transport.dir/local_transport.cpp.o.d"
  "CMakeFiles/ldmsxx_transport.dir/message.cpp.o"
  "CMakeFiles/ldmsxx_transport.dir/message.cpp.o.d"
  "CMakeFiles/ldmsxx_transport.dir/rdma_transport.cpp.o"
  "CMakeFiles/ldmsxx_transport.dir/rdma_transport.cpp.o.d"
  "CMakeFiles/ldmsxx_transport.dir/registry.cpp.o"
  "CMakeFiles/ldmsxx_transport.dir/registry.cpp.o.d"
  "CMakeFiles/ldmsxx_transport.dir/sock_transport.cpp.o"
  "CMakeFiles/ldmsxx_transport.dir/sock_transport.cpp.o.d"
  "libldmsxx_transport.a"
  "libldmsxx_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldmsxx_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
