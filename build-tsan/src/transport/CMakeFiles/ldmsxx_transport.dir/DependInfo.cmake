
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/endpoint.cpp" "src/transport/CMakeFiles/ldmsxx_transport.dir/endpoint.cpp.o" "gcc" "src/transport/CMakeFiles/ldmsxx_transport.dir/endpoint.cpp.o.d"
  "/root/repo/src/transport/fabric.cpp" "src/transport/CMakeFiles/ldmsxx_transport.dir/fabric.cpp.o" "gcc" "src/transport/CMakeFiles/ldmsxx_transport.dir/fabric.cpp.o.d"
  "/root/repo/src/transport/local_transport.cpp" "src/transport/CMakeFiles/ldmsxx_transport.dir/local_transport.cpp.o" "gcc" "src/transport/CMakeFiles/ldmsxx_transport.dir/local_transport.cpp.o.d"
  "/root/repo/src/transport/message.cpp" "src/transport/CMakeFiles/ldmsxx_transport.dir/message.cpp.o" "gcc" "src/transport/CMakeFiles/ldmsxx_transport.dir/message.cpp.o.d"
  "/root/repo/src/transport/rdma_transport.cpp" "src/transport/CMakeFiles/ldmsxx_transport.dir/rdma_transport.cpp.o" "gcc" "src/transport/CMakeFiles/ldmsxx_transport.dir/rdma_transport.cpp.o.d"
  "/root/repo/src/transport/registry.cpp" "src/transport/CMakeFiles/ldmsxx_transport.dir/registry.cpp.o" "gcc" "src/transport/CMakeFiles/ldmsxx_transport.dir/registry.cpp.o.d"
  "/root/repo/src/transport/sock_transport.cpp" "src/transport/CMakeFiles/ldmsxx_transport.dir/sock_transport.cpp.o" "gcc" "src/transport/CMakeFiles/ldmsxx_transport.dir/sock_transport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/core/CMakeFiles/ldmsxx_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/ldmsxx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
