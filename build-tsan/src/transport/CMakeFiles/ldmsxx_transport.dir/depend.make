# Empty dependencies file for ldmsxx_transport.
# This may be replaced when dependencies are built.
