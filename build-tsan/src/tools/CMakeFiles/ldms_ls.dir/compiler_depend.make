# Empty compiler generated dependencies file for ldms_ls.
# This may be replaced when dependencies are built.
