file(REMOVE_RECURSE
  "CMakeFiles/ldms_ls.dir/ldms_ls_main.cpp.o"
  "CMakeFiles/ldms_ls.dir/ldms_ls_main.cpp.o.d"
  "ldms_ls"
  "ldms_ls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldms_ls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
