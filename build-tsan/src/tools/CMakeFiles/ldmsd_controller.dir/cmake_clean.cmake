file(REMOVE_RECURSE
  "CMakeFiles/ldmsd_controller.dir/ldmsd_controller_main.cpp.o"
  "CMakeFiles/ldmsd_controller.dir/ldmsd_controller_main.cpp.o.d"
  "ldmsd_controller"
  "ldmsd_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldmsd_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
