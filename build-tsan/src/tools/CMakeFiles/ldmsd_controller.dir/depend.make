# Empty dependencies file for ldmsd_controller.
# This may be replaced when dependencies are built.
