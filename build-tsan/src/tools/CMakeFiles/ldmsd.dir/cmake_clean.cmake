file(REMOVE_RECURSE
  "CMakeFiles/ldmsd.dir/ldmsd_main.cpp.o"
  "CMakeFiles/ldmsd.dir/ldmsd_main.cpp.o.d"
  "ldmsd"
  "ldmsd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldmsd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
