# Empty dependencies file for ldmsd.
# This may be replaced when dependencies are built.
