file(REMOVE_RECURSE
  "libldmsxx_sim.a"
)
