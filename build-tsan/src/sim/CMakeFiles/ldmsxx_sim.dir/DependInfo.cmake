
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cluster.cpp" "src/sim/CMakeFiles/ldmsxx_sim.dir/cluster.cpp.o" "gcc" "src/sim/CMakeFiles/ldmsxx_sim.dir/cluster.cpp.o.d"
  "/root/repo/src/sim/data_source.cpp" "src/sim/CMakeFiles/ldmsxx_sim.dir/data_source.cpp.o" "gcc" "src/sim/CMakeFiles/ldmsxx_sim.dir/data_source.cpp.o.d"
  "/root/repo/src/sim/gemini.cpp" "src/sim/CMakeFiles/ldmsxx_sim.dir/gemini.cpp.o" "gcc" "src/sim/CMakeFiles/ldmsxx_sim.dir/gemini.cpp.o.d"
  "/root/repo/src/sim/node.cpp" "src/sim/CMakeFiles/ldmsxx_sim.dir/node.cpp.o" "gcc" "src/sim/CMakeFiles/ldmsxx_sim.dir/node.cpp.o.d"
  "/root/repo/src/sim/sim_data_source.cpp" "src/sim/CMakeFiles/ldmsxx_sim.dir/sim_data_source.cpp.o" "gcc" "src/sim/CMakeFiles/ldmsxx_sim.dir/sim_data_source.cpp.o.d"
  "/root/repo/src/sim/workload.cpp" "src/sim/CMakeFiles/ldmsxx_sim.dir/workload.cpp.o" "gcc" "src/sim/CMakeFiles/ldmsxx_sim.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/ldmsxx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
