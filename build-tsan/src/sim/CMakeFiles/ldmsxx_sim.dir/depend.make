# Empty dependencies file for ldmsxx_sim.
# This may be replaced when dependencies are built.
