file(REMOVE_RECURSE
  "CMakeFiles/ldmsxx_sim.dir/cluster.cpp.o"
  "CMakeFiles/ldmsxx_sim.dir/cluster.cpp.o.d"
  "CMakeFiles/ldmsxx_sim.dir/data_source.cpp.o"
  "CMakeFiles/ldmsxx_sim.dir/data_source.cpp.o.d"
  "CMakeFiles/ldmsxx_sim.dir/gemini.cpp.o"
  "CMakeFiles/ldmsxx_sim.dir/gemini.cpp.o.d"
  "CMakeFiles/ldmsxx_sim.dir/node.cpp.o"
  "CMakeFiles/ldmsxx_sim.dir/node.cpp.o.d"
  "CMakeFiles/ldmsxx_sim.dir/sim_data_source.cpp.o"
  "CMakeFiles/ldmsxx_sim.dir/sim_data_source.cpp.o.d"
  "CMakeFiles/ldmsxx_sim.dir/workload.cpp.o"
  "CMakeFiles/ldmsxx_sim.dir/workload.cpp.o.d"
  "libldmsxx_sim.a"
  "libldmsxx_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldmsxx_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
