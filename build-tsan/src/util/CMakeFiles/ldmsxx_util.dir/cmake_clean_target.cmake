file(REMOVE_RECURSE
  "libldmsxx_util.a"
)
