# Empty dependencies file for ldmsxx_util.
# This may be replaced when dependencies are built.
