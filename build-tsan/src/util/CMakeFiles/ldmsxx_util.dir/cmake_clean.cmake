file(REMOVE_RECURSE
  "CMakeFiles/ldmsxx_util.dir/clock.cpp.o"
  "CMakeFiles/ldmsxx_util.dir/clock.cpp.o.d"
  "CMakeFiles/ldmsxx_util.dir/csv.cpp.o"
  "CMakeFiles/ldmsxx_util.dir/csv.cpp.o.d"
  "CMakeFiles/ldmsxx_util.dir/logging.cpp.o"
  "CMakeFiles/ldmsxx_util.dir/logging.cpp.o.d"
  "CMakeFiles/ldmsxx_util.dir/stats.cpp.o"
  "CMakeFiles/ldmsxx_util.dir/stats.cpp.o.d"
  "CMakeFiles/ldmsxx_util.dir/strings.cpp.o"
  "CMakeFiles/ldmsxx_util.dir/strings.cpp.o.d"
  "CMakeFiles/ldmsxx_util.dir/thread_pool.cpp.o"
  "CMakeFiles/ldmsxx_util.dir/thread_pool.cpp.o.d"
  "libldmsxx_util.a"
  "libldmsxx_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldmsxx_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
