file(REMOVE_RECURSE
  "CMakeFiles/ldmsxx_sampler.dir/fs_net_samplers.cpp.o"
  "CMakeFiles/ldmsxx_sampler.dir/fs_net_samplers.cpp.o.d"
  "CMakeFiles/ldmsxx_sampler.dir/proc_samplers.cpp.o"
  "CMakeFiles/ldmsxx_sampler.dir/proc_samplers.cpp.o.d"
  "CMakeFiles/ldmsxx_sampler.dir/register.cpp.o"
  "CMakeFiles/ldmsxx_sampler.dir/register.cpp.o.d"
  "CMakeFiles/ldmsxx_sampler.dir/sampler_base.cpp.o"
  "CMakeFiles/ldmsxx_sampler.dir/sampler_base.cpp.o.d"
  "CMakeFiles/ldmsxx_sampler.dir/sys_samplers.cpp.o"
  "CMakeFiles/ldmsxx_sampler.dir/sys_samplers.cpp.o.d"
  "libldmsxx_sampler.a"
  "libldmsxx_sampler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldmsxx_sampler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
