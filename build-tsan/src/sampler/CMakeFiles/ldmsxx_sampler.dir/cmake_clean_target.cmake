file(REMOVE_RECURSE
  "libldmsxx_sampler.a"
)
