# Empty dependencies file for ldmsxx_sampler.
# This may be replaced when dependencies are built.
