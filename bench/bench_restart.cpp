// T-restart (ISSUE 8): the unattended restart drill at aggregator scale.
// An aggregator that pulls 1k / 8k producers persists its cluster registry
// (daemon/registry.hpp) and, after a crash, must come back from that file
// alone. We measure the three legs of that path at each scale:
//
//   save    — serialize + atomic write (tmp + fsync + rename) of the full
//             registry: the cost of every eager topology save;
//   load    — read + crc check + strict parse of the file;
//   restore — a bare Ldmsd reconstituting every producer, the store
//             policies, and the owned aggregation tree from the snapshot
//             (Ldmsd::RestoreFromRegistry), i.e. time-to-resume after boot.
//
// File bytes (and bytes per producer) are format-determined — identical on
// any machine — and regression-gated against
// bench/baselines/BENCH_restart.json by scripts/bench_compare.py; the _ms
// legs are machine-dependent and reported for trend only.
// LDMSXX_BENCH_SMOKE=1 keeps the same scales (so byte metrics stay
// comparable) and only trims the timing repetitions.
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "daemon/ldmsd.hpp"
#include "daemon/plugin_registry.hpp"
#include "daemon/registry.hpp"
#include "transport/fabric.hpp"
#include "transport/local_transport.hpp"
#include "transport/registry.hpp"

namespace ldmsxx::bench {
namespace {

/// A realistic aggregator snapshot: N producers with freshness metadata,
/// two store policies, and the aggregation tree the daemon roots.
RegistrySnapshot MakeSnapshot(int producers) {
  RegistrySnapshot snap;
  snap.daemon_name = "restart-bench";
  snap.saved_tick = 86400ull * kNsPerSec;
  snap.producers.reserve(static_cast<std::size_t>(producers));
  for (int i = 0; i < producers; ++i) {
    const std::string node = "node" + std::to_string(i);
    ProducerRecord p;
    p.name = node;
    p.transport = "local";
    p.address = node + "/listen";
    p.interval = kNsPerSec;
    p.set_instances = {node + "/meminfo", node + "/vmstat"};
    p.auth_key_id = 1;
    p.last_seen = snap.saved_tick - static_cast<TimeNs>(i % 7) * kNsPerMs;
    p.schema_digests = {{"meminfo", 0x9e3779b97f4a7c15ull + i},
                        {"vmstat", 0xc2b2ae3d27d4eb4full + i}};
    snap.producers.push_back(std::move(p));
  }
  StoreRecord primary;
  primary.name = "primary";
  primary.plugin = "store_mem";
  snap.stores.push_back(primary);
  StoreRecord secondary = primary;
  secondary.name = "secondary";
  snap.stores.push_back(secondary);
  snap.tree.present = true;
  snap.tree.role = "root";
  snap.tree.seed = 2014;
  for (int i = 0; i < producers; ++i) {
    snap.tree.samplers.push_back(
        {"node" + std::to_string(i), static_cast<std::uint64_t>(i)});
  }
  for (int j = 0; j < producers / 250; ++j) {
    snap.tree.leaves.push_back("leaf" + std::to_string(j));
  }
  return snap;
}

struct ScaleResult {
  std::uint64_t file_bytes = 0;
  std::uint64_t records = 0;
  double save_ms = 0.0;
  double load_ms = 0.0;
  double restore_ms = 0.0;
  std::size_t restored_producers = 0;
};

ScaleResult MeasureScale(const std::string& dir, int producers, int reps) {
  const std::string path =
      dir + "/restart" + std::to_string(producers) + ".registry";
  const RegistrySnapshot snap = MakeSnapshot(producers);
  ScaleResult result;
  result.file_bytes = SerializeRegistry(snap).size();

  // Leg 1: eager-save cost (serialize + tmp + fsync + rename).
  {
    ClusterRegistry reg(path);
    for (const auto& p : snap.producers) reg.UpsertProducer(p);
    for (const auto& s : snap.stores) reg.UpsertStore(s);
    reg.SetTree(snap.tree);
    reg.SetMeta(snap.daemon_name, snap.saved_tick);
    double total = 0.0;
    for (int r = 0; r < reps; ++r) {
      total += TimeSeconds([&] { (void)reg.Save(); });
    }
    result.save_ms = total / reps * 1e3;
  }

  // Leg 2: load + crc + strict parse.
  {
    double total = 0.0;
    for (int r = 0; r < reps; ++r) {
      ClusterRegistry reg(path);
      total += TimeSeconds([&] { (void)reg.Load(); });
      result.records = reg.stats().last_load_records;
    }
    result.load_ms = total / reps * 1e3;
  }

  // Leg 3: a bare daemon resuming the whole topology from the file. The
  // producers are never connected (no scheduler runs): this isolates the
  // reconstitution cost — parse, producer/store/tree rebuild, re-save.
  {
    Fabric fabric;
    TransportRegistry transports;
    transports.Add(std::make_shared<LocalTransport>(&fabric));
    RegisterBuiltinStores();  // "store_mem" for the persisted policies
    SimClock clock(0);
    LdmsdOptions opts;
    opts.name = "restart-bench";
    opts.worker_threads = 0;
    opts.connection_threads = 0;
    opts.store_threads = 0;
    opts.log_level = LogLevel::kOff;
    opts.clock = &clock;
    opts.transports = &transports;
    opts.registry_path = path;
    opts.registry_snapshot_interval = 0;
    Ldmsd daemon(opts);
    Status st;
    result.restore_ms = TimeSeconds([&] {
                          st = daemon.RestoreFromRegistry(
                              &PluginRegistry::Instance());
                        }) *
                        1e3;
    if (!st.ok()) {
      std::fprintf(stderr, "restore failed: %s\n", st.ToString().c_str());
      std::exit(1);
    }
    for (int i = 0; i < producers; ++i) {
      if (daemon.producer_status("node" + std::to_string(i)).known) {
        ++result.restored_producers;
      }
    }
  }
  return result;
}

}  // namespace
}  // namespace ldmsxx::bench

int main() {
  using namespace ldmsxx;
  using namespace ldmsxx::bench;

  Banner("T-restart", "registry save/load/reconstitute at 1k/8k producers");
  PaperRow("continuous monitoring must survive daemon restarts without "
           "operator reconfiguration (\"no operator action\")");

  std::string dir = "/tmp/ldmsxx_bench_restart_XXXXXX";
  if (::mkdtemp(dir.data()) == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    return 1;
  }
  const int reps = SmokeMode() ? 1 : 5;
  const int scales[] = {1000, 8000};

  JsonWriter json;
  json.BeginObject();
  json.Field("bench", std::string("restart"));
  json.Field("smoke", SmokeMode());
  json.BeginArray("scales");
  for (const int producers : scales) {
    const ScaleResult r = MeasureScale(dir, producers, reps);
    MeasuredRow(
        "%5d producers: save %.2f ms, load %.2f ms, reconstitute %.2f ms; "
        "file %.1f KB (%.1f B/producer), %llu records, %zu restored",
        producers, r.save_ms, r.load_ms, r.restore_ms,
        static_cast<double>(r.file_bytes) / 1e3,
        static_cast<double>(r.file_bytes) / producers,
        static_cast<unsigned long long>(r.records), r.restored_producers);
    if (r.restored_producers != static_cast<std::size_t>(producers)) {
      std::fprintf(stderr, "restore dropped producers: %zu of %d\n",
                   r.restored_producers, producers);
      return 1;
    }
    json.BeginObject();
    json.Field("producers", producers);
    json.Field("file_bytes", r.file_bytes);
    json.Field("bytes_per_producer",
               static_cast<double>(r.file_bytes) / producers);
    json.Field("records", r.records);
    json.Field("save_ms", r.save_ms);
    json.Field("load_ms", r.load_ms);
    json.Field("restore_ms", r.restore_ms);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  if (!json.WriteFile("BENCH_restart.json")) {
    std::fprintf(stderr, "failed to write BENCH_restart.json\n");
    return 1;
  }
  NoteRow("file bytes are format-determined and regression-gated "
          "(bench_compare.py); _ms legs are machine-dependent trend data");
  NoteRow("machine-readable results: BENCH_restart.json");
  return 0;
}
