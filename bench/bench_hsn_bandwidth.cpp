// Figure 10 (§VI-A2): percent of theoretical maximum bandwidth used in the
// Y+ direction per node over the same simulated day. Paper features: the
// day's maximum (~63%) is "significantly higher than typically observed
// values in the system over this time and is readily apparent".
// Writes bench_out/fig10_grid.csv.
#include <filesystem>
#include <vector>

#include "bench/bench_common.hpp"
#include "bench_support/bw_day.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"

int main() {
  using namespace ldmsxx;
  using namespace ldmsxx::bench;

  Banner("Figure 10", "percent peak bandwidth used (Y+) over a 24 h day");
  PaperRow("day max ~63%%, far above typical values; maximum readily");
  PaperRow("apparent against the background");

  BwDayConfig config;
  if (std::getenv("LDMSXX_FULL_TORUS") != nullptr) {
    config.dims = {24, 24, 24};
  }
  const BwDayResult day = RunBlueWatersDay(config);

  // Distribution of all Y+ %bw samples.
  std::vector<double> all;
  all.reserve(day.rows.size());
  for (const auto& row : day.rows) all.push_back(row.values[1]);
  const double p50 = Percentile(all, 0.5);
  const double p99 = Percentile(all, 0.99);

  MeasuredRow("max %%bandwidth (Y+): %.1f%% at minute %llu", day.max_bw,
              static_cast<unsigned long long>(day.max_bw_time / kNsPerMin));
  MeasuredRow("typical values: median %.2f%%, p99 %.1f%%", p50, p99);
  MeasuredRow("max / median ratio: %.0fx (the paper's 'readily apparent' "
              "separation)",
              day.max_bw / std::max(p50, 0.01));

  std::filesystem::create_directories("bench_out");
  CsvWriter grid("bench_out/fig10_grid.csv", true);
  grid.Field(std::string_view("minute"));
  grid.Field(std::string_view("node"));
  grid.Field(std::string_view("pct_bw_yplus"));
  grid.EndRow();
  for (const auto& cell : analysis::NodeTimeGrid(day.rows, 1, 1.0)) {
    grid.Field(static_cast<std::uint64_t>(cell.time / kNsPerMin));
    grid.Field(cell.component_id);
    grid.Field(cell.value);
    grid.EndRow();
  }
  NoteRow("wrote bench_out/fig10_grid.csv");
  return 0;
}
