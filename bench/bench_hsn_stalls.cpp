// Figure 9 (§VI-A1): percent of time spent in credit stalls in the X+
// direction, per node at 1-minute samples over a 24-hour day, plus a torus
// snapshot at the worst moment. Paper features to reproduce:
//   * maximum ~85% time stalled;
//   * persistent features: 40-60% stalls lasting many hours (up to ~20 h),
//     60+% episodes lasting ~1.5 h;
//   * congested regions have extent in X (dimension-ordered routing) and
//     wrap through the torus boundary.
// Writes bench_out/fig9_grid.csv (node-vs-time) and fig9_snapshot.csv.
#include <algorithm>
#include <filesystem>

#include "bench/bench_common.hpp"
#include "bench_support/bw_day.hpp"
#include "util/csv.hpp"

int main() {
  using namespace ldmsxx;
  using namespace ldmsxx::bench;

  Banner("Figure 9", "HSN credit stalls (X+) over a 24 h simulated day");
  PaperRow("max ~85%% stalled; 40-60%% features persist for hours (up to");
  PaperRow("20 h); 60+%% for ~1.5 h; features extend and wrap in X");

  BwDayConfig config;
  if (std::getenv("LDMSXX_FULL_TORUS") != nullptr) {
    config.dims = {24, 24, 24};  // full Blue Waters scale (slow)
  }
  const BwDayResult day = RunBlueWatersDay(config);

  MeasuredRow("max %%time stalled (X+): %.1f%% at minute %llu (node %llu)",
              day.max_stall,
              static_cast<unsigned long long>(day.max_stall_time / kNsPerMin),
              static_cast<unsigned long long>(day.max_stall_node));

  // Persistence analysis: longest continuous runs above 40% and above 60%.
  DurationNs longest40 = 0;
  DurationNs longest60 = 0;
  std::size_t nodes_with_hours_above_40 = 0;
  for (const auto& [node, series] : day.stall_xplus) {
    const DurationNs run40 = analysis::LongestPersistence(series, 40.0);
    const DurationNs run60 = analysis::LongestPersistence(series, 60.0);
    longest40 = std::max(longest40, run40);
    longest60 = std::max(longest60, run60);
    if (run40 >= kNsPerHour) ++nodes_with_hours_above_40;
  }
  MeasuredRow("longest 40+%% stall feature: %.1f h (paper: up to ~20 h)",
              static_cast<double>(longest40) / kNsPerHour);
  MeasuredRow("longest 60+%% stall feature: %.1f h (paper: ~1.5 h)",
              static_cast<double>(longest60) / kNsPerHour);
  MeasuredRow("nodes with 40+%% features lasting >= 1 h: %zu of %zu",
              nodes_with_hours_above_40, day.stall_xplus.size());

  // Snapshot at the worst minute: check the X-extent of hot features.
  auto points =
      analysis::TorusSnapshot(day.rows, 0, day.max_stall_time, day.dims, 20.0);
  // X-extent: for each (y,z) row count hot Geminis sharing it.
  std::map<std::pair<int, int>, int> row_counts;
  for (const auto& p : points) ++row_counts[{p.y, p.z}];
  int max_x_extent = 0;
  for (const auto& [yz, count] : row_counts) {
    max_x_extent = std::max(max_x_extent, count);
  }
  MeasuredRow("snapshot: %zu hot Geminis (>=20%%); max X-extent within one "
              "(y,z) row: %d of %d",
              points.size(), max_x_extent, day.dims.x);

  // Artifacts for plotting.
  std::filesystem::create_directories("bench_out");
  {
    CsvWriter grid("bench_out/fig9_grid.csv", true);
    grid.Field(std::string_view("minute"));
    grid.Field(std::string_view("node"));
    grid.Field(std::string_view("pct_stalled_xplus"));
    grid.EndRow();
    for (const auto& cell : analysis::NodeTimeGrid(day.rows, 0, 1.0)) {
      grid.Field(static_cast<std::uint64_t>(cell.time / kNsPerMin));
      grid.Field(cell.component_id);
      grid.Field(cell.value);
      grid.EndRow();
    }
  }
  {
    CsvWriter snap("bench_out/fig9_snapshot.csv", true);
    snap.Field(std::string_view("x"));
    snap.Field(std::string_view("y"));
    snap.Field(std::string_view("z"));
    snap.Field(std::string_view("pct_stalled_xplus"));
    snap.EndRow();
    for (const auto& p : points) {
      snap.Field(static_cast<std::int64_t>(p.x));
      snap.Field(static_cast<std::int64_t>(p.y));
      snap.Field(static_cast<std::int64_t>(p.z));
      snap.Field(p.value);
      snap.EndRow();
    }
  }
  NoteRow("wrote bench_out/fig9_grid.csv and bench_out/fig9_snapshot.csv");
  NoteRow("set LDMSXX_FULL_TORUS=1 for the full 24x24x24 system");
  return 0;
}
