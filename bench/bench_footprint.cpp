// T-footprint (§IV-D "Resource Footprint"): reproduces every row of the
// paper's resource-footprint discussion —
//   * metric-set sizes: Blue Waters 1 set / 194 metrics ≈ 24 kB, Chama
//     7 sets / 467 metrics ≈ 44 kB, data chunk ≈ 10% of the set;
//   * sampler memory < 2 MB per node, registration of a few kB;
//   * sampler CPU at 1 s sampling ≈ hundredths of a percent of a core;
//   * aggregator CPU/memory for a Chama-shaped L1 (156 samplers, 20 s);
//   * network bytes per collection interval (Chama: ~4 kB/node -> ~5 MB
//     per 20 s across 1296 nodes; Blue Waters: 44 MB/min);
//   * daily CSV storage volume (Chama ~27 GB/day, Blue Waters ~43 GB/day).
#include <chrono>
#include <memory>
#include <thread>

#include "bench/bench_common.hpp"
#include "daemon/ldmsd.hpp"
#include "sampler/samplers.hpp"
#include "sim/cluster.hpp"
#include "store/csv_store.hpp"

namespace ldmsxx::bench {
namespace {

/// Builds the Chama sampler daemon shape: 7 plugin sets totalling ~467
/// metrics (the six real /proc-family plugins plus one synthetic set that
/// stands in for the remaining production metrics).
std::vector<SamplerPluginPtr> ChamaPlugins(const NodeDataSourcePtr& source,
                                           std::size_t* total_metrics) {
  std::vector<SamplerPluginPtr> plugins = {
      std::make_shared<MeminfoSampler>(source),      // 6
      std::make_shared<ProcStatSampler>(source),     // 5
      std::make_shared<LoadAvgSampler>(source),      // 3
      std::make_shared<LustreSampler>(source),       // 6
      std::make_shared<NfsSampler>(source),          // 1
      std::make_shared<NetDevSampler>(source),       // 4
  };
  *total_metrics = 6 + 5 + 3 + 6 + 1 + 4;  // + synthetic below
  return plugins;
}

void SetSizes() {
  Banner("T-footprint/sizes", "metric-set sizes and data/metadata split");
  sim::SimCluster cluster(sim::ClusterConfig::Chama(1));
  cluster.Tick(kNsPerSec);
  auto source = cluster.MakeDataSource(0);
  MemManager mem(8 << 20);
  SetRegistry sets;

  // Blue Waters: one 194-metric set.
  SyntheticSampler bw(source);
  PluginParams bw_params{{"producer", "nid0"},
                         {"instance", "nid0/bw"},
                         {"metrics", "194"}};
  (void)bw.Init(mem, sets, bw_params);
  const auto& bw_set = *bw.Sets().front();
  PaperRow("Blue Waters set: 194 metrics, ~24 kB total");
  MeasuredRow("Blue Waters set: %zu metrics, %.1f kB total (%zu B data)",
              bw_set.schema().metric_count(),
              static_cast<double>(bw_set.total_size()) / 1024.0,
              bw_set.data_size());

  // Chama: 7 sets, 467 metrics total.
  std::size_t real_metrics = 0;
  auto plugins = ChamaPlugins(source, &real_metrics);
  std::size_t total_bytes = 0;
  std::size_t data_bytes = 0;
  PluginParams params{{"producer", "ch0"}};
  for (auto& plugin : plugins) {
    (void)plugin->Init(mem, sets, params);
    const auto& set = *plugin->Sets().front();
    total_bytes += set.total_size();
    data_bytes += set.data_size();
  }
  SyntheticSampler pad(source);
  PluginParams pad_params{{"producer", "ch0"},
                          {"instance", "ch0/rest"},
                          {"metrics", std::to_string(467 - real_metrics)}};
  (void)pad.Init(mem, sets, pad_params);
  total_bytes += pad.Sets().front()->total_size();
  data_bytes += pad.Sets().front()->data_size();
  PaperRow("Chama: 7 sets / 467 metrics, ~44 kB total");
  MeasuredRow("Chama: 7 sets / 467 metrics, %.1f kB total",
              static_cast<double>(total_bytes) / 1024.0);
  PaperRow("data portion roughly 10%% of total set size");
  MeasuredRow("data portion %.1f%% of total set size",
              100.0 * static_cast<double>(data_bytes) /
                  static_cast<double>(total_bytes));

  PaperRow("< 2 MB of memory per node for samplers");
  MeasuredRow("sampler pool in use: %.2f MB (pool reserved: 8 MB)",
              static_cast<double>(mem.bytes_in_use()) / 1024.0 / 1024.0);
}

void SamplerCpu() {
  Banner("T-footprint/sampler-cpu",
         "compute-node sampler CPU at 1 s sampling");
  sim::SimCluster cluster(sim::ClusterConfig::Chama(1));
  cluster.Tick(kNsPerSec);
  auto source = cluster.MakeDataSource(0);

  LdmsdOptions opts;
  opts.name = "ch0";
  opts.worker_threads = 1;
  Ldmsd daemon(opts);
  SamplerConfig sc;
  sc.interval = 100 * kNsPerMs;  // 10x the paper's 1 s rate: CPU% scales /10
  sc.synchronous = true;
  std::size_t real_metrics = 0;
  for (auto& plugin : ChamaPlugins(source, &real_metrics)) {
    (void)daemon.AddSampler(plugin, sc);
  }
  (void)daemon.Start();
  const double wall = TimeSeconds([&] {
    const auto end =
        std::chrono::steady_clock::now() + std::chrono::seconds(3);
    while (std::chrono::steady_clock::now() < end) {
      cluster.Tick(100 * kNsPerMs);
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });
  daemon.Stop();
  const double cpu_frac =
      static_cast<double>(daemon.counters().sample_ns.load()) / 1e9 / wall;
  PaperRow("a few hundredths of a percent of a core at 1 s sampling");
  MeasuredRow("%.4f%% of a core at 100 ms sampling (= %.4f%% at 1 s)",
              100.0 * cpu_frac, 100.0 * cpu_frac / 10.0);
  MeasuredRow("%llu samples, mean %.1f us per sampling pass",
              static_cast<unsigned long long>(
                  daemon.counters().samples.load()),
              static_cast<double>(daemon.counters().sample_ns.load()) /
                  static_cast<double>(daemon.counters().samples.load()) /
                  1000.0);
}

void AggregatorShape() {
  Banner("T-footprint/aggregator",
         "L1 aggregator: 156 samplers, 20 s interval (Chama shape)");
  // One pull cycle over 156 simulated sampler daemons via the rdma-sim
  // transport; CPU%% = cycle_time / interval.
  constexpr int kSamplers = 156;
  sim::SimCluster cluster(sim::ClusterConfig::Chama(kSamplers));
  cluster.Tick(kNsPerSec);

  std::vector<std::unique_ptr<Ldmsd>> samplers;
  std::vector<std::unique_ptr<SimClock>> clocks;  // one per daemon
  for (int n = 0; n < kSamplers; ++n) {
    clocks.push_back(std::make_unique<SimClock>(0));
    LdmsdOptions opts;
    opts.name = cluster.Hostname(n);
    opts.listen_transport = "rdma";
    opts.listen_address = "fp/" + cluster.Hostname(n);
    opts.worker_threads = 0;
    opts.connection_threads = 0;
    opts.store_threads = 0;
    opts.clock = clocks.back().get();
    auto d = std::make_unique<Ldmsd>(opts);
    auto source = cluster.MakeDataSource(n);
    SamplerConfig sc;
    sc.interval = kNsPerSec;
    std::size_t real_metrics = 0;
    for (auto& plugin : ChamaPlugins(source, &real_metrics)) {
      (void)d->AddSampler(plugin, sc);
    }
    SyntheticSampler* pad = nullptr;
    {
      auto p = std::make_shared<SyntheticSampler>(source);
      pad = p.get();
      SamplerConfig psc = sc;
      psc.params["metrics"] = std::to_string(467 - real_metrics);
      psc.params["instance"] = cluster.Hostname(n) + "/rest";
      (void)d->AddSampler(p, psc);
    }
    (void)pad;
    (void)d->Start();
    d->RunUntil(*clocks.back(), clocks.back()->Now() + kNsPerSec + 1);
    samplers.push_back(std::move(d));
  }

  LdmsdOptions agg_opts;
  agg_opts.name = "agg-l1";
  agg_opts.worker_threads = 0;  // collect inline so the cycle is measurable
  agg_opts.connection_threads = 0;
  agg_opts.store_threads = 0;
  agg_opts.set_memory = 64 << 20;
  SimClock agg_clock(0);
  agg_opts.clock = &agg_clock;
  Ldmsd aggregator(agg_opts);
  for (int n = 0; n < kSamplers; ++n) {
    ProducerConfig pc;
    pc.name = cluster.Hostname(n);
    pc.transport = "rdma";
    pc.address = "fp/" + cluster.Hostname(n);
    pc.interval = kNsPerSec;  // sim-time interval; we drive cycles manually
    (void)aggregator.AddProducer(pc);
  }
  (void)aggregator.Start();

  // Cycle 1 includes connect + lookup; later cycles are steady-state pulls.
  double first = TimeSeconds(
      [&] { aggregator.RunUntil(agg_clock, agg_clock.Now() + kNsPerSec); });
  double steady = 0.0;
  constexpr int kCycles = 5;
  for (int c = 0; c < kCycles; ++c) {
    for (std::size_t i = 0; i < samplers.size(); ++i) {
      // Refresh sampler data so pulls see new DGNs.
      samplers[i]->RunUntil(*clocks[i], clocks[i]->Now() + kNsPerSec);
    }
    steady += TimeSeconds(
        [&] { aggregator.RunUntil(agg_clock, agg_clock.Now() + kNsPerSec); });
  }
  steady /= kCycles;

  PaperRow("L1: 7 sets x 156 samplers @ 20 s -> ~0.1%% of a core, 33 MB");
  MeasuredRow("connect+lookup cycle: %.1f ms; steady pull cycle: %.1f ms",
              first * 1e3, steady * 1e3);
  MeasuredRow("=> %.3f%% of a core at a 20 s collection interval",
              100.0 * steady / 20.0);
  MeasuredRow("aggregator set memory: %.1f MB for %zu mirrored sets",
              static_cast<double>(aggregator.memory().bytes_in_use()) / 1024.0 /
                  1024.0,
              aggregator.sets().size());

  // Network volume per interval (the data chunks only).
  std::size_t per_node_data = 0;
  {
    auto names = samplers[0]->sets().List();
    for (const auto& name : names) {
      per_node_data += samplers[0]->sets().Find(name)->data_size();
    }
  }
  PaperRow("Chama: ~4 kB/node/interval -> ~5 MB per 20 s across 1296 nodes");
  MeasuredRow("%.1f kB/node/interval -> %.1f MB per interval across 1296",
              static_cast<double>(per_node_data) / 1024.0,
              static_cast<double>(per_node_data) * 1296.0 / 1024.0 / 1024.0);
}

void StorageVolume() {
  Banner("T-footprint/storage", "daily CSV volume");
  sim::SimCluster cluster(sim::ClusterConfig::Chama(1));
  cluster.Tick(kNsPerSec);
  MemManager mem(8 << 20);
  SetRegistry sets;
  SyntheticSampler sampler(cluster.MakeDataSource(0));
  // base: realistic cumulative-counter magnitudes (13-digit values).
  PluginParams params{{"producer", "ch0"},
                      {"metrics", "467"},
                      {"base", "1400000000000"}};
  (void)sampler.Init(mem, sets, params);
  CsvStore store({"bench_out/footprint_csv"});
  for (int i = 0; i < 100; ++i) {
    (void)sampler.Sample(static_cast<TimeNs>(i) * kNsPerSec);
    (void)store.StoreSet(*sampler.Sets().front());
  }
  (void)store.Flush();
  const double bytes_per_row =
      static_cast<double>(store.bytes_written()) / 100.0;
  // Chama: 1296 nodes, 20 s interval -> 4320 rows/node/day.
  const double chama_day = bytes_per_row * 1296.0 * 4320.0 / 1e9;
  PaperRow("Chama: ~27 GB/day (467 metrics, 1296 nodes, 20 s)");
  MeasuredRow("%.0f B/row -> %.1f GB/day", bytes_per_row, chama_day);

  // Blue Waters: 194 metrics, 27648 nodes, 60 s -> 1440 rows/node/day. The
  // HSN set mixes large cumulative counters with small derived percentages;
  // measure its row size with mid-sized (6-digit) values.
  SyntheticSampler bw_sampler(cluster.MakeDataSource(0));
  PluginParams bw_params{{"producer", "nid0"},
                         {"instance", "nid0/bwvol"},
                         {"metrics", "194"},
                         {"base", "250000"}};
  (void)bw_sampler.Init(mem, sets, bw_params);
  CsvStore bw_store({"bench_out/footprint_csv_bw"});
  for (int i = 0; i < 100; ++i) {
    (void)bw_sampler.Sample(static_cast<TimeNs>(i) * kNsPerSec);
    (void)bw_store.StoreSet(*bw_sampler.Sets().front());
  }
  (void)bw_store.Flush();
  const double bw_bytes_per_row =
      static_cast<double>(bw_store.bytes_written()) / 100.0;
  const double bw_day = bw_bytes_per_row * 27648.0 * 1440.0 / 1e9;
  PaperRow("Blue Waters: ~43 GB/day (194 metrics, 27648 nodes, 60 s)");
  MeasuredRow("%.0f B/row -> %.1f GB/day", bw_bytes_per_row, bw_day);
}

}  // namespace
}  // namespace ldmsxx::bench

int main() {
  ldmsxx::bench::SetSizes();
  ldmsxx::bench::SamplerCpu();
  ldmsxx::bench::AggregatorShape();
  ldmsxx::bench::StorageVolume();
  return 0;
}
