// Ablations for the design decisions DESIGN.md §4 calls out (the ones not
// already covered by bench_collection_cost's metadata-resend ablation):
//
//  A3. Synchronous (wall-aligned) sampling: with sync on, all samplers on a
//      machine fire in the same instant, bounding how many application
//      iterations are perturbed; async spreads firings across the whole
//      interval. Measured as the per-round spread of sample timestamps
//      across daemons.
//  A4. Separate connection thread pool: producers hung in connect must not
//      starve collection. Measured by pointing an aggregator at several
//      slow-connecting dead addresses plus one healthy sampler and
//      comparing collected rows with and without the dedicated pool.
//  A5. Standby (pre-established) failover connections: the paper keeps
//      warm standby connections because "large scale systems ... would
//      lose a lot of data between a primary aggregator going down and
//      another starting up". Measured as the data gap across a failover
//      with a warm standby vs. a cold replacement aggregator.
#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>

#include "bench/bench_common.hpp"
#include "daemon/failover.hpp"
#include "daemon/ldmsd.hpp"
#include "sampler/samplers.hpp"
#include "sim/cluster.hpp"
#include "store/memory_store.hpp"
#include "util/stats.hpp"
#include "transport/local_transport.hpp"

namespace ldmsxx::bench {
namespace {

// ---------------------------------------------------------------------------
// A3: synchronous vs asynchronous sampling alignment
// ---------------------------------------------------------------------------

void SyncSamplingAblation() {
  Banner("Ablation A3", "synchronous (wall-aligned) vs asynchronous sampling");
  PaperRow("synchronized sampling bounds the number of application");
  PaperRow("iterations affected (all nodes sample at the same instant)");

  constexpr int kDaemons = 16;
  constexpr DurationNs kInterval = 100 * kNsPerMs;
  sim::SimCluster cluster(sim::ClusterConfig::Chama(kDaemons));
  cluster.Tick(kNsPerSec);

  auto measure = [&](bool synchronous) {
    std::vector<std::unique_ptr<Ldmsd>> daemons;
    std::vector<MetricSetPtr> sets;
    for (int n = 0; n < kDaemons; ++n) {
      LdmsdOptions opts;
      opts.name = "sync" + std::to_string(synchronous) + "-" +
                  std::to_string(n);
      opts.worker_threads = 1;
      auto d = std::make_unique<Ldmsd>(opts);
      SamplerConfig sc;
      sc.interval = kInterval;
      sc.synchronous = synchronous;
      auto plugin =
          std::make_shared<MeminfoSampler>(cluster.MakeDataSource(n));
      (void)d->AddSampler(plugin, sc);
      sets.push_back(plugin->Sets().front());
      (void)d->Start();
      daemons.push_back(std::move(d));
    }
    // Observe several rounds; for each round, the spread of per-daemon
    // sample timestamps (max - min) within the interval.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    RunningStats spread_us;
    for (int round = 0; round < 10; ++round) {
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(kInterval + 5 * kNsPerMs));
      TimeNs lo = ~TimeNs{0};
      TimeNs hi = 0;
      for (const auto& set : sets) {
        const TimeNs ts = set->timestamp();
        lo = std::min(lo, ts);
        hi = std::max(hi, ts);
      }
      spread_us.Add(static_cast<double>(hi - lo) / 1000.0);
    }
    for (auto& d : daemons) d->Stop();
    return spread_us;
  };

  const RunningStats async_spread = measure(false);
  const RunningStats sync_spread = measure(true);
  MeasuredRow("async: sample-time spread across %d daemons: mean %.0f us "
              "(interval %llu us)",
              kDaemons, async_spread.mean(),
              static_cast<unsigned long long>(kInterval / kNsPerUs));
  MeasuredRow("sync : sample-time spread across %d daemons: mean %.0f us",
              kDaemons, sync_spread.mean());
  MeasuredRow("alignment improvement: %.0fx",
              async_spread.mean() / std::max(sync_spread.mean(), 1.0));
}

// ---------------------------------------------------------------------------
// A4: separate connection pool vs inline connects
// ---------------------------------------------------------------------------

/// Transport whose Connect blocks (a node hung in timeout) before failing.
class SlowConnectTransport final : public Transport {
 public:
  const std::string& name() const override { return name_; }
  Status Listen(const std::string&, ServiceHandler*,
                std::unique_ptr<Listener>*) override {
    return {ErrorCode::kUnsupported, "client-only test transport"};
  }
  Status Connect(const std::string& address,
                 std::unique_ptr<Endpoint>*) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    return {ErrorCode::kDisconnected, "no route to " + address};
  }

 private:
  std::string name_ = "slowconn";
};

void ConnectionPoolAblation() {
  Banner("Ablation A4", "dedicated connection pool vs inline connects");
  PaperRow("connection pool added so connects hung in timeout on problem");
  PaperRow("nodes don't starve collector threads (§IV-B)");

  sim::SimCluster cluster(sim::ClusterConfig::Chama(1));
  cluster.Tick(kNsPerSec);

  TransportRegistry registry;
  registry.Add(std::make_shared<LocalTransport>());
  registry.Add(std::make_shared<SlowConnectTransport>());

  auto measure = [&](std::size_t connection_threads) {
    LdmsdOptions sopts;
    sopts.name = "healthy";
    sopts.listen_transport = "local";
    sopts.listen_address = "abl4/healthy" + std::to_string(connection_threads);
    sopts.worker_threads = 1;
    sopts.transports = &registry;
    Ldmsd sampler(sopts);
    SamplerConfig sc;
    sc.interval = 25 * kNsPerMs;
    (void)sampler.AddSampler(
        std::make_shared<MeminfoSampler>(cluster.MakeDataSource(0)), sc);
    (void)sampler.Start();

    LdmsdOptions aopts;
    aopts.name = "agg";
    aopts.worker_threads = 1;
    aopts.connection_threads = connection_threads;
    aopts.transports = &registry;
    Ldmsd aggregator(aopts);
    auto store = std::make_shared<MemoryStore>();
    (void)aggregator.AddStorePolicy({store, "", ""});
    // The healthy producer connects first; the hung ones then keep a
    // thread busy for 400 ms per connect attempt, retrying every cycle —
    // with a dedicated pool that thread is the connector, without one it
    // is the collector.
    ProducerConfig healthy;
    healthy.name = "healthy";
    healthy.transport = "local";
    healthy.address = sopts.listen_address;
    healthy.interval = 25 * kNsPerMs;
    (void)aggregator.AddProducer(healthy);
    for (int i = 0; i < 4; ++i) {
      ProducerConfig dead;
      dead.name = "hung" + std::to_string(i);
      dead.transport = "slowconn";
      dead.address = "nowhere";
      dead.interval = 25 * kNsPerMs;
      (void)aggregator.AddProducer(dead);
    }
    (void)aggregator.Start();

    const auto end =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(1500);
    while (std::chrono::steady_clock::now() < end) {
      cluster.Tick(25 * kNsPerMs);
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    aggregator.Stop();
    sampler.Stop();
    return store->RowCount("meminfo");
  };

  const std::size_t with_pool = measure(1);
  const std::size_t inline_connects = measure(0);
  MeasuredRow("rows collected from the healthy producer in 1.5 s:");
  MeasuredRow("  with dedicated connection pool : %zu", with_pool);
  MeasuredRow("  connects inline on collectors  : %zu", inline_connects);
  MeasuredRow("starvation factor avoided: %.1fx",
              static_cast<double>(with_pool) /
                  std::max<std::size_t>(inline_connects, 1));
}

// ---------------------------------------------------------------------------
// A5: warm standby vs cold replacement
// ---------------------------------------------------------------------------

void FailoverAblation() {
  Banner("Ablation A5", "warm standby connections vs cold replacement");
  PaperRow("standby connections avoid \"losing a lot of data between a");
  PaperRow("primary aggregator going down and another starting up\"");

  sim::SimCluster cluster(sim::ClusterConfig::Chama(1));
  cluster.Tick(kNsPerSec);
  constexpr DurationNs kInterval = 20 * kNsPerMs;

  auto run_scenario = [&](bool warm_standby) -> double {
    LdmsdOptions sopts;
    sopts.name = "node";
    sopts.listen_transport = "local";
    sopts.listen_address =
        std::string("abl5/node") + (warm_standby ? "w" : "c");
    sopts.worker_threads = 1;
    Ldmsd sampler(sopts);
    SamplerConfig sc;
    sc.interval = kInterval;
    (void)sampler.AddSampler(
        std::make_shared<MeminfoSampler>(cluster.MakeDataSource(0)), sc);
    (void)sampler.Start();

    auto store = std::make_shared<MemoryStore>();
    ProducerConfig pc;
    pc.name = "node";
    pc.transport = "local";
    pc.address = sopts.listen_address;
    pc.interval = kInterval;

    auto primary = std::make_unique<Ldmsd>([&] {
      LdmsdOptions o;
      o.name = "primary";
      o.worker_threads = 1;
      return o;
    }());
    (void)primary->AddStorePolicy({store, "", ""});
    (void)primary->AddProducer(pc);
    (void)primary->Start();

    std::unique_ptr<Ldmsd> backup;
    if (warm_standby) {
      LdmsdOptions o;
      o.name = "backup";
      o.worker_threads = 1;
      backup = std::make_unique<Ldmsd>(o);
      (void)backup->AddStorePolicy({store, "", ""});
      ProducerConfig standby = pc;
      standby.standby = true;
      (void)backup->AddProducer(standby);
      (void)backup->Start();
    }

    auto pump = [&](int ms) {
      const auto end =
          std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
      while (std::chrono::steady_clock::now() < end) {
        cluster.Tick(kInterval);
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    };
    pump(500);

    // Primary dies; measure the storage gap across the transition.
    primary->Stop();
    primary.reset();
    const auto t_down = std::chrono::steady_clock::now();
    if (warm_standby) {
      (void)backup->ActivateStandby("node");  // watchdog notification
    } else {
      // Cold path: a replacement aggregator is created from scratch.
      LdmsdOptions o;
      o.name = "replacement";
      o.worker_threads = 1;
      backup = std::make_unique<Ldmsd>(o);
      (void)backup->AddStorePolicy({store, "", ""});
      (void)backup->AddProducer(pc);
      (void)backup->Start();
    }
    // Wait until data flows again.
    const std::size_t rows_at_down = store->RowCount("meminfo");
    double gap_ms = -1.0;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (std::chrono::steady_clock::now() < deadline) {
      cluster.Tick(kInterval);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      if (store->RowCount("meminfo") > rows_at_down) {
        gap_ms = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - t_down)
                     .count();
        break;
      }
    }
    backup->Stop();
    sampler.Stop();
    return gap_ms;
  };

  const double warm_gap = run_scenario(true);
  const double cold_gap = run_scenario(false);
  MeasuredRow("data gap across failover: warm standby %.0f ms, cold "
              "replacement %.0f ms",
              warm_gap, cold_gap);
  NoteRow("cold includes connect+dir+lookup; warm resumes on the next pull");
  NoteRow("cycle. At Blue Waters scale the cold path also re-looks-up 6912");
  NoteRow("sets per aggregator, which is the data loss the paper avoids.");
}

}  // namespace
}  // namespace ldmsxx::bench

int main() {
  ldmsxx::bench::SyncSamplingAblation();
  ldmsxx::bench::ConnectionPoolAblation();
  ldmsxx::bench::FailoverAblation();
  return 0;
}
