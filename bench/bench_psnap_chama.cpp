// Figure 8 (§V-B4): PSNAP on Chama under three monitoring configurations:
//   NM      — no monitoring
//   HM_HALF — 1 s sampling with about half the samplers
//   HM      — 1 s sampling with the full sampler list
// The paper finds NM and HM_HALF comparable, while HM shows substantially
// more events in the tail: "sampling impact is expected to be subject to
// the number of samplers and the time a sampler spends in sampling."
#include <algorithm>
#include <memory>
#include <thread>

#include "bench/bench_common.hpp"
#include "bench_support/psnap.hpp"
#include "daemon/ldmsd.hpp"
#include "sim/cluster.hpp"
#include "sampler/samplers.hpp"

namespace ldmsxx::bench {
namespace {

/// @param samplers 0 = unmonitored; otherwise number of sampler plugins.
PsnapResult RunCase(unsigned samplers, const PsnapConfig& config) {
  std::unique_ptr<Ldmsd> daemon;
  if (samplers > 0) {
    LdmsdOptions opts;
    opts.name = "psnap-chama";
    opts.worker_threads = 1;
    opts.log_level = LogLevel::kError;
    daemon = std::make_unique<Ldmsd>(opts);
    auto source = std::make_shared<RealFsDataSource>();
    // Lustre/NFS do not exist on a dev box; those two samplers parse the
    // simulated sources instead (same parse work per pass).
    static sim::SimCluster sim_cluster(sim::ClusterConfig::Chama(1));
    sim_cluster.Tick(kNsPerSec);
    auto sim_source = sim_cluster.MakeDataSource(0);
    SamplerConfig sc;
    sc.interval = kNsPerSec;
    sc.synchronous = true;
    std::vector<SamplerPluginPtr> all = {
        std::make_shared<MeminfoSampler>(source),
        std::make_shared<ProcStatSampler>(source),
        std::make_shared<LoadAvgSampler>(source),
        std::make_shared<NetDevSampler>(source),
        std::make_shared<NfsSampler>(sim_source),
        std::make_shared<LustreSampler>(sim_source),
    };
    for (unsigned i = 0; i < samplers && i < all.size(); ++i) {
      (void)daemon->AddSampler(all[i], sc);
    }
    (void)daemon->Start();
  }
  PsnapResult result = RunPsnap(config);
  if (daemon != nullptr) daemon->Stop();
  return result;
}

}  // namespace
}  // namespace ldmsxx::bench

int main() {
  using namespace ldmsxx;
  using namespace ldmsxx::bench;

  Banner("Figure 8", "PSNAP on Chama: NM vs HM_HALF vs HM (1 s sampling)");
  PaperRow("NM and HM_HALF comparable; HM substantially heavier tail");

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  PsnapConfig config;
  config.threads = hw > 1 ? std::min(4u, hw - 1) : 1u;
  config.iterations = 80000;

  const PsnapResult nm = RunCase(0, config);
  const PsnapResult hm_half = RunCase(3, config);
  const PsnapResult hm = RunCase(6, config);

  std::printf("\n  %-8s %10s %10s %10s %10s\n", "case", "mean_us", "max_us",
              ">+10us", ">+50us");
  auto row = [&](const char* label, const PsnapResult& r) {
    std::printf("  %-8s %10.2f %10.0f %10llu %10llu\n", label,
                r.stats.mean(), r.stats.max(),
                static_cast<unsigned long long>(r.TailEvents(10)),
                static_cast<unsigned long long>(r.TailEvents(50)));
  };
  row("NM", nm);
  row("HM_HALF", hm_half);
  row("HM", hm);

  MeasuredRow("tail(>+10us): NM %llu, HM_HALF %llu, HM %llu",
              static_cast<unsigned long long>(nm.TailEvents(10)),
              static_cast<unsigned long long>(hm_half.TailEvents(10)),
              static_cast<unsigned long long>(hm.TailEvents(10)));
  NoteRow("expected ordering NM <= HM_HALF <= HM; absolute counts depend on");
  NoteRow("machine noise — compare ordering and relative growth, not counts.");
  return 0;
}
