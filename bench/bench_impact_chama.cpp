// Figure 7 (§V-B): Chama application ensemble under {NM (unmonitored),
// LM (20 s sampling), HM (1 s sampling)}. The paper's finding is again a
// null result: for Nalu, CTH, and Adagio "LDMS monitoring appears to have
// no practical impact on the run time", with run-to-run variation dwarfing
// any monitoring effect. Kernels approximate the three application shapes:
// Nalu (implicit CG + MPI sync heavy), CTH (large-message halo + AMR), and
// Adagio (contact mechanics compute + I/O dumps -> CG shape).
#include <algorithm>
#include <thread>

#include "bench/bench_common.hpp"
#include "bench_support/impact.hpp"
#include "bench_support/psnap.hpp"

int main() {
  using namespace ldmsxx;
  using namespace ldmsxx::bench;

  Banner("Figure 7", "Chama application runtimes under NM / 20 s / 1 s");
  PaperRow("no appreciable impact from LDMS compared to run-to-run noise");

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned threads = hw >= 4 ? 4 : (hw >= 2 ? 2 : 1);
  constexpr std::uint64_t kSteps = 250;
  const std::uint64_t work =
      CalibrateLoop(1500 * kNsPerMs / kSteps / threads);
  struct App {
    const char* name;
    AppKernel kernel;
  };
  const App apps[] = {
      {"Nalu-like(1536PE)", MakeCgKernel(threads, kSteps, work)},
      {"CTH-like(1024PE)", MakeHaloKernel(threads, kSteps, work)},
      {"Adagio-like(512PE)", MakeCgKernel(threads, kSteps / 2, work * 2)},
  };
  const MonitorConfig configs[] = {
      {"NM", false, 0, false, 6, true},
      {"LM-20s", true, 20 * kNsPerSec, true, 6, true},
      {"HM-1s", true, kNsPerSec, true, 6, true},
  };
  constexpr unsigned kReps = 3;

  std::printf("\n  %-20s %-8s %10s %18s\n", "app", "config", "norm_mean",
              "range[min,max] s");
  for (const App& app : apps) {
    double base_mean = 0.0;
    for (const MonitorConfig& config : configs) {
      ImpactResult result =
          RunUnderMonitoring(app.name, app.kernel, config, kReps);
      if (config.label == std::string("NM")) base_mean = result.Mean();
      std::printf("  %-20s %-8s %10.4f   [%7.3f, %7.3f]\n", app.name,
                  config.label.c_str(), result.Mean() / base_mean,
                  result.Min(), result.Max());
    }
  }
  NoteRow("expected: normalized means ~1.0 for all configs (null result).");
  return 0;
}
