// Figure 12 (§VI-B): application profile built from LDMS data joined with
// scheduler data — Active memory per node for a 64-node job terminated by
// the OOM killer. Paper features: total per-node memory 64 GB; memory
// imbalance across nodes and changing resource demands over time are
// "readily apparent"; grey pre/post margins verify node state around the
// job. Writes bench_out/fig12_profile.csv.
#include <filesystem>

#include "analysis/timeseries.hpp"
#include "bench/bench_common.hpp"
#include "core/mem_manager.hpp"
#include "core/set_registry.hpp"
#include "sampler/samplers.hpp"
#include "sim/cluster.hpp"
#include "store/memory_store.hpp"
#include "util/csv.hpp"

int main() {
  using namespace ldmsxx;
  using namespace ldmsxx::bench;

  Banner("Figure 12", "64-node job killed by the OOM killer: memory profile");
  PaperRow("64 GB/node; imbalance and demand growth readily apparent;");
  PaperRow("job terminated by the OOM killer");

  constexpr int kNodes = 96;
  constexpr DurationNs kInterval = 20 * kNsPerSec;  // Chama cadence
  sim::SimCluster cluster(sim::ClusterConfig::Chama(kNodes));

  sim::JobSpec job;
  job.job_id = 64;
  job.name = "oom-victim";
  job.user = "user1";
  job.node_count = 64;
  job.arrival = 10 * kNsPerMin;
  job.duration = 24 * kNsPerHour;  // would run a day; OOM intervenes
  job.profile = sim::JobProfile::MemoryRamp(/*growth kB/s=*/7000.0);
  if (!cluster.Submit(job).ok()) return 1;

  MemManager mem(static_cast<std::size_t>(kNodes) * 16 << 10);
  SetRegistry sets;
  MemoryStore store;
  std::vector<std::shared_ptr<MeminfoSampler>> samplers;
  for (int n = 0; n < kNodes; ++n) {
    auto sampler = std::make_shared<MeminfoSampler>(cluster.MakeDataSource(n));
    PluginParams params{{"producer", cluster.Hostname(n)},
                        {"component_id", std::to_string(n)}};
    if (!sampler->Init(mem, sets, params).ok()) return 1;
    samplers.push_back(std::move(sampler));
  }

  while (true) {
    cluster.Tick(kInterval);
    for (auto& sampler : samplers) {
      (void)sampler->Sample(cluster.now());
      (void)store.StoreSet(*sampler->Sets().front());
    }
    const auto& record = cluster.jobs().front();
    if (record.finished && cluster.now() > record.end_time + 10 * kNsPerMin) {
      break;
    }
    if (cluster.now() > 30 * kNsPerHour) break;  // safety stop
  }

  const sim::JobRecord& record = cluster.jobs().front();
  MeasuredRow("job ran %.0f min on %zu nodes; OOM-killed: %s",
              static_cast<double>(record.end_time - record.start_time) /
                  kNsPerMin,
              record.nodes.size(), record.oom_killed ? "YES" : "no");

  auto names = store.MetricNames("meminfo");
  const auto active_idx = analysis::MetricIndex(names, "Active");
  if (!active_idx) return 1;
  auto profile =
      analysis::BuildJobProfile(record, store.Rows("meminfo"), *active_idx,
                                "Active", 10 * kNsPerMin, 10 * kNsPerMin);

  // Imbalance: spread of per-node Active memory inside the job window.
  const double spread_gb = profile.ImbalanceSpread() / 1024.0 / 1024.0;
  MeasuredRow("per-node Active spread during job: %.1f GB of 64 GB total",
              spread_gb);

  double peak_gb = 0.0;
  for (const auto& [node, series] : profile.per_node) {
    peak_gb = std::max(peak_gb, series.MaxValue() / 1024.0 / 1024.0);
  }
  MeasuredRow("leader node peak Active: %.1f GB (OOM threshold ~62.7 GB)",
              peak_gb);

  // Pre/post margins: node state quiet before the job and after the kill.
  double pre_max = 0.0;
  double post_max = 0.0;
  for (const auto& [node, series] : profile.per_node) {
    for (std::size_t i = 0; i < series.times.size(); ++i) {
      const double gb = series.values[i] / 1024.0 / 1024.0;
      if (series.times[i] < record.start_time) pre_max = std::max(pre_max, gb);
      if (series.times[i] > record.end_time + kNsPerMin) {
        post_max = std::max(post_max, gb);
      }
    }
  }
  MeasuredRow("margins: pre-job max %.1f GB, post-kill max %.1f GB "
              "(nodes verified idle)",
              pre_max, post_max);

  std::filesystem::create_directories("bench_out");
  CsvWriter csv("bench_out/fig12_profile.csv", true);
  csv.Field(std::string_view("minute"));
  csv.Field(std::string_view("node"));
  csv.Field(std::string_view("active_kb"));
  csv.EndRow();
  for (const auto& [node, series] : profile.per_node) {
    for (std::size_t i = 0; i < series.times.size(); ++i) {
      csv.Field(static_cast<double>(series.times[i]) / kNsPerMin);
      csv.Field(static_cast<std::uint64_t>(node));
      csv.Field(series.values[i]);
      csv.EndRow();
    }
  }
  NoteRow("wrote bench_out/fig12_profile.csv");
  return 0;
}
