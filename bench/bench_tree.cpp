// T-tree (§IV-B): the multi-level aggregation tree at the paper's Blue
// Waters envelope. N simulated sampler nodes (hosted a few hundred sets per
// host daemon, so 27k nodes fit in one process) are rendezvous-partitioned
// over L leaf aggregators (daemon/topology.hpp) feeding one root; both hops
// run the batched kUpdateBatchReq path over the in-process "local"
// transport, whose byte accounting matches sock. We measure steady-state
// collect-cycle wall time per tier and update_bytes_on_wire per cycle at
// 1k / 8k / 27k samplers — the paper's daisy-chain scales (§IV-B reports
// aggregators sustaining a fan-in of ~9,000:1).
//
// Wire bytes per cycle are protocol-determined (same on any machine) and
// regression-gated against bench/baselines/BENCH_tree.json by
// scripts/bench_compare.py; wall times (_ms fields) are machine-dependent
// and reported for trend only. LDMSXX_BENCH_SMOKE=1 keeps the same
// topologies (so byte metrics stay comparable) and only trims the measured
// cycle count.
#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/mem_manager.hpp"
#include "core/metric_set.hpp"
#include "core/schema.hpp"
#include "daemon/ldmsd.hpp"
#include "daemon/topology.hpp"
#include "transport/fabric.hpp"
#include "transport/local_transport.hpp"
#include "transport/registry.hpp"

namespace ldmsxx::bench {
namespace {

constexpr int kMetricsPerSet = 32;

struct ScaleCase {
  int samplers;
  int leaves;
  int hosts;  // sampler daemons; each hosts samplers/hosts node sets
};

/// One sampler-host daemon's plugin: serves the sets of a contiguous block
/// of simulated nodes and writes the cycle sequence number into every
/// metric each Sample() (fully dirty: every pull ships a data chunk, the
/// worst-case steady state for the wire).
class HostSampler final : public SamplerPlugin {
 public:
  HostSampler(int first_node, int nodes) : first_(first_node), nodes_(nodes) {}

  const std::string& name() const override { return name_; }

  Status Init(MemManager& mem, SetRegistry& sets,
              const PluginParams& params) override {
    (void)params;
    Schema schema("tree");
    for (int m = 0; m < kMetricsPerSet; ++m) {
      schema.AddMetric("m" + std::to_string(m), MetricType::kU64);
    }
    for (int n = 0; n < nodes_; ++n) {
      const std::string node = "node" + std::to_string(first_ + n);
      Status st;
      auto set = MetricSet::Create(mem, schema, node + "/tree", node,
                                   static_cast<std::uint64_t>(first_ + n), &st);
      if (set == nullptr) return st;
      st = sets.Add(set);
      if (!st.ok()) return st;
      sets_.push_back(std::move(set));
    }
    return Status::Ok();
  }

  Status Sample(TimeNs now) override {
    for (auto& set : sets_) {
      set->BeginTransaction();
      for (int m = 0; m < kMetricsPerSet; ++m) set->SetU64(m, seq_);
      set->EndTransaction(now);
    }
    ++seq_;
    return Status::Ok();
  }

  std::vector<MetricSetPtr> Sets() const override { return sets_; }

 private:
  std::string name_ = "tree_host";
  int first_;
  int nodes_;
  std::uint64_t seq_ = 0;
  std::vector<MetricSetPtr> sets_;
};

struct ScaleResult {
  std::size_t shard_min = 0;
  std::size_t shard_max = 0;
  double leaf_collect_ms = 0.0;
  double root_collect_ms = 0.0;
  std::uint64_t leaf_bytes_per_cycle = 0;
  std::uint64_t root_bytes_per_cycle = 0;
};

ScaleResult MeasureScale(const ScaleCase& sc, int measured_cycles) {
  Fabric fabric;
  TransportRegistry registry;
  registry.Add(std::make_shared<LocalTransport>(&fabric));
  // Per-daemon sim clocks (the bench_fanin pattern): RunUntil drops
  // deadlines that fell behind a shared clock, so each daemon keeps its own
  // timeline and the bench drives the tiers in sampling order.
  std::vector<std::unique_ptr<SimClock>> host_clocks;
  std::vector<std::unique_ptr<SimClock>> leaf_clocks;
  SimClock root_clock(0);

  // Placement over the simulated torus: node i at torus position i.
  TreeOptions topts;
  topts.seed = 2014;  // SC'14
  for (int i = 0; i < sc.samplers; ++i) {
    topts.samplers.push_back(
        {"node" + std::to_string(i), static_cast<std::uint64_t>(i)});
  }
  for (int j = 0; j < sc.leaves; ++j) {
    topts.leaves.push_back("tleaf" + std::to_string(j));
  }
  TreeManager tree(std::move(topts));

  const int per_host = sc.samplers / sc.hosts;
  auto host_of = [per_host](int node) { return node / per_host; };
  auto base_opts = [&](const std::string& name) {
    LdmsdOptions opts;
    opts.name = name;
    opts.worker_threads = 0;
    opts.connection_threads = 0;
    opts.store_threads = 0;
    opts.log_level = LogLevel::kOff;
    opts.transports = &registry;
    return opts;
  };

  // Sampler-host tier.
  std::vector<std::unique_ptr<Ldmsd>> hosts;
  hosts.reserve(static_cast<std::size_t>(sc.hosts));
  for (int h = 0; h < sc.hosts; ++h) {
    LdmsdOptions opts = base_opts("thost" + std::to_string(h));
    opts.listen_transport = "local";
    opts.listen_address = "thost" + std::to_string(h) + "/listen";
    opts.set_memory = static_cast<std::size_t>(per_host) * (4 << 10);
    host_clocks.push_back(std::make_unique<SimClock>(0));
    opts.clock = host_clocks.back().get();
    auto d = std::make_unique<Ldmsd>(opts);
    SamplerConfig config;
    config.interval = kNsPerSec;
    (void)d->AddSampler(std::make_shared<HostSampler>(h * per_host, per_host),
                        config);
    (void)d->Start();
    hosts.push_back(std::move(d));
  }

  // Leaf tier: one producer per (leaf, host) pair covering the shard's
  // instances on that host, so each leaf pulls ~samplers/leaves sets in
  // hosts-many batched requests per cycle.
  std::vector<std::unique_ptr<Ldmsd>> leaves;
  leaves.reserve(static_cast<std::size_t>(sc.leaves));
  ScaleResult result;
  result.shard_min = static_cast<std::size_t>(sc.samplers);
  for (int j = 0; j < sc.leaves; ++j) {
    LdmsdOptions opts = base_opts("tleaf" + std::to_string(j));
    opts.listen_transport = "local";
    opts.listen_address = "tleaf" + std::to_string(j) + "/listen";
    const auto shard = tree.shard(static_cast<std::size_t>(j));
    result.shard_min = std::min(result.shard_min, shard.size());
    result.shard_max = std::max(result.shard_max, shard.size());
    opts.set_memory = std::max<std::size_t>(1 << 20, shard.size() * (8 << 10));
    leaf_clocks.push_back(std::make_unique<SimClock>(0));
    opts.clock = leaf_clocks.back().get();
    auto d = std::make_unique<Ldmsd>(opts);
    std::vector<std::vector<std::string>> by_host(
        static_cast<std::size_t>(sc.hosts));
    for (const auto& node : shard) {
      const int id = std::stoi(node.substr(4));
      by_host[static_cast<std::size_t>(host_of(id))].push_back(node + "/tree");
    }
    for (int h = 0; h < sc.hosts; ++h) {
      auto& instances = by_host[static_cast<std::size_t>(h)];
      if (instances.empty()) continue;
      ProducerConfig pc;
      pc.name = "thost" + std::to_string(h);
      pc.transport = "local";
      pc.address = "thost" + std::to_string(h) + "/listen";
      pc.interval = kNsPerSec;
      pc.set_instances = std::move(instances);
      (void)d->AddProducer(pc);
    }
    (void)d->Start();
    leaves.push_back(std::move(d));
  }

  // Root tier: one producer per leaf, explicit shard instance list.
  LdmsdOptions root_opts = base_opts("troot");
  root_opts.set_memory = std::max<std::size_t>(
      8 << 20, static_cast<std::size_t>(sc.samplers) * (8 << 10));
  root_opts.clock = &root_clock;
  Ldmsd root(root_opts);
  for (int j = 0; j < sc.leaves; ++j) {
    ProducerConfig pc;
    pc.name = "tleaf" + std::to_string(j);
    pc.transport = "local";
    pc.address = "tleaf" + std::to_string(j) + "/listen";
    pc.interval = kNsPerSec;
    for (const auto& node : tree.shard(static_cast<std::size_t>(j))) {
      pc.set_instances.push_back(node + "/tree");
    }
    (void)root.AddProducer(pc);
  }
  (void)root.Start();
  root.set_tree(&tree);

  // One simulated second per cycle, tiers in sampling order: hosts sample,
  // leaves pull fresh data, the root pulls the fresh mirrors — a full
  // two-hop collect per cycle, like the deterministic harness event order.
  auto run_tier = [](auto& tier, auto& clocks, TimeNs until) {
    for (std::size_t i = 0; i < tier.size(); ++i) {
      tier[i]->RunUntil(*clocks[i], until);
    }
  };
  TimeNs now = 0;
  constexpr int kWarmupCycles = 2;  // connect + lookup, then steady state
  for (int c = 0; c < kWarmupCycles; ++c) {
    now += kNsPerSec;
    run_tier(hosts, host_clocks, now);
    run_tier(leaves, leaf_clocks, now);
    root.RunUntil(root_clock, now);
  }

  auto tier_bytes = [](auto& tier) {
    std::uint64_t bytes = 0;
    for (auto& d : tier) bytes += d->counters().update_bytes_on_wire.load();
    return bytes;
  };
  const std::uint64_t leaf_bytes_before = tier_bytes(leaves);
  const std::uint64_t root_bytes_before =
      root.counters().update_bytes_on_wire.load();
  double leaf_s = 0.0;
  double root_s = 0.0;
  for (int c = 0; c < measured_cycles; ++c) {
    now += kNsPerSec;
    run_tier(hosts, host_clocks, now);
    leaf_s += TimeSeconds([&] { run_tier(leaves, leaf_clocks, now); });
    root_s += TimeSeconds([&] { root.RunUntil(root_clock, now); });
  }
  result.leaf_collect_ms = leaf_s / measured_cycles * 1e3;
  result.root_collect_ms = root_s / measured_cycles * 1e3;
  result.leaf_bytes_per_cycle =
      (tier_bytes(leaves) - leaf_bytes_before) /
      static_cast<std::uint64_t>(measured_cycles);
  result.root_bytes_per_cycle =
      (root.counters().update_bytes_on_wire.load() - root_bytes_before) /
      static_cast<std::uint64_t>(measured_cycles);
  return result;
}

}  // namespace
}  // namespace ldmsxx::bench

int main() {
  using namespace ldmsxx;
  using namespace ldmsxx::bench;

  Banner("T-tree", "multi-level aggregation tree at 1k/8k/27k samplers");
  PaperRow("Blue Waters: >25,000 nodes through a daisy chain of aggregator "
           "levels; fan-in ~9,000:1 per aggregator (sock)");

  const ScaleCase scales[] = {
      {1000, 4, 4},
      {8000, 8, 32},
      {27000, 27, 108},
  };
  const int measured_cycles = SmokeMode() ? 1 : 3;

  JsonWriter json;
  json.BeginObject();
  json.Field("bench", std::string("tree"));
  json.Field("smoke", SmokeMode());
  json.Field("metrics_per_set", kMetricsPerSet);
  json.BeginArray("scales");
  for (const ScaleCase& sc : scales) {
    const ScaleResult r = MeasureScale(sc, measured_cycles);
    MeasuredRow(
        "%5d samplers x%3d leaves: leaf tier %.1f ms + root tier %.1f ms "
        "per cycle; wire %.2f MB/cycle (leaf) + %.2f MB/cycle (root); "
        "shards %zu..%zu",
        sc.samplers, sc.leaves, r.leaf_collect_ms, r.root_collect_ms,
        static_cast<double>(r.leaf_bytes_per_cycle) / 1e6,
        static_cast<double>(r.root_bytes_per_cycle) / 1e6, r.shard_min,
        r.shard_max);
    json.BeginObject();
    json.Field("samplers", sc.samplers);
    json.Field("leaves", sc.leaves);
    json.Field("hosts", sc.hosts);
    json.Field("shard_min", static_cast<std::uint64_t>(r.shard_min));
    json.Field("shard_max", static_cast<std::uint64_t>(r.shard_max));
    json.Field("leaf_collect_ms", r.leaf_collect_ms);
    json.Field("root_collect_ms", r.root_collect_ms);
    json.Field("collect_cycle_ms", r.leaf_collect_ms + r.root_collect_ms);
    json.Field("leaf_update_bytes_per_cycle", r.leaf_bytes_per_cycle);
    json.Field("root_update_bytes_per_cycle", r.root_bytes_per_cycle);
    json.Field("update_bytes_per_cycle_total",
               r.leaf_bytes_per_cycle + r.root_bytes_per_cycle);
    json.Field("bytes_per_sampler_per_cycle",
               static_cast<double>(r.leaf_bytes_per_cycle +
                                   r.root_bytes_per_cycle) /
                   sc.samplers);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  if (!json.WriteFile("BENCH_tree.json")) {
    std::fprintf(stderr, "failed to write BENCH_tree.json\n");
    return 1;
  }
  NoteRow("wall times are per-tier sums over one steady cycle; wire bytes "
          "are protocol-determined and regression-gated (bench_compare.py)");
  NoteRow("machine-readable results: BENCH_tree.json");
  return 0;
}
