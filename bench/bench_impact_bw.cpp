// Figure 6 (§V-A): Blue Waters benchmark suite under LDMS variants —
// {unmonitored, 60 s no-net, 60 s, 1 s no-net, 1 s}. The paper's result is
// a null result: "no statistically significant impact was observed" for
// MILC, LinkTest, MiniGhost, and IMB; variation between configurations is
// within run-to-run noise. We run fixed-work kernels with the same
// communication shapes and print times normalized to the unmonitored mean,
// with min/max ranges, Figure-6 style.
#include <algorithm>
#include <thread>

#include "bench/bench_common.hpp"
#include "bench_support/impact.hpp"
#include "bench_support/psnap.hpp"

namespace ldmsxx::bench {
namespace {

struct App {
  const char* name;
  AppKernel kernel;
};

}  // namespace
}  // namespace ldmsxx::bench

int main() {
  using namespace ldmsxx;
  using namespace ldmsxx::bench;

  Banner("Figure 6",
         "Blue Waters benchmarks under LDMS monitoring variants");
  PaperRow("no statistically significant impact in any configuration;");
  PaperRow("variation within the range of observed run-to-run values");

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned threads = hw >= 4 ? 4 : (hw >= 2 ? 2 : 1);
  // Calibrate per-step work so one repetition takes ~1.5 s of compute on
  // this host, whatever its speed — run-to-run comparisons need runs long
  // enough that a per-second sampler pass lands inside them.
  constexpr std::uint64_t kSteps = 300;
  const std::uint64_t work =
      CalibrateLoop(1500 * kNsPerMs / kSteps / threads);
  const App apps[] = {
      {"MiniGhost-like(halo)", MakeHaloKernel(threads, kSteps, work)},
      {"MILC-like(CG)", MakeCgKernel(threads, kSteps, work)},
      {"IMB-like(allreduce)",
       MakeAllReduceKernel(threads, hw > 1 ? 20000 : 1500000)},
      {"LinkTest-like(pingpong)",
       MakeLinkTestKernel(hw > 1 ? 100000 : 400000)},
  };
  const MonitorConfig configs[] = {
      {"unmonitored", false, 0, false, 7, true},
      {"60s,no-net", true, 60 * kNsPerSec, false, 7, true},
      {"60s", true, 60 * kNsPerSec, true, 7, true},
      {"1s,no-net", true, kNsPerSec, false, 7, true},
      {"1s", true, kNsPerSec, true, 7, true},
  };
  constexpr unsigned kReps = 3;

  std::printf("\n  %-24s %-12s %10s %18s\n", "app", "config", "norm_mean",
              "range[min,max] s");
  for (const App& app : apps) {
    double base_mean = 0.0;
    for (const MonitorConfig& config : configs) {
      ImpactResult result =
          RunUnderMonitoring(app.name, app.kernel, config, kReps);
      if (config.label == std::string("unmonitored")) {
        base_mean = result.Mean();
      }
      std::printf("  %-24s %-12s %10.4f   [%7.3f, %7.3f]\n", app.name,
                  config.label.c_str(), result.Mean() / base_mean,
                  result.Min(), result.Max());
    }
  }
  NoteRow("normalized means should sit near 1.0 with overlapping ranges —");
  NoteRow("the paper's null result. Machine load can add noise either way.");
  return 0;
}
