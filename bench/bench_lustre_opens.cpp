// Figure 11 (§VI-A3): Lustre opens across the system over a day. Paper
// features: horizontal bands — "certain hosts are performing a significant
// and sustained level of Lustre opens" — and vertical lines — "times when
// Lustre opens occur across most nodes of the system" (job launches or
// system-wide events). Sampled through real LustreSampler plugins; opens
// per interval are the derivative of the cumulative open counter.
// Writes bench_out/fig11_grid.csv.
#include <filesystem>
#include <map>

#include "bench/bench_common.hpp"
#include "core/mem_manager.hpp"
#include "core/set_registry.hpp"
#include "sampler/samplers.hpp"
#include "sim/cluster.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"

int main() {
  using namespace ldmsxx;
  using namespace ldmsxx::bench;

  Banner("Figure 11", "Lustre opens per node over a simulated day");
  PaperRow("horizontal bands: a few nodes with sustained high opens;");
  PaperRow("vertical lines: opens across most nodes at the same minute");

  constexpr int kNodes = 256;
  constexpr int kHours = 24;
  sim::SimCluster cluster(sim::ClusterConfig::Chama(kNodes));

  // Background: normal compute jobs with light metadata activity.
  sim::JobSpec normal;
  normal.job_id = 1;
  normal.name = "normal-mix";
  normal.node_count = kNodes / 2;
  normal.duration = static_cast<DurationNs>(kHours) * kNsPerHour;
  normal.profile = sim::JobProfile::Compute();
  (void)cluster.Submit(normal);

  // Horizontal bands: a handful of nodes run a metadata-heavy job for most
  // of the day (the "certain hosts ... sustained level of opens").
  sim::JobSpec bands;
  bands.job_id = 2;
  bands.name = "metadata-hog";
  bands.fixed_nodes = {40, 41, 42, 200};
  bands.duration = 20 * kNsPerHour;
  bands.arrival = 2 * kNsPerHour;
  bands.profile = sim::JobProfile::MetadataStorm();
  bands.profile.lustre_storm_period_s = 0;  // steady, not bursty
  (void)cluster.Submit(bands);

  // Vertical lines: three system-wide open storms (every node opens files
  // for a couple of minutes — e.g. a big job launch reading shared input).
  for (int storm = 0; storm < 3; ++storm) {
    sim::JobSpec wide;
    wide.job_id = static_cast<std::uint64_t>(10 + storm);
    wide.name = "system-wide-open-storm";
    wide.fixed_nodes.reserve(kNodes);
    for (int n = 0; n < kNodes; ++n) wide.fixed_nodes.push_back(n);
    wide.arrival = static_cast<TimeNs>(5 + 7 * storm) * kNsPerHour;
    wide.duration = 2 * kNsPerMin;
    wide.profile = sim::JobProfile::MetadataStorm();
    wide.profile.lustre_opens_per_s = 300.0;
    wide.profile.lustre_storm_period_s = 0;
    (void)cluster.Submit(wide);
  }

  // LustreSampler per node, 1-minute samples, opens/interval via deltas.
  MemManager mem(static_cast<std::size_t>(kNodes) * 16 << 10);
  SetRegistry sets;
  std::vector<std::shared_ptr<LustreSampler>> samplers;
  for (int n = 0; n < kNodes; ++n) {
    auto sampler = std::make_shared<LustreSampler>(cluster.MakeDataSource(n));
    PluginParams params{{"producer", cluster.Hostname(n)},
                        {"component_id", std::to_string(n)}};
    if (!sampler->Init(mem, sets, params).ok()) return 1;
    samplers.push_back(std::move(sampler));
  }
  const auto open_idx =
      samplers[0]->Sets().front()->schema().FindMetric("open#stats.snx11024");
  if (!open_idx) return 1;

  std::vector<std::uint64_t> prev_opens(kNodes, 0);
  // grid[minute][node] = opens in that minute
  std::vector<std::vector<double>> grid;
  grid.reserve(static_cast<std::size_t>(kHours) * 60);
  for (int minute = 0; minute < kHours * 60; ++minute) {
    cluster.Tick(kNsPerMin);
    grid.emplace_back(kNodes, 0.0);
    for (int n = 0; n < kNodes; ++n) {
      auto& sampler = *samplers[static_cast<std::size_t>(n)];
      (void)sampler.Sample(cluster.now());
      const std::uint64_t opens =
          sampler.Sets().front()->GetU64(*open_idx);
      grid.back()[static_cast<std::size_t>(n)] =
          static_cast<double>(opens - prev_opens[static_cast<std::size_t>(n)]);
      prev_opens[static_cast<std::size_t>(n)] = opens;
    }
  }

  // Horizontal bands: nodes whose *median* per-minute opens is high.
  int band_nodes = 0;
  for (int n = 0; n < kNodes; ++n) {
    std::vector<double> per_minute;
    per_minute.reserve(grid.size());
    for (const auto& row : grid) {
      per_minute.push_back(row[static_cast<std::size_t>(n)]);
    }
    if (ldmsxx::Percentile(per_minute, 0.5) > 1000.0) ++band_nodes;
  }
  MeasuredRow("sustained-band nodes (median > 1k opens/min): %d "
              "(injected: 4)",
              band_nodes);

  // Vertical lines: minutes where >= 90% of nodes exceed 5x their own
  // typical rate.
  std::vector<double> typical(kNodes, 0.0);
  for (int n = 0; n < kNodes; ++n) {
    std::vector<double> per_minute;
    for (const auto& row : grid) {
      per_minute.push_back(row[static_cast<std::size_t>(n)]);
    }
    typical[static_cast<std::size_t>(n)] =
        std::max(ldmsxx::Percentile(per_minute, 0.5), 1.0);
  }
  int storm_minutes = 0;
  for (const auto& row : grid) {
    int hot = 0;
    for (int n = 0; n < kNodes; ++n) {
      if (row[static_cast<std::size_t>(n)] >
          5.0 * typical[static_cast<std::size_t>(n)]) {
        ++hot;
      }
    }
    if (hot >= kNodes * 9 / 10) ++storm_minutes;
  }
  MeasuredRow("system-wide open-storm minutes: %d (injected: 3 storms x ~2 "
              "min)",
              storm_minutes);

  std::filesystem::create_directories("bench_out");
  CsvWriter csv("bench_out/fig11_grid.csv", true);
  csv.Field(std::string_view("minute"));
  csv.Field(std::string_view("node"));
  csv.Field(std::string_view("opens_per_min"));
  csv.EndRow();
  for (std::size_t minute = 0; minute < grid.size(); ++minute) {
    for (int n = 0; n < kNodes; ++n) {
      const double v = grid[minute][static_cast<std::size_t>(n)];
      if (v < 1.0) continue;  // the paper's threshold-of-1 filter
      csv.Field(static_cast<std::uint64_t>(minute));
      csv.Field(static_cast<std::uint64_t>(n));
      csv.Field(v);
      csv.EndRow();
    }
  }
  NoteRow("wrote bench_out/fig11_grid.csv");
  return 0;
}
