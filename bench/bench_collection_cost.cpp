// T-gangliacmp (§IV-E): per-metric collection cost, LDMS vs a Ganglia-like
// collector, from the same /proc/stat + /proc/meminfo sources. The paper
// reports ~126 us/metric for Ganglia vs ~1.3 us/metric for LDMS (two orders
// of magnitude); the gap is structural and this bench shows each structural
// piece as an ablation:
//
//   BM_LdmsSample            — one parse pass fills the whole binary set
//   BM_LdmsDataPull          — aggregator-side data-only update (10% of set)
//   BM_LdmsPullWithMetadata  — ABLATION: re-sending metadata every sample
//   BM_GangliaCollect        — per-metric re-read/re-parse + XML metadata
//   BM_CollectlRecord        — single-host text recorder baseline
#include <benchmark/benchmark.h>

#include "baseline/collectl_sim.hpp"
#include "baseline/ganglia_sim.hpp"
#include "core/set_registry.hpp"
#include "sampler/samplers.hpp"
#include "sim/cluster.hpp"
#include "transport/registry.hpp"

namespace ldmsxx {
namespace {

constexpr std::size_t kMetricCount = 11;  // 6 meminfo + 5 procstat

struct Rig {
  Rig() : cluster(sim::ClusterConfig::Chama(1)), mem(1 << 20) {
    cluster.Tick(kNsPerSec);
    auto source = cluster.MakeDataSource(0);
    meminfo = std::make_shared<MeminfoSampler>(source);
    procstat = std::make_shared<ProcStatSampler>(source);
    PluginParams params{{"producer", "nid0"}};
    (void)meminfo->Init(mem, sets, params);
    (void)procstat->Init(mem, sets, params);
  }

  sim::SimCluster cluster;
  MemManager mem;
  SetRegistry sets;
  std::shared_ptr<MeminfoSampler> meminfo;
  std::shared_ptr<ProcStatSampler> procstat;
};

Rig& rig() {
  static Rig r;
  return r;
}

void BM_LdmsSample(benchmark::State& state) {
  Rig& r = rig();
  TimeNs now = kNsPerSec;
  for (auto _ : state) {
    now += kNsPerSec;
    benchmark::DoNotOptimize(r.meminfo->Sample(now));
    benchmark::DoNotOptimize(r.procstat->Sample(now));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kMetricCount));
  state.counters["us_per_metric"] = benchmark::Counter(
      static_cast<double>(state.iterations() * kMetricCount),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_LdmsSample);

// Aggregator-side pull of the data chunk only (what actually crosses the
// network per interval).
void BM_LdmsDataPull(benchmark::State& state) {
  Rig& r = rig();
  (void)r.meminfo->Sample(kNsPerSec);
  auto server_set = r.meminfo->Sets().front();
  MemManager mem(1 << 20);
  Status st;
  auto mirror = MetricSet::CreateMirror(mem, server_set->metadata_bytes(), &st);
  std::vector<std::byte> buf(server_set->data_size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(server_set->SnapshotData(buf));
    benchmark::DoNotOptimize(mirror->ApplyData(buf));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 6);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(buf.size()));
}
BENCHMARK(BM_LdmsDataPull);

// ABLATION: what LDMS would pay if, like Ganglia, it shipped metadata with
// every sample — mirror reconstruction from metadata each pull.
void BM_LdmsPullWithMetadata(benchmark::State& state) {
  Rig& r = rig();
  (void)r.meminfo->Sample(kNsPerSec);
  auto server_set = r.meminfo->Sets().front();
  MemManager mem(4 << 20);
  std::vector<std::byte> buf(server_set->data_size());
  for (auto _ : state) {
    Status st;
    auto mirror =
        MetricSet::CreateMirror(mem, server_set->metadata_bytes(), &st);
    benchmark::DoNotOptimize(server_set->SnapshotData(buf));
    benchmark::DoNotOptimize(mirror->ApplyData(buf));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 6);
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(buf.size() +
                                server_set->metadata_bytes().size()));
}
BENCHMARK(BM_LdmsPullWithMetadata);

void BM_GangliaCollect(benchmark::State& state) {
  Rig& r = rig();
  baseline::GangliaSimCollector ganglia(r.cluster.MakeDataSource(0));
  ganglia.UseDefaultMetrics();
  TimeNs now = kNsPerSec;
  std::vector<std::string> packets;
  for (auto _ : state) {
    now += kNsPerSec;
    packets.clear();
    benchmark::DoNotOptimize(ganglia.CollectOnce(now, &packets));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kMetricCount));
  state.counters["us_per_metric"] = benchmark::Counter(
      static_cast<double>(state.iterations() * kMetricCount),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_GangliaCollect);

void BM_CollectlRecord(benchmark::State& state) {
  Rig& r = rig();
  baseline::CollectlSim collectl(r.cluster.MakeDataSource(0), "");
  TimeNs now = kNsPerSec;
  for (auto _ : state) {
    now += 100 * kNsPerMs;
    benchmark::DoNotOptimize(collectl.RecordOnce(now));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kMetricCount));
}
BENCHMARK(BM_CollectlRecord);

// Cardinality scaling: per-metric sampling cost must stay flat as sets grow
// (fixed offsets, no per-metric dispatch).
void BM_LdmsSampleSynthetic(benchmark::State& state) {
  const auto metrics = static_cast<std::size_t>(state.range(0));
  sim::SimCluster cluster(sim::ClusterConfig::Chama(1));
  MemManager mem(16 << 20);
  SetRegistry sets;
  SyntheticSampler sampler(cluster.MakeDataSource(0));
  PluginParams params{{"producer", "nid0"},
                      {"metrics", std::to_string(metrics)}};
  if (!sampler.Init(mem, sets, params).ok()) {
    state.SkipWithError("init failed");
    return;
  }
  TimeNs now = 0;
  for (auto _ : state) {
    now += kNsPerSec;
    benchmark::DoNotOptimize(sampler.Sample(now));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(metrics));
}
BENCHMARK(BM_LdmsSampleSynthetic)->Arg(16)->Arg(194)->Arg(467)->Arg(1024);

}  // namespace
}  // namespace ldmsxx

BENCHMARK_MAIN();
