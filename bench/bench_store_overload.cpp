// Storage-path overload: bounded store queues + circuit breaker under a slow
// or dead disk. Measures (a) shed rate, queue depth, and p99 StoreSet latency
// as the storage fan-in (sets stored per cycle) outruns a slow disk, and
// (b) how much a tripped breaker shrinks the cost of a dead store versus
// hammering it with doomed writes. The queue keeps aggregator memory bounded
// (at most queue_capacity samples wait) while collection proceeds at full
// rate — the paper's storer-pool isolation (§IV-B) made safe under overload.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/mem_manager.hpp"
#include "core/metric_set.hpp"
#include "daemon/ldmsd.hpp"
#include "store/memory_store.hpp"
#include "store/store.hpp"

namespace ldmsxx::bench {
namespace {

/// Memory store with a fixed per-write stall (models a slow disk) that
/// records every StoreSet duration for percentile reporting.
class SlowStore final : public Store {
 public:
  explicit SlowStore(DurationNs write_cost) : write_cost_(write_cost) {}

  const std::string& name() const override { return name_; }

  Status StoreSet(const MetricSet& set) override {
    const auto t0 = std::chrono::steady_clock::now();
    if (write_cost_ > 0) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(write_cost_));
    }
    const Status st = inner_.StoreSet(set);
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    std::lock_guard<std::mutex> lock(mu_);
    latencies_ns_.push_back(static_cast<std::uint64_t>(ns));
    return st;
  }

  std::uint64_t writes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return latencies_ns_.size();
  }

  double PercentileUs(double p) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (latencies_ns_.empty()) return 0.0;
    std::vector<std::uint64_t> sorted = latencies_ns_;
    std::sort(sorted.begin(), sorted.end());
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(sorted.size() - 1));
    return static_cast<double>(sorted[idx]) / 1e3;
  }

 private:
  std::string name_ = "store_slow";
  DurationNs write_cost_;
  MemoryStore inner_;
  mutable std::mutex mu_;
  std::vector<std::uint64_t> latencies_ns_;
};

/// Store whose every write fails after a small delay (a dying disk whose
/// syscalls error out slowly — the worst case for a storer thread).
class DeadStore final : public Store {
 public:
  explicit DeadStore(DurationNs fail_cost) : fail_cost_(fail_cost) {}
  const std::string& name() const override { return name_; }
  Status StoreSet(const MetricSet&) override {
    if (fail_cost_ > 0) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(fail_cost_));
    }
    attempts_.fetch_add(1, std::memory_order_relaxed);
    CountFailedRow();
    return {ErrorCode::kInternal, "dead disk"};
  }
  std::uint64_t attempts() const {
    return attempts_.load(std::memory_order_relaxed);
  }

 private:
  std::string name_ = "store_dead";
  DurationNs fail_cost_;
  std::atomic<std::uint64_t> attempts_{0};
};

/// One "producer" worth of sets, bumped once per cycle.
std::vector<MetricSetPtr> MakeSets(MemManager& mem, std::size_t count) {
  Schema schema("overload");
  for (int m = 0; m < 8; ++m) {
    schema.AddMetric("m" + std::to_string(m), MetricType::kU64);
  }
  std::vector<MetricSetPtr> sets;
  sets.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Status st;
    auto set = MetricSet::Create(mem, schema,
                                 "node" + std::to_string(i) + "/overload",
                                 "node" + std::to_string(i), i, &st);
    if (set == nullptr) break;
    sets.push_back(std::move(set));
  }
  return sets;
}

void Bump(std::vector<MetricSetPtr>& sets, std::uint64_t tick) {
  for (auto& set : sets) {
    set->BeginTransaction();
    for (std::size_t m = 0; m < set->schema().metric_count(); ++m) {
      set->SetU64(m, tick);
    }
    set->EndTransaction(static_cast<TimeNs>(tick) * kNsPerMs);
  }
}

void MeasureFanin(std::size_t fanin, std::size_t cycles, DurationNs write_cost,
                  JsonWriter& json) {
  MemManager mem(256 << 20);
  auto sets = MakeSets(mem, fanin);
  auto store = std::make_shared<SlowStore>(write_cost);

  LdmsdOptions opts;
  opts.name = "overload-agg";
  opts.worker_threads = 0;
  opts.connection_threads = 0;
  opts.store_threads = 1;
  opts.log_level = LogLevel::kOff;
  Ldmsd daemon(opts);
  StorePolicy policy(store);
  policy.name = "slow";
  policy.queue_capacity = 1024;
  policy.shed_policy = ShedPolicy::kDropOldest;
  policy.breaker_threshold = 0;  // this axis isolates the queue
  (void)daemon.AddStorePolicy(std::move(policy));
  (void)daemon.Start();

  const double submit_s = TimeSeconds([&] {
    for (std::size_t c = 0; c < cycles; ++c) {
      Bump(sets, c + 1);
      for (const auto& set : sets) daemon.StoreLocalSet(set);
    }
  });
  const auto status = daemon.store_policy_status("slow");
  daemon.Stop();  // drains the queued tail inline

  const double submitted = static_cast<double>(fanin * cycles);
  const double shed_pct =
      100.0 * static_cast<double>(status.shed_samples) / submitted;
  MeasuredRow(
      "fan-in %5zu x %zu cycles: submit %6.1f ms, shed %5.1f%%, "
      "high-water %4zu, p50 %6.1f us, p99 %7.1f us (%llu writes)",
      fanin, cycles, submit_s * 1e3, shed_pct, status.queue_high_water,
      store->PercentileUs(0.50), store->PercentileUs(0.99),
      static_cast<unsigned long long>(store->writes()));
  json.BeginObject();
  json.Field("fanin", static_cast<std::uint64_t>(fanin));
  json.Field("cycles", static_cast<std::uint64_t>(cycles));
  json.Field("submit_throughput_per_sec", submitted / submit_s);
  json.Field("shed_pct", shed_pct);
  json.Field("queue_high_water",
             static_cast<std::uint64_t>(status.queue_high_water));
  json.Field("p50_store_us", store->PercentileUs(0.50));
  json.Field("p99_store_us", store->PercentileUs(0.99));
  json.Field("writes", store->writes());
  json.EndObject();
}

void MeasureBreaker(bool enabled, std::size_t submits, JsonWriter& json) {
  MemManager mem(16 << 20);
  auto sets = MakeSets(mem, 1);
  auto store = std::make_shared<DeadStore>(10 * kNsPerUs);

  LdmsdOptions opts;
  opts.name = "dead-agg";
  opts.worker_threads = 0;
  opts.connection_threads = 0;
  opts.store_threads = 0;  // inline: every burned attempt costs the caller
  opts.log_level = LogLevel::kOff;
  Ldmsd daemon(opts);
  StorePolicy policy(store);
  policy.name = "dead";
  policy.breaker_threshold = enabled ? 5 : 0;
  policy.breaker_min_backoff = 100 * kNsPerMs;
  policy.breaker_max_backoff = 10 * kNsPerSec;
  (void)daemon.AddStorePolicy(std::move(policy));

  const double elapsed_s = TimeSeconds([&] {
    for (std::size_t c = 0; c < submits; ++c) {
      Bump(sets, c + 1);
      daemon.StoreLocalSet(sets[0]);
    }
  });
  const auto status = daemon.store_policy_status("dead");
  MeasuredRow(
      "breaker %-3s: %zu samples against a dead disk in %7.1f ms "
      "(%llu write attempts burned, %llu shed, %llu trips)",
      enabled ? "on" : "off", submits, elapsed_s * 1e3,
      static_cast<unsigned long long>(store->attempts()),
      static_cast<unsigned long long>(status.shed_samples),
      static_cast<unsigned long long>(status.breaker_trips));
  json.BeginObject();
  json.Field("breaker_enabled", enabled);
  json.Field("submits", static_cast<std::uint64_t>(submits));
  json.Field("elapsed_ms", elapsed_s * 1e3);
  json.Field("submit_throughput_per_sec",
             static_cast<double>(submits) / elapsed_s);
  json.Field("write_attempts", store->attempts());
  json.Field("shed_samples", status.shed_samples);
  json.Field("breaker_trips", status.breaker_trips);
  json.EndObject();
}

}  // namespace
}  // namespace ldmsxx::bench

int main() {
  using namespace ldmsxx;
  using namespace ldmsxx::bench;

  const bool smoke = SmokeMode();
  JsonWriter json;
  json.BeginObject();
  json.Field("bench", std::string("store_overload"));
  json.Field("smoke", smoke);

  Banner("T-overload/queue",
         "bounded store queue under fan-in that outruns a slow disk");
  PaperRow("n/a — robustness hardening; paper assumes the store keeps up");
  const DurationNs write_cost = 20 * kNsPerUs;  // ~50k writes/s disk
  json.BeginArray("queue_cases");
  const std::size_t fanins_full[] = {64u, 256u, 1024u, 4096u};
  const std::size_t fanins_smoke[] = {64u, 256u};
  const auto fanins = smoke ? std::span<const std::size_t>(fanins_smoke)
                            : std::span<const std::size_t>(fanins_full);
  for (const std::size_t fanin : fanins) {
    MeasureFanin(fanin, /*cycles=*/smoke ? 4 : 16, write_cost, json);
  }
  json.EndArray();
  NoteRow("disk model: %llu us per write; queue capacity 1024, drop_oldest.",
          static_cast<unsigned long long>(write_cost / kNsPerUs));
  NoteRow("shed rate climbs with fan-in while high-water stays pinned at the");
  NoteRow("cap: aggregator memory is bounded no matter how far the disk lags.");

  Banner("T-overload/breaker",
         "circuit breaker against a dead disk (10 us failing writes)");
  PaperRow("n/a — robustness hardening; see DESIGN.md breaker section");
  const std::size_t submits = smoke ? 2000 : 20000;
  json.BeginArray("breaker_cases");
  MeasureBreaker(/*enabled=*/false, submits, json);
  MeasureBreaker(/*enabled=*/true, submits, json);
  json.EndArray();
  NoteRow("breaker on: after 5 consecutive failures the policy quarantines");
  NoteRow("and sheds at memory speed; attempts collapse from every sample to");
  NoteRow("a handful of half-open probes, and the shed gap is accounted.");

  json.EndObject();
  if (!json.WriteFile("BENCH_store_overload.json")) {
    std::fprintf(stderr, "failed to write BENCH_store_overload.json\n");
    return 1;
  }
  NoteRow("machine-readable results: BENCH_store_overload.json");
  return 0;
}
