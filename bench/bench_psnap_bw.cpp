// Figure 5 (§V-A1): PSNAP on Blue Waters — histogram of 100 us loop times,
// unmonitored vs 1 s sampling. The paper sees the monitored run add ~1,400
// events (of 16M) in the tail at 25-200 us extra delay, "in line with the
// expected delay caused by the known sampling execution time of order
// 400 us and the expected number of occurrences".
//
// Methodology here: monitored and unmonitored segments are *interleaved*
// (the sampler daemon stays up; its interval is toggled between 1 s and
// effectively-off via the on-the-fly interval change) so slow ambient
// drift on a shared machine cancels out of the comparison. We also measure
// the sampler pass time directly, which is what bounds the added tail.
#include <algorithm>
#include <memory>
#include <thread>

#include "bench/bench_common.hpp"
#include "bench_support/psnap.hpp"
#include "daemon/ldmsd.hpp"
#include "sampler/samplers.hpp"

namespace ldmsxx::bench {
namespace {

void PrintHistogramSummary(const char* label, const PsnapResult& result) {
  std::printf("  %-12s iters=%llu mean=%.2fus max=%.0fus | tail: >+10us %llu"
              "  >+25us %llu  >+200us %llu\n",
              label,
              static_cast<unsigned long long>(result.total_iterations),
              result.stats.mean(), result.stats.max(),
              static_cast<unsigned long long>(result.TailEvents(10)),
              static_cast<unsigned long long>(result.TailEvents(25)),
              static_cast<unsigned long long>(result.TailEvents(200)));
}

}  // namespace
}  // namespace ldmsxx::bench

int main() {
  using namespace ldmsxx;
  using namespace ldmsxx::bench;

  Banner("Figure 5", "PSNAP loop-time histogram, unmonitored vs 1 s sampling");
  PaperRow("1 s sampling adds ~1.4k of 16M events at 25-200 us extra delay,");
  PaperRow("matching a ~400 us sampler pass once per second");

  // Sampler daemon stays up the whole run; toggling the interval between
  // 1 s and 1 h turns monitoring on/off without restarting anything.
  LdmsdOptions opts;
  opts.name = "psnap-sampler";
  opts.worker_threads = 1;
  Ldmsd daemon(opts);
  auto source = std::make_shared<RealFsDataSource>();
  SamplerConfig sc;
  sc.interval = kNsPerHour;  // start "off"
  sc.synchronous = true;
  const char* plugin_names[] = {"meminfo", "procstat", "loadavg", "netdev"};
  (void)daemon.AddSampler(std::make_shared<MeminfoSampler>(source), sc);
  (void)daemon.AddSampler(std::make_shared<ProcStatSampler>(source), sc);
  (void)daemon.AddSampler(std::make_shared<LoadAvgSampler>(source), sc);
  (void)daemon.AddSampler(std::make_shared<NetDevSampler>(source), sc);
  (void)daemon.Start();

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  PsnapConfig config;
  config.threads = hw > 1 ? std::min(4u, hw - 1) : 1u;
  config.iterations = 10000;  // per segment per thread (~1 s per segment)

  PsnapResult unmonitored;
  PsnapResult monitored;
  constexpr int kSegmentPairs = 8;
  for (int pair = 0; pair < kSegmentPairs; ++pair) {
    for (const char* name : plugin_names) {
      (void)daemon.SetSamplingInterval(name, kNsPerHour);
    }
    PsnapResult off = RunPsnap(config);
    unmonitored.histogram.Merge(off.histogram);
    unmonitored.stats.Merge(off.stats);
    unmonitored.total_iterations += off.total_iterations;

    for (const char* name : plugin_names) {
      (void)daemon.SetSamplingInterval(name, kNsPerSec);
    }
    PsnapResult on = RunPsnap(config);
    monitored.histogram.Merge(on.histogram);
    monitored.stats.Merge(on.stats);
    monitored.total_iterations += on.total_iterations;
  }

  const auto samples = daemon.counters().samples.load();
  const double mean_pass_us =
      samples > 0 ? static_cast<double>(daemon.counters().sample_ns.load()) /
                        static_cast<double>(samples) / 1000.0
                  : 0.0;
  daemon.Stop();

  std::printf("\n");
  PrintHistogramSummary("unmonitored", unmonitored);
  PrintHistogramSummary("1s-sampling", monitored);

  MeasuredRow("sampler pass: %llu passes, mean %.0f us each (paper: ~400 us)",
              static_cast<unsigned long long>(samples), mean_pass_us);
  const double loop_seconds =
      static_cast<double>(monitored.total_iterations) * 100e-6 /
      config.threads;
  MeasuredRow("expected added tail events: ~%.0f (1 pass/s x %.0f s of "
              "monitored loop)",
              loop_seconds, loop_seconds);
  MeasuredRow("paired tail delta (>+25us): %+lld events",
              static_cast<long long>(monitored.TailEvents(25)) -
                  static_cast<long long>(unmonitored.TailEvents(25)));
  MeasuredRow("paired mean shift: %+.3f us (%.3f%%)",
              monitored.stats.mean() - unmonitored.stats.mean(),
              100.0 * (monitored.stats.mean() - unmonitored.stats.mean()) /
                  unmonitored.stats.mean());
  NoteRow("on a shared/1-core host, ambient OS noise sets the tail floor;");
  NoteRow("compare the paired delta against the expected-events estimate.");

  std::printf("\n  loop-time histogram (us bins, both cases):\n");
  std::printf("  %6s %12s %12s\n", "us", "unmonitored", "1s-sampling");
  for (std::size_t i = 0; i < unmonitored.histogram.bin_count(); ++i) {
    const auto a = unmonitored.histogram.bin(i);
    const auto b = monitored.histogram.bin(i);
    if (a == 0 && b == 0) continue;
    if (a + b < 20 && unmonitored.histogram.bin_lo(i) < 130) continue;
    std::printf("  %6.0f %12llu %12llu\n", unmonitored.histogram.bin_lo(i),
                static_cast<unsigned long long>(a),
                static_cast<unsigned long long>(b));
  }
  return 0;
}
