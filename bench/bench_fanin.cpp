// T-fanin (§IV-A): aggregator fan-in. The paper reports a maximum fan-in of
// roughly 9,000:1 for the sock transport (and IB RDMA) and > 15,000:1 for
// RDMA over Gemini (ugni). Fan-in is bounded by how many producers one
// aggregator can pull within a collection interval, so we measure the
// steady-state per-producer pull cost on each transport and derive the
// sustainable fan-in at the paper's 1 s and 20 s intervals.
//
// Servers are Blue-Waters-shaped sampler daemons (one 194-metric set each).
// sock is measured over real loopback TCP with a bounded connection count
// and the per-connection cost extrapolated (file-descriptor limits, noted
// in the output).
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/mem_manager.hpp"
#include "core/metric_set.hpp"
#include "daemon/ldmsd.hpp"
#include "sampler/samplers.hpp"
#include "sim/cluster.hpp"
#include "transport/sock_transport.hpp"

namespace ldmsxx::bench {
namespace {

struct FaninResult {
  double connect_s = 0.0;
  double per_pull_us = 0.0;
};

/// N sampler daemons on @p transport; one aggregator pulls all of them
/// once; returns the steady per-producer pull cost.
FaninResult MeasureFanin(const std::string& transport, int producers,
                         sim::SimCluster& cluster) {
  std::vector<std::unique_ptr<Ldmsd>> samplers;
  std::vector<std::unique_ptr<SimClock>> clocks;
  std::vector<std::string> addresses;
  samplers.reserve(static_cast<std::size_t>(producers));
  const bool is_sock = transport == "sock";
  for (int n = 0; n < producers; ++n) {
    clocks.push_back(std::make_unique<SimClock>(0));
    LdmsdOptions opts;
    opts.name = "fan" + transport + std::to_string(n);
    opts.listen_transport = transport;
    opts.listen_address =
        is_sock ? "127.0.0.1:0" : "fanin-" + transport + "/" + std::to_string(n);
    opts.worker_threads = 0;
    opts.connection_threads = 0;
    opts.store_threads = 0;
    opts.set_memory = 64 << 10;
    opts.clock = clocks.back().get();
    auto d = std::make_unique<Ldmsd>(opts);
    SamplerConfig sc;
    sc.interval = kNsPerSec;
    sc.params["metrics"] = "194";
    (void)d->AddSampler(std::make_shared<SyntheticSampler>(
                            cluster.MakeDataSource(0)),
                        sc);
    if (!d->Start().ok()) break;
    d->RunUntil(*clocks.back(), kNsPerSec + 1);
    addresses.push_back(d->listen_address());
    samplers.push_back(std::move(d));
  }

  LdmsdOptions agg_opts;
  agg_opts.name = "fanin-agg-" + transport;
  agg_opts.worker_threads = 0;
  agg_opts.connection_threads = 0;
  agg_opts.store_threads = 0;
  agg_opts.set_memory = static_cast<std::size_t>(producers) * 32 << 10;
  SimClock agg_clock(0);
  agg_opts.clock = &agg_clock;
  Ldmsd aggregator(agg_opts);
  for (int n = 0; n < static_cast<int>(samplers.size()); ++n) {
    ProducerConfig pc;
    pc.name = samplers[static_cast<std::size_t>(n)]->name();
    pc.transport = transport;
    pc.address = addresses[static_cast<std::size_t>(n)];
    pc.interval = kNsPerSec;
    (void)aggregator.AddProducer(pc);
  }
  (void)aggregator.Start();

  FaninResult result;
  result.connect_s = TimeSeconds(
      [&] { aggregator.RunUntil(agg_clock, agg_clock.Now() + kNsPerSec); });
  constexpr int kCycles = 3;
  double steady = 0.0;
  for (int c = 0; c < kCycles; ++c) {
    for (std::size_t i = 0; i < samplers.size(); ++i) {
      samplers[i]->RunUntil(*clocks[i], clocks[i]->Now() + kNsPerSec);
    }
    steady += TimeSeconds(
        [&] { aggregator.RunUntil(agg_clock, agg_clock.Now() + kNsPerSec); });
  }
  result.per_pull_us =
      steady / kCycles / static_cast<double>(samplers.size()) * 1e6;
  return result;
}

// ---------------------------------------------------------------------------
// Pipelining on one connection: a producer daemon hosting many sets used to
// cost one RTT per set per cycle (lock-step client). With request
// multiplexing the aggregator issues every update at once (UpdateAll), so a
// cycle costs ~one RTT plus server time.
// ---------------------------------------------------------------------------

class MultiSetHandler final : public ServiceHandler {
 public:
  MultiSetHandler(int sets, int metrics) : mem_(16 << 20) {
    Schema schema("synthetic");
    for (int m = 0; m < metrics; ++m) {
      schema.AddMetric("m" + std::to_string(m), MetricType::kU64);
    }
    for (int s = 0; s < sets; ++s) {
      Status st;
      auto set = MetricSet::Create(mem_, schema,
                                   "pipe/set" + std::to_string(s), "pipe",
                                   static_cast<std::uint64_t>(s), &st);
      sets_.push_back(std::move(set));
    }
    Bump();
  }

  void Bump() {
    ++tick_;
    for (auto& set : sets_) {
      set->BeginTransaction();
      for (std::size_t m = 0; m < set->schema().metric_count(); ++m) {
        set->SetU64(m, tick_);
      }
      set->EndTransaction(tick_ * kNsPerSec);
    }
  }

  std::vector<std::string> instances() const {
    std::vector<std::string> names;
    for (const auto& set : sets_) names.push_back(set->instance_name());
    return names;
  }

  std::vector<std::string> HandleDir() override { return instances(); }

  Status HandleLookup(const std::string& instance,
                      std::vector<std::byte>* metadata) override {
    MetricSetPtr set = Find(instance);
    if (set == nullptr) return {ErrorCode::kNotFound, instance};
    auto bytes = set->metadata_bytes();
    metadata->assign(bytes.begin(), bytes.end());
    return Status::Ok();
  }

  Status HandleUpdate(const std::string& instance,
                      std::vector<std::byte>* data) override {
    MetricSetPtr set = Find(instance);
    if (set == nullptr) return {ErrorCode::kNotFound, instance};
    data->resize(set->data_size());
    return set->SnapshotData(*data);
  }

  void HandleAdvertise(const AdvertiseMsg&) override {}
  MetricSetPtr HandleRdmaExpose(const std::string& instance) override {
    return Find(instance);
  }

 private:
  MetricSetPtr Find(const std::string& instance) const {
    for (const auto& set : sets_) {
      if (set->instance_name() == instance) return set;
    }
    return nullptr;
  }

  MemManager mem_;
  std::vector<MetricSetPtr> sets_;
  std::uint64_t tick_ = 0;
};

void MeasurePipelining(int sets, int metrics, int cycles) {
  MultiSetHandler handler(sets, metrics);
  SockTransport sock;
  std::unique_ptr<Listener> listener;
  if (!sock.Listen("127.0.0.1:0", &handler, &listener).ok()) return;
  std::unique_ptr<Endpoint> ep;
  if (!sock.Connect(listener->address(), &ep).ok()) return;

  const std::vector<std::string> instances = handler.instances();
  MemManager mem(16 << 20);
  std::vector<MetricSetPtr> mirror_sets;
  std::vector<MetricSet*> mirrors;
  for (const auto& instance : instances) {
    std::vector<std::byte> metadata;
    if (!ep->Lookup(instance, &metadata).ok()) return;
    Status st;
    auto mirror = MetricSet::CreateMirror(mem, metadata, &st);
    if (!st.ok()) return;
    mirrors.push_back(mirror.get());
    mirror_sets.push_back(std::move(mirror));
  }

  // Serial baseline: the old lock-step behaviour, one blocking round trip
  // per set per cycle.
  const double serial_s = TimeSeconds([&] {
    for (int c = 0; c < cycles; ++c) {
      handler.Bump();
      for (std::size_t i = 0; i < instances.size(); ++i) {
        (void)ep->Update(instances[i], *mirrors[i]);
      }
    }
  });

  // Pipelined: every update in flight at once, harvested as they complete.
  const double batched_s = TimeSeconds([&] {
    for (int c = 0; c < cycles; ++c) {
      handler.Bump();
      (void)ep->UpdateAll(instances, mirrors);
    }
  });

  const double total = static_cast<double>(sets) * cycles;
  const double serial_rate = total / serial_s;
  const double batched_rate = total / batched_s;
  MeasuredRow(
      "1 conn x %d sets (%d metrics): serial %7.0f upd/s, pipelined "
      "%7.0f upd/s  -> %.1fx",
      sets, metrics, serial_rate, batched_rate, batched_rate / serial_rate);
}

}  // namespace
}  // namespace ldmsxx::bench

int main() {
  using namespace ldmsxx;
  using namespace ldmsxx::bench;

  Banner("T-fanin", "aggregator fan-in by transport (194-metric sets)");
  PaperRow("max fan-in ~9,000:1 (sock, IB RDMA); >15,000:1 (Gemini ugni)");

  sim::SimCluster cluster(sim::ClusterConfig::Chama(1));
  cluster.Tick(kNsPerSec);

  struct Case {
    const char* transport;
    int producers;
  };
  const Case cases[] = {
      {"sock", 512},    // bounded by fds; cost extrapolates linearly
      {"local", 4096},
      {"rdma", 4096},
      {"ugni", 4096},
  };
  for (const Case& c : cases) {
    FaninResult r = MeasureFanin(c.transport, c.producers, cluster);
    const double fanin_1s = 1e6 / r.per_pull_us;
    const double fanin_20s = 20e6 / r.per_pull_us;
    MeasuredRow(
        "%-5s %4d producers: %6.2f us/pull  -> fan-in %8.0f:1 @1s  "
        "%9.0f:1 @20s (connect burst %.0f ms)",
        c.transport, c.producers, r.per_pull_us, fanin_1s, fanin_20s,
        r.connect_s * 1e3);
  }
  NoteRow("sock runs 512 real loopback TCP connections (fd-limited) and");
  NoteRow("extrapolates; one-sided rdma/ugni pulls cost less per producer,");
  NoteRow("reproducing the ugni > sock fan-in ordering of the paper.");

  Banner("T-fanin/pipe",
         "request multiplexing on one sock connection (serial vs batched)");
  PaperRow("n/a — client-side pipelining of the update pull (Figure 2 {e})");
  MeasurePipelining(/*sets=*/32, /*metrics=*/194, /*cycles=*/100);
  MeasurePipelining(/*sets=*/64, /*metrics=*/194, /*cycles=*/50);
  NoteRow("serial = one blocking round trip per set per cycle (the old");
  NoteRow("lock-step client); pipelined = Endpoint::UpdateAll issues all");
  NoteRow("requests before harvesting, so a cycle costs ~one RTT total.");
  return 0;
}
