// T-fanin (§IV-A): aggregator fan-in. The paper reports a maximum fan-in of
// roughly 9,000:1 for the sock transport (and IB RDMA) and > 15,000:1 for
// RDMA over Gemini (ugni). Fan-in is bounded by how many producers one
// aggregator can pull within a collection interval, so we measure the
// steady-state per-producer pull cost on each transport and derive the
// sustainable fan-in at the paper's 1 s and 20 s intervals.
//
// Servers are Blue-Waters-shaped sampler daemons (one 194-metric set each).
// sock is measured over real loopback TCP with a bounded connection count
// and the per-connection cost extrapolated (file-descriptor limits, noted
// in the output).
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/mem_manager.hpp"
#include "core/metric_set.hpp"
#include "daemon/ldmsd.hpp"
#include "sampler/samplers.hpp"
#include "sim/cluster.hpp"
#include "transport/sock_transport.hpp"

namespace ldmsxx::bench {
namespace {

struct FaninResult {
  double connect_s = 0.0;
  double per_pull_us = 0.0;
};

/// N sampler daemons on @p transport; one aggregator pulls all of them
/// once; returns the steady per-producer pull cost.
FaninResult MeasureFanin(const std::string& transport, int producers,
                         sim::SimCluster& cluster) {
  std::vector<std::unique_ptr<Ldmsd>> samplers;
  std::vector<std::unique_ptr<SimClock>> clocks;
  std::vector<std::string> addresses;
  samplers.reserve(static_cast<std::size_t>(producers));
  const bool is_sock = transport == "sock";
  for (int n = 0; n < producers; ++n) {
    clocks.push_back(std::make_unique<SimClock>(0));
    LdmsdOptions opts;
    opts.name = "fan" + transport + std::to_string(n);
    opts.listen_transport = transport;
    opts.listen_address =
        is_sock ? "127.0.0.1:0" : "fanin-" + transport + "/" + std::to_string(n);
    opts.worker_threads = 0;
    opts.connection_threads = 0;
    opts.store_threads = 0;
    opts.set_memory = 64 << 10;
    opts.clock = clocks.back().get();
    auto d = std::make_unique<Ldmsd>(opts);
    SamplerConfig sc;
    sc.interval = kNsPerSec;
    sc.params["metrics"] = "194";
    (void)d->AddSampler(std::make_shared<SyntheticSampler>(
                            cluster.MakeDataSource(0)),
                        sc);
    if (!d->Start().ok()) break;
    d->RunUntil(*clocks.back(), kNsPerSec + 1);
    addresses.push_back(d->listen_address());
    samplers.push_back(std::move(d));
  }

  LdmsdOptions agg_opts;
  agg_opts.name = "fanin-agg-" + transport;
  agg_opts.worker_threads = 0;
  agg_opts.connection_threads = 0;
  agg_opts.store_threads = 0;
  agg_opts.set_memory = static_cast<std::size_t>(producers) * 32 << 10;
  SimClock agg_clock(0);
  agg_opts.clock = &agg_clock;
  Ldmsd aggregator(agg_opts);
  for (int n = 0; n < static_cast<int>(samplers.size()); ++n) {
    ProducerConfig pc;
    pc.name = samplers[static_cast<std::size_t>(n)]->name();
    pc.transport = transport;
    pc.address = addresses[static_cast<std::size_t>(n)];
    pc.interval = kNsPerSec;
    (void)aggregator.AddProducer(pc);
  }
  (void)aggregator.Start();

  FaninResult result;
  result.connect_s = TimeSeconds(
      [&] { aggregator.RunUntil(agg_clock, agg_clock.Now() + kNsPerSec); });
  constexpr int kCycles = 3;
  double steady = 0.0;
  for (int c = 0; c < kCycles; ++c) {
    for (std::size_t i = 0; i < samplers.size(); ++i) {
      samplers[i]->RunUntil(*clocks[i], clocks[i]->Now() + kNsPerSec);
    }
    steady += TimeSeconds(
        [&] { aggregator.RunUntil(agg_clock, agg_clock.Now() + kNsPerSec); });
  }
  result.per_pull_us =
      steady / kCycles / static_cast<double>(samplers.size()) * 1e6;
  return result;
}

// ---------------------------------------------------------------------------
// Pipelining on one connection: a producer daemon hosting many sets used to
// cost one RTT per set per cycle (lock-step client). With request
// multiplexing the aggregator issues every update at once (UpdateAll), so a
// cycle costs ~one RTT plus server time.
// ---------------------------------------------------------------------------

class MultiSetHandler final : public ServiceHandler {
 public:
  MultiSetHandler(int sets, int metrics) : mem_(16 << 20) {
    Schema schema("synthetic");
    for (int m = 0; m < metrics; ++m) {
      schema.AddMetric("m" + std::to_string(m), MetricType::kU64);
    }
    for (int s = 0; s < sets; ++s) {
      Status st;
      auto set = MetricSet::Create(mem_, schema,
                                   "pipe/set" + std::to_string(s), "pipe",
                                   static_cast<std::uint64_t>(s), &st);
      sets_.push_back(std::move(set));
    }
    Bump();
  }

  void Bump() { BumpFirst(sets_.size()); }

  /// Advance only the first @p count sets, leaving the rest DGN-quiescent
  /// (the wire-byte ablation's "50% of sets unchanged" knob).
  void BumpFirst(std::size_t count) {
    ++tick_;
    for (std::size_t s = 0; s < std::min(count, sets_.size()); ++s) {
      auto& set = sets_[s];
      set->BeginTransaction();
      for (std::size_t m = 0; m < set->schema().metric_count(); ++m) {
        set->SetU64(m, tick_);
      }
      set->EndTransaction(tick_ * kNsPerSec);
    }
  }

  /// Advance every set but dirty only @p dirty metrics, strided across the
  /// value area so the dirty extents do not coalesce (worst case for the
  /// delta extent table). Every transaction still bumps the DGN by exactly
  /// one, which is what keeps the per-cycle pull on the delta path.
  void BumpSparse(std::size_t dirty) {
    ++tick_;
    for (auto& set : sets_) {
      const std::size_t metrics = set->schema().metric_count();
      const std::size_t n = std::min(std::max<std::size_t>(1, dirty), metrics);
      const std::size_t stride = metrics / n;
      set->BeginTransaction();
      for (std::size_t k = 0; k < n; ++k) set->SetU64(k * stride, tick_);
      set->EndTransaction(tick_ * kNsPerSec);
    }
  }

  std::vector<std::string> instances() const {
    std::vector<std::string> names;
    for (const auto& set : sets_) names.push_back(set->instance_name());
    return names;
  }

  std::vector<std::string> HandleDir() override { return instances(); }

  Status HandleLookup(const std::string& instance,
                      std::vector<std::byte>* metadata) override {
    MetricSetPtr set = Find(instance);
    if (set == nullptr) return {ErrorCode::kNotFound, instance};
    auto bytes = set->metadata_bytes();
    metadata->assign(bytes.begin(), bytes.end());
    return Status::Ok();
  }

  Status HandleUpdate(const std::string& instance,
                      std::vector<std::byte>* data) override {
    MetricSetPtr set = Find(instance);
    if (set == nullptr) return {ErrorCode::kNotFound, instance};
    data->resize(set->data_size());
    return set->SnapshotData(*data);
  }

  void HandleAdvertise(const AdvertiseMsg&) override {}
  MetricSetPtr HandleRdmaExpose(const std::string& instance) override {
    return Find(instance);
  }

  std::uint32_t HandleAssignHandle(const std::string& instance) override {
    for (std::size_t s = 0; s < sets_.size(); ++s) {
      if (sets_[s]->instance_name() == instance) {
        return static_cast<std::uint32_t>(s + 1);
      }
    }
    return kInvalidSetHandle;
  }

  MetricSetPtr HandleResolveHandle(std::uint32_t handle) override {
    if (handle == 0 || handle > sets_.size()) return nullptr;
    return sets_[handle - 1];
  }

 private:
  MetricSetPtr Find(const std::string& instance) const {
    for (const auto& set : sets_) {
      if (set->instance_name() == instance) return set;
    }
    return nullptr;
  }

  MemManager mem_;
  std::vector<MetricSetPtr> sets_;
  std::uint64_t tick_ = 0;
};

void MeasurePipelining(int sets, int metrics, int cycles) {
  MultiSetHandler handler(sets, metrics);
  SockTransport sock;
  std::unique_ptr<Listener> listener;
  if (!sock.Listen("127.0.0.1:0", &handler, &listener).ok()) return;
  std::unique_ptr<Endpoint> ep;
  if (!sock.Connect(listener->address(), &ep).ok()) return;

  const std::vector<std::string> instances = handler.instances();
  MemManager mem(16 << 20);
  std::vector<MetricSetPtr> mirror_sets;
  std::vector<MetricSet*> mirrors;
  for (const auto& instance : instances) {
    std::vector<std::byte> metadata;
    if (!ep->Lookup(instance, &metadata).ok()) return;
    Status st;
    auto mirror = MetricSet::CreateMirror(mem, metadata, &st);
    if (!st.ok()) return;
    mirrors.push_back(mirror.get());
    mirror_sets.push_back(std::move(mirror));
  }

  // Serial baseline: the old lock-step behaviour, one blocking round trip
  // per set per cycle.
  const double serial_s = TimeSeconds([&] {
    for (int c = 0; c < cycles; ++c) {
      handler.Bump();
      for (std::size_t i = 0; i < instances.size(); ++i) {
        (void)ep->Update(instances[i], *mirrors[i]);
      }
    }
  });

  // Pipelined: every update in flight at once, harvested as they complete.
  const double batched_s = TimeSeconds([&] {
    for (int c = 0; c < cycles; ++c) {
      handler.Bump();
      (void)ep->UpdateAll(instances, mirrors);
    }
  });

  const double total = static_cast<double>(sets) * cycles;
  const double serial_rate = total / serial_s;
  const double batched_rate = total / batched_s;
  MeasuredRow(
      "1 conn x %d sets (%d metrics): serial %7.0f upd/s, pipelined "
      "%7.0f upd/s  -> %.1fx",
      sets, metrics, serial_rate, batched_rate, batched_rate / serial_rate);
}

// ---------------------------------------------------------------------------
// Batched, handle-addressed, DGN-gated updates: request frames per cycle drop
// from O(sets) to 1 per producer, and quiescent sets come back as 5-byte
// markers instead of full chunks. Measured against the pipelined per-set
// protocol on one real loopback TCP connection.
// ---------------------------------------------------------------------------

struct PathStats {
  double frames_per_cycle = 0.0;   // request frames the client sent
  double bytes_per_cycle = 0.0;    // tx + rx on the client endpoint
  double updates_per_sec = 0.0;    // set-updates completed per second
  double p99_cycle_us = 0.0;
  double unchanged_per_cycle = 0.0;
};

void EmitPath(JsonWriter& json, const char* key, const PathStats& s) {
  json.BeginObject(key);
  json.Field("request_frames_per_cycle", s.frames_per_cycle);
  json.Field("bytes_on_wire_per_cycle", s.bytes_per_cycle);
  json.Field("updates_per_sec", s.updates_per_sec);
  json.Field("p99_cycle_us", s.p99_cycle_us);
  json.Field("unchanged_per_cycle", s.unchanged_per_cycle);
  json.EndObject();
}

void MeasureBatchProtocol(int sets, int cycles, JsonWriter& json) {
  MultiSetHandler handler(sets, /*metrics=*/194);
  SockTransport sock;
  std::unique_ptr<Listener> listener;
  if (!sock.Listen("127.0.0.1:0", &handler, &listener).ok()) return;
  std::unique_ptr<Endpoint> ep;
  if (!sock.Connect(listener->address(), &ep).ok()) return;

  const std::vector<std::string> instances = handler.instances();
  // Each mirror needs the metadata chunk (metric names) plus data; 32 KiB a
  // set is comfortable for 194 metrics.
  MemManager mem((static_cast<std::size_t>(sets) * 32 << 10) + (1 << 20));
  std::vector<MetricSetPtr> mirror_sets;
  std::vector<MetricSet*> mirrors;
  std::vector<Endpoint::BatchUpdateSpec> specs(instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    std::vector<std::byte> metadata;
    Endpoint::LookupExtra extra;
    if (!ep->LookupEx(instances[i], &metadata, &extra).ok()) return;
    Status st;
    auto mirror = MetricSet::CreateMirror(mem, metadata, &st);
    if (!st.ok()) {
      NoteRow("batch case %d sets skipped: %s", sets, st.ToString().c_str());
      return;
    }
    mirrors.push_back(mirror.get());
    mirror_sets.push_back(std::move(mirror));
    specs[i].instance = instances[i];
    specs[i].handle = extra.handle;
  }

  const TransportStats& stats = ep->stats();
  auto wire_bytes = [&stats] {
    return stats.bytes_tx.load() + stats.bytes_rx.load();
  };

  // Drive one path for `cycles` cycles, bumping the first `active` sets each
  // cycle; returns per-cycle frames/bytes/latency from the endpoint stats.
  auto run = [&](bool batched, std::size_t active) {
    for (auto& spec : specs) spec.last_dgn = 0;  // every set stale at start
    std::vector<Endpoint::BatchUpdateResult> results;
    std::vector<std::uint64_t> cycle_ns;
    cycle_ns.reserve(static_cast<std::size_t>(cycles));
    const std::uint64_t updates0 = stats.updates.load();
    const std::uint64_t batches0 = stats.update_batches.load();
    const std::uint64_t unchanged0 = stats.updates_unchanged.load();
    const std::uint64_t bytes0 = wire_bytes();
    const double total_s = TimeSeconds([&] {
      for (int c = 0; c < cycles; ++c) {
        handler.BumpFirst(active);
        const auto t0 = std::chrono::steady_clock::now();
        if (batched) {
          ep->UpdateBatch(specs, &results);
          for (std::size_t i = 0; i < results.size(); ++i) {
            auto& r = results[i];
            if (!r.status.ok() || r.unchanged) continue;
            if (mirrors[i]->ApplyData(r.data).ok()) {
              specs[i].last_dgn = mirrors[i]->data_gn();
            }
          }
        } else {
          (void)ep->UpdateAll(instances, mirrors);
        }
        cycle_ns.push_back(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count()));
      }
    });
    PathStats out;
    const double n_cycles = static_cast<double>(cycles);
    // Per-set fallback sends one request frame per update; the batch path
    // sends one kUpdateBatchReq per cycle. Both are visible in the endpoint
    // counters, so the frame numbers are measured, not assumed.
    const std::uint64_t updates = stats.updates.load() - updates0;
    const std::uint64_t batches = stats.update_batches.load() - batches0;
    out.frames_per_cycle =
        batches > 0 ? static_cast<double>(batches) / n_cycles
                    : static_cast<double>(updates) / n_cycles;
    out.bytes_per_cycle =
        static_cast<double>(wire_bytes() - bytes0) / n_cycles;
    out.updates_per_sec = static_cast<double>(updates) / total_s;
    out.p99_cycle_us = PercentileUs(std::move(cycle_ns), 0.99);
    out.unchanged_per_cycle =
        static_cast<double>(stats.updates_unchanged.load() - unchanged0) /
        n_cycles;
    return out;
  };

  const std::size_t all = instances.size();
  const PathStats legacy = run(/*batched=*/false, all);
  const PathStats batch = run(/*batched=*/true, all);
  // Ablation: half the sets stop sampling; their entries ride back as 5-byte
  // unchanged markers instead of full chunks.
  const PathStats quiescent = run(/*batched=*/true, all / 2);

  const double frame_reduction =
      batch.frames_per_cycle > 0
          ? legacy.frames_per_cycle / batch.frames_per_cycle
          : 0.0;
  const double quiescent_bytes_reduction =
      quiescent.bytes_per_cycle > 0
          ? batch.bytes_per_cycle / quiescent.bytes_per_cycle
          : 0.0;

  MeasuredRow(
      "%4d sets: frames/cycle %6.1f -> %4.1f (%5.1fx), bytes/cycle "
      "%8.0f -> %8.0f, p99 %7.1f -> %7.1f us",
      sets, legacy.frames_per_cycle, batch.frames_per_cycle, frame_reduction,
      legacy.bytes_per_cycle, batch.bytes_per_cycle, legacy.p99_cycle_us,
      batch.p99_cycle_us);
  MeasuredRow(
      "%4d sets, 50%% quiescent: bytes/cycle %8.0f (%4.2fx less), "
      "unchanged/cycle %6.1f",
      sets, quiescent.bytes_per_cycle, quiescent_bytes_reduction,
      quiescent.unchanged_per_cycle);

  json.BeginObject();
  json.Field("sets_per_producer", sets);
  json.Field("cycles", cycles);
  EmitPath(json, "legacy_per_set", legacy);
  EmitPath(json, "batched", batch);
  EmitPath(json, "batched_half_quiescent", quiescent);
  json.Field("frame_reduction", frame_reduction);
  json.Field("quiescent_bytes_reduction", quiescent_bytes_reduction);
  json.EndObject();
}

// ---------------------------------------------------------------------------
// Delta-encoded updates: a set whose DGN advanced by exactly one transaction
// ships only its changed extents. The sparse-change workload dirties a fixed
// fraction of each set's 194 metrics per cycle (strided, so extents never
// coalesce — worst case for the extent table) and compares the delta path
// against the full-chunk path on the same connection.
// ---------------------------------------------------------------------------

void MeasureDeltaProtocol(int sets, int dirty_pct, int cycles,
                          JsonWriter& json) {
  MultiSetHandler handler(sets, /*metrics=*/194);
  SockTransport sock;
  std::unique_ptr<Listener> listener;
  if (!sock.Listen("127.0.0.1:0", &handler, &listener).ok()) return;
  std::unique_ptr<Endpoint> ep;
  if (!sock.Connect(listener->address(), &ep).ok()) return;

  const std::vector<std::string> instances = handler.instances();
  MemManager mem((static_cast<std::size_t>(sets) * 32 << 10) + (1 << 20));
  std::vector<MetricSetPtr> mirror_sets;
  std::vector<MetricSet*> mirrors;
  std::vector<Endpoint::BatchUpdateSpec> specs(instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    std::vector<std::byte> metadata;
    Endpoint::LookupExtra extra;
    if (!ep->LookupEx(instances[i], &metadata, &extra).ok()) return;
    Status st;
    auto mirror = MetricSet::CreateMirror(mem, metadata, &st);
    if (!st.ok()) {
      NoteRow("delta case %d sets skipped: %s", sets, st.ToString().c_str());
      return;
    }
    mirrors.push_back(mirror.get());
    mirror_sets.push_back(std::move(mirror));
    specs[i].instance = instances[i];
    specs[i].handle = extra.handle;
  }

  const std::size_t metrics = mirrors[0]->schema().metric_count();
  const std::size_t dirty = std::max<std::size_t>(
      1, metrics * static_cast<std::size_t>(dirty_pct) / 100);

  const TransportStats& stats = ep->stats();
  auto wire_bytes = [&stats] {
    return stats.bytes_tx.load() + stats.bytes_rx.load();
  };

  struct DeltaPathStats {
    double bytes_per_cycle = 0.0;
    double p99_cycle_us = 0.0;
    double deltas_per_cycle = 0.0;
  };

  // One path, `cycles` cycles: sparse-bump every set, pull the batch, apply
  // deltas or chunks as the server chose. A warm-up cycle first — the cold
  // mirror has no delta base, so cycle 0 always ships full chunks and would
  // otherwise pollute the sparse steady state.
  auto run = [&](bool delta) {
    ep->set_delta_updates(delta);
    for (auto& spec : specs) spec.last_dgn = 0;
    std::vector<Endpoint::BatchUpdateResult> results;
    auto pull = [&] {
      handler.BumpSparse(dirty);
      ep->UpdateBatch(specs, &results);
      for (std::size_t i = 0; i < results.size(); ++i) {
        auto& r = results[i];
        if (!r.status.ok() || r.unchanged) continue;
        const Status applied = r.delta ? mirrors[i]->ApplyDelta(r.data)
                                       : mirrors[i]->ApplyData(r.data);
        if (applied.ok()) specs[i].last_dgn = mirrors[i]->data_gn();
      }
    };
    pull();  // warm-up: cold mirrors take full chunks regardless of mode

    std::vector<std::uint64_t> cycle_ns;
    cycle_ns.reserve(static_cast<std::size_t>(cycles));
    const std::uint64_t bytes0 = wire_bytes();
    const std::uint64_t deltas0 = stats.updates_delta.load();
    for (int c = 0; c < cycles; ++c) {
      const auto t0 = std::chrono::steady_clock::now();
      pull();
      cycle_ns.push_back(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()));
    }
    DeltaPathStats out;
    const double n_cycles = static_cast<double>(cycles);
    out.bytes_per_cycle =
        static_cast<double>(wire_bytes() - bytes0) / n_cycles;
    out.deltas_per_cycle =
        static_cast<double>(stats.updates_delta.load() - deltas0) / n_cycles;
    out.p99_cycle_us = PercentileUs(std::move(cycle_ns), 0.99);
    return out;
  };

  const DeltaPathStats full = run(/*delta=*/false);
  const DeltaPathStats delta = run(/*delta=*/true);
  const double bytes_ratio =
      full.bytes_per_cycle > 0 ? delta.bytes_per_cycle / full.bytes_per_cycle
                               : 0.0;

  MeasuredRow(
      "%4d sets, %2d%% dirty: bytes/cycle %8.0f -> %8.0f (%4.1f%%), "
      "deltas/cycle %6.1f, p99 %7.1f -> %7.1f us",
      sets, dirty_pct, full.bytes_per_cycle, delta.bytes_per_cycle,
      bytes_ratio * 100.0, delta.deltas_per_cycle, full.p99_cycle_us,
      delta.p99_cycle_us);

  json.BeginObject();
  json.Field("sets_per_producer", sets);
  json.Field("dirty_pct", dirty_pct);
  json.Field("dirty_metrics", static_cast<std::uint64_t>(dirty));
  json.Field("cycles", cycles);
  json.BeginObject("full_chunk");
  json.Field("bytes_on_wire_per_cycle", full.bytes_per_cycle);
  json.Field("p99_cycle_us", full.p99_cycle_us);
  json.EndObject();
  json.BeginObject("delta");
  json.Field("bytes_on_wire_per_cycle", delta.bytes_per_cycle);
  json.Field("p99_cycle_us", delta.p99_cycle_us);
  json.Field("deltas_per_cycle", delta.deltas_per_cycle);
  json.EndObject();
  json.Field("delta_bytes_ratio", bytes_ratio);
  json.EndObject();
}

}  // namespace
}  // namespace ldmsxx::bench

int main() {
  using namespace ldmsxx;
  using namespace ldmsxx::bench;

  const bool smoke = SmokeMode();
  JsonWriter json;
  json.BeginObject();
  json.Field("bench", std::string("fanin"));
  json.Field("smoke", smoke);

  Banner("T-fanin", "aggregator fan-in by transport (194-metric sets)");
  PaperRow("max fan-in ~9,000:1 (sock, IB RDMA); >15,000:1 (Gemini ugni)");

  sim::SimCluster cluster(sim::ClusterConfig::Chama(1));
  cluster.Tick(kNsPerSec);

  struct Case {
    const char* transport;
    int producers;
  };
  const Case cases[] = {
      {"sock", smoke ? 8 : 512},  // bounded by fds; cost extrapolates linearly
      {"local", smoke ? 32 : 4096},
      {"rdma", smoke ? 32 : 4096},
      {"ugni", smoke ? 32 : 4096},
  };
  json.BeginArray("transports");
  for (const Case& c : cases) {
    FaninResult r = MeasureFanin(c.transport, c.producers, cluster);
    const double fanin_1s = 1e6 / r.per_pull_us;
    const double fanin_20s = 20e6 / r.per_pull_us;
    MeasuredRow(
        "%-5s %4d producers: %6.2f us/pull  -> fan-in %8.0f:1 @1s  "
        "%9.0f:1 @20s (connect burst %.0f ms)",
        c.transport, c.producers, r.per_pull_us, fanin_1s, fanin_20s,
        r.connect_s * 1e3);
    json.BeginObject();
    json.Field("transport", std::string(c.transport));
    json.Field("producers", c.producers);
    json.Field("per_pull_us", r.per_pull_us);
    json.Field("fanin_at_1s", fanin_1s);
    json.EndObject();
  }
  json.EndArray();
  NoteRow("sock runs real loopback TCP connections (fd-limited) and");
  NoteRow("extrapolates; one-sided rdma/ugni pulls cost less per producer,");
  NoteRow("reproducing the ugni > sock fan-in ordering of the paper.");

  Banner("T-fanin/pipe",
         "request multiplexing on one sock connection (serial vs batched)");
  PaperRow("n/a — client-side pipelining of the update pull (Figure 2 {e})");
  MeasurePipelining(/*sets=*/32, /*metrics=*/194, /*cycles=*/smoke ? 10 : 100);
  MeasurePipelining(/*sets=*/64, /*metrics=*/194, /*cycles=*/smoke ? 5 : 50);
  NoteRow("serial = one blocking round trip per set per cycle (the old");
  NoteRow("lock-step client); pipelined = Endpoint::UpdateAll issues all");
  NoteRow("requests before harvesting, so a cycle costs ~one RTT total.");

  Banner("T-fanin/batch",
         "batched handle-addressed DGN-gated updates vs per-set pipelining");
  PaperRow("n/a — request frames per cycle: O(sets) -> 1 per producer");
  json.BeginArray("batch_cases");
  const int batch_sets[] = {1, 64, 512};
  for (const int sets : batch_sets) {
    const int cycles = smoke ? (sets >= 512 ? 3 : 10)
                             : (sets >= 512 ? 50 : 200);
    MeasureBatchProtocol(sets, cycles, json);
  }
  json.EndArray();
  NoteRow("legacy = pipelined per-set kUpdateReq frames; batched = one");
  NoteRow("kUpdateBatchReq carrying (handle, last_dgn) pairs, response");
  NoteRow("interleaves full chunks with 5-byte unchanged markers.");

  Banner("T-fanin/delta",
         "delta-encoded updates vs full chunks (sparse-change workload)");
  PaperRow("n/a — changed-extent deltas for DGN+1 sets, full-chunk fallback");
  json.BeginArray("delta_cases");
  const int delta_sets[] = {64, 512};
  const int dirty_pcts[] = {1, 10, 50};
  for (const int sets : delta_sets) {
    for (const int pct : dirty_pcts) {
      const int cycles = smoke ? (sets >= 512 ? 3 : 10)
                               : (sets >= 512 ? 50 : 200);
      MeasureDeltaProtocol(sets, pct, cycles, json);
    }
  }
  json.EndArray();
  NoteRow("dirty metrics are strided so extents never coalesce (worst-case");
  NoteRow("extent table); at 50%% dirty the stride-2 extents merge under the");
  NoteRow("16-byte slack into one near-full extent, so the delta saves");
  NoteRow("almost nothing (ratio ~1.0) — one more dirty byte and the size");
  NoteRow("gate would fall back to full chunks.");

  json.EndObject();
  if (!json.WriteFile("BENCH_fanin.json")) {
    std::fprintf(stderr, "failed to write BENCH_fanin.json\n");
    return 1;
  }
  NoteRow("machine-readable results: BENCH_fanin.json");
  return 0;
}
