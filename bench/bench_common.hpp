// Shared console reporting for the experiment-reproduction benches. Every
// bench prints rows of "what the paper reports" vs "what we measure" so
// EXPERIMENTS.md can be assembled straight from `for b in build/bench/*`.
#pragma once

#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <string>

namespace ldmsxx::bench {

inline void Banner(const char* experiment_id, const char* title) {
  std::printf("\n============================================================\n");
  std::printf("%s — %s\n", experiment_id, title);
  std::printf("============================================================\n");
}

inline void PaperRow(const char* fmt, ...) {
  std::printf("  paper    : ");
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

inline void MeasuredRow(const char* fmt, ...) {
  std::printf("  measured : ");
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

inline void NoteRow(const char* fmt, ...) {
  std::printf("  note     : ");
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

/// Wall-clock a callable, seconds.
template <typename Fn>
double TimeSeconds(Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace ldmsxx::bench
