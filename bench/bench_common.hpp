// Shared console reporting for the experiment-reproduction benches. Every
// bench prints rows of "what the paper reports" vs "what we measure" so
// EXPERIMENTS.md can be assembled straight from `for b in build/bench/*`.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace ldmsxx::bench {

inline void Banner(const char* experiment_id, const char* title) {
  std::printf("\n============================================================\n");
  std::printf("%s — %s\n", experiment_id, title);
  std::printf("============================================================\n");
}

inline void PaperRow(const char* fmt, ...) {
  std::printf("  paper    : ");
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

inline void MeasuredRow(const char* fmt, ...) {
  std::printf("  measured : ");
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

inline void NoteRow(const char* fmt, ...) {
  std::printf("  note     : ");
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

/// Wall-clock a callable, seconds.
template <typename Fn>
double TimeSeconds(Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// LDMSXX_BENCH_SMOKE=1 shrinks every bench to a seconds-long configuration
/// (CI crash check); unset/0 runs the full measurement.
inline bool SmokeMode() {
  const char* v = std::getenv("LDMSXX_BENCH_SMOKE");
  return v != nullptr && v[0] != '\0' && std::string(v) != "0";
}

/// Percentile over raw nanosecond samples, reported in microseconds.
inline double PercentileUs(std::vector<std::uint64_t> ns, double p) {
  if (ns.empty()) return 0.0;
  std::sort(ns.begin(), ns.end());
  const auto idx =
      static_cast<std::size_t>(p * static_cast<double>(ns.size() - 1));
  return static_cast<double>(ns[idx]) / 1e3;
}

/// Minimal streaming JSON writer for the machine-readable BENCH_*.json
/// artifacts. Callers balance Begin/End themselves; keys are plain ASCII
/// (no escaping beyond quotes in values, which our emitters never produce).
class JsonWriter {
 public:
  void BeginObject() { Prefix(); Push('{'); }
  void BeginObject(const char* key) { KeyPrefix(key); Push('{'); }
  void EndObject() { Pop('}'); }
  void BeginArray(const char* key) { KeyPrefix(key); Push('['); }
  void EndArray() { Pop(']'); }

  void Field(const char* key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    KeyPrefix(key);
    out_ += buf;
  }
  void Field(const char* key, std::uint64_t v) {
    KeyPrefix(key);
    out_ += std::to_string(v);
  }
  void Field(const char* key, int v) {
    KeyPrefix(key);
    out_ += std::to_string(v);
  }
  void Field(const char* key, bool v) {
    KeyPrefix(key);
    out_ += v ? "true" : "false";
  }
  void Field(const char* key, const std::string& v) {
    KeyPrefix(key);
    out_ += '"';
    out_ += v;
    out_ += '"';
  }

  const std::string& str() const { return out_; }

  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const bool ok = std::fwrite(out_.data(), 1, out_.size(), f) == out_.size();
    std::fputc('\n', f);
    std::fclose(f);
    return ok;
  }

 private:
  void Prefix() {
    if (!first_.empty()) {
      if (!first_.back()) out_ += ',';
      first_.back() = false;
    }
  }
  void KeyPrefix(const char* key) {
    Prefix();
    if (!first_.empty()) {  // inside an object: emit the key
      out_ += '"';
      out_ += key;
      out_ += "\":";
    }
  }
  void Push(char open) {
    out_ += open;
    first_.push_back(true);
  }
  void Pop(char close) {
    out_ += close;
    first_.pop_back();
  }

  std::string out_;
  std::vector<bool> first_;
};

}  // namespace ldmsxx::bench
