// T-query (ISSUE 9): the columnar storage engine's two promises, measured.
//
//   ingest — rows/s through store_tsdb's columnar append path vs. the CSV
//            store fed the same samples (the paper-era baseline format);
//            columnar must not cost more than row-at-a-time CSV.
//   query  — p50/p99 latency of a time-range x node-set x metric query
//            answered by the footer index (prune on min/max ts + node
//            dictionary, read only the selected columns) vs. the full-scan
//            path that re-reads every column of every segment the way a
//            CSV consumer would. At the 1M-row scale the indexed path must
//            be >= 20x faster.
//
// The dataset is deterministic (no RNG): 64 nodes x 16 metrics, value =
// f(node, tick). Deterministic metrics — rows/bytes written, segment
// counts, bytes read per query path — are regression-gated against
// bench/baselines/BENCH_query.json by scripts/bench_compare.py; the _us
// latencies and rows-per-second rates are machine-dependent trend data.
// LDMSXX_BENCH_SMOKE=1 shrinks row counts and repetitions.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/mem_manager.hpp"
#include "core/metric_set.hpp"
#include "core/schema.hpp"
#include "store/csv_store.hpp"
#include "store/tsdb/tsdb_store.hpp"

namespace ldmsxx::bench {
namespace {

constexpr std::size_t kNodes = 64;
constexpr std::size_t kMetrics = 16;
constexpr DurationNs kTick = 100 * kNsPerMs;

Schema MakeSchema() {
  Schema schema("gpcdr");
  for (std::size_t m = 0; m < kMetrics; ++m) {
    schema.AddMetric("m" + std::to_string(m), MetricType::kU64);
  }
  return schema;
}

std::vector<MetricSetPtr> MakeSets(MemManager& mem, const Schema& schema) {
  std::vector<MetricSetPtr> sets;
  sets.reserve(kNodes);
  for (std::size_t n = 0; n < kNodes; ++n) {
    const std::string node = "nid" + std::to_string(n);
    Status st;
    MetricSetPtr set = MetricSet::Create(mem, schema, node + "/gpcdr", node,
                                         n, &st);
    if (set == nullptr) {
      std::fprintf(stderr, "set create failed: %s\n", st.ToString().c_str());
      std::exit(1);
    }
    sets.push_back(std::move(set));
  }
  return sets;
}

/// One collection cycle: stamp every node's set at @p tick and store it.
template <typename StoreFn>
void IngestRows(std::vector<MetricSetPtr>& sets, std::size_t ticks,
                StoreFn&& store_one) {
  for (std::size_t t = 0; t < ticks; ++t) {
    const TimeNs ts = static_cast<TimeNs>(t) * kTick;
    for (std::size_t n = 0; n < sets.size(); ++n) {
      MetricSet& set = *sets[n];
      set.BeginTransaction();
      for (std::size_t m = 0; m < kMetrics; ++m) {
        set.SetU64(m, t * kNodes + n + m);
      }
      set.EndTransaction(ts);
      store_one(set);
    }
  }
}

struct LatencyStats {
  double p50_us = 0.0;
  double p99_us = 0.0;
};

template <typename Fn>
LatencyStats MeasureLatency(int reps, Fn&& fn) {
  std::vector<std::uint64_t> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    samples.push_back(
        static_cast<std::uint64_t>(TimeSeconds(fn) * 1e9));
  }
  return {PercentileUs(samples, 0.50), PercentileUs(samples, 0.99)};
}

}  // namespace
}  // namespace ldmsxx::bench

int main() {
  using namespace ldmsxx;
  using namespace ldmsxx::bench;
  namespace fs = std::filesystem;

  Banner("T-query", "columnar ingest + indexed vs full-scan query latency");
  PaperRow("\"analysis of both current and historical data\" (SVI) needs "
           "queries served from storage, not from the daemons");

  const bool smoke = SmokeMode();
  // Query dataset: 1M rows (64 nodes x 15625 ticks) in the full run.
  const std::size_t query_ticks = smoke ? 320 : 15625;
  const std::size_t ingest_ticks = smoke ? 80 : 1600;
  const int indexed_reps = smoke ? 5 : 64;
  const int scan_reps = smoke ? 3 : 8;

  std::string dir = "/tmp/ldmsxx_bench_query_XXXXXX";
  if (::mkdtemp(dir.data()) == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    return 1;
  }
  Schema schema = MakeSchema();
  MemManager mem(static_cast<std::size_t>(kNodes) << 14);
  std::vector<MetricSetPtr> sets = MakeSets(mem, schema);

  // --- ingest leg: columnar vs CSV on identical samples ---------------------
  const std::size_t ingest_rows = ingest_ticks * kNodes;
  TsdbOptions ingest_opts;
  ingest_opts.root_path = dir + "/ingest_tsdb";
  ingest_opts.segment_rows = 8192;
  TsdbStore ingest_tsdb(ingest_opts);
  const double tsdb_s = TimeSeconds([&] {
    IngestRows(sets, ingest_ticks,
               [&](const MetricSet& s) { (void)ingest_tsdb.StoreSet(s); });
    (void)ingest_tsdb.Flush();
  });
  CsvStoreOptions csv_opts;
  csv_opts.root_path = dir + "/ingest_csv";
  CsvStore csv(csv_opts);
  const double csv_s = TimeSeconds([&] {
    IngestRows(sets, ingest_ticks,
               [&](const MetricSet& s) { (void)csv.StoreSet(s); });
    (void)csv.Flush();
  });
  const double tsdb_rows_per_sec = static_cast<double>(ingest_rows) / tsdb_s;
  const double csv_rows_per_sec = static_cast<double>(ingest_rows) / csv_s;
  MeasuredRow("ingest %zu rows: tsdb %.2f Mrows/s, csv %.2f Mrows/s "
              "(%.2fx csv)",
              ingest_rows, tsdb_rows_per_sec / 1e6, csv_rows_per_sec / 1e6,
              tsdb_rows_per_sec / csv_rows_per_sec);

  // --- query leg: build the big dataset, then race the two paths ------------
  TsdbOptions opts;
  opts.root_path = dir + "/tsdb";
  opts.segment_rows = 8192;
  opts.rollup_granularity = 60 * kNsPerSec;
  auto store = std::make_unique<TsdbStore>(opts);
  IngestRows(sets, query_ticks,
             [&](const MetricSet& s) { (void)store->StoreSet(s); });
  if (Status st = store->Flush(); !st.ok()) {
    std::fprintf(stderr, "flush failed: %s\n", st.ToString().c_str());
    return 1;
  }
  const std::size_t rows_written = query_ticks * kNodes;
  const std::uint64_t segments = store->segments_sealed();
  std::uint64_t file_bytes = 0;
  for (const auto& entry : fs::directory_iterator(opts.root_path)) {
    file_bytes += fs::file_size(entry.path());
  }
  MeasuredRow("dataset: %zu rows, %llu sealed segments, %.1f MB on disk",
              rows_written, static_cast<unsigned long long>(segments),
              static_cast<double>(file_bytes) / 1e6);

  // ~1% time window x 4 of 64 nodes x 2 of 16 metrics: the dashboard query.
  TsdbQuery q;
  q.table = "gpcdr";
  q.t0 = static_cast<TimeNs>(query_ticks / 2) * kTick;
  q.t1 = q.t0 + static_cast<TimeNs>(query_ticks / 100 + 1) * kTick;
  q.nodes = {3, 17, 42, 63};
  q.metrics = {"m2", "m11"};

  TsdbQueryResult indexed, scanned;
  const LatencyStats indexed_lat = MeasureLatency(indexed_reps, [&] {
    indexed = TsdbQueryResult();
    (void)store->Query(q, &indexed);
  });
  const LatencyStats scan_lat = MeasureLatency(scan_reps, [&] {
    scanned = TsdbQueryResult();
    (void)store->QueryFullScan(q, &scanned);
  });
  if (indexed.rows.size() != scanned.rows.size() || indexed.rows.empty()) {
    std::fprintf(stderr, "query paths disagree: indexed %zu vs scan %zu\n",
                 indexed.rows.size(), scanned.rows.size());
    return 1;
  }
  const double speedup = scan_lat.p50_us / indexed_lat.p50_us;
  MeasuredRow("indexed: p50 %.0f us, p99 %.0f us (%llu of %llu segments "
              "pruned, %.2f MB read)",
              indexed_lat.p50_us, indexed_lat.p99_us,
              static_cast<unsigned long long>(indexed.segments_pruned),
              static_cast<unsigned long long>(indexed.segments_considered),
              static_cast<double>(indexed.bytes_read) / 1e6);
  MeasuredRow("full scan: p50 %.0f us, p99 %.0f us (%.2f MB read)",
              scan_lat.p50_us, scan_lat.p99_us,
              static_cast<double>(scanned.bytes_read) / 1e6);
  MeasuredRow("indexed speedup: %.1fx at p50 (acceptance: >= 20x at 1M rows)",
              speedup);

  // Rollup path: the downsampled answer over the full range.
  TsdbQuery rq = q;
  rq.t0 = 0;
  rq.t1 = ~TimeNs{0};
  std::vector<TsdbRollupRow> rollups;
  const LatencyStats rollup_lat = MeasureLatency(indexed_reps, [&] {
    rollups.clear();
    (void)store->QueryRollup(rq, &rollups);
  });
  MeasuredRow("rollup (60s buckets, full range): %zu buckets, p50 %.0f us",
              rollups.size(), rollup_lat.p50_us);

  JsonWriter json;
  json.BeginObject();
  json.Field("bench", std::string("query"));
  json.Field("smoke", smoke);
  json.BeginObject("ingest");
  json.Field("rows", ingest_rows);
  json.Field("tsdb_rows_per_sec", tsdb_rows_per_sec);
  json.Field("csv_rows_per_sec", csv_rows_per_sec);
  json.Field("tsdb_vs_csv_x", tsdb_rows_per_sec / csv_rows_per_sec);
  json.EndObject();
  json.BeginObject("dataset");
  json.Field("rows_written", rows_written);
  json.Field("nodes", kNodes);
  json.Field("columns", kMetrics);
  json.Field("segments_sealed", segments);
  json.Field("file_bytes", file_bytes);
  json.EndObject();
  json.BeginObject("window_query");
  json.Field("rows_returned", indexed.rows.size());
  json.Field("segments_considered", indexed.segments_considered);
  json.Field("segments_pruned", indexed.segments_pruned);
  json.Field("indexed_read_bytes", indexed.bytes_read);
  json.Field("scan_read_bytes", scanned.bytes_read);
  json.Field("indexed_p50_us", indexed_lat.p50_us);
  json.Field("indexed_p99_us", indexed_lat.p99_us);
  json.Field("scan_p50_us", scan_lat.p50_us);
  json.Field("scan_p99_us", scan_lat.p99_us);
  json.Field("speedup_x", speedup);
  json.EndObject();
  json.BeginObject("rollup_query");
  json.Field("buckets", rollups.size());
  json.Field("p50_us", rollup_lat.p50_us);
  json.EndObject();
  json.EndObject();
  if (!json.WriteFile("BENCH_query.json")) {
    std::fprintf(stderr, "failed to write BENCH_query.json\n");
    return 1;
  }
  NoteRow("rows/bytes/segment metrics are data-determined and "
          "regression-gated (bench_compare.py); _us and rows-per-second "
          "figures are machine-dependent trend data");
  NoteRow("machine-readable results: BENCH_query.json");
  fs::remove_all(dir);
  return 0;
}
